#include "qwm/device/process.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/device/tabular_model.h"

namespace qwm::device {
namespace {

TEST(ProcessCorner, FastIsStrongerSlowIsWeaker) {
  const Process tt = Process::cmosp35();
  const Process ff = tt.at_corner(Corner::fast);
  const Process ss = tt.at_corner(Corner::slow);
  EXPECT_GT(ff.nmos.kp, tt.nmos.kp);
  EXPECT_LT(ff.nmos.vth0, tt.nmos.vth0);
  EXPECT_LT(ss.pmos.kp, tt.pmos.kp);
  EXPECT_GT(ss.pmos.vth0, tt.pmos.vth0);
  // Typical corner is the identity.
  EXPECT_DOUBLE_EQ(tt.at_corner(Corner::typical).nmos.kp, tt.nmos.kp);
}

TEST(ProcessTemperature, HotIsSlower) {
  const Process tt = Process::cmosp35();
  const Process hot = tt.at_temperature(398.0);   // 125 C
  const Process cold = tt.at_temperature(233.0);  // -40 C
  EXPECT_LT(hot.nmos.kp, tt.nmos.kp);
  EXPECT_GT(cold.nmos.kp, tt.nmos.kp);
  EXPECT_LT(hot.nmos.vth0, tt.nmos.vth0);  // vth drops with temperature
  EXPECT_GT(hot.temp_vt, tt.temp_vt);
}

double stack_delay(const Process& proc) {
  const TabularDeviceModel nmos(MosType::nmos, proc);
  const TabularDeviceModel pmos(MosType::pmos, proc);
  const ModelSet ms{&nmos, &pmos, &proc};
  const auto b =
      circuit::make_nmos_stack(proc, std::vector<double>(3, 1e-6), 20e-15);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd)};
  const auto st = core::evaluate_stage(b, inputs, ms);
  EXPECT_TRUE(st.ok) << st.error;
  return st.delay.value_or(-1.0);
}

TEST(ProcessCorner, DelayOrderingAcrossCorners) {
  const Process tt = Process::cmosp35();
  const double d_tt = stack_delay(tt);
  const double d_ff = stack_delay(tt.at_corner(Corner::fast));
  const double d_ss = stack_delay(tt.at_corner(Corner::slow));
  ASSERT_GT(d_tt, 0.0);
  EXPECT_LT(d_ff, d_tt);
  EXPECT_GT(d_ss, d_tt);
}

TEST(ProcessTemperature, DelayGrowsWithTemperature) {
  const Process tt = Process::cmosp35();
  const double d_room = stack_delay(tt);
  const double d_hot = stack_delay(tt.at_temperature(398.0));
  ASSERT_GT(d_room, 0.0);
  EXPECT_GT(d_hot, d_room);
}

/// The characterized table must track its golden physics at every corner
/// and temperature variant, not just nominal.
class TabularAcrossVariants : public ::testing::TestWithParam<int> {};

TEST_P(TabularAcrossVariants, TableMatchesGolden) {
  const Process tt = Process::cmosp35();
  Process p = tt;
  switch (GetParam()) {
    case 0: p = tt.at_corner(Corner::fast); break;
    case 1: p = tt.at_corner(Corner::slow); break;
    case 2: p = tt.at_temperature(398.0); break;
    case 3: p = tt.at_temperature(233.0); break;
  }
  const MosfetPhysics golden(MosType::nmos, p.nmos, p.temp_vt);
  CharacterizationOptions fast_opt;
  fast_opt.grid_step = 0.1;
  const TabularDeviceModel tab(MosType::nmos, p, fast_opt);
  for (double vg : {1.2, 2.2, 3.2}) {
    for (double vd : {0.6, 1.8, 3.0}) {
      const double ig = golden.ids(1e-6, 0.35e-6, vg, vd, 0.0, 0.0);
      const double it =
          tab.iv(1e-6, 0.35e-6, TerminalVoltages{vg, vd, 0.0});
      EXPECT_NEAR(it, ig, 0.04 * std::abs(ig) + 2e-6)
          << "variant=" << GetParam() << " vg=" << vg << " vd=" << vd;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, TabularAcrossVariants,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace qwm::device
