#include "qwm/device/grid_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "qwm/device/tabular_model.h"

namespace qwm::device {
namespace {

CharacterizationGrid small_grid() {
  const Process p = Process::cmosp35();
  const MosfetPhysics phys(MosType::nmos, p.nmos, p.temp_vt);
  CharacterizationOptions opt;
  opt.grid_step = 0.55;
  return characterize(phys, p.vdd, opt);
}

TEST(GridIo, RoundTripsExactly) {
  const CharacterizationGrid g = small_grid();
  std::stringstream ss;
  save_grid(g, ss);
  const auto g2 = load_grid(ss);
  ASSERT_TRUE(g2);
  EXPECT_EQ(g2->vs_axis.n, g.vs_axis.n);
  EXPECT_EQ(g2->vg_axis.n, g.vg_axis.n);
  EXPECT_DOUBLE_EQ(g2->w_ref, g.w_ref);
  ASSERT_EQ(g2->points.size(), g.points.size());
  for (std::size_t i = 0; i < g.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(g2->points[i].s1, g.points[i].s1);
    EXPECT_DOUBLE_EQ(g2->points[i].t2, g.points[i].t2);
    EXPECT_DOUBLE_EQ(g2->points[i].vth, g.points[i].vth);
    EXPECT_DOUBLE_EQ(g2->points[i].vdsat, g.points[i].vdsat);
  }
}

TEST(GridIo, LoadedGridDrivesIdenticalModel) {
  const Process proc = Process::cmosp35();
  const CharacterizationGrid g = small_grid();
  std::stringstream ss;
  save_grid(g, ss);
  auto g2 = load_grid(ss);
  ASSERT_TRUE(g2);
  TabularDeviceModel direct(MosType::nmos, proc, g);
  TabularDeviceModel loaded(MosType::nmos, proc, std::move(*g2));
  for (double vd : {0.7, 1.9, 3.1}) {
    TerminalVoltages tv{2.4, vd, 0.3};
    EXPECT_DOUBLE_EQ(loaded.iv(1e-6, 0.35e-6, tv),
                     direct.iv(1e-6, 0.35e-6, tv));
  }
}

TEST(GridIo, FileRoundTrip) {
  const CharacterizationGrid g = small_grid();
  const std::string path = "/tmp/qwm_grid_io_test.grid";
  ASSERT_TRUE(save_grid_file(g, path));
  const auto g2 = load_grid_file(path);
  ASSERT_TRUE(g2);
  EXPECT_EQ(g2->points.size(), g.points.size());
  std::remove(path.c_str());
}

TEST(GridIo, RejectsGarbage) {
  std::stringstream bad1("not-a-grid");
  EXPECT_FALSE(load_grid(bad1));
  std::stringstream bad2("qwm-grid-v1\n0 0.1");  // truncated
  EXPECT_FALSE(load_grid(bad2));
  std::stringstream bad3("qwm-grid-v1\n0 0.1 999999\n0 0.1 999999\n1 1\n");
  EXPECT_FALSE(load_grid(bad3));  // implausible dimensions
  EXPECT_FALSE(load_grid_file("/nonexistent/path.grid"));
}

}  // namespace
}  // namespace qwm::device
