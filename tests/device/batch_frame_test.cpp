// Bit-exactness of the batched SoA frame-lookup kernel against the
// scalar table queries it replaces, across the whole operating range
// (cutoff, linear, saturation, clamped off-grid points, source/drain
// exchanged orientations, both device polarities).
#include "qwm/device/tabular_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "../common/test_models.h"

namespace qwm::device {
namespace {

TEST(BatchFrame, EvalFramesMatchesScalarEvalFrameBitForBit) {
  const TabularDeviceModel& m = test::models().tabular_n;
  std::vector<double> vg, vs, vd;
  for (double g = -0.5; g <= 4.0; g += 0.45)
    for (double s = -0.2; s <= 3.4; s += 0.6)
      for (double off : {0.0, 0.05, 0.9, 2.1}) {
        vg.push_back(g);
        vs.push_back(s);
        vd.push_back(s + off);  // frame precondition: vd >= vs
      }
  std::vector<TabularDeviceModel::FrameEval> batched(vg.size());
  m.eval_frames(vg.size(), vg.data(), vs.data(), vd.data(), batched.data());
  for (std::size_t i = 0; i < vg.size(); ++i) {
    const auto scalar = m.eval_frame(vg[i], vs[i], vd[i]);
    EXPECT_EQ(scalar.i, batched[i].i) << "i=" << i;
    EXPECT_EQ(scalar.d_vg, batched[i].d_vg) << "i=" << i;
    EXPECT_EQ(scalar.d_vs, batched[i].d_vs) << "i=" << i;
    EXPECT_EQ(scalar.d_vd, batched[i].d_vd) << "i=" << i;
  }
}

TEST(BatchFrame, FastPathMatchesVirtualIvEvalBitForBit) {
  // iv_eval_fast (concrete-pointer, no vtable dispatch) and the virtual
  // iv_eval must be the same arithmetic — including swapped orientations
  // and the PMOS mirrored frame.
  for (const TabularDeviceModel* m :
       {&test::models().tabular_n, &test::models().tabular_p}) {
    for (double g : {0.0, 1.1, 2.5, 3.3})
      for (double a : {0.0, 0.4, 1.8, 3.3})
        for (double b : {0.0, 0.7, 2.2, 3.3}) {
          const TerminalVoltages tv{g, a, b};
          const IvEval v = m->iv_eval(1.5e-6, 0.35e-6, tv);
          const IvEval f = m->iv_eval_fast(1.5e-6, 0.35e-6, tv);
          EXPECT_EQ(v.i, f.i);
          EXPECT_EQ(v.d_input, f.d_input);
          EXPECT_EQ(v.d_src, f.d_src);
          EXPECT_EQ(v.d_snk, f.d_snk);
        }
  }
}

TEST(BatchFrame, QueryAccountingCountsBatchedLookups) {
  const TabularDeviceModel& m = test::models().tabular_n;
  const std::size_t before = m.query_count();
  const double vg[3] = {1.0, 2.0, 3.0};
  const double vs[3] = {0.0, 0.1, 0.2};
  const double vd[3] = {1.0, 1.5, 2.0};
  TabularDeviceModel::FrameEval out[3];
  m.eval_frames(3, vg, vs, vd, out);
  EXPECT_EQ(m.query_count(), before + 3);
}

}  // namespace
}  // namespace qwm::device
