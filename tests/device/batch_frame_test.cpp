// Bit-exactness of the batched SoA frame-lookup kernel against the
// scalar table queries it replaces, across the whole operating range
// (cutoff, linear, saturation, clamped off-grid points, source/drain
// exchanged orientations, both device polarities).
#include "qwm/device/tabular_model.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "../common/test_models.h"
#include "qwm/device/characterize.h"

namespace qwm::device {
namespace {

TEST(BatchFrame, EvalFramesMatchesScalarEvalFrameBitForBit) {
  const TabularDeviceModel& m = test::models().tabular_n;
  std::vector<double> vg, vs, vd;
  for (double g = -0.5; g <= 4.0; g += 0.45)
    for (double s = -0.2; s <= 3.4; s += 0.6)
      for (double off : {0.0, 0.05, 0.9, 2.1}) {
        vg.push_back(g);
        vs.push_back(s);
        vd.push_back(s + off);  // frame precondition: vd >= vs
      }
  std::vector<TabularDeviceModel::FrameEval> batched(vg.size());
  m.eval_frames(vg.size(), vg.data(), vs.data(), vd.data(), batched.data());
  for (std::size_t i = 0; i < vg.size(); ++i) {
    const auto scalar = m.eval_frame(vg[i], vs[i], vd[i]);
    EXPECT_EQ(scalar.i, batched[i].i) << "i=" << i;
    EXPECT_EQ(scalar.d_vg, batched[i].d_vg) << "i=" << i;
    EXPECT_EQ(scalar.d_vs, batched[i].d_vs) << "i=" << i;
    EXPECT_EQ(scalar.d_vd, batched[i].d_vd) << "i=" << i;
  }
}

TEST(BatchFrame, FastPathMatchesVirtualIvEvalBitForBit) {
  // iv_eval_fast (concrete-pointer, no vtable dispatch) and the virtual
  // iv_eval must be the same arithmetic — including swapped orientations
  // and the PMOS mirrored frame.
  for (const TabularDeviceModel* m :
       {&test::models().tabular_n, &test::models().tabular_p}) {
    for (double g : {0.0, 1.1, 2.5, 3.3})
      for (double a : {0.0, 0.4, 1.8, 3.3})
        for (double b : {0.0, 0.7, 2.2, 3.3}) {
          const TerminalVoltages tv{g, a, b};
          const IvEval v = m->iv_eval(1.5e-6, 0.35e-6, tv);
          const IvEval f = m->iv_eval_fast(1.5e-6, 0.35e-6, tv);
          EXPECT_EQ(v.i, f.i);
          EXPECT_EQ(v.d_input, f.d_input);
          EXPECT_EQ(v.d_src, f.d_src);
          EXPECT_EQ(v.d_snk, f.d_snk);
        }
  }
}

/// Frame batch spanning the operating range (vd >= vs precondition).
std::vector<std::array<double, 3>> frame_batch() {
  std::vector<std::array<double, 3>> pts;
  for (double g = -0.5; g <= 4.0; g += 0.45)
    for (double s = -0.2; s <= 3.4; s += 0.6)
      for (double off : {0.0, 0.05, 0.9, 2.1}) pts.push_back({g, s, s + off});
  return pts;
}

TEST(BatchFrame, EvalFramesCornersMatchesPerModelBitForBit) {
  // The shared-axis corner kernel (locate once, blend per lane) against
  // the per-model scalar lookups, for both polarities. Corner grids share
  // the typical axes by construction, so this exercises the fast path.
  const device::CornerLibrary& lib = test::corner_models();
  for (const MosType type : {MosType::nmos, MosType::pmos}) {
    SCOPED_TRACE(type == MosType::nmos ? "nmos" : "pmos");
    const TabularDeviceModel* lanes[kCornerCount];
    for (const Corner c : kAllCorners)
      lanes[static_cast<int>(c)] = &lib.model(c, type);

    const auto pts = frame_batch();
    std::vector<double> vg, vs, vd;
    for (const auto& p : pts) {
      vg.push_back(p[0]);
      vs.push_back(p[1]);
      vd.push_back(p[2]);
    }
    std::vector<TabularDeviceModel::FrameEval> lane_out[kCornerCount];
    TabularDeviceModel::FrameEval* out[kCornerCount];
    for (int m = 0; m < kCornerCount; ++m) {
      lane_out[m].resize(vg.size());
      out[m] = lane_out[m].data();
    }
    TabularDeviceModel::eval_frames_corners(lanes, kCornerCount, vg.size(),
                                            vg.data(), vs.data(), vd.data(),
                                            out);
    for (int m = 0; m < kCornerCount; ++m) {
      SCOPED_TRACE(corner_name(kAllCorners[m]));
      for (std::size_t k = 0; k < vg.size(); ++k) {
        const auto scalar = lanes[m]->eval_frame(vg[k], vs[k], vd[k]);
        ASSERT_EQ(scalar.i, lane_out[m][k].i) << "k=" << k;
        ASSERT_EQ(scalar.d_vg, lane_out[m][k].d_vg) << "k=" << k;
        ASSERT_EQ(scalar.d_vs, lane_out[m][k].d_vs) << "k=" << k;
        ASSERT_EQ(scalar.d_vd, lane_out[m][k].d_vd) << "k=" << k;
      }
    }
    // Corner derivation must actually have produced distinct tables.
    bool differs = false;
    for (std::size_t k = 0; k < vg.size() && !differs; ++k)
      differs = lane_out[0][k].i !=
                lane_out[static_cast<int>(Corner::fast)][k].i;
    EXPECT_TRUE(differs);
  }
}

TEST(BatchFrame, EvalFramesCornersHeterogeneousAxesFallBack) {
  // A coarser-pitch grid does not share the typical axes: the kernel must
  // detect it and route every lane through the plain per-model batch —
  // still bit-identical, never a shared locate on the wrong axis.
  CharacterizationOptions coarse;
  coarse.grid_step = 0.3;
  const TabularDeviceModel other(MosType::nmos, test::models().proc, coarse);
  const TabularDeviceModel* lanes[2] = {&test::models().tabular_n, &other};

  std::vector<double> vg, vs, vd;
  for (const auto& p : frame_batch()) {
    vg.push_back(p[0]);
    vs.push_back(p[1]);
    vd.push_back(p[2]);
  }
  std::vector<TabularDeviceModel::FrameEval> lane_out[2];
  TabularDeviceModel::FrameEval* out[2];
  for (int m = 0; m < 2; ++m) {
    lane_out[m].resize(vg.size());
    out[m] = lane_out[m].data();
  }
  TabularDeviceModel::eval_frames_corners(lanes, 2, vg.size(), vg.data(),
                                          vs.data(), vd.data(), out);
  for (int m = 0; m < 2; ++m) {
    SCOPED_TRACE(m);
    for (std::size_t k = 0; k < vg.size(); ++k) {
      const auto scalar = lanes[m]->eval_frame(vg[k], vs[k], vd[k]);
      ASSERT_EQ(scalar.i, lane_out[m][k].i) << "k=" << k;
      ASSERT_EQ(scalar.d_vg, lane_out[m][k].d_vg) << "k=" << k;
    }
  }
}

TEST(BatchFrame, EvalFramesCornersCountsEveryLanesQueries) {
  const device::CornerLibrary& lib = test::corner_models();
  const TabularDeviceModel* lanes[kCornerCount];
  for (const Corner c : kAllCorners)
    lanes[static_cast<int>(c)] = &lib.model(c, MosType::nmos);
  std::size_t before[kCornerCount];
  for (int m = 0; m < kCornerCount; ++m) before[m] = lanes[m]->query_count();

  const double vg[3] = {1.0, 2.0, 3.0};
  const double vs[3] = {0.0, 0.1, 0.2};
  const double vd[3] = {1.0, 1.5, 2.0};
  TabularDeviceModel::FrameEval buf[kCornerCount][3];
  TabularDeviceModel::FrameEval* out[kCornerCount] = {buf[0], buf[1], buf[2]};
  TabularDeviceModel::eval_frames_corners(lanes, kCornerCount, 3, vg, vs, vd,
                                          out);
  for (int m = 0; m < kCornerCount; ++m)
    EXPECT_EQ(lanes[m]->query_count(), before[m] + 3) << "lane " << m;
}

TEST(BatchFrame, QueryAccountingCountsBatchedLookups) {
  const TabularDeviceModel& m = test::models().tabular_n;
  const std::size_t before = m.query_count();
  const double vg[3] = {1.0, 2.0, 3.0};
  const double vs[3] = {0.0, 0.1, 0.2};
  const double vd[3] = {1.0, 1.5, 2.0};
  TabularDeviceModel::FrameEval out[3];
  m.eval_frames(3, vg, vs, vd, out);
  EXPECT_EQ(m.query_count(), before + 3);
}

}  // namespace
}  // namespace qwm::device
