#include "qwm/device/tabular_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>

#include "qwm/device/analytic_model.h"

namespace qwm::device {
namespace {

struct Fixture {
  Process proc = Process::cmosp35();
  AnalyticDeviceModel golden_n = AnalyticDeviceModel::nmos(proc);
  AnalyticDeviceModel golden_p = AnalyticDeviceModel::pmos(proc);
  TabularDeviceModel tab_n{MosType::nmos, proc};
  TabularDeviceModel tab_p{MosType::pmos, proc};
};

Fixture& fixture() {
  static Fixture f;  // characterization is expensive; share it
  return f;
}

TEST(TabularModel, GridHasPaperDimensions) {
  const auto& g = fixture().tab_n.grid();
  // 0..3.3 V with 0.1 V pitch: 34 points per axis (paper §V-A).
  EXPECT_EQ(g.vs_axis.n, 34u);
  EXPECT_EQ(g.vg_axis.n, 34u);
  EXPECT_EQ(g.size(), 34u * 34u);
}

TEST(TabularModel, FitQualityIsHigh) {
  const auto s = fixture().tab_n.grid().stats();
  EXPECT_GT(s.mean_r2_sat, 0.95);
  EXPECT_GT(s.mean_r2_triode, 0.90);
  EXPECT_EQ(s.grid_points, 34u * 34u);
  EXPECT_GT(s.active_points, 100u);
  EXPECT_LT(s.active_points, s.grid_points);
}

TEST(TabularModel, MatchesGoldenOnGridPoints) {
  auto& f = fixture();
  for (double vs : {0.0, 0.5, 1.0, 2.0}) {
    for (double vg : {1.0, 2.0, 3.3}) {
      for (double vd : {0.0, 0.4, 1.5, 3.3}) {
        if (vd < vs) continue;
        TerminalVoltages tv{vg, vd, vs};
        const double ig = f.golden_n.iv(1e-6, 0.35e-6, tv);
        const double it = f.tab_n.iv(1e-6, 0.35e-6, tv);
        EXPECT_NEAR(it, ig, 0.03 * std::abs(ig) + 2e-6)
            << "vs=" << vs << " vg=" << vg << " vd=" << vd;
      }
    }
  }
}

TEST(TabularModel, MatchesGoldenOffGrid) {
  auto& f = fixture();
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> d(0.0, 3.3);
  double worst_rel = 0.0, sum_rel = 0.0;
  int n_rel = 0;
  for (int k = 0; k < 500; ++k) {
    const double vg = d(rng), a = d(rng), b = d(rng);
    TerminalVoltages tv{vg, a, b};
    const double ig = f.golden_n.iv(1e-6, 0.35e-6, tv);
    const double it = f.tab_n.iv(1e-6, 0.35e-6, tv);
    if (std::abs(ig) > 1e-5) {
      const double rel = std::abs(it - ig) / std::abs(ig);
      worst_rel = std::max(worst_rel, rel);
      sum_rel += rel;
      ++n_rel;
    } else {
      EXPECT_NEAR(it, ig, 5e-6);
    }
  }
  // The paper's tabular model targets ~1% average accuracy; interpolation
  // over a 0.1 V grid keeps the mean around a percent, with the worst
  // points (near-threshold, small currents) a few times that.
  ASSERT_GT(n_rel, 100);
  EXPECT_LT(sum_rel / n_rel, 0.02);
  EXPECT_LT(worst_rel, 0.12);
}

TEST(TabularModel, PmosMatchesGolden) {
  auto& f = fixture();
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> d(0.0, 3.3);
  for (int k = 0; k < 300; ++k) {
    const double vg = d(rng), a = d(rng), b = d(rng);
    TerminalVoltages tv{vg, a, b};
    const double ig = f.golden_p.iv(2e-6, 0.35e-6, tv);
    const double it = f.tab_p.iv(2e-6, 0.35e-6, tv);
    EXPECT_NEAR(it, ig, 0.05 * std::abs(ig) + 5e-6)
        << "vg=" << vg << " a=" << a << " b=" << b;
  }
}

TEST(TabularModel, ReverseConductionAntisymmetric) {
  auto& f = fixture();
  TerminalVoltages fwd{2.5, 2.0, 0.5};
  TerminalVoltages rev{2.5, 0.5, 2.0};
  const double i_f = f.tab_n.iv(1e-6, 0.35e-6, fwd);
  const double i_r = f.tab_n.iv(1e-6, 0.35e-6, rev);
  EXPECT_NEAR(i_f, -i_r, 1e-12 + 1e-9 * std::abs(i_f));
}

TEST(TabularModel, DerivativesMatchFiniteDifference) {
  auto& f = fixture();
  // Pick interior bias points away from the triode/saturation knee where
  // the fitted model is smooth.
  for (const auto& [vg, vd, vs] :
       {std::tuple{2.52, 2.91, 0.23}, std::tuple{1.73, 1.52, 0.68},
        std::tuple{3.12, 2.33, 1.17}}) {
    TerminalVoltages tv{vg, vd, vs};
    const IvEval e = f.tab_n.iv_eval(1e-6, 0.35e-6, tv);
    const double h = 1e-5;
    auto iv_at = [&](double g, double d2, double s2) {
      return f.tab_n.iv(1e-6, 0.35e-6, TerminalVoltages{g, d2, s2});
    };
    const double dg = (iv_at(vg + h, vd, vs) - iv_at(vg - h, vd, vs)) / (2 * h);
    const double dd = (iv_at(vg, vd + h, vs) - iv_at(vg, vd - h, vs)) / (2 * h);
    const double ds = (iv_at(vg, vd, vs + h) - iv_at(vg, vd, vs - h)) / (2 * h);
    const double tol = 5e-5 + 0.02 * std::abs(e.i);
    EXPECT_NEAR(e.d_input, dg, tol);
    EXPECT_NEAR(e.d_src, dd, tol);
    EXPECT_NEAR(e.d_snk, ds, tol);
  }
}

TEST(TabularModel, WidthScaling) {
  auto& f = fixture();
  TerminalVoltages tv{3.3, 2.0, 0.0};
  const double i1 = f.tab_n.iv(1e-6, 0.35e-6, tv);
  const double i4 = f.tab_n.iv(4e-6, 0.35e-6, tv);
  EXPECT_NEAR(i4 / i1, 4.0, 1e-9);
}

TEST(TabularModel, ThresholdTracksGolden) {
  auto& f = fixture();
  for (double vs : {0.0, 0.5, 1.5, 2.5}) {
    TerminalVoltages tv{3.3, vs + 0.5, vs};
    EXPECT_NEAR(f.tab_n.threshold(tv), f.golden_n.threshold(tv), 0.02);
  }
}

TEST(TabularModel, CountsQueries) {
  const Process proc = Process::cmosp35();
  CharacterizationOptions fast;
  fast.grid_step = 0.5;
  TabularDeviceModel t(MosType::nmos, proc, fast);
  EXPECT_EQ(t.query_count(), 0u);
  t.iv(1e-6, 0.35e-6, TerminalVoltages{1.0, 1.0, 0.0});
  t.iv_eval(1e-6, 0.35e-6, TerminalVoltages{1.0, 1.0, 0.0});
  EXPECT_EQ(t.query_count(), 2u);
}

TEST(TabularModel, CapsMatchAnalyticModel) {
  auto& f = fixture();
  EXPECT_DOUBLE_EQ(f.tab_n.src_cap(2e-6, 0.35e-6),
                   f.golden_n.src_cap(2e-6, 0.35e-6));
  EXPECT_DOUBLE_EQ(f.tab_n.input_cap(2e-6, 0.35e-6),
                   f.golden_n.input_cap(2e-6, 0.35e-6));
  EXPECT_GT(f.tab_n.snk_cap(1e-6, 0.35e-6), 0.0);
}

}  // namespace
}  // namespace qwm::device
