// Cross-backend bit-exactness of the runtime-dispatched frame kernel:
// the portable scalar loop and the AVX2 batch implement the same
// operation DAG (no FMA contraction, same order), so every observable —
// frame lookups, shared-axis corner blends, full stage evaluations, and
// the fallback-ladder rung an armed fault lands on — must be bitwise
// equal between the two. The AVX2 comparisons skip on hosts without the
// instruction set; the scalar backend is always compiled and supported.
#include "qwm/device/frame_kernel.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "../common/backend_guard.h"
#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/device/tabular_model.h"
#include "qwm/support/fault_injection.h"

namespace qwm::device {
namespace {

using kernel::Backend;
using support::FaultPlan;
using support::FaultRule;
using support::FaultSite;
using support::ScopedFaultPlan;
using test::ScopedBackend;

/// Frame batch spanning the operating range (vd >= vs precondition),
/// sized to leave remainder lanes (n % kSimdWidth != 0) so the AVX2
/// backend's scalar tail path is exercised too.
std::vector<std::array<double, 3>> frame_batch() {
  std::vector<std::array<double, 3>> pts;
  for (double g = -0.5; g <= 4.0; g += 0.45)
    for (double s = -0.2; s <= 3.4; s += 0.6)
      for (double off : {0.0, 0.05, 0.9, 2.1}) pts.push_back({g, s, s + off});
  while (pts.size() % kernel::kSimdWidth == 0) pts.push_back({1.3, 0.2, 0.9});
  return pts;
}

TEST(SimdBackend, ScalarBackendAlwaysAvailable) {
  EXPECT_TRUE(kernel::backend_compiled(Backend::scalar));
  EXPECT_TRUE(kernel::backend_supported(Backend::scalar));
  ScopedBackend guard(Backend::scalar);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(kernel::active_backend(), Backend::scalar);
}

TEST(SimdBackend, UnsupportedBackendRequestLeavesDispatchUnchanged) {
  const Backend before = kernel::active_backend();
  if (kernel::backend_supported(Backend::avx2)) {
    ScopedBackend guard(Backend::avx2);
    EXPECT_TRUE(guard.ok());
    EXPECT_EQ(kernel::active_backend(), Backend::avx2);
  } else {
    EXPECT_FALSE(kernel::set_backend(Backend::avx2));
    EXPECT_EQ(kernel::active_backend(), before);
  }
  EXPECT_EQ(kernel::active_backend(), before);
}

TEST(SimdBackend, FrameBatchBitIdenticalAcrossBackends) {
  if (!kernel::backend_supported(Backend::avx2))
    GTEST_SKIP() << "host has no AVX2";
  const auto pts = frame_batch();
  std::vector<double> vg, vs, vd;
  for (const auto& p : pts) {
    vg.push_back(p[0]);
    vs.push_back(p[1]);
    vd.push_back(p[2]);
  }
  for (const TabularDeviceModel* m :
       {&test::models().tabular_n, &test::models().tabular_p}) {
    std::vector<TabularDeviceModel::FrameEval> scalar(vg.size());
    std::vector<TabularDeviceModel::FrameEval> avx(vg.size());
    {
      ScopedBackend guard(Backend::scalar);
      ASSERT_TRUE(guard.ok());
      m->eval_frames(vg.size(), vg.data(), vs.data(), vd.data(),
                     scalar.data());
    }
    {
      ScopedBackend guard(Backend::avx2);
      ASSERT_TRUE(guard.ok());
      m->eval_frames(vg.size(), vg.data(), vs.data(), vd.data(), avx.data());
    }
    for (std::size_t k = 0; k < vg.size(); ++k) {
      ASSERT_EQ(scalar[k].i, avx[k].i) << "k=" << k;
      ASSERT_EQ(scalar[k].d_vg, avx[k].d_vg) << "k=" << k;
      ASSERT_EQ(scalar[k].d_vs, avx[k].d_vs) << "k=" << k;
      ASSERT_EQ(scalar[k].d_vd, avx[k].d_vd) << "k=" << k;
    }
  }
}

TEST(SimdBackend, CornerMultiGridBitIdenticalAcrossBackends) {
  if (!kernel::backend_supported(Backend::avx2))
    GTEST_SKIP() << "host has no AVX2";
  const device::CornerLibrary& lib = test::corner_models();
  const TabularDeviceModel* lanes[kCornerCount];
  for (const Corner c : kAllCorners)
    lanes[static_cast<int>(c)] = &lib.model(c, MosType::nmos);

  const auto pts = frame_batch();
  std::vector<double> vg, vs, vd;
  for (const auto& p : pts) {
    vg.push_back(p[0]);
    vs.push_back(p[1]);
    vd.push_back(p[2]);
  }
  std::vector<TabularDeviceModel::FrameEval> scalar[kCornerCount];
  std::vector<TabularDeviceModel::FrameEval> avx[kCornerCount];
  TabularDeviceModel::FrameEval* out[kCornerCount];
  {
    ScopedBackend guard(Backend::scalar);
    ASSERT_TRUE(guard.ok());
    for (int m = 0; m < kCornerCount; ++m) {
      scalar[m].resize(vg.size());
      out[m] = scalar[m].data();
    }
    TabularDeviceModel::eval_frames_corners(lanes, kCornerCount, vg.size(),
                                            vg.data(), vs.data(), vd.data(),
                                            out);
  }
  {
    ScopedBackend guard(Backend::avx2);
    ASSERT_TRUE(guard.ok());
    for (int m = 0; m < kCornerCount; ++m) {
      avx[m].resize(vg.size());
      out[m] = avx[m].data();
    }
    TabularDeviceModel::eval_frames_corners(lanes, kCornerCount, vg.size(),
                                            vg.data(), vs.data(), vd.data(),
                                            out);
  }
  for (int m = 0; m < kCornerCount; ++m) {
    SCOPED_TRACE(corner_name(kAllCorners[m]));
    for (std::size_t k = 0; k < vg.size(); ++k) {
      ASSERT_EQ(scalar[m][k].i, avx[m][k].i) << "k=" << k;
      ASSERT_EQ(scalar[m][k].d_vg, avx[m][k].d_vg) << "k=" << k;
      ASSERT_EQ(scalar[m][k].d_vs, avx[m][k].d_vs) << "k=" << k;
      ASSERT_EQ(scalar[m][k].d_vd, avx[m][k].d_vd) << "k=" << k;
    }
  }
}

/// The reference workload for whole-solve comparisons: a NAND2 discharge
/// event (same as the fault-ladder suite).
core::StageTiming eval_nand() {
  static const device::ModelSet ms = test::models().tabular_set();
  const auto& proc = test::models().proc;
  const auto b = circuit::make_nand(proc, 2, 20e-15);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd),
      numeric::PwlWaveform::constant(proc.vdd)};
  return core::evaluate_stage(b, inputs, ms);
}

TEST(SimdBackend, StageEvalBitIdenticalAcrossBackends) {
  if (!kernel::backend_supported(Backend::avx2))
    GTEST_SKIP() << "host has no AVX2";
  core::StageTiming scalar, avx;
  {
    ScopedBackend guard(Backend::scalar);
    ASSERT_TRUE(guard.ok());
    scalar = eval_nand();
  }
  {
    ScopedBackend guard(Backend::avx2);
    ASSERT_TRUE(guard.ok());
    avx = eval_nand();
  }
  ASSERT_TRUE(scalar.ok && scalar.delay && scalar.output_slew) << scalar.error;
  ASSERT_TRUE(avx.ok && avx.delay && avx.output_slew) << avx.error;
  EXPECT_EQ(*scalar.delay, *avx.delay);            // bit-identical
  EXPECT_EQ(*scalar.output_slew, *avx.output_slew);
  // Identical arithmetic implies the identical solve trajectory.
  EXPECT_EQ(scalar.qwm.stats.newton_iterations,
            avx.qwm.stats.newton_iterations);
  EXPECT_EQ(scalar.qwm.stats.device_evals, avx.qwm.stats.device_evals);
  EXPECT_EQ(scalar.qwm.stats.simd_batches, avx.qwm.stats.simd_batches);
  EXPECT_EQ(scalar.qwm.stats.simd_lanes_filled,
            avx.qwm.stats.simd_lanes_filled);
}

TEST(SimdBackend, FallbackRungsLandSameAcrossBackends) {
  // All four ladder rungs: an armed fault plan must drive both backends
  // down the identical recovery path — same rung counts, same degraded
  // flag, bit-identical committed delay — because rung decisions hang off
  // convergence tests over bit-identical iterates.
  if (!kernel::backend_supported(Backend::avx2))
    GTEST_SKIP() << "host has no AVX2";

  struct RungCase {
    const char* name;
    FaultPlan plan;
    int expected_rung;  // fallback_counts index that must be > 0
  };
  std::vector<RungCase> cases;
  cases.push_back({"nominal", FaultPlan{}, core::kRungNominal});
  {
    FaultPlan p;
    FaultRule stall;
    stall.site = FaultSite::kNewtonStall;
    stall.max_rung = 0;
    stall.magnitude = 0.0;
    p.add(stall);
    cases.push_back({"damped", p, core::kRungDamped});
  }
  {
    FaultPlan p;
    FaultRule stall;
    stall.site = FaultSite::kNewtonStall;
    stall.max_rung = 1;
    p.add(stall);
    cases.push_back({"bisect", p, core::kRungBisect});
  }
  {
    FaultPlan p;
    FaultRule stall;
    stall.site = FaultSite::kNewtonStall;
    stall.max_rung = 1;
    p.add(stall);
    p.add(FaultRule{.site = FaultSite::kBisectionFail});
    cases.push_back({"spice", p, core::kRungSpice});
  }

  for (const RungCase& c : cases) {
    SCOPED_TRACE(c.name);
    core::StageTiming scalar, avx;
    {
      ScopedBackend guard(Backend::scalar);
      ASSERT_TRUE(guard.ok());
      ScopedFaultPlan armed{c.plan};
      scalar = eval_nand();
    }
    {
      ScopedBackend guard(Backend::avx2);
      ASSERT_TRUE(guard.ok());
      ScopedFaultPlan armed{c.plan};
      avx = eval_nand();
    }
    ASSERT_TRUE(scalar.ok && scalar.delay) << scalar.error;
    ASSERT_TRUE(avx.ok && avx.delay) << avx.error;
    EXPECT_GT(avx.qwm.stats.fallback_counts[c.expected_rung], 0u);
    for (int r = 0; r < core::kFallbackRungs; ++r)
      EXPECT_EQ(scalar.qwm.stats.fallback_counts[r],
                avx.qwm.stats.fallback_counts[r])
          << "rung " << r;
    EXPECT_EQ(scalar.qwm.degraded, avx.qwm.degraded);
    EXPECT_EQ(*scalar.delay, *avx.delay);  // bit-identical on every rung
  }
}

}  // namespace
}  // namespace qwm::device
