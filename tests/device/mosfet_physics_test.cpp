#include "qwm/device/mosfet_physics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace qwm::device {
namespace {

constexpr double kW = 1.0e-6;
constexpr double kL = 0.35e-6;

MosfetPhysics make_nmos() {
  const Process p = Process::cmosp35();
  return MosfetPhysics(MosType::nmos, p.nmos, p.temp_vt);
}
MosfetPhysics make_pmos() {
  const Process p = Process::cmosp35();
  return MosfetPhysics(MosType::pmos, p.pmos, p.temp_vt);
}

TEST(MosfetPhysics, CutoffCurrentIsNegligible) {
  const MosfetPhysics m = make_nmos();
  // Gate at 0, source at 0: off.
  const double i = m.ids(kW, kL, 0.0, 3.3, 0.0, 0.0);
  EXPECT_LT(std::abs(i), 1e-9);
}

TEST(MosfetPhysics, StrongInversionCurrentIsSubstantial) {
  const MosfetPhysics m = make_nmos();
  const double i = m.ids(kW, kL, 3.3, 3.3, 0.0, 0.0);
  EXPECT_GT(i, 1e-4);  // hundreds of uA for a 1 um device
  EXPECT_LT(i, 5e-3);
}

TEST(MosfetPhysics, ZeroVdsGivesZeroCurrent) {
  const MosfetPhysics m = make_nmos();
  EXPECT_DOUBLE_EQ(m.ids(kW, kL, 3.3, 1.0, 1.0, 0.0), 0.0);
}

TEST(MosfetPhysics, ChannelSymmetry) {
  // Swapping the channel terminals must exactly negate the current.
  const MosfetPhysics m = make_nmos();
  for (double va : {0.3, 1.1, 2.2}) {
    for (double vb : {0.0, 0.9, 3.0}) {
      const double iab = m.ids(kW, kL, 2.5, va, vb, 0.0);
      const double iba = m.ids(kW, kL, 2.5, vb, va, 0.0);
      EXPECT_NEAR(iab, -iba, 1e-15 + 1e-9 * std::abs(iab));
    }
  }
}

TEST(MosfetPhysics, CurrentScalesLinearlyWithWidth) {
  const MosfetPhysics m = make_nmos();
  const double i1 = m.ids(kW, kL, 3.3, 2.0, 0.0, 0.0);
  const double i3 = m.ids(3.0 * kW, kL, 3.3, 2.0, 0.0, 0.0);
  EXPECT_NEAR(i3 / i1, 3.0, 1e-9);
}

TEST(MosfetPhysics, MonotonicInGateDrive) {
  const MosfetPhysics m = make_nmos();
  double prev = -1.0;
  for (double vg = 0.0; vg <= 3.3; vg += 0.1) {
    const double i = m.ids(kW, kL, vg, 2.0, 0.0, 0.0);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(MosfetPhysics, MonotonicNondecreasingInVds) {
  const MosfetPhysics m = make_nmos();
  double prev = -1.0;
  for (double vd = 0.0; vd <= 3.3; vd += 0.05) {
    const double i = m.ids(kW, kL, 2.5, vd, 0.0, 0.0);
    EXPECT_GE(i, prev - 1e-15);
    prev = i;
  }
}

TEST(MosfetPhysics, BodyEffectRaisesThreshold) {
  const MosfetPhysics m = make_nmos();
  EXPECT_GT(m.threshold(1.0), m.threshold(0.0));
  EXPECT_NEAR(m.threshold(0.0), 0.55, 1e-12);
}

TEST(MosfetPhysics, VdsatGrowsSublinearlyWithOverdrive) {
  const MosfetPhysics m = make_nmos();
  const double v1 = m.vdsat(1.0, kL);
  const double v2 = m.vdsat(2.0, kL);
  EXPECT_GT(v2, v1);
  EXPECT_LT(v2, 2.0 * v1);  // velocity saturation compresses
  EXPECT_LT(v1, 1.0);       // below the long-channel value
  EXPECT_DOUBLE_EQ(m.vdsat(0.0, kL), 0.0);
}

TEST(MosfetPhysics, PmosMirrorsNmosBehaviour) {
  const MosfetPhysics p = make_pmos();
  // Source at VDD, gate low: conducts from source (a) to drain (b).
  const double on = p.ids(kW, kL, 0.0, 3.3, 0.0, 3.3);
  EXPECT_GT(on, 1e-5);
  // Gate high: off.
  const double off = p.ids(kW, kL, 3.3, 3.3, 0.0, 3.3);
  EXPECT_LT(std::abs(off), 1e-9);
  // Current decreases as the gate rises.
  const double mid = p.ids(kW, kL, 1.5, 3.3, 0.0, 3.3);
  EXPECT_GT(on, mid);
  EXPECT_GT(mid, off);
}

// Derivative checks against central finite differences, over a bias grid
// and both polarities.
class MosfetDerivTest
    : public ::testing::TestWithParam<std::tuple<int, double, double, double>> {
};

TEST_P(MosfetDerivTest, AnalyticMatchesFiniteDifference) {
  const auto [polarity, vg, va, vb] = GetParam();
  const Process proc = Process::cmosp35();
  const MosfetPhysics m =
      polarity == 0 ? MosfetPhysics(MosType::nmos, proc.nmos, proc.temp_vt)
                    : MosfetPhysics(MosType::pmos, proc.pmos, proc.temp_vt);
  const double vbulk = polarity == 0 ? 0.0 : 3.3;
  const MosfetEval e = m.eval(kW, kL, vg, va, vb, vbulk);
  const double h = 1e-6;
  const double dg = (m.ids(kW, kL, vg + h, va, vb, vbulk) -
                     m.ids(kW, kL, vg - h, va, vb, vbulk)) /
                    (2 * h);
  const double da = (m.ids(kW, kL, vg, va + h, vb, vbulk) -
                     m.ids(kW, kL, vg, va - h, vb, vbulk)) /
                    (2 * h);
  const double db = (m.ids(kW, kL, vg, va, vb + h, vbulk) -
                     m.ids(kW, kL, vg, va, vb - h, vbulk)) /
                    (2 * h);
  const double tol = 1e-6 * std::max(1.0, std::abs(e.ids) * 1e4) + 2e-7;
  EXPECT_NEAR(e.d_vg, dg, tol);
  EXPECT_NEAR(e.d_va, da, tol);
  EXPECT_NEAR(e.d_vb, db, tol);
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetDerivTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0.3, 1.2, 2.1, 3.0),
                       ::testing::Values(0.1, 1.4, 2.8),
                       ::testing::Values(0.4, 1.7, 3.2)));

}  // namespace
}  // namespace qwm::device
