#include "qwm/device/analytic_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qwm::device {
namespace {

const Process& proc() {
  static Process p = Process::cmosp35();
  return p;
}

TEST(AnalyticModel, IvMatchesPhysicsDirectly) {
  const AnalyticDeviceModel m = AnalyticDeviceModel::nmos(proc());
  const MosfetPhysics phys(MosType::nmos, proc().nmos, proc().temp_vt);
  for (double vg : {0.8, 2.0, 3.3})
    for (double vd : {0.3, 1.7, 3.3})
      EXPECT_DOUBLE_EQ(m.iv(1e-6, 0.35e-6, TerminalVoltages{vg, vd, 0.0}),
                       phys.ids(1e-6, 0.35e-6, vg, vd, 0.0, 0.0));
}

TEST(AnalyticModel, IvEvalConsistentWithIv) {
  const AnalyticDeviceModel m = AnalyticDeviceModel::pmos(proc());
  const TerminalVoltages tv{1.0, 3.3, 1.2};
  const IvEval e = m.iv_eval(2e-6, 0.35e-6, tv);
  EXPECT_DOUBLE_EQ(e.i, m.iv(2e-6, 0.35e-6, tv));
}

TEST(AnalyticModel, ThresholdUsesConductingSource) {
  const AnalyticDeviceModel n = AnalyticDeviceModel::nmos(proc());
  // NMOS: higher source voltage -> body effect raises vth. The source is
  // the lower terminal regardless of ordering.
  const double v0 = n.threshold(TerminalVoltages{3.3, 2.0, 0.0});
  const double v1 = n.threshold(TerminalVoltages{3.3, 2.0, 1.5});
  const double v1_swapped = n.threshold(TerminalVoltages{3.3, 1.5, 2.0});
  EXPECT_GT(v1, v0);
  EXPECT_DOUBLE_EQ(v1, v1_swapped);

  // PMOS: source is the *higher* terminal; well at VDD means vsb = 0 when
  // the source sits at the supply.
  const AnalyticDeviceModel p = AnalyticDeviceModel::pmos(proc());
  EXPECT_NEAR(p.threshold(TerminalVoltages{0.0, 3.3, 1.0}),
              proc().pmos.vth0, 1e-12);
  EXPECT_GT(p.threshold(TerminalVoltages{0.0, 2.0, 1.0}),
            proc().pmos.vth0);
}

TEST(AnalyticModel, VdsatReasonable) {
  const AnalyticDeviceModel n = AnalyticDeviceModel::nmos(proc());
  const double v = n.vdsat(0.35e-6, TerminalVoltages{3.3, 1.0, 0.0});
  EXPECT_GT(v, 0.2);
  EXPECT_LT(v, 3.3 - proc().nmos.vth0);  // velocity-saturated below vgt
  // Off device: vdsat 0.
  EXPECT_DOUBLE_EQ(n.vdsat(0.35e-6, TerminalVoltages{0.0, 1.0, 0.0}), 0.0);
}

TEST(AnalyticModel, CapsScaleWithGeometry) {
  const AnalyticDeviceModel n = AnalyticDeviceModel::nmos(proc());
  EXPECT_GT(n.src_cap(2e-6, 0.35e-6), n.src_cap(1e-6, 0.35e-6));
  EXPECT_GT(n.input_cap(1e-6, 0.7e-6), n.input_cap(1e-6, 0.35e-6));
  EXPECT_DOUBLE_EQ(n.src_cap(1e-6, 0.35e-6), n.snk_cap(1e-6, 0.35e-6));
  // A 1 um device's junction+overlap cap is femtofarads.
  EXPECT_GT(n.src_cap(1e-6, 0.35e-6), 0.2e-15);
  EXPECT_LT(n.src_cap(1e-6, 0.35e-6), 10e-15);
}

TEST(AnalyticModel, BulkVoltageConvention) {
  EXPECT_DOUBLE_EQ(AnalyticDeviceModel::nmos(proc()).bulk_voltage(), 0.0);
  EXPECT_DOUBLE_EQ(AnalyticDeviceModel::pmos(proc()).bulk_voltage(),
                   proc().vdd);
}

}  // namespace
}  // namespace qwm::device
