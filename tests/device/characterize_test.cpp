#include "qwm/device/characterize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "qwm/device/process.h"

namespace qwm::device {
namespace {

MosfetPhysics nmos_physics() {
  const Process p = Process::cmosp35();
  return MosfetPhysics(MosType::nmos, p.nmos, p.temp_vt);
}

TEST(Characterize, GridShapeFollowsOptions) {
  CharacterizationOptions opt;
  opt.grid_step = 0.3;
  const auto g = characterize(nmos_physics(), 3.3, opt);
  EXPECT_EQ(g.vs_axis.n, 12u);  // round(3.3/0.3) + 1
  EXPECT_EQ(g.points.size(), 12u * 12u);
  EXPECT_DOUBLE_EQ(g.w_ref, opt.w_ref);
}

TEST(Characterize, SevenParametersPerPoint) {
  // The point for a strongly-on device must populate both fits plus
  // vth/vdsat (the paper's 7 stored parameters).
  CharacterizationOptions opt;
  opt.grid_step = 1.1;
  const auto g = characterize(nmos_physics(), 3.3, opt);
  const CharacterizedPoint& p = g.at(0, 3);  // vs = 0, vg = 3.3
  EXPECT_GT(p.vth, 0.3);
  EXPECT_GT(p.vdsat, 0.1);
  EXPECT_NE(p.t1, 0.0);
  EXPECT_NE(p.s0, 0.0);
}

TEST(Characterize, OffDeviceHasTinyCurrents) {
  CharacterizationOptions opt;
  opt.grid_step = 1.1;
  const auto g = characterize(nmos_physics(), 3.3, opt);
  const CharacterizedPoint& p = g.at(0, 0);  // vs = 0, vg = 0: off
  EXPECT_LT(std::abs(p.eval(1.0)), 1e-8);
  EXPECT_LT(std::abs(p.eval(3.3)), 1e-8);
}

TEST(Characterize, PointEvalContinuousAtKnee) {
  CharacterizationOptions opt;
  opt.grid_step = 1.1;
  const auto g = characterize(nmos_physics(), 3.3, opt);
  const CharacterizedPoint& p = g.at(0, 3);
  const double below = p.eval(p.vdsat - 1e-9);
  const double above = p.eval(p.vdsat + 1e-9);
  // Two independent least-squares fits meet near the knee; the gap must
  // be small relative to the current level.
  EXPECT_NEAR(below, above, 0.05 * std::abs(above) + 1e-7);
}

TEST(Characterize, StatsAggregateSanely) {
  CharacterizationOptions opt;
  opt.grid_step = 0.55;
  const auto g = characterize(nmos_physics(), 3.3, opt);
  const auto s = g.stats();
  EXPECT_EQ(s.grid_points, g.points.size());
  EXPECT_GT(s.active_points, 0u);
  EXPECT_GT(s.mean_r2_sat, 0.9);
  EXPECT_GE(s.worst_rms_sat, 0.0);
}

TEST(SampleIvFit, TracksGoldenClosely) {
  const auto curve = sample_iv_fit(nmos_physics(), 3.3, 0.0, 3.3);
  ASSERT_EQ(curve.vds.size(), curve.ids_data.size());
  ASSERT_EQ(curve.vds.size(), curve.ids_fit.size());
  double imax = 0.0;
  for (double i : curve.ids_data) imax = std::max(imax, std::abs(i));
  ASSERT_GT(imax, 0.0);
  for (std::size_t k = 0; k < curve.vds.size(); ++k)
    EXPECT_NEAR(curve.ids_fit[k], curve.ids_data[k], 0.04 * imax)
        << "at vds=" << curve.vds[k];
}

TEST(SampleIvFit, FitRegionsSplitAtVdsat) {
  const auto curve = sample_iv_fit(nmos_physics(), 3.3, 0.5, 2.5);
  EXPECT_GT(curve.vdsat, 0.0);
  EXPECT_GT(curve.vth, 0.55);  // body effect at vs = 0.5
}

}  // namespace
}  // namespace qwm::device
