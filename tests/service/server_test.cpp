// Server transport tests: dispatch via handle_line, the scripted stdio
// session, the TCP loopback path, and the BUSY / DEADLINE shed paths.
#include "qwm/service/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace qwm::service {
namespace {

std::string chain_deck(int n) {
  std::string deck = "inverter chain\nvdd vdd 0 3.3\nvin in 0 0\n";
  std::string prev = "in";
  for (int i = 0; i < n; ++i) {
    const std::string out = i + 1 == n ? "out" : "s" + std::to_string(i + 1);
    const std::string tag = std::to_string(i);
    deck += "mn" + tag + " " + out + " " + prev + " 0 0 nmos W=1.5u L=0.35u\n";
    deck += "mp" + tag + " " + out + " " + prev +
            " vdd vdd pmos W=3u L=0.35u\n";
    prev = out;
  }
  deck += "cl out 0 20f\n.end\n";
  return deck;
}

/// Writes the deck to a temp file and returns its path.
std::string write_deck(const std::string& name, int stages) {
  const std::string path = testing::TempDir() + name;
  std::ofstream f(path);
  f << chain_deck(stages);
  EXPECT_TRUE(f.good());
  return path;
}

/// Minimal blocking line client for the loopback tests.
struct TestClient {
  int fd = -1;
  std::string buf;

  bool connect_to(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr) == 0;
  }

  std::string round_trip(const std::string& req) {
    std::string msg = req + "\n";
    std::size_t off = 0;
    while (off < msg.size()) {
      const ssize_t n =
          ::send(fd, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return "";
      off += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      char chunk[1024];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return "";
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  ~TestClient() {
    if (fd >= 0) ::close(fd);
  }
};

TEST(Server, HandleLineDispatch) {
  Server server;
  EXPECT_TRUE(is_err(server.handle_line("ARRIVAL out"), "NODESIGN"));
  EXPECT_TRUE(is_err(server.handle_line("FROBNICATE"), "BADCMD"));
  EXPECT_TRUE(is_err(server.handle_line("SLACK out"), "ARG"));
  EXPECT_EQ(server.handle_line(""), "");          // ignorable
  EXPECT_EQ(server.handle_line("# comment"), ""); // ignorable
  EXPECT_EQ(server.stats().malformed, 2u);

  const std::string path = write_deck("server_dispatch.sp", 3);
  const std::string load = server.handle_line("LOAD " + path);
  ASSERT_TRUE(is_ok(load)) << load;
  EXPECT_EQ(response_field(load, "stages"), "3");
  EXPECT_EQ(response_field(load, "epoch"), "1");

  const std::string arr = server.handle_line("ARRIVAL out");
  ASSERT_TRUE(is_ok(arr)) << arr;
  EXPECT_EQ(response_field(arr, "rise_valid"), "1");
  EXPECT_EQ(response_field(arr, "fall_valid"), "1");

  // Per-verb accounting: 1 LOAD + 1 ARRIVAL ok, 1 ARRIVAL error.
  const ServerStats st = server.stats();
  EXPECT_EQ(st.verb[static_cast<int>(Verb::kLoad)].requests, 1u);
  EXPECT_EQ(st.verb[static_cast<int>(Verb::kArrival)].requests, 2u);
  EXPECT_EQ(st.verb[static_cast<int>(Verb::kArrival)].errors, 1u);
}

TEST(Server, ServeStreamScriptedSession) {
  const std::string path = write_deck("server_stream.sp", 3);
  std::istringstream in("LOAD " + path +
                        "\n"
                        "# comment\n"
                        "ARRIVAL out\n"
                        "RESIZE 0 0 2.5u\n"
                        "UPDATE\n"
                        "STATS\n"
                        "SHUTDOWN\n");
  std::ostringstream out;
  Server server;
  EXPECT_EQ(server.serve_stream(in, out), 0);

  std::vector<std::string> lines;
  std::istringstream resp(out.str());
  for (std::string l; std::getline(resp, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 6u) << out.str();  // comment produced no line
  EXPECT_TRUE(is_ok(lines[0])) << lines[0];  // LOAD
  EXPECT_TRUE(is_ok(lines[1])) << lines[1];  // ARRIVAL
  EXPECT_TRUE(is_ok(lines[2])) << lines[2];  // RESIZE
  EXPECT_TRUE(is_ok(lines[3])) << lines[3];  // UPDATE
  EXPECT_TRUE(is_ok(lines[4])) << lines[4];  // STATS
  EXPECT_EQ(lines[5], "OK bye");             // SHUTDOWN
  EXPECT_EQ(response_field(lines[3], "epoch"), "3");
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(Server, ServeStreamStopsAtEof) {
  std::istringstream in("STATS\n");  // no SHUTDOWN: EOF ends the session
  std::ostringstream out;
  Server server;
  EXPECT_EQ(server.serve_stream(in, out), 0);
  EXPECT_TRUE(is_ok(out.str()));
}

TEST(Server, TcpLoopbackSession) {
  const std::string path = write_deck("server_tcp.sp", 4);
  Server server;
  ASSERT_TRUE(server.listen(0));
  ASSERT_GT(server.port(), 0);
  std::thread serving([&] { server.serve(); });

  {
    TestClient c;
    ASSERT_TRUE(c.connect_to(server.port()));
    const std::string load = c.round_trip("LOAD " + path);
    ASSERT_TRUE(is_ok(load)) << load;

    // A second concurrent connection sees the same session.
    TestClient c2;
    ASSERT_TRUE(c2.connect_to(server.port()));
    const std::string arr = c2.round_trip("ARRIVAL out");
    ASSERT_TRUE(is_ok(arr)) << arr;
    EXPECT_EQ(response_field(arr, "epoch"), "1");

    EXPECT_TRUE(is_err(c.round_trip("NONSENSE"), "BADCMD"));
    EXPECT_EQ(c.round_trip("SHUTDOWN"), "OK bye");
  }
  serving.join();
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(Server, ZeroCapacityQueueShedsBusy) {
  ServerOptions opt;
  opt.queue_capacity = 0;  // every admission is over capacity
  Server server(opt);
  std::istringstream in("STATS\nSTATS\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);

  std::vector<std::string> lines;
  std::istringstream resp(out.str());
  for (std::string l; std::getline(resp, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 2u) << out.str();
  EXPECT_TRUE(is_err(lines[0], "BUSY")) << lines[0];
  EXPECT_TRUE(is_err(lines[1], "BUSY")) << lines[1];
  EXPECT_EQ(server.stats().busy_rejections, 2u);
}

TEST(Server, TinyDeadlineExpiresInQueue) {
  ServerOptions opt;
  opt.deadline_ms = 1e-9;  // any nonzero queue wait exceeds this
  Server server(opt);
  std::istringstream in("STATS\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);
  EXPECT_TRUE(is_err(out.str(), "DEADLINE")) << out.str();
  EXPECT_EQ(server.stats().deadline_expirations, 1u);
}

TEST(Server, RequestsAfterShutdownAreRefused) {
  Server server;
  server.request_shutdown();
  std::istringstream in("STATS\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);
  // The session refuses immediately: either no response (reader saw the
  // stop flag first) or an explicit ERR SHUTDOWN.
  if (!out.str().empty()) EXPECT_TRUE(is_err(out.str(), "SHUTDOWN"));
}

}  // namespace
}  // namespace qwm::service
