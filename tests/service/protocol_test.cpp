// Wire-protocol unit tests: request parsing, response construction, and
// the %.17g round-trip property the cross-engine verification rests on.
#include "qwm/service/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace qwm::service {
namespace {

TEST(Protocol, ParsesEveryVerb) {
  auto p = parse_request("LOAD /tmp/deck.sp");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.verb, Verb::kLoad);
  EXPECT_EQ(p.request.path, "/tmp/deck.sp");

  p = parse_request("ARRIVAL out");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.verb, Verb::kArrival);
  EXPECT_EQ(p.request.net, "out");

  p = parse_request("SLACK out 2n");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.verb, Verb::kSlack);
  EXPECT_EQ(p.request.net, "out");
  EXPECT_DOUBLE_EQ(p.request.period, 2e-9);

  p = parse_request("CRITPATH");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.verb, Verb::kCritPath);

  p = parse_request("RESIZE 3 7 2.5u");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.verb, Verb::kResize);
  EXPECT_EQ(p.request.stage, 3);
  EXPECT_EQ(p.request.edge, 7);
  EXPECT_DOUBLE_EQ(p.request.width, 2.5e-6);

  EXPECT_TRUE(parse_request("UPDATE").ok);
  EXPECT_TRUE(parse_request("STATS").ok);
  EXPECT_TRUE(parse_request("SHUTDOWN").ok);
}

TEST(Protocol, VerbsAreCaseInsensitive) {
  EXPECT_TRUE(parse_request("arrival n1").ok);
  EXPECT_TRUE(parse_request("Stats").ok);
  EXPECT_TRUE(parse_request("shutdown").ok);
}

TEST(Protocol, UnknownVerbIsBadcmd) {
  const auto p = parse_request("FROBNICATE x");
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.code, "BADCMD");
}

TEST(Protocol, OperandErrorsAreArg) {
  // Wrong operand counts.
  EXPECT_EQ(parse_request("LOAD").code, "ARG");
  EXPECT_EQ(parse_request("ARRIVAL").code, "ARG");
  EXPECT_EQ(parse_request("SLACK out").code, "ARG");
  EXPECT_EQ(parse_request("RESIZE 0 1").code, "ARG");
  EXPECT_EQ(parse_request("UPDATE now").code, "ARG");
  // Malformed numbers.
  EXPECT_EQ(parse_request("SLACK out banana").code, "ARG");
  EXPECT_EQ(parse_request("RESIZE zero 1 2u").code, "ARG");
  EXPECT_EQ(parse_request("RESIZE 0 one 2u").code, "ARG");
  EXPECT_EQ(parse_request("RESIZE 0 1 wide").code, "ARG");
}

TEST(Protocol, BlankAndCommentLinesAreIgnorable) {
  for (const char* line : {"", "   ", "# a comment", "  # indented"}) {
    const auto p = parse_request(line);
    EXPECT_FALSE(p.ok) << line;
    EXPECT_TRUE(p.code.empty()) << line;  // ignorable, not an error
  }
}

TEST(Protocol, ResponseLinesAndClassifiers) {
  EXPECT_EQ(ok_line("epoch=1"), "OK epoch=1");
  EXPECT_EQ(err_line("BUSY", "queue full"), "ERR BUSY queue full");
  EXPECT_TRUE(is_ok("OK epoch=1"));
  EXPECT_FALSE(is_ok("ERR BUSY queue full"));
  EXPECT_TRUE(is_err("ERR BUSY queue full"));
  EXPECT_TRUE(is_err("ERR BUSY queue full", "BUSY"));
  EXPECT_FALSE(is_err("ERR BUSY queue full", "ARG"));
  EXPECT_FALSE(is_err("OK epoch=1"));
}

TEST(Protocol, ErrLineFoldsNewlines) {
  // One request, one response line — embedded newlines must not break
  // the framing.
  const std::string line = err_line("LOAD", "first\nsecond");
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("first second"), std::string::npos);
}

TEST(Protocol, FormatDoubleRoundTripsBits) {
  const double values[] = {0.0,     1.0,        -1.0,       1.964184362427779e-11,
                           2.5e-6,  1.0 / 3.0,  -3.3,       1e-300,
                           std::numeric_limits<double>::max()};
  for (const double v : values) {
    const double back = std::strtod(format_double(v).c_str(), nullptr);
    EXPECT_EQ(back, v) << format_double(v);
  }
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(Protocol, ResponseFieldExtraction) {
  const std::string resp = "OK net=out epoch=12 rise=1.5e-11 fall=-inf";
  EXPECT_EQ(response_field(resp, "net"), "out");
  EXPECT_EQ(response_field(resp, "epoch"), "12");
  EXPECT_EQ(response_field(resp, "fall"), "-inf");
  EXPECT_EQ(response_field(resp, "missing"), "");
  // Key must match whole tokens: "rise" must not match "rise_slew".
  const std::string resp2 = "OK rise_slew=9 rise=3";
  EXPECT_EQ(response_field(resp2, "rise"), "3");
}

}  // namespace
}  // namespace qwm::service
