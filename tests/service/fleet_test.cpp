// Fleet data plane against a single-process reference: a sharded fleet
// must be an implementation detail — every answer bit-identical to the
// one server Server gives for the same deck, across LOAD, point reads,
// replica reads, scatter-gather CRITPATH, and epoch-carrying mutations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet_test_util.h"
#include "qwm/service/protocol.h"

namespace qwm::service {
namespace {

constexpr int kStages = 9;

std::vector<std::string> chain_nets(int n) {
  std::vector<std::string> nets;
  for (int i = 1; i < n; ++i) nets.push_back("s" + std::to_string(i));
  nets.push_back("out");
  nets.push_back("in");
  return nets;
}

ServerOptions reference_options() {
  // Bit-identity across shard counts requires history-independent stage
  // evaluations: the memo cache's bucketed reuse depends on what was
  // evaluated before, which sharding changes. Cache off on both sides
  // makes every answer a pure function of the design.
  ServerOptions opt;
  opt.db.sta.threads = 1;
  opt.db.sta.use_cache = false;
  return opt;
}

class FleetTest : public testing::Test {
 protected:
  void SetUp() override {
    deck_path_ = write_fleet_deck("fleet_chain.sp", fleet_chain_deck(kStages));
    ASSERT_TRUE(is_ok(reference_.handle_line("LOAD " + deck_path_)));
  }

  Server reference_{reference_options()};
  std::string deck_path_;
};

TEST_F(FleetTest, LoadFansOutAndReportsFleetShape) {
  TestFleet tf(3, TestFleet::tight_health(), /*use_cache=*/false);
  const std::string resp = tf.ask("LOAD " + deck_path_);
  ASSERT_TRUE(is_ok(resp)) << resp;
  EXPECT_EQ(response_field(resp, "shards"), "3");
  EXPECT_EQ(response_field(resp, "replicas"), "1");
  EXPECT_EQ(response_field(resp, "epoch"), "1");
  EXPECT_EQ(response_field(resp, "stages"), std::to_string(kStages));
  EXPECT_TRUE(tf.fleet->loaded());
}

TEST_F(FleetTest, ArrivalsBitIdenticalAcrossShardCounts) {
  for (const int n : {1, 2, 3, 4}) {
    TestFleet tf(n, TestFleet::tight_health(), /*use_cache=*/false);
    ASSERT_TRUE(is_ok(tf.ask("LOAD " + deck_path_)));
    for (const auto& net : chain_nets(kStages)) {
      const std::string want = reference_.handle_line("ARRIVAL " + net);
      const std::string got = tf.ask("ARRIVAL " + net);
      EXPECT_EQ(got, want) << "net " << net << " shards " << n;
      EXPECT_FALSE(is_degraded(got));
    }
  }
}

TEST_F(FleetTest, ReplicaReadsMatchReference) {
  TestFleet tf(3, TestFleet::tight_health(), /*use_cache=*/false);
  ASSERT_TRUE(is_ok(tf.ask("LOAD " + deck_path_)));
  for (const auto& net : chain_nets(kStages)) {
    const std::string req = "SLACK " + net + " 2n";
    EXPECT_EQ(tf.ask(req), reference_.handle_line(req)) << net;
  }
}

TEST_F(FleetTest, CritpathStitchesToReferencePath) {
  for (const int n : {2, 3, 4}) {
    TestFleet tf(n, TestFleet::tight_health(), /*use_cache=*/false);
    ASSERT_TRUE(is_ok(tf.ask("LOAD " + deck_path_)));
    EXPECT_EQ(tf.ask("CRITPATH"), reference_.handle_line("CRITPATH"))
        << "shards " << n;
  }
}

TEST_F(FleetTest, MutationsAdvanceTheFleetEpochConsistently) {
  TestFleet tf(3, TestFleet::tight_health(), /*use_cache=*/false);
  ASSERT_TRUE(is_ok(tf.ask("LOAD " + deck_path_)));

  const std::string resize = "RESIZE 0 0 2.5u";
  ASSERT_TRUE(is_ok(reference_.handle_line(resize)));
  ASSERT_TRUE(is_ok(reference_.handle_line("UPDATE")));
  const std::string fr = tf.ask(resize);
  ASSERT_TRUE(is_ok(fr)) << fr;
  const std::string fu = tf.ask("UPDATE");
  ASSERT_TRUE(is_ok(fu)) << fu;
  EXPECT_EQ(response_field(fu, "epoch"), "3");  // LOAD, RESIZE, UPDATE

  // Post-mutation arrivals still match the reference bit for bit (the
  // epoch stamp differs by design: the fleet counts every mutation).
  for (const auto& net : chain_nets(kStages)) {
    const std::string want = reference_.handle_line("ARRIVAL " + net);
    const std::string got = tf.ask("ARRIVAL " + net);
    EXPECT_EQ(with_field(got, "epoch", "x"), with_field(want, "epoch", "x"))
        << net;
  }
}

TEST_F(FleetTest, UnknownNetAndBadVerbsProduceStructuredErrors) {
  TestFleet tf(2, TestFleet::tight_health(), /*use_cache=*/false);
  ASSERT_TRUE(is_ok(tf.ask("LOAD " + deck_path_)));
  EXPECT_EQ(err_code(tf.ask("ARRIVAL no_such_net")), "NOTFOUND");
  EXPECT_EQ(err_code(tf.ask("FROBNICATE")), "BADCMD");
  EXPECT_EQ(err_code(tf.ask("ARRIVAL")), "ARG");
}

TEST_F(FleetTest, QueriesBeforeLoadAreRefused) {
  TestFleet tf(2, TestFleet::tight_health(), /*use_cache=*/false);
  EXPECT_EQ(err_code(tf.ask("ARRIVAL out")), "NODESIGN");
}

TEST_F(FleetTest, HealthLineReportsShardStates) {
  TestFleet tf(2, TestFleet::tight_health(), /*use_cache=*/false);
  ASSERT_TRUE(is_ok(tf.ask("LOAD " + deck_path_)));
  const std::string h = tf.fleet->health_line();
  ASSERT_TRUE(is_ok(h)) << h;
  EXPECT_EQ(response_field(h, "shards"), "2");
  EXPECT_EQ(response_field(h, "loaded"), "1");
  EXPECT_EQ(response_field(h, "states"), "healthy,healthy");
}

}  // namespace
}  // namespace qwm::service
