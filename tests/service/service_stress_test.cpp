// Concurrent service stress test (tier-1): N client threads hammer
// ARRIVAL / SLACK / CRITPATH queries against a DesignDb running the
// multi-threaded engine while a writer thread performs RESIZE + UPDATE
// transactions. Every reply carries its epoch; a fresh *single-threaded*
// StaEngine replaying the same edit prefix must produce bit-identical
// answers at that epoch — the engine's determinism contract means the
// service's lane count cannot change a single bit. Runs clean under
// ThreadSanitizer (the tsan preset builds this suite too).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "qwm/circuit/partition.h"
#include "qwm/netlist/parser.h"
#include "qwm/service/design_db.h"
#include "qwm/sta/sta.h"
#include "../common/test_models.h"

namespace qwm::service {
namespace {

constexpr int kReaders = 8;
constexpr int kTransactions = 6;
constexpr double kPeriod = 2e-9;

/// `chains` independent inverter chains of `depth` stages — enough
/// parallel structure that the multi-threaded engine actually fans out.
std::string fanout_deck(int chains, int depth) {
  std::string deck = "stress farm\nvdd vdd 0 3.3\n";
  for (int c = 0; c < chains; ++c) {
    const std::string in = "in" + std::to_string(c);
    deck += "v" + std::to_string(c) + " " + in + " 0 0\n";
    std::string prev = in;
    for (int d = 0; d < depth; ++d) {
      const std::string out =
          "n" + std::to_string(c) + "_" + std::to_string(d);
      const std::string tag = std::to_string(c) + "_" + std::to_string(d);
      // Vary widths so stages are not all cache-identical.
      const int w = 15 + 2 * ((c + d) % 3);
      deck += "mn" + tag + " " + out + " " + prev + " 0 0 nmos W=" +
              std::to_string(w) + "e-7 L=0.35u\n";
      deck += "mp" + tag + " " + out + " " + prev + " vdd vdd pmos W=" +
              std::to_string(2 * w) + "e-7 L=0.35u\n";
      prev = out;
    }
    deck += "cl" + std::to_string(c) + " " + prev + " 0 20f\n";
  }
  deck += ".end\n";
  return deck;
}

struct Edit {
  int stage;
  int edge;
  double width;
};

/// Everything the readers verify, frozen per epoch.
struct Snapshot {
  std::unordered_map<std::string, sta::NetTiming> timing;
  std::unordered_map<std::string, sta::StaEngine::Slack> slack;
  double worst = 0.0;
};

bool same_arrival(const sta::Arrival& a, const sta::Arrival& b) {
  return a.valid() == b.valid() && a.time == b.time && a.slew == b.slew;
}

TEST(ServiceStress, ConcurrentQueriesMatchSerialReferenceAtEveryEpoch) {
  const std::string deck = fanout_deck(6, 4);

  // --- Reference: serial engine, replayed edit prefix, per-epoch
  // snapshots taken before the service ever starts.
  const netlist::ParseResult parsed = netlist::parse_spice(deck);
  ASSERT_TRUE(parsed.ok());
  const device::ModelSet models = test::models().tabular_set();
  auto design = circuit::partition_netlist(parsed.netlist, models);
  ASSERT_GT(design.stages.size(), 8u);

  std::vector<std::string> nets;
  for (const auto& info : design.stages)
    for (netlist::NetId n : info.output_nets)
      nets.push_back(parsed.netlist.net_name(n));
  for (netlist::NetId n : design.primary_inputs)
    nets.push_back(parsed.netlist.net_name(n));

  // Edits target the first transistor edge of rotating stages.
  std::vector<Edit> edits;
  for (int k = 0; k < kTransactions; ++k) {
    const int stage = (k * 3) % static_cast<int>(design.stages.size());
    const auto& ls = design.stages[stage].stage;
    int edge = -1;
    for (std::size_t e = 0; e < ls.edge_count(); ++e)
      if (ls.edge(static_cast<circuit::EdgeId>(e)).kind !=
          circuit::DeviceKind::wire) {
        edge = static_cast<int>(e);
        break;
      }
    ASSERT_GE(edge, 0);
    edits.push_back({stage, edge, (2.0 + 0.3 * k) * 1e-6});
  }

  sta::StaOptions serial;
  serial.threads = 1;
  sta::StaEngine ref(design, models, serial);
  ref.run();

  const auto capture = [&] {
    Snapshot s;
    for (const auto& name : nets) {
      const auto id = parsed.netlist.find_net(name);
      s.timing[name] = ref.timing(*id);
    }
    const auto slacks = ref.compute_slacks(kPeriod);
    for (const auto& name : nets) {
      const auto it = slacks.find(*parsed.netlist.find_net(name));
      if (it != slacks.end()) s.slack[name] = it->second;
    }
    s.worst = ref.worst_arrival();
    return s;
  };

  // Epochs: LOAD -> 1; transaction k stages at 2+2k (timing unchanged)
  // and commits at 3+2k.
  std::map<std::uint64_t, Snapshot> snapshots;
  snapshots[1] = capture();
  for (int k = 0; k < kTransactions; ++k) {
    ref.resize_transistor(edits[k].stage,
                          static_cast<circuit::EdgeId>(edits[k].edge),
                          edits[k].width);
    snapshots[2 + 2 * k] = snapshots[1 + 2 * k];
    ref.update();
    snapshots[3 + 2 * k] = capture();
  }

  // --- Service under test: multi-threaded engine.
  DesignDbOptions opt;
  opt.sta.threads = 4;
  DesignDb db(opt);
  ASSERT_TRUE(db.load_text(deck, "stress").status.ok);
  ASSERT_EQ(db.epoch(), 1u);

  std::atomic<bool> writer_done{false};
  std::atomic<std::uint64_t> checks{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> bad_status{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t rng = 0x9e3779b9u * (t + 1);
      const auto rand = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      int iters = 0;
      int after_done = 0;
      // Keep reading until the writer is done, then a final sweep so the
      // last epoch is verified too. The iteration caps bound the test
      // even if the writer were to stall.
      while (iters < 200000 && after_done < 50) {
        ++iters;
        if (writer_done.load(std::memory_order_acquire)) ++after_done;
        const std::string& net = nets[rand() % nets.size()];
        const std::uint64_t pick = rand() % 10;
        if (pick < 6) {
          const ArrivalReply r = db.arrival(net);
          if (!r.status.ok) {
            ++bad_status;
            continue;
          }
          const Snapshot& snap = snapshots.at(r.epoch);
          const sta::NetTiming& want = snap.timing.at(net);
          if (!same_arrival(r.timing.rise, want.rise) ||
              !same_arrival(r.timing.fall, want.fall))
            ++mismatches;
          ++checks;
        } else if (pick < 8) {
          const SlackReply r = db.slack(net, kPeriod);
          if (!r.status.ok) {
            ++bad_status;
            continue;
          }
          const Snapshot& snap = snapshots.at(r.epoch);
          sta::StaEngine::Slack want;
          const auto it = snap.slack.find(net);
          if (it != snap.slack.end()) want = it->second;
          if (r.slack.valid != want.valid ||
              r.slack.required != want.required || r.slack.slack != want.slack)
            ++mismatches;
          ++checks;
        } else {
          const CritPathReply r = db.critical_path();
          if (!r.status.ok) {
            ++bad_status;
            continue;
          }
          if (r.worst != snapshots.at(r.epoch).worst) ++mismatches;
          ++checks;
        }
      }
    });
  }

  std::atomic<bool> writer_ok{true};
  std::thread writer([&] {
    for (int k = 0; k < kTransactions; ++k) {
      const MutateReply rs =
          db.resize(edits[k].stage, edits[k].edge, edits[k].width);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const MutateReply up = db.update();
      if (!rs.status.ok || !up.status.ok) writer_ok.store(false);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Always release the readers, even on failure.
    writer_done.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_TRUE(writer_ok.load());

  EXPECT_EQ(db.epoch(), 1u + 2u * kTransactions);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(bad_status.load(), 0u);
  EXPECT_GT(checks.load(), 0u);
  // The final epoch's answers must equal the final reference state.
  const ArrivalReply fin = db.arrival(nets.front());
  ASSERT_TRUE(fin.status.ok);
  EXPECT_EQ(fin.epoch, 1u + 2u * kTransactions);
  const Snapshot& last = snapshots.at(fin.epoch);
  EXPECT_TRUE(same_arrival(fin.timing.rise, last.timing.at(nets.front()).rise));
  EXPECT_TRUE(same_arrival(fin.timing.fall, last.timing.at(nets.front()).fall));
}

}  // namespace
}  // namespace qwm::service
