// The failover ladder, end to end and deterministically: kill a shard,
// watch the fleet detect it, serve its cone OK DEGRADED (exact
// elsewhere), refuse mutations while torn, honor a refused restart,
// then restart + re-warm and reconverge bit-identically at the same
// fleet epoch. Also the torn-reply detector and the process-level
// fault-plan grammar the CI smoke drives qwm_serve with.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "fleet_test_util.h"
#include "qwm/service/protocol.h"
#include "qwm/support/fault_injection.h"

namespace qwm::service {
namespace {

constexpr int kStages = 8;

std::vector<std::string> all_nets() {
  std::vector<std::string> nets;
  for (int i = 1; i < kStages; ++i) nets.push_back("s" + std::to_string(i));
  nets.push_back("out");
  nets.push_back("in");
  return nets;
}

class FleetFailoverTest : public testing::Test {
 protected:
  void SetUp() override {
    deck_path_ =
        write_fleet_deck("fleet_failover.sp", fleet_chain_deck(kStages));
  }
  std::string deck_path_;
};

TEST_F(FleetFailoverTest, LadderDetectDegradeRestartReconverge) {
  TestFleet tf(3);
  ASSERT_TRUE(is_ok(tf.ask("LOAD " + deck_path_)));

  std::map<std::string, std::string> before;
  for (const auto& net : all_nets()) {
    before[net] = tf.ask("ARRIVAL " + net);
    ASSERT_TRUE(is_ok(before[net])) << net;
  }
  const std::uint64_t epoch_before = tf.fleet->epoch();

  // Detect: kill the last shard; hold restarts closed so the degraded
  // window is observable.
  tf.allow_restart.store(false);
  tf.kill(2);
  tf.fleet->supervise();
  EXPECT_EQ(tf.fleet->shard_state(2), ShardState::down);
  FleetStats s = tf.fleet->stats();
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_GE(s.refused_restarts, 1u);

  // Degrade: the dead shard's cone answers OK DEGRADED from a replica;
  // nets owned by live shards stay exact and untagged.
  std::uint64_t degraded = 0, exact = 0;
  for (const auto& net : all_nets()) {
    const std::string resp = tf.ask("ARRIVAL " + net);
    ASSERT_TRUE(is_ok(resp)) << net << ": " << resp;
    if (is_degraded(resp)) {
      ++degraded;
    } else {
      EXPECT_EQ(resp, before[net]) << net;
      ++exact;
    }
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_GT(exact, 0u);

  // Consistent-or-refused: no torn mutations while a shard is down.
  EXPECT_EQ(err_code(tf.ask("RESIZE 0 0 2.5u")), "SHARD_DOWN");
  EXPECT_EQ(err_code(tf.ask("UPDATE")), "SHARD_DOWN");
  EXPECT_EQ(tf.fleet->epoch(), epoch_before);

  // Recover: open the gate; one supervise pass restarts, re-warms, and
  // reconverges. Same epoch, bit-identical answers, no degraded tags.
  tf.allow_restart.store(true);
  tf.fleet->supervise();
  EXPECT_EQ(tf.fleet->shard_state(2), ShardState::healthy);
  EXPECT_EQ(tf.restarts_built.load(), 1);
  EXPECT_EQ(tf.fleet->epoch(), epoch_before);
  for (const auto& net : all_nets())
    EXPECT_EQ(tf.ask("ARRIVAL " + net), before[net]) << net;
  s = tf.fleet->stats();
  EXPECT_EQ(s.restarts, 1u);
  EXPECT_GT(s.degraded_replies, 0u);
}

TEST_F(FleetFailoverTest, MutationsReplayAfterRestartAtSameEpoch) {
  TestFleet tf(2);
  ASSERT_TRUE(is_ok(tf.ask("LOAD " + deck_path_)));
  ASSERT_TRUE(is_ok(tf.ask("RESIZE 0 0 2.5u")));
  ASSERT_TRUE(is_ok(tf.ask("UPDATE")));

  std::map<std::string, std::string> want;
  for (const auto& net : all_nets()) want[net] = tf.ask("ARRIVAL " + net);
  const std::uint64_t epoch = tf.fleet->epoch();

  // Kill the shard owning stage 0 so the re-warm must replay the RESIZE.
  tf.kill(0);
  tf.fleet->supervise();
  EXPECT_EQ(tf.fleet->shard_state(0), ShardState::healthy);
  EXPECT_EQ(tf.fleet->epoch(), epoch);
  for (const auto& net : all_nets())
    EXPECT_EQ(tf.ask("ARRIVAL " + net), want[net]) << net;
}

TEST_F(FleetFailoverTest, TornReplyCountsAsTransportFailure) {
  TestFleet tf(2);
  ASSERT_TRUE(is_ok(tf.ask("LOAD " + deck_path_)));
  // Shard 1 starts answering corrupted frames (an "OK" prefix broken by
  // a control byte — the kCorruptReply shape). The fleet's reply sanity
  // check must treat that as a transport failure, never forward the
  // torn line to a client, and walk the shard down the health ladder.
  tf.torn[1]->store(true);
  const std::string resp = tf.ask("ARRIVAL out");  // owned by shard 1
  ASSERT_TRUE(is_ok(resp)) << resp;
  for (const char c : resp) EXPECT_GE(c, 0x20) << "control byte leaked";
  EXPECT_TRUE(is_degraded(resp)) << resp;  // answered around the owner
  EXPECT_EQ(tf.fleet->shard_state(1), ShardState::down);

  // The supervisor's restart hook replaces the corrupting endpoint and
  // the fleet reconverges to exact answers.
  tf.fleet->supervise();
  EXPECT_EQ(tf.fleet->shard_state(1), ShardState::healthy);
  EXPECT_FALSE(is_degraded(tf.ask("ARRIVAL out")));
}

TEST(FaultPlanGrammar, ParsesProcessLevelSites) {
  support::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(support::parse_fault_plan(
      "seed=7,drop_connection:start=5:count=1,stall_reply:magnitude=50,"
      "corrupt_reply:period=3,refuse_restart:count=2",
      &plan, &error))
      << error;
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].site, support::FaultSite::kDropConnection);
  EXPECT_EQ(plan.rules[0].start, 5u);
  EXPECT_EQ(plan.rules[0].count, 1u);
  EXPECT_EQ(plan.rules[1].site, support::FaultSite::kStallReply);
  EXPECT_EQ(plan.rules[1].magnitude, 50.0);
  EXPECT_EQ(plan.rules[2].site, support::FaultSite::kCorruptReply);
  EXPECT_EQ(plan.rules[2].period, 3u);
  EXPECT_EQ(plan.rules[3].site, support::FaultSite::kRefuseRestart);

  EXPECT_FALSE(support::parse_fault_plan("no_such_site", &plan, &error));
  EXPECT_FALSE(support::parse_fault_plan("stall_reply:bogus=1", &plan, &error));
}

TEST(FaultPlanGrammar, RefuseRestartSiteGatesTheHook) {
  support::FaultPlan plan;
  plan.add(support::FaultRule{.site = support::FaultSite::kRefuseRestart,
                              .count = 1});
  support::ScopedFaultPlan armed{plan};
  EXPECT_TRUE(support::fire_fault(support::FaultSite::kRefuseRestart));
  EXPECT_FALSE(support::fire_fault(support::FaultSite::kRefuseRestart));
}

}  // namespace
}  // namespace qwm::service
