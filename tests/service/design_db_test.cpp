// DesignDb unit tests: session lifecycle, epoch semantics, error codes,
// and the per-(epoch, period) slack memo.
#include "qwm/service/design_db.h"

#include <gtest/gtest.h>

#include <string>

namespace qwm::service {
namespace {

/// `n`-inverter chain, in -> s1 -> ... -> out, load cap on the output.
std::string chain_deck(int n) {
  std::string deck = "inverter chain\nvdd vdd 0 3.3\nvin in 0 0\n";
  std::string prev = "in";
  for (int i = 0; i < n; ++i) {
    const std::string out = i + 1 == n ? "out" : "s" + std::to_string(i + 1);
    const std::string tag = std::to_string(i);
    deck += "mn" + tag + " " + out + " " + prev + " 0 0 nmos W=1.5u L=0.35u\n";
    deck += "mp" + tag + " " + out + " " + prev +
            " vdd vdd pmos W=3u L=0.35u\n";
    prev = out;
  }
  deck += "cl out 0 20f\n.end\n";
  return deck;
}

TEST(DesignDb, QueriesBeforeLoadAreNodesign) {
  DesignDb db;
  EXPECT_FALSE(db.has_design());
  EXPECT_EQ(db.arrival("out").status.code, "NODESIGN");
  EXPECT_EQ(db.slack("out", 1e-9).status.code, "NODESIGN");
  EXPECT_EQ(db.critical_path().status.code, "NODESIGN");
  EXPECT_EQ(db.resize(0, 0, 1e-6).status.code, "NODESIGN");
  EXPECT_EQ(db.update().status.code, "NODESIGN");
  EXPECT_EQ(db.epoch(), 0u);
}

TEST(DesignDb, LoadAnalyzesAndBumpsEpoch) {
  DesignDb db;
  const LoadReply r = db.load_text(chain_deck(4), "chain4");
  ASSERT_TRUE(r.status.ok) << r.status.message;
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_EQ(r.session, 1u);
  EXPECT_EQ(r.stages, 4u);
  EXPECT_GT(r.evals, 0u);
  EXPECT_GT(r.worst, 0.0);
  EXPECT_TRUE(db.has_design());

  const ArrivalReply a = db.arrival("out");
  ASSERT_TRUE(a.status.ok);
  EXPECT_EQ(a.epoch, 1u);
  EXPECT_TRUE(a.timing.rise.valid());
  EXPECT_TRUE(a.timing.fall.valid());
}

TEST(DesignDb, LoadErrorsCarryFileAndLine) {
  DesignDb db;
  // Line 3 of the in-memory deck is malformed.
  const LoadReply r =
      db.load_text("title\nvdd vdd 0 3.3\nr1 a b banana\n.end\n", "bad.sp");
  ASSERT_FALSE(r.status.ok);
  EXPECT_EQ(r.status.code, "LOAD");
  EXPECT_NE(r.status.message.find("bad.sp:3: "), std::string::npos)
      << r.status.message;
  // A failed LOAD neither installs a session nor bumps the epoch.
  EXPECT_FALSE(db.has_design());
  EXPECT_EQ(db.epoch(), 0u);
}

TEST(DesignDb, LoadMissingFileFails) {
  DesignDb db;
  const LoadReply r = db.load_file("/nonexistent/deck.sp");
  ASSERT_FALSE(r.status.ok);
  EXPECT_EQ(r.status.code, "LOAD");
  EXPECT_NE(r.status.message.find("cannot open"), std::string::npos);
}

TEST(DesignDb, UnknownNetIsNotfound) {
  DesignDb db;
  ASSERT_TRUE(db.load_text(chain_deck(2), "chain2").status.ok);
  EXPECT_EQ(db.arrival("nosuchnet").status.code, "NOTFOUND");
  EXPECT_EQ(db.slack("nosuchnet", 1e-9).status.code, "NOTFOUND");
}

TEST(DesignDb, ResizeValidation) {
  DesignDb db;
  ASSERT_TRUE(db.load_text(chain_deck(2), "chain2").status.ok);
  const std::uint64_t e0 = db.epoch();
  EXPECT_EQ(db.resize(99, 0, 1e-6).status.code, "ARG");   // stage range
  EXPECT_EQ(db.resize(-1, 0, 1e-6).status.code, "ARG");
  EXPECT_EQ(db.resize(0, 999, 1e-6).status.code, "ARG");  // edge range
  EXPECT_EQ(db.resize(0, 0, -1e-6).status.code, "ARG");   // width sign
  // Failed mutations must not bump the epoch.
  EXPECT_EQ(db.epoch(), e0);
}

TEST(DesignDb, ResizeUpdateTransactionBumpsEpochAndRetimes) {
  DesignDb db;
  ASSERT_TRUE(db.load_text(chain_deck(3), "chain3").status.ok);
  const double worst0 = db.critical_path().worst;

  const MutateReply rs = db.resize(0, 0, 3.0e-6);
  ASSERT_TRUE(rs.status.ok) << rs.status.message;
  EXPECT_EQ(rs.epoch, 2u);
  // Staged but not yet committed: timing still answers at the new epoch
  // with the old analysis.
  EXPECT_EQ(db.arrival("out").epoch, 2u);

  const MutateReply up = db.update();
  ASSERT_TRUE(up.status.ok);
  EXPECT_EQ(up.epoch, 3u);
  EXPECT_GT(up.evals, 0u);
  EXPECT_NE(up.worst, worst0);  // a 2x wider pull-down moves the path
  EXPECT_EQ(db.critical_path().epoch, 3u);
}

TEST(DesignDb, ReloadStartsNewSessionKeepsEpochMonotonic) {
  DesignDb db;
  ASSERT_TRUE(db.load_text(chain_deck(2), "a").status.ok);
  ASSERT_TRUE(db.resize(0, 0, 2e-6).status.ok);
  const std::uint64_t before = db.epoch();
  const LoadReply r2 = db.load_text(chain_deck(3), "b");
  ASSERT_TRUE(r2.status.ok);
  EXPECT_EQ(r2.session, 2u);
  EXPECT_GT(r2.epoch, before);  // epochs never restart across sessions
  EXPECT_EQ(r2.stages, 3u);
}

TEST(DesignDb, SlackMemoServesRepeatQueriesPerEpochAndPeriod) {
  DesignDb db;
  ASSERT_TRUE(db.load_text(chain_deck(3), "chain3").status.ok);

  const SlackReply s1 = db.slack("out", 2e-9);
  ASSERT_TRUE(s1.status.ok);
  EXPECT_TRUE(s1.slack.valid);
  EXPECT_FALSE(s1.cache_hit);

  const SlackReply s2 = db.slack("s1", 2e-9);  // same epoch + period
  ASSERT_TRUE(s2.status.ok);
  EXPECT_TRUE(s2.cache_hit);
  EXPECT_EQ(db.stats().slack_cache_hits, 1u);
  EXPECT_EQ(db.stats().slack_cache_misses, 1u);

  EXPECT_FALSE(db.slack("out", 1e-9).cache_hit);  // new period recomputes
  ASSERT_TRUE(db.resize(0, 0, 2e-6).status.ok);
  ASSERT_TRUE(db.update().status.ok);
  EXPECT_FALSE(db.slack("out", 1e-9).cache_hit);  // new epoch recomputes
}

TEST(DesignDb, StatsReflectSession) {
  DesignDb db;
  EXPECT_FALSE(db.stats().loaded);
  ASSERT_TRUE(db.load_text(chain_deck(4), "chain4").status.ok);
  const DbStats st = db.stats();
  EXPECT_TRUE(st.loaded);
  EXPECT_EQ(st.session, 1u);
  EXPECT_EQ(st.stages, 4u);
}

}  // namespace
}  // namespace qwm::service
