// Shutdown while queries are in flight: N clients hammer the TCP
// server while one sends SHUTDOWN mid-run. The contract under test
// (and under TSan, where this suite also runs): every request that
// gets a reply gets exactly one well-formed line — never a torn frame,
// never a second line — and serve() returns promptly. A connection
// closing with no reply is the one acceptable outcome for requests
// overtaken by the shutdown.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "qwm/service/protocol.h"
#include "qwm/service/server.h"

namespace qwm::service {
namespace {

std::string chain_deck(int n) {
  std::string deck = "inverter chain\nvdd vdd 0 3.3\nvin in 0 0\n";
  std::string prev = "in";
  for (int i = 0; i < n; ++i) {
    const std::string out = i + 1 == n ? "out" : "s" + std::to_string(i + 1);
    const std::string tag = std::to_string(i);
    deck += "mn" + tag + " " + out + " " + prev + " 0 0 nmos W=1.5u L=0.35u\n";
    deck += "mp" + tag + " " + out + " " + prev +
            " vdd vdd pmos W=3u L=0.35u\n";
    prev = out;
  }
  deck += "cl out 0 20f\n.end\n";
  return deck;
}

struct RaceClient {
  int fd = -1;
  std::string buf;

  bool connect_to(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr) == 0;
  }

  bool send_line(const std::string& line) {
    std::string msg = line + "\n";
    std::size_t off = 0;
    while (off < msg.size()) {
      const ssize_t n =
          ::send(fd, msg.data() + off, msg.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// False on clean close / error; true fills one complete line.
  bool recv_line(std::string* line) {
    for (;;) {
      const std::size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        *line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  ~RaceClient() {
    if (fd >= 0) ::close(fd);
  }
};

TEST(ShutdownRace, InflightQueriesGetOneWellFormedLineEach) {
  const std::string deck_path = testing::TempDir() + "shutdown_race.sp";
  {
    std::ofstream f(deck_path);
    f << chain_deck(4);
    ASSERT_TRUE(f.good());
  }

  ServerOptions opt;
  opt.threads = 3;
  opt.db.sta.threads = 1;
  Server server(opt);
  ASSERT_TRUE(is_ok(server.handle_line("LOAD " + deck_path)));
  ASSERT_TRUE(server.listen(0));
  const int port = server.port();
  std::thread serve_thread([&] { server.serve(); });

  constexpr int kClients = 4;
  std::atomic<std::uint64_t> malformed{0}, answered{0};
  std::atomic<int> active{kClients};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      struct Leave {
        std::atomic<int>* n;
        ~Leave() { --*n; }
      } leave{&active};
      RaceClient cl;
      if (!cl.connect_to(port)) return;
      const std::string req =
          c % 2 == 0 ? std::string("ARRIVAL out") : std::string("STATS");
      while (!stop.load(std::memory_order_acquire)) {
        if (!cl.send_line(req)) return;  // shutdown closed the socket
        std::string line;
        if (!cl.recv_line(&line)) return;  // close instead of reply: fine
        ++answered;
        if (!(is_ok(line) || line.rfind("ERR ", 0) == 0)) ++malformed;
        // Exactly one line per request: the buffer must hold no second
        // (partial or complete) reply before the next request is sent.
        if (!cl.buf.empty()) ++malformed;
      }
    });
  }

  // Let the clients land some traffic, then shut down mid-flight.
  while (answered.load() < 200 && active.load() > 0) std::this_thread::yield();
  {
    RaceClient killer;
    ASSERT_TRUE(killer.connect_to(port));
    ASSERT_TRUE(killer.send_line("SHUTDOWN"));
    std::string line;
    if (killer.recv_line(&line)) EXPECT_TRUE(is_ok(line)) << line;
  }
  serve_thread.join();  // serve() must return after SHUTDOWN
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();

  EXPECT_EQ(malformed.load(), 0u);
  EXPECT_GE(answered.load(), 200u);
}

}  // namespace
}  // namespace qwm::service
