// Graceful degradation at the service boundary: injected request faults
// (slow, failed, malformed frame), the per-request solve deadline, and
// the OK DEGRADED tagging of answers that rest on fallback-ladder
// results — plus the STATS counters that make all of it observable.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "qwm/service/server.h"
#include "qwm/support/fault_injection.h"

namespace qwm::service {
namespace {

using support::FaultPlan;
using support::FaultRule;
using support::FaultSite;
using support::ScopedFaultPlan;

std::string chain_deck(int n) {
  std::string deck = "inverter chain\nvdd vdd 0 3.3\nvin in 0 0\n";
  std::string prev = "in";
  for (int i = 0; i < n; ++i) {
    const std::string out = i + 1 == n ? "out" : "s" + std::to_string(i + 1);
    const std::string tag = std::to_string(i);
    deck += "mn" + tag + " " + out + " " + prev + " 0 0 nmos W=1.5u L=0.35u\n";
    deck += "mp" + tag + " " + out + " " + prev +
            " vdd vdd pmos W=3u L=0.35u\n";
    prev = out;
  }
  deck += "cl out 0 20f\n.end\n";
  return deck;
}

TEST(DegradedService, InjectedRequestFailure) {
  Server server;
  FaultPlan plan;
  plan.add(FaultRule{.site = FaultSite::kFailRequest});
  ScopedFaultPlan armed{plan};
  const std::string resp = server.handle_line("STATS");
  EXPECT_TRUE(is_err(resp, "INJECTED")) << resp;
  EXPECT_EQ(server.stats().verb[static_cast<int>(Verb::kStats)].errors, 1u);
}

TEST(DegradedService, InjectedMalformedFrame) {
  Server server;
  FaultPlan plan;
  plan.add(FaultRule{.site = FaultSite::kMalformedFrame});
  ScopedFaultPlan armed{plan};
  const std::string resp = server.handle_line("STATS");
  EXPECT_TRUE(is_err(resp, "BADCMD")) << resp;
  EXPECT_EQ(server.stats().malformed, 1u);
}

TEST(DegradedService, SlowRequestTripsSolveDeadline) {
  ServerOptions opt;
  opt.solve_deadline_ms = 5.0;
  Server server(opt);
  FaultPlan plan;
  FaultRule slow;
  slow.site = FaultSite::kSlowRequest;
  slow.magnitude = 25.0;  // ms, well past the 5 ms deadline
  slow.count = 1;
  plan.add(slow);
  ScopedFaultPlan armed{plan};

  const std::string resp = server.handle_line("STATS");
  EXPECT_TRUE(is_err(resp, "DEGRADED")) << resp;
  EXPECT_EQ(server.stats().solve_deadline_expirations, 1u);
  // The next request is healthy again (count budget exhausted).
  EXPECT_TRUE(is_ok(server.handle_line("STATS")));
  EXPECT_EQ(server.stats().solve_deadline_expirations, 1u);
}

TEST(DegradedService, DegradedArrivalsAreTagged) {
  Server server;
  {
    // Sabotage every nominal solve during LOAD: the whole design is
    // answered from the damped rung and every arrival is degraded.
    FaultPlan plan;
    FaultRule stall;
    stall.site = FaultSite::kNewtonStall;
    stall.max_rung = 0;
    plan.add(stall);
    ScopedFaultPlan armed{plan};
    const LoadReply r = server.db().load_text(chain_deck(3), "chain3");
    ASSERT_TRUE(r.status.ok) << r.status.message;
  }

  const std::string arrival = server.handle_line("ARRIVAL out");
  EXPECT_TRUE(is_ok(arrival)) << arrival;
  EXPECT_TRUE(is_degraded(arrival)) << arrival;
  EXPECT_EQ(response_field(arrival, "rise_degraded"), "1");
  EXPECT_EQ(response_field(arrival, "fall_degraded"), "1");

  const std::string slack = server.handle_line("SLACK out 2n");
  EXPECT_TRUE(is_ok(slack)) << slack;
  EXPECT_TRUE(is_degraded(slack)) << slack;
  EXPECT_EQ(response_field(slack, "degraded"), "1");

  const std::string stats = server.handle_line("STATS");
  EXPECT_TRUE(is_ok(stats));
  EXPECT_EQ(response_field(stats, "degraded"), "2");
  EXPECT_NE(response_field(stats, "fallback_damped"), "0");
  EXPECT_EQ(response_field(stats, "fallback_spice"), "0");

  // A clean reload clears the degradation: plain OK answers again.
  const LoadReply clean = server.db().load_text(chain_deck(3), "chain3");
  ASSERT_TRUE(clean.status.ok);
  const std::string healthy = server.handle_line("ARRIVAL out");
  EXPECT_TRUE(is_ok(healthy));
  EXPECT_FALSE(is_degraded(healthy)) << healthy;
  EXPECT_EQ(response_field(healthy, "rise_degraded"), "0");
}

TEST(DegradedService, StreamSessionSurvivesInjectedFaults) {
  // A scripted stdio session under a mixed fault plan: every reply is
  // still exactly one line and the session shuts down cleanly.
  ServerOptions opt;
  opt.threads = 2;
  Server server(opt);
  FaultPlan plan;
  plan.seed = 7;
  FaultRule frame;
  frame.site = FaultSite::kMalformedFrame;
  frame.one_in = 3;
  plan.add(frame);
  FaultRule failr;
  failr.site = FaultSite::kFailRequest;
  failr.one_in = 4;
  plan.add(failr);
  ScopedFaultPlan armed{plan};

  std::istringstream in(
      "STATS\nARRIVAL nowhere\nCRITPATH\nSTATS\nUPDATE\nSHUTDOWN\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);
  int lines = 0;
  std::istringstream replies(out.str());
  std::string line;
  while (std::getline(replies, line)) {
    ++lines;
    EXPECT_TRUE(is_ok(line) || is_err(line)) << line;
  }
  EXPECT_EQ(lines, 6);
}

}  // namespace
}  // namespace qwm::service
