// CORNERS verb round trip: request parsing, the per-corner arrival
// payload of a --corners server, the optional setup/hold envelope, the
// error paths (NODESIGN / UNSUPPORTED / NOTFOUND / ARG), and the
// DEGRADED tag when the lanes rest on fallback-ladder results.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "qwm/service/server.h"
#include "qwm/support/fault_injection.h"

namespace qwm::service {
namespace {

using support::FaultPlan;
using support::FaultRule;
using support::FaultSite;
using support::ScopedFaultPlan;

std::string chain_deck(int n) {
  std::string deck = "inverter chain\nvdd vdd 0 3.3\nvin in 0 0\n";
  std::string prev = "in";
  for (int i = 0; i < n; ++i) {
    const std::string out = i + 1 == n ? "out" : "s" + std::to_string(i + 1);
    const std::string tag = std::to_string(i);
    deck += "mn" + tag + " " + out + " " + prev + " 0 0 nmos W=1.5u L=0.35u\n";
    deck += "mp" + tag + " " + out + " " + prev +
            " vdd vdd pmos W=3u L=0.35u\n";
    prev = out;
  }
  deck += "cl out 0 20f\n.end\n";
  return deck;
}

ServerOptions corner_options() {
  ServerOptions opt;
  opt.db.corners = true;
  return opt;
}

double num_field(const std::string& response, const std::string& key) {
  const std::string v = response_field(response, key);
  EXPECT_FALSE(v.empty()) << "missing field " << key << " in: " << response;
  return std::strtod(v.c_str(), nullptr);
}

TEST(CornerService, ParseRequestForms) {
  // Arrivals-only form: net, no period.
  ParsedRequest p = parse_request("CORNERS Out");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.verb, Verb::kCorners);
  EXPECT_EQ(p.request.net, "out");  // nets are case-folded like ARRIVAL
  EXPECT_EQ(p.request.period, 0.0);

  // With a period (SPICE suffixes accepted, like SLACK).
  p = parse_request("corners out 2n");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_DOUBLE_EQ(p.request.period, 2e-9);

  // Wrong arity and bad/non-positive periods are ARG errors.
  for (const char* line :
       {"CORNERS", "CORNERS out 2n extra", "CORNERS out xyz",
        "CORNERS out -1n", "CORNERS out 0"}) {
    SCOPED_TRACE(line);
    const ParsedRequest bad = parse_request(line);
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.code, "ARG");
  }
}

TEST(CornerService, RoundTripPerCornerArrivals) {
  Server server(corner_options());
  const LoadReply r = server.db().load_text(chain_deck(3), "chain3");
  ASSERT_TRUE(r.status.ok) << r.status.message;

  const std::string resp = server.handle_line("CORNERS out");
  ASSERT_TRUE(is_ok(resp)) << resp;
  EXPECT_FALSE(is_degraded(resp)) << resp;
  EXPECT_EQ(response_field(resp, "net"), "out");
  EXPECT_EQ(response_field(resp, "corners"), "3");
  EXPECT_EQ(response_field(resp, "degraded"), "0");

  // Every lane reports both edges, and the lanes are ordered
  // fast <= typical <= slow on each edge.
  for (const char* edge : {"rise", "fall"}) {
    SCOPED_TRACE(edge);
    for (const char* corner : {"typical", "fast", "slow"}) {
      EXPECT_EQ(response_field(
                    resp, std::string(corner) + "_" + edge + "_valid"),
                "1")
          << resp;
    }
    const double ty = num_field(resp, std::string("typical_") + edge);
    const double fa = num_field(resp, std::string("fast_") + edge);
    const double sl = num_field(resp, std::string("slow_") + edge);
    EXPECT_LT(fa, ty);
    EXPECT_LT(ty, sl);
  }

  // No period => no envelope fields in the payload.
  EXPECT_EQ(response_field(resp, "setup_slack"), "");
  EXPECT_EQ(response_field(resp, "hold_slack"), "");
}

TEST(CornerService, PeriodAddsSetupHoldEnvelope) {
  Server server(corner_options());
  ASSERT_TRUE(server.db().load_text(chain_deck(3), "chain3").status.ok);

  const std::string arr = server.handle_line("CORNERS out");
  ASSERT_TRUE(is_ok(arr)) << arr;
  double latest = 0.0, earliest = 1.0;
  for (const char* edge : {"rise", "fall"}) {
    for (const char* corner : {"typical", "fast", "slow"}) {
      const double t = num_field(arr, std::string(corner) + "_" + edge);
      latest = std::max(latest, t);
      earliest = std::min(earliest, t);
    }
  }

  const std::string resp = server.handle_line("CORNERS out 2n");
  ASSERT_TRUE(is_ok(resp)) << resp;
  EXPECT_EQ(response_field(resp, "valid"), "1");
  // %.17g doubles round-trip exactly, so the envelope must agree bit for
  // bit with the per-corner arrivals reported by the same engine.
  EXPECT_EQ(num_field(resp, "latest"), latest);
  EXPECT_EQ(num_field(resp, "earliest"), earliest);
  EXPECT_EQ(num_field(resp, "setup_slack"), 2e-9 - latest);
  EXPECT_EQ(num_field(resp, "hold_slack"), earliest);
  EXPECT_GT(num_field(resp, "setup_slack"), 0.0);
}

TEST(CornerService, ErrorPaths) {
  // Before any LOAD: NODESIGN, regardless of corner support.
  Server server(corner_options());
  EXPECT_TRUE(is_err(server.handle_line("CORNERS out"), "NODESIGN"));

  // Unknown net after a LOAD: NOTFOUND.
  ASSERT_TRUE(server.db().load_text(chain_deck(3), "chain3").status.ok);
  EXPECT_TRUE(is_err(server.handle_line("CORNERS nowhere"), "NOTFOUND"));

  // A single-corner server refuses the verb outright.
  Server single;
  ASSERT_TRUE(single.db().load_text(chain_deck(3), "chain3").status.ok);
  const std::string resp = single.handle_line("CORNERS out");
  EXPECT_TRUE(is_err(resp, "UNSUPPORTED")) << resp;
}

TEST(CornerService, DegradedLanesAreTagged) {
  Server server(corner_options());
  {
    // Sabotage every nominal solve during LOAD: all three lanes answer
    // from the damped rung, so the CORNERS reply must carry the tag.
    FaultPlan plan;
    FaultRule stall;
    stall.site = FaultSite::kNewtonStall;
    stall.max_rung = 0;
    plan.add(stall);
    ScopedFaultPlan armed{plan};
    ASSERT_TRUE(server.db().load_text(chain_deck(3), "chain3").status.ok);
  }
  const std::string resp = server.handle_line("CORNERS out");
  EXPECT_TRUE(is_ok(resp)) << resp;
  EXPECT_TRUE(is_degraded(resp)) << resp;
  EXPECT_EQ(response_field(resp, "degraded"), "1");

  // A clean reload clears it.
  ASSERT_TRUE(server.db().load_text(chain_deck(3), "chain3").status.ok);
  const std::string healthy = server.handle_line("CORNERS out");
  EXPECT_TRUE(is_ok(healthy));
  EXPECT_FALSE(is_degraded(healthy)) << healthy;
}

}  // namespace
}  // namespace qwm::service
