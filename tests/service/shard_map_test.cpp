// ShardMap: the deterministic level-major contiguous-block partitioner
// every process of a fleet computes independently. The properties the
// fleet's one-pass boundary exchange rests on: identical maps from
// identical inputs, every cross-shard edge pointing forward, and
// boundary sets that are exactly the forward-consumed driven nets.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "qwm/circuit/partition.h"
#include "qwm/device/tabular_model.h"
#include "qwm/netlist/apply_models.h"
#include "qwm/netlist/parser.h"
#include "qwm/service/shard_map.h"

namespace qwm::service {
namespace {

std::string chain_deck(int n) {
  std::string deck = "inverter chain\nvdd vdd 0 3.3\nvin in 0 0\n";
  std::string prev = "in";
  for (int i = 0; i < n; ++i) {
    const std::string out = i + 1 == n ? "out" : "s" + std::to_string(i + 1);
    const std::string tag = std::to_string(i);
    deck += "mn" + tag + " " + out + " " + prev + " 0 0 nmos W=1.5u L=0.35u\n";
    deck += "mp" + tag + " " + out + " " + prev +
            " vdd vdd pmos W=3u L=0.35u\n";
    prev = out;
  }
  deck += "cl out 0 20f\n.end\n";
  return deck;
}

/// A chain with a fan-out split and re-join, so levels hold multiple
/// stages and boundary sets carry more than one net.
std::string diamond_deck() {
  std::string deck = "diamond\nvdd vdd 0 3.3\nvin in 0 0\n";
  const auto inv = [&](const std::string& tag, const std::string& out,
                       const std::string& in) {
    deck += "mn" + tag + " " + out + " " + in + " 0 0 nmos W=1.5u L=0.35u\n";
    deck += "mp" + tag + " " + out + " " + in + " vdd vdd pmos W=3u L=0.35u\n";
  };
  inv("0", "a", "in");
  inv("1", "b1", "a");
  inv("2", "b2", "a");
  // NAND join of the two branches.
  deck += "mnj1 j b1 x 0 nmos W=3u L=0.35u\n";
  deck += "mnj2 x b2 0 0 nmos W=3u L=0.35u\n";
  deck += "mpj1 j b1 vdd vdd pmos W=3u L=0.35u\n";
  deck += "mpj2 j b2 vdd vdd pmos W=3u L=0.35u\n";
  inv("3", "out", "j");
  deck += "cl out 0 20f\n.end\n";
  return deck;
}

circuit::PartitionedDesign make_design(const std::string& deck,
                                       netlist::ParseResult* parsed_out) {
  *parsed_out = netlist::parse_spice(deck);
  EXPECT_TRUE(parsed_out->ok());
  static device::Process proc = device::Process::cmosp35();
  netlist::apply_model_cards(parsed_out->netlist, &proc);
  static const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  static const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet models{&nmos, &pmos, &proc};
  return circuit::partition_netlist(parsed_out->netlist, models);
}

TEST(ShardMap, DeterministicAndCompletePartition) {
  netlist::ParseResult parsed;
  const auto design = make_design(chain_deck(8), &parsed);
  ASSERT_EQ(design.stages.size(), 8u);

  const ShardMap a = build_shard_map(design, 3);
  const ShardMap b = build_shard_map(design, 3);
  EXPECT_TRUE(a.acyclic);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.stages_of, b.stages_of);
  EXPECT_EQ(a.boundary_of, b.boundary_of);

  // Every stage owned exactly once; stages_of and shard_of agree.
  std::set<int> seen;
  for (int s = 0; s < a.shard_count; ++s)
    for (const int g : a.stages_of[static_cast<std::size_t>(s)]) {
      EXPECT_TRUE(seen.insert(g).second) << "stage " << g << " owned twice";
      EXPECT_EQ(a.shard_of[static_cast<std::size_t>(g)], s);
    }
  EXPECT_EQ(seen.size(), design.stages.size());
}

TEST(ShardMap, ClampsShardCountToStageCount) {
  netlist::ParseResult parsed;
  const auto design = make_design(chain_deck(3), &parsed);
  const ShardMap m = build_shard_map(design, 16);
  EXPECT_EQ(m.shard_count, 3);
  for (int s = 0; s < m.shard_count; ++s)
    EXPECT_EQ(m.stages_of[static_cast<std::size_t>(s)].size(), 1u);
}

TEST(ShardMap, AllCrossShardEdgesPointForward) {
  netlist::ParseResult parsed;
  const auto design = make_design(diamond_deck(), &parsed);
  for (const int n : {2, 3, 4}) {
    const ShardMap m = build_shard_map(design, n);
    ASSERT_TRUE(m.acyclic);
    // Driver table: net -> owning shard of its driving stage.
    std::map<netlist::NetId, int> driver_shard;
    for (std::size_t g = 0; g < design.stages.size(); ++g)
      for (const netlist::NetId out : design.stages[g].output_nets)
        driver_shard[out] = m.shard_of[g];
    for (std::size_t g = 0; g < design.stages.size(); ++g)
      for (const netlist::NetId in : design.stages[g].input_nets) {
        const auto it = driver_shard.find(in);
        if (it == driver_shard.end()) continue;  // primary input / rail
        EXPECT_LE(it->second, m.shard_of[g])
            << "backward cross-shard edge at n=" << n;
      }
  }
}

TEST(ShardMap, BoundarySetsAreExactlyForwardConsumedNets) {
  netlist::ParseResult parsed;
  const auto design = make_design(diamond_deck(), &parsed);
  const ShardMap m = build_shard_map(design, 3);
  ASSERT_TRUE(m.acyclic);

  std::map<netlist::NetId, int> driver_shard;
  for (std::size_t g = 0; g < design.stages.size(); ++g)
    for (const netlist::NetId out : design.stages[g].output_nets)
      driver_shard[out] = m.shard_of[g];

  // Expected boundary set per shard, derived independently.
  std::vector<std::set<netlist::NetId>> expect(
      static_cast<std::size_t>(m.shard_count));
  for (std::size_t g = 0; g < design.stages.size(); ++g)
    for (const netlist::NetId in : design.stages[g].input_nets) {
      const auto it = driver_shard.find(in);
      if (it != driver_shard.end() && it->second < m.shard_of[g])
        expect[static_cast<std::size_t>(it->second)].insert(in);
    }
  for (int s = 0; s < m.shard_count; ++s) {
    const auto& got = m.boundary_of[static_cast<std::size_t>(s)];
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(std::set<netlist::NetId>(got.begin(), got.end()),
              expect[static_cast<std::size_t>(s)])
        << "shard " << s;
  }
  // A 3-way split of the diamond must cut at least one edge.
  std::size_t total_boundary = 0;
  for (const auto& b : m.boundary_of) total_boundary += b.size();
  EXPECT_GT(total_boundary, 0u);
}

TEST(ShardMap, SingleShardHasNoBoundary) {
  netlist::ParseResult parsed;
  const auto design = make_design(chain_deck(4), &parsed);
  const ShardMap m = build_shard_map(design, 1);
  EXPECT_EQ(m.shard_count, 1);
  EXPECT_TRUE(m.boundary_of[0].empty());
  EXPECT_EQ(m.stages_of[0].size(), design.stages.size());
}

}  // namespace
}  // namespace qwm::service
