// Shared scaffolding for the fleet tests: an in-process sharded fleet
// over CallbackEndpoints (no sockets), with per-shard kill switches and
// a gated restart hook, so failover sequences run deterministically
// inside one test binary.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "qwm/service/fleet.h"
#include "qwm/service/server.h"

namespace qwm::service {

inline std::string fleet_chain_deck(int n) {
  std::string deck = "inverter chain\nvdd vdd 0 3.3\nvin in 0 0\n";
  std::string prev = "in";
  for (int i = 0; i < n; ++i) {
    const std::string out = i + 1 == n ? "out" : "s" + std::to_string(i + 1);
    const std::string tag = std::to_string(i);
    deck += "mn" + tag + " " + out + " " + prev + " 0 0 nmos W=1.5u L=0.35u\n";
    deck += "mp" + tag + " " + out + " " + prev +
            " vdd vdd pmos W=3u L=0.35u\n";
    prev = out;
  }
  deck += "cl out 0 20f\n.end\n";
  return deck;
}

/// Writes `deck` under the gtest temp dir and returns the path. The
/// pid prefix keeps concurrently-running test processes (ctest -j
/// launches each case separately) from truncating each other's deck
/// mid-read.
inline std::string write_fleet_deck(const std::string& name,
                                    const std::string& deck) {
  const std::string path =
      testing::TempDir() + std::to_string(::getpid()) + "_" + name;
  std::ofstream f(path);
  f << deck;
  EXPECT_TRUE(f.good());
  return path;
}

/// N in-process shard Servers + one full-design replica behind a Fleet.
struct TestFleet {
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<std::shared_ptr<std::atomic<bool>>> dead;
  /// Torn-frame switch: the endpoint answers a corrupted line (an "OK"
  /// prefix broken by a control byte — the kCorruptReply shape) instead
  /// of its server's reply.
  std::vector<std::shared_ptr<std::atomic<bool>>> torn;
  std::atomic<bool> allow_restart{true};
  std::atomic<int> restarts_built{0};
  std::unique_ptr<Server> replica;
  std::unique_ptr<Fleet> fleet;

  /// `use_cache = false` makes every stage evaluation a pure function of
  /// its inputs: required when asserting bit-identity against a
  /// single-process reference, because the memo cache's bucketed reuse
  /// depends on evaluation history, which sharding changes. Failover
  /// reconvergence (fleet vs itself) holds with the cache on — re-warm
  /// replays the same history.
  explicit TestFleet(int n, FleetOptions fopt = tight_health(),
                     bool use_cache = true)
      : use_cache_(use_cache) {
    std::vector<std::unique_ptr<ShardEndpoint>> shard_eps, replica_eps;
    for (int k = 0; k < n; ++k) {
      servers.push_back(std::make_unique<Server>(shard_options(k, n)));
      dead.push_back(std::make_shared<std::atomic<bool>>(false));
      torn.push_back(std::make_shared<std::atomic<bool>>(false));
      shard_eps.push_back(std::make_unique<CallbackEndpoint>(endpoint_fn(k)));
    }
    ServerOptions ropt;
    ropt.db.sta.threads = 1;
    ropt.db.sta.use_cache = use_cache_;
    replica = std::make_unique<Server>(ropt);
    replica_eps.push_back(std::make_unique<CallbackEndpoint>(
        [this](const std::string& line) { return replica->handle_line(line); }));
    fleet = std::make_unique<Fleet>(fopt, std::move(shard_eps),
                                    std::move(replica_eps));
    fleet->set_restart_fn(
        [this, n](int k) -> std::unique_ptr<ShardEndpoint> {
          if (!allow_restart.load(std::memory_order_acquire)) return nullptr;
          servers[static_cast<std::size_t>(k)] =
              std::make_unique<Server>(shard_options(k, n));
          dead[static_cast<std::size_t>(k)]->store(false);
          torn[static_cast<std::size_t>(k)]->store(false);
          ++restarts_built;
          return std::make_unique<CallbackEndpoint>(endpoint_fn(k));
        });
  }

  /// One probe failure marks a shard down — in-process endpoints never
  /// blip, so the tight ladder keeps the tests single-pass.
  static FleetOptions tight_health() {
    FleetOptions fopt;
    fopt.health.suspect_after = 1;
    fopt.health.down_after = 1;
    return fopt;
  }

  ServerOptions shard_options(int k, int n) const {
    ServerOptions opt;
    opt.db.sta.threads = 1;
    opt.db.sta.use_cache = use_cache_;
    opt.db.shard_index = k;
    opt.db.shard_count = n;
    return opt;
  }

  bool use_cache_ = true;

  CallbackEndpoint::Handler endpoint_fn(int k) {
    auto dead_flag = dead[static_cast<std::size_t>(k)];
    auto torn_flag = torn[static_cast<std::size_t>(k)];
    return [this, k, dead_flag, torn_flag](
               const std::string& line) -> std::string {
      if (dead_flag->load(std::memory_order_acquire)) return "";
      if (torn_flag->load(std::memory_order_acquire))
        return std::string("OK rise=1.25") + '\x01' + "TORN";
      return servers[static_cast<std::size_t>(k)]->handle_line(line);
    };
  }

  std::string ask(const std::string& line) { return fleet->handle_line(line); }
  void kill(int k) { dead[static_cast<std::size_t>(k)]->store(true); }
};

}  // namespace qwm::service
