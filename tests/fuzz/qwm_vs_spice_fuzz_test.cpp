// Differential fuzz harness: seeded random stages (topology, device
// count, widths, loads, input slews, wire RC, process corner) evaluated
// by QWM — with the full fallback ladder available — must land within
// tolerance of the in-repo SPICE baseline on every sample. Each sample
// draws one of the three characterized corners, so the fast/slow model
// grids see the same coverage as typical.
//
//   QWM_FUZZ_SAMPLES   sample count (default 40 in tier-1; CI runs 2000)
//   QWM_FUZZ_SEED      generator seed (default 20260806, pinned in CI)
//
// A failing sample dumps a reproducer deck under tests/data/repro/ with
// the seed, sample index, and full parameter set, so the exact stage can
// be rebuilt offline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"

namespace qwm::core {
namespace {

using circuit::BuiltStage;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (!s || !*s) return fallback;
  return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
}

/// splitmix64: the same deterministic mixer the fault layer uses.
std::uint64_t next_rand(std::uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform(std::uint64_t* s, double lo, double hi) {
  const double u =
      static_cast<double>(next_rand(s) >> 11) * 0x1.0p-53;  // [0, 1)
  return lo + u * (hi - lo);
}

/// One fuzzed stage: what was built and how to rebuild it.
struct Sample {
  std::string topology;
  int k = 1;                      ///< device count (stack depth / fan-in)
  std::vector<double> widths;     ///< per-device widths [m]
  double load = 0.0;              ///< output load [F]
  double slew = 0.0;              ///< input ramp duration [s]
  double wire_l = 0.0;            ///< nand_pass only: wire length [m]
  device::Corner corner = device::Corner::typical;  ///< model grids used
};

BuiltStage build(const Sample& s) {
  const auto& proc = test::models().proc;
  if (s.topology == "nmos_stack")
    return circuit::make_nmos_stack(proc, s.widths, s.load);
  if (s.topology == "pmos_stack")
    return circuit::make_pmos_stack(proc, s.widths, s.load);
  if (s.topology == "nand")
    return circuit::make_nand(proc, s.k, s.load, s.widths[0]);
  if (s.topology == "nor")
    return circuit::make_nor(proc, s.k, s.load, s.widths[0]);
  if (s.topology == "nand_pass")
    return circuit::make_nand_pass_stage(proc, s.load, s.wire_l);
  return circuit::make_inverter(proc, s.load, s.widths[0]);
}

Sample draw(std::uint64_t* rng) {
  static const char* kTopologies[] = {"inverter",  "nand", "nor",
                                      "nmos_stack", "pmos_stack", "nand_pass"};
  Sample s;
  s.topology = kTopologies[next_rand(rng) % 6];
  s.k = 1 + static_cast<int>(next_rand(rng) % 6);  // 1..6
  if (s.topology == "inverter" || s.topology == "nand_pass") s.k = 1;
  if (s.topology == "nand" || s.topology == "nor")
    s.k = std::max(2, std::min(s.k, 4));  // builders want fan-in >= 2
  s.widths.resize(static_cast<std::size_t>(s.k));
  for (double& w : s.widths) w = uniform(rng, 0.8e-6, 4.0e-6);
  s.load = uniform(rng, 5e-15, 80e-15);
  s.slew = uniform(rng, 5e-12, 150e-12);
  s.wire_l = uniform(rng, 20e-6, 300e-6);
  // Model envelope: the pass-gate stage's region ladder assumes the
  // driving NAND switches well within the wire relaxation time. Ramps
  // past ~120 ps violate that and diverge from SPICE regardless of wire
  // length, so the fuzz domain is clamped to the supported envelope
  // (DESIGN.md section 10).
  if (s.topology == "nand_pass") s.slew = std::min(s.slew, 100e-12);
  s.corner = device::kAllCorners[next_rand(rng) % device::kCornerCount];
  return s;
}

std::vector<numeric::PwlWaveform> ramp_inputs(const BuiltStage& b,
                                              double slew) {
  const double vdd = test::models().proc.vdd;
  std::vector<numeric::PwlWaveform> in;
  for (std::size_t i = 0; i < b.stage.input_count(); ++i) {
    if (static_cast<int>(i) == b.switching_input)
      in.push_back(b.output_falls
                       ? numeric::PwlWaveform::ramp(5e-12, slew, 0.0, vdd)
                       : numeric::PwlWaveform::ramp(5e-12, slew, vdd, 0.0));
    else
      in.push_back(numeric::PwlWaveform::constant(b.output_falls ? vdd : 0.0));
  }
  return in;
}

double spice_delay(const BuiltStage& b,
                   const std::vector<numeric::PwlWaveform>& inputs,
                   double t_stop, const device::ModelSet& ms) {
  spice::StageSim sim = spice::circuit_from_stage(b.stage, ms, inputs);
  const double vdd = test::models().proc.vdd;
  const double pre = b.output_falls ? vdd : 0.0;
  for (std::size_t n = 0; n < b.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (!b.stage.is_rail(id)) sim.circuit.set_ic(sim.node_of[n], pre);
  }
  spice::TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = 1e-12;
  const auto res = spice::simulate_transient(sim.circuit, opt);
  if (!res.stats.converged) return -1.0;
  const auto t_in =
      inputs[b.switching_input].crossing(0.5 * vdd, 0.0, b.output_falls);
  if (!t_in) return -1.0;
  const auto t_out = res.waveforms[sim.node_of[b.output]].crossing(
      0.5 * vdd, *t_in, !b.output_falls);
  return t_out ? *t_out - *t_in : -1.0;
}

/// Reproducer artifact: a commented deck fragment with every parameter
/// and the env rerun line. tests/data/repro/ is created on demand.
void dump_repro(std::uint64_t seed, std::uint64_t sample_index,
                const Sample& s, double qwm, double ref,
                const std::string& why) {
  const std::filesystem::path dir =
      std::filesystem::path(QWM_TEST_DATA_DIR) / "repro";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ostringstream name;
  name << "qwm_vs_spice_seed" << seed << "_sample" << sample_index << ".sp";
  std::ofstream f(dir / name.str());
  f << "* qwm_vs_spice differential fuzz reproducer\n"
    << "* " << why << "\n"
    << "* topology=" << s.topology << " k=" << s.k
    << " corner=" << device::corner_name(s.corner) << "\n* widths_m=";
  for (double w : s.widths) f << " " << w;
  f << "\n* load_f=" << s.load << " slew_s=" << s.slew
    << " wire_l_m=" << s.wire_l << "\n"
    << "* qwm_delay_s=" << qwm << " spice_delay_s=" << ref << "\n"
    << "* rerun: QWM_FUZZ_SEED=" << seed
    << " QWM_FUZZ_SAMPLES=" << (sample_index + 1)
    << " test_fuzz --gtest_filter='DifferentialFuzz.*'\n";
}

TEST(DifferentialFuzz, QwmTracksSpiceOnRandomStages) {
  const std::uint64_t samples = env_u64("QWM_FUZZ_SAMPLES", 40);
  const std::uint64_t seed = env_u64("QWM_FUZZ_SEED", 20260806);
  std::uint64_t rng = seed;

  std::uint64_t failures = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const Sample s = draw(&rng);
    const BuiltStage b = build(s);
    const auto inputs = ramp_inputs(b, s.slew);
    const double t_stop = 2e-9 + 4.0 * s.slew;
    // Both engines run on the sampled corner's characterized grids.
    const device::ModelSet& ms = test::corner_models().set(s.corner);

    const StageTiming st = evaluate_stage(b, inputs, ms);
    if (!st.ok || !st.delay) {
      ++failures;
      dump_repro(seed, i, s, -1.0, -1.0,
                 "QWM (with fallback ladder) failed: " + st.error);
      ADD_FAILURE() << "sample " << i << " (" << s.topology << " k=" << s.k
                    << " @" << device::corner_name(s.corner)
                    << "): QWM failed: " << st.error;
      continue;
    }
    const double ref = spice_delay(b, inputs, t_stop, ms);
    if (ref <= 0.0) {
      ++failures;
      dump_repro(seed, i, s, *st.delay, ref, "SPICE baseline unmeasurable");
      ADD_FAILURE() << "sample " << i << " (" << s.topology << " k=" << s.k
                    << " @" << device::corner_name(s.corner)
                    << "): SPICE baseline unmeasurable";
      continue;
    }
    // Tolerance: 15% relative or 5 ps absolute — guards gross divergence
    // across every topology class without flaking on the model gap
    // (DESIGN.md section 10 documents the bound).
    const double tol = std::max(0.15 * ref, 5e-12);
    if (std::abs(*st.delay - ref) > tol) {
      ++failures;
      dump_repro(seed, i, s, *st.delay, ref, "delay divergence past 15%/5ps");
      ADD_FAILURE() << "sample " << i << " (" << s.topology << " k=" << s.k
                    << " @" << device::corner_name(s.corner)
                    << "): qwm=" << *st.delay << " spice=" << ref
                    << " tol=" << tol;
    }
  }
  EXPECT_EQ(failures, 0u) << "reproducers under tests/data/repro/";
}

}  // namespace
}  // namespace qwm::core
