// Protocol fuzz: the qwm_serve request path must answer ERR (never
// crash, hang, or emit a malformed reply) for arbitrary byte streams —
// random garbage, truncated and oversized verb payloads, embedded
// control characters — with and without an armed fault plan. Runs under
// the same tier-1 label as everything else, so the TSan preset covers
// the threaded stream transport too.
//
//   QWM_FUZZ_SAMPLES   line count per case (default 300)
//   QWM_FUZZ_SEED      generator seed (default 20260806)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "qwm/service/protocol.h"
#include "qwm/service/server.h"
#include "qwm/support/fault_injection.h"

namespace qwm::service {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (!s || !*s) return fallback;
  return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
}

std::uint64_t next_rand(std::uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One fuzzed request line (newline-free; the transport owns framing).
std::string fuzz_line(std::uint64_t* rng) {
  static const char* kStems[] = {
      "LOAD",   "ARRIVAL", "SLACK",    "CRITPATH", "RESIZE",
      "UPDATE", "STATS",   "SHUTDOWN", "BOGUS",    "",
  };
  const std::uint64_t mode = next_rand(rng) % 4;
  std::string line;
  if (mode != 0) line = kStems[next_rand(rng) % 10];
  const std::uint64_t extra = next_rand(rng) % 6;
  for (std::uint64_t t = 0; t < extra; ++t) {
    line += ' ';
    const std::uint64_t len = 1 + next_rand(rng) % 24;
    for (std::uint64_t c = 0; c < len; ++c) {
      // Bytes 1..255 except '\n' (the framing byte); '\r' and control
      // characters are fair game inside a line.
      char ch = static_cast<char>(1 + next_rand(rng) % 255);
      if (ch == '\n') ch = '?';
      line += ch;
    }
  }
  // Occasionally oversized: a multi-kilobyte operand.
  if (next_rand(rng) % 17 == 0)
    line += " " + std::string(1 + next_rand(rng) % 16384, 'x');
  return line;
}

void expect_one_line_reply(const std::string& line, const std::string& resp) {
  // Blank/comment lines get no reply; everything else is exactly one
  // well-formed OK/ERR line with no embedded newline.
  if (resp.empty()) return;
  EXPECT_EQ(resp.find('\n'), std::string::npos) << "line: " << line;
  EXPECT_TRUE(is_ok(resp) || is_err(resp)) << "line: " << line
                                           << " resp: " << resp;
}

TEST(ProtocolFuzz, RandomLinesNeverCrashTheDispatcher) {
  const std::uint64_t samples = env_u64("QWM_FUZZ_SAMPLES", 300);
  std::uint64_t rng = env_u64("QWM_FUZZ_SEED", 20260806);
  Server server;  // no design loaded: every query must degrade to ERR
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::string line = fuzz_line(&rng);
    expect_one_line_reply(line, server.handle_line(line));
  }
  // SHUTDOWN may have been drawn; the server object must still answer.
  EXPECT_FALSE(server.handle_line("STATS").empty());
}

TEST(ProtocolFuzz, TruncatedAndOversizedLoadPayloads) {
  Server server;
  const std::string cases[] = {
      "LOAD",                                   // missing operand
      "LOAD ",                                  // empty operand
      "LOAD /nonexistent/deck.sp",              // unreadable path
      "LOAD " + std::string(65536, 'a'),        // oversized path
      "LOAD a b c",                             // operand overrun
      "RESIZE 0",                               // truncated operands
      "RESIZE 999999999 999999999 1e99",        // absurd operands
      "SLACK out",                              // missing period
      "SLACK out -1n",                          // negative period
      "ARRIVAL " + std::string(65536, 'n'),     // oversized net name
  };
  for (const auto& line : cases) {
    const std::string resp = server.handle_line(line);
    EXPECT_TRUE(is_err(resp)) << "line: " << line.substr(0, 64)
                              << " resp: " << resp.substr(0, 64);
  }
}

TEST(ProtocolFuzz, RandomByteStreamOverStreamTransport) {
  const std::uint64_t samples = env_u64("QWM_FUZZ_SAMPLES", 300);
  std::uint64_t rng = env_u64("QWM_FUZZ_SEED", 20260806) ^ 0xabcdefull;
  std::string blob;
  for (std::uint64_t i = 0; i < samples; ++i) {
    blob += fuzz_line(&rng);
    blob += '\n';
  }
  blob += "SHUTDOWN\n";
  ServerOptions opt;
  opt.threads = 2;
  Server server(opt);
  std::istringstream in(blob);
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);
  std::istringstream replies(out.str());
  std::string r;
  while (std::getline(replies, r))
    EXPECT_TRUE(is_ok(r) || is_err(r)) << r;
}

TEST(ProtocolFuzz, ArmedFaultPlanKeepsRepliesWellFormed) {
  const std::uint64_t samples = env_u64("QWM_FUZZ_SAMPLES", 300);
  std::uint64_t rng = env_u64("QWM_FUZZ_SEED", 20260806) ^ 0x5eedull;
  support::FaultPlan plan;
  plan.seed = 11;
  support::FaultRule frame;
  frame.site = support::FaultSite::kMalformedFrame;
  frame.one_in = 2;
  plan.add(frame);
  support::FaultRule failr;
  failr.site = support::FaultSite::kFailRequest;
  failr.one_in = 3;
  plan.add(failr);
  support::ScopedFaultPlan armed{plan};

  Server server;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::string line = fuzz_line(&rng);
    expect_one_line_reply(line, server.handle_line(line));
  }
}

}  // namespace
}  // namespace qwm::service
