// Decoder-tree sweep: QWM must stay robust and accurate across wire
// resistivities and tree depths (the stiff-cluster / multi-timescale
// territory that exercises pi-model merging and adaptive splitting).
#include <gtest/gtest.h>

#include <tuple>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/device/tabular_model.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"

namespace qwm::core {
namespace {

class DecoderSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(DecoderSweep, ConvergesAcrossResistivityAndDepth) {
  const auto [r_sheet, levels] = GetParam();
  device::Process proc = device::Process::cmosp35();
  proc.wire.r_sheet = r_sheet;
  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet ms{&nmos, &pmos, &proc};

  const auto b = circuit::make_decoder_tree(proc, levels, 20e-15, 100e-6);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd)};
  QwmOptions opt;
  opt.t_max = 100e-9;  // deep resistive trees are genuinely slow
  const auto st = evaluate_stage(b.stage, b.output, true, inputs, 0, ms, opt);
  ASSERT_TRUE(st.ok) << "rs=" << r_sheet << " levels=" << levels << ": "
                     << st.error;
  ASSERT_TRUE(st.delay);
  EXPECT_GT(*st.delay, 10e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DecoderSweep,
    ::testing::Combine(::testing::Values(0.075, 0.5, 2.0, 8.0),
                       ::testing::Values(2, 3, 4)));

TEST(Decoder, AccuracyAgainstBaselineWithResistiveWires) {
  device::Process proc = device::Process::cmosp35();
  proc.wire.r_sheet = 2.0;
  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet ms{&nmos, &pmos, &proc};

  const auto b = circuit::make_decoder_tree(proc, 3, 30e-15, 100e-6);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd)};
  const auto st = evaluate_stage(b.stage, b.output, true, inputs, 0, ms);
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_TRUE(st.delay);

  spice::StageSim sim = spice::circuit_from_stage(b.stage, ms, inputs);
  for (std::size_t n = 0; n < b.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (!b.stage.is_rail(id)) sim.circuit.set_ic(sim.node_of[n], proc.vdd);
  }
  spice::TransientOptions topt;
  topt.t_stop = 3e-9;
  topt.dt = 1e-12;
  const auto res = spice::simulate_transient(sim.circuit, topt);
  const auto t_in = inputs[0].crossing(0.5 * proc.vdd, 0.0, true);
  const auto t_out = res.waveforms[sim.node_of[b.output]].crossing(
      0.5 * proc.vdd, *t_in, false);
  ASSERT_TRUE(t_out);
  const double ref = *t_out - *t_in;
  // Wires are the paper's own worst accuracy case (96.4%); require 95%.
  EXPECT_NEAR(*st.delay, ref, 0.05 * ref);
}

}  // namespace
}  // namespace qwm::core
