// Fault matrix for the solver fallback ladder: for every injectable
// solver fault the ladder must land on the expected rung, produce a
// result within tolerance of the fault-free golden answer, and account
// for the recovery in QwmStats::fallback_counts. An armed-but-empty plan
// must leave results bit-identical to the unarmed run — the zero-cost
// contract of the injection layer.
#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/core/workspace.h"
#include "qwm/support/fault_injection.h"

namespace qwm::core {
namespace {

using support::FaultPlan;
using support::FaultRule;
using support::FaultSite;
using support::ScopedFaultPlan;

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

/// The reference workload: a NAND2 discharge event.
StageTiming eval_nand() {
  const auto& proc = test::models().proc;
  const auto b = circuit::make_nand(proc, 2, 20e-15);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd),
      numeric::PwlWaveform::constant(proc.vdd)};
  return evaluate_stage(b, inputs, models());
}

/// Fault-free golden delay, computed once.
double golden_delay() {
  static const double d = [] {
    const StageTiming st = eval_nand();
    EXPECT_TRUE(st.ok && st.delay);
    return st.delay.value_or(0.0);
  }();
  return d;
}

/// |delay - golden| within `rel` of golden or 5 ps absolute.
void expect_within(double delay, double rel) {
  const double g = golden_delay();
  EXPECT_LE(std::abs(delay - g), std::max(rel * g, 5e-12))
      << "delay " << delay << " vs golden " << g;
}

TEST(FaultLadder, ArmedEmptyPlanIsBitIdentical) {
  const StageTiming nominal = eval_nand();
  ASSERT_TRUE(nominal.ok && nominal.delay);
  ScopedFaultPlan plan{FaultPlan{}};
  const StageTiming armed = eval_nand();
  ASSERT_TRUE(armed.ok && armed.delay);
  EXPECT_EQ(*armed.delay, *nominal.delay);  // bit-identical
  EXPECT_FALSE(armed.qwm.degraded);
  EXPECT_EQ(armed.qwm.stats.fallback_total(), 0u);
  EXPECT_GT(armed.qwm.stats.fallback_counts[kRungNominal], 0u);
}

TEST(FaultLadder, NewtonStallLandsOnDampedRung) {
  FaultPlan plan;
  FaultRule stall;
  stall.site = FaultSite::kNewtonStall;
  stall.max_rung = 0;      // sabotage only the nominal attempts
  stall.magnitude = 0.0;   // stall immediately
  plan.add(stall);
  ScopedFaultPlan armed{plan};

  const StageTiming st = eval_nand();
  ASSERT_TRUE(st.ok && st.delay) << st.error;
  EXPECT_TRUE(st.qwm.degraded);
  EXPECT_GE(st.qwm.stats.fallback_counts[kRungDamped], 1u);
  EXPECT_EQ(st.qwm.stats.fallback_counts[kRungBisect], 0u);
  EXPECT_EQ(st.qwm.stats.fallback_counts[kRungSpice], 0u);
  // Damped Newton converges to the same region solutions: tight bound.
  expect_within(*st.delay, 0.01);
  const auto counters = support::fault_counters();
  EXPECT_GT(counters.fired[static_cast<int>(FaultSite::kNewtonStall)], 0u);
}

TEST(FaultLadder, SingularPivotIsAbsorbedByDenseLu) {
  FaultPlan plan;
  plan.add(FaultRule{.site = FaultSite::kSingularPivot});
  ScopedFaultPlan armed{plan};

  // A failing tridiagonal factorization never reaches the ladder: the
  // region step re-solves the same Jacobian densely.
  const StageTiming st = eval_nand();
  ASSERT_TRUE(st.ok && st.delay) << st.error;
  EXPECT_FALSE(st.qwm.degraded);
  EXPECT_EQ(st.qwm.stats.fallback_total(), 0u);
  EXPECT_GT(st.qwm.stats.lu_fallbacks, 0u);
  expect_within(*st.delay, 0.01);
}

TEST(FaultLadder, SmDenominatorIsAbsorbedByDenseLu) {
  FaultPlan plan;
  plan.add(FaultRule{.site = FaultSite::kSmDenominator});
  ScopedFaultPlan armed{plan};

  const StageTiming st = eval_nand();
  ASSERT_TRUE(st.ok && st.delay) << st.error;
  EXPECT_FALSE(st.qwm.degraded);
  EXPECT_EQ(st.qwm.stats.fallback_total(), 0u);
  EXPECT_GT(st.qwm.stats.lu_fallbacks, 0u);
  expect_within(*st.delay, 0.01);
}

TEST(FaultLadder, PersistentStallLandsOnBisectRung) {
  FaultPlan plan;
  FaultRule stall;
  stall.site = FaultSite::kNewtonStall;
  stall.max_rung = 1;  // break nominal AND the damped retry
  plan.add(stall);
  ScopedFaultPlan armed{plan};

  const StageTiming st = eval_nand();
  ASSERT_TRUE(st.ok && st.delay) << st.error;
  EXPECT_TRUE(st.qwm.degraded);
  EXPECT_GE(st.qwm.stats.fallback_counts[kRungBisect], 1u);
  EXPECT_EQ(st.qwm.stats.fallback_counts[kRungSpice], 0u);
  // The bisection rung commits Picard-refined solutions — coarse but
  // bounded; accuracy is the SPICE rung's job, not this one's.
  expect_within(*st.delay, 0.25);
}

TEST(FaultLadder, BrokenBisectionFallsThroughToSpice) {
  FaultPlan plan;
  FaultRule stall;
  stall.site = FaultSite::kNewtonStall;
  stall.max_rung = 1;
  plan.add(stall);
  plan.add(FaultRule{.site = FaultSite::kBisectionFail});
  ScopedFaultPlan armed{plan};

  const StageTiming st = eval_nand();
  ASSERT_TRUE(st.ok && st.delay) << st.error;
  EXPECT_TRUE(st.qwm.degraded);
  EXPECT_GE(st.qwm.stats.fallback_counts[kRungSpice], 1u);
  // Cross-engine last resort: the documented fuzz tolerance applies.
  expect_within(*st.delay, 0.15);
}

TEST(FaultLadder, FiredCountsAreDeterministic) {
  FaultPlan plan;
  FaultRule stall;
  stall.site = FaultSite::kNewtonStall;
  stall.max_rung = 0;
  plan.add(stall);

  std::uint64_t first_fired = 0;
  std::size_t first_damped = 0;
  for (int run = 0; run < 2; ++run) {
    ScopedFaultPlan armed{plan};  // resets counters on entry
    const StageTiming st = eval_nand();
    ASSERT_TRUE(st.ok) << st.error;
    const auto counters = support::fault_counters();
    const auto fired =
        counters.fired[static_cast<int>(FaultSite::kNewtonStall)];
    if (run == 0) {
      first_fired = fired;
      first_damped = st.qwm.stats.fallback_counts[kRungDamped];
      EXPECT_GT(first_fired, 0u);
    } else {
      EXPECT_EQ(fired, first_fired);
      EXPECT_EQ(st.qwm.stats.fallback_counts[kRungDamped], first_damped);
    }
  }
  // Disarmed again: the sites stop counting.
  const auto idle = support::fault_counters();
  const StageTiming st = eval_nand();
  ASSERT_TRUE(st.ok);
  const auto after = support::fault_counters();
  EXPECT_EQ(after.occurrences[static_cast<int>(FaultSite::kNewtonStall)],
            idle.occurrences[static_cast<int>(FaultSite::kNewtonStall)]);
}

TEST(FaultLadder, WorkspaceGrowFaultOnlyTouchesTelemetry) {
  const StageTiming nominal = eval_nand();
  ASSERT_TRUE(nominal.ok && nominal.delay);

  FaultPlan plan;
  plan.add(FaultRule{.site = FaultSite::kWorkspaceGrow});
  ScopedFaultPlan armed{plan};
  EvalWorkspace ws;
  const auto& proc = test::models().proc;
  const auto b = circuit::make_nand(proc, 2, 20e-15);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd),
      numeric::PwlWaveform::constant(proc.vdd)};
  const StageTiming st = evaluate_stage(b, inputs, models(), {}, ws);
  ASSERT_TRUE(st.ok && st.delay) << st.error;
  // Phantom grow events inflate the telemetry, never the answer.
  EXPECT_EQ(*st.delay, *nominal.delay);
  EXPECT_FALSE(st.qwm.degraded);
  EXPECT_GT(ws.stats().grow_events, 0u);
}

}  // namespace
}  // namespace qwm::core
