#include "qwm/core/qwm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"

namespace qwm::core {
namespace {

using circuit::BuiltStage;
using circuit::make_decoder_tree;
using circuit::make_inverter;
using circuit::make_nand;
using circuit::make_nmos_stack;
using circuit::make_pmos_stack;

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

std::vector<numeric::PwlWaveform> step_inputs(const BuiltStage& b,
                                              double t_step = 5e-12) {
  const double vdd = test::models().proc.vdd;
  std::vector<numeric::PwlWaveform> in;
  for (std::size_t i = 0; i < b.stage.input_count(); ++i) {
    if (static_cast<int>(i) == b.switching_input)
      in.push_back(b.output_falls
                       ? numeric::PwlWaveform::step(t_step, 0.0, vdd)
                       : numeric::PwlWaveform::step(t_step, vdd, 0.0));
    else
      in.push_back(numeric::PwlWaveform::constant(b.output_falls ? vdd : 0.0));
  }
  return in;
}

/// SPICE reference on the same stage with matching worst-case precharge.
spice::TransientResult spice_reference(
    const BuiltStage& b, const std::vector<numeric::PwlWaveform>& inputs,
    double t_stop, double dt, spice::StageSim* sim_out = nullptr) {
  spice::StageSim sim = spice::circuit_from_stage(b.stage, models(), inputs);
  const double pre = b.output_falls ? test::models().proc.vdd : 0.0;
  for (std::size_t n = 0; n < b.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (b.stage.is_rail(id)) continue;
    sim.circuit.set_ic(sim.node_of[n], pre);
  }
  spice::TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = dt;
  const auto res = spice::simulate_transient(sim.circuit, opt);
  if (sim_out) *sim_out = std::move(sim);
  return res;
}

TEST(Qwm, InverterDischargeProducesFallingOutput) {
  const auto b = make_inverter(test::models().proc, 20e-15);
  const auto st = evaluate_stage(b, step_inputs(b), models());
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_TRUE(st.delay);
  EXPECT_GT(*st.delay, 1e-12);
  EXPECT_LT(*st.delay, 300e-12);
  const auto& w = st.qwm.output_waveform();
  EXPECT_NEAR(w.eval(0.0), 3.3, 1e-9);
  EXPECT_LT(w.end_value(), 0.3);
  ASSERT_TRUE(st.output_slew);
  EXPECT_GT(*st.output_slew, 0.0);
}

TEST(Qwm, InverterChargeProducesRisingOutput) {
  auto b = make_inverter(test::models().proc, 20e-15);
  b.output_falls = false;  // analyze the rising event instead
  const auto st = evaluate_stage(b, step_inputs(b), models());
  ASSERT_TRUE(st.ok) << st.error;
  const auto& w = st.qwm.output_waveform();
  EXPECT_NEAR(w.eval(0.0), 0.0, 1e-9);
  EXPECT_GT(w.end_value(), 3.0);
  ASSERT_TRUE(st.delay);
  EXPECT_GT(*st.delay, 1e-12);
}

TEST(Qwm, StackCriticalPointsAreStaggered) {
  const auto b =
      make_nmos_stack(test::models().proc,
                      std::vector<double>(6, 1e-6), 30e-15);
  const auto st = evaluate_stage(b, step_inputs(b), models());
  ASSERT_TRUE(st.ok) << st.error;
  const auto& ct = st.qwm.critical_times;
  // 6 turn-on events plus tail matching points, strictly increasing.
  ASSERT_GE(ct.size(), 6u);
  for (std::size_t i = 1; i < ct.size(); ++i) EXPECT_GT(ct[i], ct[i - 1]);
  // Turn-on spacing is physical (tens of ps), not collapsed to zero.
  EXPECT_GT(ct[2] - ct[1], 1e-13);
}

TEST(Qwm, StackNodeWaveformsOrderedBottomUp) {
  const auto b = make_nmos_stack(test::models().proc,
                                 std::vector<double>(5, 1e-6), 20e-15);
  const auto st = evaluate_stage(b, step_inputs(b), models());
  ASSERT_TRUE(st.ok) << st.error;
  // Lower nodes discharge earlier: 50% crossing times increase with
  // position.
  double prev = -1.0;
  for (const auto& w : st.qwm.node_waveforms) {
    const auto t = w.crossing(1.65);
    ASSERT_TRUE(t);
    EXPECT_GT(*t, prev);
    prev = *t;
  }
}

class QwmVsSpice : public ::testing::TestWithParam<int> {};

TEST_P(QwmVsSpice, StackDelayWithinFivePercent) {
  const int k = GetParam();
  const auto b = make_nmos_stack(test::models().proc,
                                 std::vector<double>(k, 1e-6), 25e-15);
  const auto inputs = step_inputs(b);
  const auto st = evaluate_stage(b, inputs, models());
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_TRUE(st.delay);

  spice::StageSim sim;
  const auto ref = spice_reference(b, inputs, 3e-9, 1e-12, &sim);
  ASSERT_TRUE(ref.stats.converged);
  const auto& out_ref = ref.waveforms[sim.node_of[b.output]];
  const auto t_in = inputs[b.switching_input].crossing(1.65, 0.0, true);
  const auto t_out = out_ref.crossing(1.65, *t_in, false);
  ASSERT_TRUE(t_out) << "SPICE output never crossed 50%";
  const double ref_delay = *t_out - *t_in;

  EXPECT_NEAR(*st.delay, ref_delay, 0.05 * ref_delay)
      << "k=" << k << " qwm=" << *st.delay << " spice=" << ref_delay;
}

INSTANTIATE_TEST_SUITE_P(StackLengths, QwmVsSpice,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Qwm, OutputWaveformTracksSpice) {
  const auto b = make_nmos_stack(test::models().proc,
                                 std::vector<double>(4, 1e-6), 25e-15);
  const auto inputs = step_inputs(b);
  const auto st = evaluate_stage(b, inputs, models());
  ASSERT_TRUE(st.ok) << st.error;

  spice::StageSim sim;
  const auto ref = spice_reference(b, inputs, 2e-9, 1e-12, &sim);
  const auto& out_ref = ref.waveforms[sim.node_of[b.output]];
  const auto qwm_pwl = st.qwm.output_waveform().to_pwl(16);
  // Compare over the active transition window.
  const double t1 = std::min(qwm_pwl.last_time(), out_ref.last_time());
  const double diff = numeric::PwlWaveform::max_difference(qwm_pwl, out_ref,
                                                           0.0, t1);
  EXPECT_LT(diff, 0.35) << "max waveform deviation " << diff << " V";
}

TEST(Qwm, PmosStackChargeMirrorsNmosDischarge) {
  const auto bn = make_nmos_stack(test::models().proc,
                                  std::vector<double>(3, 1e-6), 20e-15);
  const auto bp = make_pmos_stack(test::models().proc,
                                  std::vector<double>(3, 2.5e-6), 20e-15);
  const auto stn = evaluate_stage(bn, step_inputs(bn), models());
  const auto stp = evaluate_stage(bp, step_inputs(bp), models());
  ASSERT_TRUE(stn.ok) << stn.error;
  ASSERT_TRUE(stp.ok) << stp.error;
  ASSERT_TRUE(stn.delay && stp.delay);
  // PMOS sized ~2.5x compensates mobility: delays within 2x of each other.
  EXPECT_LT(*stp.delay, 2.0 * *stn.delay);
  EXPECT_GT(*stp.delay, 0.3 * *stn.delay);
  // Charge output rises.
  EXPECT_GT(stp.qwm.output_waveform().end_value(), 2.8);
}

TEST(Qwm, TridiagonalMatchesDenseLu) {
  const auto b = make_nmos_stack(test::models().proc,
                                 std::vector<double>(6, 1.3e-6), 25e-15);
  const auto inputs = step_inputs(b);
  QwmOptions tri, dense;
  tri.solver = RegionSolver::tridiagonal;
  dense.solver = RegionSolver::dense_lu;
  const auto st_tri = evaluate_stage(b, inputs, models(), tri);
  const auto st_dense = evaluate_stage(b, inputs, models(), dense);
  ASSERT_TRUE(st_tri.ok && st_dense.ok);
  ASSERT_TRUE(st_tri.delay && st_dense.delay);
  EXPECT_NEAR(*st_tri.delay, *st_dense.delay, 1e-15);
  EXPECT_EQ(st_tri.qwm.stats.lu_fallbacks, 0u);
}

TEST(Qwm, QuadraticModelBeatsLinearModel) {
  const auto b = make_nmos_stack(test::models().proc,
                                 std::vector<double>(5, 1e-6), 25e-15);
  const auto inputs = step_inputs(b);

  spice::StageSim sim;
  const auto ref = spice_reference(b, inputs, 3e-9, 1e-12, &sim);
  const auto& out_ref = ref.waveforms[sim.node_of[b.output]];
  const auto t_in = inputs[b.switching_input].crossing(1.65, 0.0, true);
  const auto t_out = out_ref.crossing(1.65, *t_in, false);
  ASSERT_TRUE(t_out);
  const double ref_delay = *t_out - *t_in;

  // Coarse tail ladders make the region model itself carry the accuracy;
  // with fine ladders both models converge to the reference.
  QwmOptions quad, lin;
  quad.tail_fractions = {0.6, 0.4, 0.2, 0.08};
  lin.tail_fractions = {0.6, 0.4, 0.2, 0.08};
  quad.model = RegionModel::quadratic;
  lin.model = RegionModel::linear;
  const auto st_q = evaluate_stage(b, inputs, models(), quad);
  const auto st_l = evaluate_stage(b, inputs, models(), lin);
  ASSERT_TRUE(st_q.ok) << st_q.error;
  ASSERT_TRUE(st_l.ok) << st_l.error;
  ASSERT_TRUE(st_q.delay && st_l.delay);
  const double err_q = std::abs(*st_q.delay - ref_delay);
  const double err_l = std::abs(*st_l.delay - ref_delay);
  EXPECT_LE(err_q, err_l * 1.05);  // quadratic at least as accurate
}

class QwmCubicVsSpice : public ::testing::TestWithParam<int> {};

TEST_P(QwmCubicVsSpice, CoarseLadderStaysAccurate) {
  // The r = 2 (cubic) region model matches currents at the region
  // midpoint AND endpoint, so a 4-target tail ladder suffices where the
  // paper's r = 1 model needs ~14.
  const int k = GetParam();
  const auto b = make_nmos_stack(test::models().proc,
                                 std::vector<double>(k, 1e-6), 25e-15);
  const auto inputs = step_inputs(b);

  QwmOptions opt;
  opt.model = RegionModel::cubic;
  opt.tail_fractions = {0.835, 0.605, 0.375, 0.145};
  const auto st = evaluate_stage(b, inputs, models(), opt);
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_TRUE(st.delay);

  spice::StageSim sim;
  const auto ref = spice_reference(b, inputs, 3e-9, 1e-12, &sim);
  const auto t_in = inputs[b.switching_input].crossing(1.65, 0.0, true);
  const auto t_out =
      ref.waveforms[sim.node_of[b.output]].crossing(1.65, *t_in, false);
  ASSERT_TRUE(t_out);
  const double ref_delay = *t_out - *t_in;
  EXPECT_NEAR(*st.delay, ref_delay, 0.03 * ref_delay) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(StackLengths, QwmCubicVsSpice,
                         ::testing::Values(2, 4, 7, 10));

TEST(Qwm, CubicUsesFewerRegionsThanQuadratic) {
  const auto b = make_nmos_stack(test::models().proc,
                                 std::vector<double>(6, 1e-6), 25e-15);
  const auto inputs = step_inputs(b);
  QwmOptions cub;
  cub.model = RegionModel::cubic;
  cub.tail_fractions = {0.835, 0.605, 0.375, 0.145};
  const auto st_c = evaluate_stage(b, inputs, models(), cub);
  const auto st_q = evaluate_stage(b, inputs, models());
  ASSERT_TRUE(st_c.ok && st_q.ok);
  EXPECT_LT(st_c.qwm.stats.regions, st_q.qwm.stats.regions);
}

TEST(Qwm, RampInputHandled) {
  const auto b = make_nand(test::models().proc, 2, 20e-15);
  const double vdd = test::models().proc.vdd;
  std::vector<numeric::PwlWaveform> inputs;
  inputs.push_back(numeric::PwlWaveform::ramp(10e-12, 80e-12, 0.0, vdd));
  inputs.push_back(numeric::PwlWaveform::constant(vdd));
  const auto st = evaluate_stage(b, inputs, models());
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_TRUE(st.delay);
  EXPECT_GT(*st.delay, 0.0);
}

TEST(Qwm, PureRcPathDecaysExponentially) {
  // A resistive wire straight to ground (no transistors): the region
  // machinery reduces to matching an RC decay. Compare the 50% time
  // against the analytic tau*ln2.
  const auto& proc = test::models().proc;
  circuit::LogicStage s(proc.vdd);
  const auto out = s.add_node("out");
  const auto e = s.add_edge(circuit::DeviceKind::wire, out, s.sink(), 1e-6,
                            1e-6);
  s.edge_mut(e).explicit_r = 2000.0;
  s.edge_mut(e).explicit_c = 0.0;
  s.add_output(out);
  s.set_load_cap(out, 50e-15);

  const auto path = circuit::extract_worst_path(s, out, true);
  ASSERT_EQ(path.elements.size(), 1u);
  // Keep the resistor explicit regardless of the merge threshold.
  const auto prob = circuit::build_path_problem(s, path, models(), 0.0);
  ASSERT_EQ(prob.transistor_count(), 0u);
  const auto r = evaluate_path(prob, {});
  ASSERT_TRUE(r.ok) << r.error;
  const double tau = 2000.0 * 50e-15;
  const auto t50 = r.output_waveform().crossing(0.5 * proc.vdd);
  ASSERT_TRUE(t50);
  EXPECT_NEAR(*t50, tau * std::log(2.0), 0.05 * tau);
}

TEST(Qwm, StaticGateNeverOnFails) {
  // A stack whose upper gate is tied low can never discharge.
  const auto& proc = test::models().proc;
  auto b = make_nmos_stack(proc, {1e-6, 1e-6}, 10e-15);
  // Make the upper device's static gate 0.
  for (std::size_t e = 0; e < b.stage.edge_count(); ++e) {
    auto& ed = b.stage.edge_mut(static_cast<circuit::EdgeId>(e));
    if (ed.input < 0) ed.static_gate_voltage = 0.0;
  }
  const auto st = evaluate_stage(b, step_inputs(b), models());
  EXPECT_FALSE(st.ok);
}

TEST(Qwm, InitialVoltageOverride) {
  const auto b = make_nmos_stack(test::models().proc, {1e-6, 1e-6}, 10e-15);
  QwmOptions opt;
  opt.initial_voltages = {2.0, 2.5};  // partially discharged start
  const auto st = evaluate_stage(b, step_inputs(b), models(), opt);
  ASSERT_TRUE(st.ok) << st.error;
  EXPECT_NEAR(st.qwm.output_waveform().eval(0.0), 2.5, 1e-9);
}

TEST(Qwm, StatsAccumulate) {
  const auto b = make_nmos_stack(test::models().proc,
                                 std::vector<double>(4, 1e-6), 20e-15);
  const auto st = evaluate_stage(b, step_inputs(b), models());
  ASSERT_TRUE(st.ok);
  EXPECT_GT(st.qwm.stats.regions, 3u);
  EXPECT_GT(st.qwm.stats.newton_iterations, 0u);
  EXPECT_GT(st.qwm.stats.device_evals, 0u);
}

TEST(Qwm, DecoderTreeWithWiresRuns) {
  const auto b = make_decoder_tree(test::models().proc, 3, 20e-15);
  const auto st = evaluate_stage(b, step_inputs(b), models());
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_TRUE(st.delay);
  EXPECT_GT(*st.delay, 10e-12);  // long wires make this slow
}

}  // namespace
}  // namespace qwm::core
