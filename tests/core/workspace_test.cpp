// The hot-path contracts introduced with the scratch-workspace refactor:
//  * allocation-freeness — repeated evaluations through one EvalWorkspace
//    stop growing its buffers after the first pass (flat high-water mark,
//    no new grow events);
//  * batched-vs-scalar bit-exactness — the SoA device-eval kernel must
//    reproduce the scalar per-device path bit for bit on randomized
//    stacks;
//  * warm starts — replaying a recorded solve trace on the same inputs is
//    bit-identical at zero Newton iterations, and seeding from a nearby
//    operating point's trace converges with strictly less work.
#include "qwm/core/workspace.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"

namespace qwm::core {
namespace {

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

/// Worst-case stimulus: the switching input steps at 5 ps, everything
/// else at its non-controlling level.
std::vector<numeric::PwlWaveform> step_inputs(const circuit::BuiltStage& b) {
  const double vdd = test::models().proc.vdd;
  std::vector<numeric::PwlWaveform> in;
  for (std::size_t i = 0; i < b.stage.input_count(); ++i) {
    if (static_cast<int>(i) == b.switching_input)
      in.push_back(b.output_falls
                       ? numeric::PwlWaveform::step(5e-12, 0.0, vdd)
                       : numeric::PwlWaveform::step(5e-12, vdd, 0.0));
    else
      in.push_back(numeric::PwlWaveform::constant(b.output_falls ? vdd : 0.0));
  }
  return in;
}

circuit::BuiltStage make_stack(int k, double w, double load) {
  return circuit::make_nmos_stack(
      test::models().proc, std::vector<double>(static_cast<std::size_t>(k), w),
      load);
}

TEST(Workspace, SteadyStateEvaluationsAllocateNothing) {
  const auto b = make_stack(4, 1.2e-6, 20e-15);
  const auto inputs = step_inputs(b);
  const QwmOptions opt;
  EvalWorkspace ws;

  const auto first = evaluate_stage(b, inputs, models(), opt, ws);
  ASSERT_TRUE(first.ok) << first.error;
  const WorkspaceStats warm_up = ws.stats();
  EXPECT_GT(warm_up.high_water_bytes, 0u);
  EXPECT_GT(warm_up.grow_events, 0u);

  for (int i = 0; i < 5; ++i) {
    const auto st = evaluate_stage(b, inputs, models(), opt, ws);
    ASSERT_TRUE(st.ok);
    EXPECT_EQ(*st.delay, *first.delay) << "iteration " << i;
  }
  const WorkspaceStats steady = ws.stats();
  // The observable proof of allocation-freeness: nothing grew.
  EXPECT_EQ(steady.grow_events, warm_up.grow_events);
  EXPECT_EQ(steady.high_water_bytes, warm_up.high_water_bytes);
  EXPECT_EQ(steady.evals, warm_up.evals + 5);
}

TEST(Workspace, SmallerPathsReuseLargerBuffers) {
  EvalWorkspace ws;
  const QwmOptions opt;
  const auto big = make_stack(6, 1.2e-6, 20e-15);
  ASSERT_TRUE(evaluate_stage(big, step_inputs(big), models(), opt, ws).ok);
  const WorkspaceStats after_big = ws.stats();
  // A shorter path fits in the already-grown buffers.
  const auto small = make_stack(2, 1.2e-6, 20e-15);
  ASSERT_TRUE(evaluate_stage(small, step_inputs(small), models(), opt, ws).ok);
  const WorkspaceStats after_small = ws.stats();
  EXPECT_EQ(after_small.grow_events, after_big.grow_events);
  EXPECT_EQ(after_small.high_water_bytes, after_big.high_water_bytes);
}

TEST(Workspace, WorkspaceReuseIsBitIdenticalToFreshBuffers) {
  EvalWorkspace ws;
  const QwmOptions opt;
  for (const int k : {2, 3, 5}) {
    const auto b = make_stack(k, 1.4e-6, 25e-15);
    const auto inputs = step_inputs(b);
    const auto fresh = evaluate_stage(b, inputs, models(), opt);
    const auto reused = evaluate_stage(b, inputs, models(), opt, ws);
    ASSERT_TRUE(fresh.ok && reused.ok) << "k=" << k;
    EXPECT_EQ(*fresh.delay, *reused.delay) << "k=" << k;
    EXPECT_EQ(*fresh.output_slew, *reused.output_slew) << "k=" << k;
  }
}

TEST(BatchedDeviceEval, RandomStacksMatchScalarBitForBit) {
  // Randomized 2-6 transistor stacks with non-uniform widths and loads:
  // the batched SoA kernel and the scalar per-device path must agree to
  // the last bit (they share one frame-lookup kernel; stamping stays in
  // circuit order).
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> w_dist(0.8e-6, 3.0e-6);
  std::uniform_real_distribution<double> c_dist(10e-15, 40e-15);
  for (int trial = 0; trial < 8; ++trial) {
    const int k = 2 + trial % 5;
    std::vector<double> widths(static_cast<std::size_t>(k));
    for (auto& w : widths) w = w_dist(rng);
    const auto b = circuit::make_nmos_stack(test::models().proc, widths,
                                            c_dist(rng));
    const auto inputs = step_inputs(b);

    QwmOptions scalar_opt;
    scalar_opt.batch_device_eval = false;
    QwmOptions batched_opt;
    batched_opt.batch_device_eval = true;
    const auto scalar = evaluate_stage(b, inputs, models(), scalar_opt);
    const auto batched = evaluate_stage(b, inputs, models(), batched_opt);
    ASSERT_TRUE(scalar.ok && batched.ok) << "trial " << trial << " k=" << k;
    EXPECT_EQ(*scalar.delay, *batched.delay) << "trial " << trial;
    EXPECT_EQ(*scalar.output_slew, *batched.output_slew) << "trial " << trial;
    // Same solve trajectory, not just the same answer.
    EXPECT_EQ(scalar.qwm.stats.newton_iterations,
              batched.qwm.stats.newton_iterations);
    EXPECT_EQ(scalar.qwm.stats.regions, batched.qwm.stats.regions);
  }
}

TEST(WarmStart, ReplaySameInputsIsBitIdenticalAtZeroNewtonWork) {
  for (const int k : {2, 4, 6}) {
    const auto b = make_stack(k, 1.2e-6, 20e-15);
    const auto inputs = step_inputs(b);
    QwmOptions cold_opt;
    cold_opt.record_trace = true;
    const auto cold = evaluate_stage(b, inputs, models(), cold_opt);
    ASSERT_TRUE(cold.ok) << "k=" << k;
    ASSERT_GT(cold.qwm.stats.newton_iterations, 0u);
    ASSERT_FALSE(cold.qwm.trace.regions.empty());

    QwmOptions warm_opt;
    warm_opt.warm = &cold.qwm.trace;
    const auto warm = evaluate_stage(b, inputs, models(), warm_opt);
    ASSERT_TRUE(warm.ok) << "k=" << k;
    EXPECT_EQ(*warm.delay, *cold.delay) << "k=" << k;
    EXPECT_EQ(*warm.output_slew, *cold.output_slew) << "k=" << k;
    // A same-input replay accepts every recorded region solution as-is.
    EXPECT_EQ(warm.qwm.stats.newton_iterations, 0u) << "k=" << k;
    EXPECT_GT(warm.qwm.stats.warm_starts, 0u);
    EXPECT_EQ(warm.qwm.stats.warm_retries, 0u);
  }
}

TEST(WarmStart, NearbyOperatingPointTraceCutsNewtonWork) {
  // The memo cache's near-miss case: same structure, slightly different
  // load. Seeding from the neighbour's trace must converge to the cold
  // answer (same residual, same tolerance) with strictly less work.
  const auto base = make_stack(4, 1.2e-6, 20e-15);
  const auto shifted = make_stack(4, 1.2e-6, 22e-15);
  const auto inputs = step_inputs(base);

  QwmOptions trace_opt;
  trace_opt.record_trace = true;
  const auto neighbour = evaluate_stage(base, inputs, models(), trace_opt);
  ASSERT_TRUE(neighbour.ok);

  const auto cold = evaluate_stage(shifted, inputs, models());
  QwmOptions warm_opt;
  warm_opt.warm = &neighbour.qwm.trace;
  const auto warm = evaluate_stage(shifted, inputs, models(), warm_opt);
  ASSERT_TRUE(cold.ok && warm.ok);
  EXPECT_LT(warm.qwm.stats.newton_iterations,
            cold.qwm.stats.newton_iterations);
  EXPECT_LT(warm.qwm.stats.device_evals, cold.qwm.stats.device_evals);
  // Both runs are pinned by the same residual and tolerance; the answers
  // agree far inside the model's accuracy.
  EXPECT_NEAR(*warm.delay, *cold.delay, 1e-6 * *cold.delay);
}

}  // namespace
}  // namespace qwm::core
