// Property-style sweeps of the QWM engine against the SPICE baseline and
// against its own invariants, across randomized circuit configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"

namespace qwm::core {
namespace {

using circuit::BuiltStage;

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

std::vector<numeric::PwlWaveform> step_inputs(const BuiltStage& b,
                                              double t_step = 5e-12) {
  const double vdd = test::models().proc.vdd;
  std::vector<numeric::PwlWaveform> in;
  for (std::size_t i = 0; i < b.stage.input_count(); ++i) {
    if (static_cast<int>(i) == b.switching_input)
      in.push_back(b.output_falls
                       ? numeric::PwlWaveform::step(t_step, 0.0, vdd)
                       : numeric::PwlWaveform::step(t_step, vdd, 0.0));
    else
      in.push_back(numeric::PwlWaveform::constant(b.output_falls ? vdd : 0.0));
  }
  return in;
}

double spice_delay(const BuiltStage& b,
                   const std::vector<numeric::PwlWaveform>& inputs,
                   double t_stop = 3e-9) {
  spice::StageSim sim = spice::circuit_from_stage(b.stage, models(), inputs);
  const double pre = b.output_falls ? 3.3 : 0.0;
  for (std::size_t n = 0; n < b.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (!b.stage.is_rail(id)) sim.circuit.set_ic(sim.node_of[n], pre);
  }
  spice::TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = 1e-12;
  const auto res = spice::simulate_transient(sim.circuit, opt);
  const auto t_in =
      inputs[b.switching_input].crossing(1.65, 0.0, b.output_falls);
  const auto t_out = res.waveforms[sim.node_of[b.output]].crossing(
      1.65, *t_in, !b.output_falls);
  return t_out ? *t_out - *t_in : -1.0;
}

/// (seed, stack length): randomized widths + load, compared to baseline.
class RandomStack
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomStack, DelayWithinFourPercentOfBaseline) {
  const auto [seed, k] = GetParam();
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> width(1.0e-6, 4.0e-6);
  std::uniform_real_distribution<double> load(5e-15, 60e-15);
  std::vector<double> widths(k);
  for (double& w : widths) w = width(rng);
  const auto b =
      circuit::make_nmos_stack(test::models().proc, widths, load(rng));
  const auto inputs = step_inputs(b);

  const auto st = evaluate_stage(b, inputs, models());
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_TRUE(st.delay);
  const double ref = spice_delay(b, inputs);
  ASSERT_GT(ref, 0.0);
  EXPECT_NEAR(*st.delay, ref, 0.04 * ref)
      << "seed=" << seed << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomStack,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(3, 5, 7, 9)));

/// Invariants that must hold for any successful evaluation.
class QwmInvariants : public ::testing::TestWithParam<int> {};

TEST_P(QwmInvariants, WaveformsPhysical) {
  const int k = GetParam();
  std::mt19937 rng(100 + k);
  std::uniform_real_distribution<double> width(1.0e-6, 3.0e-6);
  std::vector<double> widths(k);
  for (double& w : widths) w = width(rng);
  const auto b = circuit::make_nmos_stack(test::models().proc, widths, 20e-15);
  const auto st = evaluate_stage(b, step_inputs(b), models());
  ASSERT_TRUE(st.ok) << st.error;

  const double vdd = test::models().proc.vdd;
  // 1. Critical points strictly increase.
  for (std::size_t i = 1; i < st.qwm.critical_times.size(); ++i)
    EXPECT_GT(st.qwm.critical_times[i], st.qwm.critical_times[i - 1]);
  // 2. Node voltages stay within the rails (with small numerical slack).
  for (const auto& w : st.qwm.node_waveforms) {
    const auto pwl = w.to_pwl(16);
    for (std::size_t i = 0; i < pwl.size(); ++i) {
      EXPECT_GT(pwl.value(i), -0.25);
      EXPECT_LT(pwl.value(i), vdd + 0.25);
    }
  }
  // 3. The output ends below 15% of VDD (discharge completes).
  EXPECT_LT(st.qwm.output_waveform().end_value(), 0.15 * vdd);
  // 4. The output starts precharged.
  EXPECT_NEAR(st.qwm.output_waveform().eval(0.0), vdd, 1e-9);
  // 5. Delay and slew are positive and ordered sanely.
  ASSERT_TRUE(st.delay && st.output_slew);
  EXPECT_GT(*st.delay, 0.0);
  EXPECT_GT(*st.output_slew, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, QwmInvariants,
                         ::testing::Values(1, 2, 4, 6, 8, 10, 12));

/// Monotonicity: more load -> more delay; wider devices -> less delay.
TEST(QwmMonotonicity, LoadIncreasesDelay) {
  double prev = 0.0;
  for (double load : {5e-15, 20e-15, 60e-15, 150e-15}) {
    const auto b = circuit::make_nand(test::models().proc, 2, load);
    const auto st = evaluate_stage(b, step_inputs(b), models());
    ASSERT_TRUE(st.ok && st.delay);
    EXPECT_GT(*st.delay, prev);
    prev = *st.delay;
  }
}

TEST(QwmMonotonicity, WidthDecreasesDelay) {
  double prev = 1e9;
  for (double w : {0.8e-6, 1.5e-6, 3.0e-6, 6.0e-6}) {
    const auto b = circuit::make_nmos_stack(test::models().proc,
                                            std::vector<double>(4, w), 30e-15);
    const auto st = evaluate_stage(b, step_inputs(b), models());
    ASSERT_TRUE(st.ok && st.delay);
    EXPECT_LT(*st.delay, prev);
    prev = *st.delay;
  }
}

TEST(QwmMonotonicity, LaterInputArrivalShiftsDelayNotShape) {
  // Shifting the step input must shift the output crossing by the same
  // amount (time invariance of the stage).
  const auto b = circuit::make_nand(test::models().proc, 3, 20e-15);
  const auto st1 = evaluate_stage(b, step_inputs(b, 5e-12), models());
  const auto st2 = evaluate_stage(b, step_inputs(b, 105e-12), models());
  ASSERT_TRUE(st1.ok && st2.ok && st1.delay && st2.delay);
  EXPECT_NEAR(*st1.delay, *st2.delay, 0.02 * *st1.delay);
}

/// Charge events across random PMOS stacks.
class RandomPmosStack : public ::testing::TestWithParam<int> {};

TEST_P(RandomPmosStack, ChargeDelayWithinFivePercent) {
  const int k = GetParam();
  std::mt19937 rng(40 + k);
  std::uniform_real_distribution<double> width(2.0e-6, 6.0e-6);
  std::vector<double> widths(k);
  for (double& w : widths) w = width(rng);
  const auto b = circuit::make_pmos_stack(test::models().proc, widths, 20e-15);
  const auto inputs = step_inputs(b);
  const auto st = evaluate_stage(b, inputs, models());
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_TRUE(st.delay);
  const double ref = spice_delay(b, inputs);
  ASSERT_GT(ref, 0.0);
  EXPECT_NEAR(*st.delay, ref, 0.05 * ref) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Lengths, RandomPmosStack,
                         ::testing::Values(2, 3, 5, 7));

/// Supply-voltage sweep: QWM tracks the baseline at non-nominal VDD too.
class VddSweep : public ::testing::TestWithParam<double> {};

TEST_P(VddSweep, TracksBaseline) {
  const double vdd = GetParam();
  device::Process proc = device::Process::cmosp35();
  proc.vdd = vdd;
  const device::TabularDeviceModel nmos(device::MosType::nmos, proc);
  const device::TabularDeviceModel pmos(device::MosType::pmos, proc);
  const device::ModelSet ms{&nmos, &pmos, &proc};

  const auto b = circuit::make_nmos_stack(proc, std::vector<double>(4, 1.2e-6),
                                          20e-15);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, vdd)};
  const auto st = evaluate_stage(b, inputs, ms);
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_TRUE(st.delay);

  spice::StageSim sim = spice::circuit_from_stage(b.stage, ms, inputs);
  for (std::size_t n = 0; n < b.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (!b.stage.is_rail(id)) sim.circuit.set_ic(sim.node_of[n], vdd);
  }
  spice::TransientOptions opt;
  opt.t_stop = 5e-9;
  opt.dt = 1e-12;
  const auto res = spice::simulate_transient(sim.circuit, opt);
  const auto t_in = inputs[0].crossing(0.5 * vdd, 0.0, true);
  const auto t_out = res.waveforms[sim.node_of[b.output]].crossing(
      0.5 * vdd, *t_in, false);
  ASSERT_TRUE(t_out);
  const double ref = *t_out - *t_in;
  EXPECT_NEAR(*st.delay, ref, 0.06 * ref) << "vdd=" << vdd;
}

INSTANTIATE_TEST_SUITE_P(Supplies, VddSweep,
                         ::testing::Values(2.5, 3.0, 3.3));

}  // namespace
}  // namespace qwm::core
