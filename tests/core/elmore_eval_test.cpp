#include "qwm/core/elmore_eval.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"

namespace qwm::core {
namespace {

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

TEST(EffectiveResistance, ScalesInverselyWithWidth) {
  const double r1 = effective_resistance(*models().nmos, 1e-6, 0.35e-6, 3.3);
  const double r4 = effective_resistance(*models().nmos, 4e-6, 0.35e-6, 3.3);
  EXPECT_GT(r1, 0.0);
  EXPECT_NEAR(r1 / r4, 4.0, 0.05);
  // NMOS of a given width beats PMOS of the same width (mobility).
  const double rp = effective_resistance(*models().pmos, 1e-6, 0.35e-6, 3.3);
  EXPECT_GT(rp, 2.0 * r1);
  // Sanity magnitude: a minimum NMOS is a few kOhm in this process.
  EXPECT_GT(r1, 500.0);
  EXPECT_LT(r1, 20e3);
}

TEST(ElmoreEval, InverterDelayRightOrderOfMagnitude) {
  const auto b = circuit::make_inverter(test::models().proc, 20e-15);
  const auto elm =
      evaluate_stage_elmore(b.stage, b.output, b.output_falls, models());
  ASSERT_TRUE(elm.ok) << elm.error;
  EXPECT_GT(elm.delay, 5e-12);
  EXPECT_LT(elm.delay, 200e-12);
  EXPECT_NEAR(elm.delay, std::log(2.0) * elm.elmore, 1e-18);
  ASSERT_EQ(elm.resistances.size(), 1u);
}

TEST(ElmoreEval, StackResistancesAccumulate) {
  const auto b = circuit::make_nmos_stack(test::models().proc,
                                          std::vector<double>(4, 1e-6),
                                          20e-15);
  const auto elm =
      evaluate_stage_elmore(b.stage, b.output, b.output_falls, models());
  ASSERT_TRUE(elm.ok);
  ASSERT_EQ(elm.resistances.size(), 4u);
  // Uniform widths: roughly equal effective resistances per device.
  for (double r : elm.resistances)
    EXPECT_NEAR(r, elm.resistances[0], 0.05 * elm.resistances[0]);
}

TEST(ElmoreEval, DelayGrowsSuperlinearlyWithStackLength) {
  // Elmore of a chain grows ~quadratically in K (R and C both grow).
  const auto d = [&](int k) {
    const auto b = circuit::make_nmos_stack(
        test::models().proc, std::vector<double>(k, 1e-6), 20e-15);
    return evaluate_stage_elmore(b.stage, b.output, b.output_falls, models())
        .delay;
  };
  const double d2 = d(2), d4 = d(4), d8 = d(8);
  EXPECT_GT(d4, 1.7 * d2);
  EXPECT_GT(d8, 1.7 * d4);
}

TEST(ElmoreEval, CruderThanQwmAgainstItself) {
  // QWM and Elmore on the same stage must at least agree on ordering
  // across loads (both monotone), while disagreeing in value.
  const auto& proc = test::models().proc;
  const auto b = circuit::make_nand(proc, 3, 30e-15);
  std::vector<numeric::PwlWaveform> inputs;
  for (std::size_t i = 0; i < b.stage.input_count(); ++i)
    inputs.push_back(static_cast<int>(i) == b.switching_input
                         ? numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd)
                         : numeric::PwlWaveform::constant(proc.vdd));
  const auto qwm = evaluate_stage(b, inputs, models());
  const auto elm =
      evaluate_stage_elmore(b.stage, b.output, b.output_falls, models());
  ASSERT_TRUE(qwm.ok && qwm.delay && elm.ok);
  // Same ballpark (factor of 2) but not equal — the documented crudeness.
  EXPECT_GT(elm.delay, 0.5 * *qwm.delay);
  EXPECT_LT(elm.delay, 2.0 * *qwm.delay);
}

TEST(ElmoreEval, NoPathFails) {
  circuit::LogicStage s(3.3);
  const auto out = s.add_node("out");
  const auto e = s.add_edge(circuit::DeviceKind::pmos, s.source(), out, 2e-6,
                            0.35e-6);
  s.set_gate_static(e, 0.0);
  const auto elm = evaluate_stage_elmore(s, out, /*falls=*/true, models());
  EXPECT_FALSE(elm.ok);
}

}  // namespace
}  // namespace qwm::core
