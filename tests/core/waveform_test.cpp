#include "qwm/core/waveform.h"

#include <gtest/gtest.h>

namespace qwm::core {
namespace {

PiecewiseQuadWaveform falling_two_piece() {
  // v(t) = 3 - 2e10*t on [0, 50ps]; then constant-slope continuation
  // v(t) = 2 - 1e10*(t-50p) on [50ps, 150ps]; ends at 1.0.
  PiecewiseQuadWaveform w;
  w.add_piece(0.0, 3.0, -2e10, 0.0);
  w.add_piece(50e-12, 2.0, -1e10, 0.0);
  w.finish(150e-12, 1.0);
  return w;
}

TEST(PiecewiseQuad, EvalInsideAndOutside) {
  const auto w = falling_two_piece();
  EXPECT_DOUBLE_EQ(w.eval(-1.0), 3.0);          // before: first value
  EXPECT_DOUBLE_EQ(w.eval(25e-12), 2.5);        // mid piece 1
  EXPECT_DOUBLE_EQ(w.eval(100e-12), 1.5);       // mid piece 2
  EXPECT_DOUBLE_EQ(w.eval(1.0), 1.0);           // after: end value
  EXPECT_DOUBLE_EQ(w.end_time(), 150e-12);
}

TEST(PiecewiseQuad, SlopeTracksPieces) {
  const auto w = falling_two_piece();
  EXPECT_DOUBLE_EQ(w.slope(25e-12), -2e10);
  EXPECT_DOUBLE_EQ(w.slope(100e-12), -1e10);
  EXPECT_DOUBLE_EQ(w.slope(1.0), 0.0);
}

TEST(PiecewiseQuad, QuadraticPieceEval) {
  PiecewiseQuadWaveform w;
  // v = 1 + 2t + 3t^2 (t in seconds for easy math).
  w.add_piece(0.0, 1.0, 2.0, 3.0);
  w.finish(2.0, 1.0 + 4.0 + 12.0);
  EXPECT_DOUBLE_EQ(w.eval(1.0), 6.0);
  EXPECT_DOUBLE_EQ(w.slope(1.0), 2.0 + 6.0);
}

TEST(PiecewiseQuad, AnalyticCrossing) {
  const auto w = falling_two_piece();
  const auto t25 = w.crossing(2.5);
  ASSERT_TRUE(t25);
  EXPECT_NEAR(*t25, 25e-12, 1e-18);
  const auto t15 = w.crossing(1.5);
  ASSERT_TRUE(t15);
  EXPECT_NEAR(*t15, 100e-12, 1e-18);
  EXPECT_FALSE(w.crossing(0.5));  // below the end value
  // Respecting t_from.
  const auto later = w.crossing(1.5, 120e-12);
  EXPECT_FALSE(later);
}

TEST(PiecewiseQuad, CrossingInQuadraticPiece) {
  PiecewiseQuadWaveform w;
  // v = 4 - 1e21 t^2: crosses 3 at t = sqrt(1e-21) ~ 31.6 ps.
  w.add_piece(0.0, 4.0, 0.0, -1e21);
  w.finish(100e-12, 4.0 - 1e21 * 1e-20);
  const auto t = w.crossing(3.0);
  ASSERT_TRUE(t);
  EXPECT_NEAR(*t, 3.1623e-11, 1e-14);
}

TEST(PiecewiseQuad, ToPwlSamplesFaithfully) {
  const auto w = falling_two_piece();
  const auto pwl = w.to_pwl(8);
  for (double t : {10e-12, 60e-12, 120e-12})
    EXPECT_NEAR(pwl.eval(t), w.eval(t), 1e-9);
  EXPECT_DOUBLE_EQ(pwl.last_time(), 150e-12);
}

TEST(PiecewiseQuad, CriticalPointPolyline) {
  const auto w = falling_two_piece();
  const auto poly = w.critical_point_polyline();
  // Breakpoints exactly at piece starts + end.
  ASSERT_EQ(poly.size(), 3u);
  EXPECT_DOUBLE_EQ(poly.value(0), 3.0);
  EXPECT_DOUBLE_EQ(poly.value(1), 2.0);
  EXPECT_DOUBLE_EQ(poly.value(2), 1.0);
}

TEST(PiecewiseQuad, EmptyWaveform) {
  PiecewiseQuadWaveform w;
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.crossing(1.0));
  EXPECT_TRUE(w.to_pwl().empty());
}

}  // namespace
}  // namespace qwm::core
