#include "qwm/core/stage_eval.h"

#include <gtest/gtest.h>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/core/metrics.h"
#include "qwm/device/tabular_model.h"

namespace qwm::core {
namespace {

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

TEST(MultiOutput, ManchesterCarryTapsShareOnePath) {
  const auto& proc = test::models().proc;
  const auto b = circuit::make_manchester_chain(proc, 5, 20e-15);
  std::vector<numeric::PwlWaveform> inputs(
      b.stage.input_count(), numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd));
  const auto outs = evaluate_all_outputs(b.stage, /*outputs_fall=*/true,
                                         inputs, b.switching_input, models());
  ASSERT_EQ(outs.size(), 5u);  // C0..C4 all declared outputs
  int shared = 0;
  double prev = -1.0;
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok) << "node " << o.node;
    ASSERT_TRUE(o.delay);
    // Carry arrivals increase along the chain (declaration order C0..C4).
    EXPECT_GT(*o.delay, prev);
    prev = *o.delay;
    if (o.shared_path) ++shared;
  }
  // All but the farthest carry tap ride the longest path's evaluation.
  EXPECT_EQ(shared, 4);
}

TEST(MultiOutput, SingleOutputStage) {
  const auto& proc = test::models().proc;
  const auto b = circuit::make_nand(proc, 2, 20e-15);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd),
      numeric::PwlWaveform::constant(proc.vdd)};
  const auto outs =
      evaluate_all_outputs(b.stage, true, inputs, 0, models());
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].ok);
  EXPECT_FALSE(outs[0].shared_path);
  // Matches the single-output API.
  const auto st = evaluate_stage(b, inputs, models());
  ASSERT_TRUE(st.ok && st.delay && outs[0].delay);
  EXPECT_NEAR(*outs[0].delay, *st.delay, 1e-15);
}

TEST(Metrics, ThresholdTableOnFallingOutput) {
  const auto& proc = test::models().proc;
  const auto b = circuit::make_inverter(proc, 20e-15);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd)};
  const auto st = evaluate_stage(b, inputs, models());
  ASSERT_TRUE(st.ok);
  const auto table =
      threshold_crossings(st.qwm.output_waveform(), proc.vdd, true);
  ASSERT_EQ(table.times.size(), 5u);
  // Falling: 90% crossing precedes 50% precedes 10%.
  ASSERT_TRUE(table.times[0] && table.times[2] && table.times[4]);
  EXPECT_LT(*table.times[0], *table.times[2]);
  EXPECT_LT(*table.times[2], *table.times[4]);
}

TEST(Metrics, SelfComparisonIsExact) {
  const auto& proc = test::models().proc;
  const auto b = circuit::make_inverter(proc, 20e-15);
  std::vector<numeric::PwlWaveform> inputs{
      numeric::PwlWaveform::step(5e-12, 0.0, proc.vdd)};
  const auto st = evaluate_stage(b, inputs, models());
  ASSERT_TRUE(st.ok);
  const auto& w = st.qwm.output_waveform();
  const auto cmp = compare_waveforms(w, w.to_pwl(64), proc.vdd, true, 0.0,
                                     w.end_time());
  EXPECT_LT(cmp.max_abs_error, 5e-3);  // dense sampling of itself
  EXPECT_LT(cmp.worst_skew, 1e-13);
  EXPECT_FALSE(format_comparison(cmp).empty());
}

TEST(Metrics, DetectsShiftedWaveform) {
  // Compare a waveform against a 10 ps-shifted copy: skews ~10 ps.
  PiecewiseQuadWaveform w;
  w.add_piece(0.0, 3.3, -3.3 / 100e-12, 0.0);
  w.finish(100e-12, 0.0);
  PiecewiseQuadWaveform shifted;
  shifted.add_piece(10e-12, 3.3, -3.3 / 100e-12, 0.0);
  shifted.finish(110e-12, 0.0);
  const auto cmp = compare_waveforms(shifted, w.to_pwl(64), 3.3, true, 0.0,
                                     110e-12);
  EXPECT_NEAR(cmp.worst_skew, 10e-12, 1e-13);
  EXPECT_GT(cmp.max_abs_error, 0.2);
}

}  // namespace
}  // namespace qwm::core
