// Synthetic mega-circuit generators: spec-string parsing, exact stage
// counts for every topology, seed determinism (same seed -> identical
// netlist_hash and identical elaborated structural-hash multiset), and
// the generated-netlist -> BLIF -> re-read round trip.
#include "qwm/frontend/generate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "../common/test_models.h"
#include "qwm/circuit/stage_hash.h"
#include "qwm/frontend/blif.h"
#include "qwm/frontend/elaborate.h"
#include "qwm/frontend/frontend.h"

namespace qwm::frontend {
namespace {

TEST(GenSpecParse, AcceptsDocumentedForms) {
  const auto grid = parse_gen_spec("gen:grid:100");
  ASSERT_TRUE(grid.has_value());
  EXPECT_EQ(grid->topology, GenTopology::grid);
  EXPECT_EQ(grid->stages, 100u);
  EXPECT_EQ(grid->seed, 1u);   // defaults
  EXPECT_EQ(grid->width, 64u);

  const auto sci = parse_gen_spec("gen:tree:1e3:seed=42");
  ASSERT_TRUE(sci.has_value());
  EXPECT_EQ(sci->topology, GenTopology::tree);
  EXPECT_EQ(sci->stages, 1000u);
  EXPECT_EQ(sci->seed, 42u);

  const auto dag = parse_gen_spec("gen:dag:50:seed=7:width=8");
  ASSERT_TRUE(dag.has_value());
  EXPECT_EQ(dag->topology, GenTopology::dag);
  EXPECT_EQ(dag->width, 8u);
}

TEST(GenSpecParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "grid:100",            // missing gen: prefix
      "gen:torus:100",       // unknown topology
      "gen:grid",            // no stage count
      "gen:grid:0",          // below 1
      "gen:grid:2.5",        // fractional
      "gen:grid:1e9",        // above the 1e7 sanity cap
      "gen:grid:10:bogus=1", // unknown option
      "gen:grid:10:width=0", // out-of-range option
      "gen:grid:ten",        // non-numeric count
  };
  for (const char* spec : bad) {
    SCOPED_TRACE(spec);
    std::string error;
    EXPECT_FALSE(parse_gen_spec(spec, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(GenSpecParse, FrontendSourceDetection) {
  EXPECT_TRUE(is_gen_spec("gen:grid:10"));
  EXPECT_FALSE(is_gen_spec("design.blif"));
  EXPECT_TRUE(is_frontend_source("gen:dag:100"));
  EXPECT_TRUE(is_frontend_source("design.blif"));
  EXPECT_TRUE(is_frontend_source("DESIGN.BLIF"));
  EXPECT_FALSE(is_frontend_source("deck.sp"));
}

TEST(Generate, ExactStageCountsAndWellFormedGates) {
  for (const char* topo : {"grid", "tree", "dag"}) {
    for (const std::size_t n : {1u, 2u, 7u, 100u}) {
      SCOPED_TRACE(std::string(topo) + ":" + std::to_string(n));
      const auto spec =
          parse_gen_spec("gen:" + std::string(topo) + ":" + std::to_string(n));
      ASSERT_TRUE(spec.has_value());
      const GateNetlist gn = generate_netlist(*spec);
      EXPECT_EQ(gn.gates.size(), n);
      EXPECT_FALSE(gn.inputs.empty());
      EXPECT_FALSE(gn.outputs.empty());
      std::unordered_set<std::string> declared(gn.inputs.begin(),
                                               gn.inputs.end());
      for (const GateInst& g : gn.gates) {
        EXPECT_EQ(static_cast<int>(g.inputs.size()), gate_fanin(g.type));
        EXPECT_FALSE(g.output.empty());
        // Every input is a PI or an earlier gate's output, and the fanin
        // nets of one gate are distinct.
        std::unordered_set<std::string> fanin;
        for (const std::string& in : g.inputs) {
          EXPECT_TRUE(declared.count(in)) << in;
          EXPECT_TRUE(fanin.insert(in).second) << in;
        }
        declared.insert(g.output);
      }
    }
  }
}

std::vector<std::uint64_t> elaborated_stage_hashes(const GateNetlist& gn) {
  const device::ModelSet ms = test::models().tabular_set();
  const ElaboratedDesign elab = elaborate(gn, ms);
  std::vector<std::uint64_t> hashes;
  hashes.reserve(elab.design.stages.size());
  for (const auto& info : elab.design.stages)
    hashes.push_back(circuit::structural_hash(info.stage));
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

TEST(Generate, SameSeedIsBitReproducible) {
  for (const char* spec_str :
       {"gen:grid:300:seed=11", "gen:tree:200:seed=11",
        "gen:dag:250:seed=11:width=16"}) {
    SCOPED_TRACE(spec_str);
    const auto spec = parse_gen_spec(spec_str);
    ASSERT_TRUE(spec.has_value());
    const GateNetlist a = generate_netlist(*spec);
    const GateNetlist b = generate_netlist(*spec);
    EXPECT_EQ(netlist_hash(a), netlist_hash(b));
    // Same seed -> the same multiset of elaborated stage hashes (the
    // memo-cache identity the STA engine keys on).
    EXPECT_EQ(elaborated_stage_hashes(a), elaborated_stage_hashes(b));
  }
}

TEST(Generate, DifferentSeedsDiverge) {
  const auto s1 = parse_gen_spec("gen:grid:300:seed=1");
  const auto s2 = parse_gen_spec("gen:grid:300:seed=2");
  ASSERT_TRUE(s1.has_value() && s2.has_value());
  EXPECT_NE(netlist_hash(generate_netlist(*s1)),
            netlist_hash(generate_netlist(*s2)));
}

TEST(Generate, RoundTripsThroughBlif) {
  for (const char* spec_str :
       {"gen:grid:60:seed=3", "gen:tree:40:seed=3", "gen:dag:50:seed=3"}) {
    SCOPED_TRACE(spec_str);
    const auto spec = parse_gen_spec(spec_str);
    ASSERT_TRUE(spec.has_value());
    const GateNetlist gn = generate_netlist(*spec);
    const BlifResult back = parse_blif(write_blif(gn), "<generated>");
    ASSERT_TRUE(back.ok()) << back.errors.front();
    EXPECT_TRUE(back.warnings.empty());
    EXPECT_EQ(netlist_hash(back.netlist), netlist_hash(gn));
  }
}

TEST(Generate, LoadGateNetlistHandlesSpecsAndBadSpecs) {
  const BlifResult good = load_gate_netlist("gen:tree:30:seed=2");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.netlist.gates.size(), 30u);

  const BlifResult bad = load_gate_netlist("gen:torus:30");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.errors.front().find("unknown topology"), std::string::npos)
      << bad.errors.front();
}

}  // namespace
}  // namespace qwm::frontend
