// BLIF-style reader/writer: grammar acceptance (continuations, comments,
// case-insensitivity, drive strengths), the write -> re-read round-trip
// invariant on netlist_hash, "file:line:" diagnostics on every malformed
// deck the reader documents rejecting, and elaboration onto the
// transistor-level stage graph.
#include "qwm/frontend/blif.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/frontend/elaborate.h"

namespace qwm::frontend {
namespace {

bool has_diag(const std::vector<std::string>& diags, const std::string& sub) {
  for (const auto& d : diags)
    if (d.find(sub) != std::string::npos) return true;
  return false;
}

constexpr const char* kGoodDeck = R"(# two-stage sliver of a design
.model sliver
.inputs a b
.outputs z
.gate inv a=a y=ab
.gate nand2 x=2 a=ab \
      b=b y=z
.end
this trailing junk is ignored after .end
)";

TEST(Blif, ParsesStructuralSubset) {
  const BlifResult r = parse_blif(kGoodDeck);
  ASSERT_TRUE(r.ok()) << r.errors.front();
  EXPECT_TRUE(r.warnings.empty());
  const GateNetlist& gn = r.netlist;
  EXPECT_EQ(gn.model, "sliver");
  ASSERT_EQ(gn.inputs.size(), 2u);
  ASSERT_EQ(gn.outputs.size(), 1u);
  ASSERT_EQ(gn.gates.size(), 2u);
  EXPECT_EQ(gn.gates[0].type, GateType::inv);
  EXPECT_EQ(gn.gates[0].inputs, std::vector<std::string>{"a"});
  EXPECT_EQ(gn.gates[0].output, "ab");
  EXPECT_EQ(gn.gates[0].strength, 1.0);
  // The continuation card is numbered by its first physical line.
  EXPECT_EQ(gn.gates[1].line, 6);
  EXPECT_EQ(gn.gates[1].type, GateType::nand2);
  EXPECT_EQ(gn.gates[1].strength, 2.0);
  EXPECT_EQ(gn.gates[1].inputs, (std::vector<std::string>{"ab", "b"}));
  EXPECT_EQ(gn.gates[1].output, "z");
}

TEST(Blif, NetNamesAreCaseInsensitive) {
  // The repo's net interner lowercases; the reader must agree so BLIF
  // from case-happy tools lands on one canonical graph.
  const BlifResult lower = parse_blif(kGoodDeck);
  std::string upper = kGoodDeck;
  for (char& c : upper)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  const BlifResult r = parse_blif(upper);
  ASSERT_TRUE(r.ok()) << r.errors.front();
  EXPECT_EQ(netlist_hash(r.netlist), netlist_hash(lower.netlist));
}

TEST(Blif, RoundTripPreservesNetlistHash) {
  const BlifResult first = parse_blif(kGoodDeck);
  ASSERT_TRUE(first.ok());
  const std::string text = write_blif(first.netlist);
  const BlifResult again = parse_blif(text, "<round-trip>");
  ASSERT_TRUE(again.ok()) << again.errors.front();
  EXPECT_TRUE(again.warnings.empty());
  EXPECT_EQ(netlist_hash(again.netlist), netlist_hash(first.netlist));
  // Idempotent canonical form: writing the re-read netlist is a no-op.
  EXPECT_EQ(write_blif(again.netlist), text);
}

TEST(Blif, FileRoundTrip) {
  const BlifResult first = parse_blif(kGoodDeck);
  ASSERT_TRUE(first.ok());
  const std::string path = ::testing::TempDir() + "qwm_blif_roundtrip.blif";
  std::string error;
  ASSERT_TRUE(write_blif_file(first.netlist, path, &error)) << error;
  const BlifResult again = parse_blif_file(path);
  ASSERT_TRUE(again.ok()) << again.errors.front();
  EXPECT_EQ(netlist_hash(again.netlist), netlist_hash(first.netlist));
  std::remove(path.c_str());
}

TEST(Blif, UnreadableFileIsLineZeroDiagnostic) {
  const BlifResult r = parse_blif_file("/nonexistent/x.blif");
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0], "/nonexistent/x.blif:0: cannot open file");
}

TEST(Blif, UnknownGateTypeDiagnostic) {
  const BlifResult r = parse_blif(
      ".inputs a b\n"
      ".outputs z\n"
      ".gate xor2 a=a b=b y=z\n",
      "deck.blif");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r.errors,
                       "deck.blif:3: unknown gate type: xor2 "
                       "(library: inv, nand2-4, nor2-4)"))
      << r.errors.front();
}

TEST(Blif, DanglingNetDiagnostic) {
  const BlifResult r = parse_blif(
      ".inputs a\n"
      ".gate nand2 a=a b=ghost y=z\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(
      r.errors,
      "<blif>:2: dangling net 'ghost' (not a primary input or gate output)"))
      << r.errors.front();
}

TEST(Blif, DuplicateModelDiagnostic) {
  const BlifResult r = parse_blif(
      ".model one\n"
      ".inputs a\n"
      ".model two\n"
      ".gate inv a=a y=z\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r.errors,
                       "<blif>:3: duplicate .model card (first at line 1; "
                       "one model per file)"))
      << r.errors.front();
  EXPECT_EQ(r.netlist.model, "one");  // the first card wins
}

TEST(Blif, DuplicateDriverDiagnostic) {
  const BlifResult r = parse_blif(
      ".inputs a b\n"
      ".gate inv a=a y=z\n"
      ".gate inv a=b y=z\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(
      r.errors, "<blif>:3: duplicate driver for net 'z' (first driven at "
                "line 2)"))
      << r.errors.front();
}

TEST(Blif, UndrivenOutputAndInputCollisionDiagnostics) {
  const BlifResult r = parse_blif(
      ".inputs a\n"
      ".outputs nowhere\n"
      ".gate inv a=a y=a\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_diag(r.errors,
                       "<blif>:2: output net 'nowhere' is never driven"));
  EXPECT_TRUE(has_diag(r.errors,
                       "<blif>:3: net 'a' is driven but declared .inputs"));
}

TEST(Blif, MalformedGateCards) {
  const BlifResult r = parse_blif(
      ".inputs a b\n"
      ".gate nand2 a=a y=u\n"          // missing pin b
      ".gate inv a=a q=b y=v\n"        // pin q does not exist on inv
      ".gate inv a=a a=b y=w\n"        // duplicate pin a
      ".gate inv x=-1 a=a y=x1\n"      // non-positive strength
      ".gate nand2 a=a b=b\n"          // no output pin
      ".latch a b\n"                   // sequential card
      "garbage line\n");
  EXPECT_TRUE(has_diag(r.errors, "<blif>:2: nand2 is missing input pin b"));
  EXPECT_TRUE(has_diag(r.errors, "<blif>:3: unknown pin 'q' on inv"));
  EXPECT_TRUE(has_diag(r.errors, "<blif>:4: duplicate pin 'a'"));
  EXPECT_TRUE(has_diag(r.errors, "<blif>:5: bad drive strength: x=-1"));
  EXPECT_TRUE(has_diag(r.errors, "<blif>:6: nand2 is missing its output pin y"));
  EXPECT_TRUE(has_diag(r.errors, "<blif>:7: unsupported card .latch"));
  EXPECT_TRUE(has_diag(r.errors, "<blif>:8: expected a dot-card"));
  // Malformed gates are dropped, not half-kept.
  EXPECT_TRUE(r.netlist.gates.empty());
}

TEST(Blif, DuplicateOutputDeclarationWarnsAndDedupes) {
  const BlifResult r = parse_blif(
      ".inputs a\n"
      ".outputs z z\n"
      ".gate inv a=a y=z\n");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(has_diag(r.warnings,
                       "<blif>:2: duplicate output declaration: z"));
  EXPECT_EQ(r.netlist.outputs, std::vector<std::string>{"z"});
}

TEST(Blif, ElaboratesOntoStageGraph) {
  const BlifResult r = parse_blif(kGoodDeck);
  ASSERT_TRUE(r.ok());
  const device::ModelSet ms = test::models().tabular_set();
  ElaboratedDesign elab = elaborate(r.netlist, ms);
  const circuit::PartitionedDesign& d = elab.design;

  // Stage i is gate i; pins map to input_nets in a..d order.
  ASSERT_EQ(d.stages.size(), 2u);
  EXPECT_EQ(d.vdd, test::models().proc.vdd);
  EXPECT_EQ(d.stages[0].stage.input_count(), 1u);
  EXPECT_EQ(d.stages[1].stage.input_count(), 2u);
  const auto net = [&](const char* name) {
    const auto id = elab.nl.find_net(name);
    EXPECT_TRUE(id.has_value()) << name;
    return *id;
  };
  EXPECT_EQ(d.stages[0].input_nets, std::vector<netlist::NetId>{net("a")});
  EXPECT_EQ(d.stages[1].input_nets,
            (std::vector<netlist::NetId>{net("ab"), net("b")}));
  EXPECT_EQ(d.driver_of.at(net("ab")), std::make_pair(0, 0));
  EXPECT_EQ(d.driver_of.at(net("z")), std::make_pair(1, 0));
  ASSERT_EQ(d.primary_inputs.size(), 2u);

  // The internal net ab drives only the NAND's pin cap; the declared
  // output z additionally carries the standard FO4 load.
  const double fo4 = circuit::fanout_load_cap(*ms.process);
  EXPECT_GT(fo4, 0.0);
  const auto output_load = [](const circuit::StageInfo& info) {
    return info.stage.node(info.stage.outputs()[0]).load_cap;
  };
  EXPECT_GT(output_load(d.stages[0]), 0.0);
  EXPECT_GE(output_load(d.stages[1]), fo4);
}

}  // namespace
}  // namespace qwm::frontend
