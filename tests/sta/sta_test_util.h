// Shared fixtures for the scheduler- and backend-equivalence suites
// (deps_sta_test.cpp, simd_sched_test.cpp): the Table I/II twin design
// that exercises the memo owner/follower machinery, generated designs,
// and the bitwise-equality walk over every arrival on every corner.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "../common/golden_cases.h"
#include "../common/test_models.h"
#include "qwm/frontend/elaborate.h"
#include "qwm/frontend/generate.h"
#include "qwm/sta/sta.h"

namespace qwm::sta::testutil {

inline const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

/// Every Table I gate and Table II stack, instantiated twice: the twin
/// shares its sibling's input nets and memo key, so within one level the
/// schedulers must make the same owner/follower split. All inputs are
/// primary, all outputs are observed.
inline circuit::PartitionedDesign golden_twin_design() {
  circuit::PartitionedDesign d;
  d.vdd = test::models().proc.vdd;
  netlist::NetId next = 0;
  std::vector<std::vector<netlist::NetId>> first_copy_inputs;
  for (int copy = 0; copy < 2; ++copy) {
    auto cases = test::golden_cases();
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      circuit::StageInfo info(d.vdd);
      info.stage = std::move(cases[ci].built.stage);
      const int si = static_cast<int>(d.stages.size());
      if (copy == 0) {
        for (std::size_t i = 0; i < info.stage.input_count(); ++i) {
          info.input_nets.push_back(next);
          d.primary_inputs.push_back(next);
          ++next;
        }
        first_copy_inputs.push_back(info.input_nets);
      } else {
        info.input_nets = first_copy_inputs[ci];  // twins share the PI nets
      }
      for (std::size_t o = 0; o < info.stage.outputs().size(); ++o) {
        info.output_nets.push_back(next);
        d.driver_of[next] = {si, static_cast<int>(o)};
        ++next;
      }
      d.stages.push_back(std::move(info));
    }
  }
  return d;
}

inline circuit::PartitionedDesign generated_design(const std::string& spec) {
  std::string err;
  const auto gs = frontend::parse_gen_spec(spec, &err);
  EXPECT_TRUE(gs.has_value()) << err;
  frontend::ElaboratedDesign elab =
      frontend::elaborate(frontend::generate_netlist(*gs), models());
  return std::move(elab.design);
}

/// Bitwise equality of every stage-output arrival on every active corner.
inline void expect_identical(const StaEngine& a, const StaEngine& b,
                             const char* what) {
  ASSERT_EQ(a.corners().size(), b.corners().size()) << what;
  for (const auto& info : a.design().stages) {
    for (netlist::NetId n : info.output_nets) {
      for (const device::Corner c : a.corners()) {
        const NetTiming& ta = a.timing(n, c);
        const NetTiming& tb = b.timing(n, c);
        for (const auto edge : {&NetTiming::rise, &NetTiming::fall}) {
          EXPECT_EQ((ta.*edge).time, (tb.*edge).time) << what << " net " << n;
          EXPECT_EQ((ta.*edge).slew, (tb.*edge).slew) << what << " net " << n;
          EXPECT_EQ((ta.*edge).degraded, (tb.*edge).degraded)
              << what << " net " << n;
        }
      }
    }
  }
  EXPECT_EQ(a.worst_arrival(), b.worst_arrival()) << what;
}

inline StaEngine engine_for(const circuit::PartitionedDesign& design,
                            Schedule schedule, int threads) {
  StaOptions opt;
  opt.schedule = schedule;
  opt.threads = threads;
  return StaEngine(design, models(), opt);
}

}  // namespace qwm::sta::testutil
