// Observability of the engine's work counters: aggregate QWM stats
// (Newton iterations, device evaluations, warm starts) and the per-lane
// scratch-workspace footprint are exposed through StaEngine, stay
// deterministic across runs, and prove the steady-state hot path stops
// allocating after warm-up.
#include "qwm/sta/sta.h"

#include <gtest/gtest.h>

#include "../common/test_models.h"
#include "qwm/netlist/parser.h"

namespace qwm::sta {
namespace {

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

circuit::PartitionedDesign design_from(const char* deck) {
  const netlist::ParseResult r = netlist::parse_spice(deck);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  return circuit::partition_netlist(r.netlist, models());
}

constexpr const char* kChain3 = R"(inverter chain
vdd vdd 0 3.3
vin a 0 pwl(0 0 10p 3.3)
mp1 b a vdd vdd pmos w=2u l=0.35u
mn1 b a 0 0 nmos w=1u l=0.35u
mp2 c b vdd vdd pmos w=2u l=0.35u
mn2 c b 0 0 nmos w=1u l=0.35u
mp3 d c vdd vdd pmos w=2u l=0.35u
mn3 d c 0 0 nmos w=1u l=0.35u
cl d 0 30f
)";

TEST(EngineStats, QwmCountersAccumulateAndReset) {
  StaEngine sta(design_from(kChain3), models());
  EXPECT_EQ(sta.qwm_stats().newton_iterations, 0u);
  sta.run();
  const core::QwmStats first = sta.qwm_stats();
  EXPECT_GT(first.regions, 0u);
  EXPECT_GT(first.newton_iterations, 0u);
  EXPECT_GT(first.device_evals, 0u);
  EXPECT_GT(first.linear_solves, 0u);

  // Counters accumulate across runs (cache hits add nothing; misses do).
  sta.clear_cache();
  sta.run();
  const core::QwmStats second = sta.qwm_stats();
  EXPECT_EQ(second.newton_iterations, 2 * first.newton_iterations);
  EXPECT_EQ(second.device_evals, 2 * first.device_evals);

  sta.reset_qwm_stats();
  EXPECT_EQ(sta.qwm_stats().newton_iterations, 0u);
  EXPECT_EQ(sta.qwm_stats().device_evals, 0u);
}

TEST(EngineStats, WorkspaceHighWaterIsFlatInSteadyState) {
  StaEngine sta(design_from(kChain3), models());
  sta.run();
  const core::WorkspaceStats warm_up = sta.workspace_stats();
  EXPECT_GT(warm_up.high_water_bytes, 0u);
  EXPECT_GT(warm_up.evals, 0u);

  // Full re-analyses through the same lane workspaces: the footprint must
  // not grow once every buffer has reached its path size.
  for (int i = 0; i < 3; ++i) {
    sta.clear_cache();
    sta.run();
  }
  const core::WorkspaceStats steady = sta.workspace_stats();
  EXPECT_EQ(steady.grow_events, warm_up.grow_events);
  EXPECT_EQ(steady.high_water_bytes, warm_up.high_water_bytes);
  EXPECT_GT(steady.evals, warm_up.evals);
}

TEST(EngineStats, CountersAreDeterministicAcrossEngines) {
  StaEngine a(design_from(kChain3), models());
  StaEngine b(design_from(kChain3), models());
  a.run();
  b.run();
  const core::QwmStats sa = a.qwm_stats();
  const core::QwmStats sb = b.qwm_stats();
  EXPECT_EQ(sa.regions, sb.regions);
  EXPECT_EQ(sa.newton_iterations, sb.newton_iterations);
  EXPECT_EQ(sa.linear_solves, sb.linear_solves);
  EXPECT_EQ(sa.device_evals, sb.device_evals);
  EXPECT_EQ(sa.warm_starts, sb.warm_starts);
}

}  // namespace
}  // namespace qwm::sta
