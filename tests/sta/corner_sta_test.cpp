// Multi-corner StaEngine behavior: per-corner arrival lanes, the
// setup/hold min/max merge, and the memo-cache corner isolation the
// corner-keyed StageEvalKey must guarantee.
#include "qwm/sta/sta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "../common/test_models.h"
#include "qwm/netlist/parser.h"

namespace qwm::sta {
namespace {

circuit::PartitionedDesign design_from(const char* deck) {
  const netlist::ParseResult r = netlist::parse_spice(deck);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  return circuit::partition_netlist(r.netlist, test::models().tabular_set());
}

netlist::NetId net_of(const char* deck, const char* name) {
  const netlist::ParseResult r = netlist::parse_spice(deck);
  return *r.netlist.find_net(name);
}

constexpr const char* kChain3 = R"(inverter chain
vdd vdd 0 3.3
vin a 0 pwl(0 0 10p 3.3)
mp1 b a vdd vdd pmos w=2u l=0.35u
mn1 b a 0 0 nmos w=1u l=0.35u
mp2 c b vdd vdd pmos w=2u l=0.35u
mn2 c b 0 0 nmos w=1u l=0.35u
mp3 d c vdd vdd pmos w=2u l=0.35u
mn3 d c 0 0 nmos w=1u l=0.35u
cl d 0 30f
)";

// Two electrically identical chains: the second rides the memo cache.
constexpr const char* kTwins = R"(twin chains
vdd vdd 0 3.3
vin1 a1 0 0
vin2 a2 0 0
mp1 b1 a1 vdd vdd pmos w=2u l=0.35u
mn1 b1 a1 0 0 nmos w=1u l=0.35u
mp2 c1 b1 vdd vdd pmos w=2u l=0.35u
mn2 c1 b1 0 0 nmos w=1u l=0.35u
mp3 b2 a2 vdd vdd pmos w=2u l=0.35u
mn3 b2 a2 0 0 nmos w=1u l=0.35u
mp4 c2 b2 vdd vdd pmos w=2u l=0.35u
mn4 c2 b2 0 0 nmos w=1u l=0.35u
cl1 c1 0 20f
cl2 c2 0 20f
)";

StaEngine multi_corner_engine(const char* deck, StaOptions opt = {}) {
  return StaEngine(design_from(deck), test::corner_models().sets(), opt);
}

TEST(CornerSta, LanesOrderedFastTypicalSlow) {
  StaEngine sta = multi_corner_engine(kChain3);
  ASSERT_TRUE(sta.multi_corner());
  ASSERT_EQ(sta.corners().size(), 3u);
  EXPECT_EQ(sta.corners().front(), device::Corner::typical);
  sta.run();

  for (const char* name : {"b", "c", "d"}) {
    SCOPED_TRACE(name);
    const auto n = net_of(kChain3, name);
    const NetTiming& ty = sta.timing(n, device::Corner::typical);
    const NetTiming& fa = sta.timing(n, device::Corner::fast);
    const NetTiming& sl = sta.timing(n, device::Corner::slow);
    for (const auto edge : {&NetTiming::rise, &NetTiming::fall}) {
      ASSERT_EQ((ty.*edge).valid(), (fa.*edge).valid());
      ASSERT_EQ((ty.*edge).valid(), (sl.*edge).valid());
      if (!(ty.*edge).valid()) continue;
      EXPECT_LE((fa.*edge).time, (ty.*edge).time);
      EXPECT_LE((ty.*edge).time, (sl.*edge).time);
    }
    // The primary-lane query surface reads the typical corner.
    EXPECT_EQ(sta.timing(n).rise.time, ty.rise.time);
    EXPECT_EQ(sta.timing(n).fall.time, ty.fall.time);
  }
}

TEST(CornerSta, SetupHoldMatchesHandComputedEnvelope) {
  StaEngine sta = multi_corner_engine(kChain3);
  sta.run();
  const auto nd = net_of(kChain3, "d");

  // Hand-compute the min/max arrival envelope across lanes and edges.
  double latest = -std::numeric_limits<double>::infinity();
  double earliest = std::numeric_limits<double>::infinity();
  for (const device::Corner c : sta.corners()) {
    const NetTiming& t = sta.timing(nd, c);
    for (const Arrival* a : {&t.rise, &t.fall}) {
      if (!a->valid()) continue;
      latest = std::max(latest, a->time);
      earliest = std::min(earliest, a->time);
    }
  }
  ASSERT_LT(earliest, latest);  // the corner spread is visible at d

  const double period = latest + 50e-12;
  const double hold = earliest - 10e-12;
  const auto sh = sta.setup_hold(nd, period, hold);
  ASSERT_TRUE(sh.valid);
  EXPECT_DOUBLE_EQ(sh.latest, latest);
  EXPECT_DOUBLE_EQ(sh.earliest, earliest);
  EXPECT_DOUBLE_EQ(sh.setup_slack, period - latest);
  EXPECT_DOUBLE_EQ(sh.hold_slack, earliest - hold);
  EXPECT_GT(sh.setup_slack, 0.0);
  EXPECT_GT(sh.hold_slack, 0.0);
  EXPECT_FALSE(sh.degraded);

  // The setup envelope must come from the slow lane and the hold envelope
  // from the fast lane — the whole point of the multi-corner merge.
  const NetTiming& sl = sta.timing(nd, device::Corner::slow);
  const NetTiming& fa = sta.timing(nd, device::Corner::fast);
  EXPECT_DOUBLE_EQ(latest, std::max(sl.rise.time, sl.fall.time));
  EXPECT_DOUBLE_EQ(earliest, std::min(fa.rise.time, fa.fall.time));
}

TEST(CornerSta, ViolatedHoldAndSetupGoNegative) {
  StaEngine sta = multi_corner_engine(kChain3);
  sta.run();
  const auto nb = net_of(kChain3, "b");
  const auto sh_ref = sta.setup_hold(nb, 1.0);
  ASSERT_TRUE(sh_ref.valid);

  // A hold requirement 5 ps past the fastest arrival: violated, and by
  // exactly the overshoot.
  const double hold = sh_ref.earliest + 5e-12;
  const auto sh_hold = sta.setup_hold(nb, 1.0, hold);
  EXPECT_LT(sh_hold.hold_slack, 0.0);
  EXPECT_DOUBLE_EQ(sh_hold.hold_slack, sh_ref.earliest - hold);
  EXPECT_NEAR(sh_hold.hold_slack, -5e-12, 1e-15);

  // A clock period tighter than the slowest arrival: setup violated.
  const double period = sh_ref.latest - 5e-12;
  const auto sh_setup = sta.setup_hold(nb, period);
  EXPECT_LT(sh_setup.setup_slack, 0.0);
  EXPECT_NEAR(sh_setup.setup_slack, -5e-12, 1e-15);

  // Design-wide worst slacks bound the per-net ones.
  EXPECT_LE(sta.worst_setup_slack(period), sh_setup.setup_slack);
  EXPECT_LE(sta.worst_hold_slack(hold), sh_hold.hold_slack);
}

TEST(CornerSta, InactiveCornerIsTheMissPath) {
  // A single-corner engine: fast/slow lanes do not exist, and querying
  // them must hit the stable invalid record, not crash or alias typical.
  StaEngine sta(design_from(kChain3), test::models().tabular_set());
  sta.run();
  const auto nb = net_of(kChain3, "b");
  EXPECT_FALSE(sta.multi_corner());
  EXPECT_TRUE(sta.timing(nb, device::Corner::typical).fall.valid());
  const NetTiming& miss = sta.timing(nb, device::Corner::fast);
  EXPECT_FALSE(miss.rise.valid());
  EXPECT_FALSE(miss.fall.valid());
  EXPECT_EQ(&miss, &sta.timing(nb, device::Corner::slow));
}

TEST(CornerSta, MemoCacheIsolatesCorners) {
  // Regression for cross-corner cache contamination. The twin-chain
  // design makes chain 2 a pure memo ride on chain 1. If the cache key
  // failed to carry the corner, the fast/slow lanes would be served the
  // typical lane's cached arrivals: zero QWM work on the sibling lanes
  // and 3x the hits of a properly keyed run.
  StaEngine single(design_from(kTwins), test::models().tabular_set());
  single.run();
  const auto ss = single.cache_stats();
  ASSERT_GT(ss.hits, 0u);
  ASSERT_GT(ss.misses, 0u);

  StaEngine multi = multi_corner_engine(kTwins);
  multi.run();
  const auto ms = multi.cache_stats();

  // Every lane takes its own misses (one QWM evaluation per distinct
  // stage per corner) and its own hits (the twin chain, per corner).
  EXPECT_EQ(ms.misses, 3 * ss.misses);
  EXPECT_EQ(ms.hits, 3 * ss.hits);

  // Each lane did real solver work — nobody was served cross-corner.
  for (const device::Corner c : multi.corners()) {
    SCOPED_TRACE(device::corner_name(c));
    const core::QwmStats& qs = multi.qwm_stats(c);
    EXPECT_GT(qs.newton_iterations, 0u);
    EXPECT_GT(qs.device_evals, 0u);
  }
  // The sibling lanes rode the typical lane's traces (warm starts), but
  // warm-started is not cache-hit: their results are their own.
  EXPECT_GT(multi.qwm_stats(device::Corner::fast).warm_starts, 0u);
  EXPECT_GT(multi.qwm_stats(device::Corner::slow).warm_starts, 0u);

  // And the lane arrivals genuinely differ from typical's — the values a
  // contaminated cache would have cloned.
  const auto nc1 = net_of(kTwins, "c1");
  const double ty = multi.timing(nc1, device::Corner::typical).rise.time;
  const double fa = multi.timing(nc1, device::Corner::fast).rise.time;
  const double sl = multi.timing(nc1, device::Corner::slow).rise.time;
  EXPECT_LT(fa, ty);
  EXPECT_GT(sl, ty);
}

TEST(CornerSta, IncrementalUpdatePreservesLaneIntegrity) {
  // After a resize + incremental update, every lane must agree with a
  // from-scratch multi-corner engine carrying the same resize.
  StaEngine sta = multi_corner_engine(kTwins);
  sta.run();

  const auto nb2 = net_of(kTwins, "b2");
  const auto [si, oi] = sta.design().driver_of.at(nb2);
  (void)oi;
  circuit::EdgeId nmos_edge = -1;
  for (std::size_t e = 0; e < sta.design().stages[si].stage.edge_count(); ++e)
    if (sta.design().stages[si].stage.edge(static_cast<circuit::EdgeId>(e))
            .kind == circuit::DeviceKind::nmos)
      nmos_edge = static_cast<circuit::EdgeId>(e);
  ASSERT_GE(nmos_edge, 0);
  sta.resize_transistor(si, nmos_edge, 0.5e-6);
  EXPECT_GT(sta.update(), 0u);

  StaEngine fresh = multi_corner_engine(kTwins);
  fresh.resize_transistor(si, nmos_edge, 0.5e-6);
  fresh.run();
  const auto nc2 = net_of(kTwins, "c2");
  for (const device::Corner c : sta.corners()) {
    SCOPED_TRACE(device::corner_name(c));
    for (const auto net : {nb2, nc2}) {
      const NetTiming& ti = sta.timing(net, c);
      const NetTiming& tf = fresh.timing(net, c);
      EXPECT_EQ(ti.rise.time, tf.rise.time) << "net " << net;
      EXPECT_EQ(ti.fall.time, tf.fall.time) << "net " << net;
    }
  }
}

}  // namespace
}  // namespace qwm::sta
