// The two halves of the vectorized-engine contract at STA scope:
//
//  1. Backend independence — a full analysis (golden twin gates, corner
//     lanes) run under the forced scalar frame kernel must be bitwise
//     equal to the same analysis under AVX2, across schedules. Skipped
//     on hosts without AVX2; the scalar lane is the reference either way.
//  2. Work stealing — the sharded deps scheduler must stay bit-identical
//     to the serial level-schedule reference while actually stealing:
//     repeated 8-lane runs over a wide grid, steal_count summed across
//     runs (a single run may drain without contention; five in a row do
//     not), and a single-lane run proving both contention counters stay
//     at exactly zero when there is nobody to contend with. Runs under
//     the tier-1 TSan preset, which is where a shard/claim-table race
//     would surface.
#include "qwm/sta/sta.h"

#include <gtest/gtest.h>

#include <cstddef>

#include "../common/backend_guard.h"
#include "../common/test_models.h"
#include "qwm/device/frame_kernel.h"
#include "sta_test_util.h"

namespace qwm::sta {
namespace {

using device::kernel::Backend;
using test::ScopedBackend;
using testutil::engine_for;
using testutil::expect_identical;
using testutil::generated_design;
using testutil::golden_twin_design;
using testutil::models;

TEST(SimdSched, GoldenGatesBitIdenticalAcrossBackends) {
  if (!device::kernel::backend_supported(Backend::avx2))
    GTEST_SKIP() << "host has no AVX2";
  const auto design = golden_twin_design();

  ScopedBackend scalar_guard(Backend::scalar);
  ASSERT_TRUE(scalar_guard.ok());
  StaEngine ref = engine_for(design, Schedule::levels, 1);
  const std::size_t ref_evals = ref.run();
  ASSERT_GT(ref_evals, 0u);

  ScopedBackend avx_guard(Backend::avx2);
  ASSERT_TRUE(avx_guard.ok());
  for (const Schedule sched : {Schedule::levels, Schedule::deps}) {
    SCOPED_TRACE(sched == Schedule::levels ? "levels" : "deps");
    StaEngine avx = engine_for(design, sched, 4);
    EXPECT_EQ(avx.run(), ref_evals);
    // Scalar serial levels vs AVX2 parallel: the strongest cross check —
    // backend and scheduler must both be invisible in the bits.
    expect_identical(ref, avx, "backend");
    EXPECT_EQ(avx.qwm_stats().newton_iterations,
              ref.qwm_stats().newton_iterations);
    EXPECT_EQ(avx.qwm_stats().device_evals, ref.qwm_stats().device_evals);
    EXPECT_EQ(avx.qwm_stats().simd_batches, ref.qwm_stats().simd_batches);
    EXPECT_EQ(avx.qwm_stats().simd_lanes_filled,
              ref.qwm_stats().simd_lanes_filled);
  }
}

TEST(SimdSched, CornerLanesBitIdenticalAcrossBackends) {
  if (!device::kernel::backend_supported(Backend::avx2))
    GTEST_SKIP() << "host has no AVX2";
  const auto design = golden_twin_design();
  StaOptions opt;
  opt.threads = 1;

  ScopedBackend scalar_guard(Backend::scalar);
  ASSERT_TRUE(scalar_guard.ok());
  StaEngine ref(design, test::corner_models().sets(), opt);
  ref.run();
  ASSERT_TRUE(ref.multi_corner());

  ScopedBackend avx_guard(Backend::avx2);
  ASSERT_TRUE(avx_guard.ok());
  StaOptions dp = opt;
  dp.schedule = Schedule::deps;
  dp.threads = 4;
  StaEngine avx(design, test::corner_models().sets(), dp);
  avx.run();
  ASSERT_TRUE(avx.multi_corner());
  expect_identical(ref, avx, "corners");
  // The shared-axis corner batch keeps the sibling-lane warm-start
  // economics backend-invariant too.
  EXPECT_EQ(avx.qwm_stats(device::Corner::fast).warm_starts,
            ref.qwm_stats(device::Corner::fast).warm_starts);
  EXPECT_EQ(avx.qwm_stats(device::Corner::slow).warm_starts,
            ref.qwm_stats(device::Corner::slow).warm_starts);
}

TEST(SimdSched, WorkStealingStressStaysBitIdentical) {
  // A wide grid keeps many stages ready at once, so 8 lanes over 5
  // cold-cache runs reliably cross shard boundaries. Bit-identity to the
  // serial reference is the hard assertion on every run; the steal
  // counter only has to be nonzero in aggregate.
  const auto design = generated_design("gen:grid:3000:seed=11");
  StaOptions lv;
  lv.threads = 1;
  // The equivalence contract requires no mid-run eviction.
  lv.cache.max_entries = std::size_t{1} << 20;
  StaEngine ref(design, models(), lv);
  const std::size_t ref_evals = ref.run();
  ASSERT_GT(ref_evals, 0u);

  StaOptions dp = lv;
  dp.schedule = Schedule::deps;
  dp.threads = 8;
  StaEngine deps(design, models(), dp);
  std::size_t prev_enqueued = 0;
  for (int iter = 0; iter < 5; ++iter) {
    SCOPED_TRACE(iter);
    deps.clear_cache();
    EXPECT_EQ(deps.run(), ref_evals);
    expect_identical(ref, deps, "steal-stress");
    // ScheduleStats accumulate across runs: check the per-run delta.
    const ScheduleStats& ss = deps.schedule_stats();
    EXPECT_EQ(ss.barrier_syncs, 0u);
    EXPECT_EQ(ss.tasks_enqueued - prev_enqueued, design.stages.size());
    prev_enqueued = ss.tasks_enqueued;
  }
  // Aggregated over five 8-lane runs; any one run may drain steal-free.
  EXPECT_GT(deps.schedule_stats().steal_count, 0u);
}

TEST(SimdSched, SingleLaneRunNeverStealsOrContends) {
  // One lane owns the only shard: stealing is structurally impossible and
  // every classification lock acquisition is uncontended. Both counters
  // must be exactly zero — they are the "parallelism really off" probes
  // the thread-sweep bench relies on.
  const auto design = generated_design("gen:tree:500:seed=9");
  StaEngine deps = engine_for(design, Schedule::deps, 1);
  deps.run();
  const ScheduleStats& ss = deps.schedule_stats();
  EXPECT_EQ(ss.steal_count, 0u);
  EXPECT_EQ(ss.classify_lock_waits, 0u);
  EXPECT_EQ(ss.barrier_syncs, 0u);

  StaEngine ref = engine_for(design, Schedule::levels, 1);
  ref.run();
  expect_identical(ref, deps, "single-lane");
}

}  // namespace
}  // namespace qwm::sta
