// Cross-engine golden harness: every Table I gate and Table II stack runs
// through BOTH engines — the SPICE transient baseline at 1 ps steps and
// the QWM evaluator — under the shared worst-case stimulus, and the
// results are checked three ways:
//   1. cross-engine: QWM within the per-case delay/slew tolerance of the
//      live SPICE result (ceilings derived from characterized accuracy,
//      floored at 1% delay / 5% slew);
//   2. QWM pinning: the live QWM numbers match tests/data/golden_delays.json
//      to 0.5% — catches silent drift in the waveform-matching core;
//   3. SPICE pinning: the live baseline matches the checked-in reference
//      to 0.5% — catches drift in the integrator the tolerances calibrate
//      against.
// Regenerate the JSON with:  build/tools/make_golden tests/data/golden_delays.json
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "../common/golden_cases.h"

namespace qwm::test {
namespace {

struct GoldenEntry {
  double qwm_delay_ps = 0.0;
  double qwm_slew_ps = 0.0;
  double spice_delay_ps = 0.0;
  double spice_slew_ps = 0.0;
  double delay_tol_pct = 1.0;
  double slew_tol_pct = 5.0;
};

/// Pulls `"key": <number>` out of one JSON object line.
bool json_number(const std::string& line, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  return std::sscanf(line.c_str() + pos + needle.size(), " %lf", out) == 1;
}

bool json_string(const std::string& line, const std::string& key,
                 std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

/// The golden file is an array of one-line objects with fixed keys (see
/// tools/make_golden.cpp); a line-wise scan is a full parser for it.
std::map<std::string, GoldenEntry> load_golden() {
  std::map<std::string, GoldenEntry> golden;
  const std::string path = std::string(QWM_TEST_DATA_DIR) +
                           "/golden_delays.json";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::string line;
  while (std::getline(in, line)) {
    std::string name;
    if (!json_string(line, "name", &name)) continue;
    GoldenEntry e;
    EXPECT_TRUE(json_number(line, "qwm_delay_ps", &e.qwm_delay_ps));
    EXPECT_TRUE(json_number(line, "qwm_slew_ps", &e.qwm_slew_ps));
    EXPECT_TRUE(json_number(line, "spice_delay_ps", &e.spice_delay_ps));
    EXPECT_TRUE(json_number(line, "spice_slew_ps", &e.spice_slew_ps));
    EXPECT_TRUE(json_number(line, "delay_tol_pct", &e.delay_tol_pct));
    EXPECT_TRUE(json_number(line, "slew_tol_pct", &e.slew_tol_pct));
    golden[name] = e;
  }
  return golden;
}

double pct_diff(double a, double b) {
  return b != 0.0 ? 100.0 * std::abs(a - b) / std::abs(b) : 1e9;
}

TEST(GoldenDelay, EveryCaseWithinToleranceOfSpiceAndPinned) {
  const auto golden = load_golden();
  ASSERT_FALSE(golden.empty());
  std::size_t matched = 0;
  for (const auto& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const auto it = golden.find(c.name);
    ASSERT_NE(it, golden.end())
        << "case missing from golden_delays.json; regenerate with "
           "build/tools/make_golden";
    const GoldenEntry& g = it->second;
    ++matched;

    const GoldenMeasure m = measure_golden(c.built);
    ASSERT_TRUE(m.ok) << m.error;

    // 1. Cross-engine accuracy, live vs live.
    EXPECT_LE(std::abs(m.delay_err_pct()), g.delay_tol_pct)
        << "QWM delay " << m.qwm_delay * 1e12 << " ps vs SPICE "
        << m.spice_delay * 1e12 << " ps";
    EXPECT_LE(std::abs(m.slew_err_pct()), g.slew_tol_pct)
        << "QWM slew " << m.qwm_slew * 1e12 << " ps vs SPICE "
        << m.spice_slew * 1e12 << " ps";

    // 2./3. Pinning against the checked-in reference.
    EXPECT_LT(pct_diff(m.qwm_delay * 1e12, g.qwm_delay_ps), 0.5);
    EXPECT_LT(pct_diff(m.qwm_slew * 1e12, g.qwm_slew_ps), 0.5);
    EXPECT_LT(pct_diff(m.spice_delay * 1e12, g.spice_delay_ps), 0.5);
    EXPECT_LT(pct_diff(m.spice_slew * 1e12, g.spice_slew_ps), 0.5);
  }
  // Every golden entry must correspond to a live case (no stale rows).
  EXPECT_EQ(matched, golden.size());
}

TEST(GoldenDelay, TolerancesAreHonest) {
  // The generated ceilings must stay within the paper-grade envelope:
  // single-digit delay error, slew within 5% (plus the 1.3x headroom).
  for (const auto& [name, g] : load_golden()) {
    SCOPED_TRACE(name);
    EXPECT_LE(g.delay_tol_pct, 5.0);
    EXPECT_LE(g.slew_tol_pct, 6.5);
  }
}

}  // namespace
}  // namespace qwm::test
