// Per-corner golden harness: every Table I gate and Table II stack runs
// through both engines at all three process corners against the
// per-corner characterized models, and the results are checked three
// ways:
//   1. cross-engine: the QWM delay at each corner stays within the
//      per-case/per-corner tolerance of the live SPICE result;
//   2. ordering: fast <= typical <= slow delay on every gate — the
//      physical contract corner derivation must preserve;
//   3. pinning: the live QWM numbers match
//      tests/data/golden_delays_corners.json to 0.5% — catches silent
//      drift in the corner characterization or the waveform core.
// Regenerate the JSON with:  build/tools/make_golden --corners
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "../common/golden_cases.h"

namespace qwm::test {
namespace {

struct CornerEntry {
  double qwm_delay_ps[device::kCornerCount] = {};
  double spice_delay_ps[device::kCornerCount] = {};
  double delay_tol_pct[device::kCornerCount] = {};
};

bool json_number(const std::string& line, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  return std::sscanf(line.c_str() + pos + needle.size(), " %lf", out) == 1;
}

bool json_string(const std::string& line, const std::string& key,
                 std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

std::map<std::string, CornerEntry> load_golden() {
  std::map<std::string, CornerEntry> golden;
  const std::string path =
      std::string(QWM_TEST_DATA_DIR) + "/golden_delays_corners.json";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::string line;
  while (std::getline(in, line)) {
    std::string name;
    if (!json_string(line, "name", &name)) continue;
    CornerEntry e;
    for (const device::Corner c : device::kAllCorners) {
      const std::string cn = device::corner_name(c);
      const int i = static_cast<int>(c);
      EXPECT_TRUE(
          json_number(line, cn + "_qwm_delay_ps", &e.qwm_delay_ps[i]));
      EXPECT_TRUE(
          json_number(line, cn + "_spice_delay_ps", &e.spice_delay_ps[i]));
      EXPECT_TRUE(
          json_number(line, cn + "_delay_tol_pct", &e.delay_tol_pct[i]));
    }
    golden[name] = e;
  }
  return golden;
}

double pct_diff(double a, double b) {
  return b != 0.0 ? 100.0 * std::abs(a - b) / std::abs(b) : 1e9;
}

TEST(CornerGolden, EveryGateOrderedAccurateAndPinned) {
  const auto golden = load_golden();
  ASSERT_FALSE(golden.empty());
  const device::CornerLibrary& lib = corner_models();
  std::size_t matched = 0;
  for (const auto& c : golden_cases()) {
    SCOPED_TRACE(c.name);
    const auto it = golden.find(c.name);
    ASSERT_NE(it, golden.end())
        << "case missing from golden_delays_corners.json; regenerate with "
           "build/tools/make_golden --corners";
    const CornerEntry& g = it->second;
    ++matched;

    double delay[device::kCornerCount] = {};
    for (const device::Corner corner : device::kAllCorners) {
      SCOPED_TRACE(device::corner_name(corner));
      const int i = static_cast<int>(corner);
      const GoldenMeasure m = measure_golden(c.built, lib.set(corner));
      ASSERT_TRUE(m.ok) << m.error;
      delay[i] = m.qwm_delay;

      // 1. Cross-engine accuracy at this corner, live vs live.
      EXPECT_LE(std::abs(m.delay_err_pct()), g.delay_tol_pct[i])
          << "QWM delay " << m.qwm_delay * 1e12 << " ps vs SPICE "
          << m.spice_delay * 1e12 << " ps";

      // 3. Pinning against the checked-in reference.
      EXPECT_LT(pct_diff(m.qwm_delay * 1e12, g.qwm_delay_ps[i]), 0.5);
      EXPECT_LT(pct_diff(m.spice_delay * 1e12, g.spice_delay_ps[i]), 0.5);
    }

    // 2. Corner ordering: strong devices are never slower than weak ones.
    const double fa = delay[static_cast<int>(device::Corner::fast)];
    const double ty = delay[static_cast<int>(device::Corner::typical)];
    const double sl = delay[static_cast<int>(device::Corner::slow)];
    EXPECT_LE(fa, ty) << "fast corner slower than typical";
    EXPECT_LE(ty, sl) << "typical corner slower than slow";
  }
  // Every golden entry must correspond to a live case (no stale rows).
  EXPECT_EQ(matched, golden.size());
}

TEST(CornerGolden, CornerSpreadIsMeaningful) {
  // The +-12% transconductance / -+8% threshold derivation must actually
  // separate the corners: a collapsed spread would let the min/max merge
  // in the STA engine silently degenerate to single-corner analysis.
  for (const auto& [name, g] : load_golden()) {
    SCOPED_TRACE(name);
    const double fa = g.qwm_delay_ps[static_cast<int>(device::Corner::fast)];
    const double ty =
        g.qwm_delay_ps[static_cast<int>(device::Corner::typical)];
    const double sl = g.qwm_delay_ps[static_cast<int>(device::Corner::slow)];
    EXPECT_LT(fa, 0.97 * ty);
    EXPECT_GT(sl, 1.03 * ty);
  }
}

}  // namespace
}  // namespace qwm::test
