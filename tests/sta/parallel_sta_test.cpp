// Determinism of the level-synchronous parallel scheduler: on every
// design, any lane count must produce bit-identical arrivals, the same
// critical path, and the same cache statistics as the serial engine —
// across repeated full analyses (20 iterations exercises scheduling
// nondeterminism) and after incremental edits. Also checks the cache
// accounting invariant hits + misses == triggered evaluations.
#include "qwm/sta/sta.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../common/test_models.h"
#include "qwm/circuit/partition.h"
#include "qwm/netlist/parser.h"

namespace qwm::sta {
namespace {

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

/// Small row decoder (address buffers -> NAND3 rows -> sized wordline
/// drivers). The stimulus line l0 carries extra load so it is strictly
/// the latest arrival and gates the ground-adjacent NMOS of every row.
std::string decoder_deck(int rows, int variants) {
  std::ostringstream os;
  os << "decoder\nvdd vdd 0 3.3\n";
  for (int i = 0; i < 3; ++i) {
    os << "vin" << i << " a" << i << " 0 0\n";
    os << "mpb" << i << "1 b" << i << " a" << i
       << " vdd vdd pmos w=8u l=0.35u\n";
    os << "mnb" << i << "1 b" << i << " a" << i << " 0 0 nmos w=4u l=0.35u\n";
    os << "mpb" << i << "2 l" << i << " b" << i
       << " vdd vdd pmos w=32u l=0.35u\n";
    os << "mnb" << i << "2 l" << i << " b" << i
       << " 0 0 nmos w=16u l=0.35u\n";
  }
  os << "cl0 l0 0 10f\n";
  for (int r = 0; r < rows; ++r) {
    const double scale = 1.0 + 0.25 * (r % variants);
    os << "mpr" << r << "a w" << r << " l0 vdd vdd pmos w=2u l=0.35u\n";
    os << "mpr" << r << "b w" << r << " l1 vdd vdd pmos w=2u l=0.35u\n";
    os << "mpr" << r << "c w" << r << " l2 vdd vdd pmos w=2u l=0.35u\n";
    os << "mnr" << r << "a w" << r << " l2 x" << r << "1 0 nmos w=2u l=0.35u\n";
    os << "mnr" << r << "b x" << r << "1 l1 x" << r
       << "2 0 nmos w=2u l=0.35u\n";
    os << "mnr" << r << "c x" << r << "2 l0 0 0 nmos w=2u l=0.35u\n";
    os << "mpd" << r << " d" << r << " w" << r << " vdd vdd pmos w="
       << 2.0 * scale << "u l=0.35u\n";
    os << "mnd" << r << " d" << r << " w" << r << " 0 0 nmos w="
       << 1.0 * scale << "u l=0.35u\n";
    os << "cd" << r << " d" << r << " 0 30f\n";
  }
  return os.str();
}

/// Parallel NMOS-stack design: independent stack chains of depth 3..6,
/// several electrically identical copies of each depth.
std::string stack_deck(int copies) {
  std::ostringstream os;
  os << "stacks\nvdd vdd 0 3.3\n";
  for (int depth = 3; depth <= 6; ++depth) {
    for (int c = 0; c < copies; ++c) {
      const std::string tag = std::to_string(depth) + "_" + std::to_string(c);
      os << "vin" << tag << " a" << tag << " 0 0\n";
      os << "mpi" << tag << " g" << tag << " a" << tag
         << " vdd vdd pmos w=4u l=0.35u\n";
      os << "mni" << tag << " g" << tag << " a" << tag
         << " 0 0 nmos w=2u l=0.35u\n";
      // Pull-up keeps the stack output restorable; the stack discharges
      // through `depth` series NMOS, bottom device gated by the buffer.
      os << "mpu" << tag << " y" << tag << " g" << tag
         << " vdd vdd pmos w=2u l=0.35u\n";
      for (int q = 0; q < depth; ++q) {
        const std::string top =
            q == 0 ? "y" + tag : "s" + tag + "_" + std::to_string(q);
        const std::string bot = q == depth - 1
                                    ? std::string("0")
                                    : "s" + tag + "_" + std::to_string(q + 1);
        os << "ms" << tag << "_" << q << " " << top << " "
           << (q == depth - 1 ? "g" + tag : std::string("vdd")) << " " << bot
           << " 0 nmos w=2u l=0.35u\n";
      }
      os << "cy" << tag << " y" << tag << " 0 20f\n";
    }
  }
  return os.str();
}

circuit::PartitionedDesign design_from(const std::string& deck) {
  const netlist::ParseResult r = netlist::parse_spice(deck);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  return circuit::partition_netlist(r.netlist, models());
}

StaEngine engine_for(const circuit::PartitionedDesign& design, int threads,
                     bool use_cache = true) {
  StaOptions opt;
  opt.threads = threads;
  opt.use_cache = use_cache;
  return StaEngine(design, models(), opt);
}

/// Bitwise equality of all stage-output arrivals.
void expect_identical(const StaEngine& a, const StaEngine& b,
                      const char* what) {
  for (const auto& info : a.design().stages) {
    for (netlist::NetId n : info.output_nets) {
      const NetTiming& ta = a.timing(n);
      const NetTiming& tb = b.timing(n);
      EXPECT_EQ(ta.rise.time, tb.rise.time) << what << " net " << n;
      EXPECT_EQ(ta.rise.slew, tb.rise.slew) << what << " net " << n;
      EXPECT_EQ(ta.fall.time, tb.fall.time) << what << " net " << n;
      EXPECT_EQ(ta.fall.slew, tb.fall.slew) << what << " net " << n;
    }
  }
  EXPECT_EQ(a.worst_arrival(), b.worst_arrival()) << what;
  const auto pa = a.critical_path();
  const auto pb = b.critical_path();
  ASSERT_EQ(pa.size(), pb.size()) << what;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].net, pb[i].net) << what << " step " << i;
    EXPECT_EQ(pa[i].rising, pb[i].rising) << what << " step " << i;
    EXPECT_EQ(pa[i].arrival, pb[i].arrival) << what << " step " << i;
    EXPECT_EQ(pa[i].stage, pb[i].stage) << what << " step " << i;
  }
}

class ParallelStaTest : public ::testing::TestWithParam<const char*> {
 protected:
  circuit::PartitionedDesign design() const {
    const std::string which = GetParam();
    return design_from(which == "decoder" ? decoder_deck(16, 4)
                                          : stack_deck(5));
  }
};

TEST_P(ParallelStaTest, LaneCountNeverChangesResults) {
  const auto design_ = design();
  StaEngine serial = engine_for(design_, 1);
  const std::size_t serial_evals = serial.run();
  EXPECT_GT(serial_evals, 0u);

  for (const int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    StaEngine parallel = engine_for(design_, threads);
    // 20 repeated full analyses: every one must match the serial result
    // bit for bit regardless of worker interleaving.
    for (int iter = 0; iter < 20; ++iter) {
      parallel.clear_cache();
      const std::size_t evals = parallel.run();
      EXPECT_EQ(evals, serial_evals) << "iter " << iter;
      expect_identical(serial, parallel, "full-run");
    }
  }
}

TEST_P(ParallelStaTest, CacheAccountingInvariant) {
  const auto design_ = design();
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    StaEngine sta = engine_for(design_, threads);
    const std::size_t evals = sta.run();
    const auto stats = sta.cache_stats();
    // Every triggered evaluation is accounted exactly once: as a memo hit
    // (including intra-level followers) or as a miss that ran QWM.
    EXPECT_EQ(stats.hits + stats.misses, evals);
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.hits, 0u);  // both decks contain identical replicas
    EXPECT_EQ(stats.insertions, stats.misses);

    // Steady state: a re-run re-uses every cached entry.
    sta.reset_cache_stats();
    const std::size_t evals2 = sta.run();
    const auto stats2 = sta.cache_stats();
    EXPECT_EQ(stats2.hits + stats2.misses, evals2);
    EXPECT_EQ(stats2.misses, 0u);
  }
}

TEST_P(ParallelStaTest, SerialAndParallelAgreeWithCacheOff) {
  const auto design_ = design();
  StaEngine serial = engine_for(design_, 1, /*use_cache=*/false);
  serial.run();
  EXPECT_EQ(serial.cache_stats().lookups(), 0u);
  StaEngine parallel = engine_for(design_, 8, /*use_cache=*/false);
  parallel.run();
  expect_identical(serial, parallel, "cache-off");
}

TEST_P(ParallelStaTest, IncrementalUpdateMatchesAcrossLanes) {
  const auto design_ = design();
  StaEngine serial = engine_for(design_, 1);
  StaEngine parallel = engine_for(design_, 8);
  serial.run();
  parallel.run();

  // Resize an NMOS edge in the first stage that has one, in both engines.
  int si = -1;
  circuit::EdgeId edge = -1;
  for (std::size_t s = 0; s < design_.stages.size() && si < 0; ++s) {
    const auto& stage = design_.stages[s].stage;
    for (std::size_t e = 0; e < stage.edge_count(); ++e) {
      if (stage.edge(static_cast<circuit::EdgeId>(e)).kind ==
          circuit::DeviceKind::nmos) {
        si = static_cast<int>(s);
        edge = static_cast<circuit::EdgeId>(e);
        break;
      }
    }
  }
  ASSERT_GE(si, 0);
  serial.resize_transistor(si, edge, 3.1e-6);
  parallel.resize_transistor(si, edge, 3.1e-6);
  const std::size_t serial_evals = serial.update();
  const std::size_t parallel_evals = parallel.update();
  EXPECT_EQ(serial_evals, parallel_evals);
  expect_identical(serial, parallel, "incremental");
}

INSTANTIATE_TEST_SUITE_P(Designs, ParallelStaTest,
                         ::testing::Values("decoder", "stacks"));

}  // namespace
}  // namespace qwm::sta
