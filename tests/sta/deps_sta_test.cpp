// Scheduler equivalence: the dependency-counting asynchronous schedule
// (Schedule::deps) must be bit-identical to the level-synchronous
// schedule on every observable — arrivals, slews, sticky degraded flags,
// corner lanes, memo-cache accounting, and QWM work counters — across
// thread counts. The designs cover the Table I/II golden gates (with
// electrically identical twins so the memo owner/follower machinery is
// exercised), the per-corner lanes, a 10^4-stage generated mega-circuit,
// and an armed-fault run where both schedulers must land every degraded
// stage on the same fallback rung. Also pins the ScheduleStats contract:
// a deps run never executes a level barrier.
#include "qwm/sta/sta.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../common/test_models.h"
#include "qwm/support/fault_injection.h"
#include "sta_test_util.h"

namespace qwm::sta {
namespace {

using support::FaultPlan;
using support::FaultRule;
using support::FaultSite;
using support::ScopedFaultPlan;
using testutil::engine_for;
using testutil::expect_identical;
using testutil::generated_design;
using testutil::golden_twin_design;
using testutil::models;

TEST(DepsSta, GoldenGatesBitIdentical) {
  const auto design = golden_twin_design();
  StaEngine ref = engine_for(design, Schedule::levels, 1);
  const std::size_t ref_evals = ref.run();
  ASSERT_GT(ref_evals, 0u);
  const auto ref_cache = ref.cache_stats();
  ASSERT_GT(ref_cache.hits, 0u);  // twin copies share evaluations

  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    StaEngine deps = engine_for(design, Schedule::deps, threads);
    const std::size_t evals = deps.run();
    EXPECT_EQ(evals, ref_evals);
    expect_identical(ref, deps, "golden");

    // The deps run makes exactly the classification decisions the frozen
    // cache would have made: same hit/miss/insertion accounting.
    const auto cs = deps.cache_stats();
    EXPECT_EQ(cs.hits, ref_cache.hits);
    EXPECT_EQ(cs.misses, ref_cache.misses);
    EXPECT_EQ(cs.insertions, ref_cache.insertions);

    // Merge-order-independent QWM work totals match too.
    EXPECT_EQ(deps.qwm_stats().newton_iterations,
              ref.qwm_stats().newton_iterations);
    EXPECT_EQ(deps.qwm_stats().device_evals, ref.qwm_stats().device_evals);
  }
}

TEST(DepsSta, CornerLanesBitIdentical) {
  const auto design = golden_twin_design();
  StaOptions levels_opt;
  levels_opt.threads = 1;
  StaEngine ref(design, test::corner_models().sets(), levels_opt);
  ref.run();
  ASSERT_TRUE(ref.multi_corner());

  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    StaOptions opt;
    opt.schedule = Schedule::deps;
    opt.threads = threads;
    StaEngine deps(design, test::corner_models().sets(), opt);
    deps.run();
    ASSERT_TRUE(deps.multi_corner());
    expect_identical(ref, deps, "corners");
    // Sibling lanes still ride the typical lane's warm traces.
    EXPECT_EQ(deps.qwm_stats(device::Corner::fast).warm_starts,
              ref.qwm_stats(device::Corner::fast).warm_starts);
    EXPECT_EQ(deps.qwm_stats(device::Corner::slow).warm_starts,
              ref.qwm_stats(device::Corner::slow).warm_starts);
  }
}

TEST(DepsSta, GeneratedTenThousandStagesBitIdentical) {
  const auto design = generated_design("gen:grid:10000:seed=7");
  ASSERT_EQ(design.stages.size(), 10000u);

  // The equivalence contract requires no mid-run eviction: give the
  // cache comfortable headroom over the distinct-key population.
  StaOptions lv;
  lv.threads = 4;
  lv.cache.max_entries = std::size_t{1} << 20;
  StaEngine ref(design, models(), lv);
  const std::size_t ref_evals = ref.run();
  ASSERT_GT(ref_evals, 0u);

  StaOptions dp = lv;
  dp.schedule = Schedule::deps;
  StaEngine deps(design, models(), dp);
  const std::size_t evals = deps.run();
  EXPECT_EQ(evals, ref_evals);
  expect_identical(ref, deps, "grid10k");

  const ScheduleStats& ss = deps.schedule_stats();
  EXPECT_EQ(ss.barrier_syncs, 0u);
  EXPECT_EQ(ss.tasks_enqueued, design.stages.size());
  EXPECT_GT(ss.chain_edges, 0u);  // a grid is full of memo twins
}

TEST(DepsSta, ArmedFaultLandsOnSameFallbackRungs) {
  // Always-fire stall rule (period 1, unbounded count): order-independent
  // by construction, so both schedulers must degrade the same stages and
  // recover on the same ladder rung the same number of times. (Count- or
  // period-limited rules are consumed in evaluation order and are NOT
  // schedule-portable — the documented equivalence caveat.)
  FaultPlan plan;
  FaultRule stall;
  stall.site = FaultSite::kNewtonStall;
  stall.max_rung = 0;  // nominal solve always fails; damped rung recovers
  plan.add(stall);

  const auto design = golden_twin_design();
  StaEngine ref = engine_for(design, Schedule::levels, 1);
  {
    ScopedFaultPlan armed{plan};
    ref.run();
  }
  const std::size_t ref_damped =
      ref.qwm_stats().fallback_counts[core::kRungDamped];
  ASSERT_GT(ref_damped, 0u);
  EXPECT_EQ(ref.cache_entries(), 0u);  // degraded results never memoized

  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    StaEngine deps = engine_for(design, Schedule::deps, threads);
    {
      ScopedFaultPlan armed{plan};
      deps.run();
    }
    expect_identical(ref, deps, "fault");
    EXPECT_EQ(deps.qwm_stats().fallback_counts[core::kRungDamped], ref_damped);
    EXPECT_EQ(deps.cache_entries(), 0u);
  }
}

TEST(DepsSta, RepeatedParallelRunsStayIdentical) {
  // Scheduling-nondeterminism stress: many full analyses at 8 lanes, all
  // bit-identical to the serial levels reference. Runs under the tier-1
  // TSan preset, which is where a merge/retire race would surface.
  const auto design = generated_design("gen:dag:160:seed=5:width=32");
  StaEngine ref = engine_for(design, Schedule::levels, 1);
  const std::size_t ref_evals = ref.run();

  StaEngine deps = engine_for(design, Schedule::deps, 8);
  for (int iter = 0; iter < 5; ++iter) {
    SCOPED_TRACE(iter);
    deps.clear_cache();
    EXPECT_EQ(deps.run(), ref_evals);
    expect_identical(ref, deps, "stress");
  }
}

TEST(DepsSta, UpdateAfterDepsRunMatchesLevels) {
  // update() always uses the level schedule; a deps-configured engine
  // must still produce identical incremental results.
  const auto design = generated_design("gen:grid:200:seed=3");
  StaEngine ref = engine_for(design, Schedule::levels, 1);
  StaEngine deps = engine_for(design, Schedule::deps, 4);
  ref.run();
  deps.run();

  int si = -1;
  circuit::EdgeId edge = -1;
  for (std::size_t s = 0; s < design.stages.size() && si < 0; ++s) {
    const auto& stage = design.stages[s].stage;
    for (std::size_t e = 0; e < stage.edge_count(); ++e) {
      if (stage.edge(static_cast<circuit::EdgeId>(e)).kind ==
          circuit::DeviceKind::nmos) {
        si = static_cast<int>(s);
        edge = static_cast<circuit::EdgeId>(e);
        break;
      }
    }
  }
  ASSERT_GE(si, 0);
  ref.resize_transistor(si, edge, 3.1e-6);
  deps.resize_transistor(si, edge, 3.1e-6);
  EXPECT_EQ(ref.update(), deps.update());
  expect_identical(ref, deps, "incremental");
}

TEST(DepsSta, ScheduleStatsObservables) {
  const auto design = generated_design("gen:tree:500:seed=9");

  StaEngine levels = engine_for(design, Schedule::levels, 4);
  levels.run();
  const ScheduleStats& ls = levels.schedule_stats();
  EXPECT_GT(ls.levels, 1u);
  EXPECT_EQ(ls.barrier_syncs, ls.levels);  // one barrier per level batch
  EXPECT_EQ(ls.tasks_enqueued, 0u);
  EXPECT_EQ(ls.ready_hwm, 0u);

  StaEngine deps = engine_for(design, Schedule::deps, 4);
  deps.run();
  const ScheduleStats& ds = deps.schedule_stats();
  EXPECT_EQ(ds.levels, ls.levels);  // same schedule, different execution
  EXPECT_EQ(ds.barrier_syncs, 0u);
  EXPECT_EQ(ds.tasks_enqueued, design.stages.size());
  EXPECT_GE(ds.ready_hwm, 1u);
  expect_identical(levels, deps, "tree");
}

}  // namespace
}  // namespace qwm::sta
