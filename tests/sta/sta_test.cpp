#include "qwm/sta/sta.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../common/test_models.h"
#include "qwm/netlist/parser.h"

namespace qwm::sta {
namespace {

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

circuit::PartitionedDesign design_from(const char* deck) {
  const netlist::ParseResult r = netlist::parse_spice(deck);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  return circuit::partition_netlist(r.netlist, models());
}

constexpr const char* kChain3 = R"(inverter chain
vdd vdd 0 3.3
vin a 0 pwl(0 0 10p 3.3)
mp1 b a vdd vdd pmos w=2u l=0.35u
mn1 b a 0 0 nmos w=1u l=0.35u
mp2 c b vdd vdd pmos w=2u l=0.35u
mn2 c b 0 0 nmos w=1u l=0.35u
mp3 d c vdd vdd pmos w=2u l=0.35u
mn3 d c 0 0 nmos w=1u l=0.35u
cl d 0 30f
)";

netlist::NetId net_of(const char* deck, const char* name) {
  const netlist::ParseResult r = netlist::parse_spice(deck);
  return *r.netlist.find_net(name);
}

TEST(Sta, ChainArrivalsIncreaseAlongPath) {
  StaEngine sta(design_from(kChain3), models());
  const std::size_t evals = sta.run();
  EXPECT_GT(evals, 0u);

  const auto nb = net_of(kChain3, "b");
  const auto nc = net_of(kChain3, "c");
  const auto nd = net_of(kChain3, "d");
  const NetTiming& tb = sta.timing(nb);
  const NetTiming& tc = sta.timing(nc);
  const NetTiming& td = sta.timing(nd);
  // Rising input -> b falls first; c rises; d falls.
  ASSERT_TRUE(tb.fall.valid());
  ASSERT_TRUE(tc.rise.valid());
  ASSERT_TRUE(td.fall.valid());
  EXPECT_GT(tb.fall.time, 0.0);
  EXPECT_GT(tc.rise.time, tb.fall.time);
  EXPECT_GT(td.fall.time, tc.rise.time);
  EXPECT_GE(sta.worst_arrival(), td.fall.time);
}

TEST(Sta, CriticalPathWalksBackToPrimaryInput) {
  StaEngine sta(design_from(kChain3), models());
  sta.run();
  const auto path = sta.critical_path();
  ASSERT_GE(path.size(), 3u);
  // First step originates at a primary input arrival; arrivals increase.
  for (std::size_t i = 1; i < path.size(); ++i)
    EXPECT_GE(path[i].arrival, path[i - 1].arrival);
  EXPECT_EQ(path.front().stage, -1);
}

TEST(Sta, InputArrivalShiftsOutputs) {
  auto d1 = design_from(kChain3);
  auto d2 = design_from(kChain3);
  const auto na = net_of(kChain3, "a");
  const auto nd = net_of(kChain3, "d");

  StaEngine s1(std::move(d1), models());
  s1.run();
  StaEngine s2(std::move(d2), models());
  s2.set_input_arrival(na, 100e-12, 100e-12);
  s2.run();
  ASSERT_TRUE(s1.timing(nd).fall.valid());
  ASSERT_TRUE(s2.timing(nd).fall.valid());
  EXPECT_NEAR(s2.timing(nd).fall.time - s1.timing(nd).fall.time, 100e-12,
              5e-12);
}

TEST(Sta, IncrementalUpdateTouchesOnlyFanoutCone) {
  // Two parallel chains sharing no nets: editing one must not re-evaluate
  // the other.
  constexpr const char* kTwoChains = R"(two chains
vdd vdd 0 3.3
vin1 a1 0 0
vin2 a2 0 0
mp1 b1 a1 vdd vdd pmos w=2u l=0.35u
mn1 b1 a1 0 0 nmos w=1u l=0.35u
mp2 c1 b1 vdd vdd pmos w=2u l=0.35u
mn2 c1 b1 0 0 nmos w=1u l=0.35u
mp3 b2 a2 vdd vdd pmos w=2u l=0.35u
mn3 b2 a2 0 0 nmos w=1u l=0.35u
mp4 c2 b2 vdd vdd pmos w=2u l=0.35u
mn4 c2 b2 0 0 nmos w=1u l=0.35u
cl1 c1 0 10f
cl2 c2 0 10f
)";
  StaEngine sta(design_from(kTwoChains), models());
  const std::size_t full = sta.run();
  ASSERT_GT(full, 0u);

  // Find the stage driving b1 and fatten its NMOS.
  const auto nb1 = net_of(kTwoChains, "b1");
  const auto [si, oi] = sta.design().driver_of.at(nb1);
  (void)oi;
  circuit::EdgeId nmos_edge = -1;
  for (std::size_t e = 0; e < sta.design().stages[si].stage.edge_count(); ++e)
    if (sta.design().stages[si].stage.edge(static_cast<circuit::EdgeId>(e))
            .kind == circuit::DeviceKind::nmos)
      nmos_edge = static_cast<circuit::EdgeId>(e);
  ASSERT_GE(nmos_edge, 0);
  sta.resize_transistor(si, nmos_edge, 3e-6);
  const std::size_t incremental = sta.update();
  EXPECT_GT(incremental, 0u);
  EXPECT_LT(incremental, full);  // the untouched chain is not re-evaluated
}

TEST(Sta, ResizeActuallyChangesDelay) {
  const auto na = net_of(kChain3, "a");
  (void)na;
  const auto nb = net_of(kChain3, "b");
  StaEngine sta(design_from(kChain3), models());
  sta.run();
  const double before = sta.timing(nb).fall.time;

  const auto [si, oi] = sta.design().driver_of.at(nb);
  (void)oi;
  circuit::EdgeId nmos_edge = -1;
  for (std::size_t e = 0; e < sta.design().stages[si].stage.edge_count(); ++e)
    if (sta.design().stages[si].stage.edge(static_cast<circuit::EdgeId>(e))
            .kind == circuit::DeviceKind::nmos)
      nmos_edge = static_cast<circuit::EdgeId>(e);
  sta.resize_transistor(si, nmos_edge, 4e-6);
  sta.update();
  const double after = sta.timing(nb).fall.time;
  EXPECT_LT(after, before);  // a 4x NMOS discharges faster
}

TEST(Sta, SlackAgainstClockPeriod) {
  StaEngine sta(design_from(kChain3), models());
  sta.run();
  const double worst = sta.worst_arrival();
  // Generous period: every slack positive; worst slack = period - worst
  // arrival at the endpoint.
  const double period = worst + 100e-12;
  EXPECT_NEAR(sta.worst_slack(period), 100e-12, 1e-12);
  // Tight period: violation.
  EXPECT_LT(sta.worst_slack(worst - 10e-12), 0.0);

  // The endpoint net d's slack is exactly period minus its latest edge
  // arrival (the slack reports the worst of rise/fall).
  const auto nd = net_of(kChain3, "d");
  const auto slacks = sta.compute_slacks(period);
  ASSERT_TRUE(slacks.count(nd));
  const double d_worst =
      std::max(sta.timing(nd).rise.time, sta.timing(nd).fall.time);
  EXPECT_NEAR(slacks.at(nd).slack, period - d_worst, 1e-12);

  // Upstream nets inherit tighter-than-period required times.
  const auto nb = net_of(kChain3, "b");
  ASSERT_TRUE(slacks.count(nb));
  EXPECT_LT(slacks.at(nb).required, period);
  // Along a single chain, every net shares the endpoint's slack.
  EXPECT_NEAR(slacks.at(nb).slack, slacks.at(nd).slack, 1e-12);
}

TEST(Sta, NoopUpdateCostsNothing) {
  StaEngine sta(design_from(kChain3), models());
  sta.run();
  EXPECT_EQ(sta.update(), 0u);
}

TEST(Sta, ResizeInvalidatesMemoAndMovesCriticalPath) {
  // Two electrically identical chains: chain 2's stage evaluations are
  // memo hits on chain 1's entries. Narrowing one chain-2 NMOS must (a)
  // change that stage's structural hash so the stale cached result is NOT
  // reused, (b) move the critical path into chain 2, and (c) produce
  // arrivals bit-identical to a from-scratch engine with the same resize.
  constexpr const char* kTwins = R"(twin chains
vdd vdd 0 3.3
vin1 a1 0 0
vin2 a2 0 0
mp1 b1 a1 vdd vdd pmos w=2u l=0.35u
mn1 b1 a1 0 0 nmos w=1u l=0.35u
mp2 c1 b1 vdd vdd pmos w=2u l=0.35u
mn2 c1 b1 0 0 nmos w=1u l=0.35u
mp3 b2 a2 vdd vdd pmos w=2u l=0.35u
mn3 b2 a2 0 0 nmos w=1u l=0.35u
mp4 c2 b2 vdd vdd pmos w=2u l=0.35u
mn4 c2 b2 0 0 nmos w=1u l=0.35u
cl1 c1 0 20f
cl2 c2 0 20f
)";
  StaEngine sta(design_from(kTwins), models());
  sta.run();
  const auto stats_before = sta.cache_stats();
  EXPECT_GT(stats_before.hits, 0u);  // the twin chain rode the memo

  const auto nb2 = net_of(kTwins, "b2");
  const auto nc1 = net_of(kTwins, "c1");
  const auto nc2 = net_of(kTwins, "c2");
  const auto [si, oi] = sta.design().driver_of.at(nb2);
  (void)oi;
  circuit::EdgeId nmos_edge = -1;
  for (std::size_t e = 0; e < sta.design().stages[si].stage.edge_count(); ++e)
    if (sta.design().stages[si].stage.edge(static_cast<circuit::EdgeId>(e))
            .kind == circuit::DeviceKind::nmos)
      nmos_edge = static_cast<circuit::EdgeId>(e);
  ASSERT_GE(nmos_edge, 0);

  // Halve the NMOS: b2's fall slows, so chain 2 becomes critical.
  sta.resize_transistor(si, nmos_edge, 0.5e-6);
  const std::size_t touched = sta.update();
  EXPECT_GT(touched, 0u);
  const auto stats_after = sta.cache_stats();
  // The resized stage re-ran QWM under a new structural key — a miss,
  // not a stale hit.
  EXPECT_GT(stats_after.misses, stats_before.misses);

  EXPECT_GT(sta.timing(nb2).fall.time, sta.timing(net_of(kTwins, "b1")).fall.time);
  EXPECT_GT(sta.worst_arrival(), sta.timing(nc1).rise.time);
  const auto path = sta.critical_path();
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back().net, nc2);

  // Cross-check against an engine that was *built* with the resize: the
  // incremental update through the shared memo must agree bit for bit.
  StaEngine fresh(design_from(kTwins), models());
  fresh.resize_transistor(si, nmos_edge, 0.5e-6);
  fresh.run();
  for (const auto net : {nb2, nc1, nc2}) {
    const NetTiming& ti = sta.timing(net);
    const NetTiming& tf = fresh.timing(net);
    EXPECT_EQ(ti.rise.time, tf.rise.time) << "net " << net;
    EXPECT_EQ(ti.rise.slew, tf.rise.slew) << "net " << net;
    EXPECT_EQ(ti.fall.time, tf.fall.time) << "net " << net;
    EXPECT_EQ(ti.fall.slew, tf.fall.slew) << "net " << net;
  }
}

TEST(Sta, TimingMissPathIsStableAndInvalid) {
  StaEngine sta(design_from(kChain3), models());

  // Before run(): no net has timing, and the miss path returns the
  // stable invalid record instead of crashing or inserting.
  const netlist::NetId b = net_of(kChain3, "b");
  EXPECT_FALSE(sta.has_timing(b));
  const NetTiming& miss1 = sta.timing(b);
  EXPECT_FALSE(miss1.rise.valid());
  EXPECT_FALSE(miss1.fall.valid());

  sta.run();
  EXPECT_TRUE(sta.has_timing(b));
  EXPECT_TRUE(sta.timing(b).rise.valid());

  // Supply rails never receive timing; the miss record is the same
  // stable object every time (a reference a caller may hold).
  const netlist::NetId vdd = net_of(kChain3, "vdd");
  EXPECT_FALSE(sta.has_timing(vdd));
  const NetTiming& miss2 = sta.timing(vdd);
  const NetTiming& miss3 = sta.timing(vdd);
  EXPECT_EQ(&miss2, &miss3);
  EXPECT_FALSE(miss2.rise.valid());
  EXPECT_FALSE(miss2.fall.valid());
}

TEST(Sta, CombinationalCycleWarnsAndSurvives) {
  // Cross-coupled inverters (an SR-latch core) form a stage cycle; the
  // engine must warn and keep analyzing the acyclic part.
  constexpr const char* kLatch = R"(latch plus chain
vdd vdd 0 3.3
vin a 0 0
mp1 b a vdd vdd pmos w=2u l=0.35u
mn1 b a 0 0 nmos w=1u l=0.35u
* cross-coupled pair q/qb
mp2 q qb vdd vdd pmos w=2u l=0.35u
mn2 q qb 0 0 nmos w=1u l=0.35u
mp3 qb q vdd vdd pmos w=2u l=0.35u
mn3 qb q 0 0 nmos w=1u l=0.35u
* q also driven... keep the loop pure; chain output from b
mp4 c b vdd vdd pmos w=2u l=0.35u
mn4 c b 0 0 nmos w=1u l=0.35u
cl c 0 10f
)";
  StaEngine sta(design_from(kLatch), models());
  sta.run();
  EXPECT_FALSE(sta.warnings().empty());
  // The acyclic chain still times.
  const auto nc = net_of(kLatch, "c");
  EXPECT_TRUE(sta.timing(nc).rise.valid() || sta.timing(nc).fall.valid());
}

}  // namespace
}  // namespace qwm::sta
