// Degraded results and the stage-eval memo cache: a result produced by
// the fallback ladder must never be committed to the cache — otherwise a
// later nominal run would serve the fallback answer as a nominal cached
// hit. Degradation must also propagate transitively through arrivals and
// clear once the cone is re-evaluated nominally, and the flags must be
// identical across worker-lane counts.
#include "qwm/sta/sta.h"

#include <gtest/gtest.h>

#include "../common/test_models.h"
#include "qwm/netlist/parser.h"
#include "qwm/support/fault_injection.h"

namespace qwm::sta {
namespace {

using support::FaultPlan;
using support::FaultRule;
using support::FaultSite;
using support::ScopedFaultPlan;

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

/// Two electrically identical inverters off one input: same memo key, so
/// one is the owner and the other a follower (or hit) in nominal runs.
constexpr const char* kTwins = R"(twin inverters
vdd vdd 0 3.3
vin a 0 pwl(0 0 10p 3.3)
mp1 b a vdd vdd pmos w=2u l=0.35u
mn1 b a 0 0 nmos w=1u l=0.35u
mp2 c a vdd vdd pmos w=2u l=0.35u
mn2 c a 0 0 nmos w=1u l=0.35u
cb b 0 30f
cc c 0 30f
)";

constexpr const char* kChain2 = R"(two-stage chain
vdd vdd 0 3.3
vin a 0 pwl(0 0 10p 3.3)
mp1 b a vdd vdd pmos w=2u l=0.35u
mn1 b a 0 0 nmos w=1u l=0.35u
mp2 d b vdd vdd pmos w=2u l=0.35u
mn2 d b 0 0 nmos w=1u l=0.35u
cl d 0 30f
)";

FaultPlan stall_plan() {
  FaultPlan plan;
  FaultRule stall;
  stall.site = FaultSite::kNewtonStall;
  stall.max_rung = 0;  // every nominal solve fails; damped rung recovers
  plan.add(stall);
  return plan;
}

netlist::NetId net(const netlist::FlatNetlist& nl, const char* name) {
  const auto id = nl.find_net(name);
  EXPECT_TRUE(id.has_value()) << name;
  return *id;
}

TEST(DegradedCache, FallbackResultsAreNeverMemoized) {
  const netlist::ParseResult parsed = netlist::parse_spice(kTwins);
  ASSERT_TRUE(parsed.ok());
  auto design = circuit::partition_netlist(parsed.netlist, models());

  StaEngine sta(design, models());
  {
    ScopedFaultPlan armed{stall_plan()};
    sta.run();
  }
  const auto b = net(parsed.netlist, "b");
  const auto c = net(parsed.netlist, "c");
  EXPECT_TRUE(sta.timing(b).fall.degraded);
  EXPECT_TRUE(sta.timing(c).fall.degraded);
  // Identical twins share one (degraded) evaluation within the level,
  // but nothing reaches the cache.
  EXPECT_EQ(sta.timing(b).fall.time, sta.timing(c).fall.time);
  EXPECT_EQ(sta.cache_entries(), 0u);
  EXPECT_GT(sta.qwm_stats().fallback_counts[core::kRungDamped], 0u);

  // Disarmed re-run: must recompute nominally, not serve a stale
  // degraded hit — the regression this test pins down.
  sta.run();
  EXPECT_FALSE(sta.timing(b).fall.degraded);
  EXPECT_FALSE(sta.timing(c).fall.degraded);
  EXPECT_GT(sta.cache_entries(), 0u);

  StaEngine fresh(design, models());
  fresh.run();
  EXPECT_EQ(sta.timing(b).fall.time, fresh.timing(b).fall.time);
  EXPECT_EQ(sta.timing(c).fall.time, fresh.timing(c).fall.time);
}

TEST(DegradedCache, DegradationPropagatesTransitivelyAndClears) {
  const netlist::ParseResult parsed = netlist::parse_spice(kChain2);
  ASSERT_TRUE(parsed.ok());
  auto design = circuit::partition_netlist(parsed.netlist, models());

  StaEngine sta(design, models());
  {
    ScopedFaultPlan armed{stall_plan()};
    sta.run();
  }
  const auto b = net(parsed.netlist, "b");
  const auto d = net(parsed.netlist, "d");
  ASSERT_TRUE(sta.timing(b).fall.degraded);
  ASSERT_TRUE(sta.timing(d).rise.degraded);

  // Re-evaluate only the second stage (nominally): its own evaluation is
  // clean, but its trigger — stage 1's arrival — is still degraded, so
  // the output arrival stays degraded. Stage index of d's driver:
  int stage_d = -1;
  for (std::size_t s = 0; s < design.stages.size(); ++s)
    for (netlist::NetId n : design.stages[s].output_nets)
      if (n == d) stage_d = static_cast<int>(s);
  ASSERT_GE(stage_d, 0);
  sta.resize_transistor(stage_d, 0, 2.2e-6);
  sta.update();
  EXPECT_TRUE(sta.timing(b).fall.degraded);   // untouched upstream
  EXPECT_TRUE(sta.timing(d).rise.degraded);   // transitive via trigger

  // Full nominal re-analysis clears every flag.
  sta.run();
  EXPECT_FALSE(sta.timing(b).fall.degraded);
  EXPECT_FALSE(sta.timing(d).rise.degraded);
}

TEST(DegradedCache, FlagsAndCountsAreLaneInvariant) {
  const netlist::ParseResult parsed = netlist::parse_spice(kTwins);
  ASSERT_TRUE(parsed.ok());
  auto design = circuit::partition_netlist(parsed.netlist, models());
  const auto b = net(parsed.netlist, "b");
  const auto c = net(parsed.netlist, "c");

  double t1 = 0.0;
  std::size_t damped1 = 0;
  for (const int threads : {1, 4}) {
    StaOptions opt;
    opt.threads = threads;
    StaEngine sta(design, models(), opt);
    {
      ScopedFaultPlan armed{stall_plan()};
      sta.run();
    }
    EXPECT_TRUE(sta.timing(b).fall.degraded) << threads;
    EXPECT_TRUE(sta.timing(c).fall.degraded) << threads;
    EXPECT_EQ(sta.cache_entries(), 0u) << threads;
    if (threads == 1) {
      t1 = sta.timing(b).fall.time;
      damped1 = sta.qwm_stats().fallback_counts[core::kRungDamped];
      EXPECT_GT(damped1, 0u);
    } else {
      EXPECT_EQ(sta.timing(b).fall.time, t1);
      EXPECT_EQ(sta.qwm_stats().fallback_counts[core::kRungDamped], damped1);
    }
  }
}

}  // namespace
}  // namespace qwm::sta
