#include "qwm/numeric/roots.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qwm::numeric {
namespace {

TEST(Bisect, FindsRoot) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(r);
  EXPECT_NEAR(*r, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, RejectsBadBracket) {
  EXPECT_FALSE(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0));
}

TEST(QuadraticRoots, TwoRealRoots) {
  const auto r = quadratic_roots(1.0, -5.0, 6.0);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0], 2.0, 1e-12);
  EXPECT_NEAR(r[1], 3.0, 1e-12);
}

TEST(QuadraticRoots, DegeneratesToLinear) {
  const auto r = quadratic_roots(0.0, 2.0, -8.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0], 4.0, 1e-12);
}

TEST(QuadraticRoots, ComplexPairGivesNothing) {
  EXPECT_TRUE(quadratic_roots(1.0, 0.0, 1.0).empty());
}

TEST(QuadraticRoots, CancellationStable) {
  // x^2 - 1e8 x + 1 = 0: roots ~1e8 and ~1e-8; the naive formula loses the
  // small root entirely.
  const auto r = quadratic_roots(1.0, -1e8, 1.0);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NEAR(r[0], 1e-8, 1e-14);
  EXPECT_NEAR(r[1], 1e8, 1.0);
}

TEST(CubicRoots, ThreeRealRoots) {
  // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
  const auto r = cubic_roots_monic(-6.0, 11.0, -6.0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_NEAR(r[0], 1.0, 1e-9);
  EXPECT_NEAR(r[1], 2.0, 1e-9);
  EXPECT_NEAR(r[2], 3.0, 1e-9);
}

TEST(CubicRoots, OneRealRoot) {
  // x^3 - 1 has one real root at 1 (plus a complex pair).
  const auto r = cubic_roots_monic(0.0, 0.0, -1.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0], 1.0, 1e-10);
}

TEST(CubicRoots, TripleRoot) {
  // (x-2)^3 = x^3 - 6x^2 + 12x - 8.
  const auto r = cubic_roots_monic(-6.0, 12.0, -8.0);
  ASSERT_FALSE(r.empty());
  for (double x : r) EXPECT_NEAR(x, 2.0, 1e-5);
}

}  // namespace
}  // namespace qwm::numeric
