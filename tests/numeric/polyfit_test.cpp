#include "qwm/numeric/polyfit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qwm::numeric {
namespace {

TEST(Polynomial, EvalAndDeriv) {
  const Polynomial p{{1.0, -2.0, 3.0}};  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(p.eval(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.eval(2.0), 9.0);
  EXPECT_DOUBLE_EQ(p.deriv(2.0), -2.0 + 12.0);
  EXPECT_EQ(p.degree(), 2u);
}

TEST(Polyfit, RecoversExactQuadratic) {
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    const double xi = 0.1 * i;
    x.push_back(xi);
    y.push_back(2.0 - 1.5 * xi + 0.5 * xi * xi);
  }
  const Polynomial p = polyfit(x, y, 2);
  ASSERT_EQ(p.coeffs.size(), 3u);
  EXPECT_NEAR(p.coeffs[0], 2.0, 1e-9);
  EXPECT_NEAR(p.coeffs[1], -1.5, 1e-9);
  EXPECT_NEAR(p.coeffs[2], 0.5, 1e-9);
  const FitQuality q = fit_quality(p, x, y);
  EXPECT_LT(q.rms_error, 1e-10);
  EXPECT_NEAR(q.r_squared, 1.0, 1e-12);
}

TEST(Polyfit, LinearLeastSquaresOfNoisyData) {
  std::mt19937 rng(3);
  std::normal_distribution<double> noise(0.0, 0.01);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = 0.01 * i;
    x.push_back(xi);
    y.push_back(3.0 * xi + 1.0 + noise(rng));
  }
  const Polynomial p = polyfit(x, y, 1);
  ASSERT_EQ(p.coeffs.size(), 2u);
  EXPECT_NEAR(p.coeffs[0], 1.0, 0.01);
  EXPECT_NEAR(p.coeffs[1], 3.0, 0.02);
  EXPECT_GT(fit_quality(p, x, y).r_squared, 0.99);
}

TEST(Polyfit, RejectsUnderdeterminedInput) {
  EXPECT_TRUE(polyfit({1.0, 2.0}, {1.0, 2.0}, 2).coeffs.empty());
}

TEST(Polyfit, RejectsDegenerateAbscissae) {
  // All x identical: singular normal equations.
  EXPECT_TRUE(
      polyfit({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}, 1).coeffs.empty());
}

TEST(FitQuality, ZeroVarianceData) {
  const Polynomial p{{5.0}};
  const FitQuality q = fit_quality(p, {1.0, 2.0}, {5.0, 5.0});
  EXPECT_DOUBLE_EQ(q.r_squared, 1.0);
  EXPECT_DOUBLE_EQ(q.rms_error, 0.0);
}

}  // namespace
}  // namespace qwm::numeric
