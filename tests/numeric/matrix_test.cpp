#include "qwm/numeric/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qwm::numeric {
namespace {

TEST(Matrix, IdentityMultiply) {
  const Matrix i = Matrix::identity(4);
  const Vector x{1.0, -2.0, 3.0, 0.5};
  EXPECT_EQ(i.multiply(x), x);
}

TEST(Matrix, MultiplyKnown) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector y = a.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const Vector x = lu_solve(a, {5.0, 10.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the initial diagonal; only works with pivoting.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const Vector x = lu_solve(a, {2.0, 3.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  LuFactorization lu(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_TRUE(lu_solve(a, {1.0, 1.0}).empty());
}

TEST(Lu, Determinant) {
  Matrix a(3, 3);
  a(0, 0) = 2;
  a(1, 1) = 3;
  a(2, 2) = 4;
  a(0, 2) = 1;
  LuFactorization lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.determinant(), 24.0, 1e-9);
}

class LuRandom : public ::testing::TestWithParam<int> {};

TEST_P(LuRandom, ResidualIsSmall) {
  const int n = GetParam();
  std::mt19937 rng(42 + n);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  Matrix a(n, n);
  Vector b(n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a(r, c) = d(rng);
    a(r, r) += 4.0;  // diagonally dominant, well conditioned
    b[r] = d(rng);
  }
  const Vector x = lu_solve(a, b);
  ASSERT_EQ(x.size(), static_cast<std::size_t>(n));
  const Vector ax = a.multiply(x);
  for (int r = 0; r < n; ++r) EXPECT_NEAR(ax[r], b[r], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandom,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Norms, InfAndTwo) {
  EXPECT_DOUBLE_EQ(inf_norm({1.0, -3.0, 2.0}), 3.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(inf_norm({}), 0.0);
}

}  // namespace
}  // namespace qwm::numeric
