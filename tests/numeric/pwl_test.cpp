#include "qwm/numeric/pwl.h"

#include <gtest/gtest.h>

namespace qwm::numeric {
namespace {

TEST(Pwl, EvalInterpolatesAndExtrapolatesFlat) {
  PwlWaveform w({0.0, 1.0, 2.0}, {0.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(w.eval(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.eval(0.5), 5.0);
  EXPECT_DOUBLE_EQ(w.eval(1.5), 10.0);
  EXPECT_DOUBLE_EQ(w.eval(5.0), 10.0);
  EXPECT_DOUBLE_EQ(w.slope(0.5), 10.0);
  EXPECT_DOUBLE_EQ(w.slope(5.0), 0.0);
}

TEST(Pwl, StepAndRampFactories) {
  const PwlWaveform s = PwlWaveform::step(1e-9, 0.0, 3.3);
  EXPECT_DOUBLE_EQ(s.eval(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(s.eval(2e-9), 3.3);
  const PwlWaveform r = PwlWaveform::ramp(1e-9, 2e-9, 0.0, 3.3);
  EXPECT_DOUBLE_EQ(r.eval(2e-9), 1.65);
}

TEST(Pwl, CrossingDirectional) {
  PwlWaveform w({0.0, 1.0, 2.0, 3.0}, {0.0, 2.0, 0.0, 2.0});
  const auto up = w.crossing(1.0, 0.0, true);
  ASSERT_TRUE(up);
  EXPECT_DOUBLE_EQ(*up, 0.5);
  const auto down = w.crossing(1.0, 0.0, false);
  ASSERT_TRUE(down);
  EXPECT_DOUBLE_EQ(*down, 1.5);
  const auto later_up = w.crossing(1.0, 1.6, true);
  ASSERT_TRUE(later_up);
  EXPECT_DOUBLE_EQ(*later_up, 2.5);
  EXPECT_FALSE(w.crossing(5.0));
}

TEST(Pwl, AppendEnforcesMonotonicTime) {
  PwlWaveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 2.0);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.last_value(), 2.0);
}

TEST(Pwl, MaxDifference) {
  PwlWaveform a({0.0, 1.0}, {0.0, 1.0});
  PwlWaveform b({0.0, 1.0}, {0.0, 2.0});
  EXPECT_DOUBLE_EQ(PwlWaveform::max_difference(a, b, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(PwlWaveform::max_difference(a, a, 0.0, 1.0), 0.0);
}

TEST(Pwl, PropagationDelayAndSlew) {
  const PwlWaveform in = PwlWaveform::ramp(0.0, 1.0, 0.0, 1.0);
  const PwlWaveform out = PwlWaveform::ramp(1.0, 2.0, 1.0, 0.0);
  // in crosses 0.5 rising at t = 0.5; out crosses 0.5 falling at t = 2.0.
  const auto d = propagation_delay(in, out, 0.5, true, false);
  ASSERT_TRUE(d);
  EXPECT_DOUBLE_EQ(*d, 1.5);

  const auto tt = transition_time(out, 0.1, 0.9, false);
  ASSERT_TRUE(tt);
  EXPECT_NEAR(*tt, 2.0 * 0.8, 1e-12);
}

TEST(Pwl, Resample) {
  PwlWaveform w({0.0, 2.0}, {0.0, 4.0});
  const PwlWaveform r = w.resample(0.0, 2.0, 5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r.value(2), 2.0);
}

}  // namespace
}  // namespace qwm::numeric
