#include "qwm/numeric/tridiagonal.h"

#include <gtest/gtest.h>

#include <random>

#include "qwm/numeric/matrix.h"
#include "qwm/numeric/sherman_morrison.h"

namespace qwm::numeric {
namespace {

Tridiagonal random_dominant(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  Tridiagonal t(n);
  for (int i = 0; i < n; ++i) {
    if (i > 0) t.lower[i] = d(rng);
    if (i + 1 < n) t.upper[i] = d(rng);
    t.diag[i] = 3.0 + std::abs(d(rng));
  }
  return t;
}

TEST(Thomas, Solves1x1) {
  Tridiagonal t(1);
  t.diag[0] = 4.0;
  const auto x = thomas_solve(t, {8.0});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Thomas, KnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3].
  Tridiagonal t(3);
  t.diag = {2, 2, 2};
  t.lower = {0, 1, 1};
  t.upper = {1, 1, 0};
  const auto x = thomas_solve(t, {4.0, 8.0, 8.0});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Thomas, FailsOnSingular) {
  Tridiagonal t(2);
  t.diag = {0.0, 1.0};
  std::vector<double> x;
  EXPECT_FALSE(thomas_solve(t, {1.0, 1.0}, x));
}

class ThomasRandom : public ::testing::TestWithParam<int> {};

TEST_P(ThomasRandom, MatchesMultiply) {
  const int n = GetParam();
  const Tridiagonal t = random_dominant(n, 7 * n + 1);
  std::mt19937 rng(n);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = d(rng);
  const auto b = t.multiply(x_true);
  const auto x = thomas_solve(t, b);
  ASSERT_EQ(x.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThomasRandom,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 17, 33, 101));

TEST(ShermanMorrison, MatchesDenseSolve) {
  const int n = 6;
  const Tridiagonal t = random_dominant(n, 99);
  std::vector<double> u(n), v(n, 0.0), b(n);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = 0; i < n; ++i) {
    u[i] = d(rng);
    b[i] = d(rng);
  }
  v[n - 1] = 1.0;  // the QWM shape: dense last column

  std::vector<double> x;
  ASSERT_TRUE(sherman_morrison_solve(t, u, v, b, x));

  // Dense reference.
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = t.diag[i];
    if (i > 0) a(i, i - 1) = t.lower[i];
    if (i + 1 < n) a(i, i + 1) = t.upper[i];
    for (int j = 0; j < n; ++j) a(i, j) += u[i] * v[j];
  }
  const Vector x_ref = lu_solve(a, b);
  ASSERT_EQ(x_ref.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-9);
}

TEST(ShermanMorrison, RejectsSingularUpdate) {
  // Choose u, v so that 1 + v^T A^{-1} u = 0.
  Tridiagonal t(1);
  t.diag[0] = 2.0;
  // A^{-1} u = u/2; v*u/2 = -1 -> u = -4, v = 0.5.
  std::vector<double> x;
  EXPECT_FALSE(sherman_morrison_solve(t, {-4.0}, {0.5}, {1.0}, x));
}

}  // namespace
}  // namespace qwm::numeric
