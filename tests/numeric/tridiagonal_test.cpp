#include "qwm/numeric/tridiagonal.h"

#include <gtest/gtest.h>

#include <random>

#include "qwm/numeric/matrix.h"
#include "qwm/numeric/sherman_morrison.h"

namespace qwm::numeric {
namespace {

Tridiagonal random_dominant(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  Tridiagonal t(n);
  for (int i = 0; i < n; ++i) {
    if (i > 0) t.lower[i] = d(rng);
    if (i + 1 < n) t.upper[i] = d(rng);
    t.diag[i] = 3.0 + std::abs(d(rng));
  }
  return t;
}

TEST(Thomas, Solves1x1) {
  Tridiagonal t(1);
  t.diag[0] = 4.0;
  const auto x = thomas_solve(t, {8.0});
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Thomas, KnownSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3].
  Tridiagonal t(3);
  t.diag = {2, 2, 2};
  t.lower = {0, 1, 1};
  t.upper = {1, 1, 0};
  const auto x = thomas_solve(t, {4.0, 8.0, 8.0});
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Thomas, FailsOnSingular) {
  Tridiagonal t(2);
  t.diag = {0.0, 1.0};
  std::vector<double> x;
  EXPECT_FALSE(thomas_solve(t, {1.0, 1.0}, x));
}

class ThomasRandom : public ::testing::TestWithParam<int> {};

TEST_P(ThomasRandom, MatchesMultiply) {
  const int n = GetParam();
  const Tridiagonal t = random_dominant(n, 7 * n + 1);
  std::mt19937 rng(n);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  std::vector<double> x_true(n);
  for (double& v : x_true) v = d(rng);
  const auto b = t.multiply(x_true);
  const auto x = thomas_solve(t, b);
  ASSERT_EQ(x.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThomasRandom,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 17, 33, 101));

TEST(ShermanMorrison, MatchesDenseSolve) {
  const int n = 6;
  const Tridiagonal t = random_dominant(n, 99);
  std::vector<double> u(n), v(n, 0.0), b(n);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int i = 0; i < n; ++i) {
    u[i] = d(rng);
    b[i] = d(rng);
  }
  v[n - 1] = 1.0;  // the QWM shape: dense last column

  std::vector<double> x;
  ASSERT_TRUE(sherman_morrison_solve(t, u, v, b, x));

  // Dense reference.
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = t.diag[i];
    if (i > 0) a(i, i - 1) = t.lower[i];
    if (i + 1 < n) a(i, i + 1) = t.upper[i];
    for (int j = 0; j < n; ++j) a(i, j) += u[i] * v[j];
  }
  const Vector x_ref = lu_solve(a, b);
  ASSERT_EQ(x_ref.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-9);
}

TEST(ShermanMorrison, RejectsSingularUpdate) {
  // Choose u, v so that 1 + v^T A^{-1} u = 0.
  Tridiagonal t(1);
  t.diag[0] = 2.0;
  // A^{-1} u = u/2; v*u/2 = -1 -> u = -4, v = 0.5.
  std::vector<double> x;
  EXPECT_FALSE(sherman_morrison_solve(t, {-4.0}, {0.5}, {1.0}, x));
}

/// Dense embedding of A (+ optional u v^T) for LU reference solves.
Matrix dense_of(const Tridiagonal& t, const std::vector<double>* u = nullptr,
                const std::vector<double>* v = nullptr) {
  const int n = static_cast<int>(t.size());
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = t.diag[i];
    if (i > 0) a(i, i - 1) = t.lower[i];
    if (i + 1 < n) a(i, i + 1) = t.upper[i];
    if (u && v)
      for (int j = 0; j < n; ++j) a(i, j) += (*u)[i] * (*v)[j];
  }
  return a;
}

class TridiagonalVsDense : public ::testing::TestWithParam<int> {};

TEST_P(TridiagonalVsDense, ThomasMatchesDenseLu) {
  const int n = GetParam();
  for (unsigned seed = 0; seed < 8; ++seed) {
    const Tridiagonal t = random_dominant(n, 1000 * n + seed);
    std::mt19937 rng(seed + 13);
    std::uniform_real_distribution<double> d(-2.0, 2.0);
    std::vector<double> b(n);
    for (double& bi : b) bi = d(rng);

    const auto x = thomas_solve(t, b);
    const Vector x_ref = lu_solve(dense_of(t), b);
    ASSERT_EQ(x.size(), static_cast<std::size_t>(n));
    ASSERT_EQ(x_ref.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-10);
  }
}

TEST_P(TridiagonalVsDense, ShermanMorrisonMatchesDenseLuRandomUv) {
  // Fully dense random u, v (not just the QWM last-column shape).
  const int n = GetParam();
  for (unsigned seed = 0; seed < 8; ++seed) {
    const Tridiagonal t = random_dominant(n, 2000 * n + seed);
    std::mt19937 rng(seed + 31);
    // Small rank-one magnitudes keep 1 + v'A^{-1}u away from zero, the
    // well-conditioned regime this test pins down.
    std::uniform_real_distribution<double> d(-0.5, 0.5);
    std::vector<double> u(n), v(n), b(n);
    for (int i = 0; i < n; ++i) {
      u[i] = d(rng);
      v[i] = d(rng);
      b[i] = 4.0 * d(rng);
    }

    std::vector<double> x;
    ASSERT_TRUE(sherman_morrison_solve(t, u, v, b, x));
    const Vector x_ref = lu_solve(dense_of(t, &u, &v), b);
    ASSERT_EQ(x_ref.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagonalVsDense,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 55));

TEST(ShermanMorrison, NearSingularUpdateStaysAccurate) {
  // Scale u so the Sherman–Morrison denominator 1 + v'A^{-1}u equals a
  // chosen eps: det(A + uv') = det(A) * eps, so the updated matrix is
  // near-singular even though A itself is well-conditioned. Both the
  // O(n) formula and dense LU lose ~1/eps digits; they must still agree
  // to far better than that bound.
  for (const double eps : {1e-4, 1e-6, 1e-8}) {
    SCOPED_TRACE(eps);
    for (int n : {3, 7, 12}) {
      SCOPED_TRACE(n);
      const Tridiagonal t = random_dominant(n, 42 * n);
      std::mt19937 rng(n);
      std::uniform_real_distribution<double> d(-1.0, 1.0);
      std::vector<double> u0(n), v(n), b(n);
      for (int i = 0; i < n; ++i) {
        u0[i] = d(rng);
        v[i] = d(rng);
        b[i] = d(rng);
      }
      std::vector<double> z0;
      ASSERT_TRUE(thomas_solve(t, u0, z0));
      double vz0 = 0.0;
      for (int i = 0; i < n; ++i) vz0 += v[i] * z0[i];
      ASSERT_NE(vz0, 0.0);
      const double c = (eps - 1.0) / vz0;
      std::vector<double> u(n);
      for (int i = 0; i < n; ++i) u[i] = c * u0[i];

      std::vector<double> x;
      ASSERT_TRUE(sherman_morrison_solve(t, u, v, b, x));
      const Vector x_ref = lu_solve(dense_of(t, &u, &v), b);
      ASSERT_EQ(x_ref.size(), static_cast<std::size_t>(n));
      double norm = 0.0;
      for (int i = 0; i < n; ++i) norm = std::max(norm, std::abs(x_ref[i]));
      ASSERT_GT(norm, 0.0);
      // Agreement relative to the (large, ~1/eps) solution magnitude.
      // Both solvers lose ~1/eps digits; measured agreement sits around
      // 1e-12/eps, so 1e-10/eps keeps two decades of headroom.
      for (int i = 0; i < n; ++i)
        EXPECT_NEAR(x[i] / norm, x_ref[i] / norm, 1e-10 / eps)
            << "component " << i;
    }
  }
}

}  // namespace
}  // namespace qwm::numeric
