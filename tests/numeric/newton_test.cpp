#include "qwm/numeric/newton.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qwm::numeric {
namespace {

TEST(Newton, SolvesScalarQuadratic) {
  // x^2 - 4 = 0 from x0 = 3.
  const ResidualFn f = [](const Vector& x, Vector& out) {
    out = {x[0] * x[0] - 4.0};
    return true;
  };
  const JacobianFn j = [](const Vector& x, Matrix& out) {
    out.resize(1, 1);
    out(0, 0) = 2.0 * x[0];
    return true;
  };
  Vector x{3.0};
  const NewtonResult r = newton_solve_dense(f, j, x);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-8);
}

TEST(Newton, Solves2dNonlinear) {
  // x^2 + y^2 = 25, x - y = 1 -> (4, 3).
  const ResidualFn f = [](const Vector& x, Vector& out) {
    out = {x[0] * x[0] + x[1] * x[1] - 25.0, x[0] - x[1] - 1.0};
    return true;
  };
  const JacobianFn j = [](const Vector& x, Matrix& out) {
    out.resize(2, 2);
    out(0, 0) = 2 * x[0];
    out(0, 1) = 2 * x[1];
    out(1, 0) = 1;
    out(1, 1) = -1;
    return true;
  };
  Vector x{5.0, 1.0};
  const NewtonResult r = newton_solve_dense(f, j, x);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 4.0, 1e-8);
  EXPECT_NEAR(x[1], 3.0, 1e-8);
}

TEST(Newton, BacktracksOnOvershoot) {
  // atan has a tiny convergence basin for plain Newton; damping rescues it.
  const ResidualFn f = [](const Vector& x, Vector& out) {
    out = {std::atan(x[0])};
    return true;
  };
  const JacobianFn j = [](const Vector& x, Matrix& out) {
    out.resize(1, 1);
    out(0, 0) = 1.0 / (1.0 + x[0] * x[0]);
    return true;
  };
  Vector x{3.0};  // plain Newton diverges from here
  NewtonOptions opt;
  opt.max_iterations = 100;
  const NewtonResult r = newton_solve_dense(f, j, x, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 0.0, 1e-7);
}

TEST(Newton, ReportsSingularJacobian) {
  const ResidualFn f = [](const Vector& x, Vector& out) {
    out = {x[0] * 0.0 + 1.0};
    return true;
  };
  const JacobianFn j = [](const Vector&, Matrix& out) {
    out.resize(1, 1);
    out(0, 0) = 0.0;
    return true;
  };
  Vector x{1.0};
  const NewtonResult r = newton_solve_dense(f, j, x);
  EXPECT_FALSE(r.converged);
}

TEST(Newton, MaxStepClamp) {
  const ResidualFn f = [](const Vector& x, Vector& out) {
    out = {x[0] - 100.0};
    return true;
  };
  const JacobianFn j = [](const Vector&, Matrix& out) {
    out.resize(1, 1);
    out(0, 0) = 1.0;
    return true;
  };
  Vector x{0.0};
  NewtonOptions opt;
  opt.max_step = 1.0;
  opt.max_iterations = 300;
  opt.max_backtracks = 0;
  const NewtonResult r = newton_solve_dense(f, j, x, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 100.0, 1e-6);
  EXPECT_GE(r.iterations, 99);  // clamped to 1 V-equivalents per step
}

TEST(FiniteDifferenceJacobian, MatchesAnalytic) {
  const ResidualFn f = [](const Vector& x, Vector& out) {
    out = {x[0] * x[0] + 2.0 * x[1], std::sin(x[0]) + x[1] * x[1]};
    return true;
  };
  const Vector x{0.7, -0.3};
  const Matrix j = finite_difference_jacobian(f, x);
  EXPECT_NEAR(j(0, 0), 2 * 0.7, 1e-5);
  EXPECT_NEAR(j(0, 1), 2.0, 1e-5);
  EXPECT_NEAR(j(1, 0), std::cos(0.7), 1e-5);
  EXPECT_NEAR(j(1, 1), -0.6, 1e-5);
}

}  // namespace
}  // namespace qwm::numeric
