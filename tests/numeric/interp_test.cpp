#include "qwm/numeric/interp.h"

#include <gtest/gtest.h>

namespace qwm::numeric {
namespace {

TEST(UniformAxis, LocateInteriorAndClamp) {
  UniformAxis a{0.0, 0.5, 5};  // 0, 0.5, 1.0, 1.5, 2.0
  std::size_t i;
  double f;
  a.locate(0.75, i, f);
  EXPECT_EQ(i, 1u);
  EXPECT_NEAR(f, 0.5, 1e-12);
  a.locate(-1.0, i, f);
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(f, 0.0);
  a.locate(5.0, i, f);
  EXPECT_EQ(i, 3u);
  EXPECT_EQ(f, 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);
}

TEST(LinearTable1D, InterpolatesLinearFunctionExactly) {
  UniformAxis a{0.0, 1.0, 4};
  LinearTable1D t(a, {0.0, 2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(t.eval(1.5), 3.0);
  EXPECT_DOUBLE_EQ(t.deriv(1.5), 2.0);
  EXPECT_DOUBLE_EQ(t.eval(-5.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(t.eval(99.0), 6.0);   // clamped
  EXPECT_DOUBLE_EQ(t.deriv(99.0), 0.0);  // outside: flat
}

TEST(BilinearTable2D, ReproducesBilinearFunction) {
  // f(x, y) = 2x + 3y + x*y is exactly representable by bilinear interp
  // on any rectangle grid.
  UniformAxis ax{0.0, 0.5, 5}, ay{1.0, 0.25, 5};
  std::vector<double> vals;
  for (std::size_t i = 0; i < ax.n; ++i)
    for (std::size_t j = 0; j < ay.n; ++j) {
      const double x = ax.coord(i), y = ay.coord(j);
      vals.push_back(2 * x + 3 * y + x * y);
    }
  BilinearTable2D t(ax, ay, vals);
  for (double x : {0.1, 0.77, 1.9}) {
    for (double y : {1.05, 1.5, 1.99}) {
      EXPECT_NEAR(t.eval(x, y), 2 * x + 3 * y + x * y, 1e-12);
      EXPECT_NEAR(t.deriv0(x, y), 2 + y, 1e-9);
      EXPECT_NEAR(t.deriv1(x, y), 3 + x, 1e-9);
    }
  }
}

TEST(BilinearTable2D, ClampsOutsideDomain) {
  UniformAxis ax{0.0, 1.0, 2}, ay{0.0, 1.0, 2};
  BilinearTable2D t(ax, ay, {0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.eval(-1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(t.eval(9.0, 9.0), 3.0);
}

}  // namespace
}  // namespace qwm::numeric
