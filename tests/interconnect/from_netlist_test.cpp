#include "qwm/interconnect/from_netlist.h"

#include <gtest/gtest.h>

#include "qwm/interconnect/moments.h"
#include "qwm/netlist/parser.h"

namespace qwm::interconnect {
namespace {

TEST(FromNetlist, ChainBecomesLine) {
  const auto r = netlist::parse_spice(
      "t\nr1 in a 100\nr2 a b 200\nc1 a 0 1p\nc2 b 0 2p\n");
  ASSERT_TRUE(r.ok());
  const auto root = *r.netlist.find_net("in");
  const auto t = rc_tree_from_netlist(r.netlist, root);
  ASSERT_TRUE(t);
  EXPECT_EQ(t->tree.size(), 3u);
  EXPECT_NEAR(t->tree.total_cap(), 3e-12, 1e-20);

  // Elmore at the far node: 100*(1p+2p) + 200*2p = 700 ps.
  const auto d = elmore_delays(t->tree);
  const auto far = t->node_of(*r.netlist.find_net("b"));
  ASSERT_TRUE(far);
  EXPECT_NEAR(d[*far], 700e-12, 1e-15);
}

TEST(FromNetlist, BranchingTree) {
  const auto r = netlist::parse_spice(
      "t\nr1 in a 100\nr2 a b 50\nr3 a c 80\nc1 b 0 1p\nc2 c 0 1p\n");
  ASSERT_TRUE(r.ok());
  const auto t =
      rc_tree_from_netlist(r.netlist, *r.netlist.find_net("in"));
  ASSERT_TRUE(t);
  EXPECT_EQ(t->tree.size(), 4u);
  const auto d = elmore_delays(t->tree);
  const auto b = t->node_of(*r.netlist.find_net("b"));
  ASSERT_TRUE(b);
  EXPECT_NEAR(d[*b], 100e-12 * 2 + 50e-12, 1e-15);  // 100*(2p)+50*1p
}

TEST(FromNetlist, LoopRejected) {
  const auto r = netlist::parse_spice(
      "t\nr1 in a 100\nr2 a b 100\nr3 b in 100\nc1 a 0 1p\n");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(
      rc_tree_from_netlist(r.netlist, *r.netlist.find_net("in")));
}

TEST(FromNetlist, CouplingCapSplitWithWarning) {
  const auto r = netlist::parse_spice(
      "t\nr1 in a 100\nr2 a b 100\ncc a b 2p\n");
  ASSERT_TRUE(r.ok());
  std::vector<std::string> warnings;
  const auto t =
      rc_tree_from_netlist(r.netlist, *r.netlist.find_net("in"), &warnings);
  ASSERT_TRUE(t);
  EXPECT_FALSE(warnings.empty());
  EXPECT_NEAR(t->tree.total_cap(), 2e-12, 1e-20);
}

TEST(FromNetlist, GroundResistorIgnoredWithWarning) {
  const auto r = netlist::parse_spice(
      "t\nr1 in a 100\nrleak a 0 1meg\nc1 a 0 1p\n");
  ASSERT_TRUE(r.ok());
  std::vector<std::string> warnings;
  const auto t =
      rc_tree_from_netlist(r.netlist, *r.netlist.find_net("in"), &warnings);
  ASSERT_TRUE(t);
  EXPECT_EQ(t->tree.size(), 2u);
  EXPECT_FALSE(warnings.empty());
}

}  // namespace
}  // namespace qwm::interconnect
