#include <gtest/gtest.h>

#include <cmath>

#include "qwm/interconnect/awe.h"
#include "qwm/interconnect/moments.h"
#include "qwm/interconnect/pi_model.h"
#include "qwm/interconnect/rc_tree.h"

namespace qwm::interconnect {
namespace {

TEST(RcTree, UniformLineStructure) {
  int far = -1;
  const RcTree t = RcTree::uniform_line(1000.0, 1e-12, 4, &far);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(far, 4);
  EXPECT_NEAR(t.total_cap(), 1e-12, 1e-24);
}

TEST(Elmore, SingleLumpIsRC) {
  RcTree t;
  const int n = t.add_node(0, 1000.0, 2e-12);
  const auto d = elmore_delays(t);
  EXPECT_NEAR(d[n], 1000.0 * 2e-12, 1e-18);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(Elmore, DistributedLineApproachesHalfRC) {
  // Elmore delay of a distributed RC line tends to RC/2 as segments grow.
  int far = -1;
  const RcTree t = RcTree::uniform_line(1000.0, 1e-12, 200, &far);
  const auto d = elmore_delays(t);
  EXPECT_NEAR(d[far], 0.5 * 1000.0 * 1e-12, 0.01 * 0.5e-9);
}

TEST(Elmore, BranchesShareUpstreamResistance) {
  // Root -- R1 -- a, with two leaves b, c under a. Elmore(b) includes R1
  // carrying all downstream cap.
  RcTree t;
  const int a = t.add_node(0, 100.0, 1e-15);
  const int b = t.add_node(a, 200.0, 2e-15);
  const int c = t.add_node(a, 300.0, 3e-15);
  const auto d = elmore_delays(t);
  const double expect_b = 100.0 * (1e-15 + 2e-15 + 3e-15) + 200.0 * 2e-15;
  const double expect_c = 100.0 * 6e-15 + 300.0 * 3e-15;
  EXPECT_NEAR(d[b], expect_b, 1e-20);
  EXPECT_NEAR(d[c], expect_c, 1e-20);
}

TEST(Moments, FirstMomentIsMinusElmore) {
  int far = -1;
  const RcTree t = RcTree::uniform_line(500.0, 2e-13, 10, &far);
  const auto m = voltage_moments(t, 2);
  const auto d = elmore_delays(t);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_NEAR(m[1][i], -d[i], 1e-22);
  // Second moments are positive for RC trees.
  EXPECT_GT(m[2][far], 0.0);
}

TEST(Awe, SingleLumpExact) {
  // One-pole circuit: AWE must recover p = -1/RC exactly.
  RcTree t;
  const int n = t.add_node(0, 1000.0, 1e-12);
  const auto m = voltage_moments(t, 4);
  std::vector<double> mom{1.0, m[1][n], m[2][n], m[3][n]};
  const auto fit = awe_reduce(mom, 2);
  ASSERT_TRUE(fit);
  // The exact transfer function has a single pole; either the order-2 fit
  // degenerates or both poles coincide numerically with -1/RC dominating.
  const double tau = 1000.0 * 1e-12;
  double closest = 1e300;
  for (double p : fit->poles) closest = std::min(closest, std::abs(p + 1.0 / tau));
  EXPECT_LT(closest, 1e-3 / tau);
}

TEST(Awe, StepResponseMatchesAnalyticRC) {
  RcTree t;
  const int n = t.add_node(0, 1000.0, 1e-12);
  const auto m = voltage_moments(t, 2);
  const auto fit = awe_reduce({1.0, m[1][n], m[2][n]}, 1);
  ASSERT_TRUE(fit);
  const double tau = 1e-9;
  for (double x : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(fit->step_value(x * tau), 1.0 - std::exp(-x), 1e-9);
  }
  const auto t50 = fit->step_crossing(0.5);
  ASSERT_TRUE(t50);
  EXPECT_NEAR(*t50, tau * std::log(2.0), 1e-12);
}

TEST(Awe, LineDelayCloseToTwoPoleEstimate) {
  // 50% delay of a distributed line is ~0.38 RC (vs Elmore 0.5 RC); a
  // 2-3 pole AWE should land near the true value.
  int far = -1;
  const RcTree t = RcTree::uniform_line(1000.0, 1e-12, 100, &far);
  const auto m = voltage_moments(t, 6);
  std::vector<double> mom{1.0};
  for (int k = 1; k <= 5; ++k) mom.push_back(m[k][far]);
  const auto fit = awe_reduce(mom, 3);
  ASSERT_TRUE(fit);
  const auto t50 = fit->step_crossing(0.5);
  ASSERT_TRUE(t50);
  EXPECT_NEAR(*t50, 0.38 * 1e-9, 0.05 * 1e-9);
}

TEST(Awe, RejectsGarbageMoments) {
  // Positive first moment implies an unstable pole: nothing usable.
  EXPECT_FALSE(awe_reduce({1.0, +1e-9}, 1));
}

TEST(PiModel, MatchesAdmittanceMomentsOfLine) {
  const RcTree t = RcTree::uniform_line(800.0, 5e-13, 50);
  const PiModel pi = reduce_to_pi(t);
  EXPECT_NEAR(pi.total_cap(), 5e-13, 1e-18);
  EXPECT_GT(pi.r, 0.0);
  EXPECT_GT(pi.c_far, 0.0);
  // Verify the first three admittance moments are reproduced:
  //   y2 = -R C_far^2, y3 = R^2 C_far^3.
  const auto y = admittance_moments(t);
  EXPECT_NEAR(-pi.r * pi.c_far * pi.c_far, y.y2, 1e-6 * std::abs(y.y2));
  EXPECT_NEAR(pi.r * pi.r * pi.c_far * pi.c_far * pi.c_far, y.y3,
              1e-6 * y.y3);
}

TEST(PiModel, UniformLineExactValues) {
  // Distributed uniform line (unit R, C): y2 = -C^2 R/3, y3 = 2 C^3 R^2/15
  // (from the moment recurrence in closed form), so
  // C_far = y2^2 / y3 = (1/9)/(2/15) C = 5C/6.
  const RcTree t = RcTree::uniform_line(1000.0, 1e-12, 200);
  const PiModel pi = reduce_to_pi(t);
  EXPECT_NEAR(pi.c_far / 1e-12, 5.0 / 6.0, 0.01);
  EXPECT_NEAR(pi.c_near / 1e-12, 1.0 / 6.0, 0.01);
}

TEST(PiModel, DegeneratesToLumpForZeroResistance) {
  RcTree t;
  t.add_cap(0, 3e-13);
  const PiModel pi = reduce_to_pi(t);
  EXPECT_NEAR(pi.c_near, 3e-13, 1e-20);
  EXPECT_DOUBLE_EQ(pi.r, 0.0);
}

TEST(PiModel, WireHelper) {
  device::WireParams wp;
  const PiModel pi = wire_pi_model(wp, 0.6e-6, 200e-6);
  EXPECT_GT(pi.total_cap(), 0.0);
  EXPECT_GT(pi.r, 0.0);
}

}  // namespace
}  // namespace qwm::interconnect
