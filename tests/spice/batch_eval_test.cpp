// The batched per-model device evaluation in the transient engine must
// be invisible in the results: for both nonlinear solvers, a simulation
// with batch_device_eval on is bit-identical to one with it off (the SoA
// gather/scatter shares the scalar frame kernel and stamps in circuit
// order), and performs the same number of device-model queries.
#include "qwm/spice/transient.h"

#include <gtest/gtest.h>

#include <vector>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/spice/from_stage.h"

namespace qwm::spice {
namespace {

StageSim sim_for(const circuit::BuiltStage& b) {
  const auto& m = test::models();
  std::vector<numeric::PwlWaveform> inputs;
  for (std::size_t i = 0; i < b.stage.input_count(); ++i) {
    if (static_cast<int>(i) == b.switching_input)
      inputs.push_back(b.output_falls
                           ? numeric::PwlWaveform::step(5e-12, 0.0, m.proc.vdd)
                           : numeric::PwlWaveform::step(5e-12, m.proc.vdd,
                                                        0.0));
    else
      inputs.push_back(
          numeric::PwlWaveform::constant(b.output_falls ? m.proc.vdd : 0.0));
  }
  StageSim sim = circuit_from_stage(b.stage, m.tabular_set(), inputs);
  const double pre = b.output_falls ? m.proc.vdd : 0.0;
  for (std::size_t n = 0; n < b.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (b.stage.is_rail(id)) continue;
    sim.circuit.set_ic(sim.node_of[n], pre);
  }
  return sim;
}

void expect_bitwise_equal_run(const circuit::BuiltStage& b,
                              NonlinearSolver solver) {
  StageSim sim = sim_for(b);
  TransientOptions opt;
  opt.t_stop = 400e-12;
  opt.dt = 1e-12;
  opt.solver = solver;

  opt.batch_device_eval = false;
  const TransientResult scalar = simulate_transient(sim.circuit, opt);
  opt.batch_device_eval = true;
  const TransientResult batched = simulate_transient(sim.circuit, opt);

  ASSERT_TRUE(scalar.stats.converged);
  ASSERT_TRUE(batched.stats.converged);
  // Same solve trajectory: batching regroups the evaluations, it must not
  // add, skip, or reorder any of the numerical work.
  EXPECT_EQ(scalar.stats.steps, batched.stats.steps);
  EXPECT_EQ(scalar.stats.nr_iterations, batched.stats.nr_iterations);
  EXPECT_EQ(scalar.stats.device_evals, batched.stats.device_evals);
  for (std::size_t n = 0; n < scalar.waveforms.size(); ++n)
    for (double t = 0.0; t <= opt.t_stop; t += 10e-12)
      EXPECT_EQ(scalar.waveforms[n].eval(t), batched.waveforms[n].eval(t))
          << "node " << n << " t=" << t;
}

TEST(BatchedTransient, InverterNewtonRaphson) {
  expect_bitwise_equal_run(
      circuit::make_inverter(test::models().proc, 20e-15),
      NonlinearSolver::newton_raphson);
}

TEST(BatchedTransient, InverterSuccessiveChords) {
  expect_bitwise_equal_run(
      circuit::make_inverter(test::models().proc, 20e-15),
      NonlinearSolver::successive_chords);
}

TEST(BatchedTransient, Nand3NewtonRaphson) {
  expect_bitwise_equal_run(circuit::make_nand(test::models().proc, 3, 20e-15),
                           NonlinearSolver::newton_raphson);
}

TEST(BatchedTransient, Nand3SuccessiveChords) {
  expect_bitwise_equal_run(circuit::make_nand(test::models().proc, 3, 20e-15),
                           NonlinearSolver::successive_chords);
}

}  // namespace
}  // namespace qwm::spice
