#include "qwm/spice/from_stage.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/netlist/parser.h"
#include "qwm/spice/transient.h"

namespace qwm::spice {
namespace {

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().analytic_set();
  return ms;
}

TEST(FromStage, InverterMapping) {
  const auto b = circuit::make_inverter(test::models().proc, 10e-15);
  std::vector<numeric::PwlWaveform> in{
      numeric::PwlWaveform::constant(0.0)};
  const StageSim sim = circuit_from_stage(b.stage, models(), in);
  // GND maps to ground; VDD is a driven node.
  EXPECT_EQ(sim.node_of[b.stage.sink()], kGround);
  EXPECT_TRUE(sim.circuit.node(sim.node_of[b.stage.source()]).driven.has_value());
  EXPECT_EQ(sim.circuit.mosfets().size(), 2u);
  // Output load + two junction caps.
  EXPECT_GE(sim.circuit.capacitors().size(), 3u);
  // The input drives one gate node shared by both transistors.
  ASSERT_EQ(sim.input_node_of.size(), 1u);
  for (const auto& m : sim.circuit.mosfets())
    EXPECT_EQ(m.g, sim.input_node_of[0]);
}

TEST(FromStage, WireExpandsToLadder) {
  const auto b = circuit::make_nand_pass_stage(test::models().proc, 10e-15);
  std::vector<numeric::PwlWaveform> in{
      numeric::PwlWaveform::constant(3.3),
      numeric::PwlWaveform::constant(3.3)};
  const StageSim sim = circuit_from_stage(b.stage, models(), in, 4);
  // One wire -> 4 resistor segments.
  EXPECT_EQ(sim.circuit.resistors().size(), 4u);
}

TEST(FromStage, StaticGatesAreDriven) {
  const auto b = circuit::make_nmos_stack(test::models().proc,
                                          {1e-6, 1e-6}, 5e-15);
  std::vector<numeric::PwlWaveform> in{
      numeric::PwlWaveform::step(5e-12, 0.0, 3.3)};
  const StageSim sim = circuit_from_stage(b.stage, models(), in);
  // The upper device's static gate becomes a driven node at VDD.
  int driven_gates = 0;
  for (const auto& m : sim.circuit.mosfets())
    if (sim.circuit.node(m.g).driven) ++driven_gates;
  EXPECT_EQ(driven_gates, 2);
}

TEST(FromFlat, ParsesAndSimulatesRcDivider) {
  const auto parsed = netlist::parse_spice(
      "t\nv1 in 0 1\nr1 in mid 1k\nr2 mid 0 1k\nc1 mid 0 10f\n");
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> errors;
  FlatSim sim = circuit_from_flat(parsed.netlist, models(), &errors);
  EXPECT_TRUE(errors.empty());
  TransientOptions opt;
  opt.t_stop = 200e-12;
  opt.dt = 1e-12;
  const auto res = simulate_transient(sim.circuit, opt);
  const auto mid = *parsed.netlist.find_net("mid");
  EXPECT_NEAR(res.waveforms[sim.node_of[mid]].eval(200e-12), 0.5, 0.01);
}

TEST(FromFlat, CurrentSourceChargesCapacitor) {
  // 1 uA into 1 pF from a 0 V initial condition: dV/dt = 1e6 V/s ->
  // 1 mV after 1 ns (the bleed resistor is too large to matter).
  const auto parsed = netlist::parse_spice(
      "t\ni1 0 x 1u\nc1 x 0 1p\nr1 x 0 1e9\n.ic v(x)=0\n");
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> errors;
  FlatSim sim = circuit_from_flat(parsed.netlist, models(), &errors);
  for (const auto& ic : parsed.netlist.initial_conditions)
    sim.circuit.set_ic(sim.node_of[ic.net], ic.voltage);
  TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 1e-12;
  const auto res = simulate_transient(sim.circuit, opt);
  const auto x = *parsed.netlist.find_net("x");
  EXPECT_NEAR(res.waveforms[sim.node_of[x]].eval(1e-9), 1e-3, 5e-5);
}

TEST(FromFlat, RejectsNonGroundedVsource) {
  const auto parsed =
      netlist::parse_spice("t\nv1 a b 1\nr1 a 0 1k\nr2 b 0 1k\n");
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> errors;
  circuit_from_flat(parsed.netlist, models(), &errors);
  EXPECT_FALSE(errors.empty());
}

TEST(FromFlat, FullInverterTransientMatchesStageSim) {
  // The same inverter built two ways (deck vs builder) must produce the
  // same delay within integration tolerance.
  const auto parsed = netlist::parse_spice(R"(inv
vdd vdd 0 3.3
vin in 0 pwl(0 0 10p 0 11p 3.3)
mp out in vdd vdd pmos w=2u l=0.35u
mn out in 0 0 nmos w=1u l=0.35u
cl out 0 20f
)");
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> errors;
  FlatSim flat = circuit_from_flat(parsed.netlist, models(), &errors);
  TransientOptions opt;
  opt.t_stop = 500e-12;
  opt.dt = 1e-12;
  const auto res_flat = simulate_transient(flat.circuit, opt);

  auto b = circuit::make_inverter(test::models().proc, 20e-15);
  std::vector<numeric::PwlWaveform> in{
      numeric::PwlWaveform(std::vector<double>{0.0, 10e-12, 11e-12},
                           std::vector<double>{0.0, 0.0, 3.3})};
  StageSim stage = circuit_from_stage(b.stage, models(), in);
  const auto res_stage = simulate_transient(stage.circuit, opt);

  const auto out_net = *parsed.netlist.find_net("out");
  const auto d_flat = numeric::propagation_delay(
      res_flat.waveforms[flat.node_of[*parsed.netlist.find_net("in")]],
      res_flat.waveforms[flat.node_of[out_net]], 1.65, true, false);
  const auto d_stage = numeric::propagation_delay(
      res_stage.waveforms[stage.input_node_of[0]],
      res_stage.waveforms[stage.node_of[b.output]], 1.65, true, false);
  ASSERT_TRUE(d_flat && d_stage);
  // The flat path adds gate-input caps at the driven gate (harmless) but
  // the channel parasitics and load match: delays agree closely.
  EXPECT_NEAR(*d_flat, *d_stage, 0.05 * *d_stage);
}

}  // namespace
}  // namespace qwm::spice
