#include "qwm/spice/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_models.h"
#include "qwm/spice/circuit.h"

namespace qwm::spice {
namespace {

TEST(DcOp, ResistorDivider) {
  Circuit c;
  const SimNodeId vin = c.add_node("vin");
  const SimNodeId mid = c.add_node("mid");
  c.drive(vin, numeric::PwlWaveform::constant(2.0));
  c.add_resistor(vin, mid, 1000.0);
  c.add_resistor(mid, kGround, 1000.0);
  bool ok = false;
  const auto v = dc_operating_point(c, 0.0, {}, &ok);
  EXPECT_TRUE(ok);
  EXPECT_NEAR(v[mid], 1.0, 1e-6);
}

TEST(DcOp, InverterStaticLevels) {
  auto& m = test::models();
  const auto ms = m.analytic_set();
  for (const auto& [vin_v, expect_out] :
       {std::pair{0.0, 3.3}, std::pair{3.3, 0.0}}) {
    Circuit c;
    const SimNodeId vdd = c.add_node("vdd");
    const SimNodeId in = c.add_node("in");
    const SimNodeId out = c.add_node("out");
    c.drive(vdd, numeric::PwlWaveform::constant(3.3));
    c.drive(in, numeric::PwlWaveform::constant(vin_v));
    c.add_mosfet(ms.pmos, 2e-6, 0.35e-6, vdd, in, out);
    c.add_mosfet(ms.nmos, 1e-6, 0.35e-6, out, in, kGround);
    bool ok = false;
    const auto v = dc_operating_point(c, 0.0, {}, &ok);
    EXPECT_TRUE(ok);
    EXPECT_NEAR(v[out], expect_out, 0.01) << "vin=" << vin_v;
  }
}

/// Driven step through R into C: v(t) = V (1 - e^{-t/RC}).
class RcStepTest : public ::testing::TestWithParam<double> {};

TEST_P(RcStepTest, MatchesAnalyticSolution) {
  const double theta = GetParam();
  Circuit c;
  const SimNodeId in = c.add_node("in");
  const SimNodeId out = c.add_node("out");
  c.drive(in, numeric::PwlWaveform::step(1e-12, 0.0, 1.0));
  const double r = 1e3, cap = 100e-15;  // tau = 100 ps
  c.add_resistor(in, out, r);
  c.add_capacitor(out, kGround, cap);

  TransientOptions opt;
  opt.t_stop = 500e-12;
  opt.dt = 1e-12;
  opt.theta = theta;
  const TransientResult res = simulate_transient(c, opt);
  EXPECT_TRUE(res.stats.converged);
  const double tau = r * cap;
  for (double t : {100e-12, 200e-12, 400e-12}) {
    const double expect = 1.0 - std::exp(-(t - 1e-12) / tau);
    EXPECT_NEAR(res.waveforms[out].eval(t), expect, 0.01) << "theta=" << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(Integrators, RcStepTest, ::testing::Values(1.0, 0.5));

TEST(Transient, TrapezoidalBeatsBackwardEulerOnSmoothInput) {
  // Second-order accuracy only pays off on smooth stimuli; a ramp through
  // RC has the closed form v(t) = m (t - tau (1 - e^{-t/tau})).
  const double r = 1e3, cap = 100e-15, tau = r * cap;
  const double t_ramp = 400e-12, m = 1.0 / t_ramp;
  auto run = [&](double theta) {
    Circuit c;
    const SimNodeId in = c.add_node("in");
    const SimNodeId out = c.add_node("out");
    c.drive(in, numeric::PwlWaveform::ramp(0.0, t_ramp, 0.0, 1.0));
    c.add_resistor(in, out, r);
    c.add_capacitor(out, kGround, cap);
    TransientOptions opt;
    opt.t_stop = 380e-12;
    opt.dt = 20e-12;  // deliberately coarse
    opt.theta = theta;
    const auto res = simulate_transient(c, opt);
    double err = 0.0;
    for (double t : {100e-12, 200e-12, 360e-12}) {
      const double expect = m * (t - tau * (1.0 - std::exp(-t / tau)));
      err = std::max(err, std::abs(res.waveforms[out].eval(t) - expect));
    }
    return err;
  };
  EXPECT_LT(run(0.5), run(1.0));
}

TEST(Transient, InverterSwitchesAndDelayIsPositive) {
  auto& m = test::models();
  const auto ms = m.analytic_set();
  Circuit c;
  const SimNodeId vdd = c.add_node("vdd");
  const SimNodeId in = c.add_node("in");
  const SimNodeId out = c.add_node("out");
  c.drive(vdd, numeric::PwlWaveform::constant(3.3));
  c.drive(in, numeric::PwlWaveform::step(10e-12, 0.0, 3.3));
  c.add_mosfet(ms.pmos, 2e-6, 0.35e-6, vdd, in, out);
  c.add_mosfet(ms.nmos, 1e-6, 0.35e-6, out, in, kGround);
  c.add_capacitor(out, kGround, 20e-15);

  TransientOptions opt;
  opt.t_stop = 500e-12;
  opt.dt = 1e-12;
  const auto res = simulate_transient(c, opt);
  EXPECT_TRUE(res.stats.converged);
  // Starts high, ends low.
  EXPECT_NEAR(res.waveforms[out].eval(0.0), 3.3, 0.05);
  EXPECT_LT(res.waveforms[out].eval(450e-12), 0.2);
  const auto d = numeric::propagation_delay(res.waveforms[in],
                                            res.waveforms[out], 1.65, true,
                                            false);
  ASSERT_TRUE(d);
  EXPECT_GT(*d, 1e-12);
  EXPECT_LT(*d, 200e-12);
  EXPECT_EQ(res.stats.steps, 500u);
}

TEST(Transient, SupplyChargeOfInverterTransition) {
  // A rising output (PMOS charging C_load) draws ~C*VDD from the supply,
  // plus junction-cap and short-circuit contributions.
  auto& m = test::models();
  const auto ms = m.analytic_set();
  Circuit c;
  const SimNodeId vdd = c.add_node("vdd");
  const SimNodeId in = c.add_node("in");
  const SimNodeId out = c.add_node("out");
  c.drive(vdd, numeric::PwlWaveform::constant(3.3));
  c.drive(in, numeric::PwlWaveform::step(10e-12, 3.3, 0.0));  // falls: out rises
  c.add_mosfet(ms.pmos, 2e-6, 0.35e-6, vdd, in, out);
  c.add_mosfet(ms.nmos, 1e-6, 0.35e-6, out, in, kGround);
  const double cl = 50e-15;
  c.add_capacitor(out, kGround, cl);
  c.set_ic(out, 0.0);

  TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 1e-12;
  const auto res = simulate_transient(c, opt);
  ASSERT_TRUE(res.stats.converged);
  EXPECT_GT(res.waveforms[out].eval(1e-9), 3.2);
  const double q = res.driven_charge[vdd];
  EXPECT_GT(q, cl * 3.3 * 0.9);   // at least the load charge
  EXPECT_LT(q, cl * 3.3 * 1.6);   // bounded above (parasitics + SC)
  // The input source sources/sinks only tiny charge (gate is ideal here).
  EXPECT_LT(std::abs(res.driven_charge[in]), cl * 3.3);
}

TEST(Transient, InitialConditionsHonored) {
  Circuit c;
  const SimNodeId n = c.add_node("float");
  c.add_capacitor(n, kGround, 1e-15);
  c.set_ic(n, 2.5);
  TransientOptions opt;
  opt.t_stop = 10e-12;
  opt.dt = 1e-12;
  const auto res = simulate_transient(c, opt);
  // Floating node with only gmin leakage barely moves.
  EXPECT_NEAR(res.waveforms[n].eval(0.0), 2.5, 1e-9);
  EXPECT_NEAR(res.waveforms[n].eval(10e-12), 2.5, 1e-3);
}

TEST(Transient, AdaptiveModeTakesFewerSteps) {
  auto run = [&](bool adaptive) {
    Circuit c;
    const SimNodeId in = c.add_node("in");
    const SimNodeId out = c.add_node("out");
    c.drive(in, numeric::PwlWaveform::step(1e-12, 0.0, 1.0));
    c.add_resistor(in, out, 1e3);
    c.add_capacitor(out, kGround, 100e-15);
    TransientOptions opt;
    opt.t_stop = 1e-9;
    opt.dt = 1e-12;
    opt.adaptive = adaptive;
    return simulate_transient(c, opt).stats.steps;
  };
  EXPECT_LT(run(true), run(false) / 2);
}

TEST(Transient, SuccessiveChordsMatchesNewton) {
  // TETA's engine (paper §II): one constant admittance matrix factored
  // once, back-substitution-only iterations. Must land on the same
  // waveforms as Newton, with far fewer LU factorizations.
  auto& m = test::models();
  const auto ms = m.analytic_set();
  auto build = [&](Circuit& c) {
    const SimNodeId vdd = c.add_node("vdd");
    const SimNodeId in = c.add_node("in");
    const SimNodeId mid = c.add_node("mid");
    const SimNodeId out = c.add_node("out");
    c.drive(vdd, numeric::PwlWaveform::constant(3.3));
    c.drive(in, numeric::PwlWaveform::ramp(10e-12, 50e-12, 0.0, 3.3));
    c.add_mosfet(ms.pmos, 2e-6, 0.35e-6, vdd, in, out);
    c.add_mosfet(ms.nmos, 1e-6, 0.35e-6, out, in, mid);
    c.add_mosfet(ms.nmos, 1e-6, 0.35e-6, mid, vdd, kGround);
    c.add_capacitor(out, kGround, 20e-15);
    c.add_capacitor(mid, kGround, 5e-15);
    return out;
  };
  Circuit c1, c2;
  const SimNodeId out1 = build(c1);
  const SimNodeId out2 = build(c2);

  TransientOptions nr;
  nr.t_stop = 400e-12;
  nr.dt = 1e-12;
  TransientOptions sc = nr;
  sc.solver = NonlinearSolver::successive_chords;

  const auto res_nr = simulate_transient(c1, nr);
  const auto res_sc = simulate_transient(c2, sc);
  ASSERT_TRUE(res_nr.stats.converged);
  ASSERT_TRUE(res_sc.stats.converged);
  const double diff = numeric::PwlWaveform::max_difference(
      res_nr.waveforms[out1], res_sc.waveforms[out2], 0.0, 400e-12);
  EXPECT_LT(diff, 5e-3);  // same trajectory to millivolts
  // SC trades more (cheap) iterations for far fewer LU factorizations.
  EXPECT_GT(res_sc.stats.nr_iterations, res_nr.stats.nr_iterations);
  EXPECT_LT(res_sc.stats.linear_solves, res_nr.stats.linear_solves / 10);
}

TEST(Transient, CapacitorBetweenInternalNodes) {
  // Floating cap coupling two RC branches still converges and conserves
  // the final DC levels.
  Circuit c;
  const SimNodeId in = c.add_node("in");
  const SimNodeId a = c.add_node("a");
  const SimNodeId b = c.add_node("b");
  c.drive(in, numeric::PwlWaveform::step(1e-12, 0.0, 1.0));
  c.add_resistor(in, a, 1e3);
  c.add_resistor(a, b, 1e3);
  c.add_resistor(b, kGround, 1e3);
  c.add_capacitor(a, b, 50e-15);
  TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 2e-12;
  const auto res = simulate_transient(c, opt);
  EXPECT_TRUE(res.stats.converged);
  EXPECT_NEAR(res.waveforms[a].eval(2e-9), 2.0 / 3.0, 0.01);
  EXPECT_NEAR(res.waveforms[b].eval(2e-9), 1.0 / 3.0, 0.01);
}

}  // namespace
}  // namespace qwm::spice
