#include "qwm/circuit/path.h"

#include <gtest/gtest.h>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"

namespace qwm::circuit {
namespace {

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

TEST(ExtractPath, InverterDischarge) {
  const auto b = make_inverter(test::models().proc, 10e-15);
  const auto p = extract_worst_path(b.stage, b.output, true);
  ASSERT_EQ(p.elements.size(), 1u);
  EXPECT_EQ(p.nodes.back(), b.output);
  EXPECT_EQ(b.stage.edge(p.elements[0]).kind, DeviceKind::nmos);
}

TEST(ExtractPath, InverterCharge) {
  const auto b = make_inverter(test::models().proc, 10e-15);
  const auto p = extract_worst_path(b.stage, b.output, false);
  ASSERT_EQ(p.elements.size(), 1u);
  EXPECT_EQ(b.stage.edge(p.elements[0]).kind, DeviceKind::pmos);
}

TEST(ExtractPath, NandPicksFullStack) {
  const auto b = make_nand(test::models().proc, 4, 10e-15);
  const auto p = extract_worst_path(b.stage, b.output, true);
  EXPECT_EQ(p.elements.size(), 4u);  // the series stack, not a PMOS branch
  for (EdgeId e : p.elements)
    EXPECT_EQ(b.stage.edge(e).kind, DeviceKind::nmos);
}

TEST(ExtractPath, NoPathReturnsEmpty) {
  // A PMOS-only stage has no discharge path.
  LogicStage s(3.3);
  const NodeId out = s.add_node("out");
  const EdgeId e = s.add_edge(DeviceKind::pmos, s.source(), out, 2e-6, 0.35e-6);
  s.set_gate_static(e, 0.0);
  const auto p = extract_worst_path(s, out, true);
  EXPECT_TRUE(p.elements.empty());
}

TEST(ExtractPath, DecoderIncludesWires) {
  const auto b = make_decoder_tree(test::models().proc, 2, 10e-15);
  const auto p = extract_worst_path(b.stage, b.output, true);
  // root transistor + (wire + pass) per level.
  ASSERT_EQ(p.elements.size(), 5u);
  int wires = 0, fets = 0;
  for (EdgeId e : p.elements)
    b.stage.edge(e).kind == DeviceKind::wire ? ++wires : ++fets;
  EXPECT_EQ(wires, 2);
  EXPECT_EQ(fets, 3);
}

TEST(PathProblem, NodeCapsArePositiveAndIncludeLoad) {
  const auto b = make_nmos_stack(test::models().proc, {1e-6, 1e-6, 1e-6},
                                 25e-15);
  const auto p = extract_worst_path(b.stage, b.output, true);
  const auto prob = build_path_problem(b.stage, p, models());
  ASSERT_EQ(prob.node_caps.size(), 3u);
  for (double c : prob.node_caps) EXPECT_GT(c, 0.0);
  // The output node carries the external load on top of its parasitics.
  EXPECT_GT(prob.node_caps.back(), 25e-15);
  EXPECT_EQ(prob.transistor_count(), 3u);
}

TEST(PathProblem, ElementOrientationFlags) {
  const auto b = make_nmos_stack(test::models().proc, {1e-6, 1e-6}, 5e-15);
  const auto p = extract_worst_path(b.stage, b.output, true);
  const auto prob = build_path_problem(b.stage, p, models());
  // Builder orients NMOS edges src = upper node, so src is the rail-far
  // side for every element of a discharge path.
  for (const auto& el : prob.elements) EXPECT_TRUE(el.src_is_far);
}

TEST(PathProblem, SignificantWireBecomesLadderSections) {
  const auto b = make_decoder_tree(test::models().proc, 1, 10e-15, 100e-6);
  const auto p = extract_worst_path(b.stage, b.output, true);
  const auto prob = build_path_problem(b.stage, p, models());
  int resistors = 0;
  double r_total = 0.0;
  for (const auto& el : prob.elements)
    if (el.kind == PathProblem::Element::Kind::resistor) {
      ++resistors;
      EXPECT_GT(el.resistance, 0.0);
      r_total += el.resistance;
    }
  EXPECT_EQ(resistors, 3);  // one kept wire -> 3 ladder sections
  // The sections carry the wire's full series resistance (not the
  // O'Brien pi's reduced R_pi).
  const auto& wire_edge = b.stage.edge(p.elements[1]);
  EXPECT_NEAR(r_total,
              wire_resistance(test::models().proc.wire, wire_edge.w,
                              wire_edge.l),
              1e-6);
  // The wire's sibling (off transistor) loads the junction node.
  EXPECT_GT(prob.node_caps.back(), 1e-15);
}

TEST(PathProblem, NegligibleWireIsMerged) {
  // Short decoder wires on the default low-resistance layer fall under
  // the merge threshold: no resistor elements appear.
  const auto b = make_decoder_tree(test::models().proc, 2, 10e-15, 30e-6);
  const auto p = extract_worst_path(b.stage, b.output, true);
  const auto prob = build_path_problem(b.stage, p, models());
  for (const auto& el : prob.elements)
    EXPECT_EQ(el.kind, PathProblem::Element::Kind::transistor);
  // Wire caps folded into the adjacent positions.
  EXPECT_EQ(prob.transistor_count(), prob.length());
}

TEST(PathProblem, SideBranchCapIsLumped) {
  // Two stages differing only by an off side transistor hanging on the
  // middle node: the loaded one must have strictly larger middle cap.
  const auto& proc = test::models().proc;
  auto base = make_nmos_stack(proc, {1e-6, 1e-6}, 5e-15);
  auto loaded = make_nmos_stack(proc, {1e-6, 1e-6}, 5e-15);
  const NodeId mid = 2;  // first stack node above GND (nodes 0/1 are rails)
  const NodeId stub = loaded.stage.add_node("stub");
  const EdgeId e =
      loaded.stage.add_edge(DeviceKind::nmos, stub, mid, 4e-6, 0.35e-6);
  loaded.stage.set_gate_static(e, 0.0);

  const auto pb = extract_worst_path(base.stage, base.output, true);
  const auto pl = extract_worst_path(loaded.stage, loaded.output, true);
  const auto prob_b = build_path_problem(base.stage, pb, models());
  const auto prob_l = build_path_problem(loaded.stage, pl, models());
  EXPECT_GT(prob_l.node_caps[0], prob_b.node_caps[0]);
  EXPECT_DOUBLE_EQ(prob_l.node_caps[1], prob_b.node_caps[1]);
}

TEST(WireHelpers, ScaleWithGeometry) {
  const auto& wp = test::models().proc.wire;
  EXPECT_NEAR(wire_resistance(wp, 1e-6, 100e-6) * 2.0,
              wire_resistance(wp, 1e-6, 200e-6), 1e-12);
  EXPECT_GT(wire_capacitance(wp, 1e-6, 200e-6),
            wire_capacitance(wp, 1e-6, 100e-6));
}

}  // namespace
}  // namespace qwm::circuit
