#include "qwm/circuit/stage.h"

#include <gtest/gtest.h>

#include "../common/test_models.h"
#include "qwm/circuit/builders.h"
#include "qwm/circuit/path.h"

namespace qwm::circuit {
namespace {

TEST(LogicStage, RailsExistAndAreDistinct) {
  LogicStage s(3.3);
  EXPECT_NE(s.source(), s.sink());
  EXPECT_TRUE(s.is_rail(s.source()));
  EXPECT_TRUE(s.is_rail(s.sink()));
  EXPECT_EQ(s.node_count(), 2u);
}

TEST(LogicStage, EdgeBookkeeping) {
  LogicStage s(3.3);
  const NodeId a = s.add_node("a");
  const EdgeId e = s.add_edge(DeviceKind::nmos, a, s.sink(), 1e-6, 0.35e-6);
  s.set_gate_static(e, 3.3);
  EXPECT_EQ(s.edge(e).src, a);
  EXPECT_EQ(s.other_end(e, a), s.sink());
  EXPECT_EQ(s.incident_edges(a).size(), 1u);
  EXPECT_EQ(s.incident_edges(s.sink()).size(), 1u);
}

TEST(LogicStage, ValidateAcceptsBuilders) {
  const auto& proc = test::models().proc;
  const double load = fanout_load_cap(proc);
  EXPECT_TRUE(make_inverter(proc, load).stage.validate().empty());
  EXPECT_TRUE(make_nand(proc, 3, load).stage.validate().empty());
  EXPECT_TRUE(make_nor(proc, 2, load).stage.validate().empty());
  EXPECT_TRUE(make_nmos_stack(proc, {1e-6, 2e-6, 1.5e-6}, load)
                  .stage.validate()
                  .empty());
  EXPECT_TRUE(make_pmos_stack(proc, {2e-6, 2e-6}, load).stage.validate().empty());
  EXPECT_TRUE(make_manchester_chain(proc, 5, load).stage.validate().empty());
  EXPECT_TRUE(make_decoder_tree(proc, 3, load).stage.validate().empty());
  EXPECT_TRUE(make_nand_pass_stage(proc, load).stage.validate().empty());
}

TEST(LogicStage, ValidateFlagsBadGeometry) {
  LogicStage s(3.3);
  const NodeId a = s.add_node("a");
  s.add_edge(DeviceKind::nmos, a, s.sink(), -1.0, 0.35e-6);
  EXPECT_FALSE(s.validate().empty());
}

TEST(LogicStage, ValidateFlagsUnreachableOutput) {
  LogicStage s(3.3);
  const NodeId lonely = s.add_node("x");
  s.add_output(lonely);
  EXPECT_FALSE(s.validate().empty());
}

TEST(Builders, NandStructure) {
  const auto& proc = test::models().proc;
  const auto b = make_nand(proc, 3, 10e-15);
  // 3 PMOS + 3 NMOS.
  EXPECT_EQ(b.stage.edge_count(), 6u);
  // out + 2 internal nodes + rails.
  EXPECT_EQ(b.stage.node_count(), 5u);
  EXPECT_EQ(b.stage.input_count(), 3u);
  EXPECT_TRUE(b.output_falls);
}

TEST(Builders, StackWidthsApplied) {
  const auto& proc = test::models().proc;
  const std::vector<double> w{1e-6, 3e-6, 2e-6};
  const auto b = make_nmos_stack(proc, w, 5e-15);
  EXPECT_EQ(b.stage.edge_count(), 3u);
  int matched = 0;
  for (std::size_t e = 0; e < b.stage.edge_count(); ++e)
    for (double wi : w)
      if (b.stage.edge(static_cast<EdgeId>(e)).w == wi) {
        ++matched;
        break;
      }
  EXPECT_EQ(matched, 3);
}

TEST(Builders, DecoderTreeDoublesWireLengths) {
  const auto& proc = test::models().proc;
  const auto b = make_decoder_tree(proc, 3, 10e-15, 40e-6);
  std::vector<double> wire_lengths;
  for (std::size_t e = 0; e < b.stage.edge_count(); ++e) {
    const Edge& ed = b.stage.edge(static_cast<EdgeId>(e));
    if (ed.kind == DeviceKind::wire) wire_lengths.push_back(ed.l);
  }
  ASSERT_EQ(wire_lengths.size(), 3u);
  EXPECT_DOUBLE_EQ(wire_lengths[0], 40e-6);
  EXPECT_DOUBLE_EQ(wire_lengths[1], 80e-6);
  EXPECT_DOUBLE_EQ(wire_lengths[2], 160e-6);
}

TEST(Builders, ManchesterWorstPathLength) {
  const auto& proc = test::models().proc;
  const auto b = make_manchester_chain(proc, 5, 10e-15);
  // 1 generate + 4 propagate devices = 5... plus the bit-0 pulldown makes
  // the paper's "6 NMOS stack" for a 6-element chain; with 5 bits the
  // longest pulldown path holds 5 transistors.
  const auto path = extract_worst_path(b.stage, b.output, true);
  EXPECT_EQ(path.elements.size(), 5u);
}

}  // namespace
}  // namespace qwm::circuit
