#include "qwm/circuit/partition.h"

#include <gtest/gtest.h>

#include "../common/test_models.h"
#include "qwm/netlist/parser.h"

namespace qwm::circuit {
namespace {

const device::ModelSet& models() {
  static device::ModelSet ms = test::models().tabular_set();
  return ms;
}

PartitionedDesign partition_deck(const char* deck) {
  const netlist::ParseResult r = netlist::parse_spice(deck);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  return partition_netlist(r.netlist, models());
}

constexpr const char* kChain = R"(inverter chain
vdd vdd 0 3.3
vin a 0 pwl(0 0 10p 3.3)
mp1 b a vdd vdd pmos w=2u l=0.35u
mn1 b a 0 0 nmos w=1u l=0.35u
mp2 c b vdd vdd pmos w=2u l=0.35u
mn2 c b 0 0 nmos w=1u l=0.35u
mp3 d c vdd vdd pmos w=2u l=0.35u
mn3 d c 0 0 nmos w=1u l=0.35u
cl d 0 30f
)";

TEST(Partition, InverterChainSplitsPerGate) {
  const auto design = partition_deck(kChain);
  EXPECT_EQ(design.stages.size(), 3u);
  for (const auto& s : design.stages) {
    EXPECT_EQ(s.stage.edge_count(), 2u);
    EXPECT_EQ(s.input_nets.size(), 1u);
    EXPECT_TRUE(s.stage.validate().empty());
  }
}

TEST(Partition, DriverMapAndPrimaryInputs) {
  const auto design = partition_deck(kChain);
  const netlist::ParseResult r = netlist::parse_spice(kChain);
  const auto net_b = *r.netlist.find_net("b");
  const auto net_a = *r.netlist.find_net("a");
  EXPECT_TRUE(design.driver_of.count(net_b));
  EXPECT_FALSE(design.driver_of.count(net_a));  // driven by a source
  // "a" is a source-driven gate net: a primary input.
  bool a_is_pi = false;
  for (auto n : design.primary_inputs)
    if (n == net_a) a_is_pi = true;
  EXPECT_TRUE(a_is_pi);
}

TEST(Partition, FanoutLoadAppliedToDriverOutput) {
  const auto design = partition_deck(kChain);
  // Stage driving net "b" must carry the input capacitance of stage 2's
  // two gates as output load.
  const netlist::ParseResult r = netlist::parse_spice(kChain);
  const auto net_b = *r.netlist.find_net("b");
  const auto [si, oi] = design.driver_of.at(net_b);
  const StageInfo& info = design.stages[si];
  const NodeId out = info.stage.outputs()[oi];
  const double expected =
      models().nmos->input_cap(1e-6, 0.35e-6) +
      models().pmos->input_cap(2e-6, 0.35e-6);
  EXPECT_NEAR(info.stage.node(out).load_cap, expected, 1e-18);
}

TEST(Partition, PassTransistorMergesStages) {
  // NAND + pass transistor: channel-connected through the pass device, so
  // they form ONE stage (the paper's Figure 1 point).
  const auto design = partition_deck(R"(fig1
vdd vdd 0 3.3
va a 0 0
vb b 0 3.3
ven en 0 3.3
mpa y a vdd vdd pmos w=2u l=0.35u
mpb y b vdd vdd pmos w=2u l=0.35u
mna y a m 0 nmos w=1u l=0.35u
mnb m b 0 0 nmos w=1u l=0.35u
mpass z en y 0 nmos w=1u l=0.35u
mload q z 0 0 nmos w=1u l=0.35u
)");
  // Stage 1: NAND + pass (5 devices); stage 2: the load device.
  ASSERT_EQ(design.stages.size(), 2u);
  const std::size_t d0 = design.stages[0].stage.edge_count();
  const std::size_t d1 = design.stages[1].stage.edge_count();
  EXPECT_EQ(d0 + d1, 6u);
  EXPECT_EQ(std::max(d0, d1), 5u);
}

TEST(Partition, GroundedCapsBecomeLoads) {
  const auto design = partition_deck(kChain);
  const netlist::ParseResult r = netlist::parse_spice(kChain);
  const auto net_d = *r.netlist.find_net("d");
  // Find the stage containing node d.
  bool found = false;
  for (const auto& s : design.stages) {
    for (std::size_t i = 0; i < s.stage.node_count(); ++i) {
      if (s.stage.node(static_cast<NodeId>(i)).name == "d" &&
          s.stage.node(static_cast<NodeId>(i)).load_cap >= 30e-15) {
        found = true;
      }
    }
  }
  (void)net_d;
  EXPECT_TRUE(found);
}

TEST(Partition, ResistorsJoinComponents) {
  const auto design = partition_deck(R"(rc coupled
vdd vdd 0 3.3
vin a 0 0
mp1 b a vdd vdd pmos w=2u l=0.35u
mn1 b a 0 0 nmos w=1u l=0.35u
r1 b c 500
mload q c 0 0 nmos w=1u l=0.35u
)");
  // Inverter + resistor form one stage; the load gate is a second stage.
  ASSERT_EQ(design.stages.size(), 2u);
  bool has_wire_edge = false;
  for (const auto& s : design.stages)
    for (std::size_t e = 0; e < s.stage.edge_count(); ++e)
      if (s.stage.edge(static_cast<EdgeId>(e)).kind == DeviceKind::wire) {
        has_wire_edge = true;
        EXPECT_DOUBLE_EQ(
            s.stage.edge(static_cast<EdgeId>(e)).explicit_r, 500.0);
      }
  EXPECT_TRUE(has_wire_edge);
}

TEST(Partition, FeedbackGateWarns) {
  const auto design = partition_deck(R"(keeper
vdd vdd 0 3.3
vin a 0 0
mn1 b a 0 0 nmos w=1u l=0.35u
mk b b vdd vdd pmos w=1u l=0.35u
)");
  EXPECT_FALSE(design.warnings.empty());
}

}  // namespace
}  // namespace qwm::circuit
