#include "qwm/netlist/parser.h"

#include <gtest/gtest.h>

#include "qwm/netlist/writer.h"

namespace qwm::netlist {
namespace {

TEST(SpiceNumber, Suffixes) {
  double v = 0.0;
  EXPECT_TRUE(parse_spice_number("4.7k", &v));
  EXPECT_DOUBLE_EQ(v, 4700.0);
  EXPECT_TRUE(parse_spice_number("0.35u", &v));
  EXPECT_DOUBLE_EQ(v, 0.35e-6);
  EXPECT_TRUE(parse_spice_number("10meg", &v));
  EXPECT_DOUBLE_EQ(v, 1e7);
  EXPECT_TRUE(parse_spice_number("2p", &v));
  EXPECT_DOUBLE_EQ(v, 2e-12);
  EXPECT_TRUE(parse_spice_number("100f", &v));
  EXPECT_DOUBLE_EQ(v, 100e-15);
  EXPECT_TRUE(parse_spice_number("1e-12", &v));
  EXPECT_DOUBLE_EQ(v, 1e-12);
  EXPECT_TRUE(parse_spice_number("3n", &v));
  EXPECT_DOUBLE_EQ(v, 3e-9);
  EXPECT_FALSE(parse_spice_number("volts", &v));
  EXPECT_FALSE(parse_spice_number("", &v));
  EXPECT_FALSE(parse_spice_number("1x", &v));
}

constexpr const char* kInverterDeck = R"(simple inverter
vdd vdd 0 dc 3.3
vin in 0 pulse(0 3.3 10p 1p 1p 500p 1n)
mp out in vdd vdd pmos w=2u l=0.35u
mn out in 0 0 nmos w=1u l=0.35u
cl out 0 20f
.end
)";

TEST(Parser, InverterDeck) {
  const ParseResult r = parse_spice(kInverterDeck);
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.netlist.mosfets.size(), 2u);
  EXPECT_EQ(r.netlist.vsources.size(), 2u);
  EXPECT_EQ(r.netlist.capacitors.size(), 1u);

  const Mosfet& mp = r.netlist.mosfets[0];
  EXPECT_EQ(mp.type, device::MosType::pmos);
  EXPECT_DOUBLE_EQ(mp.w, 2e-6);
  EXPECT_DOUBLE_EQ(mp.l, 0.35e-6);

  double vdd = 0.0;
  EXPECT_EQ(r.netlist.find_vdd_net(&vdd), *r.netlist.find_net("vdd"));
  EXPECT_DOUBLE_EQ(vdd, 3.3);

  // The PULSE source becomes a PWL with the rise at 10 ps.
  const VSource& vin = r.netlist.vsources[1];
  EXPECT_NEAR(vin.waveform.eval(0.0), 0.0, 1e-12);
  EXPECT_NEAR(vin.waveform.eval(12e-12), 3.3, 1e-12);
}

TEST(Parser, CaseInsensitiveAndContinuations) {
  const ParseResult r = parse_spice(
      "title\n"
      "VDD VDD 0 DC 3.3\n"
      "MN out in 0 0\n"
      "+ NMOS W=1U\n"
      "+ L=0.35U\n"
      ".END\n");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  ASSERT_EQ(r.netlist.mosfets.size(), 1u);
  EXPECT_DOUBLE_EQ(r.netlist.mosfets[0].w, 1e-6);
}

TEST(Parser, CommentsIgnored) {
  const ParseResult r = parse_spice(
      "t\n* a comment\nr1 a b 100 $ trailing\nc1 b 0 1p ; also trailing\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.netlist.resistors.size(), 1u);
  EXPECT_EQ(r.netlist.capacitors.size(), 1u);
}

TEST(Parser, GroundAliases) {
  const ParseResult r = parse_spice("t\nr1 a gnd 1k\nr2 b vss 1k\nr3 c 0 1k\n");
  ASSERT_TRUE(r.ok());
  for (const auto& res : r.netlist.resistors) EXPECT_EQ(res.b, kGroundNet);
}

TEST(Parser, SubcircuitExpansion) {
  const ParseResult r = parse_spice(R"(two inverters
.subckt inv in out
mp out in vdd vdd pmos w=2u l=0.35u
mn out in 0 0 nmos w=1u l=0.35u
.ends
vdd vdd 0 3.3
x1 a b inv
x2 b c inv
)");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.netlist.mosfets.size(), 4u);
  // Shared net b connects x1's output to x2's input.
  ASSERT_TRUE(r.netlist.find_net("b").has_value());
  // Internal supply references resolve to the global vdd net.
  const auto vdd_net = r.netlist.find_net("vdd");
  ASSERT_TRUE(vdd_net.has_value());
  int on_vdd = 0;
  for (const auto& m : r.netlist.mosfets)
    if (m.source == *vdd_net || m.drain == *vdd_net) ++on_vdd;
  EXPECT_EQ(on_vdd, 2);
}

TEST(Parser, PwlSource) {
  const ParseResult r =
      parse_spice("t\nv1 in 0 pwl(0 0 1n 3.3 2n 0)\n");
  ASSERT_TRUE(r.ok());
  const auto& w = r.netlist.vsources[0].waveform;
  EXPECT_NEAR(w.eval(0.5e-9), 1.65, 1e-9);
  EXPECT_NEAR(w.eval(1.5e-9), 1.65, 1e-9);
}

TEST(Parser, ParamSubstitution) {
  const ParseResult r = parse_spice(
      "t\n.param wn=1u ln=0.35u\nmn out in 0 0 nmos w=wn l=ln\n");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  ASSERT_EQ(r.netlist.mosfets.size(), 1u);
  EXPECT_DOUBLE_EQ(r.netlist.mosfets[0].w, 1e-6);
}

TEST(Parser, ReportsErrors) {
  EXPECT_FALSE(parse_spice("t\nmn out in 0\n").ok());       // short card
  EXPECT_FALSE(parse_spice("t\nr1 a b banana\n").ok());     // bad value
  EXPECT_FALSE(parse_spice("t\nx1 a b nosuch\n").ok());     // unknown subckt
  EXPECT_FALSE(parse_spice("t\n.subckt foo a\nr1 a 0 1\n").ok());  // no .ends
}

TEST(Parser, ErrorsCarryFileAndLine) {
  // In-memory decks diagnose as "<deck>:<line>: ..." with 1-based
  // physical line numbers (the title is line 1).
  const ParseResult r = parse_spice("t\nvdd vdd 0 3.3\nr1 a b banana\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].find("<deck>:3: "), 0u) << r.errors[0];

  // A continuation line is reported at the line it extends.
  const ParseResult c = parse_spice("t\nr1 a b\n+ banana\nr2 a 0 1k\n");
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.errors[0].find("<deck>:2: "), 0u) << c.errors[0];

  // Errors inside a .subckt body point at the definition site, even when
  // triggered by an X-card expansion further down.
  const ParseResult s = parse_spice(
      "t\n.subckt bad a\nr1 a 0 oops\n.ends\nx1 n1 bad\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.errors[0].find("<deck>:3: "), 0u) << s.errors[0];

  // Missing files carry the path with line 0.
  const ParseResult f = parse_spice_file("/nonexistent/deck.sp");
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.errors[0].find("/nonexistent/deck.sp:0: "), 0u) << f.errors[0];
}

TEST(Parser, UnknownElementsWarnNotFail) {
  const ParseResult r = parse_spice("t\nl1 a b 1n\nr1 a 0 1k\n");
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.warnings.empty());
}

TEST(Writer, RoundTrips) {
  const ParseResult r1 = parse_spice(kInverterDeck);
  ASSERT_TRUE(r1.ok());
  const std::string deck = write_spice(r1.netlist, "roundtrip");
  const ParseResult r2 = parse_spice(deck);
  ASSERT_TRUE(r2.ok()) << (r2.errors.empty() ? "" : r2.errors[0]);
  EXPECT_EQ(r2.netlist.mosfets.size(), r1.netlist.mosfets.size());
  EXPECT_EQ(r2.netlist.capacitors.size(), r1.netlist.capacitors.size());
  EXPECT_EQ(r2.netlist.vsources.size(), r1.netlist.vsources.size());
  EXPECT_DOUBLE_EQ(r2.netlist.mosfets[0].w, r1.netlist.mosfets[0].w);
}

}  // namespace
}  // namespace qwm::netlist
