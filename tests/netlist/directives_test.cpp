#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "qwm/netlist/parser.h"
#include "qwm/netlist/writer.h"

namespace qwm::netlist {
namespace {

TEST(Directives, TranParsed) {
  const auto r = parse_spice("t\nr1 a 0 1k\n.tran 1p 2n\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.netlist.tran.present);
  EXPECT_DOUBLE_EQ(r.netlist.tran.tstep, 1e-12);
  EXPECT_DOUBLE_EQ(r.netlist.tran.tstop, 2e-9);
}

TEST(Directives, TranMalformed) {
  EXPECT_FALSE(parse_spice("t\n.tran banana\n").ok());
}

TEST(Directives, InitialConditions) {
  const auto r = parse_spice("t\nr1 a b 1k\n.ic v(a)=3.3 v(b)=1.65\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.netlist.initial_conditions.size(), 2u);
  EXPECT_EQ(r.netlist.initial_conditions[0].net, *r.netlist.find_net("a"));
  EXPECT_DOUBLE_EQ(r.netlist.initial_conditions[0].voltage, 3.3);
  EXPECT_DOUBLE_EQ(r.netlist.initial_conditions[1].voltage, 1.65);
}

TEST(Directives, PrintNets) {
  const auto r = parse_spice("t\nr1 a b 1k\n.print tran v(a) v(b)\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.netlist.print_nets.size(), 2u);
  EXPECT_EQ(r.netlist.print_nets[0], *r.netlist.find_net("a"));
}

TEST(Directives, CurrentSourceParsed) {
  const auto r = parse_spice("t\ni1 a 0 dc 1m\ni2 b 0 pwl(0 0 1n 2m)\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.netlist.isources.size(), 2u);
  EXPECT_DOUBLE_EQ(r.netlist.isources[0].waveform.eval(0.0), 1e-3);
  EXPECT_NEAR(r.netlist.isources[1].waveform.eval(0.5e-9), 1e-3, 1e-12);
}

TEST(Directives, IncludeFiles) {
  const std::string dir = "/tmp/qwm_include_test";
  std::filesystem::create_directories(dir);
  {
    std::ofstream lib(dir + "/cells.inc");
    lib << ".subckt inv in out\n"
           "mp out in vdd vdd pmos w=2u l=0.35u\n"
           "mn out in 0 0 nmos w=1u l=0.35u\n"
           ".ends\n";
    std::ofstream deck(dir + "/top.sp");
    deck << "top deck\n"
            ".include cells.inc\n"
            "vdd vdd 0 3.3\n"
            "x1 a b inv\n";
  }
  const auto r = parse_spice_file(dir + "/top.sp");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.netlist.mosfets.size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(Directives, MissingIncludeErrors) {
  const auto r = parse_spice("t\n.include /nonexistent/file.inc\n");
  EXPECT_FALSE(r.ok());
}

TEST(Directives, WriterRoundTripsDirectives) {
  const auto r1 = parse_spice(
      "t\nr1 a 0 1k\ni1 a 0 2m\n.tran 2p 1n\n.ic v(a)=1.0\n");
  ASSERT_TRUE(r1.ok());
  const auto r2 = parse_spice(write_spice(r1.netlist));
  ASSERT_TRUE(r2.ok()) << (r2.errors.empty() ? "" : r2.errors[0]);
  EXPECT_TRUE(r2.netlist.tran.present);
  EXPECT_DOUBLE_EQ(r2.netlist.tran.tstep, 2e-12);
  ASSERT_EQ(r2.netlist.isources.size(), 1u);
  ASSERT_EQ(r2.netlist.initial_conditions.size(), 1u);
  EXPECT_DOUBLE_EQ(r2.netlist.initial_conditions[0].voltage, 1.0);
}

}  // namespace
}  // namespace qwm::netlist
