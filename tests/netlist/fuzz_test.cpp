// Robustness tests: the parser must reject or survive arbitrary junk
// without crashing, and mutated-but-plausible decks must never produce a
// silently corrupt netlist (errors preferred over garbage).
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "qwm/netlist/parser.h"

namespace qwm::netlist {
namespace {

constexpr const char* kBaseDeck = R"(mutation base
vdd vdd 0 3.3
vin a 0 pulse(0 3.3 10p 1p 1p 500p 1n)
.model n1 nmos vto=0.55
mp1 b a vdd vdd pmos w=2u l=0.35u
mn1 b a 0 0 n1 w=1u l=0.35u
r1 b c 500
c1 c 0 20f
.tran 1p 1n
.end
)";

TEST(Fuzz, RandomPrintableGarbage) {
  std::mt19937 rng(123);
  std::uniform_int_distribution<int> ch(32, 126);
  std::uniform_int_distribution<int> len(0, 400);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = "garbage\n";
    const int n = len(rng);
    for (int i = 0; i < n; ++i) {
      const int c = ch(rng);
      text.push_back(i % 37 == 36 ? '\n' : static_cast<char>(c));
    }
    // Must not crash; ok() may be anything.
    const ParseResult r = parse_spice(text);
    (void)r;
  }
}

TEST(Fuzz, TruncatedDecks) {
  const std::string base = kBaseDeck;
  for (std::size_t cut = 0; cut < base.size(); cut += 7) {
    const ParseResult r = parse_spice(base.substr(0, cut));
    (void)r;  // no crash; partial decks often parse partially
  }
}

TEST(Fuzz, CharacterMutations) {
  std::mt19937 rng(7);
  const std::string base = kBaseDeck;
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  std::uniform_int_distribution<int> ch(32, 126);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = base;
    // Mutate 1-3 characters.
    for (int m = 0; m < 1 + trial % 3; ++m)
      text[pos(rng)] = static_cast<char>(ch(rng));
    const ParseResult r = parse_spice(text);
    if (r.ok()) {
      // A deck that still parses must have structurally sane elements.
      for (const auto& mos : r.netlist.mosfets) {
        EXPECT_GE(mos.drain, 0);
        EXPECT_LT(mos.drain, static_cast<int>(r.netlist.net_count()));
        EXPECT_GT(mos.w, 0.0);
        EXPECT_GT(mos.l, 0.0);
      }
      for (const auto& res : r.netlist.resistors) {
        EXPECT_GE(res.a, 0);
        EXPECT_GE(res.b, 0);
      }
    }
  }
}

TEST(Fuzz, DeepSubcktNestingIsBounded) {
  // Self-instantiating subcircuit: must error out, not recurse forever.
  const ParseResult r = parse_spice(R"(recursive
.subckt loop a b
x1 a b loop
.ends
x0 p q loop
)");
  EXPECT_FALSE(r.ok());
}

TEST(Fuzz, HugeNumbersAndEmptyTokens) {
  const ParseResult r1 = parse_spice("t\nr1 a 0 1e308\nc1 a 0 1e-300\n");
  EXPECT_TRUE(r1.ok());
  const ParseResult r2 = parse_spice("t\n   \n\t\n\n");
  EXPECT_TRUE(r2.ok());
  const ParseResult r3 = parse_spice("");
  EXPECT_TRUE(r3.ok());
  const ParseResult r4 = parse_spice("t\n((((()))))\n=====\n");
  (void)r4;
}

}  // namespace
}  // namespace qwm::netlist
