#include "qwm/netlist/apply_models.h"

#include <gtest/gtest.h>

#include "qwm/netlist/parser.h"
#include "qwm/netlist/writer.h"

namespace qwm::netlist {
namespace {

TEST(ModelCards, ParsedFromDeck) {
  const ParseResult r = parse_spice(R"(deck with models
.model mynmos nmos vto=0.6 kp=150u lambda=0.04
.model mypmos pmos vto=-0.8 kp=50u
mn out in 0 0 mynmos w=1u l=0.35u
)");
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  ASSERT_EQ(r.netlist.model_cards.size(), 2u);
  EXPECT_EQ(r.netlist.model_cards[0].type, device::MosType::nmos);
  EXPECT_DOUBLE_EQ(r.netlist.model_cards[0].params.at("vto"), 0.6);
  EXPECT_DOUBLE_EQ(r.netlist.model_cards[0].params.at("kp"), 150e-6);
  EXPECT_EQ(r.netlist.model_cards[1].type, device::MosType::pmos);
}

TEST(ModelCards, ApplyOverridesProcess) {
  const ParseResult r = parse_spice(R"(t
.model n1 nmos vto=0.62 kp=175u gamma=0.5 lambda=0.03 cj=8e-4 tox=8n
.model p1 pmos vto=-0.85
)");
  ASSERT_TRUE(r.ok());
  device::Process proc = device::Process::cmosp35();
  const auto warnings = apply_model_cards(r.netlist, &proc);
  EXPECT_TRUE(warnings.empty());
  EXPECT_DOUBLE_EQ(proc.nmos.vth0, 0.62);
  EXPECT_DOUBLE_EQ(proc.nmos.kp, 175e-6);
  EXPECT_DOUBLE_EQ(proc.nmos.gamma, 0.5);
  EXPECT_DOUBLE_EQ(proc.nmos.lambda, 0.03);
  EXPECT_DOUBLE_EQ(proc.nmos.cj, 8e-4);
  EXPECT_NEAR(proc.nmos.cox, 3.45e-11 / 8e-9, 1e-6);
  EXPECT_DOUBLE_EQ(proc.pmos.vth0, 0.85);  // magnitude convention
  // Untouched parameters keep their defaults.
  EXPECT_DOUBLE_EQ(proc.pmos.kp, device::Process::cmosp35().pmos.kp);
}

TEST(ModelCards, UnknownParameterWarns) {
  const ParseResult r = parse_spice("t\n.model n1 nmos frobnicate=3\n");
  ASSERT_TRUE(r.ok());
  device::Process proc = device::Process::cmosp35();
  const auto warnings = apply_model_cards(r.netlist, &proc);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("frobnicate"), std::string::npos);
}

TEST(ModelCards, WriterRoundTripsModelCards) {
  const ParseResult r1 =
      parse_spice("t\n.model n1 nmos vto=0.6 kp=150u\nr1 a 0 1k\n");
  ASSERT_TRUE(r1.ok());
  const ParseResult r2 = parse_spice(write_spice(r1.netlist));
  ASSERT_TRUE(r2.ok()) << (r2.errors.empty() ? "" : r2.errors[0]);
  ASSERT_EQ(r2.netlist.model_cards.size(), 1u);
  EXPECT_DOUBLE_EQ(r2.netlist.model_cards[0].params.at("vto"), 0.6);
}

TEST(ModelCards, UnsupportedTypeWarnsAtParse) {
  const ParseResult r = parse_spice("t\n.model d1 diode is=1e-14\n");
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.warnings.empty());
  EXPECT_TRUE(r.netlist.model_cards.empty());
}

}  // namespace
}  // namespace qwm::netlist
