// RAII guard for the process-global frame-kernel SIMD backend. The
// dispatch pointer is process state (set once at startup from
// QWM_SIMD_BACKEND / CPU detection), so any test that forces a backend
// must restore the previous one on every exit path — including assertion
// failures — or it would silently change which backend the rest of the
// suite runs under.
#pragma once

#include "qwm/device/frame_kernel.h"

namespace qwm::test {

class ScopedBackend {
 public:
  explicit ScopedBackend(device::kernel::Backend b)
      : saved_(device::kernel::active_backend()),
        ok_(device::kernel::set_backend(b)) {}
  ~ScopedBackend() { device::kernel::set_backend(saved_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

  /// False when the requested backend is unsupported on this host (the
  /// dispatch was left unchanged).
  bool ok() const { return ok_; }

 private:
  device::kernel::Backend saved_;
  bool ok_;
};

}  // namespace qwm::test
