// Shared, lazily-constructed device models for tests: characterizing the
// tabular models once per test binary keeps suites fast.
#pragma once

#include "qwm/device/analytic_model.h"
#include "qwm/device/model_set.h"
#include "qwm/device/tabular_model.h"

namespace qwm::test {

struct Models {
  device::Process proc = device::Process::cmosp35();
  device::AnalyticDeviceModel analytic_n = device::AnalyticDeviceModel::nmos(proc);
  device::AnalyticDeviceModel analytic_p = device::AnalyticDeviceModel::pmos(proc);
  device::TabularDeviceModel tabular_n{device::MosType::nmos, proc};
  device::TabularDeviceModel tabular_p{device::MosType::pmos, proc};

  /// The configuration both engines are compared on: identical tabular
  /// models (the paper's setup — QWM and the baseline share device data).
  device::ModelSet tabular_set() const {
    return device::ModelSet{&tabular_n, &tabular_p, &proc};
  }
  /// Golden-physics models (used when exactness matters more than speed).
  device::ModelSet analytic_set() const {
    return device::ModelSet{&analytic_n, &analytic_p, &proc};
  }
};

inline Models& models() {
  static Models m;
  return m;
}

/// Per-corner characterized models (typical/fast/slow), built once per
/// test binary on first use — three grids is real characterization work.
inline const device::CornerLibrary& corner_models() {
  static device::CornerLibrary lib(models().proc);
  return lib;
}

}  // namespace qwm::test
