// The cross-engine golden set: Table I gates and Table II stacks, each
// evaluated by QWM and by the SPICE transient baseline (1 ps steps) under
// the same worst-case step stimulus and the same tabular device models.
// Shared between tools/make_golden.cpp (which regenerates
// tests/data/golden_delays.json) and tests/sta/golden_delay_test.cpp
// (which replays the measurement and checks both engines against the
// checked-in values), so the case list cannot drift between the two.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"
#include "test_models.h"

namespace qwm::test {

struct GoldenCase {
  std::string name;
  circuit::BuiltStage built;
};

/// The measured pair of engine results for one case. Times in seconds.
struct GoldenMeasure {
  bool ok = false;
  std::string error;
  double qwm_delay = 0.0;
  double qwm_slew = 0.0;
  double spice_delay = 0.0;
  double spice_slew = 0.0;

  double delay_err_pct() const {
    return spice_delay != 0.0
               ? 100.0 * (qwm_delay - spice_delay) / spice_delay
               : 0.0;
  }
  double slew_err_pct() const {
    return spice_slew != 0.0 ? 100.0 * (qwm_slew - spice_slew) / spice_slew
                             : 0.0;
  }
};

/// Table I (logic gates at FO4 load) and Table II (NMOS/PMOS stacks).
inline std::vector<GoldenCase> golden_cases() {
  const auto& proc = models().proc;
  const double load = circuit::fanout_load_cap(proc);
  std::vector<GoldenCase> cases;
  cases.push_back({"inv", circuit::make_inverter(proc, load)});
  cases.push_back({"nand2", circuit::make_nand(proc, 2, load)});
  cases.push_back({"nand3", circuit::make_nand(proc, 3, load)});
  cases.push_back({"nand4", circuit::make_nand(proc, 4, load)});
  cases.push_back(
      {"nstack5",
       circuit::make_nmos_stack(proc, std::vector<double>(5, 2e-6), load)});
  cases.push_back(
      {"nstack7",
       circuit::make_nmos_stack(proc, std::vector<double>(7, 2e-6), load)});
  cases.push_back(
      {"nstack10",
       circuit::make_nmos_stack(proc, std::vector<double>(10, 2e-6), load)});
  cases.push_back(
      {"pstack5",
       circuit::make_pmos_stack(proc, std::vector<double>(5, 4e-6), load)});
  return cases;
}

/// Worst-case stimulus: the switching input steps at t_step, the others
/// hold their non-controlling level (the paper's Table I/II setup).
inline std::vector<numeric::PwlWaveform> golden_inputs(
    const circuit::BuiltStage& b, double t_step = 5e-12) {
  const double vdd = models().proc.vdd;
  std::vector<numeric::PwlWaveform> in;
  for (std::size_t i = 0; i < b.stage.input_count(); ++i) {
    if (static_cast<int>(i) == b.switching_input)
      in.push_back(b.output_falls
                       ? numeric::PwlWaveform::step(t_step, 0.0, vdd)
                       : numeric::PwlWaveform::step(t_step, vdd, 0.0));
    else
      in.push_back(numeric::PwlWaveform::constant(b.output_falls ? vdd : 0.0));
  }
  return in;
}

/// Runs both engines on one case: QWM on the stage path, the SPICE
/// baseline at 1 ps fixed steps over the same window, both measured at
/// the 50% point (delay) and 10%-90% swing (slew). The ModelSet overload
/// measures the same stage geometry against other device models (corner
/// grids): gate layout is corner-invariant, only the electrical model
/// moves.
inline GoldenMeasure measure_golden(const circuit::BuiltStage& b,
                                    const device::ModelSet& ms) {
  GoldenMeasure m;
  const double vdd = models().proc.vdd;
  const auto inputs = golden_inputs(b);

  const core::StageTiming st = core::evaluate_stage(b, inputs, ms);
  if (!st.ok) {
    m.error = "qwm: " + st.error;
    return m;
  }
  if (!st.delay || !st.output_slew) {
    m.error = "qwm: no output crossing";
    return m;
  }
  m.qwm_delay = *st.delay;
  m.qwm_slew = *st.output_slew;

  // SPICE baseline with the worst-case precharge initial condition.
  spice::StageSim sim = spice::circuit_from_stage(b.stage, ms, inputs);
  const double pre = b.output_falls ? vdd : 0.0;
  for (std::size_t n = 0; n < b.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (b.stage.is_rail(id)) continue;
    sim.circuit.set_ic(sim.node_of[n], pre);
  }
  spice::TransientOptions opt;
  opt.dt = 1e-12;
  opt.t_stop = std::max(2.0 * st.qwm.critical_times.back(), 500e-12);
  const spice::TransientResult ref = spice::simulate_transient(sim.circuit, opt);

  const auto& w_in = inputs[b.switching_input];
  const auto& w_out = ref.waveforms[sim.node_of[b.output]];
  const auto t_in = w_in.crossing(0.5 * vdd, 0.0, b.output_falls);
  const auto t_out =
      t_in ? w_out.crossing(0.5 * vdd, *t_in, !b.output_falls) : std::nullopt;
  if (!t_in || !t_out) {
    m.error = "spice: no output crossing";
    return m;
  }
  m.spice_delay = *t_out - *t_in;

  const double v_hi = 0.9 * vdd, v_lo = 0.1 * vdd;
  const auto t1 = w_out.crossing(b.output_falls ? v_hi : v_lo, *t_in);
  const auto t2 =
      t1 ? w_out.crossing(b.output_falls ? v_lo : v_hi, *t1) : std::nullopt;
  if (!t1 || !t2) {
    m.error = "spice: no slew window";
    return m;
  }
  m.spice_slew = *t2 - *t1;
  m.ok = true;
  return m;
}

inline GoldenMeasure measure_golden(const circuit::BuiltStage& b) {
  return measure_golden(b, models().tabular_set());
}

}  // namespace qwm::test
