file(REMOVE_RECURSE
  "CMakeFiles/decoder_tree.dir/decoder_tree.cpp.o"
  "CMakeFiles/decoder_tree.dir/decoder_tree.cpp.o.d"
  "decoder_tree"
  "decoder_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
