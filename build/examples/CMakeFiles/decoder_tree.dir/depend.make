# Empty dependencies file for decoder_tree.
# This may be replaced when dependencies are built.
