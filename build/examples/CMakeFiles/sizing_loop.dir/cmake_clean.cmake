file(REMOVE_RECURSE
  "CMakeFiles/sizing_loop.dir/sizing_loop.cpp.o"
  "CMakeFiles/sizing_loop.dir/sizing_loop.cpp.o.d"
  "sizing_loop"
  "sizing_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizing_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
