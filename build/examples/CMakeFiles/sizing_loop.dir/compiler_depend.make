# Empty compiler generated dependencies file for sizing_loop.
# This may be replaced when dependencies are built.
