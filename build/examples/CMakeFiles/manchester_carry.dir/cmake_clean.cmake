file(REMOVE_RECURSE
  "CMakeFiles/manchester_carry.dir/manchester_carry.cpp.o"
  "CMakeFiles/manchester_carry.dir/manchester_carry.cpp.o.d"
  "manchester_carry"
  "manchester_carry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manchester_carry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
