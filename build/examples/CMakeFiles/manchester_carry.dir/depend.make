# Empty dependencies file for manchester_carry.
# This may be replaced when dependencies are built.
