file(REMOVE_RECURSE
  "CMakeFiles/qwm_sta.dir/sta.cpp.o"
  "CMakeFiles/qwm_sta.dir/sta.cpp.o.d"
  "libqwm_sta.a"
  "libqwm_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
