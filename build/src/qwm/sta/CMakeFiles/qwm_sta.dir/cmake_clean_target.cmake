file(REMOVE_RECURSE
  "libqwm_sta.a"
)
