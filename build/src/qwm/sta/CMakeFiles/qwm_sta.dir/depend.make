# Empty dependencies file for qwm_sta.
# This may be replaced when dependencies are built.
