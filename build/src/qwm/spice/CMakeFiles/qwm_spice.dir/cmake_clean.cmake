file(REMOVE_RECURSE
  "CMakeFiles/qwm_spice.dir/circuit.cpp.o"
  "CMakeFiles/qwm_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/qwm_spice.dir/from_stage.cpp.o"
  "CMakeFiles/qwm_spice.dir/from_stage.cpp.o.d"
  "CMakeFiles/qwm_spice.dir/transient.cpp.o"
  "CMakeFiles/qwm_spice.dir/transient.cpp.o.d"
  "libqwm_spice.a"
  "libqwm_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
