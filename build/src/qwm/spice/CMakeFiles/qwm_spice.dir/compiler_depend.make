# Empty compiler generated dependencies file for qwm_spice.
# This may be replaced when dependencies are built.
