file(REMOVE_RECURSE
  "libqwm_spice.a"
)
