file(REMOVE_RECURSE
  "CMakeFiles/qwm_interconnect.dir/awe.cpp.o"
  "CMakeFiles/qwm_interconnect.dir/awe.cpp.o.d"
  "CMakeFiles/qwm_interconnect.dir/from_netlist.cpp.o"
  "CMakeFiles/qwm_interconnect.dir/from_netlist.cpp.o.d"
  "CMakeFiles/qwm_interconnect.dir/moments.cpp.o"
  "CMakeFiles/qwm_interconnect.dir/moments.cpp.o.d"
  "CMakeFiles/qwm_interconnect.dir/pi_model.cpp.o"
  "CMakeFiles/qwm_interconnect.dir/pi_model.cpp.o.d"
  "CMakeFiles/qwm_interconnect.dir/rc_tree.cpp.o"
  "CMakeFiles/qwm_interconnect.dir/rc_tree.cpp.o.d"
  "libqwm_interconnect.a"
  "libqwm_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
