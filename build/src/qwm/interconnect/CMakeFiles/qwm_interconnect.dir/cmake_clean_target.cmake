file(REMOVE_RECURSE
  "libqwm_interconnect.a"
)
