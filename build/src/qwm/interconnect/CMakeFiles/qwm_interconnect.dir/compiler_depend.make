# Empty compiler generated dependencies file for qwm_interconnect.
# This may be replaced when dependencies are built.
