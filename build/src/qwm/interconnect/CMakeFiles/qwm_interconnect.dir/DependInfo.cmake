
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qwm/interconnect/awe.cpp" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/awe.cpp.o" "gcc" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/awe.cpp.o.d"
  "/root/repo/src/qwm/interconnect/from_netlist.cpp" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/from_netlist.cpp.o" "gcc" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/from_netlist.cpp.o.d"
  "/root/repo/src/qwm/interconnect/moments.cpp" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/moments.cpp.o" "gcc" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/moments.cpp.o.d"
  "/root/repo/src/qwm/interconnect/pi_model.cpp" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/pi_model.cpp.o" "gcc" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/pi_model.cpp.o.d"
  "/root/repo/src/qwm/interconnect/rc_tree.cpp" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/rc_tree.cpp.o" "gcc" "src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/rc_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qwm/numeric/CMakeFiles/qwm_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/device/CMakeFiles/qwm_device.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/netlist/CMakeFiles/qwm_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
