file(REMOVE_RECURSE
  "libqwm_circuit.a"
)
