
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qwm/circuit/builders.cpp" "src/qwm/circuit/CMakeFiles/qwm_circuit.dir/builders.cpp.o" "gcc" "src/qwm/circuit/CMakeFiles/qwm_circuit.dir/builders.cpp.o.d"
  "/root/repo/src/qwm/circuit/partition.cpp" "src/qwm/circuit/CMakeFiles/qwm_circuit.dir/partition.cpp.o" "gcc" "src/qwm/circuit/CMakeFiles/qwm_circuit.dir/partition.cpp.o.d"
  "/root/repo/src/qwm/circuit/path.cpp" "src/qwm/circuit/CMakeFiles/qwm_circuit.dir/path.cpp.o" "gcc" "src/qwm/circuit/CMakeFiles/qwm_circuit.dir/path.cpp.o.d"
  "/root/repo/src/qwm/circuit/stage.cpp" "src/qwm/circuit/CMakeFiles/qwm_circuit.dir/stage.cpp.o" "gcc" "src/qwm/circuit/CMakeFiles/qwm_circuit.dir/stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qwm/device/CMakeFiles/qwm_device.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/netlist/CMakeFiles/qwm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/numeric/CMakeFiles/qwm_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
