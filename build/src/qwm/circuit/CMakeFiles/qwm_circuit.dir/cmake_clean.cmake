file(REMOVE_RECURSE
  "CMakeFiles/qwm_circuit.dir/builders.cpp.o"
  "CMakeFiles/qwm_circuit.dir/builders.cpp.o.d"
  "CMakeFiles/qwm_circuit.dir/partition.cpp.o"
  "CMakeFiles/qwm_circuit.dir/partition.cpp.o.d"
  "CMakeFiles/qwm_circuit.dir/path.cpp.o"
  "CMakeFiles/qwm_circuit.dir/path.cpp.o.d"
  "CMakeFiles/qwm_circuit.dir/stage.cpp.o"
  "CMakeFiles/qwm_circuit.dir/stage.cpp.o.d"
  "libqwm_circuit.a"
  "libqwm_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
