# Empty dependencies file for qwm_circuit.
# This may be replaced when dependencies are built.
