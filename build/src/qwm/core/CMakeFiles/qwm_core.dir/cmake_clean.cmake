file(REMOVE_RECURSE
  "CMakeFiles/qwm_core.dir/elmore_eval.cpp.o"
  "CMakeFiles/qwm_core.dir/elmore_eval.cpp.o.d"
  "CMakeFiles/qwm_core.dir/metrics.cpp.o"
  "CMakeFiles/qwm_core.dir/metrics.cpp.o.d"
  "CMakeFiles/qwm_core.dir/qwm.cpp.o"
  "CMakeFiles/qwm_core.dir/qwm.cpp.o.d"
  "CMakeFiles/qwm_core.dir/stage_eval.cpp.o"
  "CMakeFiles/qwm_core.dir/stage_eval.cpp.o.d"
  "CMakeFiles/qwm_core.dir/waveform.cpp.o"
  "CMakeFiles/qwm_core.dir/waveform.cpp.o.d"
  "libqwm_core.a"
  "libqwm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
