file(REMOVE_RECURSE
  "libqwm_core.a"
)
