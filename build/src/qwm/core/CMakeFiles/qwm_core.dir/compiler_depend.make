# Empty compiler generated dependencies file for qwm_core.
# This may be replaced when dependencies are built.
