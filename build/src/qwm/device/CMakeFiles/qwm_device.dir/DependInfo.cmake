
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qwm/device/analytic_model.cpp" "src/qwm/device/CMakeFiles/qwm_device.dir/analytic_model.cpp.o" "gcc" "src/qwm/device/CMakeFiles/qwm_device.dir/analytic_model.cpp.o.d"
  "/root/repo/src/qwm/device/characterize.cpp" "src/qwm/device/CMakeFiles/qwm_device.dir/characterize.cpp.o" "gcc" "src/qwm/device/CMakeFiles/qwm_device.dir/characterize.cpp.o.d"
  "/root/repo/src/qwm/device/device_model.cpp" "src/qwm/device/CMakeFiles/qwm_device.dir/device_model.cpp.o" "gcc" "src/qwm/device/CMakeFiles/qwm_device.dir/device_model.cpp.o.d"
  "/root/repo/src/qwm/device/grid_io.cpp" "src/qwm/device/CMakeFiles/qwm_device.dir/grid_io.cpp.o" "gcc" "src/qwm/device/CMakeFiles/qwm_device.dir/grid_io.cpp.o.d"
  "/root/repo/src/qwm/device/mosfet_physics.cpp" "src/qwm/device/CMakeFiles/qwm_device.dir/mosfet_physics.cpp.o" "gcc" "src/qwm/device/CMakeFiles/qwm_device.dir/mosfet_physics.cpp.o.d"
  "/root/repo/src/qwm/device/process.cpp" "src/qwm/device/CMakeFiles/qwm_device.dir/process.cpp.o" "gcc" "src/qwm/device/CMakeFiles/qwm_device.dir/process.cpp.o.d"
  "/root/repo/src/qwm/device/tabular_model.cpp" "src/qwm/device/CMakeFiles/qwm_device.dir/tabular_model.cpp.o" "gcc" "src/qwm/device/CMakeFiles/qwm_device.dir/tabular_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qwm/numeric/CMakeFiles/qwm_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
