# Empty compiler generated dependencies file for qwm_device.
# This may be replaced when dependencies are built.
