file(REMOVE_RECURSE
  "libqwm_device.a"
)
