file(REMOVE_RECURSE
  "CMakeFiles/qwm_device.dir/analytic_model.cpp.o"
  "CMakeFiles/qwm_device.dir/analytic_model.cpp.o.d"
  "CMakeFiles/qwm_device.dir/characterize.cpp.o"
  "CMakeFiles/qwm_device.dir/characterize.cpp.o.d"
  "CMakeFiles/qwm_device.dir/device_model.cpp.o"
  "CMakeFiles/qwm_device.dir/device_model.cpp.o.d"
  "CMakeFiles/qwm_device.dir/grid_io.cpp.o"
  "CMakeFiles/qwm_device.dir/grid_io.cpp.o.d"
  "CMakeFiles/qwm_device.dir/mosfet_physics.cpp.o"
  "CMakeFiles/qwm_device.dir/mosfet_physics.cpp.o.d"
  "CMakeFiles/qwm_device.dir/process.cpp.o"
  "CMakeFiles/qwm_device.dir/process.cpp.o.d"
  "CMakeFiles/qwm_device.dir/tabular_model.cpp.o"
  "CMakeFiles/qwm_device.dir/tabular_model.cpp.o.d"
  "libqwm_device.a"
  "libqwm_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
