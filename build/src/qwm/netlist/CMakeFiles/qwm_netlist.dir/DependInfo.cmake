
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qwm/netlist/apply_models.cpp" "src/qwm/netlist/CMakeFiles/qwm_netlist.dir/apply_models.cpp.o" "gcc" "src/qwm/netlist/CMakeFiles/qwm_netlist.dir/apply_models.cpp.o.d"
  "/root/repo/src/qwm/netlist/flat.cpp" "src/qwm/netlist/CMakeFiles/qwm_netlist.dir/flat.cpp.o" "gcc" "src/qwm/netlist/CMakeFiles/qwm_netlist.dir/flat.cpp.o.d"
  "/root/repo/src/qwm/netlist/parser.cpp" "src/qwm/netlist/CMakeFiles/qwm_netlist.dir/parser.cpp.o" "gcc" "src/qwm/netlist/CMakeFiles/qwm_netlist.dir/parser.cpp.o.d"
  "/root/repo/src/qwm/netlist/writer.cpp" "src/qwm/netlist/CMakeFiles/qwm_netlist.dir/writer.cpp.o" "gcc" "src/qwm/netlist/CMakeFiles/qwm_netlist.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qwm/numeric/CMakeFiles/qwm_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/device/CMakeFiles/qwm_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
