# Empty compiler generated dependencies file for qwm_netlist.
# This may be replaced when dependencies are built.
