file(REMOVE_RECURSE
  "CMakeFiles/qwm_netlist.dir/apply_models.cpp.o"
  "CMakeFiles/qwm_netlist.dir/apply_models.cpp.o.d"
  "CMakeFiles/qwm_netlist.dir/flat.cpp.o"
  "CMakeFiles/qwm_netlist.dir/flat.cpp.o.d"
  "CMakeFiles/qwm_netlist.dir/parser.cpp.o"
  "CMakeFiles/qwm_netlist.dir/parser.cpp.o.d"
  "CMakeFiles/qwm_netlist.dir/writer.cpp.o"
  "CMakeFiles/qwm_netlist.dir/writer.cpp.o.d"
  "libqwm_netlist.a"
  "libqwm_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
