file(REMOVE_RECURSE
  "libqwm_netlist.a"
)
