# CMake generated Testfile for 
# Source directory: /root/repo/src/qwm/numeric
# Build directory: /root/repo/build/src/qwm/numeric
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
