# Empty compiler generated dependencies file for qwm_numeric.
# This may be replaced when dependencies are built.
