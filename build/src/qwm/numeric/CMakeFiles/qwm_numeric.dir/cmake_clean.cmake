file(REMOVE_RECURSE
  "CMakeFiles/qwm_numeric.dir/interp.cpp.o"
  "CMakeFiles/qwm_numeric.dir/interp.cpp.o.d"
  "CMakeFiles/qwm_numeric.dir/matrix.cpp.o"
  "CMakeFiles/qwm_numeric.dir/matrix.cpp.o.d"
  "CMakeFiles/qwm_numeric.dir/newton.cpp.o"
  "CMakeFiles/qwm_numeric.dir/newton.cpp.o.d"
  "CMakeFiles/qwm_numeric.dir/polyfit.cpp.o"
  "CMakeFiles/qwm_numeric.dir/polyfit.cpp.o.d"
  "CMakeFiles/qwm_numeric.dir/pwl.cpp.o"
  "CMakeFiles/qwm_numeric.dir/pwl.cpp.o.d"
  "CMakeFiles/qwm_numeric.dir/roots.cpp.o"
  "CMakeFiles/qwm_numeric.dir/roots.cpp.o.d"
  "CMakeFiles/qwm_numeric.dir/sherman_morrison.cpp.o"
  "CMakeFiles/qwm_numeric.dir/sherman_morrison.cpp.o.d"
  "CMakeFiles/qwm_numeric.dir/tridiagonal.cpp.o"
  "CMakeFiles/qwm_numeric.dir/tridiagonal.cpp.o.d"
  "libqwm_numeric.a"
  "libqwm_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
