
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qwm/numeric/interp.cpp" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/interp.cpp.o" "gcc" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/interp.cpp.o.d"
  "/root/repo/src/qwm/numeric/matrix.cpp" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/matrix.cpp.o" "gcc" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/matrix.cpp.o.d"
  "/root/repo/src/qwm/numeric/newton.cpp" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/newton.cpp.o" "gcc" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/newton.cpp.o.d"
  "/root/repo/src/qwm/numeric/polyfit.cpp" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/polyfit.cpp.o" "gcc" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/polyfit.cpp.o.d"
  "/root/repo/src/qwm/numeric/pwl.cpp" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/pwl.cpp.o" "gcc" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/pwl.cpp.o.d"
  "/root/repo/src/qwm/numeric/roots.cpp" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/roots.cpp.o" "gcc" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/roots.cpp.o.d"
  "/root/repo/src/qwm/numeric/sherman_morrison.cpp" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/sherman_morrison.cpp.o" "gcc" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/sherman_morrison.cpp.o.d"
  "/root/repo/src/qwm/numeric/tridiagonal.cpp" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/tridiagonal.cpp.o" "gcc" "src/qwm/numeric/CMakeFiles/qwm_numeric.dir/tridiagonal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
