file(REMOVE_RECURSE
  "libqwm_numeric.a"
)
