# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("qwm/numeric")
subdirs("qwm/device")
subdirs("qwm/circuit")
subdirs("qwm/netlist")
subdirs("qwm/spice")
subdirs("qwm/interconnect")
subdirs("qwm/core")
subdirs("qwm/sta")
