file(REMOVE_RECURSE
  "../bench/bench_table1_gates"
  "../bench/bench_table1_gates.pdb"
  "CMakeFiles/bench_table1_gates.dir/bench_table1_gates.cpp.o"
  "CMakeFiles/bench_table1_gates.dir/bench_table1_gates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
