file(REMOVE_RECURSE
  "../bench/bench_switch_level"
  "../bench/bench_switch_level.pdb"
  "CMakeFiles/bench_switch_level.dir/bench_switch_level.cpp.o"
  "CMakeFiles/bench_switch_level.dir/bench_switch_level.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switch_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
