# Empty compiler generated dependencies file for bench_switch_level.
# This may be replaced when dependencies are built.
