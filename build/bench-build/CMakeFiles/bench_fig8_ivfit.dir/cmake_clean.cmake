file(REMOVE_RECURSE
  "../bench/bench_fig8_ivfit"
  "../bench/bench_fig8_ivfit.pdb"
  "CMakeFiles/bench_fig8_ivfit.dir/bench_fig8_ivfit.cpp.o"
  "CMakeFiles/bench_fig8_ivfit.dir/bench_fig8_ivfit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ivfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
