# Empty dependencies file for bench_fig8_ivfit.
# This may be replaced when dependencies are built.
