
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_solver.cpp" "bench-build/CMakeFiles/bench_ablation_solver.dir/bench_ablation_solver.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablation_solver.dir/bench_ablation_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qwm/core/CMakeFiles/qwm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/sta/CMakeFiles/qwm_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/spice/CMakeFiles/qwm_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/circuit/CMakeFiles/qwm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/netlist/CMakeFiles/qwm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/interconnect/CMakeFiles/qwm_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/device/CMakeFiles/qwm_device.dir/DependInfo.cmake"
  "/root/repo/build/src/qwm/numeric/CMakeFiles/qwm_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
