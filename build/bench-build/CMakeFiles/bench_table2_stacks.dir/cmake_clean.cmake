file(REMOVE_RECURSE
  "../bench/bench_table2_stacks"
  "../bench/bench_table2_stacks.pdb"
  "CMakeFiles/bench_table2_stacks.dir/bench_table2_stacks.cpp.o"
  "CMakeFiles/bench_table2_stacks.dir/bench_table2_stacks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
