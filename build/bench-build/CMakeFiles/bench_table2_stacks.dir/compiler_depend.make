# Empty compiler generated dependencies file for bench_table2_stacks.
# This may be replaced when dependencies are built.
