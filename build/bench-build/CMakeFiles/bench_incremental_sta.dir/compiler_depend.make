# Empty compiler generated dependencies file for bench_incremental_sta.
# This may be replaced when dependencies are built.
