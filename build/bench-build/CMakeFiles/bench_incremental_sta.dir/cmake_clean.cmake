file(REMOVE_RECURSE
  "../bench/bench_incremental_sta"
  "../bench/bench_incremental_sta.pdb"
  "CMakeFiles/bench_incremental_sta.dir/bench_incremental_sta.cpp.o"
  "CMakeFiles/bench_incremental_sta.dir/bench_incremental_sta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
