# Empty dependencies file for bench_fig9_stack6.
# This may be replaced when dependencies are built.
