file(REMOVE_RECURSE
  "../bench/bench_fig7_currents"
  "../bench/bench_fig7_currents.pdb"
  "CMakeFiles/bench_fig7_currents.dir/bench_fig7_currents.cpp.o"
  "CMakeFiles/bench_fig7_currents.dir/bench_fig7_currents.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_currents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
