# Empty dependencies file for bench_fig10_decoder.
# This may be replaced when dependencies are built.
