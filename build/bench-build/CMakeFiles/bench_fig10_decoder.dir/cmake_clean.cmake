file(REMOVE_RECURSE
  "../bench/bench_fig10_decoder"
  "../bench/bench_fig10_decoder.pdb"
  "CMakeFiles/bench_fig10_decoder.dir/bench_fig10_decoder.cpp.o"
  "CMakeFiles/bench_fig10_decoder.dir/bench_fig10_decoder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
