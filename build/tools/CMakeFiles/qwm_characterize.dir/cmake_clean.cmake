file(REMOVE_RECURSE
  "CMakeFiles/qwm_characterize.dir/qwm_characterize.cpp.o"
  "CMakeFiles/qwm_characterize.dir/qwm_characterize.cpp.o.d"
  "qwm_characterize"
  "qwm_characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
