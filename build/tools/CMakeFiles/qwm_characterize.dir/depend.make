# Empty dependencies file for qwm_characterize.
# This may be replaced when dependencies are built.
