# Empty compiler generated dependencies file for qwm_sim.
# This may be replaced when dependencies are built.
