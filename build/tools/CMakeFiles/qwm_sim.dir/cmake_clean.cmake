file(REMOVE_RECURSE
  "CMakeFiles/qwm_sim.dir/qwm_sim.cpp.o"
  "CMakeFiles/qwm_sim.dir/qwm_sim.cpp.o.d"
  "qwm_sim"
  "qwm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qwm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
