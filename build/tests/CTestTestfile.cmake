# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_interconnect[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
