file(REMOVE_RECURSE
  "CMakeFiles/test_interconnect.dir/interconnect/from_netlist_test.cpp.o"
  "CMakeFiles/test_interconnect.dir/interconnect/from_netlist_test.cpp.o.d"
  "CMakeFiles/test_interconnect.dir/interconnect/interconnect_test.cpp.o"
  "CMakeFiles/test_interconnect.dir/interconnect/interconnect_test.cpp.o.d"
  "test_interconnect"
  "test_interconnect.pdb"
  "test_interconnect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
