// Google-benchmark microbenchmarks of the numerical kernels behind both
// engines: device-model evaluation (tabular vs analytic), the tridiagonal
// and Sherman-Morrison solvers vs dense LU, and a full SPICE step vs a
// full QWM region solve.
#include <benchmark/benchmark.h>

#include <random>

#include "common.h"
#include "qwm/numeric/matrix.h"
#include "qwm/numeric/sherman_morrison.h"
#include "qwm/numeric/tridiagonal.h"

namespace {

using namespace qwm;

void BM_TabularIvEval(benchmark::State& state) {
  auto& m = bench::models();
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> d(0.0, 3.3);
  device::TerminalVoltages tv{d(rng), d(rng), d(rng)};
  for (auto _ : state) {
    tv.src = tv.src < 3.29 ? tv.src + 0.01 : 0.0;  // vary the query
    benchmark::DoNotOptimize(m.tab_n.iv_eval(1e-6, 0.35e-6, tv));
  }
}
BENCHMARK(BM_TabularIvEval);

void BM_AnalyticIvEval(benchmark::State& state) {
  auto& m = bench::models();
  device::TerminalVoltages tv{2.2, 1.7, 0.4};
  for (auto _ : state) {
    tv.src = tv.src < 3.29 ? tv.src + 0.01 : 0.0;
    benchmark::DoNotOptimize(m.golden_n.iv_eval(1e-6, 0.35e-6, tv));
  }
}
BENCHMARK(BM_AnalyticIvEval);

void BM_ThomasSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(2);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  numeric::Tridiagonal a(n);
  std::vector<double> b(n), x;
  for (int i = 0; i < n; ++i) {
    a.diag[i] = 4.0 + d(rng);
    if (i > 0) a.lower[i] = d(rng);
    if (i + 1 < n) a.upper[i] = d(rng);
    b[i] = d(rng);
  }
  for (auto _ : state) {
    numeric::thomas_solve(a, b, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ThomasSolve)->Arg(8)->Arg(32)->Arg(128);

void BM_ShermanMorrison(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  numeric::Tridiagonal a(n);
  std::vector<double> u(n), v(n, 0.0), b(n), x;
  for (int i = 0; i < n; ++i) {
    a.diag[i] = 4.0 + d(rng);
    if (i > 0) a.lower[i] = d(rng);
    if (i + 1 < n) a.upper[i] = d(rng);
    u[i] = d(rng);
    b[i] = d(rng);
  }
  v[n - 1] = 1.0;
  for (auto _ : state) {
    numeric::sherman_morrison_solve(a, u, v, b, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ShermanMorrison)->Arg(8)->Arg(32)->Arg(128);

void BM_DenseLuSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  numeric::Matrix a(n, n);
  numeric::Vector b(n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a(r, c) = d(rng);
    a(r, r) += 4.0;
    b[r] = d(rng);
  }
  for (auto _ : state) benchmark::DoNotOptimize(numeric::lu_solve(a, b));
}
BENCHMARK(BM_DenseLuSolve)->Arg(8)->Arg(32)->Arg(128);

void BM_QwmStackEval(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto& m = bench::models();
  const auto stage = circuit::make_nmos_stack(
      m.proc, std::vector<double>(k, 1.2e-6),
      circuit::fanout_load_cap(m.proc));
  const auto inputs = bench::step_inputs(stage);
  const auto ms = m.set();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::evaluate_stage(stage, inputs, ms));
}
BENCHMARK(BM_QwmStackEval)->Arg(2)->Arg(6)->Arg(10);

void BM_SpiceStackTransient(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto& m = bench::models();
  const auto stage = circuit::make_nmos_stack(
      m.proc, std::vector<double>(k, 1.2e-6),
      circuit::fanout_load_cap(m.proc));
  const auto inputs = bench::step_inputs(stage);
  auto sim = bench::make_spice_sim(stage, inputs);
  spice::TransientOptions opt;
  opt.t_stop = 500e-12;
  opt.dt = 1e-12;
  for (auto _ : state)
    benchmark::DoNotOptimize(spice::simulate_transient(sim.circuit, opt));
}
BENCHMARK(BM_SpiceStackTransient)->Arg(2)->Arg(6)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
