// Google-benchmark microbenchmarks of the numerical kernels behind both
// engines: device-model evaluation (tabular vs analytic), the tridiagonal
// and Sherman-Morrison solvers vs dense LU, and a full SPICE step vs a
// full QWM region solve.
//
// Besides the default google-benchmark mode, the binary has a
// deterministic counter mode for the perf-regression smoke in
// tools/ci.sh:
//   --json FILE       run the pinned counter workload, write results
//   --counters-only   skip the wall-clock kernel medians in --json mode
//   --budget FILE     compare live work counters against a checked-in
//                     budget (tools/perf_budget.json); exit 1 on excess
// Work counters (Newton iterations, device-model evaluations, workspace
// growth) are machine-deterministic, so the budget check stays stable on
// loaded CI hosts where wall-clock timing is not.
#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "common.h"
#include "qwm/circuit/partition.h"
#include "qwm/netlist/parser.h"
#include "qwm/numeric/matrix.h"
#include "qwm/numeric/sherman_morrison.h"
#include "qwm/numeric/tridiagonal.h"
#include "qwm/sta/sta.h"

namespace {

using namespace qwm;

void BM_TabularIvEval(benchmark::State& state) {
  auto& m = bench::models();
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> d(0.0, 3.3);
  device::TerminalVoltages tv{d(rng), d(rng), d(rng)};
  for (auto _ : state) {
    tv.src = tv.src < 3.29 ? tv.src + 0.01 : 0.0;  // vary the query
    benchmark::DoNotOptimize(m.tab_n.iv_eval(1e-6, 0.35e-6, tv));
  }
}
BENCHMARK(BM_TabularIvEval);

void BM_AnalyticIvEval(benchmark::State& state) {
  auto& m = bench::models();
  device::TerminalVoltages tv{2.2, 1.7, 0.4};
  for (auto _ : state) {
    tv.src = tv.src < 3.29 ? tv.src + 0.01 : 0.0;
    benchmark::DoNotOptimize(m.golden_n.iv_eval(1e-6, 0.35e-6, tv));
  }
}
BENCHMARK(BM_AnalyticIvEval);

void BM_ThomasSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(2);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  numeric::Tridiagonal a(n);
  std::vector<double> b(n), x;
  for (int i = 0; i < n; ++i) {
    a.diag[i] = 4.0 + d(rng);
    if (i > 0) a.lower[i] = d(rng);
    if (i + 1 < n) a.upper[i] = d(rng);
    b[i] = d(rng);
  }
  for (auto _ : state) {
    numeric::thomas_solve(a, b, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ThomasSolve)->Arg(8)->Arg(32)->Arg(128);

void BM_ShermanMorrison(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  numeric::Tridiagonal a(n);
  std::vector<double> u(n), v(n, 0.0), b(n), x;
  for (int i = 0; i < n; ++i) {
    a.diag[i] = 4.0 + d(rng);
    if (i > 0) a.lower[i] = d(rng);
    if (i + 1 < n) a.upper[i] = d(rng);
    u[i] = d(rng);
    b[i] = d(rng);
  }
  v[n - 1] = 1.0;
  for (auto _ : state) {
    numeric::sherman_morrison_solve(a, u, v, b, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ShermanMorrison)->Arg(8)->Arg(32)->Arg(128);

void BM_DenseLuSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  numeric::Matrix a(n, n);
  numeric::Vector b(n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a(r, c) = d(rng);
    a(r, r) += 4.0;
    b[r] = d(rng);
  }
  for (auto _ : state) benchmark::DoNotOptimize(numeric::lu_solve(a, b));
}
BENCHMARK(BM_DenseLuSolve)->Arg(8)->Arg(32)->Arg(128);

void BM_QwmStackEval(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto& m = bench::models();
  const auto stage = circuit::make_nmos_stack(
      m.proc, std::vector<double>(k, 1.2e-6),
      circuit::fanout_load_cap(m.proc));
  const auto inputs = bench::step_inputs(stage);
  const auto ms = m.set();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::evaluate_stage(stage, inputs, ms));
}
BENCHMARK(BM_QwmStackEval)->Arg(2)->Arg(6)->Arg(10);

// The steady-state engine hot path: repeated evaluations through one
// persistent scratch workspace (what each STA lane does), instead of a
// fresh set of buffers per call.
void BM_QwmStackEvalWs(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto& m = bench::models();
  const auto stage = circuit::make_nmos_stack(
      m.proc, std::vector<double>(k, 1.2e-6),
      circuit::fanout_load_cap(m.proc));
  const auto inputs = bench::step_inputs(stage);
  const auto ms = m.set();
  const core::QwmOptions opt;
  core::EvalWorkspace ws;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::evaluate_stage(stage, inputs, ms, opt, ws));
}
BENCHMARK(BM_QwmStackEvalWs)->Arg(2)->Arg(6)->Arg(10);

// Same stage evaluated by replaying a recorded solve trace — the exact-hit
// warm-start path the incremental engine takes on re-analysis. Zero Newton
// iterations; cost is the region replay plus the residual acceptance check.
void BM_QwmStackEvalWarm(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto& m = bench::models();
  const auto stage = circuit::make_nmos_stack(
      m.proc, std::vector<double>(k, 1.2e-6),
      circuit::fanout_load_cap(m.proc));
  const auto inputs = bench::step_inputs(stage);
  const auto ms = m.set();
  core::EvalWorkspace ws;
  core::QwmOptions rec_opt;
  rec_opt.record_trace = true;
  const auto traced = core::evaluate_stage(stage, inputs, ms, rec_opt, ws);
  core::QwmOptions opt;
  opt.warm = &traced.qwm.trace;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::evaluate_stage(stage, inputs, ms, opt, ws));
}
BENCHMARK(BM_QwmStackEvalWarm)->Arg(2)->Arg(6)->Arg(10);

void BM_SpiceStackTransient(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto& m = bench::models();
  const auto stage = circuit::make_nmos_stack(
      m.proc, std::vector<double>(k, 1.2e-6),
      circuit::fanout_load_cap(m.proc));
  const auto inputs = bench::step_inputs(stage);
  auto sim = bench::make_spice_sim(stage, inputs);
  spice::TransientOptions opt;
  opt.t_stop = 500e-12;
  opt.dt = 1e-12;
  for (auto _ : state)
    benchmark::DoNotOptimize(spice::simulate_transient(sim.circuit, opt));
}
BENCHMARK(BM_SpiceStackTransient)->Arg(2)->Arg(6)->Arg(10);

struct KernelFlags {
  std::string json_path;
  std::string budget_path;
  bool counters_only = false;
};

/// Deterministic counter mode: a pinned workload (NMOS stacks cold+warm,
/// a 16-row decoder STA run) whose work counters the CI perf smoke
/// compares against tools/perf_budget.json.
int run_counter_mode(const KernelFlags& kf) {
  using namespace qwm::bench;
  auto& m = models();
  const auto ms = m.set();

  // Stack evals, cold (trace recorded) then warm (trace replayed). The
  // replay sees identical inputs, so it must reproduce the delay
  // bit-for-bit at (near) zero Newton work.
  std::vector<std::string> stack_json;
  std::uint64_t stack_newton = 0, stack_devev = 0, stack_fallback = 0;
  for (const int k : {2, 6, 10}) {
    const auto stage = circuit::make_nmos_stack(
        m.proc, std::vector<double>(static_cast<std::size_t>(k), 1.2e-6),
        circuit::fanout_load_cap(m.proc));
    const auto inputs = step_inputs(stage);
    core::QwmOptions cold_opt;
    cold_opt.record_trace = true;
    const core::StageTiming cold =
        core::evaluate_stage(stage, inputs, ms, cold_opt);
    core::QwmOptions warm_opt;
    warm_opt.warm = &cold.qwm.trace;
    const core::StageTiming warm =
        core::evaluate_stage(stage, inputs, ms, warm_opt);
    if (!cold.ok || !warm.ok) {
      std::fprintf(stderr, "stack%d evaluation failed\n", k);
      return 1;
    }
    stack_newton += cold.qwm.stats.newton_iterations;
    stack_devev += cold.qwm.stats.device_evals;
    stack_fallback += cold.qwm.stats.fallback_total() +
                      warm.qwm.stats.fallback_total();
    stack_json.push_back(
        JsonObject()
            .integer("k", static_cast<std::uint64_t>(k))
            .num("delay", cold.delay.value_or(0.0))
            .integer("regions", cold.qwm.stats.regions)
            .integer("newton_cold", cold.qwm.stats.newton_iterations)
            .integer("newton_warm", warm.qwm.stats.newton_iterations)
            .integer("device_evals_cold", cold.qwm.stats.device_evals)
            .integer("device_evals_warm", warm.qwm.stats.device_evals)
            .integer("lu_fallbacks", cold.qwm.stats.lu_fallbacks)
            .integer("warm_bit_identical",
                     warm.delay.value_or(-1.0) == cold.delay.value_or(-2.0)
                         ? 1
                         : 0)
            .str());
  }

  // Pinned decoder STA run (16 rows, 4 driver variants, one lane, memo
  // cache on): the end-to-end counter workload.
  const auto parsed = qwm::netlist::parse_spice(make_decoder_deck(16, 4));
  if (!parsed.ok()) {
    std::fprintf(stderr, "decoder netlist parse failed\n");
    return 1;
  }
  const auto design = circuit::partition_netlist(parsed.netlist, ms);
  qwm::sta::StaOptions sopt;
  sopt.threads = 1;
  sopt.use_cache = true;
  qwm::sta::StaEngine engine(design, ms, sopt);
  const std::size_t evals = engine.run();
  const auto cache = engine.cache_stats();
  const auto qs = engine.qwm_stats();
  const auto ws1 = engine.workspace_stats();
  // Steady-state allocation check: a second full analysis through the
  // same per-lane workspaces must not grow any scratch buffer.
  engine.clear_cache();
  engine.run();
  const auto ws2 = engine.workspace_stats();
  const std::uint64_t ws_grow_steady =
      static_cast<std::uint64_t>(ws2.grow_events - ws1.grow_events);

  // Same pinned decoder at all three process corners. The contract under
  // test: the fast/slow lanes warm-start from the typical lane's traces,
  // so the whole 3-corner analysis must stay under 2x the single-corner
  // device-eval work (corner_amort_x100 < 200), not 3x.
  const qwm::device::CornerLibrary corner_lib(m.proc);
  qwm::sta::StaEngine corner_engine(design, corner_lib.sets(), sopt);
  corner_engine.run();
  const auto cqs = corner_engine.qwm_stats();
  const std::uint64_t corner_amort_x100 =
      qs.device_evals > 0 ? (100 * cqs.device_evals) / qs.device_evals : 0;

  struct Live {
    const char* key;
    std::uint64_t value;
  };
  const std::vector<Live> live = {
      {"stack_newton_total", stack_newton},
      {"stack_device_evals_total", stack_devev},
      {"decoder_newton_iters", qs.newton_iterations},
      {"decoder_device_evals", qs.device_evals},
      // Batched-kernel occupancy: ceil-width group count and useful lanes
      // per batch call. Computed from batch sizes with the fixed logical
      // width, so identical on the scalar and AVX2 backends alike.
      {"decoder_simd_batches", qs.simd_batches},
      {"decoder_simd_lanes_filled", qs.simd_lanes_filled},
      {"decoder_qwm_runs", cache.misses},
      {"corners3_newton_iters", cqs.newton_iterations},
      {"corners3_device_evals", cqs.device_evals},
      {"corner_amort_x100", corner_amort_x100},
      {"ws_grow_steady", ws_grow_steady},
      // Any nonzero value means a nominal workload needed the fallback
      // ladder — budgeted at 0: degradation on the pinned decks is a bug.
      {"fallback_total", stack_fallback + qs.fallback_total()},
  };
  std::printf("pinned counter workload:\n");
  for (const auto& l : live)
    std::printf("  %-26s %llu\n", l.key, (unsigned long long)l.value);

  // Optional wall-clock medians of the kernels with recorded baselines
  // (hand-timed versions of the google-benchmark definitions above).
  std::vector<std::string> kernel_json;
  if (!kf.counters_only) {
    {
      qwm::device::TerminalVoltages tv{0.0, 1.7, 0.4};
      const int reps = 1000;
      const double s = time_seconds([&] {
        for (int i = 0; i < reps; ++i) {
          tv.src = tv.src < 3.29 ? tv.src + 0.01 : 0.0;
          benchmark::DoNotOptimize(m.tab_n.iv_eval(1e-6, 0.35e-6, tv));
        }
      });
      kernel_json.push_back(JsonObject()
                                .str("name", "tabular_iv_eval")
                                .num("ns_per_op", s * 1e9 / reps)
                                .str());
    }
    for (const int k : {2, 6, 10}) {
      const auto stage = circuit::make_nmos_stack(
          m.proc, std::vector<double>(static_cast<std::size_t>(k), 1.2e-6),
          circuit::fanout_load_cap(m.proc));
      const auto inputs = step_inputs(stage);
      const double s =
          time_seconds([&] { core::evaluate_stage(stage, inputs, ms); });
      kernel_json.push_back(JsonObject()
                                .str("name", "qwm_stack_eval/" +
                                                 std::to_string(k))
                                .num("ns_per_op", s * 1e9)
                                .str());
      // Steady-state hot path: one persistent workspace across calls,
      // as each STA lane runs it.
      const core::QwmOptions opt;
      core::EvalWorkspace ws;
      const double sw = time_seconds(
          [&] { core::evaluate_stage(stage, inputs, ms, opt, ws); });
      kernel_json.push_back(JsonObject()
                                .str("name", "qwm_stack_eval_ws/" +
                                                 std::to_string(k))
                                .num("ns_per_op", sw * 1e9)
                                .num("speedup_vs_cold", s / sw)
                                .str());
      // Incremental re-analysis hot path: replay a recorded trace through
      // the persistent workspace (zero Newton iterations on an exact hit).
      // Timed in the same process as the cold path so the ratio is immune
      // to host frequency drift between runs.
      core::QwmOptions rec_opt;
      rec_opt.record_trace = true;
      const auto traced = core::evaluate_stage(stage, inputs, ms, rec_opt, ws);
      core::QwmOptions warm_opt;
      warm_opt.warm = &traced.qwm.trace;
      const double swarm = time_seconds(
          [&] { core::evaluate_stage(stage, inputs, ms, warm_opt, ws); });
      kernel_json.push_back(JsonObject()
                                .str("name", "qwm_stack_eval_warm/" +
                                                 std::to_string(k))
                                .num("ns_per_op", swarm * 1e9)
                                .num("speedup_vs_cold", s / swarm)
                                .str());
    }
    for (const auto& j : kernel_json) std::printf("  %s\n", j.c_str());
  }

  int rc = 0;
  if (!kf.budget_path.empty()) {
    std::string text;
    if (!read_text_file(kf.budget_path, &text)) return 1;
    for (const auto& l : live) {
      double b = 0.0;
      if (!json_find_number(text, l.key, &b)) {
        std::fprintf(stderr, "perf budget: key %s missing from %s\n", l.key,
                     kf.budget_path.c_str());
        rc = 1;
        continue;
      }
      if (static_cast<double>(l.value) > b) {
        std::fprintf(stderr,
                     "perf budget EXCEEDED: %s = %llu > budget %.0f\n", l.key,
                     (unsigned long long)l.value, b);
        rc = 1;
      } else {
        std::printf("perf budget ok: %-26s %llu <= %.0f\n", l.key,
                    (unsigned long long)l.value, b);
      }
    }
  }

  if (!kf.json_path.empty()) {
    JsonObject decoder;
    decoder.integer("rows", 16)
        .integer("stages", design.stages.size())
        .integer("evals", evals)
        .integer("qwm_runs", cache.misses)
        .integer("newton_iters", qs.newton_iterations)
        .integer("device_evals", qs.device_evals)
        .integer("simd_batches", qs.simd_batches)
        .integer("simd_lanes_filled", qs.simd_lanes_filled)
        .integer("warm_starts", qs.warm_starts)
        .integer("warm_retries", qs.warm_retries)
        .integer("lu_fallbacks", qs.lu_fallbacks)
        .integer("fallback_nominal",
                 qs.fallback_counts[qwm::core::kRungNominal])
        .integer("fallback_damped", qs.fallback_counts[qwm::core::kRungDamped])
        .integer("fallback_bisect", qs.fallback_counts[qwm::core::kRungBisect])
        .integer("fallback_spice", qs.fallback_counts[qwm::core::kRungSpice])
        .integer("ws_high_water_bytes", ws1.high_water_bytes)
        .integer("ws_grow_steady", ws_grow_steady);
    JsonObject corners3;
    corners3.integer("corners", 3)
        .integer("newton_iters", cqs.newton_iterations)
        .integer("device_evals", cqs.device_evals)
        .integer("warm_starts", cqs.warm_starts)
        .integer("warm_retries", cqs.warm_retries)
        .integer("amort_x100", corner_amort_x100);
    // Per-lane breakdown: where the cross-corner sharing pays (or fails to).
    std::vector<std::string> lane_json;
    for (const qwm::device::Corner c : corner_engine.corners()) {
      const auto lqs = corner_engine.qwm_stats(c);
      lane_json.push_back(JsonObject()
                              .str("corner", qwm::device::corner_name(c))
                              .integer("newton_iters", lqs.newton_iterations)
                              .integer("device_evals", lqs.device_evals)
                              .integer("warm_starts", lqs.warm_starts)
                              .integer("warm_retries", lqs.warm_retries)
                              .str());
    }
    corners3.raw("lanes", json_array(lane_json, "      "));
    JsonObject counters;
    for (const auto& l : live) counters.integer(l.key, l.value);
    std::string doc = "{\n  \"bench\": \"micro_kernels\",\n  \"stacks\": " +
                      json_array(stack_json, "    ") +
                      ",\n  \"decoder\": " + decoder.str() +
                      ",\n  \"corners3\": " + corners3.str() +
                      ",\n  \"counters\": " + counters.str();
    if (!kernel_json.empty())
      doc += ",\n  \"kernels\": " + json_array(kernel_json, "    ");
    doc += "\n}\n";
    if (!write_text_file(kf.json_path, doc)) return 1;
    std::printf("wrote %s\n", kf.json_path.c_str());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  KernelFlags kf;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      kf.json_path = argv[++i];
    else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
      kf.budget_path = argv[++i];
    else if (std::strcmp(argv[i], "--counters-only") == 0)
      kf.counters_only = true;
    else
      rest.push_back(argv[i]);
  }
  if (!kf.json_path.empty() || !kf.budget_path.empty())
    return run_counter_mode(kf);
  int bargc = static_cast<int>(rest.size());
  benchmark::Initialize(&bargc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
