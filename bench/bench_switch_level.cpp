// Motivation bench (paper §II): switch-level / Elmore evaluation
// (Crystal, IRSIM) vs QWM vs the SPICE baseline.
//
// Expected shape: the Elmore model evaluates essentially instantly but
// mis-predicts delays by tens of percent with a circuit-dependent sign,
// while QWM stays within a couple of percent — the accuracy gap that
// motivates transistor-level waveform matching.
#include <cstdio>

#include "common.h"
#include "qwm/core/elmore_eval.h"

int main() {
  using namespace qwm;
  using namespace qwm::bench;

  const auto& proc = models().proc;
  const double load = circuit::fanout_load_cap(proc);
  const auto ms = models().set();

  std::printf("Switch-level (Elmore) vs QWM vs SPICE baseline\n\n");
  std::printf("%-8s %10s %10s %10s %10s %10s\n", "circuit", "SPICE", "QWM",
              "err", "Elmore", "err");

  std::vector<std::pair<std::string, circuit::BuiltStage>> circuits;
  circuits.emplace_back("inv", circuit::make_inverter(proc, load));
  circuits.emplace_back("nand3", circuit::make_nand(proc, 3, load));
  for (int k : {4, 6, 8}) {
    circuits.emplace_back(
        "stack" + std::to_string(k),
        circuit::make_nmos_stack(proc, std::vector<double>(k, 1.2e-6), load));
  }

  for (const auto& [name, b] : circuits) {
    const auto inputs = step_inputs(b);

    spice::StageSim sim = make_spice_sim(b, inputs);
    spice::TransientOptions opt;
    opt.t_stop = 3e-9;
    opt.dt = 1e-12;
    const auto res = spice::simulate_transient(sim.circuit, opt);
    const auto t_in =
        inputs[b.switching_input].crossing(0.5 * proc.vdd, 0.0, true);
    const auto t_out = res.waveforms[sim.node_of[b.output]].crossing(
        0.5 * proc.vdd, *t_in, false);
    const double ref = *t_out - *t_in;

    const auto qwm = core::evaluate_stage(b, inputs, ms);
    const auto elm =
        core::evaluate_stage_elmore(b.stage, b.output, b.output_falls, ms);
    if (!qwm.ok || !qwm.delay || !elm.ok) {
      std::printf("%-8s  evaluation failed\n", name.c_str());
      continue;
    }
    std::printf("%-8s %8.1fps %8.1fps %9.1f%% %8.1fps %9.1f%%\n",
                name.c_str(), ref * 1e12, *qwm.delay * 1e12,
                100.0 * (*qwm.delay - ref) / ref, elm.delay * 1e12,
                100.0 * (elm.delay - ref) / ref);
  }

  std::printf("\n(Elmore delay = ln2 * sum R_cum*C with mid-swing chord\n"
              "resistances; same path extraction and capacitances as QWM,\n"
              "so the error isolates the evaluation model.)\n");
  return 0;
}
