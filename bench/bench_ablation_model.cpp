// Ablation of DESIGN.md's region-model choices:
//   1. linear current -> quadratic voltage (the paper's QWM) vs constant
//      current -> linear voltage (piecewise-linear matching);
//   2. tail-target ladder density (accuracy vs number of region solves).
//
// Expected shape: the quadratic model dominates the linear one at equal
// region counts; accuracy improves monotonically with ladder density
// while cost stays far below the SPICE baseline.
#include <cstdio>

#include "common.h"

int main() {
  using namespace qwm;
  using namespace qwm::bench;

  const auto& proc = models().proc;
  const double load = circuit::fanout_load_cap(proc);
  const auto ms = models().set();

  const auto stage = circuit::make_nmos_stack(
      proc, std::vector<double>(5, 1.2e-6), load);
  const auto inputs = step_inputs(stage);

  // SPICE reference delay.
  spice::StageSim sim = make_spice_sim(stage, inputs);
  spice::TransientOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 1e-12;
  const auto ref = spice::simulate_transient(sim.circuit, opt);
  const auto t_in = inputs[0].crossing(0.5 * proc.vdd, 0.0, true);
  const auto t_out = ref.waveforms[sim.node_of[stage.output]].crossing(
      0.5 * proc.vdd, *t_in, false);
  const double ref_delay = *t_out - *t_in;
  std::printf("Reference (SPICE 1ps) delay: %.2f ps\n\n", ref_delay * 1e12);

  std::printf("Region model x tail-ladder density (5-stack):\n");
  std::printf("%-10s %7s %9s %10s %10s\n", "model", "tails", "regions",
              "delay[ps]", "error");
  for (const auto model :
       {core::RegionModel::quadratic, core::RegionModel::linear,
        core::RegionModel::cubic}) {
    for (const int tails : {3, 6, 12, 27}) {
      core::QwmOptions o;
      o.model = model;
      o.tail_fractions.clear();
      for (int i = 0; i < tails; ++i)
        o.tail_fractions.push_back(0.95 - 0.92 * (i + 0.5) / tails);
      const auto st = core::evaluate_stage(stage, inputs, ms, o);
      const char* mname = model == core::RegionModel::quadratic ? "quadratic"
                          : model == core::RegionModel::linear  ? "linear"
                                                                : "cubic(r=2)";
      if (!st.ok || !st.delay) {
        std::printf("%-10s %7d   (failed: %s)\n", mname, tails,
                    st.error.c_str());
        continue;
      }
      std::printf("%-10s %7d %9zu %10.2f %9.2f%%\n", mname, tails,
                  st.qwm.stats.regions, *st.delay * 1e12,
                  100.0 * (*st.delay - ref_delay) / ref_delay);
    }
  }

  // Device-model ablation: tabular (compressed) vs direct analytic golden
  // physics inside QWM.
  std::printf("\nDevice model inside QWM (27-tail ladder):\n");
  const auto golden = models().golden_set();
  const auto st_tab = core::evaluate_stage(stage, inputs, ms);
  const auto st_gold = core::evaluate_stage(stage, inputs, golden);
  const double t_tab =
      time_seconds([&] { core::evaluate_stage(stage, inputs, ms); });
  const double t_gold =
      time_seconds([&] { core::evaluate_stage(stage, inputs, golden); });
  if (st_tab.ok && st_gold.ok && st_tab.delay && st_gold.delay) {
    std::printf("  tabular : %.3f ms, delay %.2f ps\n", t_tab * 1e3,
                *st_tab.delay * 1e12);
    std::printf("  analytic: %.3f ms, delay %.2f ps\n", t_gold * 1e3,
                *st_gold.delay * 1e12);
    std::printf("  model-compression delay shift: %.2f%%\n",
                100.0 * (*st_tab.delay - *st_gold.delay) / *st_gold.delay);
  }
  return 0;
}
