// Table II reproduction: QWM vs the SPICE baseline for randomly generated
// logic stages — NMOS stacks of length 5..10, three random-width
// configurations each.
//
// Paper: average speedup > 50x at 1 ps steps and > 3x (reported >30x for
// the set) at 10 ps, with delay errors averaging 1.0% and worst case
// 3.66%. Expected shape: speedup grows with stack length; errors stay in
// low single digits across all widths.
#include <cstdio>
#include <random>

#include "common.h"

int main() {
  using namespace qwm;
  using namespace qwm::bench;

  const auto& proc = models().proc;
  const double load = circuit::fanout_load_cap(proc);
  std::mt19937 rng(2003);  // DATE 2003
  std::uniform_real_distribution<double> width(1.0e-6, 4.0e-6);

  std::printf("Table II: QWM vs SPICE for randomly generated stacks\n");
  std::printf("(stack length 5..10, 3 random width configs each)\n\n");
  std::printf("%4s ", "Size");
  print_comparison_header("Ckt");

  double err_sum = 0.0, err_worst = 0.0;
  double sp1_sum = 0.0, sp10_sum = 0.0;
  int n = 0;
  for (int k = 5; k <= 10; ++k) {
    for (int cfg = 1; cfg <= 3; ++cfg) {
      std::vector<double> widths(k);
      for (double& w : widths) w = width(rng);
      const auto stage = circuit::make_nmos_stack(proc, widths, load);
      const ComparisonRow row =
          compare_stage("ckt" + std::to_string(cfg), stage);
      std::printf("%4d ", k);
      print_comparison_row(row);
      err_sum += std::abs(row.delay_error_pct);
      err_worst = std::max(err_worst, std::abs(row.delay_error_pct));
      sp1_sum += row.speedup_1ps;
      sp10_sum += row.speedup_10ps;
      ++n;
    }
  }
  std::printf(
      "\nAverages: speedup(1ps) %.1fx, speedup(10ps) %.1fx, "
      "|delay error| %.2f%% (worst %.2f%%)\n",
      sp1_sum / n, sp10_sum / n, err_sum / n, err_worst);
  return 0;
}
