// Service throughput benchmark: concurrent timing queries through the
// qwm_serve dispatch layer (in-process, no sockets) over the two
// paper-shaped workloads — the Fig. 10 row decoder and the Table I gate
// farm. N client threads issue a mixed read workload (70% ARRIVAL, 15%
// SLACK, 10% CRITPATH, 5% STATS) through Server::handle_line while one
// writer thread runs RESIZE+UPDATE what-if transactions; the harness
// reports sustained QPS and per-verb p50/p99 latency.
// Flags: --clients N (default 8), --requests M per client (default 400),
//        --rows N (workload size, default 32), --threads N (engine
//        lanes, default 4), --no-cache.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "qwm/service/server.h"

namespace {

using Clock = std::chrono::steady_clock;
using qwm::service::Verb;

struct Flags {
  int clients = 8;
  int requests = 400;
  int rows = 32;
  int threads = 4;
  bool cache = true;

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
        f.clients = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
        f.requests = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
        f.rows = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
        f.threads = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--no-cache") == 0)
        f.cache = false;
      else {
        std::fprintf(stderr,
                     "unknown flag: %s\nusage: %s [--clients N] "
                     "[--requests M] [--rows N] [--threads N] [--no-cache]\n",
                     argv[i], argv[0]);
        std::exit(2);
      }
    }
    f.clients = std::max(f.clients, 1);
    f.requests = std::max(f.requests, 1);
    f.rows = std::max(f.rows, 1);
    f.threads = std::max(f.threads, 1);
    return f;
  }
};

/// Fig. 10 shape: 3 buffered address lines fanning out to `rows` NAND3
/// rows with sized two-stage wordline drivers (see bench_fig10_decoder).
std::string make_decoder_design(int rows, int variants) {
  std::ostringstream os;
  os << "row decoder\n" << "vdd vdd 0 3.3\n";
  for (int i = 0; i < 3; ++i) {
    os << "vin" << i << " a" << i << " 0 0\n";
    os << "mpb" << i << "1 b" << i << "1 a" << i
       << " vdd vdd pmos w=4u l=0.35u\n";
    os << "mnb" << i << "1 b" << i << "1 a" << i << " 0 0 nmos w=2u l=0.35u\n";
    os << "mpb" << i << "2 b" << i << "2 b" << i << "1"
       << " vdd vdd pmos w=16u l=0.35u\n";
    os << "mnb" << i << "2 b" << i << "2 b" << i << "1"
       << " 0 0 nmos w=8u l=0.35u\n";
    os << "mpb" << i << "3 l" << i << " b" << i << "2"
       << " vdd vdd pmos w=64u l=0.35u\n";
    os << "mnb" << i << "3 l" << i << " b" << i << "2"
       << " 0 0 nmos w=32u l=0.35u\n";
  }
  os << "cl0 l0 0 10f\n";
  for (int r = 0; r < rows; ++r) {
    const double scale = 1.0 + 0.25 * (r % variants);
    os << "mpr" << r << "a w" << r << " l0 vdd vdd pmos w=2u l=0.35u\n";
    os << "mpr" << r << "b w" << r << " l1 vdd vdd pmos w=2u l=0.35u\n";
    os << "mpr" << r << "c w" << r << " l2 vdd vdd pmos w=2u l=0.35u\n";
    os << "mnr" << r << "a w" << r << " l2 x" << r << "1 0 nmos w=2u l=0.35u\n";
    os << "mnr" << r << "b x" << r << "1 l1 x" << r << "2 0 nmos w=2u l=0.35u\n";
    os << "mnr" << r << "c x" << r << "2 l0 0 0 nmos w=2u l=0.35u\n";
    os << "mpd" << r << "1 d" << r << " w" << r << " vdd vdd pmos w="
       << 2.0 * scale << "u l=0.35u\n";
    os << "mnd" << r << "1 d" << r << " w" << r << " 0 0 nmos w="
       << 1.0 * scale << "u l=0.35u\n";
    os << "mpd" << r << "2 wl" << r << " d" << r << " vdd vdd pmos w="
       << 4.0 * scale << "u l=0.35u\n";
    os << "mnd" << r << "2 wl" << r << " d" << r << " 0 0 nmos w="
       << 2.0 * scale << "u l=0.35u\n";
    os << "cwl" << r << " wl" << r << " 0 60f\n";
  }
  return os.str();
}

/// Table I shape: a buffered stimulus fanning out to `rows` instances of
/// inv / nand2 / nand3 / nand4 (see bench_table1_gates).
std::string make_gate_farm(int rows) {
  std::ostringstream os;
  os << "table1 gate farm\n" << "vdd vdd 0 3.3\n";
  os << "vin a 0 0\n";
  os << "mpb1 b a vdd vdd pmos w=8u l=0.35u\n";
  os << "mnb1 b a 0 0 nmos w=4u l=0.35u\n";
  os << "mpb2 in b vdd vdd pmos w=64u l=0.35u\n";
  os << "mnb2 in b 0 0 nmos w=32u l=0.35u\n";
  for (int r = 0; r < rows; ++r) {
    os << "mpi" << r << " yi" << r << " in vdd vdd pmos w=2u l=0.35u\n";
    os << "mni" << r << " yi" << r << " in 0 0 nmos w=1u l=0.35u\n";
    os << "ci" << r << " yi" << r << " 0 20f\n";
    for (int k = 2; k <= 4; ++k) {
      const std::string y = "yn" + std::to_string(k) + "_" + std::to_string(r);
      const std::string tag = std::to_string(k) + "_" + std::to_string(r);
      for (int p = 0; p < k; ++p)
        os << "mp" << tag << "_" << p << " " << y << " "
           << (p == 0 ? "in" : "vdd") << " vdd vdd pmos w=2u l=0.35u\n";
      for (int q = 0; q < k; ++q) {
        const std::string top =
            q == 0 ? y : "xn" + tag + "_" + std::to_string(q);
        const std::string bot =
            q == k - 1 ? "0" : "xn" + tag + "_" + std::to_string(q + 1);
        os << "mn" << tag << "_" << q << " " << top << " "
           << (q == k - 1 ? "in" : "vdd") << " " << bot
           << " 0 nmos w=2u l=0.35u\n";
      }
      os << "cn" << tag << " " << y << " 0 20f\n";
    }
  }
  return os.str();
}

std::uint64_t next_rand(std::uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double pct(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  return (*v)[static_cast<std::size_t>(p * static_cast<double>(v->size() - 1))];
}

void run_workload(const char* name, const std::string& deck, int rows,
                  const Flags& flags) {
  using namespace qwm;
  service::ServerOptions opt;
  opt.db.sta.threads = flags.threads;
  opt.db.sta.use_cache = flags.cache;
  service::Server server(opt);
  const service::LoadReply load = server.db().load_text(deck, name);
  if (!load.status.ok) {
    std::fprintf(stderr, "%s: load failed: %s\n", name,
                 load.status.message.c_str());
    return;
  }

  // Query universe: the critical-path nets plus the generators' known
  // per-row output names.
  std::vector<std::string> nets;
  const service::CritPathReply cp = server.db().critical_path();
  for (const auto& s : cp.steps) nets.push_back(s.net);
  for (int r = 0; r < rows; ++r) {
    if (std::strcmp(name, "decoder") == 0) {
      nets.push_back("wl" + std::to_string(r));
      nets.push_back("d" + std::to_string(r));
    } else {
      nets.push_back("yi" + std::to_string(r));
      for (int k = 2; k <= 4; ++k)
        nets.push_back("yn" + std::to_string(k) + "_" + std::to_string(r));
    }
  }

  struct PerThread {
    std::vector<double> lat_us[qwm::service::kVerbCount];
    std::uint64_t errors = 0;
  };
  std::vector<PerThread> per(static_cast<std::size_t>(flags.clients));
  std::atomic<bool> done{false};

  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      PerThread& me = per[static_cast<std::size_t>(c)];
      std::uint64_t rng = 0x1234u + static_cast<std::uint64_t>(c);
      for (int i = 0; i < flags.requests; ++i) {
        const std::uint64_t dice = next_rand(&rng) % 100;
        const std::string& net = nets[next_rand(&rng) % nets.size()];
        std::string req;
        Verb verb;
        if (dice < 70) {
          req = "ARRIVAL " + net;
          verb = Verb::kArrival;
        } else if (dice < 85) {
          req = "SLACK " + net + " 2n";
          verb = Verb::kSlack;
        } else if (dice < 95) {
          req = "CRITPATH";
          verb = Verb::kCritPath;
        } else {
          req = "STATS";
          verb = Verb::kStats;
        }
        const auto q0 = Clock::now();
        const std::string resp = server.handle_line(req);
        const auto q1 = Clock::now();
        if (!service::is_ok(resp)) ++me.errors;
        me.lat_us[static_cast<int>(verb)].push_back(
            std::chrono::duration<double, std::micro>(q1 - q0).count());
      }
    });
  }
  // Probe for a resizable (non-wire) edge so the writer's what-ifs are
  // real transactions.
  int wr_edge = -1;
  for (int e = 0; e < 8 && wr_edge < 0; ++e)
    if (service::is_ok(server.handle_line("RESIZE 0 " + std::to_string(e) +
                                          " 2.2u")))
      wr_edge = e;
  std::thread writer([&] {
    // Steady what-if pressure on the exclusive-lock path for the
    // benchmark's duration.
    std::uint64_t k = 0;
    while (wr_edge >= 0 && !done.load(std::memory_order_acquire)) {
      const double w = (k % 2 == 0) ? 2.5e-6 : 3.0e-6;
      server.handle_line("RESIZE 0 " + std::to_string(wr_edge) + " " +
                         service::format_double(w));
      server.handle_line("UPDATE");
      ++k;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (auto& c : clients) c.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  done.store(true, std::memory_order_release);
  writer.join();

  std::uint64_t total = 0, errors = 0;
  std::vector<double> merged[qwm::service::kVerbCount];
  for (auto& p : per) {
    errors += p.errors;
    for (int v = 0; v < qwm::service::kVerbCount; ++v) {
      total += p.lat_us[v].size();
      merged[v].insert(merged[v].end(), p.lat_us[v].begin(),
                       p.lat_us[v].end());
    }
  }

  std::printf("%s: %zu stages, %d clients x %d requests, engine lanes=%d "
              "cache=%s\n",
              name, load.stages, flags.clients, flags.requests, flags.threads,
              flags.cache ? "on" : "off");
  std::printf("  %.0f QPS over %.3f s (%llu requests, %llu errors)\n",
              static_cast<double>(total) / wall_s, wall_s,
              (unsigned long long)total, (unsigned long long)errors);
  std::printf("  %-10s %10s %10s %10s %8s\n", "verb", "p50[us]", "p99[us]",
              "max[us]", "count");
  for (const Verb v : {Verb::kArrival, Verb::kSlack, Verb::kCritPath,
                       Verb::kStats}) {
    std::vector<double>& lat = merged[static_cast<int>(v)];
    if (lat.empty()) continue;
    const double p50 = pct(&lat, 0.50), p99 = pct(&lat, 0.99);
    std::printf("  %-10s %10.1f %10.1f %10.1f %8zu\n",
                service::verb_name(v), p50, p99, lat.back(), lat.size());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  std::printf("qwm_serve in-process query throughput (mixed read workload + "
              "what-if writer)\n\n");
  const int farm_rows = std::max(flags.rows / 4, 1);
  run_workload("decoder", make_decoder_design(flags.rows, 4), flags.rows,
               flags);
  run_workload("gatefarm", make_gate_farm(farm_rows), farm_rows, flags);
  return 0;
}
