// Service throughput benchmark: concurrent timing queries through the
// qwm_serve dispatch layer (in-process, no sockets) over the two
// paper-shaped workloads — the Fig. 10 row decoder and the Table I gate
// farm. N client threads issue a mixed read workload (70% ARRIVAL, 15%
// SLACK, 10% CRITPATH, 5% STATS) through Server::handle_line while one
// writer thread runs RESIZE+UPDATE what-if transactions; the harness
// reports sustained QPS and per-verb p50/p99 latency.
// Flags: --clients N (default 8), --requests M per client (default 400),
//        --rows N (workload size, default 32), --threads N (engine
//        lanes, default 4), --no-cache, --json FILE.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "qwm/service/server.h"

namespace {

using Clock = std::chrono::steady_clock;
using qwm::service::Verb;

struct Flags {
  int clients = 8;
  int requests = 400;
  int rows = 32;
  int threads = 4;
  bool cache = true;
  std::string json_path;

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
        f.clients = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
        f.requests = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
        f.rows = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
        f.threads = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--no-cache") == 0)
        f.cache = false;
      else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
        f.json_path = argv[++i];
      else {
        std::fprintf(stderr,
                     "unknown flag: %s\nusage: %s [--clients N] "
                     "[--requests M] [--rows N] [--threads N] [--no-cache] "
                     "[--json FILE]\n",
                     argv[i], argv[0]);
        std::exit(2);
      }
    }
    f.clients = std::max(f.clients, 1);
    f.requests = std::max(f.requests, 1);
    f.rows = std::max(f.rows, 1);
    f.threads = std::max(f.threads, 1);
    return f;
  }
};

std::uint64_t next_rand(std::uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double pct(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  return (*v)[static_cast<std::size_t>(p * static_cast<double>(v->size() - 1))];
}

void run_workload(const char* name, const std::string& deck, int rows,
                  const Flags& flags, std::string* json_out) {
  using namespace qwm;
  service::ServerOptions opt;
  opt.db.sta.threads = flags.threads;
  opt.db.sta.use_cache = flags.cache;
  service::Server server(opt);
  const service::LoadReply load = server.db().load_text(deck, name);
  if (!load.status.ok) {
    std::fprintf(stderr, "%s: load failed: %s\n", name,
                 load.status.message.c_str());
    if (json_out != nullptr)
      *json_out = qwm::bench::JsonObject()
                      .str("name", name)
                      .integer("load_failed", 1)
                      .str();
    return;
  }

  // Query universe: the critical-path nets plus the generators' known
  // per-row output names.
  std::vector<std::string> nets;
  const service::CritPathReply cp = server.db().critical_path();
  for (const auto& s : cp.steps) nets.push_back(s.net);
  for (int r = 0; r < rows; ++r) {
    if (std::strcmp(name, "decoder") == 0) {
      nets.push_back("wl" + std::to_string(r));
      nets.push_back("d" + std::to_string(r));
    } else {
      nets.push_back("yi" + std::to_string(r));
      for (int k = 2; k <= 4; ++k)
        nets.push_back("yn" + std::to_string(k) + "_" + std::to_string(r));
    }
  }

  struct PerThread {
    std::vector<double> lat_us[qwm::service::kVerbCount];
    std::uint64_t errors = 0;
  };
  std::vector<PerThread> per(static_cast<std::size_t>(flags.clients));
  std::atomic<bool> done{false};

  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      PerThread& me = per[static_cast<std::size_t>(c)];
      std::uint64_t rng = 0x1234u + static_cast<std::uint64_t>(c);
      for (int i = 0; i < flags.requests; ++i) {
        const std::uint64_t dice = next_rand(&rng) % 100;
        const std::string& net = nets[next_rand(&rng) % nets.size()];
        std::string req;
        Verb verb;
        if (dice < 70) {
          req = "ARRIVAL " + net;
          verb = Verb::kArrival;
        } else if (dice < 85) {
          req = "SLACK " + net + " 2n";
          verb = Verb::kSlack;
        } else if (dice < 95) {
          req = "CRITPATH";
          verb = Verb::kCritPath;
        } else {
          req = "STATS";
          verb = Verb::kStats;
        }
        const auto q0 = Clock::now();
        const std::string resp = server.handle_line(req);
        const auto q1 = Clock::now();
        if (!service::is_ok(resp)) ++me.errors;
        me.lat_us[static_cast<int>(verb)].push_back(
            std::chrono::duration<double, std::micro>(q1 - q0).count());
      }
    });
  }
  // Probe for a resizable (non-wire) edge so the writer's what-ifs are
  // real transactions.
  int wr_edge = -1;
  for (int e = 0; e < 8 && wr_edge < 0; ++e)
    if (service::is_ok(server.handle_line("RESIZE 0 " + std::to_string(e) +
                                          " 2.2u")))
      wr_edge = e;
  std::thread writer([&] {
    // Steady what-if pressure on the exclusive-lock path for the
    // benchmark's duration.
    std::uint64_t k = 0;
    while (wr_edge >= 0 && !done.load(std::memory_order_acquire)) {
      const double w = (k % 2 == 0) ? 2.5e-6 : 3.0e-6;
      server.handle_line("RESIZE 0 " + std::to_string(wr_edge) + " " +
                         service::format_double(w));
      server.handle_line("UPDATE");
      ++k;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (auto& c : clients) c.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  done.store(true, std::memory_order_release);
  writer.join();

  std::uint64_t total = 0, errors = 0;
  std::vector<double> merged[qwm::service::kVerbCount];
  for (auto& p : per) {
    errors += p.errors;
    for (int v = 0; v < qwm::service::kVerbCount; ++v) {
      total += p.lat_us[v].size();
      merged[v].insert(merged[v].end(), p.lat_us[v].begin(),
                       p.lat_us[v].end());
    }
  }

  std::printf("%s: %zu stages, %d clients x %d requests, engine lanes=%d "
              "cache=%s\n",
              name, load.stages, flags.clients, flags.requests, flags.threads,
              flags.cache ? "on" : "off");
  std::printf("  %.0f QPS over %.3f s (%llu requests, %llu errors)\n",
              static_cast<double>(total) / wall_s, wall_s,
              (unsigned long long)total, (unsigned long long)errors);
  std::printf("  %-10s %10s %10s %10s %8s\n", "verb", "p50[us]", "p99[us]",
              "max[us]", "count");
  std::vector<std::string> verb_json;
  for (const Verb v : {Verb::kArrival, Verb::kSlack, Verb::kCritPath,
                       Verb::kStats}) {
    std::vector<double>& lat = merged[static_cast<int>(v)];
    if (lat.empty()) continue;
    const double p50 = pct(&lat, 0.50), p99 = pct(&lat, 0.99);
    std::printf("  %-10s %10.1f %10.1f %10.1f %8zu\n",
                service::verb_name(v), p50, p99, lat.back(), lat.size());
    if (json_out != nullptr)
      verb_json.push_back(qwm::bench::JsonObject()
                              .str("verb", service::verb_name(v))
                              .num("p50_us", p50)
                              .num("p99_us", p99)
                              .num("max_us", lat.back())
                              .integer("count", lat.size())
                              .str());
  }
  std::printf("\n");
  if (json_out != nullptr) {
    qwm::bench::JsonObject o;
    o.str("name", name)
        .integer("stages", load.stages)
        .integer("clients", static_cast<std::uint64_t>(flags.clients))
        .integer("requests", total)
        .integer("errors", errors)
        .num("wall_s", wall_s)
        .num("qps", static_cast<double>(total) / wall_s)
        .raw("verbs", qwm::bench::json_array(verb_json, "      "));
    *json_out = o.str();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  std::printf("qwm_serve in-process query throughput (mixed read workload + "
              "what-if writer)\n\n");
  const int farm_rows = std::max(flags.rows / 4, 1);
  const bool want_json = !flags.json_path.empty();
  std::string decoder_json, farm_json;
  run_workload("decoder", qwm::bench::make_decoder_deck(flags.rows, 4),
               flags.rows, flags, want_json ? &decoder_json : nullptr);
  run_workload("gatefarm", qwm::bench::make_gate_farm_deck(farm_rows),
               farm_rows, flags, want_json ? &farm_json : nullptr);
  if (want_json) {
    const std::string doc =
        "{\n  \"bench\": \"service_qps\",\n  \"workloads\": " +
        qwm::bench::json_array({decoder_json, farm_json}, "    ") + "\n}\n";
    if (!qwm::bench::write_text_file(flags.json_path, doc)) return 1;
    std::printf("wrote %s\n", flags.json_path.c_str());
  }
  return 0;
}
