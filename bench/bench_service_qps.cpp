// Service throughput benchmark: concurrent timing queries through the
// qwm_serve dispatch layer (in-process, no sockets) over the two
// paper-shaped workloads — the Fig. 10 row decoder and the Table I gate
// farm. N client threads issue a mixed read workload (70% ARRIVAL, 15%
// SLACK, 10% CRITPATH, 5% STATS) through Server::handle_line while one
// writer thread runs RESIZE+UPDATE what-if transactions; the harness
// reports sustained QPS and per-verb p50/p99 latency.
// A second, sharded section runs the same read workload through an
// in-process Fleet (CallbackEndpoint shards, no sockets) at shard
// counts 1/2/4, then a deterministic failover drill at the largest
// count: kill one shard, measure the degraded-answer rate while it is
// down, time the supervised restart + re-warm, and check the fleet
// reconverges bit-identically at the same epoch.
// Flags: --clients N (default 8), --requests M per client (default 400),
//        --rows N (workload size, default 32), --threads N (engine
//        lanes, default 4), --no-cache, --no-sharded, --json FILE.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "qwm/service/fleet.h"
#include "qwm/service/server.h"

namespace {

using Clock = std::chrono::steady_clock;
using qwm::service::Verb;

struct Flags {
  int clients = 8;
  int requests = 400;
  int rows = 32;
  int threads = 4;
  bool cache = true;
  bool sharded = true;
  std::string json_path;

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
        f.clients = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
        f.requests = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
        f.rows = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
        f.threads = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--no-cache") == 0)
        f.cache = false;
      else if (std::strcmp(argv[i], "--no-sharded") == 0)
        f.sharded = false;
      else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
        f.json_path = argv[++i];
      else {
        std::fprintf(stderr,
                     "unknown flag: %s\nusage: %s [--clients N] "
                     "[--requests M] [--rows N] [--threads N] [--no-cache] "
                     "[--no-sharded] [--json FILE]\n",
                     argv[i], argv[0]);
        std::exit(2);
      }
    }
    f.clients = std::max(f.clients, 1);
    f.requests = std::max(f.requests, 1);
    f.rows = std::max(f.rows, 1);
    f.threads = std::max(f.threads, 1);
    return f;
  }
};

std::uint64_t next_rand(std::uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double pct(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  return (*v)[static_cast<std::size_t>(p * static_cast<double>(v->size() - 1))];
}

void run_workload(const char* name, const std::string& deck, int rows,
                  const Flags& flags, std::string* json_out) {
  using namespace qwm;
  service::ServerOptions opt;
  opt.db.sta.threads = flags.threads;
  opt.db.sta.use_cache = flags.cache;
  service::Server server(opt);
  const service::LoadReply load = server.db().load_text(deck, name);
  if (!load.status.ok) {
    std::fprintf(stderr, "%s: load failed: %s\n", name,
                 load.status.message.c_str());
    if (json_out != nullptr)
      *json_out = qwm::bench::JsonObject()
                      .str("name", name)
                      .integer("load_failed", 1)
                      .str();
    return;
  }

  // Query universe: the critical-path nets plus the generators' known
  // per-row output names.
  std::vector<std::string> nets;
  const service::CritPathReply cp = server.db().critical_path();
  for (const auto& s : cp.steps) nets.push_back(s.net);
  for (int r = 0; r < rows; ++r) {
    if (std::strcmp(name, "decoder") == 0) {
      nets.push_back("wl" + std::to_string(r));
      nets.push_back("d" + std::to_string(r));
    } else {
      nets.push_back("yi" + std::to_string(r));
      for (int k = 2; k <= 4; ++k)
        nets.push_back("yn" + std::to_string(k) + "_" + std::to_string(r));
    }
  }

  struct PerThread {
    std::vector<double> lat_us[qwm::service::kVerbCount];
    std::uint64_t errors = 0;
  };
  std::vector<PerThread> per(static_cast<std::size_t>(flags.clients));
  std::atomic<bool> done{false};

  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      PerThread& me = per[static_cast<std::size_t>(c)];
      std::uint64_t rng = 0x1234u + static_cast<std::uint64_t>(c);
      for (int i = 0; i < flags.requests; ++i) {
        const std::uint64_t dice = next_rand(&rng) % 100;
        const std::string& net = nets[next_rand(&rng) % nets.size()];
        std::string req;
        Verb verb;
        if (dice < 70) {
          req = "ARRIVAL " + net;
          verb = Verb::kArrival;
        } else if (dice < 85) {
          req = "SLACK " + net + " 2n";
          verb = Verb::kSlack;
        } else if (dice < 95) {
          req = "CRITPATH";
          verb = Verb::kCritPath;
        } else {
          req = "STATS";
          verb = Verb::kStats;
        }
        const auto q0 = Clock::now();
        const std::string resp = server.handle_line(req);
        const auto q1 = Clock::now();
        if (!service::is_ok(resp)) ++me.errors;
        me.lat_us[static_cast<int>(verb)].push_back(
            std::chrono::duration<double, std::micro>(q1 - q0).count());
      }
    });
  }
  // Probe for a resizable (non-wire) edge so the writer's what-ifs are
  // real transactions.
  int wr_edge = -1;
  for (int e = 0; e < 8 && wr_edge < 0; ++e)
    if (service::is_ok(server.handle_line("RESIZE 0 " + std::to_string(e) +
                                          " 2.2u")))
      wr_edge = e;
  std::thread writer([&] {
    // Steady what-if pressure on the exclusive-lock path for the
    // benchmark's duration.
    std::uint64_t k = 0;
    while (wr_edge >= 0 && !done.load(std::memory_order_acquire)) {
      const double w = (k % 2 == 0) ? 2.5e-6 : 3.0e-6;
      server.handle_line("RESIZE 0 " + std::to_string(wr_edge) + " " +
                         service::format_double(w));
      server.handle_line("UPDATE");
      ++k;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (auto& c : clients) c.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  done.store(true, std::memory_order_release);
  writer.join();

  std::uint64_t total = 0, errors = 0;
  std::vector<double> merged[qwm::service::kVerbCount];
  for (auto& p : per) {
    errors += p.errors;
    for (int v = 0; v < qwm::service::kVerbCount; ++v) {
      total += p.lat_us[v].size();
      merged[v].insert(merged[v].end(), p.lat_us[v].begin(),
                       p.lat_us[v].end());
    }
  }

  std::printf("%s: %zu stages, %d clients x %d requests, engine lanes=%d "
              "cache=%s\n",
              name, load.stages, flags.clients, flags.requests, flags.threads,
              flags.cache ? "on" : "off");
  std::printf("  %.0f QPS over %.3f s (%llu requests, %llu errors)\n",
              static_cast<double>(total) / wall_s, wall_s,
              (unsigned long long)total, (unsigned long long)errors);
  std::printf("  %-10s %10s %10s %10s %8s\n", "verb", "p50[us]", "p99[us]",
              "max[us]", "count");
  std::vector<std::string> verb_json;
  for (const Verb v : {Verb::kArrival, Verb::kSlack, Verb::kCritPath,
                       Verb::kStats}) {
    std::vector<double>& lat = merged[static_cast<int>(v)];
    if (lat.empty()) continue;
    const double p50 = pct(&lat, 0.50), p99 = pct(&lat, 0.99);
    std::printf("  %-10s %10.1f %10.1f %10.1f %8zu\n",
                service::verb_name(v), p50, p99, lat.back(), lat.size());
    if (json_out != nullptr)
      verb_json.push_back(qwm::bench::JsonObject()
                              .str("verb", service::verb_name(v))
                              .num("p50_us", p50)
                              .num("p99_us", p99)
                              .num("max_us", lat.back())
                              .integer("count", lat.size())
                              .str());
  }
  std::printf("\n");
  if (json_out != nullptr) {
    qwm::bench::JsonObject o;
    o.str("name", name)
        .integer("stages", load.stages)
        .integer("clients", static_cast<std::uint64_t>(flags.clients))
        .integer("requests", total)
        .integer("errors", errors)
        .num("wall_s", wall_s)
        .num("qps", static_cast<double>(total) / wall_s)
        .raw("verbs", qwm::bench::json_array(verb_json, "      "));
    *json_out = o.str();
  }
}

/// One in-process sharded fleet: `n` CallbackEndpoint shards (each a
/// Server in --shard k/n mode) plus one full-design replica. Kill
/// switches let the failover drill drop a shard deterministically.
struct BenchFleet {
  std::vector<std::unique_ptr<qwm::service::Server>> servers;
  std::vector<std::shared_ptr<std::atomic<bool>>> dead;
  /// Gate for the restart hook: while false the hook refuses, which
  /// holds the fleet in its degraded window for measurement.
  std::atomic<bool> allow_restart{false};
  std::unique_ptr<qwm::service::Server> replica;
  std::unique_ptr<qwm::service::Fleet> fleet;

  explicit BenchFleet(int n, const Flags& flags) {
    using namespace qwm::service;
    std::vector<std::unique_ptr<ShardEndpoint>> shard_eps, replica_eps;
    for (int k = 0; k < n; ++k) {
      ServerOptions opt;
      opt.db.sta.threads = 1;
      opt.db.sta.use_cache = flags.cache;
      opt.db.shard_index = k;
      opt.db.shard_count = n;
      servers.push_back(std::make_unique<Server>(opt));
      dead.push_back(std::make_shared<std::atomic<bool>>(false));
      shard_eps.push_back(std::make_unique<CallbackEndpoint>(endpoint_fn(k)));
    }
    ServerOptions ropt;
    ropt.db.sta.threads = 1;
    ropt.db.sta.use_cache = flags.cache;
    replica = std::make_unique<Server>(ropt);
    replica_eps.push_back(std::make_unique<CallbackEndpoint>(
        [this](const std::string& line) { return replica->handle_line(line); }));

    FleetOptions fopt;
    // One probe failure marks a shard down: the in-process endpoints
    // never blip, so the drill is deterministic with the tight ladder.
    fopt.health.suspect_after = 1;
    fopt.health.down_after = 1;
    fleet = std::make_unique<Fleet>(fopt, std::move(shard_eps),
                                    std::move(replica_eps));
    const bool cache = flags.cache;
    fleet->set_restart_fn(
        [this, n, cache](int k) -> std::unique_ptr<ShardEndpoint> {
          using namespace qwm::service;
          if (!allow_restart.load(std::memory_order_acquire)) return nullptr;
          ServerOptions opt;
          opt.db.sta.threads = 1;
          opt.db.sta.use_cache = cache;
          opt.db.shard_index = k;
          opt.db.shard_count = n;
          servers[static_cast<std::size_t>(k)] = std::make_unique<Server>(opt);
          dead[static_cast<std::size_t>(k)]->store(false);
          return std::make_unique<CallbackEndpoint>(endpoint_fn(k));
        });
  }

  qwm::service::CallbackEndpoint::Handler endpoint_fn(int k) {
    auto flag = dead[static_cast<std::size_t>(k)];
    return [this, k, flag](const std::string& line) -> std::string {
      if (flag->load(std::memory_order_acquire)) return "";
      return servers[static_cast<std::size_t>(k)]->handle_line(line);
    };
  }
};

void run_sharded(const std::string& deck_path, int rows, const Flags& flags,
                 std::vector<std::string>* json_out) {
  using namespace qwm;
  std::vector<std::string> nets;
  for (int r = 0; r < rows; ++r) {
    nets.push_back("wl" + std::to_string(r));
    nets.push_back("d" + std::to_string(r));
  }

  std::printf("sharded fleet (in-process endpoints, 1 replica): decoder "
              "rows=%d\n", rows);
  for (const int n : {1, 2, 4}) {
    BenchFleet bf(n, flags);
    service::Fleet& fleet = *bf.fleet;
    const auto l0 = Clock::now();
    const std::string load = fleet.handle_line("LOAD " + deck_path);
    const double load_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - l0).count();
    if (!service::is_ok(load)) {
      std::printf("  shards=%d: LOAD failed: %s\n", n, load.c_str());
      continue;
    }

    // Mixed read workload through the router data plane.
    std::vector<std::vector<double>> lat(
        static_cast<std::size_t>(flags.clients));
    std::atomic<std::uint64_t> errors{0};
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < flags.clients; ++c) {
      threads.emplace_back([&, c] {
        std::uint64_t rng = 0x5a5au + static_cast<std::uint64_t>(c);
        for (int i = 0; i < flags.requests; ++i) {
          const std::uint64_t dice = next_rand(&rng) % 100;
          const std::string& net = nets[next_rand(&rng) % nets.size()];
          std::string req;
          if (dice < 70) req = "ARRIVAL " + net;
          else if (dice < 85) req = "SLACK " + net + " 2n";
          else if (dice < 95) req = "CRITPATH";
          else req = "STATS";
          const auto q0 = Clock::now();
          const std::string resp = fleet.handle_line(req);
          const auto q1 = Clock::now();
          if (!service::is_ok(resp)) ++errors;
          lat[static_cast<std::size_t>(c)].push_back(
              std::chrono::duration<double, std::micro>(q1 - q0).count());
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    std::vector<double> merged;
    for (auto& v : lat) merged.insert(merged.end(), v.begin(), v.end());
    const double qps = static_cast<double>(merged.size()) / wall_s;
    const double p50 = pct(&merged, 0.50), p99 = pct(&merged, 0.99);
    std::printf("  shards=%d: load %.0f ms, %.0f QPS, p50 %.1f us, "
                "p99 %.1f us, errors=%llu\n",
                n, load_ms, qps, p50, p99,
                (unsigned long long)errors.load());

    // Failover drill (multi-shard fleets only — with one shard there is
    // nothing to serve around). Detect + degrade with restarts refused,
    // measure the degraded-answer rate across the whole net universe,
    // then open the restart gate and time the supervised recovery.
    std::string failover_json;
    if (n > 1) {
      const int victim = n - 1;
      std::map<std::string, std::string> before;
      for (const auto& net : nets)
        before[net] = fleet.handle_line("ARRIVAL " + net);

      bf.dead[static_cast<std::size_t>(victim)]->store(true);
      fleet.supervise();  // detect -> degrade; restart refused by the gate
      std::uint64_t degraded = 0, outage_errors = 0;
      for (const auto& net : nets) {
        const std::string resp = fleet.handle_line("ARRIVAL " + net);
        if (!service::is_ok(resp)) ++outage_errors;
        else if (service::is_degraded(resp)) ++degraded;
      }

      bf.allow_restart.store(true, std::memory_order_release);
      const auto r0 = Clock::now();
      fleet.supervise();  // restart + re-warm + reconverge
      const double recovery_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - r0).count();

      std::uint64_t mismatches = 0;
      for (const auto& net : nets)
        if (fleet.handle_line("ARRIVAL " + net) != before[net]) ++mismatches;
      const double degraded_rate =
          static_cast<double>(degraded) / static_cast<double>(nets.size());
      std::printf("    failover: killed shard %d; degraded-answer rate "
                  "%.2f (errors=%llu), recovery %.0f ms, post-recovery "
                  "mismatches=%llu\n",
                  victim, degraded_rate, (unsigned long long)outage_errors,
                  recovery_ms, (unsigned long long)mismatches);
      failover_json = qwm::bench::JsonObject()
                          .integer("killed_shard", static_cast<std::uint64_t>(
                                                       victim))
                          .num("degraded_rate", degraded_rate)
                          .integer("outage_errors", outage_errors)
                          .num("recovery_ms", recovery_ms)
                          .integer("post_recovery_mismatches", mismatches)
                          .str();
    }

    if (json_out != nullptr) {
      qwm::bench::JsonObject o;
      o.integer("shards", static_cast<std::uint64_t>(n))
          .num("load_ms", load_ms)
          .num("qps", qps)
          .num("p50_us", p50)
          .num("p99_us", p99)
          .integer("errors", errors.load());
      if (!failover_json.empty()) o.raw("failover", failover_json);
      json_out->push_back(o.str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  std::printf("qwm_serve in-process query throughput (mixed read workload + "
              "what-if writer)\n\n");
  const int farm_rows = std::max(flags.rows / 4, 1);
  const bool want_json = !flags.json_path.empty();
  std::string decoder_json, farm_json;
  const std::string decoder_deck = qwm::bench::make_decoder_deck(flags.rows, 4);
  run_workload("decoder", decoder_deck, flags.rows, flags,
               want_json ? &decoder_json : nullptr);
  run_workload("gatefarm", qwm::bench::make_gate_farm_deck(farm_rows),
               farm_rows, flags, want_json ? &farm_json : nullptr);

  std::vector<std::string> sharded_json;
  if (flags.sharded) {
    // The fleet LOAD verb takes a deck path (it reads the file both for
    // routing tables and to fan out to the shards), so stage the
    // generated deck on disk.
    const std::string deck_path =
        "/tmp/qwm_bench_service_qps_" + std::to_string(::getpid()) + ".sp";
    if (!qwm::bench::write_text_file(deck_path, decoder_deck)) return 1;
    run_sharded(deck_path, flags.rows, flags,
                want_json ? &sharded_json : nullptr);
    ::unlink(deck_path.c_str());
  }

  if (want_json) {
    const std::string doc =
        "{\n  \"bench\": \"service_qps\",\n  \"workloads\": " +
        qwm::bench::json_array({decoder_json, farm_json}, "    ") +
        ",\n  \"sharded\": " + qwm::bench::json_array(sharded_json, "    ") +
        "\n}\n";
    if (!qwm::bench::write_text_file(flags.json_path, doc)) return 1;
    std::printf("wrote %s\n", flags.json_path.c_str());
  }
  return 0;
}
