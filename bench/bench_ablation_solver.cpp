// Ablation (paper SIV-B): tridiagonal + Sherman-Morrison region solves vs
// dense LU inside the QWM Newton iteration. The paper reports the
// tridiagonal method "gives almost twice speedup over LU decomposition".
//
// Expected shape: identical delays from both solvers, with the
// tridiagonal path's advantage growing with stack length (O(n) vs O(n^3)
// per Newton step); the end-to-end QWM ratio is diluted by device-model
// evaluation time, so the pure linear-solve kernels are also timed.
#include <chrono>
#include <cstdio>
#include <random>

#include "common.h"
#include "qwm/numeric/matrix.h"
#include "qwm/numeric/sherman_morrison.h"

int main() {
  using namespace qwm;
  using namespace qwm::bench;

  const auto& proc = models().proc;
  const double load = circuit::fanout_load_cap(proc);

  std::printf("Ablation: tridiagonal+Sherman-Morrison vs dense LU\n\n");
  std::printf("End-to-end QWM evaluation (same circuit, same regions):\n");
  std::printf("%5s %12s %12s %8s %12s\n", "K", "tridiag", "dense LU",
              "ratio", "delay match");
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> width(1.0e-6, 4.0e-6);
  for (int k : {4, 8, 16, 32, 64}) {
    std::vector<double> widths(k);
    for (double& w : widths) w = width(rng);
    const auto stage = circuit::make_nmos_stack(proc, widths, load);
    const auto inputs = step_inputs(stage);
    const auto ms = models().set();

    core::QwmOptions tri, dense;
    tri.t_max = 500e-9;
    dense.t_max = 500e-9;
    tri.solver = core::RegionSolver::tridiagonal;
    dense.solver = core::RegionSolver::dense_lu;
    const auto st_t = core::evaluate_stage(stage, inputs, ms, tri);
    const auto st_d = core::evaluate_stage(stage, inputs, ms, dense);
    if (!st_t.ok || !st_d.ok) {
      std::printf("%5d  (failed: %s)\n", k,
                  (st_t.ok ? st_d.error : st_t.error).c_str());
      continue;
    }
    const double tt =
        time_seconds([&] { core::evaluate_stage(stage, inputs, ms, tri); });
    const double td =
        time_seconds([&] { core::evaluate_stage(stage, inputs, ms, dense); });
    const bool match =
        st_t.delay && st_d.delay &&
        std::abs(*st_t.delay - *st_d.delay) < 1e-3 * *st_d.delay;
    std::printf("%5d %10.3fms %10.3fms %7.2fx %12s\n", k, tt * 1e3, td * 1e3,
                td / tt, match ? "yes" : "NO");
  }

  // Pure linear-solve kernels on QWM-shaped systems (tridiagonal plus a
  // dense last column).
  std::printf("\nLinear-solve kernel, QWM-shaped system (per solve):\n");
  std::printf("%5s %12s %12s %8s\n", "n", "thomas+SM", "dense LU", "ratio");
  std::mt19937 krng(11);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  for (int n : {4, 8, 16, 32, 64, 128}) {
    numeric::Tridiagonal a(n);
    std::vector<double> u(n), v(n, 0.0), b(n);
    for (int i = 0; i < n; ++i) {
      a.diag[i] = 4.0 + d(krng);
      if (i > 0) a.lower[i] = d(krng);
      if (i + 1 < n) a.upper[i] = d(krng);
      u[i] = d(krng);
      b[i] = d(krng);
    }
    v[n - 1] = 1.0;
    numeric::Matrix full(n, n);
    for (int i = 0; i < n; ++i) {
      full(i, i) = a.diag[i];
      if (i > 0) full(i, i - 1) = a.lower[i];
      if (i + 1 < n) full(i, i + 1) = a.upper[i];
      full(i, n - 1) += u[i];
    }
    std::vector<double> x;
    const double t_sm = time_seconds([&] {
      for (int rep = 0; rep < 200; ++rep)
        numeric::sherman_morrison_solve(a, u, v, b, x);
    }) / 200.0;
    const double t_lu = time_seconds([&] {
      for (int rep = 0; rep < 50; ++rep) numeric::lu_solve(full, b);
    }) / 50.0;
    std::printf("%5d %10.3fus %10.3fus %7.1fx\n", n, t_sm * 1e6, t_lu * 1e6,
                t_lu / t_sm);
  }
  return 0;
}
