// Figure 8 reproduction: I/V curve fitting at one characterization grid
// point — golden samples against the linear (saturation) and quadratic
// (triode) least-squares fits, plus aggregate fit quality over the grid.
//
// Paper: 7 parameters per (Vs, Vg) pair; the fits visually overlay the
// device samples. Expected shape: the fitted curve tracks the samples to
// within a few percent of the full-scale current, with R^2 near 1 on
// conducting grid points.
#include <cstdio>

#include "common.h"
#include "qwm/device/characterize.h"

int main() {
  using namespace qwm;
  using namespace qwm::bench;

  const auto& proc = models().proc;
  const device::MosfetPhysics nmos(device::MosType::nmos, proc.nmos,
                                   proc.temp_vt);

  std::printf("Figure 8: I/V curve fitting (NMOS, Vs=0, Vg=VDD)\n");
  const auto curve = device::sample_iv_fit(nmos, proc.vdd, 0.0, proc.vdd);
  std::printf("vth=%.3f V, vdsat=%.3f V\n", curve.vth, curve.vdsat);
  std::printf("# Vds[V]  Ids_data[uA]  Ids_fit[uA]  region\n");
  for (std::size_t i = 0; i < curve.vds.size(); ++i) {
    std::printf("%7.3f %12.2f %12.2f  %s\n", curve.vds[i],
                curve.ids_data[i] * 1e6, curve.ids_fit[i] * 1e6,
                curve.vds[i] <= curve.vdsat ? "triode(+)" : "sat(*)");
  }

  double full_scale = 0.0, worst = 0.0;
  for (std::size_t i = 0; i < curve.vds.size(); ++i)
    full_scale = std::max(full_scale, std::abs(curve.ids_data[i]));
  for (std::size_t i = 0; i < curve.vds.size(); ++i)
    worst = std::max(worst, std::abs(curve.ids_fit[i] - curve.ids_data[i]));
  std::printf("\nWorst fit error: %.2f%% of full scale\n",
              100.0 * worst / full_scale);

  // A second bias point with body effect (paper stores vth per point).
  const auto curve2 = device::sample_iv_fit(nmos, proc.vdd, 1.0, 2.5);
  std::printf("\nSecond point (Vs=1.0, Vg=2.5): vth=%.3f (body effect), "
              "vdsat=%.3f\n", curve2.vth, curve2.vdsat);

  // Aggregate grid statistics (the full characterization table).
  const auto grid = models().tab_n.grid();
  const auto s = grid.stats();
  std::printf("\nGrid: %zu points (%zux%zu), active %zu\n", s.grid_points,
              grid.vs_axis.n, grid.vg_axis.n, s.active_points);
  std::printf("Mean R^2 (active points): triode %.4f, saturation %.4f\n",
              s.mean_r2_triode, s.mean_r2_sat);
  std::printf("Worst RMS residual: triode %.3g A, saturation %.3g A\n",
              s.worst_rms_triode, s.worst_rms_sat);
  return 0;
}
