// Incremental static timing analysis: after a local transistor resize,
// only the affected fanout cone is re-evaluated. This is the use case the
// paper motivates (fast on-the-fly stage evaluation makes transistor-level
// STA iterations cheap inside sizing loops).
//
// Expected shape: incremental update cost is proportional to the edited
// cone, not the design size — the speedup over full re-analysis grows
// with the number of independent chains.
#include <cstdio>
#include <sstream>

#include <memory>

#include "common.h"
#include "qwm/circuit/partition.h"
#include "qwm/device/model_set.h"
#include "qwm/netlist/parser.h"
#include "qwm/sta/sta.h"

namespace {

/// Generates `chains` independent inverter chains of `depth` stages.
std::string make_design(int chains, int depth) {
  std::ostringstream os;
  os << "generated design\n";
  os << "vdd vdd 0 3.3\n";
  for (int c = 0; c < chains; ++c) {
    os << "vin" << c << " a" << c << "_0 0 0\n";
    for (int d = 0; d < depth; ++d) {
      const std::string in = "a" + std::to_string(c) + "_" + std::to_string(d);
      const std::string out =
          "a" + std::to_string(c) + "_" + std::to_string(d + 1);
      os << "mp" << c << "_" << d << " " << out << " " << in
         << " vdd vdd pmos w=2u l=0.35u\n";
      os << "mn" << c << "_" << d << " " << out << " " << in
         << " 0 0 nmos w=1u l=0.35u\n";
    }
    os << "cl" << c << " a" << c << "_" << depth << " 0 20f\n";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qwm;
  using namespace qwm::bench;
  const StaBenchFlags flags = StaBenchFlags::parse(argc, argv);

  // --corners: run the same workload with fast/slow lanes riding along —
  // the incremental cone update then re-propagates every corner.
  std::unique_ptr<device::CornerLibrary> corner_lib;
  if (flags.corners)
    corner_lib = std::make_unique<device::CornerLibrary>(models().proc);

  std::printf("Incremental STA: resize one device, update the cone only\n");
  std::printf("(lanes=%d, cache %s, corners %d)\n\n", flags.threads,
              flags.cache ? "on" : "off", corner_lib ? 3 : 1);
  std::printf("%8s %7s %12s %10s %12s %12s %9s\n", "chains", "stages",
              "full evals", "QWM runs", "incr evals", "incr time", "speedup");

  std::vector<std::string> row_json;
  core::QwmStats qwm_total;
  core::WorkspaceStats ws_total;
  for (const int chains : {2, 4, 8, 16}) {
    const int depth = 6;
    const auto parsed = netlist::parse_spice(make_design(chains, depth));
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse failed\n");
      return 1;
    }
    auto design = circuit::partition_netlist(parsed.netlist, models().set());
    sta::StaOptions opt;
    opt.threads = flags.threads;
    opt.use_cache = flags.cache;
    sta::StaEngine sta =
        corner_lib ? sta::StaEngine(std::move(design), corner_lib->sets(), opt)
                   : sta::StaEngine(std::move(design), models().set(), opt);
    const std::size_t full = sta.run();
    // All chains are electrically identical, so a full analysis memoizes
    // down to one chain's worth of QWM work when the cache is on.
    const std::size_t qwm_runs = sta.cache_stats().misses;
    const double t_full = time_seconds([&] { sta.run(); }, 0.05, 2);

    // Edit one mid-chain stage of chain 0.
    const auto net = parsed.netlist.find_net("a0_3");
    const auto [si, oi] = sta.design().driver_of.at(*net);
    (void)oi;
    circuit::EdgeId edge = -1;
    for (std::size_t e = 0; e < sta.design().stages[si].stage.edge_count();
         ++e)
      if (sta.design().stages[si].stage.edge(static_cast<circuit::EdgeId>(e))
              .kind == circuit::DeviceKind::nmos)
        edge = static_cast<circuit::EdgeId>(e);
    sta.resize_transistor(si, edge, 2.2e-6);
    const std::size_t incr = sta.update();
    sta.resize_transistor(si, edge, 1.0e-6);
    const double t_incr = time_seconds(
        [&] {
          sta.resize_transistor(si, edge, 2.2e-6);
          sta.update();
          sta.resize_transistor(si, edge, 1.0e-6);
          sta.update();
        },
        0.05, 2) / 2.0;

    std::printf("%8d %7d %12zu %10zu %12zu %10.2fms %8.1fx\n", chains,
                chains * depth, full, flags.cache ? qwm_runs : full, incr,
                t_incr * 1e3, t_full / (2.0 * t_incr));
    if (!flags.json_path.empty()) {
      qwm_total += sta.qwm_stats();
      const auto ws = sta.workspace_stats();
      ws_total.high_water_bytes =
          std::max(ws_total.high_water_bytes, ws.high_water_bytes);
      ws_total.grow_events += ws.grow_events;
      ws_total.evals += ws.evals;
      row_json.push_back(
          JsonObject()
              .integer("chains", static_cast<std::uint64_t>(chains))
              .integer("stages", static_cast<std::uint64_t>(chains * depth))
              .integer("full_evals", full)
              .integer("qwm_runs", flags.cache ? qwm_runs : full)
              .integer("incr_evals", incr)
              .num("incr_ms", t_incr * 1e3)
              .num("speedup", t_full / (2.0 * t_incr))
              .str());
    }
  }
  std::printf("\n(Evals = logical stage evaluations; QWM runs = cache "
              "misses actually solved. The incremental count tracks the "
              "edited cone, full re-analysis tracks the design.)\n");
  if (!flags.json_path.empty()) {
    const std::string doc =
        "{\n  \"bench\": \"incremental_sta\",\n  \"corners\": " +
        std::to_string(corner_lib ? 3 : 1) + ",\n  \"rows\": " +
        json_array(row_json, "    ") + ",\n  \"totals\": " +
        JsonObject()
            .integer("newton_iters", qwm_total.newton_iterations)
            .integer("device_evals", qwm_total.device_evals)
            .integer("warm_starts", qwm_total.warm_starts)
            .integer("ws_high_water_bytes", ws_total.high_water_bytes)
            .integer("ws_grow_events", ws_total.grow_events)
            .str() +
        "\n}\n";
    if (!write_text_file(flags.json_path, doc)) return 1;
    std::printf("wrote %s\n", flags.json_path.c_str());
  }
  return 0;
}
