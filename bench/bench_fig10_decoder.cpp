// Figure 10 reproduction: decoder-tree evaluation with long wires between
// tree levels (paper Fig. 3 / Fig. 10).
//
// The wires are reduced to AWE/O'Brien-Savarino pi macro-models before
// QWM runs (the paper: "We first used AWE approach to build a macro pi
// model for the wire"). Expected shape: QWM tracks the baseline through
// the wire-loaded path, with a speedup in the tens and accuracy above
// ~95% on the delay metric; wire terminals produce the paper's
// "closely spaced waveform pairs".
// A second section scales the figure up to full-chip shape: a multi-row
// decoder (address buffers -> per-row NAND3 -> sized wordline drivers)
// analyzed by the parallel, cache-aware STA engine. Electrically
// identical rows share memo-cache entries and independent rows evaluate
// across worker lanes; the section cross-checks that the parallel run is
// bit-identical to the serial one. Flags: --threads N (default 4),
// --no-cache, --rows N (default 64).
#include <cmath>
#include <thread>
#include <cstdio>
#include <sstream>

#include "common.h"
#include "qwm/circuit/partition.h"
#include "qwm/circuit/path.h"
#include "qwm/netlist/parser.h"
#include "qwm/sta/sta.h"

namespace {

/// Bitwise comparison of every stage-output arrival of two engines.
bool identical_timing(const qwm::sta::StaEngine& a,
                      const qwm::sta::StaEngine& b) {
  for (const auto& info : a.design().stages) {
    for (qwm::netlist::NetId n : info.output_nets) {
      const auto& ta = a.timing(n);
      const auto& tb = b.timing(n);
      if (ta.rise.time != tb.rise.time || ta.rise.slew != tb.rise.slew ||
          ta.fall.time != tb.fall.time || ta.fall.slew != tb.fall.slew)
        return false;
    }
  }
  return true;
}

int run_parallel_sta_section(const qwm::bench::StaBenchFlags& flags) {
  using namespace qwm;
  using namespace qwm::bench;
  const int variants = 16;
  const auto parsed =
      netlist::parse_spice(make_decoder_deck(flags.rows, variants));
  if (!parsed.ok()) {
    std::fprintf(stderr, "decoder netlist parse failed\n");
    return 1;
  }
  const auto design = circuit::partition_netlist(parsed.netlist, models().set());

  const auto engine_for = [&](int threads) {
    sta::StaOptions opt;
    opt.threads = threads;
    opt.use_cache = flags.cache;
    return sta::StaEngine(design, models().set(), opt);
  };

  std::printf("\nParallel STA: %d-row decoder (%d driver variants), "
              "%zu stages, cache %s\n",
              flags.rows, variants, design.stages.size(),
              flags.cache ? "on" : "off");

  sta::StaEngine serial = engine_for(1);
  const std::size_t evals = serial.run();
  sta::StaEngine parallel = engine_for(flags.threads);
  parallel.run();

  const bool same = identical_timing(serial, parallel);
  const auto stats = serial.cache_stats();
  // A fresh full analysis per repetition: clear the memo between runs so
  // the measurement is first-run cost (intra-run sharing only), not the
  // steady-state all-hit path.
  const double t_serial = time_seconds([&] {
    serial.clear_cache();
    serial.run();
  });
  const double t_parallel = time_seconds([&] {
    parallel.clear_cache();
    parallel.run();
  });
  // Uncached serial baseline: what the seed engine did — every stage
  // output through QWM, every run.
  sta::StaOptions base_opt;
  base_opt.threads = 1;
  base_opt.use_cache = false;
  sta::StaEngine baseline(design, models().set(), base_opt);
  const double t_baseline = time_seconds([&] { baseline.run(); });

  std::printf("Stage evaluations per full run: %zu; QWM runs: %llu "
              "(cache hit rate %.1f%%)\n",
              evals, static_cast<unsigned long long>(stats.misses),
              100.0 * stats.hit_rate());
  std::printf("Critical-path arrival: %.2f ps (serial) vs %.2f ps "
              "(%d threads) -> bit-identical timing: %s\n",
              serial.worst_arrival() * 1e12, parallel.worst_arrival() * 1e12,
              parallel.thread_count(), same ? "YES" : "NO");
  std::printf("Full analysis: uncached %.3f ms, memo-cached serial %.3f ms "
              "(%.2fx), %d threads %.3f ms (%.2fx vs uncached, %.2fx vs "
              "cached serial)\n",
              t_baseline * 1e3, t_serial * 1e3, t_baseline / t_serial,
              parallel.thread_count(), t_parallel * 1e3,
              t_baseline / t_parallel, t_serial / t_parallel);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1)
    std::printf("(single-CPU host: thread scaling is bounded at 1x here; "
                "the lane count only exercises the scheduler)\n");
  return same ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qwm;
  using namespace qwm::bench;
  const StaBenchFlags flags = StaBenchFlags::parse(argc, argv);

  const auto& proc = models().proc;
  // 3-level decoder with wire lengths doubling per level. A resistive
  // wire layer (thin/poly-like) makes the RC actually matter, as in the
  // paper's layout-derived structure.
  auto wire_proc = proc;
  wire_proc.wire.r_sheet = 2.0;  // ohm/sq: resistive decode line
  auto models_local = models().set();
  models_local.process = &wire_proc;

  const auto stage = circuit::make_decoder_tree(wire_proc, 3, 30e-15, 100e-6);
  const auto inputs = step_inputs(stage);

  const auto st = core::evaluate_stage(stage.stage, stage.output,
                                       stage.output_falls, inputs,
                                       stage.switching_input, models_local);
  if (!st.ok) {
    std::fprintf(stderr, "QWM failed: %s\n", st.error.c_str());
    return 1;
  }
  std::printf("Figure 10: decoder tree with long wires\n");
  std::printf("Path: %zu elements (%zu transistors, %zu kept wire "
              "pi-models)\n", st.problem.length(), st.problem.transistor_count(),
              st.problem.length() - st.problem.transistor_count());

  // SPICE baseline over the same stage (wires as RC ladders).
  spice::StageSim sim =
      spice::circuit_from_stage(stage.stage, models_local, inputs);
  for (std::size_t n = 0; n < stage.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (stage.stage.is_rail(id)) continue;
    sim.circuit.set_ic(sim.node_of[n], wire_proc.vdd);
  }
  spice::TransientOptions opt;
  opt.t_stop = std::max(2.0 * st.qwm.critical_times.back(), 1e-9);
  opt.dt = 1e-12;
  const auto ref = spice::simulate_transient(sim.circuit, opt);

  // Waveform series: QWM path nodes vs baseline (wire pairs show as
  // closely spaced columns).
  std::printf("\n# t[ps] then per path position: V_qwm V_spice\n");
  const std::size_t m = st.problem.length();
  for (double t = 0.0; t <= opt.t_stop; t += opt.t_stop / 40.0) {
    std::printf("%7.1f", t * 1e12);
    for (std::size_t k = 0; k < m; ++k) {
      const double vq = st.qwm.node_waveforms[k].eval(t);
      const double vs =
          ref.waveforms[sim.node_of[st.problem.nodes[k]]].eval(t);
      std::printf("  %5.2f %5.2f", vq, vs);
    }
    std::printf("\n");
  }

  // Timing comparison.
  const double vdd = wire_proc.vdd;
  const auto t_in = inputs[0].crossing(0.5 * vdd, 0.0, true);
  const auto t_q = st.qwm.output_waveform().crossing(0.5 * vdd);
  const auto t_s = ref.waveforms[sim.node_of[stage.output]].crossing(
      0.5 * vdd, *t_in, false);
  double accuracy = 0.0;
  if (t_q && t_s) {
    const double dq = *t_q - *t_in, ds = *t_s - *t_in;
    accuracy = 100.0 * (1.0 - std::abs(dq - ds) / ds);
    std::printf("\n50%% delay: QWM %.1f ps vs SPICE %.1f ps -> accuracy "
                "%.2f%%\n", dq * 1e12, ds * 1e12, accuracy);
  }

  const double t_qwm = time_seconds([&] {
    core::evaluate_stage(stage.stage, stage.output, stage.output_falls,
                         inputs, stage.switching_input, models_local);
  });
  const double t_spice = time_seconds(
      [&] { spice::simulate_transient(sim.circuit, opt); }, 0.05, 2);
  std::printf("Runtime: QWM %.3f ms vs SPICE(1ps) %.3f ms -> speedup %.1fx\n",
              t_qwm * 1e3, t_spice * 1e3, t_spice / t_qwm);

  return run_parallel_sta_section(flags);
}
