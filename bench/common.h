// Shared support for the paper-reproduction benchmark harnesses: model
// construction, wall-clock timing, and the QWM-vs-SPICE comparison runner
// every table uses.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/device/analytic_model.h"
#include "qwm/device/model_set.h"
#include "qwm/device/tabular_model.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"

namespace qwm::bench {

/// Device models shared by both engines (the paper's setup: QWM and the
/// baseline consume the same characterized tabular model).
struct Models {
  device::Process proc = device::Process::cmosp35();
  device::TabularDeviceModel tab_n{device::MosType::nmos, proc};
  device::TabularDeviceModel tab_p{device::MosType::pmos, proc};
  device::AnalyticDeviceModel golden_n = device::AnalyticDeviceModel::nmos(proc);
  device::AnalyticDeviceModel golden_p = device::AnalyticDeviceModel::pmos(proc);

  device::ModelSet set() const {
    return device::ModelSet{&tab_n, &tab_p, &proc};
  }
  device::ModelSet golden_set() const {
    return device::ModelSet{&golden_n, &golden_p, &proc};
  }
};

inline Models& models() {
  static Models m;
  return m;
}

/// Shared command-line flags of the STA-mode harnesses:
///   --threads N   worker lanes for the parallel engine section (default 4)
///   --no-cache    disable the stage-evaluation memo cache
///   --rows N      workload size where the harness replicates structures
struct StaBenchFlags {
  int threads = 4;
  bool cache = true;
  int rows = 64;

  static StaBenchFlags parse(int argc, char** argv) {
    StaBenchFlags f;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
        f.threads = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--no-cache") == 0)
        f.cache = false;
      else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
        f.rows = std::atoi(argv[++i]);
      else {
        std::fprintf(stderr,
                     "unknown flag: %s\nusage: %s [--threads N] [--no-cache] "
                     "[--rows N]\n",
                     argv[i], argv[0]);
        std::exit(2);
      }
    }
    if (f.threads < 1) f.threads = 1;
    if (f.rows < 1) f.rows = 1;
    return f;
  }
};

/// Median wall-clock seconds of `fn` over enough repetitions to be stable.
inline double time_seconds(const std::function<void()>& fn,
                           double min_total = 0.05, int min_reps = 3) {
  using clock = std::chrono::steady_clock;
  std::vector<double> samples;
  double total = 0.0;
  while (static_cast<int>(samples.size()) < min_reps || total < min_total) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    samples.push_back(s);
    total += s;
    if (samples.size() > 2000) break;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Worst-case stimulus for a built stage: the switching input steps at
/// t_step, everything else sits at its non-controlling level.
inline std::vector<numeric::PwlWaveform> step_inputs(
    const circuit::BuiltStage& b, double t_step = 5e-12) {
  const double vdd = models().proc.vdd;
  std::vector<numeric::PwlWaveform> in;
  for (std::size_t i = 0; i < b.stage.input_count(); ++i) {
    if (static_cast<int>(i) == b.switching_input)
      in.push_back(b.output_falls
                       ? numeric::PwlWaveform::step(t_step, 0.0, vdd)
                       : numeric::PwlWaveform::step(t_step, vdd, 0.0));
    else
      in.push_back(numeric::PwlWaveform::constant(b.output_falls ? vdd : 0.0));
  }
  return in;
}

/// One row of a Table I/II-style comparison.
struct ComparisonRow {
  std::string name;
  double spice_1ps_s = 0.0;   ///< baseline transient wall time, 1 ps steps
  double spice_10ps_s = 0.0;  ///< baseline transient wall time, 10 ps steps
  double qwm_s = 0.0;         ///< QWM wall time
  double speedup_1ps = 0.0;
  double speedup_10ps = 0.0;
  double qwm_delay = 0.0;
  double spice_delay = 0.0;  ///< reference: 1 ps baseline
  double delay_error_pct = 0.0;
};

/// Builds the SPICE simulation of a stage with worst-case precharge ICs.
inline spice::StageSim make_spice_sim(
    const circuit::BuiltStage& b,
    const std::vector<numeric::PwlWaveform>& inputs) {
  spice::StageSim sim =
      spice::circuit_from_stage(b.stage, models().set(), inputs);
  const double pre = b.output_falls ? models().proc.vdd : 0.0;
  for (std::size_t n = 0; n < b.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (b.stage.is_rail(id)) continue;
    sim.circuit.set_ic(sim.node_of[n], pre);
  }
  return sim;
}

/// Runs the full comparison for one stage: QWM and the SPICE baseline at
/// 1 ps and 10 ps fixed steps over the same window. `t_stop` <= 0 sizes
/// the window automatically from the QWM transition.
inline ComparisonRow compare_stage(const std::string& name,
                                   const circuit::BuiltStage& b,
                                   double t_stop = -1.0,
                                   const core::QwmOptions& qwm_opt = {}) {
  ComparisonRow row;
  row.name = name;
  const auto inputs = step_inputs(b);
  const auto ms = models().set();
  const double vdd = models().proc.vdd;

  // QWM result + timing. The timed quantity is the waveform evaluation on
  // the prebuilt path problem — the analog of the paper comparing "only
  // the transient time reported by Hspice to ensure fairness" (setup and
  // model building excluded on both sides).
  core::StageTiming st = core::evaluate_stage(b, inputs, ms, qwm_opt);
  if (!st.ok) {
    std::fprintf(stderr, "QWM failed on %s: %s\n", name.c_str(),
                 st.error.c_str());
    return row;
  }
  row.qwm_delay = st.delay.value_or(0.0);
  row.qwm_s = time_seconds(
      [&] { core::evaluate_path(st.problem, inputs, qwm_opt); });

  if (t_stop <= 0.0)
    t_stop = std::max(2.0 * st.qwm.critical_times.back(), 500e-12);

  // SPICE baseline at both step sizes.
  spice::StageSim sim = make_spice_sim(b, inputs);
  spice::TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = 1e-12;
  const spice::TransientResult ref = spice::simulate_transient(sim.circuit, opt);
  row.spice_1ps_s = time_seconds(
      [&] { spice::simulate_transient(sim.circuit, opt); }, 0.05, 2);
  spice::TransientOptions opt10 = opt;
  opt10.dt = 10e-12;
  row.spice_10ps_s = time_seconds(
      [&] { spice::simulate_transient(sim.circuit, opt10); }, 0.02, 2);

  // Reference delay from the 1 ps run.
  const auto& w_in = inputs[b.switching_input];
  const auto& w_out = ref.waveforms[sim.node_of[b.output]];
  const auto t_in = w_in.crossing(0.5 * vdd, 0.0, b.output_falls);
  const auto t_out =
      t_in ? w_out.crossing(0.5 * vdd, *t_in, !b.output_falls) : std::nullopt;
  if (t_in && t_out) row.spice_delay = *t_out - *t_in;

  row.speedup_1ps = row.qwm_s > 0 ? row.spice_1ps_s / row.qwm_s : 0.0;
  row.speedup_10ps = row.qwm_s > 0 ? row.spice_10ps_s / row.qwm_s : 0.0;
  row.delay_error_pct =
      row.spice_delay > 0
          ? 100.0 * (row.qwm_delay - row.spice_delay) / row.spice_delay
          : 0.0;
  return row;
}

inline void print_comparison_header(const char* label) {
  std::printf("%-10s %12s %9s %12s %9s %12s %9s\n", label, "SPICE(1ps)",
              "Speedup", "SPICE(10ps)", "Speedup", "QWM", "Error");
}

inline void print_comparison_row(const ComparisonRow& r) {
  std::printf("%-10s %10.3fms %8.1fx %10.3fms %8.1fx %10.4fms %8.2f%%\n",
              r.name.c_str(), r.spice_1ps_s * 1e3, r.speedup_1ps,
              r.spice_10ps_s * 1e3, r.speedup_10ps, r.qwm_s * 1e3,
              r.delay_error_pct);
}

}  // namespace qwm::bench
