// Shared support for the paper-reproduction benchmark harnesses: model
// construction, wall-clock timing, and the QWM-vs-SPICE comparison runner
// every table uses.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "qwm/circuit/builders.h"
#include "qwm/core/stage_eval.h"
#include "qwm/device/analytic_model.h"
#include "qwm/device/model_set.h"
#include "qwm/device/tabular_model.h"
#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"

namespace qwm::bench {

/// Device models shared by both engines (the paper's setup: QWM and the
/// baseline consume the same characterized tabular model).
struct Models {
  device::Process proc = device::Process::cmosp35();
  device::TabularDeviceModel tab_n{device::MosType::nmos, proc};
  device::TabularDeviceModel tab_p{device::MosType::pmos, proc};
  device::AnalyticDeviceModel golden_n = device::AnalyticDeviceModel::nmos(proc);
  device::AnalyticDeviceModel golden_p = device::AnalyticDeviceModel::pmos(proc);

  device::ModelSet set() const {
    return device::ModelSet{&tab_n, &tab_p, &proc};
  }
  device::ModelSet golden_set() const {
    return device::ModelSet{&golden_n, &golden_p, &proc};
  }
};

inline Models& models() {
  static Models m;
  return m;
}

/// Shared command-line flags of the STA-mode harnesses:
///   --threads N   worker lanes for the parallel engine section (default 4)
///   --no-cache    disable the stage-evaluation memo cache
///   --rows N      workload size where the harness replicates structures
///   --corners     run the STA sections at all three process corners
///   --json FILE   additionally write the results as a JSON document
struct StaBenchFlags {
  int threads = 4;
  bool cache = true;
  int rows = 64;
  bool corners = false;
  std::string json_path;

  static StaBenchFlags parse(int argc, char** argv) {
    StaBenchFlags f;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
        f.threads = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--no-cache") == 0)
        f.cache = false;
      else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
        f.rows = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--corners") == 0)
        f.corners = true;
      else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
        f.json_path = argv[++i];
      else {
        std::fprintf(stderr,
                     "unknown flag: %s\nusage: %s [--threads N] [--no-cache] "
                     "[--rows N] [--corners] [--json FILE]\n",
                     argv[i], argv[0]);
        std::exit(2);
      }
    }
    if (f.threads < 1) f.threads = 1;
    if (f.rows < 1) f.rows = 1;
    return f;
  }
};

/// One-line JSON object builder for the --json bench outputs: numbers are
/// %.17g doubles or exact integers, strings are assumed to need no
/// escaping (bench-controlled names only). The emitted documents follow
/// the repo's golden-file idiom — arrays of one-line objects with fixed
/// keys — so the sscanf-based readers in tools/ and tests/ can consume
/// them without a JSON library.
class JsonObject {
 public:
  JsonObject& num(const std::string& key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return raw(key, buf);
  }
  JsonObject& integer(const std::string& key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonObject& str(const std::string& key, const std::string& v) {
    return raw(key, "\"" + v + "\"");
  }
  JsonObject& raw(const std::string& key, const std::string& v) {
    body_ += first_ ? "" : ", ";
    first_ = false;
    body_ += "\"" + key + "\": " + v;
    return *this;
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
  bool first_ = true;
};

/// Joins one-line JSON items into a multi-line array literal.
inline std::string json_array(const std::vector<std::string>& items,
                              const std::string& indent = "  ") {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i)
    out += (i ? "," : "") + std::string("\n") + indent + items[i];
  out += "\n" + (indent.size() >= 2 ? indent.substr(2) : "") + "]";
  return out;
}

inline bool write_text_file(const std::string& path,
                            const std::string& text) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << text;
  return static_cast<bool>(os);
}

inline bool read_text_file(const std::string& path, std::string* out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

/// Finds `"key": <number>` in a JSON text (the one-line-object idiom the
/// harnesses emit) without a JSON library. Returns false if absent.
inline bool json_find_number(const std::string& text, const std::string& key,
                             double* out) {
  const std::string needle = "\"" + key + "\"";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const auto colon = text.find(':', pos + needle.size());
  if (colon == std::string::npos) return false;
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

/// Fig. 10 shape shared by the harnesses: 3 buffered address lines fan
/// out to `rows` NAND3 rows, each followed by a two-stage wordline driver
/// whose widths cycle through `variants` sizing variants (as a real
/// decoder sizes drivers by wordline distance); rows/variants rows are
/// electrically identical, so the memo cache collapses them. The extra
/// wire load on address line 0 makes it strictly the latest arrival, so
/// every row's trigger gates the NMOS nearest ground — the stack position
/// QWM resolves across the full slew range.
inline std::string make_decoder_deck(int rows, int variants) {
  std::ostringstream os;
  os << "row decoder\n" << "vdd vdd 0 3.3\n";
  for (int i = 0; i < 3; ++i) {
    os << "vin" << i << " a" << i << " 0 0\n";
    os << "mpb" << i << "1 b" << i << "1 a" << i
       << " vdd vdd pmos w=4u l=0.35u\n";
    os << "mnb" << i << "1 b" << i << "1 a" << i << " 0 0 nmos w=2u l=0.35u\n";
    os << "mpb" << i << "2 b" << i << "2 b" << i << "1"
       << " vdd vdd pmos w=16u l=0.35u\n";
    os << "mnb" << i << "2 b" << i << "2 b" << i << "1"
       << " 0 0 nmos w=8u l=0.35u\n";
    os << "mpb" << i << "3 l" << i << " b" << i << "2"
       << " vdd vdd pmos w=64u l=0.35u\n";
    os << "mnb" << i << "3 l" << i << " b" << i << "2"
       << " 0 0 nmos w=32u l=0.35u\n";
  }
  os << "cl0 l0 0 10f\n";
  for (int r = 0; r < rows; ++r) {
    const double scale = 1.0 + 0.25 * (r % variants);
    os << "mpr" << r << "a w" << r << " l0 vdd vdd pmos w=2u l=0.35u\n";
    os << "mpr" << r << "b w" << r << " l1 vdd vdd pmos w=2u l=0.35u\n";
    os << "mpr" << r << "c w" << r << " l2 vdd vdd pmos w=2u l=0.35u\n";
    os << "mnr" << r << "a w" << r << " l2 x" << r << "1 0 nmos w=2u l=0.35u\n";
    os << "mnr" << r << "b x" << r << "1 l1 x" << r << "2 0 nmos w=2u l=0.35u\n";
    os << "mnr" << r << "c x" << r << "2 l0 0 0 nmos w=2u l=0.35u\n";
    os << "mpd" << r << "1 d" << r << " w" << r << " vdd vdd pmos w="
       << 2.0 * scale << "u l=0.35u\n";
    os << "mnd" << r << "1 d" << r << " w" << r << " 0 0 nmos w="
       << 1.0 * scale << "u l=0.35u\n";
    os << "mpd" << r << "2 wl" << r << " d" << r << " vdd vdd pmos w="
       << 4.0 * scale << "u l=0.35u\n";
    os << "mnd" << r << "2 wl" << r << " d" << r << " 0 0 nmos w="
       << 2.0 * scale << "u l=0.35u\n";
    os << "cwl" << r << " wl" << r << " 0 60f\n";
  }
  return os.str();
}

/// Table I shape shared by the harnesses: a buffered stimulus line fans
/// out to `rows` instances each of inv / nand2 / nand3 / nand4.
/// Non-switching NAND inputs tie to vdd; the stimulus gates the NMOS
/// nearest ground.
inline std::string make_gate_farm_deck(int rows) {
  std::ostringstream os;
  os << "table1 gate farm\n" << "vdd vdd 0 3.3\n";
  os << "vin a 0 0\n";
  os << "mpb1 b a vdd vdd pmos w=8u l=0.35u\n";
  os << "mnb1 b a 0 0 nmos w=4u l=0.35u\n";
  os << "mpb2 in b vdd vdd pmos w=64u l=0.35u\n";
  os << "mnb2 in b 0 0 nmos w=32u l=0.35u\n";
  for (int r = 0; r < rows; ++r) {
    os << "mpi" << r << " yi" << r << " in vdd vdd pmos w=2u l=0.35u\n";
    os << "mni" << r << " yi" << r << " in 0 0 nmos w=1u l=0.35u\n";
    os << "ci" << r << " yi" << r << " 0 20f\n";
    for (int k = 2; k <= 4; ++k) {
      const std::string y = "yn" + std::to_string(k) + "_" + std::to_string(r);
      const std::string tag = std::to_string(k) + "_" + std::to_string(r);
      for (int p = 0; p < k; ++p)
        os << "mp" << tag << "_" << p << " " << y << " "
           << (p == 0 ? "in" : "vdd") << " vdd vdd pmos w=2u l=0.35u\n";
      // NMOS chain from output to ground; the bottom device switches.
      for (int q = 0; q < k; ++q) {
        const std::string top =
            q == 0 ? y : "xn" + tag + "_" + std::to_string(q);
        const std::string bot =
            q == k - 1 ? "0" : "xn" + tag + "_" + std::to_string(q + 1);
        os << "mn" << tag << "_" << q << " " << top << " "
           << (q == k - 1 ? "in" : "vdd") << " " << bot
           << " 0 nmos w=2u l=0.35u\n";
      }
      os << "cn" << tag << " " << y << " 0 20f\n";
    }
  }
  return os.str();
}

/// Median wall-clock seconds of `fn` over enough repetitions to be stable.
inline double time_seconds(const std::function<void()>& fn,
                           double min_total = 0.05, int min_reps = 3) {
  using clock = std::chrono::steady_clock;
  std::vector<double> samples;
  double total = 0.0;
  while (static_cast<int>(samples.size()) < min_reps || total < min_total) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    samples.push_back(s);
    total += s;
    if (samples.size() > 2000) break;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Worst-case stimulus for a built stage: the switching input steps at
/// t_step, everything else sits at its non-controlling level.
inline std::vector<numeric::PwlWaveform> step_inputs(
    const circuit::BuiltStage& b, double t_step = 5e-12) {
  const double vdd = models().proc.vdd;
  std::vector<numeric::PwlWaveform> in;
  for (std::size_t i = 0; i < b.stage.input_count(); ++i) {
    if (static_cast<int>(i) == b.switching_input)
      in.push_back(b.output_falls
                       ? numeric::PwlWaveform::step(t_step, 0.0, vdd)
                       : numeric::PwlWaveform::step(t_step, vdd, 0.0));
    else
      in.push_back(numeric::PwlWaveform::constant(b.output_falls ? vdd : 0.0));
  }
  return in;
}

/// One row of a Table I/II-style comparison.
struct ComparisonRow {
  std::string name;
  double spice_1ps_s = 0.0;   ///< baseline transient wall time, 1 ps steps
  double spice_10ps_s = 0.0;  ///< baseline transient wall time, 10 ps steps
  double qwm_s = 0.0;         ///< QWM wall time
  double speedup_1ps = 0.0;
  double speedup_10ps = 0.0;
  double qwm_delay = 0.0;
  double spice_delay = 0.0;  ///< reference: 1 ps baseline
  double delay_error_pct = 0.0;
};

/// Builds the SPICE simulation of a stage with worst-case precharge ICs.
inline spice::StageSim make_spice_sim(
    const circuit::BuiltStage& b,
    const std::vector<numeric::PwlWaveform>& inputs) {
  spice::StageSim sim =
      spice::circuit_from_stage(b.stage, models().set(), inputs);
  const double pre = b.output_falls ? models().proc.vdd : 0.0;
  for (std::size_t n = 0; n < b.stage.node_count(); ++n) {
    const auto id = static_cast<circuit::NodeId>(n);
    if (b.stage.is_rail(id)) continue;
    sim.circuit.set_ic(sim.node_of[n], pre);
  }
  return sim;
}

/// Runs the full comparison for one stage: QWM and the SPICE baseline at
/// 1 ps and 10 ps fixed steps over the same window. `t_stop` <= 0 sizes
/// the window automatically from the QWM transition.
inline ComparisonRow compare_stage(const std::string& name,
                                   const circuit::BuiltStage& b,
                                   double t_stop = -1.0,
                                   const core::QwmOptions& qwm_opt = {}) {
  ComparisonRow row;
  row.name = name;
  const auto inputs = step_inputs(b);
  const auto ms = models().set();
  const double vdd = models().proc.vdd;

  // QWM result + timing. The timed quantity is the waveform evaluation on
  // the prebuilt path problem — the analog of the paper comparing "only
  // the transient time reported by Hspice to ensure fairness" (setup and
  // model building excluded on both sides).
  core::StageTiming st = core::evaluate_stage(b, inputs, ms, qwm_opt);
  if (!st.ok) {
    std::fprintf(stderr, "QWM failed on %s: %s\n", name.c_str(),
                 st.error.c_str());
    return row;
  }
  row.qwm_delay = st.delay.value_or(0.0);
  row.qwm_s = time_seconds(
      [&] { core::evaluate_path(st.problem, inputs, qwm_opt); });

  if (t_stop <= 0.0)
    t_stop = std::max(2.0 * st.qwm.critical_times.back(), 500e-12);

  // SPICE baseline at both step sizes.
  spice::StageSim sim = make_spice_sim(b, inputs);
  spice::TransientOptions opt;
  opt.t_stop = t_stop;
  opt.dt = 1e-12;
  const spice::TransientResult ref = spice::simulate_transient(sim.circuit, opt);
  row.spice_1ps_s = time_seconds(
      [&] { spice::simulate_transient(sim.circuit, opt); }, 0.05, 2);
  spice::TransientOptions opt10 = opt;
  opt10.dt = 10e-12;
  row.spice_10ps_s = time_seconds(
      [&] { spice::simulate_transient(sim.circuit, opt10); }, 0.02, 2);

  // Reference delay from the 1 ps run.
  const auto& w_in = inputs[b.switching_input];
  const auto& w_out = ref.waveforms[sim.node_of[b.output]];
  const auto t_in = w_in.crossing(0.5 * vdd, 0.0, b.output_falls);
  const auto t_out =
      t_in ? w_out.crossing(0.5 * vdd, *t_in, !b.output_falls) : std::nullopt;
  if (t_in && t_out) row.spice_delay = *t_out - *t_in;

  row.speedup_1ps = row.qwm_s > 0 ? row.spice_1ps_s / row.qwm_s : 0.0;
  row.speedup_10ps = row.qwm_s > 0 ? row.spice_10ps_s / row.qwm_s : 0.0;
  row.delay_error_pct =
      row.spice_delay > 0
          ? 100.0 * (row.qwm_delay - row.spice_delay) / row.spice_delay
          : 0.0;
  return row;
}

inline void print_comparison_header(const char* label) {
  std::printf("%-10s %12s %9s %12s %9s %12s %9s\n", label, "SPICE(1ps)",
              "Speedup", "SPICE(10ps)", "Speedup", "QWM", "Error");
}

inline void print_comparison_row(const ComparisonRow& r) {
  std::printf("%-10s %10.3fms %8.1fx %10.3fms %8.1fx %10.4fms %8.2f%%\n",
              r.name.c_str(), r.spice_1ps_s * 1e3, r.speedup_1ps,
              r.spice_10ps_s * 1e3, r.speedup_10ps, r.qwm_s * 1e3,
              r.delay_error_pct);
}

}  // namespace qwm::bench
