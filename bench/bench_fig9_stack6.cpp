// Figure 9 reproduction: 6-NMOS-stack node voltage waveforms — the QWM
// result (straight lines connecting the critical points, exactly as the
// paper plots it) against the SPICE baseline.
//
// Expected shape: the QWM polylines track the baseline closely at every
// node, and the per-node 50% crossings stagger bottom-to-top.
#include <cstdio>
#include <vector>

#include "common.h"
#include "qwm/circuit/path.h"

int main() {
  using namespace qwm;
  using namespace qwm::bench;

  const auto& proc = models().proc;
  // The paper takes this stack from the Manchester carry chain's longest
  // path; the equivalent series pulldown is built directly.
  const auto stage = circuit::make_nmos_stack(
      proc, std::vector<double>(6, 1.0e-6), 30e-15);
  const auto inputs = step_inputs(stage);
  const auto ms = models().set();

  const auto st = core::evaluate_stage(stage, inputs, ms);
  if (!st.ok) {
    std::fprintf(stderr, "QWM failed: %s\n", st.error.c_str());
    return 1;
  }

  spice::StageSim sim = make_spice_sim(stage, inputs);
  spice::TransientOptions opt;
  opt.t_stop = 600e-12;
  opt.dt = 1e-12;
  const auto ref = spice::simulate_transient(sim.circuit, opt);

  std::printf("Figure 9: 6-NMOS stack waveforms, QWM (critical-point "
              "polyline) vs SPICE\n");
  std::printf("# t[ps]  then per node k=1..6: V_qwm[V] V_spice[V]\n");
  for (double t = 0.0; t <= 500e-12; t += 10e-12) {
    std::printf("%6.0f", t * 1e12);
    for (int k = 0; k < 6; ++k) {
      const auto poly = st.qwm.node_waveforms[k].critical_point_polyline();
      const double vq = poly.eval(t);
      const double vs =
          ref.waveforms[sim.node_of[st.problem.nodes[k]]].eval(t);
      std::printf("  %6.3f %6.3f", vq, vs);
    }
    std::printf("\n");
  }

  // Deviation metrics per node.
  std::printf("\nMax |QWM - SPICE| per node over the transition [mV]:\n");
  double worst = 0.0;
  for (int k = 0; k < 6; ++k) {
    const auto poly = st.qwm.node_waveforms[k].to_pwl(16);
    const auto& w = ref.waveforms[sim.node_of[st.problem.nodes[k]]];
    const double t1 = std::min(poly.last_time(), 500e-12);
    const double d = numeric::PwlWaveform::max_difference(poly, w, 0.0, t1);
    std::printf("  node %d: %7.1f\n", k + 1, d * 1e3);
    worst = std::max(worst, d);
  }
  std::printf("Worst-node deviation: %.1f mV (%.1f%% of VDD)\n", worst * 1e3,
              100.0 * worst / proc.vdd);

  // Output delay comparison.
  const auto t_in = inputs[0].crossing(0.5 * proc.vdd, 0.0, true);
  const auto t_q = st.qwm.output_waveform().crossing(0.5 * proc.vdd);
  const auto t_s = ref.waveforms[sim.node_of[stage.output]].crossing(
      0.5 * proc.vdd, *t_in, false);
  if (t_q && t_s) {
    const double dq = *t_q - *t_in, ds = *t_s - *t_in;
    std::printf("50%% delay: QWM %.2f ps vs SPICE %.2f ps (%.2f%% error)\n",
                dq * 1e12, ds * 1e12, 100.0 * (dq - ds) / ds);
  }
  return 0;
}
