// Table I reproduction: QWM vs the SPICE baseline for minimum-size logic
// gates (inv, nand2, nand3, nand4).
//
// Paper: speedups of roughly 6-60x (1 ps steps) and 3.7-8x (10 ps steps)
// with delay errors around 1% (0.35%-2.37%). The expected *shape* here:
// QWM beats the 1 ps baseline by well over an order of magnitude on every
// gate, still beats the 10 ps baseline, and the delay error stays in low
// single digits.
#include <cstdio>

#include "common.h"

int main() {
  using namespace qwm;
  using namespace qwm::bench;

  const auto& proc = models().proc;
  const double load = circuit::fanout_load_cap(proc);

  std::printf("Table I: QWM vs SPICE baseline for logic gates\n");
  std::printf("(min-size gates, FO4 load, step input; times are medians)\n\n");
  print_comparison_header("Circuit");

  double err_sum = 0.0, err_worst = 0.0;
  int n = 0;
  std::vector<std::pair<std::string, circuit::BuiltStage>> gates;
  gates.emplace_back("inv", circuit::make_inverter(proc, load));
  gates.emplace_back("nand2", circuit::make_nand(proc, 2, load));
  gates.emplace_back("nand3", circuit::make_nand(proc, 3, load));
  gates.emplace_back("nand4", circuit::make_nand(proc, 4, load));

  for (const auto& [name, stage] : gates) {
    const ComparisonRow row = compare_stage(name, stage, 500e-12);
    print_comparison_row(row);
    err_sum += std::abs(row.delay_error_pct);
    err_worst = std::max(err_worst, std::abs(row.delay_error_pct));
    ++n;
  }
  std::printf("\nAverage |delay error| %.2f%%, worst %.2f%%\n", err_sum / n,
              err_worst);
  return 0;
}
