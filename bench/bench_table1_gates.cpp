// Table I reproduction: QWM vs the SPICE baseline for minimum-size logic
// gates (inv, nand2, nand3, nand4).
//
// Paper: speedups of roughly 6-60x (1 ps steps) and 3.7-8x (10 ps steps)
// with delay errors around 1% (0.35%-2.37%). The expected *shape* here:
// QWM beats the 1 ps baseline by well over an order of magnitude on every
// gate, still beats the 10 ps baseline, and the delay error stays in low
// single digits.
//
// A second section replicates the Table I gates into a flat "gate farm"
// netlist and runs the parallel, cache-aware STA engine over it: every
// instance of a gate type is electrically identical, so the memo cache
// collapses the farm to one evaluation per (type, direction) while the
// worker lanes split the remaining owners. Flags: --threads N,
// --no-cache, --rows N (instances per type, default 64).
#include <cstdio>
#include <sstream>

#include "common.h"
#include "qwm/circuit/partition.h"
#include "qwm/netlist/parser.h"
#include "qwm/sta/sta.h"

namespace {

/// Flat farm netlist: a buffered stimulus line fans out to `rows`
/// instances each of inv / nand2 / nand3 / nand4. Non-switching NAND
/// inputs tie to vdd; the stimulus gates the NMOS nearest ground, the
/// stack position QWM resolves across the full slew range.
std::string make_gate_farm(int rows) {
  std::ostringstream os;
  os << "table1 gate farm\n" << "vdd vdd 0 3.3\n";
  os << "vin a 0 0\n";
  os << "mpb1 b a vdd vdd pmos w=8u l=0.35u\n";
  os << "mnb1 b a 0 0 nmos w=4u l=0.35u\n";
  os << "mpb2 in b vdd vdd pmos w=64u l=0.35u\n";
  os << "mnb2 in b 0 0 nmos w=32u l=0.35u\n";
  for (int r = 0; r < rows; ++r) {
    os << "mpi" << r << " yi" << r << " in vdd vdd pmos w=2u l=0.35u\n";
    os << "mni" << r << " yi" << r << " in 0 0 nmos w=1u l=0.35u\n";
    os << "ci" << r << " yi" << r << " 0 20f\n";
    for (int k = 2; k <= 4; ++k) {
      const std::string y = "yn" + std::to_string(k) + "_" + std::to_string(r);
      const std::string tag = std::to_string(k) + "_" + std::to_string(r);
      for (int p = 0; p < k; ++p)
        os << "mp" << tag << "_" << p << " " << y << " "
           << (p == 0 ? "in" : "vdd") << " vdd vdd pmos w=2u l=0.35u\n";
      // NMOS chain from output to ground; the bottom device switches.
      for (int q = 0; q < k; ++q) {
        const std::string top =
            q == 0 ? y : "xn" + tag + "_" + std::to_string(q);
        const std::string bot =
            q == k - 1 ? "0" : "xn" + tag + "_" + std::to_string(q + 1);
        os << "mn" << tag << "_" << q << " " << top << " "
           << (q == k - 1 ? "in" : "vdd") << " " << bot
           << " 0 nmos w=2u l=0.35u\n";
      }
      os << "cn" << tag << " " << y << " 0 20f\n";
    }
  }
  return os.str();
}

int run_gate_farm_section(const qwm::bench::StaBenchFlags& flags) {
  using namespace qwm;
  using namespace qwm::bench;
  const auto parsed = netlist::parse_spice(make_gate_farm(flags.rows));
  if (!parsed.ok()) {
    std::fprintf(stderr, "gate farm netlist parse failed\n");
    return 1;
  }
  const auto design =
      circuit::partition_netlist(parsed.netlist, models().set());

  sta::StaOptions serial_opt;
  serial_opt.use_cache = flags.cache;
  sta::StaEngine serial(design, models().set(), serial_opt);
  const std::size_t evals = serial.run();
  const auto stats = serial.cache_stats();

  sta::StaOptions par_opt = serial_opt;
  par_opt.threads = flags.threads;
  sta::StaEngine parallel(design, models().set(), par_opt);
  parallel.run();

  bool same = true;
  for (const auto& info : design.stages)
    for (netlist::NetId n : info.output_nets) {
      const auto& ta = serial.timing(n);
      const auto& tb = parallel.timing(n);
      if (ta.rise.time != tb.rise.time || ta.fall.time != tb.fall.time ||
          ta.rise.slew != tb.rise.slew || ta.fall.slew != tb.fall.slew)
        same = false;
    }

  const double t_serial = time_seconds([&] {
    serial.clear_cache();
    serial.run();
  });
  const double t_parallel = time_seconds([&] {
    parallel.clear_cache();
    parallel.run();
  });

  std::printf("\nGate farm STA: %d instances/type, %zu stages, cache %s, "
              "%d lanes\n",
              flags.rows, design.stages.size(), flags.cache ? "on" : "off",
              parallel.thread_count());
  std::printf("Evaluations %zu, QWM runs %llu (hit rate %.1f%%); "
              "serial %.3f ms vs parallel %.3f ms; bit-identical: %s\n",
              evals, static_cast<unsigned long long>(stats.misses),
              100.0 * stats.hit_rate(), t_serial * 1e3, t_parallel * 1e3,
              same ? "YES" : "NO");
  // Per-type worst delays (every instance of a type must agree).
  for (const char* net : {"yi0", "yn2_0", "yn3_0", "yn4_0"}) {
    const auto id = parsed.netlist.find_net(net);
    if (!id) continue;
    const auto& t = parallel.timing(*id);
    std::printf("  %-6s rise %.2f ps  fall %.2f ps\n", net, t.rise.time * 1e12,
                t.fall.time * 1e12);
  }
  return same ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qwm;
  using namespace qwm::bench;
  const StaBenchFlags flags = StaBenchFlags::parse(argc, argv);

  const auto& proc = models().proc;
  const double load = circuit::fanout_load_cap(proc);

  std::printf("Table I: QWM vs SPICE baseline for logic gates\n");
  std::printf("(min-size gates, FO4 load, step input; times are medians)\n\n");
  print_comparison_header("Circuit");

  double err_sum = 0.0, err_worst = 0.0;
  int n = 0;
  std::vector<std::pair<std::string, circuit::BuiltStage>> gates;
  gates.emplace_back("inv", circuit::make_inverter(proc, load));
  gates.emplace_back("nand2", circuit::make_nand(proc, 2, load));
  gates.emplace_back("nand3", circuit::make_nand(proc, 3, load));
  gates.emplace_back("nand4", circuit::make_nand(proc, 4, load));

  for (const auto& [name, stage] : gates) {
    const ComparisonRow row = compare_stage(name, stage, 500e-12);
    print_comparison_row(row);
    err_sum += std::abs(row.delay_error_pct);
    err_worst = std::max(err_worst, std::abs(row.delay_error_pct));
    ++n;
  }
  std::printf("\nAverage |delay error| %.2f%%, worst %.2f%%\n", err_sum / n,
              err_worst);
  return run_gate_farm_section(flags);
}
