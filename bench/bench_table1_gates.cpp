// Table I reproduction: QWM vs the SPICE baseline for minimum-size logic
// gates (inv, nand2, nand3, nand4).
//
// Paper: speedups of roughly 6-60x (1 ps steps) and 3.7-8x (10 ps steps)
// with delay errors around 1% (0.35%-2.37%). The expected *shape* here:
// QWM beats the 1 ps baseline by well over an order of magnitude on every
// gate, still beats the 10 ps baseline, and the delay error stays in low
// single digits.
//
// A second section replicates the Table I gates into a flat "gate farm"
// netlist and runs the parallel, cache-aware STA engine over it: every
// instance of a gate type is electrically identical, so the memo cache
// collapses the farm to one evaluation per (type, direction) while the
// worker lanes split the remaining owners. Flags: --threads N,
// --no-cache, --rows N (instances per type, default 64).
#include <cstdio>
#include <sstream>

#include "common.h"
#include "qwm/circuit/partition.h"
#include "qwm/netlist/parser.h"
#include "qwm/sta/sta.h"

namespace {

int run_gate_farm_section(const qwm::bench::StaBenchFlags& flags,
                          std::string* farm_json) {
  using namespace qwm;
  using namespace qwm::bench;
  const auto parsed =
      netlist::parse_spice(make_gate_farm_deck(flags.rows));
  if (!parsed.ok()) {
    std::fprintf(stderr, "gate farm netlist parse failed\n");
    return 1;
  }
  const auto design =
      circuit::partition_netlist(parsed.netlist, models().set());

  sta::StaOptions serial_opt;
  serial_opt.use_cache = flags.cache;
  sta::StaEngine serial(design, models().set(), serial_opt);
  const std::size_t evals = serial.run();
  const auto stats = serial.cache_stats();

  sta::StaOptions par_opt = serial_opt;
  par_opt.threads = flags.threads;
  sta::StaEngine parallel(design, models().set(), par_opt);
  parallel.run();

  bool same = true;
  for (const auto& info : design.stages)
    for (netlist::NetId n : info.output_nets) {
      const auto& ta = serial.timing(n);
      const auto& tb = parallel.timing(n);
      if (ta.rise.time != tb.rise.time || ta.fall.time != tb.fall.time ||
          ta.rise.slew != tb.rise.slew || ta.fall.slew != tb.fall.slew)
        same = false;
    }

  const double t_serial = time_seconds([&] {
    serial.clear_cache();
    serial.run();
  });
  const double t_parallel = time_seconds([&] {
    parallel.clear_cache();
    parallel.run();
  });

  std::printf("\nGate farm STA: %d instances/type, %zu stages, cache %s, "
              "%d lanes\n",
              flags.rows, design.stages.size(), flags.cache ? "on" : "off",
              parallel.thread_count());
  std::printf("Evaluations %zu, QWM runs %llu (hit rate %.1f%%); "
              "serial %.3f ms vs parallel %.3f ms; bit-identical: %s\n",
              evals, static_cast<unsigned long long>(stats.misses),
              100.0 * stats.hit_rate(), t_serial * 1e3, t_parallel * 1e3,
              same ? "YES" : "NO");
  // Per-type worst delays (every instance of a type must agree).
  for (const char* net : {"yi0", "yn2_0", "yn3_0", "yn4_0"}) {
    const auto id = parsed.netlist.find_net(net);
    if (!id) continue;
    const auto& t = parallel.timing(*id);
    std::printf("  %-6s rise %.2f ps  fall %.2f ps\n", net, t.rise.time * 1e12,
                t.fall.time * 1e12);
  }
  if (farm_json != nullptr) {
    const auto qs = serial.qwm_stats();
    const auto ws = serial.workspace_stats();
    *farm_json =
        JsonObject()
            .integer("rows", static_cast<std::uint64_t>(flags.rows))
            .integer("stages", design.stages.size())
            .integer("evals", evals)
            .integer("qwm_runs", stats.misses)
            .num("serial_ms", t_serial * 1e3)
            .num("parallel_ms", t_parallel * 1e3)
            .integer("bit_identical", same ? 1 : 0)
            .integer("newton_iters", qs.newton_iterations)
            .integer("device_evals", qs.device_evals)
            .integer("warm_starts", qs.warm_starts)
            .integer("warm_retries", qs.warm_retries)
            .integer("ws_high_water_bytes", ws.high_water_bytes)
            .integer("ws_grow_events", ws.grow_events)
            .str();
  }
  return same ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qwm;
  using namespace qwm::bench;
  const StaBenchFlags flags = StaBenchFlags::parse(argc, argv);

  const auto& proc = models().proc;
  const double load = circuit::fanout_load_cap(proc);

  std::printf("Table I: QWM vs SPICE baseline for logic gates\n");
  std::printf("(min-size gates, FO4 load, step input; times are medians)\n\n");
  print_comparison_header("Circuit");

  double err_sum = 0.0, err_worst = 0.0;
  int n = 0;
  std::vector<std::pair<std::string, circuit::BuiltStage>> gates;
  gates.emplace_back("inv", circuit::make_inverter(proc, load));
  gates.emplace_back("nand2", circuit::make_nand(proc, 2, load));
  gates.emplace_back("nand3", circuit::make_nand(proc, 3, load));
  gates.emplace_back("nand4", circuit::make_nand(proc, 4, load));

  std::vector<std::string> gate_json;
  for (const auto& [name, stage] : gates) {
    const ComparisonRow row = compare_stage(name, stage, 500e-12);
    print_comparison_row(row);
    err_sum += std::abs(row.delay_error_pct);
    err_worst = std::max(err_worst, std::abs(row.delay_error_pct));
    ++n;

    if (!flags.json_path.empty()) {
      // Warm-vs-cold work counters: a cold evaluation records its solve
      // trace, then a second evaluation replays it. Same inputs, so the
      // replay must reproduce the delay bit-for-bit at ~zero Newton work.
      const auto inputs = step_inputs(stage);
      core::QwmOptions cold_opt;
      cold_opt.record_trace = true;
      const core::StageTiming cold =
          core::evaluate_stage(stage, inputs, models().set(), cold_opt);
      core::QwmOptions warm_opt;
      warm_opt.warm = &cold.qwm.trace;
      const core::StageTiming warm =
          core::evaluate_stage(stage, inputs, models().set(), warm_opt);
      gate_json.push_back(
          JsonObject()
              .str("name", name)
              .num("spice_1ps_ms", row.spice_1ps_s * 1e3)
              .num("spice_10ps_ms", row.spice_10ps_s * 1e3)
              .num("qwm_ms", row.qwm_s * 1e3)
              .num("speedup_1ps", row.speedup_1ps)
              .num("speedup_10ps", row.speedup_10ps)
              .num("qwm_delay", row.qwm_delay)
              .num("spice_delay", row.spice_delay)
              .num("delay_err_pct", row.delay_error_pct)
              .integer("newton_cold", cold.qwm.stats.newton_iterations)
              .integer("newton_warm", warm.qwm.stats.newton_iterations)
              .integer("device_evals_cold", cold.qwm.stats.device_evals)
              .integer("device_evals_warm", warm.qwm.stats.device_evals)
              .integer("warm_bit_identical",
                       warm.ok && cold.ok &&
                               warm.delay.value_or(-1.0) ==
                                   cold.delay.value_or(-2.0)
                           ? 1
                           : 0)
              .str());
    }
  }
  std::printf("\nAverage |delay error| %.2f%%, worst %.2f%%\n", err_sum / n,
              err_worst);

  std::string farm_json;
  const int rc = run_gate_farm_section(
      flags, flags.json_path.empty() ? nullptr : &farm_json);

  if (!flags.json_path.empty()) {
    std::string doc = "{\n  \"bench\": \"table1_gates\",\n  \"gates\": " +
                      json_array(gate_json, "    ") +
                      ",\n  \"gate_farm\": " + farm_json + "\n}\n";
    if (!write_text_file(flags.json_path, doc)) return 1;
    std::printf("wrote %s\n", flags.json_path.c_str());
  }
  return rc;
}
