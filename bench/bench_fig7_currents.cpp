// Figure 7 reproduction: discharge currents of all six nodes of a 6-NMOS
// stack, from the SPICE baseline (I_k = C_k dV_k/dt).
//
// The paper's key observation: each node current is single-peaked, with
// the peak coinciding with the instant the transistor above turns on, and
// the peaks are staggered bottom-to-top. This is the observation that
// justifies the linear-current / quadratic-voltage region model.
#include <cstdio>
#include <vector>

#include "common.h"
#include "qwm/circuit/path.h"

int main() {
  using namespace qwm;
  using namespace qwm::bench;

  const auto& proc = models().proc;
  const auto stage = circuit::make_nmos_stack(
      proc, std::vector<double>(6, 1.0e-6), 30e-15);
  const auto inputs = step_inputs(stage);

  spice::StageSim sim = make_spice_sim(stage, inputs);
  spice::TransientOptions opt;
  opt.t_stop = 600e-12;
  opt.dt = 1e-12;
  const auto res = spice::simulate_transient(sim.circuit, opt);

  // Node caps as QWM lumps them (same parasitics the baseline sees).
  const auto path = circuit::extract_worst_path(stage.stage, stage.output, true);
  const auto prob = circuit::build_path_problem(stage.stage, path, models().set());

  std::printf("Figure 7: discharge current of the 6-NMOS stack (SPICE)\n");
  std::printf("# t[ps]  I1..I6 [uA]  (I_k = C_k dV_k/dt)\n");
  const double dt = 1e-12;
  std::vector<double> peak_mag(6, 0.0), peak_time(6, 0.0);
  for (double t = dt; t < opt.t_stop; t += 5e-12) {
    std::printf("%7.1f", t * 1e12);
    for (int k = 0; k < 6; ++k) {
      const auto& w = res.waveforms[sim.node_of[prob.nodes[k]]];
      const double i =
          prob.node_caps[k] * (w.eval(t) - w.eval(t - dt)) / dt;
      std::printf(" %9.2f", i * 1e6);
      if (std::abs(i) > peak_mag[k]) {
        peak_mag[k] = std::abs(i);
        peak_time[k] = t;
      }
    }
    std::printf("\n");
  }

  std::printf("\nPeak |I_k| and time (expected: staggered bottom-to-top):\n");
  bool staggered = true;
  for (int k = 0; k < 6; ++k) {
    std::printf("  node %d: %8.2f uA at %6.1f ps\n", k + 1, peak_mag[k] * 1e6,
                peak_time[k] * 1e12);
    if (k > 0 && peak_time[k] < peak_time[k - 1]) staggered = false;
  }
  std::printf("Peaks staggered bottom-to-top: %s\n", staggered ? "YES" : "NO");

  // Cross-check against the QWM critical points (turn-on instants).
  const auto st = core::evaluate_stage(stage, inputs, models().set());
  if (st.ok) {
    std::printf("\nQWM critical points (turn-on instants) [ps]:");
    for (std::size_t i = 0; i < 6 && i < st.qwm.critical_times.size(); ++i)
      std::printf(" %.1f", st.qwm.critical_times[i] * 1e12);
    std::printf("\n");
  }
  return 0;
}
