// Scale STA harness: full-design analysis of generated mega-circuits
// (10^4 and 10^5 stages) under both stage schedulers — the
// level-synchronous barrier schedule and the dependency-counting
// asynchronous schedule — with a bitwise arrival comparison between the
// two on every run. Reports wall clock per schedule plus the scheduler
// work counters (barrier syncs, tasks enqueued, ready-queue high-water
// mark, memo-twin chain edges), which are machine-deterministic and
// budget-pinned for the CI perf smoke.
//
//   bench_scale_sta [--threads N | --threads N1,N2,...] [--smoke]
//                   [--counters-only] [--json FILE] [--budget FILE]
//
//   --threads N,...  comma list = thread-scaling sweep: after the normal
//                    comparison, the 10^4-stage design is re-analysed
//                    under the deps schedule at every listed lane count,
//                    emitting one JSON row per point (wall, steal_count,
//                    ready_hwm, classify_lock_waits) and checking every
//                    point's arrivals bitwise against the first
//   --smoke          run the 10^4-stage design only (CI-sized)
//   --counters-only  skip the timed medians; counters and the bitwise
//                    equivalence check still run
//   --budget FILE    compare the 10^4-stage scheduler counters against
//                    tools/perf_budget.json; exit 1 on excess
//
// Exit status is non-zero if any design's arrivals differ between the
// schedulers — the harness doubles as an end-to-end equivalence check.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "qwm/frontend/elaborate.h"
#include "qwm/frontend/generate.h"
#include "qwm/sta/sta.h"

namespace {

using namespace qwm;

struct ScaleFlags {
  int threads = 4;
  std::vector<int> sweep;  ///< non-empty = thread-scaling sweep mode
  bool smoke = false;
  bool counters_only = false;
  std::string json_path;
  std::string budget_path;
};

ScaleFlags parse_flags(int argc, char** argv) {
  ScaleFlags f;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const char* arg = argv[++i];
      if (std::strchr(arg, ',')) {
        // Comma list: sweep mode. The headline comparison runs at the
        // widest lane count of the list.
        f.sweep.clear();
        f.threads = 1;
        for (const char* p = arg; *p != '\0';) {
          const int t = std::atoi(p);
          f.sweep.push_back(t < 1 ? 1 : t);
          f.threads = std::max(f.threads, f.sweep.back());
          while (*p != '\0' && *p != ',') ++p;
          if (*p == ',') ++p;
        }
      } else {
        f.threads = std::atoi(arg);
      }
    } else if (std::strcmp(argv[i], "--smoke") == 0)
      f.smoke = true;
    else if (std::strcmp(argv[i], "--counters-only") == 0)
      f.counters_only = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      f.json_path = argv[++i];
    else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
      f.budget_path = argv[++i];
    else {
      std::fprintf(stderr,
                   "unknown flag: %s\nusage: %s [--threads N] [--smoke] "
                   "[--counters-only] [--json FILE] [--budget FILE]\n",
                   argv[i], argv[0]);
      std::exit(2);
    }
  }
  if (f.threads < 1) f.threads = 1;
  return f;
}

/// Bitwise comparison of every stage-output arrival between two engines.
bool arrivals_identical(const sta::StaEngine& a, const sta::StaEngine& b) {
  for (const auto& info : a.design().stages) {
    for (netlist::NetId n : info.output_nets) {
      const sta::NetTiming& ta = a.timing(n);
      const sta::NetTiming& tb = b.timing(n);
      if (ta.rise.time != tb.rise.time || ta.rise.slew != tb.rise.slew ||
          ta.fall.time != tb.fall.time || ta.fall.slew != tb.fall.slew ||
          ta.rise.degraded != tb.rise.degraded ||
          ta.fall.degraded != tb.fall.degraded)
        return false;
    }
  }
  return a.worst_arrival() == b.worst_arrival();
}

struct ScaleResult {
  std::size_t stages = 0;
  std::size_t evals = 0;
  double levels_s = 0.0;
  double deps_s = 0.0;
  bool identical = false;
  sta::ScheduleStats levels_stats;
  sta::ScheduleStats deps_stats;
};

ScaleResult run_size(std::size_t stages, const ScaleFlags& f) {
  ScaleResult r;
  r.stages = stages;

  const std::string spec = "gen:grid:" + std::to_string(stages) + ":seed=7";
  const auto gs = frontend::parse_gen_spec(spec);
  if (!gs) {
    std::fprintf(stderr, "bad spec %s\n", spec.c_str());
    std::exit(1);
  }
  const auto ms = bench::models().set();
  frontend::ElaboratedDesign elab =
      frontend::elaborate(frontend::generate_netlist(*gs), ms);

  sta::StaOptions opt;
  opt.threads = f.threads;
  // The equivalence contract needs eviction-free memoization: give the
  // cache headroom over the design's distinct-key population.
  opt.cache.max_entries = std::size_t{1} << 21;

  opt.schedule = sta::Schedule::levels;
  sta::StaEngine levels(elab.design, ms, opt);
  if (!f.counters_only) {
    // One cold run is the honest number at this scale — a 10^5-stage
    // analysis is far above timer noise, and medians would triple the
    // harness cost. Warm re-runs would ride the memo cache instead of
    // exercising the scheduler.
    const double t0 = bench::time_seconds([&] { levels.run(); }, 0.0, 1);
    r.levels_s = t0;
  } else {
    levels.run();
  }
  r.evals = levels.cache_stats().hits + levels.cache_stats().misses;
  r.levels_stats = levels.schedule_stats();

  opt.schedule = sta::Schedule::deps;
  sta::StaEngine deps(elab.design, ms, opt);
  if (!f.counters_only) {
    r.deps_s = bench::time_seconds([&] { deps.run(); }, 0.0, 1);
  } else {
    deps.run();
  }
  r.deps_stats = deps.schedule_stats();

  r.identical = arrivals_identical(levels, deps);
  return r;
}

/// Thread-scaling sweep: the 10^4-stage design under the deps schedule at
/// every requested lane count. The curve's observables are the wall clock
/// plus the sharded-queue counters (steals, ready high-water, contended
/// classification locks); every point's arrivals are checked bitwise
/// against the first point's — lane count must never change a result.
int run_sweep(const ScaleFlags& f, std::vector<std::string>* rows) {
  constexpr std::size_t kSweepStages = 10000;
  const auto gs =
      frontend::parse_gen_spec("gen:grid:" + std::to_string(kSweepStages) +
                               ":seed=7");
  const auto ms = bench::models().set();
  frontend::ElaboratedDesign elab =
      frontend::elaborate(frontend::generate_netlist(*gs), ms);

  sta::StaOptions opt;
  opt.schedule = sta::Schedule::deps;
  opt.cache.max_entries = std::size_t{1} << 21;

  std::printf("\nthread sweep: %zu-stage grid, deps schedule\n", kSweepStages);
  std::printf("%-8s %11s %9s %9s %12s %5s\n", "threads", "wall", "steals",
              "hwm", "lock_waits", "ident");
  std::unique_ptr<sta::StaEngine> ref;
  int rc = 0;
  for (const int t : f.sweep) {
    opt.threads = t;
    auto engine = std::make_unique<sta::StaEngine>(elab.design, ms, opt);
    double wall = 0.0;
    if (!f.counters_only)
      wall = bench::time_seconds([&] { engine->run(); }, 0.0, 1);
    else
      engine->run();
    const sta::ScheduleStats st = engine->schedule_stats();
    const bool ident = !ref || arrivals_identical(*ref, *engine);
    if (!ident) {
      std::fprintf(stderr, "FAIL: %d-lane sweep point disagrees\n", t);
      rc = 1;
    }
    std::printf("%-8d %10.3fs %9zu %9zu %12zu %5s\n", t, wall,
                st.steal_count, st.ready_hwm, st.classify_lock_waits,
                ident ? "yes" : "NO");
    rows->push_back(bench::JsonObject()
                        .integer("sweep_stages", kSweepStages)
                        .integer("threads", t)
                        .num("deps_run_s", wall)
                        .integer("steal_count", st.steal_count)
                        .integer("ready_hwm", st.ready_hwm)
                        .integer("classify_lock_waits", st.classify_lock_waits)
                        .integer("bit_identical", ident ? 1 : 0)
                        .str());
    if (!ref) ref = std::move(engine);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const ScaleFlags f = parse_flags(argc, argv);

  std::vector<std::size_t> sizes{10000};
  if (!f.smoke) sizes.push_back(100000);

  std::printf("Scale STA: generated grid designs, levels vs deps schedule "
              "(%d lanes)\n", f.threads);
  std::printf("%-9s %9s %11s %11s %9s %9s %9s %11s %5s\n", "stages", "evals",
              "levels", "deps", "barriers", "hwm", "chains", "enqueued",
              "ident");

  std::vector<std::string> rows;
  ScaleResult ten_k;
  int rc = 0;
  for (const std::size_t n : sizes) {
    const ScaleResult r = run_size(n, f);
    if (n == 10000) ten_k = r;
    if (!r.identical) {
      std::fprintf(stderr,
                   "FAIL: schedulers disagree on the %zu-stage design\n", n);
      rc = 1;
    }
    std::printf("%-9zu %9zu %10.3fs %10.3fs %9zu %9zu %9zu %11zu %5s\n",
                r.stages, r.evals, r.levels_s, r.deps_s,
                r.levels_stats.barrier_syncs, r.deps_stats.ready_hwm,
                r.deps_stats.chain_edges, r.deps_stats.tasks_enqueued,
                r.identical ? "yes" : "NO");
    rows.push_back(
        bench::JsonObject()
            .integer("stages", r.stages)
            .integer("evals", r.evals)
            .num("levels_run_s", r.levels_s)
            .num("deps_run_s", r.deps_s)
            .integer("levels", r.levels_stats.levels)
            .integer("levels_barrier_syncs", r.levels_stats.barrier_syncs)
            .integer("deps_barrier_syncs", r.deps_stats.barrier_syncs)
            .integer("tasks_enqueued", r.deps_stats.tasks_enqueued)
            .integer("ready_hwm", r.deps_stats.ready_hwm)
            .integer("chain_edges", r.deps_stats.chain_edges)
            .integer("steal_count", r.deps_stats.steal_count)
            .integer("classify_lock_waits", r.deps_stats.classify_lock_waits)
            .integer("bit_identical", r.identical ? 1 : 0)
            .str());
  }

  if (!f.sweep.empty() && run_sweep(f, &rows) != 0) rc = 1;

  if (!f.budget_path.empty()) {
    // The 10^4-stage counters are machine-deterministic: same design,
    // same schedule derivation, same memo-twin chains on every host.
    struct Live {
      const char* key;
      std::size_t value;
    } live[] = {
        {"scale10k_evals", ten_k.evals},
        {"scale10k_levels_barrier_syncs", ten_k.levels_stats.barrier_syncs},
        {"scale10k_deps_barrier_syncs", ten_k.deps_stats.barrier_syncs},
        {"scale10k_tasks_enqueued", ten_k.deps_stats.tasks_enqueued},
        {"scale10k_chain_edges", ten_k.deps_stats.chain_edges},
        // Scheduling-dependent (zero on single-lane hosts): budgeted as
        // generous upper bounds, not exact pins — an excess means the
        // sharded queues or the claim table degenerated to a serial lock.
        {"scale10k_steal_count", ten_k.deps_stats.steal_count},
        {"scale10k_classify_lock_waits", ten_k.deps_stats.classify_lock_waits},
    };
    std::string text;
    if (!bench::read_text_file(f.budget_path, &text)) return 1;
    for (const auto& l : live) {
      double b = 0.0;
      if (!bench::json_find_number(text, l.key, &b)) {
        std::fprintf(stderr, "perf budget: key %s missing from %s\n", l.key,
                     f.budget_path.c_str());
        rc = 1;
        continue;
      }
      if (static_cast<double>(l.value) > b) {
        std::fprintf(stderr, "perf budget EXCEEDED: %s = %zu > budget %.0f\n",
                     l.key, l.value, b);
        rc = 1;
      } else {
        std::printf("perf budget ok: %-30s %zu <= %.0f\n", l.key, l.value, b);
      }
    }
  }

  if (!f.json_path.empty()) {
    if (!bench::write_text_file(f.json_path, bench::json_array(rows) + "\n"))
      return 1;
    std::printf("wrote %s\n", f.json_path.c_str());
  }
  return rc;
}
