// Structural hashing of logic stages for evaluation memoization.
//
// Two stages that are electrically identical — same polar-graph shape,
// same device kinds/geometries, same gate bindings and static voltages,
// same wire parasitics — produce the same structural hash, so the rows
// of a decoder or the repeated inverters of a buffer chain all map to
// one memo-cache family. The hash deliberately ignores node and input
// *names*: stages built by the same generator (netlist rows, builder
// calls) differ only in labels.
//
// The hash is index-order-sensitive, not a graph-isomorphism canonical
// form: stages must enumerate their nodes/edges in the same order to
// collide. That is exactly what repeated netlist structures and the
// programmatic builders produce, and it keeps hashing O(edges).
//
// Output load capacitances are hashed separately (load_signature) and
// quantized, so the memo key can distinguish "same stage, same load
// bucket" from "same stage, different load" without baking exact load
// bits into the structural identity.
#pragma once

#include <cstdint>

#include "qwm/circuit/stage.h"

namespace qwm::circuit {

/// Hash of the stage's electrical structure: vdd, node/edge counts, every
/// edge's (kind, endpoints, w, l, gate binding, static gate voltage,
/// explicit RC), and the output node list. Excludes names and node load
/// capacitances.
std::uint64_t structural_hash(const LogicStage& stage);

/// Hash of the per-node external load capacitances, each quantized to
/// `quantum` farads (quantum <= 0 hashes exact bit patterns). Combined
/// with structural_hash this forms the stage part of a memo-cache key.
std::uint64_t load_signature(const LogicStage& stage, double quantum);

/// Mixes two 64-bit hashes (splitmix64 finalizer over the combination).
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

}  // namespace qwm::circuit
