#include "qwm/circuit/stage_hash.h"

#include <bit>
#include <cmath>

namespace qwm::circuit {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, stable across platforms.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Canonical bits of a double: -0.0 folds onto +0.0 so numerically equal
/// geometries hash equally.
std::uint64_t double_bits(double v) {
  if (v == 0.0) v = 0.0;
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

std::uint64_t structural_hash(const LogicStage& stage) {
  std::uint64_t h = 0x51A9E5B17ULL;
  h = hash_combine(h, double_bits(stage.vdd()));
  h = hash_combine(h, stage.node_count());
  h = hash_combine(h, stage.edge_count());
  h = hash_combine(h, stage.input_count());
  h = hash_combine(h, static_cast<std::uint64_t>(stage.source()));
  h = hash_combine(h, static_cast<std::uint64_t>(stage.sink()));
  for (std::size_t e = 0; e < stage.edge_count(); ++e) {
    const Edge& ed = stage.edge(static_cast<EdgeId>(e));
    h = hash_combine(h, static_cast<std::uint64_t>(ed.kind));
    h = hash_combine(h, static_cast<std::uint64_t>(ed.src));
    h = hash_combine(h, static_cast<std::uint64_t>(ed.snk));
    h = hash_combine(h, double_bits(ed.w));
    h = hash_combine(h, double_bits(ed.l));
    h = hash_combine(h, static_cast<std::uint64_t>(ed.input));
    h = hash_combine(h, double_bits(ed.static_gate_voltage));
    h = hash_combine(h, double_bits(ed.explicit_r));
    h = hash_combine(h, double_bits(ed.explicit_c));
  }
  for (NodeId out : stage.outputs())
    h = hash_combine(h, static_cast<std::uint64_t>(out));
  return h;
}

std::uint64_t load_signature(const LogicStage& stage, double quantum) {
  std::uint64_t h = 0xC10AD5ULL;
  for (std::size_t n = 0; n < stage.node_count(); ++n) {
    const double cap = stage.node(static_cast<NodeId>(n)).load_cap;
    if (quantum > 0.0)
      h = hash_combine(
          h, static_cast<std::uint64_t>(std::llround(cap / quantum)));
    else
      h = hash_combine(h, double_bits(cap));
  }
  return h;
}

}  // namespace qwm::circuit
