#include "qwm/circuit/path.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

#include "qwm/interconnect/pi_model.h"

namespace qwm::circuit {

double wire_resistance(const device::WireParams& p, double w, double l) {
  return p.r_sheet * l / w;
}

double wire_capacitance(const device::WireParams& p, double w, double l) {
  return p.c_area * w * l + p.c_fringe * 2.0 * l;
}

namespace {

/// Path score for worst-case selection; larger = worse (slower).
struct PathScore {
  int transistors = 0;
  double wire_length = 0.0;
  double neg_width = 0.0;  ///< negated total width: weaker drive is worse

  bool operator>(const PathScore& o) const {
    if (transistors != o.transistors) return transistors > o.transistors;
    if (wire_length != o.wire_length) return wire_length > o.wire_length;
    return neg_width > o.neg_width;
  }
};

struct Dfs {
  const LogicStage& stage;
  NodeId rail;
  NodeId avoid_rail;
  bool discharge;
  std::vector<char> visited;
  std::vector<EdgeId> current;
  std::vector<EdgeId> best;
  PathScore best_score;
  bool found = false;
  long expansions = 0;
  static constexpr long kMaxExpansions = 2'000'000;

  bool conducts(const Edge& e) const {
    if (e.kind == DeviceKind::wire) return true;
    if (discharge ? e.kind != DeviceKind::nmos : e.kind != DeviceKind::pmos)
      return false;
    // A transistor whose gate is statically held at its off level can
    // never conduct the event; paths through it are not credible worst
    // cases (e.g. the generate pulldowns of non-firing Manchester bits).
    // Input-driven gates always qualify — their waveforms may switch.
    if (e.input >= 0) return true;
    constexpr double kVthMargin = 0.4;  // [V] below/above which it is off
    if (discharge) return e.static_gate_voltage > kVthMargin;
    return e.static_gate_voltage < stage.vdd() - kVthMargin;
  }

  PathScore score(const std::vector<EdgeId>& path) const {
    PathScore s;
    for (EdgeId id : path) {
      const Edge& e = stage.edge(id);
      if (e.kind == DeviceKind::wire) {
        s.wire_length += e.l;
      } else {
        ++s.transistors;
        s.neg_width -= e.w;
      }
    }
    return s;
  }

  void run(NodeId n) {
    if (++expansions > kMaxExpansions) return;
    if (n == rail) {
      const PathScore s = score(current);
      if (!found || s > best_score) {
        best = current;
        best_score = s;
        found = true;
      }
      return;
    }
    visited[n] = 1;
    for (EdgeId id : stage.incident_edges(n)) {
      const Edge& e = stage.edge(id);
      if (!conducts(e)) continue;
      const NodeId m = stage.other_end(id, n);
      if (m == avoid_rail) continue;
      if (m != rail && visited[m]) continue;
      current.push_back(id);
      run(m);
      current.pop_back();
    }
    visited[n] = 0;
  }
};

/// Electrical values of a wire edge (explicit overrides geometry).
void wire_rc(const LogicStage& stage, const Edge& e,
             const device::ModelSet& models, double* r, double* c) {
  (void)stage;
  *r = e.explicit_r >= 0.0 ? e.explicit_r
                           : wire_resistance(models.process->wire, e.w, e.l);
  *c = e.explicit_c >= 0.0 ? e.explicit_c
                           : wire_capacitance(models.process->wire, e.w, e.l);
}

/// Total capacitance of the side subtree entered through wire edge `via`
/// from path node `from`: wire caps of all reachable side wires plus the
/// near-terminal caps of transistors bounding the subtree (their channels
/// are assumed off in the worst case, isolating whatever lies beyond).
double side_branch_cap(const LogicStage& stage, EdgeId via, NodeId from,
                       const device::ModelSet& models,
                       const std::vector<char>& on_path) {
  double total = 0.0;
  std::set<NodeId> seen{from};
  std::vector<std::pair<EdgeId, NodeId>> stack{{via, from}};
  while (!stack.empty()) {
    auto [e_id, enter_from] = stack.back();
    stack.pop_back();
    const Edge& e = stage.edge(e_id);
    double r, c;
    wire_rc(stage, e, models, &r, &c);
    total += c;
    const NodeId next = stage.other_end(e_id, enter_from);
    if (stage.is_rail(next) || on_path[next] || seen.count(next)) continue;
    seen.insert(next);
    total += stage.node(next).load_cap;
    for (EdgeId id2 : stage.incident_edges(next)) {
      if (id2 == e_id) continue;
      const Edge& e2 = stage.edge(id2);
      if (e2.kind == DeviceKind::wire) {
        stack.push_back({id2, next});
      } else {
        const device::DeviceModel& m = models.model_for(mos_type_of(e2.kind));
        total += (e2.src == next) ? m.src_cap(e2.w, e2.l)
                                  : m.snk_cap(e2.w, e2.l);
      }
    }
  }
  return total;
}

}  // namespace

ExtractedPath extract_worst_path(const LogicStage& stage, NodeId output,
                                 bool discharge) {
  ExtractedPath out;
  out.discharge = discharge;
  const NodeId rail = discharge ? stage.sink() : stage.source();
  const NodeId avoid = discharge ? stage.source() : stage.sink();

  Dfs dfs{stage,
          rail,
          avoid,
          discharge,
          std::vector<char>(stage.node_count(), 0),
          {},
          {},
          {},
          false,
          0};
  dfs.run(output);
  if (!dfs.found) return out;

  // dfs.best runs output -> rail; store rail -> output.
  std::vector<EdgeId> elems(dfs.best.rbegin(), dfs.best.rend());
  out.elements = elems;
  NodeId at = rail;
  for (EdgeId id : elems) {
    at = stage.other_end(id, at);
    out.nodes.push_back(at);
  }
  assert(out.nodes.back() == output);
  return out;
}

std::size_t PathProblem::transistor_count() const {
  std::size_t k = 0;
  for (const auto& e : elements)
    if (e.kind == Element::Kind::transistor) ++k;
  return k;
}

PathProblem build_path_problem(const LogicStage& stage,
                               const ExtractedPath& path,
                               const device::ModelSet& models,
                               double merge_time_constant) {
  PathProblem prob;
  prob.discharge = path.discharge;
  prob.vdd = models.vdd();

  std::vector<char> on_path(stage.node_count(), 0);
  for (NodeId n : path.nodes) on_path[n] = 1;
  std::set<EdgeId> path_edges(path.elements.begin(), path.elements.end());

  // Per-original-node capacitance: external load, terminal caps of every
  // incident transistor (on-path or off), and full lumped caps of
  // off-path side wire subtrees. On-path wires contribute through their
  // pi-model below.
  std::vector<double> raw_caps(path.nodes.size(), 0.0);
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    const NodeId n = path.nodes[i];
    double c = stage.node(n).load_cap;
    for (EdgeId id : stage.incident_edges(n)) {
      const Edge& e = stage.edge(id);
      if (e.kind == DeviceKind::wire) {
        if (!path_edges.count(id))
          c += side_branch_cap(stage, id, n, models, on_path);
      } else {
        const device::DeviceModel& m = models.model_for(mos_type_of(e.kind));
        c += (e.src == n) ? m.src_cap(e.w, e.l) : m.snk_cap(e.w, e.l);
      }
    }
    raw_caps[i] = c;
  }

  // Elements, rail -> output. Wires become pi-models: series R plus end
  // caps (driving point = rail-near side, where the conducting path pulls
  // from). Negligible wires merge their endpoints into one position.
  for (std::size_t i = 0; i < path.elements.size(); ++i) {
    const EdgeId id = path.elements[i];
    const Edge& e = stage.edge(id);
    const NodeId far = path.nodes[i];

    if (e.kind == DeviceKind::wire) {
      double r, c;
      wire_rc(stage, e, models, &r, &c);
      interconnect::PiModel pi;
      if (c > 0.0 && r > 0.0) {
        pi = interconnect::reduce_to_pi(
            interconnect::RcTree::uniform_line(r, c, 10));
      } else {
        pi.c_near = 0.5 * c;
        pi.c_far = 0.5 * c;
        pi.r = r;
      }
      if (pi.r * (pi.c_near + pi.c_far) < merge_time_constant) {
        // Electrically negligible: fold the far node into the previous
        // position; a rail-adjacent merged wire collapses into the rail
        // (its caps are rail-driven and carry no dynamics).
        if (!prob.node_caps.empty()) {
          prob.node_caps.back() += pi.c_near + pi.c_far + raw_caps[i];
          prob.nodes.back() = far;  // report the output-side node
        }
        continue;
      }
      // Electrically significant wire: cascaded ladder sections carrying
      // the wire's full series resistance. (The O'Brien pi above is the
      // right *load* model and decides merging, but its R_pi = 0.48 R
      // under-resists the through path and would under-predict the
      // far-end transfer delay.) A capacitance-free resistor gains
      // nothing from sectioning — its interior nodes would be degenerate.
      const int sections = c > 0.0 ? 3 : 1;
      for (int s = 0; s < sections; ++s) {
        const double c_sec = c / sections;
        PathProblem::Element el;
        el.edge = id;
        el.src_is_far = (e.src == far);
        el.kind = PathProblem::Element::Kind::resistor;
        el.resistance = std::max(r / sections, 1e-3);
        if (!prob.node_caps.empty()) prob.node_caps.back() += 0.5 * c_sec;
        prob.elements.push_back(el);
        // Interior section boundaries report the far stage node too (the
        // closest observable point).
        prob.node_caps.push_back(0.5 * c_sec +
                                 (s == sections - 1 ? raw_caps[i] : 0.0));
        prob.nodes.push_back(far);
      }
      continue;
    }

    PathProblem::Element el;
    el.edge = id;
    el.src_is_far = (e.src == far);
    el.kind = PathProblem::Element::Kind::transistor;
    el.model = &models.model_for(mos_type_of(e.kind));
    el.tabular = el.model->tabular();
    el.w = e.w;
    el.l = e.l;
    el.input = e.input;
    el.static_gate = e.static_gate_voltage;
    prob.elements.push_back(el);
    prob.node_caps.push_back(raw_caps[i]);
    prob.nodes.push_back(far);
  }
  // A zero-capacitance path position is degenerate (infinitely fast);
  // real nodes always carry some parasitic. Floor at 0.01 fF.
  for (double& c : prob.node_caps) c = std::max(c, 1e-17);
  return prob;
}

}  // namespace qwm::circuit
