#include "qwm/circuit/stage.h"

#include <cassert>
#include <queue>

namespace qwm::circuit {

LogicStage::LogicStage(double vdd) : vdd_(vdd) {
  source_ = add_node("VDD");
  sink_ = add_node("GND");
}

NodeId LogicStage::add_node(const std::string& name) {
  nodes_.push_back(Node{name, {}, {}, 0.0});
  return static_cast<NodeId>(nodes_.size() - 1);
}

EdgeId LogicStage::add_edge(DeviceKind kind, NodeId src, NodeId snk, double w,
                            double l) {
  assert(src >= 0 && src < static_cast<NodeId>(nodes_.size()));
  assert(snk >= 0 && snk < static_cast<NodeId>(nodes_.size()));
  Edge e;
  e.kind = kind;
  e.src = src;
  e.snk = snk;
  e.w = w;
  e.l = l;
  edges_.push_back(e);
  const EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
  nodes_[src].outgoing.push_back(id);
  nodes_[snk].incoming.push_back(id);
  return id;
}

InputId LogicStage::add_input(const std::string& name) {
  input_names_.push_back(name);
  return static_cast<InputId>(input_names_.size() - 1);
}

void LogicStage::set_gate_input(EdgeId e, InputId input) {
  assert(edges_[e].kind != DeviceKind::wire);
  edges_[e].input = input;
}

void LogicStage::set_gate_static(EdgeId e, double voltage) {
  assert(edges_[e].kind != DeviceKind::wire);
  edges_[e].input = -1;
  edges_[e].static_gate_voltage = voltage;
}

void LogicStage::add_output(NodeId n) { outputs_.push_back(n); }

void LogicStage::set_load_cap(NodeId n, double cap) {
  nodes_[n].load_cap = cap;
}

std::vector<EdgeId> LogicStage::incident_edges(NodeId n) const {
  std::vector<EdgeId> out = nodes_[n].incoming;
  out.insert(out.end(), nodes_[n].outgoing.begin(), nodes_[n].outgoing.end());
  return out;
}

NodeId LogicStage::other_end(EdgeId e, NodeId n) const {
  const Edge& edge = edges_[e];
  return edge.src == n ? edge.snk : edge.src;
}

std::vector<std::string> LogicStage::validate() const {
  std::vector<std::string> problems;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    const std::string tag = "edge " + std::to_string(i);
    if (e.src < 0 || e.src >= static_cast<NodeId>(nodes_.size()) || e.snk < 0 ||
        e.snk >= static_cast<NodeId>(nodes_.size()))
      problems.push_back(tag + ": endpoint out of range");
    if (e.src == e.snk) problems.push_back(tag + ": self loop");
    if (!(e.w > 0.0) || !(e.l > 0.0))
      problems.push_back(tag + ": non-positive geometry");
    if (e.kind != DeviceKind::wire && e.input < 0 &&
        (e.static_gate_voltage < -0.5 || e.static_gate_voltage > vdd_ + 0.5))
      problems.push_back(tag + ": implausible static gate voltage");
    if (e.kind != DeviceKind::wire && e.input >= 0 &&
        e.input >= static_cast<InputId>(input_names_.size()))
      problems.push_back(tag + ": gate bound to unknown input");
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId n = static_cast<NodeId>(i);
    if (is_rail(n)) continue;
    if (nodes_[i].incoming.empty() && nodes_[i].outgoing.empty())
      problems.push_back("node " + nodes_[i].name + ": disconnected");
  }
  // Outputs must be reachable from a rail through the undirected graph.
  std::vector<char> reach(nodes_.size(), 0);
  std::queue<NodeId> q;
  q.push(source_);
  q.push(sink_);
  reach[source_] = reach[sink_] = 1;
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (EdgeId e : incident_edges(n)) {
      const NodeId m = other_end(e, n);
      if (!reach[m]) {
        reach[m] = 1;
        q.push(m);
      }
    }
  }
  for (NodeId o : outputs_) {
    if (o < 0 || o >= static_cast<NodeId>(nodes_.size()))
      problems.push_back("output id out of range");
    else if (!reach[o])
      problems.push_back("output " + nodes_[o].name + ": unreachable from rails");
  }
  return problems;
}

device::MosType mos_type_of(DeviceKind k) {
  assert(k != DeviceKind::wire);
  return k == DeviceKind::nmos ? device::MosType::nmos : device::MosType::pmos;
}

}  // namespace qwm::circuit
