// Circuit partitioning into logic stages (paper §I).
//
// A logic stage is a channel-connected component: nets merged through
// transistor channels (drain-source) and resistors, with the power rails
// acting as separators. Each component becomes one LogicStage whose
// inputs are the gate nets driven from outside the component and whose
// outputs are the nets observed by other components (gate connections) —
// the structure the paper's Figure 1 illustrates.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "qwm/circuit/stage.h"
#include "qwm/device/model_set.h"
#include "qwm/netlist/flat.h"

namespace qwm::circuit {

/// One partitioned stage plus the net bookkeeping that ties it into the
/// design-level timing graph.
struct StageInfo {
  LogicStage stage;
  /// Net of each stage input, indexed by InputId.
  std::vector<netlist::NetId> input_nets;
  /// Net of each stage output, same order as stage.outputs().
  std::vector<netlist::NetId> output_nets;

  explicit StageInfo(double vdd) : stage(vdd) {}
};

struct PartitionedDesign {
  std::vector<StageInfo> stages;
  netlist::NetId vdd_net = -1;
  double vdd = 0.0;
  /// Driving stage of a net: net -> (stage index, output index). Nets
  /// absent from the map are primary inputs or rails.
  std::unordered_map<netlist::NetId, std::pair<int, int>> driver_of;
  /// Gate nets not driven by any stage or supply (the design's primary
  /// inputs).
  std::vector<netlist::NetId> primary_inputs;
  std::vector<std::string> warnings;
};

/// Partitions a flat netlist into logic stages. `models` supplies the
/// process (for VDD and wire parasitics) and gate input capacitances used
/// to compute each output's fanout load.
PartitionedDesign partition_netlist(const netlist::FlatNetlist& nl,
                                    const device::ModelSet& models);

/// Extracts the sub-design consisting of the stages in `keep` (indices
/// into `full.stages`, kept in the given order). Stages are copied with
/// their NetIds intact — only stage indices are renumbered — so a net
/// means the same thing in every extraction of one parse. Input nets
/// whose driver is outside the kept set become the sub-design's primary
/// inputs (sorted, deduped): the boundary ports a shard's fleet layer
/// feeds via SETARR. This is how each shard of a sharded fleet derives
/// its slice from the common full-deck parse, deterministically.
PartitionedDesign extract_stages(const PartitionedDesign& full,
                                 const std::vector<int>& keep);

}  // namespace qwm::circuit
