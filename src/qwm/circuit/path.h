// Worst-case charge/discharge path extraction (paper §III-C).
//
// Static timing analysis needs only the worst-case event per stage output:
// charging or discharging along the longest conducting path between the
// output and a rail. This module extracts that path (series transistors
// and wire segments) and lumps everything else — junction caps of
// off-path devices, side-wire capacitance, external loads — onto the path
// nodes, producing the exact problem shape of the paper's Figure 6.
#pragma once

#include <vector>

#include "qwm/circuit/stage.h"
#include "qwm/device/model_set.h"

namespace qwm::circuit {

/// An extracted rail->output path. elements[i] connects path position i
/// and i+1, where position 0 is the rail and position i>=1 is nodes[i-1];
/// nodes.back() is the output.
struct ExtractedPath {
  bool discharge = true;       ///< true: GND rail (pulldown); false: VDD
  std::vector<EdgeId> elements;
  std::vector<NodeId> nodes;

  std::size_t length() const { return elements.size(); }
};

/// Finds the worst-case conducting path from `output` to the event rail.
/// "Worst" = most series transistors, tie-broken by total wire length then
/// by smallest total transistor width (weakest drive). Only edges that can
/// conduct the event are considered: NMOS and wires for a discharge, PMOS
/// and wires for a charge. Returns an empty path when no rail connection
/// of the right polarity exists.
ExtractedPath extract_worst_path(const LogicStage& stage, NodeId output,
                                 bool discharge);

/// The fully-lumped path problem handed to the QWM engine.
struct PathProblem {
  struct Element {
    enum class Kind { transistor, resistor };
    Kind kind = Kind::transistor;
    EdgeId edge = -1;
    // Transistor fields.
    const device::DeviceModel* model = nullptr;
    /// Concrete tabular model when `model` is one (cached at build time so
    /// the QWM inner loop takes the devirtualized batched path); nullptr
    /// for analytic or other models.
    const device::TabularDeviceModel* tabular = nullptr;
    double w = 0.0, l = 0.0;
    InputId input = -1;          ///< -1 = static gate
    double static_gate = 0.0;
    /// True when the stored edge's src endpoint is the rail-far path
    /// position. Determines the voltage-to-terminal mapping and the sign
    /// of iv() relative to the event-direction current.
    bool src_is_far = false;
    // Resistor field (wire segments).
    double resistance = 0.0;
  };

  bool discharge = true;
  double vdd = 0.0;
  std::vector<Element> elements;   ///< rail->output order
  std::vector<double> node_caps;   ///< cap to ground of each path node [F]
  std::vector<NodeId> nodes;       ///< original stage node of each position

  std::size_t length() const { return elements.size(); }
  /// Number of transistor elements (the K of the paper's K-region model).
  std::size_t transistor_count() const;
};

/// Lumps the stage onto the extracted path: computes per-node capacitance
/// (device parasitics of every incident edge, wire caps, external loads)
/// and converts wire edges into series resistances with end caps via the
/// O'Brien/Savarino pi-model.
///
/// Wires whose pi time constant R*(C_near + C_far) falls below
/// `merge_time_constant` are electrically negligible on transition
/// timescales; their endpoints are merged into one path position (the
/// resistance would only add numerical stiffness). Pass 0 to keep every
/// wire as an explicit resistor.
PathProblem build_path_problem(const LogicStage& stage,
                               const ExtractedPath& path,
                               const device::ModelSet& models,
                               double merge_time_constant = 1e-13);

/// Wire electrical helpers (shared with the interconnect module).
double wire_resistance(const device::WireParams& p, double w, double l);
double wire_capacitance(const device::WireParams& p, double w, double l);

}  // namespace qwm::circuit
