#include "qwm/circuit/partition.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace qwm::circuit {

namespace {

/// Union-find over net ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }
  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

PartitionedDesign partition_netlist(const netlist::FlatNetlist& nl,
                                    const device::ModelSet& models) {
  PartitionedDesign out;
  out.vdd = models.vdd();
  out.vdd_net = nl.find_vdd_net();

  const auto is_rail = [&](netlist::NetId n) {
    return n == netlist::kGroundNet || n == out.vdd_net;
  };
  // Nets held by a voltage source behave like rails for partitioning
  // (they separate components and have fixed/driven waveforms).
  std::set<netlist::NetId> sourced;
  for (const auto& v : nl.vsources) sourced.insert(v.pos);

  const auto separates = [&](netlist::NetId n) {
    return is_rail(n) || sourced.count(n) > 0;
  };

  // 1. Merge nets through channels and resistors; rails never merge.
  UnionFind uf(nl.net_count());
  for (const auto& m : nl.mosfets)
    if (!separates(m.drain) && !separates(m.source)) uf.unite(m.drain, m.source);
  for (const auto& r : nl.resistors)
    if (!separates(r.a) && !separates(r.b)) uf.unite(r.a, r.b);

  // 2. Assign devices to components keyed by a representative channel net.
  const auto comp_of_device = [&](netlist::NetId a, netlist::NetId b) -> int {
    if (!separates(a)) return uf.find(a);
    if (!separates(b)) return uf.find(b);
    return -1;  // both terminals on rails (e.g. decap) — no stage
  };

  std::unordered_map<int, std::vector<int>> comp_mosfets;   // comp -> indices
  std::unordered_map<int, std::vector<int>> comp_resistors;
  for (std::size_t i = 0; i < nl.mosfets.size(); ++i) {
    const int c = comp_of_device(nl.mosfets[i].drain, nl.mosfets[i].source);
    if (c >= 0) comp_mosfets[c].push_back(static_cast<int>(i));
    else out.warnings.push_back("mosfet " + nl.mosfets[i].name +
                                " spans rails only; skipped");
  }
  for (std::size_t i = 0; i < nl.resistors.size(); ++i) {
    const int c = comp_of_device(nl.resistors[i].a, nl.resistors[i].b);
    if (c >= 0) comp_resistors[c].push_back(static_cast<int>(i));
  }

  // Gate fanout: which components does each net gate into?
  std::unordered_map<netlist::NetId, std::vector<int>> gate_fanout;
  std::unordered_map<netlist::NetId, double> gate_load;  // summed input cap
  for (const auto& m : nl.mosfets) {
    const int c = comp_of_device(m.drain, m.source);
    if (c < 0) continue;
    gate_fanout[m.gate].push_back(c);
    gate_load[m.gate] +=
        models.model_for(m.type).input_cap(m.w, m.l);
  }

  // Deterministic component ordering.
  std::vector<int> comps;
  for (const auto& [c, _] : comp_mosfets) comps.push_back(c);
  for (const auto& [c, _] : comp_resistors)
    if (!comp_mosfets.count(c)) comps.push_back(c);
  std::sort(comps.begin(), comps.end());

  std::unordered_map<int, int> stage_index;  // comp id -> stage index

  // 3. Build one LogicStage per component.
  for (const int comp : comps) {
    StageInfo info(out.vdd);
    LogicStage& s = info.stage;
    std::unordered_map<netlist::NetId, NodeId> node_of;

    const auto node_for = [&](netlist::NetId n) -> NodeId {
      if (n == netlist::kGroundNet) return s.sink();
      if (n == out.vdd_net) return s.source();
      const auto it = node_of.find(n);
      if (it != node_of.end()) return it->second;
      const NodeId id = s.add_node(nl.net_name(n));
      node_of[n] = id;
      return id;
    };

    std::unordered_map<netlist::NetId, InputId> input_of;
    const auto input_for = [&](netlist::NetId n) -> InputId {
      const auto it = input_of.find(n);
      if (it != input_of.end()) return it->second;
      const InputId id = s.add_input(nl.net_name(n));
      input_of[n] = id;
      info.input_nets.push_back(n);
      return id;
    };

    const auto comp_it = comp_mosfets.find(comp);
    if (comp_it != comp_mosfets.end()) {
      for (const int mi : comp_it->second) {
        const netlist::Mosfet& m = nl.mosfets[mi];
        // Orient the edge supply-side -> ground-side: PMOS conduct from
        // VDD, NMOS toward GND; the netlist's drain is used as the
        // supply-near terminal by convention, with rails forcing the
        // orientation when present.
        netlist::NetId hi = m.drain, lo = m.source;
        if (m.source == out.vdd_net || m.drain == netlist::kGroundNet)
          std::swap(hi, lo);
        const EdgeId e = s.add_edge(
            m.type == device::MosType::nmos ? DeviceKind::nmos
                                            : DeviceKind::pmos,
            node_for(hi), node_for(lo), m.w, m.l);
        if (m.gate == netlist::kGroundNet) {
          s.set_gate_static(e, 0.0);
        } else if (m.gate == out.vdd_net) {
          s.set_gate_static(e, out.vdd);
        } else if (!separates(m.gate) && uf.find(m.gate) == comp) {
          // Feedback gate within the same component (e.g. keeper):
          // expose it as an input so the caller decides its waveform.
          out.warnings.push_back("gate of " + m.name +
                                 " feeds back within its stage");
          s.set_gate_input(e, input_for(m.gate));
        } else {
          s.set_gate_input(e, input_for(m.gate));
        }
      }
    }
    const auto res_it = comp_resistors.find(comp);
    if (res_it != comp_resistors.end()) {
      for (const int ri : res_it->second) {
        const netlist::Resistor& r = nl.resistors[ri];
        const EdgeId e = s.add_edge(DeviceKind::wire, node_for(r.a),
                                    node_for(r.b), 1e-6, 1e-6);
        s.edge_mut(e).explicit_r = r.value;
        s.edge_mut(e).explicit_c = 0.0;
      }
    }

    // Grounded (or rail-tied) capacitors become node loads; floating caps
    // are split half to each end.
    for (const auto& c : nl.capacitors) {
      const bool a_in = node_of.count(c.a), b_in = node_of.count(c.b);
      if (a_in && (is_rail(c.b) || !b_in))
        s.set_load_cap(node_of[c.a], s.node(node_of[c.a]).load_cap + c.value);
      else if (b_in && (is_rail(c.a) || !a_in))
        s.set_load_cap(node_of[c.b], s.node(node_of[c.b]).load_cap + c.value);
      else if (a_in && b_in) {
        s.set_load_cap(node_of[c.a],
                       s.node(node_of[c.a]).load_cap + 0.5 * c.value);
        s.set_load_cap(node_of[c.b],
                       s.node(node_of[c.b]).load_cap + 0.5 * c.value);
      }
    }

    // Outputs: nets gating devices in other components. Their fanout gate
    // capacitance becomes the output load.
    for (const auto& [n, node] : node_of) {
      const auto gf = gate_fanout.find(n);
      bool external = false;
      if (gf != gate_fanout.end())
        for (const int tgt : gf->second)
          if (tgt != comp) external = true;
      if (external) {
        s.add_output(node);
        info.output_nets.push_back(n);
        s.set_load_cap(node, s.node(node).load_cap + gate_load[n]);
      }
    }
    // A terminal component with no gate fanout: expose its capacitor-loaded
    // nets, or every net as a fallback, so it stays observable.
    if (info.output_nets.empty()) {
      for (const auto& [n, node] : node_of) {
        if (s.node(node).load_cap > 0.0) {
          s.add_output(node);
          info.output_nets.push_back(n);
        }
      }
    }
    if (info.output_nets.empty()) {
      for (const auto& [n, node] : node_of) {
        s.add_output(node);
        info.output_nets.push_back(n);
      }
    }

    stage_index[comp] = static_cast<int>(out.stages.size());
    out.stages.push_back(std::move(info));
  }

  // 4. Driver map and primary inputs.
  for (std::size_t si = 0; si < out.stages.size(); ++si) {
    const StageInfo& info = out.stages[si];
    for (std::size_t oi = 0; oi < info.output_nets.size(); ++oi)
      out.driver_of[info.output_nets[oi]] = {static_cast<int>(si),
                                             static_cast<int>(oi)};
  }
  std::set<netlist::NetId> pi_set;
  for (const auto& [n, fan] : gate_fanout) {
    (void)fan;
    if (is_rail(n) || sourced.count(n) || out.driver_of.count(n)) continue;
    pi_set.insert(n);
  }
  // Source-driven gate nets are primary inputs too (driven stimuli).
  for (const auto& [n, fan] : gate_fanout) {
    (void)fan;
    if (sourced.count(n) && !is_rail(n)) pi_set.insert(n);
  }
  out.primary_inputs.assign(pi_set.begin(), pi_set.end());
  return out;
}

PartitionedDesign extract_stages(const PartitionedDesign& full,
                                 const std::vector<int>& keep) {
  PartitionedDesign out;
  out.vdd_net = full.vdd_net;
  out.vdd = full.vdd;
  out.stages.reserve(keep.size());
  for (const int si : keep) {
    const StageInfo& info = full.stages[static_cast<std::size_t>(si)];
    const int local = static_cast<int>(out.stages.size());
    out.stages.push_back(info);
    for (std::size_t oi = 0; oi < info.output_nets.size(); ++oi)
      out.driver_of[info.output_nets[oi]] = {local, static_cast<int>(oi)};
  }
  // This slice's primary inputs: the full design's primary inputs that
  // feed a kept stage, plus boundary nets (inputs whose driving stage
  // stayed behind). Nets the full design treats as neither (rails,
  // stimulus sources) keep that treatment here, so a slice never invents
  // a triggering arrival the full analysis would not have.
  const std::set<netlist::NetId> full_pi(full.primary_inputs.begin(),
                                         full.primary_inputs.end());
  std::set<netlist::NetId> pi_set;
  for (const StageInfo& info : out.stages) {
    for (const netlist::NetId n : info.input_nets) {
      if (out.driver_of.count(n)) continue;
      if (full_pi.count(n) || full.driver_of.count(n)) pi_set.insert(n);
    }
  }
  out.primary_inputs.assign(pi_set.begin(), pi_set.end());
  return out;
}

}  // namespace qwm::circuit
