// CMOS logic stage as a polar directed graph (paper Definition 1).
//
// A stage is the unit of transistor-level timing analysis: a set of
// channel-connected transistors and wire segments between the power rails.
// Vertices are circuit nodes; edges are NMOS/PMOS transistors or wire
// segments, oriented from the supply side (graph source = VDD) toward
// ground (graph sink = GND). Stage inputs attach to transistor gates;
// stage outputs are nodes observed by downstream stages.
#pragma once

#include <string>
#include <vector>

#include "qwm/device/mosfet_physics.h"

namespace qwm::circuit {

using NodeId = int;
using EdgeId = int;
using InputId = int;

enum class DeviceKind { nmos, pmos, wire };

struct Node {
  std::string name;
  std::vector<EdgeId> incoming;
  std::vector<EdgeId> outgoing;
  double load_cap = 0.0;  ///< external load C_L attached at this node [F]
};

struct Edge {
  DeviceKind kind = DeviceKind::nmos;
  NodeId src = -1;  ///< supply-side endpoint
  NodeId snk = -1;  ///< ground-side endpoint
  double w = 0.0;   ///< transistor width or wire width [m]
  double l = 0.0;   ///< transistor length or wire length [m]
  /// Gate connection for transistors: an input index, or -1 when the gate
  /// is held at `static_gate_voltage` for the whole analysis (the paper's
  /// single-switching-input worst case keeps all other gates static).
  InputId input = -1;
  double static_gate_voltage = 0.0;
  /// Wire edges only: explicit electrical values (e.g. from a parsed
  /// netlist's R cards). Negative = derive from geometry and the process
  /// wire parameters.
  double explicit_r = -1.0;
  double explicit_c = -1.0;
};

/// Polar directed graph <N, E, s, t, I, O>.
class LogicStage {
 public:
  /// Creates the stage with its two polar terminals; `vdd` records the
  /// supply value the rails represent.
  explicit LogicStage(double vdd);

  NodeId source() const { return source_; }  ///< the VDD rail node
  NodeId sink() const { return sink_; }      ///< the GND rail node
  double vdd() const { return vdd_; }

  NodeId add_node(const std::string& name);
  /// Adds a transistor or wire edge oriented src (supply side) -> snk.
  EdgeId add_edge(DeviceKind kind, NodeId src, NodeId snk, double w, double l);

  InputId add_input(const std::string& name);
  void set_gate_input(EdgeId e, InputId input);
  void set_gate_static(EdgeId e, double voltage);
  void add_output(NodeId n);
  void set_load_cap(NodeId n, double cap);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  const Node& node(NodeId n) const { return nodes_[n]; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }
  Edge& edge_mut(EdgeId e) { return edges_[e]; }
  std::size_t input_count() const { return input_names_.size(); }
  const std::string& input_name(InputId i) const { return input_names_[i]; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  bool is_rail(NodeId n) const { return n == source_ || n == sink_; }

  /// All edges incident to node n (incoming then outgoing).
  std::vector<EdgeId> incident_edges(NodeId n) const;
  /// The endpoint of edge e that is not node n.
  NodeId other_end(EdgeId e, NodeId n) const;

  /// Structural validation: every edge endpoint exists, transistor gates
  /// are bound, widths/lengths positive, every non-rail node connects to
  /// at least one edge, and every output is reachable from a rail through
  /// the undirected edge set. Returns human-readable problems (empty =
  /// valid).
  std::vector<std::string> validate() const;

 private:
  double vdd_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::string> input_names_;
  std::vector<NodeId> outputs_;
  NodeId source_;
  NodeId sink_;
};

/// device::MosType of a transistor edge kind (nmos/pmos only).
device::MosType mos_type_of(DeviceKind k);

}  // namespace qwm::circuit
