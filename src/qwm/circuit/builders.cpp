#include "qwm/circuit/builders.h"

#include <cassert>

#include "qwm/device/device_model.h"

namespace qwm::circuit {

namespace {

double def_wn(const device::Process& p, double wn) {
  return wn > 0.0 ? wn : p.w_min;
}
double def_wp(const device::Process& p, double wp) {
  return wp > 0.0 ? wp : 2.0 * p.w_min;
}

}  // namespace

double fanout_load_cap(const device::Process& proc, double fanout) {
  const double cn = device::gate_input_cap(proc.nmos, proc.w_min, proc.l_min);
  const double cp =
      device::gate_input_cap(proc.pmos, 2.0 * proc.w_min, proc.l_min);
  return fanout * (cn + cp);
}

BuiltStage make_inverter(const device::Process& proc, double load_cap,
                         double wn, double wp) {
  BuiltStage b(proc.vdd);
  LogicStage& s = b.stage;
  const NodeId out = s.add_node("out");
  const InputId in = s.add_input("a");
  const EdgeId mp =
      s.add_edge(DeviceKind::pmos, s.source(), out, def_wp(proc, wp), proc.l_min);
  const EdgeId mn =
      s.add_edge(DeviceKind::nmos, out, s.sink(), def_wn(proc, wn), proc.l_min);
  s.set_gate_input(mp, in);
  s.set_gate_input(mn, in);
  s.add_output(out);
  s.set_load_cap(out, load_cap);
  b.output = out;
  b.switching_input = in;
  b.output_falls = true;  // rising input discharges the output
  return b;
}

BuiltStage make_nand(const device::Process& proc, int n, double load_cap,
                     double wn, double wp) {
  assert(n >= 2);
  BuiltStage b(proc.vdd);
  LogicStage& s = b.stage;
  const NodeId out = s.add_node("out");
  std::vector<InputId> ins;
  for (int i = 0; i < n; ++i) ins.push_back(s.add_input("a" + std::to_string(i)));

  // Parallel PMOS pull-ups.
  for (int i = 0; i < n; ++i) {
    const EdgeId mp = s.add_edge(DeviceKind::pmos, s.source(), out,
                                 def_wp(proc, wp), proc.l_min);
    s.set_gate_input(mp, ins[i]);
  }
  // Series NMOS pulldown stack: out = top, GND at the bottom. Input a0
  // gates the bottom device (the worst-case late arrival in the paper's
  // longest-path analysis).
  NodeId below = s.sink();
  for (int i = 0; i < n; ++i) {
    const NodeId above =
        (i == n - 1) ? out : s.add_node("n" + std::to_string(i + 1));
    const EdgeId mn =
        s.add_edge(DeviceKind::nmos, above, below, def_wn(proc, wn), proc.l_min);
    s.set_gate_input(mn, ins[i]);
    below = above;
  }
  s.add_output(out);
  s.set_load_cap(out, load_cap);
  b.output = out;
  b.switching_input = ins[0];
  b.output_falls = true;
  return b;
}

BuiltStage make_nor(const device::Process& proc, int n, double load_cap,
                    double wn, double wp) {
  assert(n >= 2);
  BuiltStage b(proc.vdd);
  LogicStage& s = b.stage;
  const NodeId out = s.add_node("out");
  std::vector<InputId> ins;
  for (int i = 0; i < n; ++i) ins.push_back(s.add_input("a" + std::to_string(i)));

  // Parallel NMOS pulldowns.
  for (int i = 0; i < n; ++i) {
    const EdgeId mn = s.add_edge(DeviceKind::nmos, out, s.sink(),
                                 def_wn(proc, wn), proc.l_min);
    s.set_gate_input(mn, ins[i]);
  }
  // Series PMOS pull-up stack; a0 gates the top (VDD-adjacent) device.
  NodeId above = s.source();
  for (int i = 0; i < n; ++i) {
    const NodeId below =
        (i == n - 1) ? out : s.add_node("p" + std::to_string(i + 1));
    const EdgeId mp = s.add_edge(DeviceKind::pmos, above, below,
                                 def_wp(proc, wp), proc.l_min);
    s.set_gate_input(mp, ins[i]);
    above = below;
  }
  s.add_output(out);
  s.set_load_cap(out, load_cap);
  b.output = out;
  b.switching_input = ins[0];
  b.output_falls = false;
  return b;
}

BuiltStage make_nmos_stack(const device::Process& proc,
                           const std::vector<double>& widths, double load_cap,
                           double l) {
  assert(!widths.empty());
  if (l <= 0.0) l = proc.l_min;
  BuiltStage b(proc.vdd);
  LogicStage& s = b.stage;
  const InputId in = s.add_input("g0");

  NodeId below = s.sink();
  NodeId top = -1;
  const int k = static_cast<int>(widths.size());
  for (int i = 0; i < k; ++i) {
    const NodeId above = s.add_node("n" + std::to_string(i + 1));
    const EdgeId m = s.add_edge(DeviceKind::nmos, above, below, widths[i], l);
    if (i == 0)
      s.set_gate_input(m, in);
    else
      s.set_gate_static(m, proc.vdd);
    below = above;
    top = above;
  }
  s.add_output(top);
  s.set_load_cap(top, load_cap);
  b.output = top;
  b.switching_input = in;
  b.output_falls = true;
  return b;
}

BuiltStage make_pmos_stack(const device::Process& proc,
                           const std::vector<double>& widths, double load_cap,
                           double l) {
  assert(!widths.empty());
  if (l <= 0.0) l = proc.l_min;
  BuiltStage b(proc.vdd);
  LogicStage& s = b.stage;
  const InputId in = s.add_input("g0");

  NodeId above = s.source();
  NodeId bottom = -1;
  const int k = static_cast<int>(widths.size());
  for (int i = 0; i < k; ++i) {
    const NodeId below = s.add_node("p" + std::to_string(i + 1));
    const EdgeId m = s.add_edge(DeviceKind::pmos, above, below, widths[i], l);
    if (i == 0)
      s.set_gate_input(m, in);  // VDD-adjacent device switches (falls)
    else
      s.set_gate_static(m, 0.0);
    above = below;
    bottom = below;
  }
  s.add_output(bottom);
  s.set_load_cap(bottom, load_cap);
  b.output = bottom;
  b.switching_input = in;
  b.output_falls = false;
  return b;
}

BuiltStage make_manchester_chain(const device::Process& proc, int bits,
                                 double load_cap) {
  assert(bits >= 1);
  BuiltStage b(proc.vdd);
  LogicStage& s = b.stage;
  const double wn = proc.w_min;
  const double wp = 2.0 * proc.w_min;

  const InputId g0 = s.add_input("G0");
  // Carry nodes C0..C_{bits-1}; C0 is pulled down by the generate device
  // of bit 0, then the carry ripples through the propagate pass chain.
  NodeId prev = -1;
  for (int i = 0; i < bits; ++i) {
    const NodeId c = s.add_node("C" + std::to_string(i));
    // Precharge PMOS, clock phi held high (off) during evaluation.
    const EdgeId mp = s.add_edge(DeviceKind::pmos, s.source(), c, wp, proc.l_min);
    s.set_gate_static(mp, proc.vdd);
    if (i == 0) {
      // Generate pulldown of bit 0: the switching device.
      const EdgeId mg = s.add_edge(DeviceKind::nmos, c, s.sink(), wn, proc.l_min);
      s.set_gate_input(mg, g0);
    } else {
      // Propagate pass transistor from the previous carry node, P_i = 1.
      const EdgeId mpass = s.add_edge(DeviceKind::nmos, c, prev, wn, proc.l_min);
      s.set_gate_static(mpass, proc.vdd);
      // Generate pulldown of this bit, G_i = 0 (off) in the ripple case.
      const EdgeId mg = s.add_edge(DeviceKind::nmos, c, s.sink(), wn, proc.l_min);
      s.set_gate_static(mg, 0.0);
    }
    s.add_output(c);
    prev = c;
  }
  s.set_load_cap(prev, load_cap);
  b.output = prev;
  b.switching_input = g0;
  b.output_falls = true;
  return b;
}

BuiltStage make_decoder_tree(const device::Process& proc, int levels,
                             double load_cap, double wire_l0, double wire_w) {
  assert(levels >= 1);
  BuiltStage b(proc.vdd);
  LogicStage& s = b.stage;
  const double wn = proc.w_min;

  const InputId phi = s.add_input("phi");
  // Root pulldown (the word-line evaluation device).
  const NodeId root = s.add_node("root");
  const EdgeId mroot = s.add_edge(DeviceKind::nmos, root, s.sink(), wn, proc.l_min);
  s.set_gate_input(mroot, phi);

  // One root->leaf path is selected; at each level the selected pass
  // transistor (gate at VDD) conducts and its sibling (gate at 0) hangs
  // off the same wire end as a junction load.
  NodeId below = root;
  double wl = wire_l0;
  for (int lev = 0; lev < levels; ++lev) {
    const std::string tag = std::to_string(lev);
    const NodeId wire_far = s.add_node("w" + tag);
    s.add_edge(DeviceKind::wire, wire_far, below, wire_w, wl);
    const NodeId sel = s.add_node("a" + tag);
    const EdgeId msel = s.add_edge(DeviceKind::nmos, sel, wire_far, wn, proc.l_min);
    s.set_gate_static(msel, proc.vdd);
    const NodeId sib = s.add_node("b" + tag);
    const EdgeId msib = s.add_edge(DeviceKind::nmos, sib, wire_far, wn, proc.l_min);
    s.set_gate_static(msib, 0.0);
    below = sel;
    wl *= 2.0;  // wire length doubles with the tree level (paper Fig. 3)
  }
  s.add_output(below);
  s.set_load_cap(below, load_cap);
  b.output = below;
  b.switching_input = phi;
  b.output_falls = true;
  return b;
}

BuiltStage make_nand_pass_stage(const device::Process& proc, double load_cap,
                                double wire_l, double wire_w) {
  BuiltStage b(proc.vdd);
  LogicStage& s = b.stage;
  const double wn = proc.w_min;
  const double wp = 2.0 * proc.w_min;

  const InputId a = s.add_input("a");
  const InputId bin = s.add_input("b");
  const NodeId y = s.add_node("y");  // NAND output / pass input
  // NAND2: parallel PMOS, series NMOS.
  const EdgeId mpa = s.add_edge(DeviceKind::pmos, s.source(), y, wp, proc.l_min);
  const EdgeId mpb = s.add_edge(DeviceKind::pmos, s.source(), y, wp, proc.l_min);
  const NodeId mid = s.add_node("m");
  const EdgeId mna = s.add_edge(DeviceKind::nmos, y, mid, wn, proc.l_min);
  const EdgeId mnb = s.add_edge(DeviceKind::nmos, mid, s.sink(), wn, proc.l_min);
  s.set_gate_input(mpa, a);
  s.set_gate_input(mpb, bin);
  s.set_gate_input(mna, a);
  s.set_gate_input(mnb, bin);

  // Pass transistor M1 (gate enabled) and wire W1 to the stage output.
  const NodeId py = s.add_node("py");
  const EdgeId mpass = s.add_edge(DeviceKind::nmos, y, py, wn, proc.l_min);
  s.set_gate_static(mpass, proc.vdd);
  const NodeId out = s.add_node("out");
  s.add_edge(DeviceKind::wire, py, out, wire_w, wire_l);

  s.add_output(out);
  s.set_load_cap(out, load_cap);
  b.output = out;
  b.switching_input = a;
  b.output_falls = true;
  return b;
}

}  // namespace qwm::circuit
