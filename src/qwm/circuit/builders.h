// Programmatic constructors for the circuits used throughout the paper:
// standard gates (Table I), NMOS stacks with per-transistor widths
// (Table II, Figs. 6/7/9), the Manchester carry chain (Fig. 2), the
// memory decoder tree with exponentially growing wires (Figs. 3/10), and
// the motivating NAND + pass-transistor stage (Fig. 1).
#pragma once

#include <string>
#include <vector>

#include "qwm/circuit/stage.h"
#include "qwm/device/process.h"

namespace qwm::circuit {

/// A constructed stage plus the bookkeeping the analyses need.
struct BuiltStage {
  LogicStage stage;
  NodeId output = -1;           ///< primary output node
  InputId switching_input = -1; ///< the worst-case switching input
  bool output_falls = true;     ///< worst-case event direction at `output`

  explicit BuiltStage(double vdd) : stage(vdd) {}
};

/// Capacitance of a fanout-of-`fanout` minimum inverter input — the
/// default load attached to gate outputs.
double fanout_load_cap(const device::Process& proc, double fanout = 4.0);

/// Static CMOS inverter; worst case = rising input discharging the output.
BuiltStage make_inverter(const device::Process& proc, double load_cap,
                         double wn = 0.0, double wp = 0.0);

/// n-input NAND: n series NMOS, n parallel PMOS. The switching input is
/// the gate of the bottom-most series transistor (longest discharge path).
BuiltStage make_nand(const device::Process& proc, int n, double load_cap,
                     double wn = 0.0, double wp = 0.0);

/// n-input NOR: n series PMOS, n parallel NMOS. The switching input is the
/// gate of the top-most series transistor (longest charge path).
BuiltStage make_nor(const device::Process& proc, int n, double load_cap,
                    double wn = 0.0, double wp = 0.0);

/// A stack of `widths.size()` NMOS transistors from GND to the output
/// (paper Fig. 6). widths[0] is the bottom (GND-adjacent) device, whose
/// gate is the switching input; every other gate is static at VDD.
BuiltStage make_nmos_stack(const device::Process& proc,
                           const std::vector<double>& widths, double load_cap,
                           double l = 0.0);

/// Dual stack of PMOS transistors from VDD to the output; worst-case
/// charge event, switching input at the top (VDD-adjacent) device.
BuiltStage make_pmos_stack(const device::Process& proc,
                           const std::vector<double>& widths, double load_cap,
                           double l = 0.0);

/// Manchester carry chain (paper Fig. 2): per bit a precharge PMOS
/// (gate phi), a generate pulldown NMOS (gate G_i), and a propagate pass
/// NMOS (gate P_i) to the next carry node. The worst case is generate at
/// bit 0 rippling through every pass transistor — a (bits+1)-transistor
/// NMOS path. The switching input is G_0; outputs are all carry nodes.
BuiltStage make_manchester_chain(const device::Process& proc, int bits,
                                 double load_cap);

/// Memory decoder tree (paper Fig. 3): `levels` levels of pass NMOS
/// fanning out binary; the wire between level j and j+1 doubles in length
/// each level (base length `wire_l0`, width `wire_w`). One root->leaf path
/// is selected (static gates at VDD); sibling devices are off and hang as
/// junction loads. The switching input is the root pulldown gate (phi);
/// the output is the selected leaf.
BuiltStage make_decoder_tree(const device::Process& proc, int levels,
                             double load_cap, double wire_l0 = 50e-6,
                             double wire_w = 0.6e-6);

/// Fig. 1 motivating stage: a NAND2 whose output drives a pass NMOS and a
/// wire segment before reaching the stage output. Demonstrates a cell
/// boundary that is not a stage boundary.
BuiltStage make_nand_pass_stage(const device::Process& proc, double load_cap,
                                double wire_l = 100e-6,
                                double wire_w = 0.6e-6);

}  // namespace qwm::circuit
