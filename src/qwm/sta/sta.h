// Static timing analysis over partitioned stages, with QWM as the stage
// evaluation engine.
//
// Arrival times and slews propagate forward through the stage graph in
// topological order; each stage's delay comes from a QWM worst-case
// charge/discharge evaluation (paper §I: "only the timing of the logic
// stages along the longest paths needs to be considered"). The engine
// also supports incremental re-analysis: after a local edit (transistor
// resize) only the affected fanout cone is re-evaluated.
#pragma once

#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "qwm/circuit/partition.h"
#include "qwm/core/stage_eval.h"
#include "qwm/device/model_set.h"

namespace qwm::sta {

struct Arrival {
  double time = -std::numeric_limits<double>::infinity();  ///< 50% crossing [s]
  double slew = 0.0;          ///< 10-90 transition time [s]
  int from_stage = -1;        ///< driving stage (-1 = primary input)
  netlist::NetId from_net = -1;  ///< triggering input net
  bool valid() const { return time > -1e30; }
};

/// Rise/fall arrival pair of one net.
struct NetTiming {
  Arrival rise;
  Arrival fall;
};

struct StaOptions {
  double input_slew = 30e-12;  ///< default primary-input transition [s]
  core::QwmOptions qwm;
};

struct CriticalPathStep {
  netlist::NetId net = -1;
  bool rising = false;
  double arrival = 0.0;
  int stage = -1;  ///< stage that produced this arrival (-1 = primary)
};

class StaEngine {
 public:
  /// `models` is captured by value (it is a trio of non-owning pointers);
  /// the pointed-to device models and process must outlive the engine.
  StaEngine(circuit::PartitionedDesign design, device::ModelSet models,
            StaOptions options = {});

  /// Primary input arrivals default to t = 0 with the default slew; use
  /// this to override before run().
  void set_input_arrival(netlist::NetId net, double rise_time,
                         double fall_time, double slew = -1.0);

  /// Full analysis: evaluates every stage. Returns the number of QWM
  /// stage evaluations performed.
  std::size_t run();

  /// Incremental: resizes a transistor edge inside a stage and marks the
  /// stage dirty. Call update() afterwards.
  void resize_transistor(int stage_index, circuit::EdgeId edge,
                         double new_width);

  /// Re-evaluates only dirty stages and the cone their arrival changes
  /// reach. Returns the number of QWM stage evaluations performed (the
  /// incremental-speedup metric).
  std::size_t update();

  const NetTiming& timing(netlist::NetId net) const;
  /// The design's worst arrival (over all stage output nets, both edges).
  double worst_arrival() const;
  /// Critical path from the worst endpoint back to a primary input.
  std::vector<CriticalPathStep> critical_path() const;

  /// Required-time / slack analysis against a target clock period.
  /// Endpoints (nets driving nothing) must settle by `period`; required
  /// times propagate backward through the stage graph using the same
  /// per-stage delays the forward pass computed. Negative slack = timing
  /// violation. Call after run()/update().
  struct Slack {
    double required = 0.0;
    double slack = 0.0;
    bool valid = false;
  };
  /// Worst (rise/fall) slack per net for the given period.
  std::unordered_map<netlist::NetId, Slack> compute_slacks(
      double period) const;
  /// The design's worst slack (most negative first).
  double worst_slack(double period) const;

  const circuit::PartitionedDesign& design() const { return design_; }
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  /// Evaluates one stage output for one direction, given current input
  /// arrivals. Returns the resulting Arrival (invalid if not computable).
  Arrival evaluate_output(int stage_index, int output_index, bool rising);
  /// Re-evaluates every output of a stage; returns true if any arrival
  /// changed beyond tolerance.
  bool evaluate_stage(int stage_index);
  std::vector<int> topological_order() const;

  circuit::PartitionedDesign design_;
  device::ModelSet models_;
  StaOptions opt_;
  std::unordered_map<netlist::NetId, NetTiming> timing_;
  std::vector<char> dirty_;
  std::vector<std::string> warnings_;
  std::size_t evals_ = 0;
};

}  // namespace qwm::sta
