// Static timing analysis over partitioned stages, with QWM as the stage
// evaluation engine.
//
// Arrival times and slews propagate forward through the stage graph in
// topological order; each stage's delay comes from a QWM worst-case
// charge/discharge evaluation (paper §I: "only the timing of the logic
// stages along the longest paths needs to be considered"). The engine
// also supports incremental re-analysis: after a local edit (transistor
// resize) only the affected fanout cone is re-evaluated.
//
// Scheduling: stages are grouped into topological *levels* (all stages
// whose predecessors live in earlier levels). Every stage of one level
// is independent given the previous levels' arrivals, so a level is
// evaluated across a worker pool, and the results are merged into the
// timing map in ascending stage order — results are bit-identical to a
// single-threaded run regardless of thread count.
//
// Caching: stage evaluations are memoized in a StageEvalCache keyed by
// the structural stage hash, the quantized input slew, and the quantized
// load signature, so electrically identical stages (decoder rows,
// repeated buffers) evaluate QWM once. Lookups run against a cache
// frozen for the duration of a level; new results are committed during
// the deterministic merge, which keeps the cache contents — and hence
// every downstream arrival — independent of scheduling.
//
// Corners: constructed from a CornerModelSet, the engine propagates one
// arrival lane per active process corner through the same schedule. The
// primary (typical) lane evaluates first each level and records its
// converged region traces; fast/slow owners seed their Newton solves
// from the typical trace (cross-corner warm start), so extra corners
// ride along at a fraction of a cold re-run. Cache keys carry the
// corner, so lanes never share memoized results. The legacy
// single-ModelSet constructor wraps into a one-corner set and behaves
// bit-identically to the pre-corner engine.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "qwm/circuit/partition.h"
#include "qwm/core/eval_cache.h"
#include "qwm/core/stage_eval.h"
#include "qwm/core/workspace.h"
#include "qwm/device/model_set.h"
#include "qwm/support/counters.h"
#include "qwm/support/thread_pool.h"

namespace qwm::sta {

struct Arrival {
  double time = -std::numeric_limits<double>::infinity();  ///< 50% crossing [s]
  double slew = 0.0;          ///< 10-90 transition time [s]
  int from_stage = -1;        ///< driving stage (-1 = primary input)
  netlist::NetId from_net = -1;  ///< triggering input net
  /// This arrival (or any arrival upstream of it) was produced by the QWM
  /// fallback ladder rather than the nominal solve: within documented
  /// tolerance, but not nominal-accuracy. Sticky through propagation.
  bool degraded = false;
  bool valid() const { return time > -1e30; }
};

/// Rise/fall arrival pair of one net.
struct NetTiming {
  Arrival rise;
  Arrival fall;
};

/// Stage-graph scheduling policy for run().
///
/// `levels` — the classic topological-level schedule: every stage of a
/// level evaluates across the pool, then a barrier, then the next level.
/// `deps` — dependency-counting asynchronous schedule: each stage holds
/// an outstanding-predecessor counter and enqueues the moment its last
/// predecessor retires; no level barriers. Both produce bit-identical
/// arrivals (including corner lanes, memo-cache contents, and sticky
/// degraded flags) as long as the memo cache never evicts mid-run —
/// the deps mode serializes memo-twin stages on a per-class chain and
/// routes intra-level sharing through a per-run key table so every
/// record makes exactly the classification the frozen-cache level
/// schedule would have made. update() always uses the level schedule
/// (its dirty-cone walk is level-structured); a cyclic design falls
/// back to levels as well.
enum class Schedule { levels, deps };

struct StaOptions {
  double input_slew = 30e-12;  ///< default primary-input transition [s]
  core::QwmOptions qwm;
  /// Worker lanes for level evaluation. 1 = serial; <= 0 = one lane per
  /// hardware thread. Any value yields bit-identical results.
  int threads = 1;
  /// Memoize stage evaluations across identical (structure, slew, load)
  /// configurations.
  bool use_cache = true;
  core::EvalCacheOptions cache;
  Schedule schedule = Schedule::levels;
};

/// Scheduler work counters, cumulative since engine construction. The
/// deps-vs-levels observables: a deps-mode run never executes a level
/// barrier (barrier_syncs stays 0), and its ready-queue high-water mark
/// shows how much independent work the barrier-free schedule exposes.
struct ScheduleStats {
  std::size_t levels = 0;          ///< topological levels in the schedule
  std::size_t barrier_syncs = 0;   ///< level batches executed (levels mode)
  std::size_t tasks_enqueued = 0;  ///< stages pushed on the ready queue (deps)
  std::size_t ready_hwm = 0;       ///< ready-queue high-water mark (deps)
  std::size_t chain_edges = 0;     ///< memo-twin serialization edges (deps)
  /// Stages a worker lane took from another lane's ready shard because its
  /// own shard was empty (deps). Zero on single-lane runs; the
  /// load-imbalance observable on multi-lane runs.
  std::size_t steal_count = 0;
  /// Contended lock acquisitions during record classification (claim-table
  /// shard or cache mutex already held by another lane). The observable
  /// that classification left the global lock: under the old design every
  /// classification serialized; now only genuine same-shard collisions
  /// wait. Zero on single-lane runs.
  std::size_t classify_lock_waits = 0;
};

struct CriticalPathStep {
  netlist::NetId net = -1;
  bool rising = false;
  double arrival = 0.0;
  int stage = -1;  ///< stage that produced this arrival (-1 = primary)
};

class StaEngine {
 public:
  /// `models` is captured by value (it is a trio of non-owning pointers);
  /// the pointed-to device models and process must outlive the engine.
  StaEngine(circuit::PartitionedDesign design, device::ModelSet models,
            StaOptions options = {});

  /// Multi-corner form: one arrival lane per active corner of `models`
  /// (non-owning; typically a CornerLibrary's sets()). The first listed
  /// corner is the primary lane — the one every legacy single-corner
  /// query reads.
  StaEngine(circuit::PartitionedDesign design, device::CornerModelSet models,
            StaOptions options = {});

  /// Primary input arrivals default to t = 0 with the default slew; use
  /// this to override before run().
  void set_input_arrival(netlist::NetId net, double rise_time,
                         double fall_time, double slew = -1.0);

  /// Full-fidelity input injection: installs `t` verbatim — per-edge
  /// validity, independent slews, and sticky degraded flags included —
  /// and marks every stage reading `net` dirty so the next update()
  /// re-propagates the cone. This is the sharded fleet's boundary-input
  /// port: arrivals computed by an upstream shard cross the wire as
  /// %.17g round trips and re-enter here bit-exactly, which is what
  /// makes a sharded analysis reproduce the single-process arrivals.
  void set_input_timing(netlist::NetId net, const NetTiming& t);

  /// Full analysis: evaluates every stage output (cache hits included in
  /// the count; subtract cache_stats().hits for the QWM-run count).
  /// Returns the number of stage evaluations performed.
  std::size_t run();

  /// Incremental: resizes a transistor edge inside a stage, marks the
  /// stage dirty, and invalidates its memo identity so stale cache
  /// entries cannot serve it. Call update() afterwards.
  void resize_transistor(int stage_index, circuit::EdgeId edge,
                         double new_width);

  /// Re-evaluates only dirty stages and the cone their arrival changes
  /// reach. Returns the number of stage evaluations performed (the
  /// incremental-speedup metric).
  std::size_t update();

  /// Arrival pair of a net. Miss path (unknown id, or a net no analysis
  /// reached): returns a stable reference to an invalid NetTiming — both
  /// arrivals have valid() == false — never inserts, never throws. The
  /// reference stays valid for the program's lifetime, so callers (e.g.
  /// the qwm_serve daemon answering a malformed ARRIVAL) may hold it
  /// across queries.
  ///
  /// Const query surface = {timing, has_timing, worst_arrival,
  /// critical_path, compute_slacks, worst_slack, design, cache_stats,
  /// cache_entries, thread_count}: all safe to call concurrently from
  /// any number of threads provided no mutating call (run, update,
  /// resize_transistor, set_input_arrival, clear_cache) runs at the same
  /// time — the reader side of the serving layer's reader–writer
  /// discipline.
  const NetTiming& timing(netlist::NetId net) const;
  /// Arrival pair of a net at a specific corner. Same miss-path contract
  /// as timing(net); an inactive corner is always the miss path.
  const NetTiming& timing(netlist::NetId net, device::Corner corner) const;
  /// True when `net` has a timing record (a primary input or an
  /// evaluated stage output), i.e. timing(net) is not the miss path.
  bool has_timing(netlist::NetId net) const;
  /// Active corners, primary lane first.
  const std::vector<device::Corner>& corners() const {
    return models_.corners;
  }
  bool multi_corner() const { return models_.multi(); }
  /// The design's worst arrival (over all stage output nets, both edges).
  double worst_arrival() const;
  /// Critical path from the worst endpoint back to a primary input.
  std::vector<CriticalPathStep> critical_path() const;
  /// Backtrace from a specific endpoint arrival instead of the global
  /// worst — the shard router's cross-shard stitching primitive: when a
  /// shard's trace bottoms out at a boundary input, the router continues
  /// it on the owning shard by asking for the path feeding that net.
  /// `rising` selects the edge. Empty when the arrival is invalid.
  std::vector<CriticalPathStep> critical_path(netlist::NetId endpoint,
                                              bool rising) const;

  /// Required-time / slack analysis against a target clock period.
  /// Endpoints (nets driving nothing) must settle by `period`; required
  /// times propagate backward through the stage graph using the same
  /// per-stage delays the forward pass computed. Negative slack = timing
  /// violation. Call after run()/update().
  struct Slack {
    double required = 0.0;
    double slack = 0.0;
    bool valid = false;
  };
  /// Worst (rise/fall) slack per net for the given period.
  std::unordered_map<netlist::NetId, Slack> compute_slacks(
      double period) const;
  /// The design's worst slack (most negative first).
  double worst_slack(double period) const;

  /// Min/max arrival envelope of a net across every active corner and
  /// both edges, checked against a clock-period constraint. Setup uses
  /// the latest arrival (slow corner's worst edge): the data must settle
  /// before the capturing clock at `period`. Hold uses the earliest
  /// arrival (fast corner's best edge): the data must not race through
  /// before `hold_time` after the launching clock. Negative slack =
  /// violation.
  struct SetupHold {
    bool valid = false;
    double latest = -std::numeric_limits<double>::infinity();
    double earliest = std::numeric_limits<double>::infinity();
    double setup_slack = 0.0;  ///< period - latest
    double hold_slack = 0.0;   ///< earliest - hold_time
    /// Any contributing arrival rode the fallback ladder.
    bool degraded = false;
  };
  SetupHold setup_hold(netlist::NetId net, double period,
                       double hold_time = 0.0) const;
  /// Worst setup/hold slack over all stage output nets.
  double worst_setup_slack(double period) const;
  double worst_hold_slack(double hold_time = 0.0) const;

  const circuit::PartitionedDesign& design() const { return design_; }
  const std::vector<std::string>& warnings() const { return warnings_; }

  /// Memo-cache activity since construction (or the last reset).
  support::CacheStats cache_stats() const { return cache_.stats(); }
  void reset_cache_stats() { cache_.reset_stats(); }
  /// Drops all memoized evaluations (statistics retained).
  void clear_cache() { cache_.clear(); }
  std::size_t cache_entries() const { return cache_.size(); }
  /// Resolved worker-lane count.
  int thread_count() const;

  /// Aggregate QWM work counters (Newton iterations, device evaluations,
  /// warm starts, ...) over every owner evaluation since construction or
  /// the last reset. Accumulated during the deterministic merge phase, so
  /// the totals are independent of thread count.
  const core::QwmStats& qwm_stats() const { return qwm_stats_; }
  /// Per-corner QWM work counters (the cross-corner warm-start and
  /// cache-isolation observables). An inactive corner reads all-zero.
  const core::QwmStats& qwm_stats(device::Corner corner) const;
  void reset_qwm_stats();
  /// Aggregate scratch-arena footprint over all worker-lane workspaces:
  /// bytes/high-water summed across lanes, grow events and evaluation
  /// counts totalled. A flat high-water mark across repeated runs is the
  /// observable proof the hot path has stopped allocating.
  core::WorkspaceStats workspace_stats() const;

  /// Scheduler work counters (see ScheduleStats). Levels-mode runs grow
  /// barrier_syncs; deps-mode runs grow the queue counters and leave
  /// barrier_syncs untouched.
  const ScheduleStats& schedule_stats() const { return sched_stats_; }

 private:
  /// One (output net, direction) evaluation inside a level batch.
  struct OutputRecord {
    enum class Kind {
      skip,      ///< no triggering arrival; result is the invalid Arrival
      hit,       ///< served from the frozen cache
      owner,     ///< evaluates QWM; result committed to the cache
      follower,  ///< duplicates an owner's key within the same level
    };
    int output_index = 0;
    bool rising = false;
    netlist::NetId net = -1;
    /// Active-corner lane this record evaluates (0 = primary).
    int corner_slot = 0;
    /// Non-primary lanes: flat index of the slot-0 sibling record for the
    /// same (output, edge) — the cross-corner warm-seed source.
    int primary_index = -1;
    /// Record the converged trace even when the record is not cacheable
    /// (primary lane of a multi-corner batch: the trace seeds siblings).
    bool keep_trace = false;
    int sw_input = -1;
    Arrival trigger;
    Kind kind = Kind::skip;
    bool cacheable = false;  ///< key is meaningful (cache on, no bypass)
    core::StageEvalKey key;
    /// follower: flat index of the owning record in the level batch.
    int owner_index = -1;
    core::CachedStageResult value;
    /// Owner only: near-miss warm seed picked during the serial classify
    /// phase (adjacent slew bucket of the frozen cache), if any.
    std::shared_ptr<const core::WarmTrace> warm;
    /// Region-length scale for `warm` (QwmOptions::warm_scale). 1.0 for
    /// same-corner near-miss seeds; the drive-strength ratio when a
    /// sibling lane replays the typical lane's trace.
    double warm_scale = 1.0;
    /// Owner only: QWM work counters from the evaluation.
    core::QwmStats stats;
    /// Owner only: the stimulus for the QWM evaluation.
    std::vector<numeric::PwlWaveform> inputs;
  };
  struct StageTask {
    int stage = -1;
    std::vector<OutputRecord> records;
  };

  /// Evaluates a batch of mutually independent stages: classify against
  /// the frozen cache, run owners across the pool, merge in stage order.
  /// Returns per-task "any arrival changed" flags.
  std::vector<char> evaluate_level(const std::vector<int>& stages);
  /// Fills trigger selection + cache classification for one record.
  void prepare_record(int stage_index, OutputRecord* rec);
  /// Runs QWM for an owner record (worker-thread safe: touches only the
  /// record, its lane's workspace, the immutable design and the models).
  void evaluate_owner(int stage_index, OutputRecord* rec,
                      core::EvalWorkspace& ws) const;
  /// Applies a record's result to the timing map; true if it changed.
  bool apply_record(int stage_index, const OutputRecord& rec);
  /// Full analysis under the dependency-counting schedule (sta_deps.cpp).
  /// Precondition: !cyclic_. Bit-identical to the level schedule.
  std::size_t run_deps();

  /// Memo identity of a stage: structural hash + quantized load
  /// signature, computed lazily and invalidated by resize_transistor.
  std::uint64_t stage_key(int stage_index);
  void build_schedule();
  /// Slot-indexed timing lookup with the shared miss path.
  const NetTiming& timing_in(std::size_t slot, netlist::NetId net) const;

  circuit::PartitionedDesign design_;
  device::CornerModelSet models_;
  StaOptions opt_;
  /// One arrival map per active corner; slot 0 is the primary lane and
  /// the surface every single-corner query reads.
  std::vector<std::unordered_map<netlist::NetId, NetTiming>> timing_;
  std::vector<char> dirty_;
  std::vector<std::string> warnings_;
  std::size_t evals_ = 0;

  /// Topological levels; within a level stages are mutually independent.
  std::vector<std::vector<int>> levels_;
  /// Topological level of each stage (-1 for cyclic stages). The deps
  /// scheduler's per-run key table stores the claiming stage's level so
  /// classification can distinguish "same level — share the in-flight
  /// result" from "earlier level — the frozen cache would have served it".
  std::vector<int> level_of_;
  /// Stage adjacency: consumers_[a] = stages reading an output net of a.
  std::vector<std::vector<int>> consumers_;
  bool cyclic_ = false;
  ScheduleStats sched_stats_;

  core::StageEvalCache cache_;
  std::vector<std::optional<std::uint64_t>> stage_keys_;
  std::unique_ptr<support::ThreadPool> pool_;
  /// One scratch arena per worker lane (index = lane id); sized lazily
  /// before the first parallel dispatch and never reallocated during one.
  std::vector<core::EvalWorkspace> lane_ws_;
  core::QwmStats qwm_stats_;
  /// Per-active-corner-slot split of qwm_stats_.
  std::vector<core::QwmStats> qwm_stats_slot_;
  /// Per-slot warm_scale for replaying the typical lane's trace on that
  /// slot's corner (device::warm_time_scale; slot 0 is always 1.0).
  std::vector<double> corner_warm_scale_;
};

}  // namespace qwm::sta
