// Dependency-counting asynchronous schedule (StaOptions::Schedule::deps),
// sharded-queue / work-stealing edition.
//
// Instead of peeling the stage graph level by level with a barrier after
// each batch, every stage carries an outstanding-predecessor counter and
// joins a ready queue the moment its last predecessor retires. Earlier
// revisions kept ONE ready deque and classified, merged, and scheduled
// under a single mutex, so every classification serialized even though
// the decisions of unrelated stages are independent. This revision splits
// that lock three ways:
//
//  * Ready work is sharded per worker lane: each lane owns a deque and a
//    mutex, pushes the stages it unblocks onto its own shard, and steals
//    the oldest entry from a sibling shard when its own runs dry
//    (ScheduleStats::steal_count). Queue order never affects results —
//    see the bit-identity argument below — so stealing needs no
//    corrective protocol beyond the per-shard mutex.
//  * The per-run memo key table is sharded by key hash. A classification
//    claims a key by inserting {level, empty value} under that shard's
//    mutex alone — an atomic per-key claim rather than a global critical
//    section. Contended shard/cache acquisitions during classification
//    are counted (ScheduleStats::classify_lock_waits).
//  * A short merge mutex serializes only the bookkeeping writes (timing
//    map values, QwmStats accumulation, evals, dirty flags); the memo
//    cache has its own mutex so classify-phase probes and merge-phase
//    inserts never race.
//
// Why classification outside a global lock is still deterministic: the
// only cross-stage state a classification reads is (a) predecessor
// arrivals, (b) the per-run key table, and (c) the memo cache.
//
//  (a) A stage is enqueued only after every predecessor fully retired
//      (atomic release on its counter, then a push under a shard mutex
//      the consumer also locks), so predecessor arrivals are frozen and
//      visible. The timing maps are pre-populated with every output net
//      before workers start, so concurrent merges never rehash the maps
//      a classification is reading.
//  (b, c) Table entries and cache commits for my key — or any near key I
//      probe — can only be produced by stages with my structural
//      stage_key, and all such stages are serialized on the memo-twin
//      chain (below), hence fully retired before I am enqueued. Entries
//      for unrelated keys share nothing with my decision. The shard and
//      cache mutexes therefore only guard the containers' physical
//      integrity, not the decision order.
//
// Bit-identity with the level schedule is the contract, and it is earned
// rather than assumed. The level schedule derives two behaviours from
// its batch structure that a barrier-free schedule must reproduce
// exactly:
//
//  1. Intra-level sharing. Records duplicating an earlier record's memo
//     key *within one level* become followers and copy the owner's
//     un-stripped result; across levels the (frozen) cache serves them
//     instead. Here, only stages with equal memo identity (stage_key:
//     structural hash + load signature) can ever collide on a full key,
//     so every memo-twin class is serialized on a chain that follows the
//     canonical (level, stage-index) order, and owners publish their
//     results in the per-run key table tagged with the owner's level.
//     Classification checks the table *before* the cache: an entry from
//     my own level means "same-batch twin — copy its in-flight value"
//     (the cache may already hold the stripped commit, which the frozen
//     cache of the level schedule would not have shown me); an entry
//     from an earlier level means its commit — if any — is legitimately
//     visible, so the normal cache probe decides.
//
//  2. Frozen-cache warm probes. Near-miss warm seeds (adjacent slew
//     buckets) must not see entries committed by same-level twins, since
//     the level schedule probes a cache frozen at level entry. A probe
//     therefore skips any near key the table claims at my own level —
//     such a key was provably absent from the cache when its owner
//     classified, so whatever the cache holds now was committed inside
//     "my" level.
//
// A degraded or fault-bypassed owner fills the table (so same-level
// twins still share its value, exactly like level-mode followers) but
// commits nothing to the cache, which lets a later-level twin become
// owner again — the level schedule's re-own behaviour. QwmStats are
// accumulated when a stage MERGES (under the merge mutex), never when
// its task moves between shards, so the totals are plain commutative
// sums over the same record set regardless of thread count or steal
// pattern. The remaining caveat is mid-run cache eviction: once the
// cache evicts, victim order differs between schedules, so bit-identity
// holds while the distinct key count stays under
// EvalCacheOptions::max_entries (the scale tests size the cache
// accordingly). Count/period-based fault-injection rules fire by global
// occurrence order and are likewise schedule-dependent; always-fire
// rules are not.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "qwm/sta/sta.h"

namespace qwm::sta {

namespace {

/// Result a deps-mode owner publishes for its memo key: the owner's
/// topological level plus the un-stripped value same-level twins copy.
struct RunTableEntry {
  int level = -1;
  core::CachedStageResult value;
};

/// One shard of the per-run memo key table. Sharding by key hash turns
/// the claim into a per-key critical section: two classifications wait on
/// each other only when their keys share a shard.
struct ClaimShard {
  std::mutex mu;
  std::unordered_map<core::StageEvalKey, RunTableEntry, core::StageEvalKeyHash>
      map;
};

/// kShards is a fixed power of two well above any realistic lane count,
/// so shard collisions between unrelated keys stay rare without making
/// the table size depend on the thread count.
constexpr std::size_t kClaimShards = 32;

/// One worker lane's slice of the ready queue.
struct LaneShard {
  std::mutex mu;
  std::deque<int> q;
};

}  // namespace

std::size_t StaEngine::run_deps() {
  const std::size_t before = evals_;
  const int n = static_cast<int>(design_.stages.size());
  if (n == 0) return 0;

  // Outstanding-predecessor counters, mirroring build_schedule's edge
  // derivation (duplicate edges counted the same way on both sides).
  // Atomic: retiring workers decrement concurrently, and the lane that
  // drops a counter to zero enqueues the stage (the release/acquire pair
  // on the counter plus the shard mutex hand-off publishes every merge
  // the consumer will read).
  std::vector<std::atomic<int>> remaining(static_cast<std::size_t>(n));
  for (auto& r : remaining) r.store(0, std::memory_order_relaxed);
  for (int b = 0; b < n; ++b) {
    for (netlist::NetId in : design_.stages[b].input_nets) {
      const auto it = design_.driver_of.find(in);
      if (it == design_.driver_of.end() || it->second.first == b) continue;
      remaining[b].fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Memo-twin chains in canonical (level, stage-index) order — the order
  // levels_ iterates. Each chain edge is one extra scheduler dependency;
  // both edge kinds strictly increase (level, index) lexicographically,
  // so the graph stays acyclic. With the cache off no record ever owns a
  // key, so no serialization is needed and twins run fully parallel.
  // Side effect relied on below: this pass computes stage_key(s) for
  // every stage, so the lazy stage_keys_ memo is fully populated before
  // any worker classifies concurrently.
  std::vector<int> chain_next(static_cast<std::size_t>(n), -1);
  if (opt_.use_cache) {
    std::unordered_map<std::uint64_t, int> last_member;
    for (const auto& level : levels_) {
      for (int s : level) {
        const auto [it, inserted] = last_member.try_emplace(stage_key(s), s);
        if (!inserted) {
          chain_next[it->second] = s;
          remaining[s].fetch_add(1, std::memory_order_relaxed);
          ++sched_stats_.chain_edges;
          it->second = s;
        }
      }
    }
  }

  // Pre-populate every output net's timing entry (invalid arrivals) so
  // the in-run merges only overwrite mapped values in place and never
  // rehash a map a concurrent classification is reading. apply_record's
  // operator[] inserts these exact entries anyway — even for skip
  // records — so the post-run map contents are unchanged.
  for (auto& lane : timing_)
    for (const auto& info : design_.stages)
      for (netlist::NetId net : info.output_nets) lane.try_emplace(net);

  const int lanes = std::max(1, std::min(thread_count(), n));
  if (static_cast<int>(lane_ws_.size()) < lanes)
    lane_ws_.resize(static_cast<std::size_t>(lanes));

  std::vector<LaneShard> queue(static_cast<std::size_t>(lanes));
  std::vector<ClaimShard> table(kClaimShards);
  const core::StageEvalKeyHash key_hash;
  std::mutex merge_mu;  ///< timing values, stats, dirty flags, merged count
  std::mutex cache_mu;  ///< classify peeks vs. merge inserts
  std::mutex idle_mu;   ///< sleep/wake only; never held while working
  std::condition_variable cv;
  std::atomic<int> merged{0};
  std::atomic<std::size_t> ready_count{0};
  std::atomic<std::size_t> ready_hwm{0};
  std::atomic<std::size_t> tasks_enqueued{0};
  std::atomic<std::size_t> steal_count{0};
  std::atomic<std::size_t> classify_lock_waits{0};

  const auto note_hwm = [&] {
    std::size_t cur = ready_count.load(std::memory_order_relaxed);
    std::size_t prev = ready_hwm.load(std::memory_order_relaxed);
    while (cur > prev &&
           !ready_hwm.compare_exchange_weak(prev, cur,
                                            std::memory_order_relaxed)) {
    }
  };
  const auto push_ready = [&](int lane, int s) {
    {
      std::lock_guard<std::mutex> g(queue[static_cast<std::size_t>(lane)].mu);
      queue[static_cast<std::size_t>(lane)].q.push_back(s);
    }
    ready_count.fetch_add(1, std::memory_order_release);
    tasks_enqueued.fetch_add(1, std::memory_order_relaxed);
  };
  // Wake sleepers without racing their predicate check: taking idle_mu
  // (even empty) orders this notify after any in-progress wait entry.
  const auto wake_all = [&] {
    { std::lock_guard<std::mutex> g(idle_mu); }
    cv.notify_all();
  };

  // Initial seeds, dealt round-robin across the lane shards.
  {
    int next_lane = 0;
    for (int i = 0; i < n; ++i)
      if (remaining[i].load(std::memory_order_relaxed) == 0) {
        push_ready(next_lane, i);
        next_lane = (next_lane + 1) % lanes;
      }
    note_hwm();
  }

  const std::size_t corner_count = models_.count();
  const auto work = [&](int lane) {
    std::size_t my_waits = 0;
    // try_lock-first acquisition: a failed try is a genuine collision
    // with another lane's classification — the counter that proves (or
    // disproves) that sharding removed the serial section.
    const auto lock_counted = [&](std::mutex& m) {
      if (!m.try_lock()) {
        ++my_waits;
        m.lock();
      }
    };
    const auto shard_of = [&](const core::StageEvalKey& k) -> ClaimShard& {
      return table[key_hash(k) & (kClaimShards - 1)];
    };

    while (true) {
      // --- Acquire: own shard first, then steal the oldest entry from a
      // sibling (FIFO steal: the staler the stage, the more likely its
      // whole dependent cone is waiting on it).
      int s = -1;
      {
        LaneShard& mine = queue[static_cast<std::size_t>(lane)];
        std::lock_guard<std::mutex> g(mine.mu);
        if (!mine.q.empty()) {
          s = mine.q.front();
          mine.q.pop_front();
        }
      }
      if (s < 0 && lanes > 1) {
        for (int v = (lane + 1) % lanes; v != lane; v = (v + 1) % lanes) {
          LaneShard& victim = queue[static_cast<std::size_t>(v)];
          std::lock_guard<std::mutex> g(victim.mu);
          if (!victim.q.empty()) {
            s = victim.q.front();
            victim.q.pop_front();
            steal_count.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
      if (s < 0) {
        std::unique_lock<std::mutex> l(idle_mu);
        cv.wait(l, [&] {
          return ready_count.load(std::memory_order_acquire) > 0 ||
                 merged.load(std::memory_order_acquire) == n;
        });
        if (merged.load(std::memory_order_acquire) == n) break;
        continue;  // re-scan the shards (another lane may win the race)
      }
      ready_count.fetch_sub(1, std::memory_order_relaxed);

      // --- Classify (no global lock): trigger selection plus the
      // table-then-cache decision described in the file comment. Shard
      // and cache mutexes are taken one at a time, never nested.
      const circuit::StageInfo& info = design_.stages[s];
      const int my_level = level_of_[s];
      StageTask task;
      task.stage = s;
      std::vector<int> owners;        // record indices that must run QWM
      std::vector<int> claimed;       // record indices holding table keys
      for (std::size_t oi = 0; oi < info.output_nets.size(); ++oi) {
        for (const bool rising : {true, false}) {
          int primary_rec = -1;
          for (std::size_t cs = 0; cs < corner_count; ++cs) {
            OutputRecord rec;
            rec.output_index = static_cast<int>(oi);
            rec.rising = rising;
            rec.net = info.output_nets[oi];
            rec.corner_slot = static_cast<int>(cs);
            if (cs == 0)
              rec.keep_trace = corner_count > 1;
            else
              rec.primary_index = primary_rec;
            prepare_record(s, &rec);
            const int ri = static_cast<int>(task.records.size());
            if (cs == 0) primary_rec = ri;
            if (rec.kind == OutputRecord::Kind::owner && rec.cacheable) {
              bool shared = false;
              {
                ClaimShard& sh = shard_of(rec.key);
                lock_counted(sh.mu);
                std::lock_guard<std::mutex> g(sh.mu, std::adopt_lock);
                const auto tit = sh.map.find(rec.key);
                if (tit != sh.map.end() && tit->second.level == my_level) {
                  rec.kind = OutputRecord::Kind::follower;
                  rec.value = tit->second.value;  // un-stripped twin share
                  shared = true;
                }
              }
              if (!shared) {
                std::optional<core::CachedStageResult> cached;
                {
                  lock_counted(cache_mu);
                  std::lock_guard<std::mutex> g(cache_mu, std::adopt_lock);
                  cached = cache_.peek(rec.key);
                }
                if (cached) {
                  rec.kind = OutputRecord::Kind::hit;
                  rec.value = *cached;
                } else {
                  // Claim the key. No same-key writer can race this gap
                  // (full-key twins are chain-serialized), so find-then-
                  // insert under two acquisitions equals one CAS.
                  {
                    ClaimShard& sh = shard_of(rec.key);
                    lock_counted(sh.mu);
                    std::lock_guard<std::mutex> g(sh.mu, std::adopt_lock);
                    sh.map[rec.key] = RunTableEntry{my_level, {}};
                  }
                  claimed.push_back(ri);
                  if (cache_.options().max_trace_values > 0) {
                    core::StageEvalKey near = rec.key;
                    for (const int d : {-1, 1}) {
                      near.slew_bucket = rec.key.slew_bucket + d;
                      bool same_level_claim = false;
                      {
                        ClaimShard& sh = shard_of(near);
                        lock_counted(sh.mu);
                        std::lock_guard<std::mutex> g(sh.mu, std::adopt_lock);
                        const auto nt = sh.map.find(near);
                        // Claimed at my level => committed inside "my"
                        // batch => invisible to the frozen-cache probe.
                        same_level_claim =
                            nt != sh.map.end() && nt->second.level == my_level;
                      }
                      if (same_level_claim) continue;
                      std::optional<core::CachedStageResult> c;
                      {
                        lock_counted(cache_mu);
                        std::lock_guard<std::mutex> g(cache_mu,
                                                      std::adopt_lock);
                        c = cache_.peek(near);
                      }
                      if (c && c->ok && c->trace != nullptr) {
                        rec.warm = c->trace;
                        break;
                      }
                    }
                  }
                }
              }
            }
            if (rec.kind == OutputRecord::Kind::owner) owners.push_back(ri);
            task.records.push_back(std::move(rec));
          }
        }
      }

      // --- Evaluate (no locks). Primary-lane owners first; then sibling
      // lanes pick up the typical lane's converged trace as a
      // cross-corner warm seed, exactly as the level schedule's wave
      // 2a/2b — followers and hits already carry their values, so the
      // seed source is always resolved by now.
      if (!owners.empty()) {
        core::EvalWorkspace& ws = lane_ws_[static_cast<std::size_t>(lane)];
        for (const int ri : owners) {
          OutputRecord& rec = task.records[static_cast<std::size_t>(ri)];
          if (rec.corner_slot == 0) evaluate_owner(s, &rec, ws);
        }
        for (const int ri : owners) {
          OutputRecord& rec = task.records[static_cast<std::size_t>(ri)];
          if (rec.corner_slot == 0) continue;
          if (!rec.warm && rec.primary_index >= 0) {
            const OutputRecord& prim =
                task.records[static_cast<std::size_t>(rec.primary_index)];
            if (prim.value.ok && !prim.value.degraded && prim.value.trace) {
              rec.warm = prim.value.trace;
              rec.warm_scale = corner_warm_scale_[static_cast<std::size_t>(
                  rec.corner_slot)];
            }
          }
          evaluate_owner(s, &rec, ws);
        }
      }

      // --- Merge (short merge lock): identical bookkeeping to the level
      // schedule's phase 3. QwmStats fold in HERE — at stage retirement,
      // under the merge mutex — never at steal time, so the totals are
      // order-independent sums over the same records at any lane count.
      {
        std::lock_guard<std::mutex> g(merge_mu);
        for (OutputRecord& rec : task.records) {
          if (rec.sw_input >= 0) ++evals_;
          switch (rec.kind) {
            case OutputRecord::Kind::skip:
              break;
            case OutputRecord::Kind::hit:
            case OutputRecord::Kind::follower:
              cache_.note_hit();  // follower values were copied at classify
              break;
            case OutputRecord::Kind::owner:
              qwm_stats_ += rec.stats;
              qwm_stats_slot_[static_cast<std::size_t>(rec.corner_slot)] +=
                  rec.stats;
              if (rec.cacheable) {
                cache_.note_miss();
                const std::size_t cap = cache_.options().max_trace_values;
                std::lock_guard<std::mutex> cg(cache_mu);
                if (rec.value.trace != nullptr &&
                    (cap == 0 || rec.value.trace->value_count() > cap)) {
                  core::CachedStageResult v = rec.value;
                  v.trace = nullptr;
                  cache_.insert(rec.key, v);
                } else {
                  cache_.insert(rec.key, rec.value);
                }
              }
              break;
          }
          apply_record(s, rec);
        }
        dirty_[s] = 0;
      }
      // Publish un-stripped values for every key this stage claimed —
      // including degraded/failed owners (rec.cacheable may have been
      // cleared after evaluation), so same-level twins share the value
      // while later-level twins legitimately re-own the key. Chain
      // successors only start after the retire below, so publishing
      // outside the merge lock stays race-free.
      for (const int ri : claimed) {
        const OutputRecord& rec = task.records[static_cast<std::size_t>(ri)];
        ClaimShard& sh = shard_of(rec.key);
        std::lock_guard<std::mutex> g(sh.mu);
        sh.map[rec.key].value = rec.value;
      }

      // --- Retire: release consumers and the memo-twin chain successor
      // onto this lane's own shard.
      std::size_t newly = 0;
      const auto release = [&](int b) {
        if (remaining[b].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          push_ready(lane, b);
          ++newly;
        }
      };
      for (const int b : consumers_[s]) release(b);
      if (chain_next[s] >= 0) release(chain_next[s]);
      note_hwm();
      const bool done =
          merged.fetch_add(1, std::memory_order_acq_rel) + 1 == n;
      if (newly > 0 || done) wake_all();
    }
    classify_lock_waits.fetch_add(my_waits, std::memory_order_relaxed);
  };

  // Dedicated workers (not the shared-cursor pool: one queue consumer
  // per lane must stay pinned to its lane workspace and ready shard).
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(lanes - 1));
  for (int t = 1; t < lanes; ++t) workers.emplace_back(work, t);
  work(0);
  for (std::thread& w : workers) w.join();

  sched_stats_.tasks_enqueued += tasks_enqueued.load();
  sched_stats_.ready_hwm = std::max(sched_stats_.ready_hwm, ready_hwm.load());
  sched_stats_.steal_count += steal_count.load();
  sched_stats_.classify_lock_waits += classify_lock_waits.load();
  return evals_ - before;
}

}  // namespace qwm::sta
