// Dependency-counting asynchronous schedule (StaOptions::Schedule::deps).
//
// Instead of peeling the stage graph level by level with a barrier after
// each batch, every stage carries an outstanding-predecessor counter and
// joins a ready queue the moment its last predecessor retires. Workers
// pull stages off the queue, classify and merge under one mutex, and run
// the QWM owner evaluations outside it — so the only serial sections are
// the (cheap) classification and merge, and no worker ever idles at a
// level boundary waiting for the batch straggler.
//
// Bit-identity with the level schedule is the contract, and it is earned
// rather than assumed. The level schedule derives two behaviours from
// its batch structure that a barrier-free schedule must reproduce
// exactly:
//
//  1. Intra-level sharing. Records duplicating an earlier record's memo
//     key *within one level* become followers and copy the owner's
//     un-stripped result; across levels the (frozen) cache serves them
//     instead. Here, only stages with equal memo identity (stage_key:
//     structural hash + load signature) can ever collide on a full key,
//     so every memo-twin class is serialized on a chain that follows the
//     canonical (level, stage-index) order, and owners publish their
//     results in a per-run key table tagged with the owner's level.
//     Classification checks the table *before* the cache: an entry from
//     my own level means "same-batch twin — copy its in-flight value"
//     (the cache may already hold the stripped commit, which the frozen
//     cache of the level schedule would not have shown me); an entry
//     from an earlier level means its commit — if any — is legitimately
//     visible, so the normal cache probe decides.
//
//  2. Frozen-cache warm probes. Near-miss warm seeds (adjacent slew
//     buckets) must not see entries committed by same-level twins, since
//     the level schedule probes a cache frozen at level entry. A probe
//     therefore skips any near key the table claims at my own level —
//     such a key was provably absent from the cache when its owner
//     classified, so whatever the cache holds now was committed inside
//     "my" level.
//
// A degraded or fault-bypassed owner fills the table (so same-level
// twins still share its value, exactly like level-mode followers) but
// commits nothing to the cache, which lets a later-level twin become
// owner again — the level schedule's re-own behaviour. The remaining
// caveat is mid-run cache eviction: once the cache evicts, victim order
// differs between schedules, so bit-identity holds while the distinct
// key count stays under EvalCacheOptions::max_entries (the scale tests
// size the cache accordingly). Count/period-based fault-injection rules
// fire by global occurrence order and are likewise schedule-dependent;
// always-fire rules are not.
#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "qwm/sta/sta.h"

namespace qwm::sta {

namespace {

/// Result a deps-mode owner publishes for its memo key: the owner's
/// topological level plus the un-stripped value same-level twins copy.
struct RunTableEntry {
  int level = -1;
  core::CachedStageResult value;
};

}  // namespace

std::size_t StaEngine::run_deps() {
  const std::size_t before = evals_;
  const int n = static_cast<int>(design_.stages.size());
  if (n == 0) return 0;

  // Outstanding-predecessor counters, mirroring build_schedule's edge
  // derivation (duplicate edges counted the same way on both sides).
  std::vector<int> remaining(static_cast<std::size_t>(n), 0);
  for (int b = 0; b < n; ++b) {
    for (netlist::NetId in : design_.stages[b].input_nets) {
      const auto it = design_.driver_of.find(in);
      if (it == design_.driver_of.end() || it->second.first == b) continue;
      ++remaining[b];
    }
  }

  // Memo-twin chains in canonical (level, stage-index) order — the order
  // levels_ iterates. Each chain edge is one extra scheduler dependency;
  // both edge kinds strictly increase (level, index) lexicographically,
  // so the graph stays acyclic. With the cache off no record ever owns a
  // key, so no serialization is needed and twins run fully parallel.
  std::vector<int> chain_next(static_cast<std::size_t>(n), -1);
  if (opt_.use_cache) {
    std::unordered_map<std::uint64_t, int> last_member;
    for (const auto& level : levels_) {
      for (int s : level) {
        const auto [it, inserted] = last_member.try_emplace(stage_key(s), s);
        if (!inserted) {
          chain_next[it->second] = s;
          ++remaining[s];
          ++sched_stats_.chain_edges;
          it->second = s;
        }
      }
    }
  }

  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> ready;
  int merged = 0;
  std::unordered_map<core::StageEvalKey, RunTableEntry, core::StageEvalKeyHash>
      table;
  for (int i = 0; i < n; ++i)
    if (remaining[i] == 0) ready.push_back(i);
  sched_stats_.tasks_enqueued += ready.size();
  sched_stats_.ready_hwm = std::max(sched_stats_.ready_hwm, ready.size());

  const int lanes = std::max(1, std::min(thread_count(), n));
  if (static_cast<int>(lane_ws_.size()) < lanes)
    lane_ws_.resize(static_cast<std::size_t>(lanes));

  const std::size_t corner_count = models_.count();
  const auto work = [&](int lane) {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [&] { return !ready.empty() || merged == n; });
      if (ready.empty()) return;  // merged == n: drained
      const int s = ready.front();
      ready.pop_front();

      // --- Classify (serial, under the lock): trigger selection plus
      // the table-then-cache decision described in the file comment.
      const circuit::StageInfo& info = design_.stages[s];
      const int my_level = level_of_[s];
      StageTask task;
      task.stage = s;
      std::vector<int> owners;        // record indices that must run QWM
      std::vector<int> claimed;       // record indices holding table keys
      for (std::size_t oi = 0; oi < info.output_nets.size(); ++oi) {
        for (const bool rising : {true, false}) {
          int primary_rec = -1;
          for (std::size_t cs = 0; cs < corner_count; ++cs) {
            OutputRecord rec;
            rec.output_index = static_cast<int>(oi);
            rec.rising = rising;
            rec.net = info.output_nets[oi];
            rec.corner_slot = static_cast<int>(cs);
            if (cs == 0)
              rec.keep_trace = corner_count > 1;
            else
              rec.primary_index = primary_rec;
            prepare_record(s, &rec);
            const int ri = static_cast<int>(task.records.size());
            if (cs == 0) primary_rec = ri;
            if (rec.kind == OutputRecord::Kind::owner && rec.cacheable) {
              const auto tit = table.find(rec.key);
              if (tit != table.end() && tit->second.level == my_level) {
                rec.kind = OutputRecord::Kind::follower;
                rec.value = tit->second.value;  // un-stripped twin share
              } else if (const auto cached = cache_.peek(rec.key)) {
                rec.kind = OutputRecord::Kind::hit;
                rec.value = *cached;
              } else {
                table[rec.key] = RunTableEntry{my_level, {}};
                claimed.push_back(ri);
                if (cache_.options().max_trace_values > 0) {
                  core::StageEvalKey near = rec.key;
                  for (const int d : {-1, 1}) {
                    near.slew_bucket = rec.key.slew_bucket + d;
                    const auto nt = table.find(near);
                    // Claimed at my level => committed inside "my"
                    // batch => invisible to the frozen-cache probe.
                    if (nt != table.end() && nt->second.level == my_level)
                      continue;
                    const auto c = cache_.peek(near);
                    if (c && c->ok && c->trace != nullptr) {
                      rec.warm = c->trace;
                      break;
                    }
                  }
                }
              }
            }
            if (rec.kind == OutputRecord::Kind::owner) owners.push_back(ri);
            task.records.push_back(std::move(rec));
          }
        }
      }

      // --- Evaluate (parallel region: lock released). Primary-lane
      // owners first; then sibling lanes pick up the typical lane's
      // converged trace as a cross-corner warm seed, exactly as the
      // level schedule's wave 2a/2b — followers and hits already carry
      // their values, so the seed source is always resolved by now.
      if (!owners.empty()) {
        lock.unlock();
        core::EvalWorkspace& ws = lane_ws_[static_cast<std::size_t>(lane)];
        for (const int ri : owners) {
          OutputRecord& rec = task.records[static_cast<std::size_t>(ri)];
          if (rec.corner_slot == 0) evaluate_owner(s, &rec, ws);
        }
        for (const int ri : owners) {
          OutputRecord& rec = task.records[static_cast<std::size_t>(ri)];
          if (rec.corner_slot == 0) continue;
          if (!rec.warm && rec.primary_index >= 0) {
            const OutputRecord& prim =
                task.records[static_cast<std::size_t>(rec.primary_index)];
            if (prim.value.ok && !prim.value.degraded && prim.value.trace) {
              rec.warm = prim.value.trace;
              rec.warm_scale = corner_warm_scale_[static_cast<std::size_t>(
                  rec.corner_slot)];
            }
          }
          evaluate_owner(s, &rec, ws);
        }
        lock.lock();
      }

      // --- Merge (serial, under the lock): identical bookkeeping to the
      // level schedule's phase 3, followed by table publication.
      for (OutputRecord& rec : task.records) {
        if (rec.sw_input >= 0) ++evals_;
        switch (rec.kind) {
          case OutputRecord::Kind::skip:
            break;
          case OutputRecord::Kind::hit:
          case OutputRecord::Kind::follower:
            cache_.note_hit();  // follower values were copied at classify
            break;
          case OutputRecord::Kind::owner:
            qwm_stats_ += rec.stats;
            qwm_stats_slot_[static_cast<std::size_t>(rec.corner_slot)] +=
                rec.stats;
            if (rec.cacheable) {
              cache_.note_miss();
              const std::size_t cap = cache_.options().max_trace_values;
              if (rec.value.trace != nullptr &&
                  (cap == 0 || rec.value.trace->value_count() > cap)) {
                core::CachedStageResult v = rec.value;
                v.trace = nullptr;
                cache_.insert(rec.key, v);
              } else {
                cache_.insert(rec.key, rec.value);
              }
            }
            break;
        }
        apply_record(s, rec);
      }
      // Publish un-stripped values for every key this stage claimed —
      // including degraded/failed owners (rec.cacheable may have been
      // cleared after evaluation), so same-level twins share the value
      // while later-level twins legitimately re-own the key.
      for (const int ri : claimed) {
        const OutputRecord& rec = task.records[static_cast<std::size_t>(ri)];
        table[rec.key].value = rec.value;
      }
      dirty_[s] = 0;
      ++merged;

      // --- Retire: release consumers and the memo-twin chain successor.
      std::size_t newly = 0;
      const auto release = [&](int b) {
        if (--remaining[b] == 0) {
          ready.push_back(b);
          ++newly;
        }
      };
      for (const int b : consumers_[s]) release(b);
      if (chain_next[s] >= 0) release(chain_next[s]);
      sched_stats_.tasks_enqueued += newly;
      sched_stats_.ready_hwm = std::max(sched_stats_.ready_hwm, ready.size());
      if (newly > 0 || merged == n) cv.notify_all();
    }
  };

  // Dedicated workers (not the shared-cursor pool: one queue consumer
  // per lane must stay pinned to its lane workspace).
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(lanes - 1));
  for (int t = 1; t < lanes; ++t) workers.emplace_back(work, t);
  work(0);
  for (std::thread& w : workers) w.join();
  return evals_ - before;
}

}  // namespace qwm::sta
