#include "qwm/sta/sta.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

namespace qwm::sta {

namespace {
constexpr double kTimeTol = 1e-14;  ///< arrival-change tolerance [s]

/// Ramp waveform with its 50% crossing at `t50` and 10-90 transition
/// `slew` (converted to the full 0-100 ramp duration).
numeric::PwlWaveform make_ramp(double t50, double slew, double vdd,
                               bool rising) {
  const double dur = std::max(slew / 0.8, 1e-13);
  const double t0 = std::max(t50 - 0.5 * dur, 0.0);
  if (rising) return numeric::PwlWaveform::ramp(t0, dur, 0.0, vdd);
  return numeric::PwlWaveform::ramp(t0, dur, vdd, 0.0);
}

}  // namespace

StaEngine::StaEngine(circuit::PartitionedDesign design,
                     device::ModelSet models, StaOptions options)
    : design_(std::move(design)), models_(models), opt_(options) {
  dirty_.assign(design_.stages.size(), 1);
  // Default primary-input arrivals: t = 0 on both edges.
  for (netlist::NetId n : design_.primary_inputs)
    set_input_arrival(n, 0.0, 0.0);
}

void StaEngine::set_input_arrival(netlist::NetId net, double rise_time,
                                  double fall_time, double slew) {
  const double s = slew > 0.0 ? slew : opt_.input_slew;
  NetTiming t;
  t.rise.time = rise_time;
  t.rise.slew = s;
  t.fall.time = fall_time;
  t.fall.slew = s;
  timing_[net] = t;
}

const NetTiming& StaEngine::timing(netlist::NetId net) const {
  static const NetTiming kEmpty{};
  const auto it = timing_.find(net);
  return it == timing_.end() ? kEmpty : it->second;
}

std::vector<int> StaEngine::topological_order() const {
  const int n = static_cast<int>(design_.stages.size());
  // Edges: stage A -> stage B when an output net of A is an input net of B.
  std::vector<std::vector<int>> succ(n);
  std::vector<int> indeg(n, 0);
  for (int b = 0; b < n; ++b) {
    for (netlist::NetId in : design_.stages[b].input_nets) {
      const auto it = design_.driver_of.find(in);
      if (it == design_.driver_of.end()) continue;
      const int a = it->second.first;
      if (a == b) continue;
      succ[a].push_back(b);
      ++indeg[b];
    }
  }
  std::vector<int> order;
  std::queue<int> q;
  for (int i = 0; i < n; ++i)
    if (indeg[i] == 0) q.push(i);
  while (!q.empty()) {
    const int a = q.front();
    q.pop();
    order.push_back(a);
    for (int b : succ[a])
      if (--indeg[b] == 0) q.push(b);
  }
  return order;  // stages in cycles are simply absent
}

Arrival StaEngine::evaluate_output(int stage_index, int output_index,
                                   bool rising) {
  const circuit::StageInfo& info = design_.stages[stage_index];
  const circuit::LogicStage& stage = info.stage;
  const circuit::NodeId out_node = stage.outputs()[output_index];
  // Output rising = charge event, triggered by a falling input; output
  // falling = discharge, triggered by a rising input (inverting stage
  // worst case).
  const bool output_falls = !rising;
  const bool trigger_rising = output_falls;

  // Pick the latest-arriving triggering input.
  int sw_input = -1;
  Arrival trigger;
  for (std::size_t i = 0; i < info.input_nets.size(); ++i) {
    const NetTiming& t = timing(info.input_nets[i]);
    const Arrival& a = trigger_rising ? t.rise : t.fall;
    if (!a.valid()) continue;
    if (sw_input < 0 || a.time > trigger.time) {
      sw_input = static_cast<int>(i);
      trigger = a;
    }
  }
  Arrival result;
  if (sw_input < 0) return result;  // no triggering arrival known

  // Input waveforms: the trigger ramps; every other input sits at its
  // non-controlling level for the event.
  const double vdd = models_.vdd();
  std::vector<numeric::PwlWaveform> inputs;
  for (std::size_t i = 0; i < info.input_nets.size(); ++i) {
    if (static_cast<int>(i) == sw_input)
      inputs.push_back(
          make_ramp(trigger.time, trigger.slew, vdd, trigger_rising));
    else
      inputs.push_back(
          numeric::PwlWaveform::constant(output_falls ? vdd : 0.0));
  }

  ++evals_;
  const core::StageTiming st = core::evaluate_stage(
      stage, out_node, output_falls, inputs, sw_input, models_, opt_.qwm);
  if (!st.ok || !st.delay) return result;
  result.time = trigger.time + *st.delay;
  result.slew = st.output_slew.value_or(opt_.input_slew);
  result.from_stage = stage_index;
  result.from_net = info.input_nets[sw_input];
  return result;
}

bool StaEngine::evaluate_stage(int stage_index) {
  const circuit::StageInfo& info = design_.stages[stage_index];
  bool changed = false;
  for (std::size_t oi = 0; oi < info.output_nets.size(); ++oi) {
    const netlist::NetId net = info.output_nets[oi];
    NetTiming& t = timing_[net];
    for (const bool rising : {true, false}) {
      const Arrival a =
          evaluate_output(stage_index, static_cast<int>(oi), rising);
      Arrival& slot = rising ? t.rise : t.fall;
      if (a.valid() &&
          (!slot.valid() || std::abs(a.time - slot.time) > kTimeTol ||
           std::abs(a.slew - slot.slew) > kTimeTol)) {
        slot = a;
        changed = true;
      } else if (!a.valid() && slot.valid() && slot.from_stage >= 0) {
        slot = Arrival{};
        changed = true;
      }
    }
  }
  return changed;
}

std::size_t StaEngine::run() {
  const std::size_t before = evals_;
  const auto order = topological_order();
  if (order.size() != design_.stages.size())
    warnings_.push_back("combinational cycle detected; cyclic stages skipped");
  for (int s : order) {
    evaluate_stage(s);
    dirty_[s] = 0;
  }
  return evals_ - before;
}

void StaEngine::resize_transistor(int stage_index, circuit::EdgeId edge,
                                  double new_width) {
  circuit::Edge& e = design_.stages[stage_index].stage.edge_mut(edge);
  assert(e.kind != circuit::DeviceKind::wire);
  e.w = new_width;
  dirty_[stage_index] = 1;
}

std::size_t StaEngine::update() {
  const std::size_t before = evals_;
  const auto order = topological_order();
  // Propagate: a dirty stage re-evaluates; if its outputs moved, every
  // consumer of those nets becomes dirty too.
  std::vector<char> dirty = dirty_;
  for (int s : order) {
    if (!dirty[s]) continue;
    const bool changed = evaluate_stage(s);
    dirty_[s] = 0;
    if (!changed) continue;
    for (netlist::NetId out : design_.stages[s].output_nets) {
      for (std::size_t b = 0; b < design_.stages.size(); ++b) {
        if (static_cast<int>(b) == s) continue;
        const auto& ins = design_.stages[b].input_nets;
        if (std::find(ins.begin(), ins.end(), out) != ins.end())
          dirty[b] = 1;
      }
    }
  }
  return evals_ - before;
}

std::unordered_map<netlist::NetId, StaEngine::Slack> StaEngine::compute_slacks(
    double period) const {
  // Required times propagate backward along the recorded worst arcs (the
  // from_net chain of each arrival): critical-cone slack. Endpoints are
  // nets that feed no further stage.
  std::set<netlist::NetId> consumed;
  for (const auto& info : design_.stages)
    for (netlist::NetId n : info.input_nets) consumed.insert(n);

  struct Entry {
    netlist::NetId net;
    bool rising;
    const Arrival* arr;
  };
  std::vector<Entry> entries;
  for (const auto& [net, t] : timing_) {
    if (t.rise.valid()) entries.push_back({net, true, &t.rise});
    if (t.fall.valid()) entries.push_back({net, false, &t.fall});
  }
  // Backward pass: visit later arrivals first so required times are final
  // before they propagate upstream (from.arrival < net.arrival always).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.arr->time > b.arr->time;
            });

  const double kInf = std::numeric_limits<double>::infinity();
  std::unordered_map<netlist::NetId, std::pair<double, double>> required;
  const auto req_of = [&](netlist::NetId n) -> std::pair<double, double>& {
    auto [it, inserted] = required.try_emplace(n, kInf, kInf);
    (void)inserted;
    return it->second;
  };
  for (const auto& e : entries) {
    auto& r = req_of(e.net);
    double& mine = e.rising ? r.first : r.second;
    if (!consumed.count(e.net) && e.arr->from_stage >= 0)
      mine = std::min(mine, period);  // an endpoint
    if (e.arr->from_stage < 0 || e.arr->from_net < 0) continue;
    if (mine == kInf) continue;  // not on any constrained cone
    // Arc delay = this arrival minus the triggering (opposite-edge)
    // arrival of the input net.
    const NetTiming& ft = timing(e.arr->from_net);
    const Arrival& fa = e.rising ? ft.fall : ft.rise;  // inverting stage
    if (!fa.valid()) continue;
    const double arc = e.arr->time - fa.time;
    auto& fr = req_of(e.arr->from_net);
    double& theirs = e.rising ? fr.second : fr.first;
    theirs = std::min(theirs, mine - arc);
  }

  std::unordered_map<netlist::NetId, Slack> out;
  for (const auto& [net, t] : timing_) {
    const auto it = required.find(net);
    if (it == required.end()) continue;
    Slack s;
    if (t.rise.valid() && it->second.first < kInf) {
      s.required = it->second.first;
      s.slack = it->second.first - t.rise.time;
      s.valid = true;
    }
    if (t.fall.valid() && it->second.second < kInf) {
      const double sl = it->second.second - t.fall.time;
      if (!s.valid || sl < s.slack) {
        s.required = it->second.second;
        s.slack = sl;
        s.valid = true;
      }
    }
    if (s.valid) out[net] = s;
  }
  return out;
}

double StaEngine::worst_slack(double period) const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& [net, s] : compute_slacks(period)) {
    (void)net;
    if (s.valid) worst = std::min(worst, s.slack);
  }
  return worst;
}

double StaEngine::worst_arrival() const {
  double worst = 0.0;
  for (const auto& info : design_.stages) {
    for (netlist::NetId n : info.output_nets) {
      const NetTiming& t = timing(n);
      if (t.rise.valid()) worst = std::max(worst, t.rise.time);
      if (t.fall.valid()) worst = std::max(worst, t.fall.time);
    }
  }
  return worst;
}

std::vector<CriticalPathStep> StaEngine::critical_path() const {
  // Find the worst endpoint.
  netlist::NetId net = -1;
  bool rising = false;
  double worst = -1.0;
  for (const auto& info : design_.stages) {
    for (netlist::NetId n : info.output_nets) {
      const NetTiming& t = timing(n);
      if (t.rise.valid() && t.rise.time > worst) {
        worst = t.rise.time;
        net = n;
        rising = true;
      }
      if (t.fall.valid() && t.fall.time > worst) {
        worst = t.fall.time;
        net = n;
        rising = false;
      }
    }
  }
  std::vector<CriticalPathStep> path;
  int guard = 0;
  while (net >= 0 && guard++ < 1000) {
    const NetTiming& t = timing(net);
    const Arrival& a = rising ? t.rise : t.fall;
    if (!a.valid()) break;
    path.push_back(CriticalPathStep{net, rising, a.time, a.from_stage});
    if (a.from_stage < 0) break;  // reached a primary input
    net = a.from_net;
    rising = !rising;  // inverting-stage worst-case model
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace qwm::sta
