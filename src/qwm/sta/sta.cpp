#include "qwm/sta/sta.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <set>

#include "qwm/circuit/stage_hash.h"
#include "qwm/support/fault_injection.h"

namespace qwm::sta {

namespace {
constexpr double kTimeTol = 1e-14;  ///< arrival-change tolerance [s]

/// Ramp waveform with its 50% crossing at `t50` and 10-90 transition
/// `slew` (converted to the full 0-100 ramp duration).
numeric::PwlWaveform make_ramp(double t50, double slew, double vdd,
                               bool rising) {
  const double dur = std::max(slew / 0.8, 1e-13);
  const double t0 = std::max(t50 - 0.5 * dur, 0.0);
  if (rising) return numeric::PwlWaveform::ramp(t0, dur, 0.0, vdd);
  return numeric::PwlWaveform::ramp(t0, dur, vdd, 0.0);
}

/// True when make_ramp would clamp the ramp start at t = 0, breaking the
/// time-translation invariance the memo cache relies on.
bool ramp_clamped(double t50, double slew) {
  const double dur = std::max(slew / 0.8, 1e-13);
  return t50 < 0.5 * dur;
}

// The miss path: one immutable invalid record shared by every engine.
// Returning it (rather than inserting, or indexing blindly) keeps
// timing() const, allocation-free, and safe for unknown ids.
const NetTiming kInvalidTiming{};

}  // namespace

StaEngine::StaEngine(circuit::PartitionedDesign design,
                     device::ModelSet models, StaOptions options)
    : StaEngine(std::move(design), device::CornerModelSet::single(models),
                options) {}

StaEngine::StaEngine(circuit::PartitionedDesign design,
                     device::CornerModelSet models, StaOptions options)
    : design_(std::move(design)),
      models_(std::move(models)),
      opt_(options),
      cache_(options.cache) {
  timing_.resize(models_.count());
  qwm_stats_slot_.assign(models_.count(), core::QwmStats{});
  corner_warm_scale_.assign(models_.count(), 1.0);
  for (std::size_t s = 1; s < models_.corners.size(); ++s)
    corner_warm_scale_[s] = device::warm_time_scale(
        models_.primary(), models_.at(models_.corners[s]));
  dirty_.assign(design_.stages.size(), 1);
  stage_keys_.assign(design_.stages.size(), std::nullopt);
  build_schedule();
  // Default primary-input arrivals: t = 0 on both edges.
  for (netlist::NetId n : design_.primary_inputs)
    set_input_arrival(n, 0.0, 0.0);
}

void StaEngine::set_input_arrival(netlist::NetId net, double rise_time,
                                  double fall_time, double slew) {
  const double s = slew > 0.0 ? slew : opt_.input_slew;
  NetTiming t;
  t.rise.time = rise_time;
  t.rise.slew = s;
  t.fall.time = fall_time;
  t.fall.slew = s;
  // Primary inputs arrive at the same instant at every corner; corners
  // diverge only through stage delays.
  for (auto& lane : timing_) lane[net] = t;
}

void StaEngine::set_input_timing(netlist::NetId net, const NetTiming& t) {
  for (auto& lane : timing_) lane[net] = t;
  for (std::size_t i = 0; i < design_.stages.size(); ++i) {
    for (netlist::NetId in : design_.stages[i].input_nets) {
      if (in == net) {
        dirty_[i] = 1;
        break;
      }
    }
  }
}

const NetTiming& StaEngine::timing_in(std::size_t slot,
                                      netlist::NetId net) const {
  const auto& lane = timing_[slot];
  const auto it = lane.find(net);
  return it == lane.end() ? kInvalidTiming : it->second;
}

const NetTiming& StaEngine::timing(netlist::NetId net) const {
  return timing_in(0, net);
}

const NetTiming& StaEngine::timing(netlist::NetId net,
                                   device::Corner corner) const {
  const int slot = models_.slot_of(corner);
  if (slot < 0) return kInvalidTiming;
  return timing_in(static_cast<std::size_t>(slot), net);
}

bool StaEngine::has_timing(netlist::NetId net) const {
  return timing_[0].find(net) != timing_[0].end();
}

const core::QwmStats& StaEngine::qwm_stats(device::Corner corner) const {
  static const core::QwmStats kZero{};
  const int slot = models_.slot_of(corner);
  return slot < 0 ? kZero : qwm_stats_slot_[static_cast<std::size_t>(slot)];
}

void StaEngine::reset_qwm_stats() {
  qwm_stats_ = core::QwmStats{};
  qwm_stats_slot_.assign(models_.count(), core::QwmStats{});
}

int StaEngine::thread_count() const {
  return support::ThreadPool::resolve_threads(opt_.threads);
}

core::WorkspaceStats StaEngine::workspace_stats() const {
  core::WorkspaceStats total;
  for (const core::EvalWorkspace& ws : lane_ws_) {
    const core::WorkspaceStats s = ws.stats();
    total.bytes += s.bytes;
    total.high_water_bytes += s.high_water_bytes;
    total.grow_events += s.grow_events;
    total.evals += s.evals;
  }
  return total;
}

void StaEngine::build_schedule() {
  const int n = static_cast<int>(design_.stages.size());
  // Edges: stage A -> stage B when an output net of A is an input net of B.
  consumers_.assign(n, {});
  std::vector<int> indeg(n, 0);
  for (int b = 0; b < n; ++b) {
    for (netlist::NetId in : design_.stages[b].input_nets) {
      const auto it = design_.driver_of.find(in);
      if (it == design_.driver_of.end()) continue;
      const int a = it->second.first;
      if (a == b) continue;
      consumers_[a].push_back(b);
      ++indeg[b];
    }
  }
  // Kahn peeling by waves: wave k holds the stages whose longest
  // predecessor chain has length k, which makes every wave an
  // independent, parallel-evaluable level.
  levels_.clear();
  level_of_.assign(n, -1);
  std::vector<int> frontier;
  for (int i = 0; i < n; ++i)
    if (indeg[i] == 0) frontier.push_back(i);
  std::size_t placed = 0;
  while (!frontier.empty()) {
    std::sort(frontier.begin(), frontier.end());
    placed += frontier.size();
    for (int s : frontier) level_of_[s] = static_cast<int>(levels_.size());
    std::vector<int> next;
    for (int a : frontier)
      for (int b : consumers_[a])
        if (--indeg[b] == 0) next.push_back(b);
    levels_.push_back(std::move(frontier));
    frontier = std::move(next);
  }
  cyclic_ = placed != static_cast<std::size_t>(n);  // cyclic stages absent
  sched_stats_.levels = levels_.size();
}

std::uint64_t StaEngine::stage_key(int stage_index) {
  auto& slot = stage_keys_[stage_index];
  if (!slot) {
    const circuit::LogicStage& stage = design_.stages[stage_index].stage;
    slot = circuit::hash_combine(
        circuit::structural_hash(stage),
        circuit::load_signature(stage, opt_.cache.load_quantum));
  }
  return *slot;
}

void StaEngine::prepare_record(int stage_index, OutputRecord* rec) {
  const circuit::StageInfo& info = design_.stages[stage_index];
  // Output rising = charge event, triggered by a falling input; output
  // falling = discharge, triggered by a rising input (inverting stage
  // worst case).
  const bool trigger_rising = !rec->rising;

  // Pick the latest-arriving triggering input from this record's own
  // corner lane — each corner selects (and may differ in) its worst arc.
  rec->sw_input = -1;
  for (std::size_t i = 0; i < info.input_nets.size(); ++i) {
    const NetTiming& t = timing_in(static_cast<std::size_t>(rec->corner_slot),
                                   info.input_nets[i]);
    const Arrival& a = trigger_rising ? t.rise : t.fall;
    if (!a.valid()) continue;
    if (rec->sw_input < 0 || a.time > rec->trigger.time) {
      rec->sw_input = static_cast<int>(i);
      rec->trigger = a;
    }
  }
  rec->kind = OutputRecord::Kind::skip;
  rec->cacheable = false;
  if (rec->sw_input < 0) return;  // no triggering arrival known

  rec->kind = OutputRecord::Kind::owner;  // may be downgraded to hit/follower
  if (!opt_.use_cache) return;
  // Very late triggers approach the QWM give-up horizon, where the
  // transient can be truncated and the delay stops being translation
  // invariant; evaluate those outside the cache.
  if (rec->trigger.time > 0.25 * opt_.qwm.t_max) return;

  rec->cacheable = true;
  rec->key.stage = stage_key(stage_index);
  rec->key.output_index = rec->output_index;
  rec->key.switching_input = rec->sw_input;
  rec->key.rising = rec->rising;
  rec->key.corner =
      static_cast<std::int8_t>(models_.corners[rec->corner_slot]);
  rec->key.slew_bucket = cache_.slew_bucket(rec->trigger.slew);
  rec->key.clamped = ramp_clamped(rec->trigger.time, rec->trigger.slew);
  rec->key.time_bucket =
      rec->key.clamped ? cache_.time_bucket(rec->trigger.time) : 0;
}

void StaEngine::evaluate_owner(int stage_index, OutputRecord* rec,
                               core::EvalWorkspace& ws) const {
  const circuit::StageInfo& info = design_.stages[stage_index];
  const circuit::LogicStage& stage = info.stage;
  const circuit::NodeId out_node = stage.outputs()[rec->output_index];
  const bool output_falls = !rec->rising;
  const bool trigger_rising = output_falls;

  const device::ModelSet& models =
      models_.at(models_.corners[rec->corner_slot]);

  // Input waveforms: the trigger ramps; every other input sits at its
  // non-controlling level for the event.
  const double vdd = models.vdd();
  std::vector<numeric::PwlWaveform> inputs;
  inputs.reserve(info.input_nets.size());
  for (std::size_t i = 0; i < info.input_nets.size(); ++i) {
    if (static_cast<int>(i) == rec->sw_input)
      inputs.push_back(make_ramp(rec->trigger.time, rec->trigger.slew, vdd,
                                 trigger_rising));
    else
      inputs.push_back(
          numeric::PwlWaveform::constant(output_falls ? vdd : 0.0));
  }

  // Cacheable owners record their converged region trace (for later
  // near-miss warm starts) and replay a near-miss seed when the classify
  // phase found one. Both decisions were made serially against the frozen
  // cache, so the evaluation — and its result — is scheduling-independent.
  core::QwmOptions qopt = opt_.qwm;
  if ((rec->cacheable && cache_.options().max_trace_values > 0) ||
      rec->keep_trace)
    qopt.record_trace = true;
  if (rec->warm != nullptr) {
    qopt.warm = rec->warm.get();
    qopt.warm_scale = rec->warm_scale;
  }

  core::StageTiming st = core::evaluate_stage(
      stage, out_node, output_falls, inputs, rec->sw_input, models, qopt, ws);
  rec->stats = st.qwm.stats;
  rec->value = core::CachedStageResult{};
  rec->value.degraded = st.qwm.degraded;
  // Memo bypass: a result produced by the fallback ladder — or a failure
  // observed while a fault plan is armed — must never be served later as
  // a nominal cached hit. Followers of this record still copy its value
  // (deterministic intra-level sharing), but nothing is committed.
  if (st.qwm.degraded || (!st.ok && support::fault_plan_armed()))
    rec->cacheable = false;
  if (!st.ok || !st.delay) return;  // memoized as a failed evaluation
  rec->value.ok = true;
  rec->value.delay = *st.delay;
  rec->value.slew = st.output_slew.value_or(opt_.input_slew);
  // Traces kept for cross-corner seeding (keep_trace) skip the cache's
  // retention cap — they live only for this level batch; the merge phase
  // strips anything over the cap before a cache insert.
  const std::size_t trace_values = st.qwm.trace.value_count();
  if (qopt.record_trace && !st.qwm.degraded && trace_values > 0 &&
      (rec->keep_trace ||
       trace_values <= cache_.options().max_trace_values))
    rec->value.trace =
        std::make_shared<const core::WarmTrace>(std::move(st.qwm.trace));
}

bool StaEngine::apply_record(int stage_index, const OutputRecord& rec) {
  Arrival a;
  if (rec.kind != OutputRecord::Kind::skip && rec.value.ok) {
    const circuit::StageInfo& info = design_.stages[stage_index];
    a.time = rec.trigger.time + rec.value.delay;
    a.slew = rec.value.slew;
    a.from_stage = stage_index;
    a.from_net = info.input_nets[rec.sw_input];
    // Degradation is sticky: an arrival computed from a degraded trigger
    // is itself built on fallback data.
    a.degraded = rec.value.degraded || rec.trigger.degraded;
  }
  NetTiming& t = timing_[static_cast<std::size_t>(rec.corner_slot)][rec.net];
  Arrival& slot = rec.rising ? t.rise : t.fall;
  if (a.valid() &&
      (!slot.valid() || std::abs(a.time - slot.time) > kTimeTol ||
       std::abs(a.slew - slot.slew) > kTimeTol ||
       slot.degraded != a.degraded)) {
    slot = a;
    return true;
  }
  if (!a.valid() && slot.valid() && slot.from_stage >= 0) {
    slot = Arrival{};
    return true;
  }
  return false;
}

std::vector<char> StaEngine::evaluate_level(const std::vector<int>& stages) {
  // Every batch ends in an implicit barrier (the merge below runs only
  // after all owners finished) — the wait the deps scheduler eliminates.
  ++sched_stats_.barrier_syncs;
  // Phase 1 (serial): trigger selection + classification against the
  // cache state frozen at level entry. Records that duplicate an earlier
  // record's key within this same level become followers of the first
  // occurrence — the level's intra-batch sharing — so the outcome is a
  // pure function of the batch, never of thread scheduling.
  std::vector<StageTask> tasks;
  tasks.reserve(stages.size());
  struct FlatRef {
    int task;
    int record;
  };
  std::vector<FlatRef> flat;
  std::unordered_map<core::StageEvalKey, int, core::StageEvalKeyHash>
      first_owner;
  std::vector<int> owners;  // flat indices that must run QWM
  const std::size_t corner_count = models_.count();
  for (int s : stages) {
    StageTask task;
    task.stage = s;
    const circuit::StageInfo& info = design_.stages[s];
    for (std::size_t oi = 0; oi < info.output_nets.size(); ++oi) {
      for (const bool rising : {true, false}) {
        // One record per active corner lane; the primary (slot 0) comes
        // first and its flat index is remembered so sibling lanes can
        // pick up its converged trace as a warm seed after phase 2a.
        int primary_flat = -1;
        for (std::size_t cs = 0; cs < corner_count; ++cs) {
          OutputRecord rec;
          rec.output_index = static_cast<int>(oi);
          rec.rising = rising;
          rec.net = info.output_nets[oi];
          rec.corner_slot = static_cast<int>(cs);
          if (cs == 0)
            rec.keep_trace = corner_count > 1;
          else
            rec.primary_index = primary_flat;
          prepare_record(s, &rec);
          const int flat_index = static_cast<int>(flat.size());
          if (cs == 0) primary_flat = flat_index;
          if (rec.kind == OutputRecord::Kind::owner && rec.cacheable) {
            if (const auto cached = cache_.peek(rec.key)) {
              rec.kind = OutputRecord::Kind::hit;
              rec.value = *cached;
            } else {
              const auto [it, inserted] =
                  first_owner.try_emplace(rec.key, flat_index);
              if (!inserted) {
                rec.kind = OutputRecord::Kind::follower;
                rec.owner_index = it->second;
              } else if (cache_.options().max_trace_values > 0) {
                // Near-miss warm probe: a resident entry in an adjacent
                // slew bucket carries a converged trace from an almost
                // identical evaluation — seed the owner's Newton solves
                // from it. Fixed probe order keeps the choice (and thus
                // the result) deterministic. Keys carry the corner, so a
                // lane only ever replays its own corner's traces here.
                core::StageEvalKey near = rec.key;
                for (const int d : {-1, 1}) {
                  near.slew_bucket = rec.key.slew_bucket + d;
                  const auto c = cache_.peek(near);
                  if (c && c->ok && c->trace != nullptr) {
                    rec.warm = c->trace;
                    break;
                  }
                }
              }
            }
          }
          if (rec.kind == OutputRecord::Kind::owner)
            owners.push_back(flat_index);
          task.records.push_back(std::move(rec));
          flat.push_back({static_cast<int>(tasks.size()),
                          static_cast<int>(task.records.size()) - 1});
        }
      }
    }
    tasks.push_back(std::move(task));
  }

  // Phase 2 (parallel): run the distinct QWM evaluations across the
  // worker lanes. Each lane touches only its own record plus immutable
  // design/model state; indices are handed out through the pool's shared
  // cursor so uneven region counts load-balance.
  // Each lane reuses its own scratch arena across owners and levels.
  //
  // Multi-corner batches dispatch in two waves: the primary-lane owners
  // first (2a), then — after serially seeding each sibling owner with its
  // primary record's converged trace — the remaining corners (2b). The
  // seeding decisions depend only on the frozen cache and the primary
  // results, which are themselves scheduling-independent, so determinism
  // is preserved. Single-corner batches reduce to one wave, bit-identical
  // to the pre-corner engine.
  const int lanes = thread_count();
  if (!owners.empty() && static_cast<int>(lane_ws_.size()) < lanes)
    lane_ws_.resize(static_cast<std::size_t>(lanes));
  const auto record_at = [&](int fi) -> OutputRecord& {
    const FlatRef ref = flat[fi];
    return tasks[ref.task].records[ref.record];
  };
  const auto run_owner_set = [&](const std::vector<int>& set) {
    const auto run_owner = [&](std::size_t j, int lane) {
      const FlatRef ref = flat[set[j]];
      evaluate_owner(tasks[ref.task].stage,
                     &tasks[ref.task].records[ref.record],
                     lane_ws_[static_cast<std::size_t>(lane)]);
    };
    if (lanes > 1 && set.size() > 1) {
      if (!pool_)
        pool_ = std::make_unique<support::ThreadPool>(opt_.threads);
      pool_->parallel_for_lanes(set.size(), run_owner);
    } else {
      for (std::size_t j = 0; j < set.size(); ++j) run_owner(j, 0);
    }
  };
  std::vector<int> lead_owners, lag_owners;
  for (const int fi : owners)
    (record_at(fi).corner_slot == 0 ? lead_owners : lag_owners).push_back(fi);
  run_owner_set(lead_owners);
  if (!lag_owners.empty()) {
    for (const int fi : lag_owners) {
      OutputRecord& rec = record_at(fi);
      if (rec.warm || rec.primary_index < 0) continue;
      // Chase through a follower primary to the record that actually ran.
      const OutputRecord* prim = &record_at(rec.primary_index);
      if (prim->kind == OutputRecord::Kind::follower &&
          prim->owner_index >= 0)
        prim = &record_at(prim->owner_index);
      if (prim->value.ok && !prim->value.degraded && prim->value.trace) {
        rec.warm = prim->value.trace;
        // Typical's region lengths replayed on this corner's time scale.
        rec.warm_scale = corner_warm_scale_[rec.corner_slot];
      }
    }
    run_owner_set(lag_owners);
  }

  // Phase 3 (serial merge, ascending stage order): resolve followers,
  // commit new entries, count, and apply arrivals. Identical regardless
  // of how phase 2 was scheduled.
  std::vector<char> changed(tasks.size(), 0);
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    StageTask& task = tasks[ti];
    for (OutputRecord& rec : task.records) {
      if (rec.sw_input >= 0) ++evals_;
      switch (rec.kind) {
        case OutputRecord::Kind::skip:
          break;
        case OutputRecord::Kind::hit:
          cache_.note_hit();
          break;
        case OutputRecord::Kind::follower: {
          cache_.note_hit();
          const FlatRef ref = flat[rec.owner_index];
          rec.value = tasks[ref.task].records[ref.record].value;
          break;
        }
        case OutputRecord::Kind::owner:
          qwm_stats_ += rec.stats;
          qwm_stats_slot_[static_cast<std::size_t>(rec.corner_slot)] +=
              rec.stats;
          if (rec.cacheable) {
            cache_.note_miss();
            // keep_trace may have retained a trace past the cache's
            // retention policy (it existed to seed sibling corners);
            // strip it before committing.
            const std::size_t cap = cache_.options().max_trace_values;
            if (rec.value.trace != nullptr &&
                (cap == 0 || rec.value.trace->value_count() > cap)) {
              core::CachedStageResult v = rec.value;
              v.trace = nullptr;
              cache_.insert(rec.key, v);
            } else {
              cache_.insert(rec.key, rec.value);
            }
          }
          break;
      }
      if (apply_record(task.stage, rec)) changed[ti] = 1;
    }
  }
  return changed;
}

std::size_t StaEngine::run() {
  if (cyclic_)
    warnings_.push_back("combinational cycle detected; cyclic stages skipped");
  // The deps schedule needs the complete acyclic graph; a cyclic design
  // falls back to the level schedule (which skips the cyclic stages).
  if (opt_.schedule == Schedule::deps && !cyclic_) return run_deps();
  const std::size_t before = evals_;
  for (const auto& level : levels_) {
    evaluate_level(level);
    for (int s : level) dirty_[s] = 0;
  }
  return evals_ - before;
}

void StaEngine::resize_transistor(int stage_index, circuit::EdgeId edge,
                                  double new_width) {
  circuit::Edge& e = design_.stages[stage_index].stage.edge_mut(edge);
  assert(e.kind != circuit::DeviceKind::wire);
  e.w = new_width;
  dirty_[stage_index] = 1;
  // The stage's memo identity changed with its geometry: recompute the
  // structural hash lazily. Entries under the old hash stay valid for any
  // surviving twin stages and age out by eviction otherwise.
  stage_keys_[stage_index].reset();
}

std::size_t StaEngine::update() {
  const std::size_t before = evals_;
  // Propagate level by level: a dirty stage re-evaluates; if its outputs
  // moved, every consumer becomes dirty too (consumers always live in
  // later levels).
  std::vector<char> dirty = dirty_;
  for (const auto& level : levels_) {
    std::vector<int> todo;
    for (int s : level)
      if (dirty[s]) todo.push_back(s);
    if (todo.empty()) continue;
    const std::vector<char> changed = evaluate_level(todo);
    for (std::size_t i = 0; i < todo.size(); ++i) {
      dirty_[todo[i]] = 0;
      if (changed[i])
        for (int b : consumers_[todo[i]]) dirty[b] = 1;
    }
  }
  return evals_ - before;
}

std::unordered_map<netlist::NetId, StaEngine::Slack> StaEngine::compute_slacks(
    double period) const {
  // Required times propagate backward along the recorded worst arcs (the
  // from_net chain of each arrival): critical-cone slack. Endpoints are
  // nets that feed no further stage.
  std::set<netlist::NetId> consumed;
  for (const auto& info : design_.stages)
    for (netlist::NetId n : info.input_nets) consumed.insert(n);

  struct Entry {
    netlist::NetId net;
    bool rising;
    const Arrival* arr;
  };
  std::vector<Entry> entries;
  // Slack analysis runs on the primary lane; multi-corner constraint
  // checks go through setup_hold()'s min/max envelope instead.
  for (const auto& [net, t] : timing_[0]) {
    if (t.rise.valid()) entries.push_back({net, true, &t.rise});
    if (t.fall.valid()) entries.push_back({net, false, &t.fall});
  }
  // Backward pass: visit later arrivals first so required times are final
  // before they propagate upstream (from.arrival < net.arrival always).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.arr->time > b.arr->time;
            });

  const double kInf = std::numeric_limits<double>::infinity();
  std::unordered_map<netlist::NetId, std::pair<double, double>> required;
  const auto req_of = [&](netlist::NetId n) -> std::pair<double, double>& {
    auto [it, inserted] = required.try_emplace(n, kInf, kInf);
    (void)inserted;
    return it->second;
  };
  for (const auto& e : entries) {
    auto& r = req_of(e.net);
    double& mine = e.rising ? r.first : r.second;
    if (!consumed.count(e.net) && e.arr->from_stage >= 0)
      mine = std::min(mine, period);  // an endpoint
    if (e.arr->from_stage < 0 || e.arr->from_net < 0) continue;
    if (mine == kInf) continue;  // not on any constrained cone
    // Arc delay = this arrival minus the triggering (opposite-edge)
    // arrival of the input net.
    const NetTiming& ft = timing(e.arr->from_net);
    const Arrival& fa = e.rising ? ft.fall : ft.rise;  // inverting stage
    if (!fa.valid()) continue;
    const double arc = e.arr->time - fa.time;
    auto& fr = req_of(e.arr->from_net);
    double& theirs = e.rising ? fr.second : fr.first;
    theirs = std::min(theirs, mine - arc);
  }

  std::unordered_map<netlist::NetId, Slack> out;
  for (const auto& [net, t] : timing_[0]) {
    const auto it = required.find(net);
    if (it == required.end()) continue;
    Slack s;
    if (t.rise.valid() && it->second.first < kInf) {
      s.required = it->second.first;
      s.slack = it->second.first - t.rise.time;
      s.valid = true;
    }
    if (t.fall.valid() && it->second.second < kInf) {
      const double sl = it->second.second - t.fall.time;
      if (!s.valid || sl < s.slack) {
        s.required = it->second.second;
        s.slack = sl;
        s.valid = true;
      }
    }
    if (s.valid) out[net] = s;
  }
  return out;
}

double StaEngine::worst_slack(double period) const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& [net, s] : compute_slacks(period)) {
    (void)net;
    if (s.valid) worst = std::min(worst, s.slack);
  }
  return worst;
}

StaEngine::SetupHold StaEngine::setup_hold(netlist::NetId net, double period,
                                           double hold_time) const {
  SetupHold sh;
  for (std::size_t slot = 0; slot < timing_.size(); ++slot) {
    const NetTiming& t = timing_in(slot, net);
    for (const Arrival* a : {&t.rise, &t.fall}) {
      if (!a->valid()) continue;
      sh.valid = true;
      sh.latest = std::max(sh.latest, a->time);
      sh.earliest = std::min(sh.earliest, a->time);
      sh.degraded = sh.degraded || a->degraded;
    }
  }
  if (sh.valid) {
    sh.setup_slack = period - sh.latest;
    sh.hold_slack = sh.earliest - hold_time;
  }
  return sh;
}

double StaEngine::worst_setup_slack(double period) const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& info : design_.stages) {
    for (netlist::NetId n : info.output_nets) {
      const SetupHold sh = setup_hold(n, period);
      if (sh.valid) worst = std::min(worst, sh.setup_slack);
    }
  }
  return worst;
}

double StaEngine::worst_hold_slack(double hold_time) const {
  double worst = std::numeric_limits<double>::infinity();
  for (const auto& info : design_.stages) {
    for (netlist::NetId n : info.output_nets) {
      const SetupHold sh = setup_hold(n, 0.0, hold_time);
      if (sh.valid) worst = std::min(worst, sh.hold_slack);
    }
  }
  return worst;
}

double StaEngine::worst_arrival() const {
  double worst = 0.0;
  for (const auto& info : design_.stages) {
    for (netlist::NetId n : info.output_nets) {
      const NetTiming& t = timing(n);
      if (t.rise.valid()) worst = std::max(worst, t.rise.time);
      if (t.fall.valid()) worst = std::max(worst, t.fall.time);
    }
  }
  return worst;
}

std::vector<CriticalPathStep> StaEngine::critical_path() const {
  // Find the worst endpoint.
  netlist::NetId net = -1;
  bool rising = false;
  double worst = -1.0;
  for (const auto& info : design_.stages) {
    for (netlist::NetId n : info.output_nets) {
      const NetTiming& t = timing(n);
      if (t.rise.valid() && t.rise.time > worst) {
        worst = t.rise.time;
        net = n;
        rising = true;
      }
      if (t.fall.valid() && t.fall.time > worst) {
        worst = t.fall.time;
        net = n;
        rising = false;
      }
    }
  }
  return critical_path(net, rising);
}

std::vector<CriticalPathStep> StaEngine::critical_path(netlist::NetId endpoint,
                                                       bool rising) const {
  std::vector<CriticalPathStep> path;
  netlist::NetId net = endpoint;
  int guard = 0;
  while (net >= 0 && guard++ < 1000) {
    const NetTiming& t = timing(net);
    const Arrival& a = rising ? t.rise : t.fall;
    if (!a.valid()) break;
    path.push_back(CriticalPathStep{net, rising, a.time, a.from_stage});
    if (a.from_stage < 0) break;  // reached a primary input
    net = a.from_net;
    rising = !rising;  // inverting-stage worst-case model
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace qwm::sta
