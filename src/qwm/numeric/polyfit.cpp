#include "qwm/numeric/polyfit.h"

#include <cassert>
#include <cmath>

#include "qwm/numeric/matrix.h"

namespace qwm::numeric {

double Polynomial::eval(double x) const {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

double Polynomial::deriv(double x) const {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 1;)
    acc = acc * x + coeffs[i] * static_cast<double>(i);
  return acc;
}

Polynomial polyfit(const std::vector<double>& x, const std::vector<double>& y,
                   std::size_t degree) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  const std::size_t m = degree + 1;
  if (n < m) return {};

  // Normal equations: (V^T V) c = V^T y with Vandermonde V. Fine for the
  // low degrees (<= 3) used in device characterization.
  Matrix a(m, m);
  Vector b(m, 0.0);
  // Precompute power sums sum x^k for k = 0..2*degree.
  std::vector<double> psum(2 * degree + 1, 0.0);
  for (double xi : x) {
    double p = 1.0;
    for (std::size_t k = 0; k < psum.size(); ++k) {
      psum[k] += p;
      p *= xi;
    }
  }
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < m; ++c) a(r, c) = psum[r + c];
  for (std::size_t i = 0; i < n; ++i) {
    double p = 1.0;
    for (std::size_t r = 0; r < m; ++r) {
      b[r] += p * y[i];
      p *= x[i];
    }
  }
  Vector c = lu_solve(a, b);
  if (c.empty()) return {};
  return Polynomial{std::move(c)};
}

FitQuality fit_quality(const Polynomial& p, const std::vector<double>& x,
                       const std::vector<double>& y) {
  assert(x.size() == y.size());
  FitQuality q;
  if (x.empty()) return q;
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());

  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = p.eval(x[i]) - y[i];
    ss_res += e * e;
    ss_tot += (y[i] - mean) * (y[i] - mean);
    q.max_error = std::max(q.max_error, std::abs(e));
  }
  q.rms_error = std::sqrt(ss_res / static_cast<double>(x.size()));
  q.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : (ss_res == 0.0 ? 1.0 : 0.0);
  return q;
}

}  // namespace qwm::numeric
