#include "qwm/numeric/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qwm::numeric {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Vector Matrix::multiply(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

LuFactorization::LuFactorization(const Matrix& a)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  assert(a.rows() == a.cols());
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
  ok_ = true;
  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (!(best > 0.0) || !std::isfinite(best)) {
      ok_ = false;
      return;
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
      perm_sign_ = -perm_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = lu_(r, k) / pivot;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  Vector x;
  solve(b, x);
  return x;
}

void LuFactorization::solve(const Vector& b, Vector& x) const {
  assert(ok_);
  assert(b.size() == n_);
  x.assign(n_, 0.0);
  // Forward substitution with permutation applied: L y = P b.
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution: U x = y.
  for (std::size_t ri = n_; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n_; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
}

double LuFactorization::determinant() const {
  if (!ok_) return 0.0;
  double det = perm_sign_;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

Vector lu_solve(const Matrix& a, const Vector& b) {
  LuFactorization lu(a);
  if (!lu.ok()) return {};
  return lu.solve(b);
}

double inf_norm(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double norm2(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace qwm::numeric
