// Rank-one-updated tridiagonal solves via the Sherman–Morrison formula.
//
// The QWM region Jacobian has the form  Â = A + u v^T  where A is
// tridiagonal (current-matching rows vs. the alpha parameters) and u v^T
// carries the dense last column (sensitivities to the region end time).
// Sherman–Morrison reduces Â x = b to two O(n) tridiagonal solves:
//
//   A y = b,  A z = u,  x = y - v·y / (1 + v·z) * z
//
// (paper §IV-B, citing Numerical Recipes).
#pragma once

#include <vector>

#include "qwm/numeric/tridiagonal.h"

namespace qwm::numeric {

/// Solves (A + u v^T) x = b. Returns false when A is numerically singular
/// or the Sherman–Morrison denominator (1 + v·z) vanishes; the caller
/// should fall back to a dense LU of the full matrix.
bool sherman_morrison_solve(const Tridiagonal& a, const std::vector<double>& u,
                            const std::vector<double>& v,
                            const std::vector<double>& b,
                            std::vector<double>& x);

/// Caller-owned scratch for the two intermediate solves. Buffers grow to
/// the working size on first use and are reused on every later call.
struct ShermanMorrisonScratch {
  std::vector<double> y;   ///< A y = b
  std::vector<double> z;   ///< A z = u
  std::vector<double> cp;  ///< Thomas modified super-diagonal
};

/// Scratch-reusing variant; allocation-free once `scratch` has grown.
bool sherman_morrison_solve(const Tridiagonal& a, const std::vector<double>& u,
                            const std::vector<double>& v,
                            const std::vector<double>& b,
                            std::vector<double>& x,
                            ShermanMorrisonScratch& scratch);

}  // namespace qwm::numeric
