// Piecewise-linear waveforms: the lingua franca between engines.
//
// SPICE transient results, stimulus definitions, and sampled QWM output
// waveforms are all exchanged as (time, value) breakpoint lists with
// linear interpolation between breakpoints — exactly how the paper plots
// QWM results as "straight solid lines connecting the critical points".
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace qwm::numeric {

/// A waveform sampled at strictly increasing time points, linear between
/// samples and constant-extrapolated outside them.
class PwlWaveform {
 public:
  PwlWaveform() = default;
  PwlWaveform(std::vector<double> times, std::vector<double> values);

  /// Constant waveform (single breakpoint at t = 0).
  static PwlWaveform constant(double value);
  /// Step from v0 to v1 at time t_step (ideal; zero rise time).
  static PwlWaveform step(double t_step, double v0, double v1);
  /// Ramp from v0 starting at t0 reaching v1 at t0 + t_rise.
  static PwlWaveform ramp(double t0, double t_rise, double v0, double v1);

  bool empty() const { return times_.empty(); }
  std::size_t size() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }
  double time(std::size_t i) const { return times_[i]; }
  double value(std::size_t i) const { return values_[i]; }
  double first_time() const { return times_.front(); }
  double last_time() const { return times_.back(); }
  double last_value() const { return values_.back(); }

  /// Appends a breakpoint; t must exceed the current last time.
  void append(double t, double v);

  /// Value at time t (constant extrapolation outside the samples).
  double eval(double t) const;
  /// Slope at time t (0 outside the samples; right-slope at breakpoints).
  double slope(double t) const;

  /// Earliest time >= t_from where the waveform crosses `level`.
  /// `rising` restricts the crossing direction; nullopt = either.
  std::optional<double> crossing(double level, double t_from = 0.0,
                                 std::optional<bool> rising = {}) const;

  /// Resamples onto a uniform grid of `n` points spanning [t0, t1].
  PwlWaveform resample(double t0, double t1, std::size_t n) const;

  /// Maximum |a(t) - b(t)| over the union of both breakpoint sets within
  /// [t0, t1].
  static double max_difference(const PwlWaveform& a, const PwlWaveform& b,
                               double t0, double t1);

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

/// 50%-to-50% propagation delay from `in` crossing v_mid to `out` crossing
/// v_mid (the standard delay metric used in the paper's error columns).
/// nullopt when either waveform never crosses.
std::optional<double> propagation_delay(const PwlWaveform& in,
                                        const PwlWaveform& out, double v_mid,
                                        bool in_rising, bool out_rising);

/// 10%-90% (rising) or 90%-10% (falling) transition time of `w` between
/// levels v_low and v_high.
std::optional<double> transition_time(const PwlWaveform& w, double v_low,
                                      double v_high, bool rising);

}  // namespace qwm::numeric
