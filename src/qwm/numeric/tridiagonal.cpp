#include "qwm/numeric/tridiagonal.h"

#include <cassert>
#include <cmath>

#include "qwm/support/fault_injection.h"

namespace qwm::numeric {

void Tridiagonal::resize(std::size_t n) {
  lower.assign(n, 0.0);
  diag.assign(n, 0.0);
  upper.assign(n, 0.0);
}

void Tridiagonal::fill(double v) {
  for (auto& x : lower) x = v;
  for (auto& x : diag) x = v;
  for (auto& x : upper) x = v;
}

std::vector<double> Tridiagonal::multiply(const std::vector<double>& x) const {
  const std::size_t n = size();
  assert(x.size() == n);
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = diag[i] * x[i];
    if (i > 0) acc += lower[i] * x[i - 1];
    if (i + 1 < n) acc += upper[i] * x[i + 1];
    y[i] = acc;
  }
  return y;
}

bool thomas_solve(const Tridiagonal& t, const std::vector<double>& b,
                  std::vector<double>& x) {
  std::vector<double> cp;
  return thomas_solve(t, b, x, cp);
}

bool thomas_solve(const Tridiagonal& t, const std::vector<double>& b,
                  std::vector<double>& x, std::vector<double>& cp) {
  const std::size_t n = t.size();
  assert(b.size() == n);
  if (n == 0) {
    x.clear();
    return true;
  }
  // Fault injection: report a (simulated) singular pivot.
  if (support::fire_fault(support::FaultSite::kSingularPivot)) return false;
  cp.assign(n, 0.0);  // modified super-diagonal
  x.assign(n, 0.0);

  double piv = t.diag[0];
  if (piv == 0.0 || !std::isfinite(piv)) return false;
  cp[0] = t.upper[0] / piv;
  x[0] = b[0] / piv;
  for (std::size_t i = 1; i < n; ++i) {
    piv = t.diag[i] - t.lower[i] * cp[i - 1];
    if (piv == 0.0 || !std::isfinite(piv)) return false;
    cp[i] = t.upper[i] / piv;
    x[i] = (b[i] - t.lower[i] * x[i - 1]) / piv;
  }
  for (std::size_t i = n - 1; i-- > 0;) x[i] -= cp[i] * x[i + 1];
  return true;
}

std::vector<double> thomas_solve(const Tridiagonal& t,
                                 const std::vector<double>& b) {
  std::vector<double> x;
  if (!thomas_solve(t, b, x)) return {};
  return x;
}

}  // namespace qwm::numeric
