#include "qwm/numeric/tridiagonal.h"

#include <cassert>
#include <cmath>

#include "qwm/support/fault_injection.h"

namespace qwm::numeric {

void Tridiagonal::resize(std::size_t n) {
  lower.assign(n, 0.0);
  diag.assign(n, 0.0);
  upper.assign(n, 0.0);
}

void Tridiagonal::fill(double v) {
  for (auto& x : lower) x = v;
  for (auto& x : diag) x = v;
  for (auto& x : upper) x = v;
}

std::vector<double> Tridiagonal::multiply(const std::vector<double>& x) const {
  const std::size_t n = size();
  assert(x.size() == n);
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = diag[i] * x[i];
    if (i > 0) acc += lower[i] * x[i - 1];
    if (i + 1 < n) acc += upper[i] * x[i + 1];
    y[i] = acc;
  }
  return y;
}

bool thomas_solve(const Tridiagonal& t, const std::vector<double>& b,
                  std::vector<double>& x) {
  std::vector<double> cp;
  return thomas_solve(t, b, x, cp);
}

bool thomas_solve(const Tridiagonal& t, const std::vector<double>& b,
                  std::vector<double>& x, std::vector<double>& cp) {
  const std::size_t n = t.size();
  assert(b.size() == n);
  if (n == 0) {
    x.clear();
    return true;
  }
  // Fault injection: report a (simulated) singular pivot.
  if (support::fire_fault(support::FaultSite::kSingularPivot)) return false;
  cp.assign(n, 0.0);  // modified super-diagonal
  x.assign(n, 0.0);

  // One divide per row: the pivot reciprocal is reused by the modified
  // super-diagonal and the RHS sweep (ulp-level shift vs. dividing twice,
  // inside the callers' Newton tolerance). Singularity is still detected
  // on the pivot itself.
  double piv = t.diag[0];
  if (piv == 0.0 || !std::isfinite(piv)) return false;
  double inv = 1.0 / piv;
  cp[0] = t.upper[0] * inv;
  x[0] = b[0] * inv;
  for (std::size_t i = 1; i < n; ++i) {
    piv = t.diag[i] - t.lower[i] * cp[i - 1];
    if (piv == 0.0 || !std::isfinite(piv)) return false;
    inv = 1.0 / piv;
    cp[i] = t.upper[i] * inv;
    x[i] = (b[i] - t.lower[i] * x[i - 1]) * inv;
  }
  for (std::size_t i = n - 1; i-- > 0;) x[i] -= cp[i] * x[i + 1];
  return true;
}

std::vector<double> thomas_solve(const Tridiagonal& t,
                                 const std::vector<double>& b) {
  std::vector<double> x;
  if (!thomas_solve(t, b, x)) return {};
  return x;
}

bool thomas_solve2(const Tridiagonal& t, const std::vector<double>& b1,
                   const std::vector<double>& b2, std::vector<double>& x1,
                   std::vector<double>& x2, std::vector<double>& cp) {
  const std::size_t n = t.size();
  assert(b1.size() == n && b2.size() == n);
  if (n == 0) {
    x1.clear();
    x2.clear();
    return true;
  }
  if (support::fire_fault(support::FaultSite::kSingularPivot)) return false;
  cp.resize(n);  // fully overwritten below — no clearing pass
  x1.resize(n);
  x2.resize(n);

  // Forward elimination once; each RHS sweep applies the same per-row
  // operations (subtract, scale by the shared pivot reciprocal) in the
  // same order as its standalone thomas_solve, so the results match that
  // routine bit for bit.
  double piv = t.diag[0];
  if (piv == 0.0 || !std::isfinite(piv)) return false;
  double inv = 1.0 / piv;
  cp[0] = t.upper[0] * inv;
  x1[0] = b1[0] * inv;
  x2[0] = b2[0] * inv;
  for (std::size_t i = 1; i < n; ++i) {
    const double l = t.lower[i];
    piv = t.diag[i] - l * cp[i - 1];
    if (piv == 0.0 || !std::isfinite(piv)) return false;
    inv = 1.0 / piv;
    cp[i] = t.upper[i] * inv;
    x1[i] = (b1[i] - l * x1[i - 1]) * inv;
    x2[i] = (b2[i] - l * x2[i - 1]) * inv;
  }
  for (std::size_t i = n - 1; i-- > 0;) {
    x1[i] -= cp[i] * x1[i + 1];
    x2[i] -= cp[i] * x2[i + 1];
  }
  return true;
}

}  // namespace qwm::numeric
