// Least-squares polynomial fitting.
//
// Used by device characterization (paper §V-A): at each (Vs, Vg) grid
// point the channel current Ids(Vd) is fit with a linear polynomial in
// the saturation region and a quadratic in the triode region.
#pragma once

#include <cstddef>
#include <vector>

namespace qwm::numeric {

/// A polynomial sum_i c[i] * x^i with fast evaluation and derivative.
struct Polynomial {
  std::vector<double> coeffs;  ///< coeffs[i] multiplies x^i

  double eval(double x) const;
  /// d/dx at x.
  double deriv(double x) const;
  std::size_t degree() const { return coeffs.empty() ? 0 : coeffs.size() - 1; }
};

struct FitQuality {
  double rms_error = 0.0;
  double max_error = 0.0;
  /// Coefficient of determination (1 = perfect fit). 1 when the data has
  /// zero variance and the fit is exact.
  double r_squared = 1.0;
};

/// Least-squares fit of a degree-`degree` polynomial to the points
/// (x[i], y[i]) via normal equations. Requires x.size() == y.size() and at
/// least degree+1 points; returns an empty polynomial otherwise or when the
/// normal equations are singular (e.g. duplicate abscissae).
Polynomial polyfit(const std::vector<double>& x, const std::vector<double>& y,
                   std::size_t degree);

/// Residual statistics of `p` against the points.
FitQuality fit_quality(const Polynomial& p, const std::vector<double>& x,
                       const std::vector<double>& y);

}  // namespace qwm::numeric
