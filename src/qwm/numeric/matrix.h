// Dense matrix with LU factorization (partial pivoting).
//
// Sized for the small systems that appear in transistor-level timing
// analysis: MNA matrices of logic stages (tens of nodes) and QWM region
// Jacobians (stack depth + 1). Row-major storage, no expression templates.
#pragma once

#include <cstddef>
#include <vector>

namespace qwm::numeric {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Reset every entry to `v` without changing the shape.
  void fill(double v);
  /// Resize to rows x cols, zero-filled (previous contents discarded).
  void resize(std::size_t rows, std::size_t cols);

  /// y = A * x. Requires x.size() == cols().
  Vector multiply(const Vector& x) const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

/// LU factorization with partial pivoting of a square matrix.
///
/// Factors PA = LU once; `solve` then costs O(n^2) per right-hand side.
/// Used as the general-purpose linear solver for MNA systems and as the
/// reference ("slow") solver in the QWM tridiagonal-vs-LU ablation.
class LuFactorization {
 public:
  /// Factors `a`. Check `ok()` before calling solve(); a singular (to
  /// machine precision) matrix leaves ok() false.
  explicit LuFactorization(const Matrix& a);

  bool ok() const { return ok_; }
  std::size_t size() const { return n_; }

  /// Solves A x = b. Requires ok() and b.size() == size().
  Vector solve(const Vector& b) const;

  /// Scratch-reusing variant: writes the solution into `x` (resized with
  /// assign, so steady-size callers allocate nothing). b and x must not
  /// alias. Same arithmetic as the returning overload.
  void solve(const Vector& b, Vector& x) const;

  /// det(A); meaningful only when ok().
  double determinant() const;

 private:
  std::size_t n_ = 0;
  Matrix lu_;
  std::vector<std::size_t> perm_;
  bool ok_ = false;
  int perm_sign_ = 1;
};

/// Convenience: solve A x = b with a fresh LU factorization.
/// Returns empty vector if A is singular.
Vector lu_solve(const Matrix& a, const Vector& b);

/// Infinity norm of a vector (0 for empty).
double inf_norm(const Vector& v);

/// Euclidean norm.
double norm2(const Vector& v);

}  // namespace qwm::numeric
