// Scalar root finding and small polynomial roots.
//
// Used for critical-point location on input waveforms (gate voltage
// crossing a threshold) and for the cubic/quadratic characteristic
// polynomials of low-order AWE pole extraction.
#pragma once

#include <functional>
#include <optional>
#include <vector>

namespace qwm::numeric {

/// Bisection on [lo, hi]; requires f(lo) and f(hi) of opposite sign
/// (or one of them zero). Returns nullopt when the bracket is invalid.
std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, double x_tol = 1e-15,
                             int max_iterations = 200);

/// Real roots of a*x^2 + b*x + c = 0, ascending. Degenerates gracefully to
/// the linear case when |a| is negligible.
std::vector<double> quadratic_roots(double a, double b, double c);

/// Real roots of x^3 + a*x^2 + b*x + c = 0, ascending (Cardano, trig form).
std::vector<double> cubic_roots_monic(double a, double b, double c);

}  // namespace qwm::numeric
