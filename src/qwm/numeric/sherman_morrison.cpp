#include "qwm/numeric/sherman_morrison.h"

#include <cassert>
#include <cmath>

#include "qwm/support/fault_injection.h"

namespace qwm::numeric {

bool sherman_morrison_solve(const Tridiagonal& a, const std::vector<double>& u,
                            const std::vector<double>& v,
                            const std::vector<double>& b,
                            std::vector<double>& x) {
  ShermanMorrisonScratch scratch;
  return sherman_morrison_solve(a, u, v, b, x, scratch);
}

bool sherman_morrison_solve(const Tridiagonal& a, const std::vector<double>& u,
                            const std::vector<double>& v,
                            const std::vector<double>& b,
                            std::vector<double>& x,
                            ShermanMorrisonScratch& scratch) {
  const std::size_t n = a.size();
  assert(u.size() == n && v.size() == n && b.size() == n);

  std::vector<double>& y = scratch.y;
  std::vector<double>& z = scratch.z;
  // Fused two-RHS pass: one forward elimination serves A y = b and
  // A z = u, bit-identical to two independent Thomas solves (the two
  // always shared the same pivot chain).
  if (!thomas_solve2(a, b, u, y, z, scratch.cp)) return false;

  double vy = 0.0, vz = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    vy += v[i] * y[i];
    vz += v[i] * z[i];
  }
  const double denom = 1.0 + vz;
  // Fault injection: pretend |1 + v'z| underflowed (denominator blow-up).
  if (std::abs(denom) < 1e-300 || !std::isfinite(denom) ||
      support::fire_fault(support::FaultSite::kSmDenominator))
    return false;
  const double scale = vy / denom;

  x.resize(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = y[i] - scale * z[i];
  return true;
}

}  // namespace qwm::numeric
