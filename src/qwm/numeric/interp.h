// Uniform-grid interpolation (1-D linear, 2-D bilinear).
//
// The tabular device model stores per-(Vs, Vg) fit parameters on a uniform
// 0.1 V grid (paper §V-A); queries off the grid are interpolated from the
// neighbouring points.
#pragma once

#include <cstddef>
#include <vector>

namespace qwm::numeric {

/// A uniform sample axis: n points x0, x0+dx, ..., x0+(n-1)dx.
struct UniformAxis {
  double x0 = 0.0;
  double dx = 1.0;
  std::size_t n = 0;

  double coord(std::size_t i) const { return x0 + dx * static_cast<double>(i); }
  double max() const { return coord(n - 1); }

  /// Cell index and fractional position for x, clamped to the grid.
  /// After the call, 0 <= idx <= n-2 and 0 <= frac <= 1 (n >= 2 required).
  void locate(double x, std::size_t& idx, double& frac) const;
};

/// Linear interpolation over a uniform axis. Clamps outside the range.
class LinearTable1D {
 public:
  LinearTable1D() = default;
  LinearTable1D(UniformAxis axis, std::vector<double> values);

  double eval(double x) const;
  /// d(eval)/dx (piecewise constant; clamped to 0 outside the range).
  double deriv(double x) const;
  const UniformAxis& axis() const { return axis_; }

 private:
  UniformAxis axis_;
  std::vector<double> values_;
};

/// Bilinear interpolation over a uniform 2-D grid; values stored row-major
/// with the first axis as the slow index. Clamps outside the range.
class BilinearTable2D {
 public:
  BilinearTable2D() = default;
  BilinearTable2D(UniformAxis a0, UniformAxis a1, std::vector<double> values);

  double eval(double x0, double x1) const;
  /// Partial derivatives of the interpolant.
  double deriv0(double x0, double x1) const;
  double deriv1(double x0, double x1) const;

  const UniformAxis& axis0() const { return a0_; }
  const UniformAxis& axis1() const { return a1_; }
  double& at(std::size_t i0, std::size_t i1) { return values_[i0 * a1_.n + i1]; }
  double at(std::size_t i0, std::size_t i1) const {
    return values_[i0 * a1_.n + i1];
  }

 private:
  UniformAxis a0_, a1_;
  std::vector<double> values_;
};

}  // namespace qwm::numeric
