// Tridiagonal linear systems via the Thomas algorithm.
//
// The QWM region Jacobian is tridiagonal except for its last column
// (see sherman_morrison.h); solving the tridiagonal part in O(n) instead
// of O(n^3) LU is one of the paper's reported optimizations (~2x on the
// whole NR solve).
#pragma once

#include <cstddef>
#include <vector>

namespace qwm::numeric {

/// A tridiagonal matrix of dimension n, stored as three bands.
///
///   | d[0] u[0]                  |
///   | l[1] d[1] u[1]             |
///   |      l[2] d[2] u[2]        |
///   |            ...             |
///   |           l[n-1]   d[n-1]  |
///
/// l[0] and u[n-1] are unused.
struct Tridiagonal {
  std::vector<double> lower;  ///< sub-diagonal, lower[0] unused
  std::vector<double> diag;   ///< main diagonal
  std::vector<double> upper;  ///< super-diagonal, upper[n-1] unused

  Tridiagonal() = default;
  explicit Tridiagonal(std::size_t n)
      : lower(n, 0.0), diag(n, 0.0), upper(n, 0.0) {}

  std::size_t size() const { return diag.size(); }
  void resize(std::size_t n);
  void fill(double v);

  /// y = T * x.
  std::vector<double> multiply(const std::vector<double>& x) const;
};

/// Solves T x = b with the Thomas algorithm (no pivoting). Returns false if
/// a zero (or non-finite) pivot is hit — caller should fall back to dense LU.
/// O(n) time, O(n) scratch.
bool thomas_solve(const Tridiagonal& t, const std::vector<double>& b,
                  std::vector<double>& x);

/// Scratch-reusing variant: `cp` is caller-owned storage for the modified
/// super-diagonal (resized to n, contents clobbered). Allocation-free once
/// the caller's buffers have grown to the working size.
bool thomas_solve(const Tridiagonal& t, const std::vector<double>& b,
                  std::vector<double>& x, std::vector<double>& cp);

/// Convenience overload; empty result signals failure.
std::vector<double> thomas_solve(const Tridiagonal& t,
                                 const std::vector<double>& b);

/// Fused two-RHS Thomas solve: T x1 = b1 and T x2 = b2 in one
/// cache-resident pass. The forward elimination (pivot chain and modified
/// super-diagonal `cp`) is computed once and shared; each RHS sees exactly
/// the arithmetic sequence of its own thomas_solve call, so x1/x2 are
/// bit-identical to two independent solves at roughly two thirds of the
/// work. Fires the singular-pivot fault site once per factorization.
bool thomas_solve2(const Tridiagonal& t, const std::vector<double>& b1,
                   const std::vector<double>& b2, std::vector<double>& x1,
                   std::vector<double>& x2, std::vector<double>& cp);

}  // namespace qwm::numeric
