#include "qwm/numeric/interp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qwm::numeric {

void UniformAxis::locate(double x, std::size_t& idx, double& frac) const {
  assert(n >= 2);
  const double t = (x - x0) / dx;
  if (t <= 0.0) {
    idx = 0;
    frac = 0.0;
    return;
  }
  if (t >= static_cast<double>(n - 1)) {
    idx = n - 2;
    frac = 1.0;
    return;
  }
  idx = static_cast<std::size_t>(t);
  if (idx > n - 2) idx = n - 2;
  frac = t - static_cast<double>(idx);
}

LinearTable1D::LinearTable1D(UniformAxis axis, std::vector<double> values)
    : axis_(axis), values_(std::move(values)) {
  assert(values_.size() == axis_.n);
}

double LinearTable1D::eval(double x) const {
  std::size_t i;
  double f;
  axis_.locate(x, i, f);
  return values_[i] * (1.0 - f) + values_[i + 1] * f;
}

double LinearTable1D::deriv(double x) const {
  const double t = (x - axis_.x0) / axis_.dx;
  if (t < 0.0 || t > static_cast<double>(axis_.n - 1)) return 0.0;
  std::size_t i;
  double f;
  axis_.locate(x, i, f);
  return (values_[i + 1] - values_[i]) / axis_.dx;
}

BilinearTable2D::BilinearTable2D(UniformAxis a0, UniformAxis a1,
                                 std::vector<double> values)
    : a0_(a0), a1_(a1), values_(std::move(values)) {
  assert(values_.size() == a0_.n * a1_.n);
}

double BilinearTable2D::eval(double x0, double x1) const {
  std::size_t i0, i1;
  double f0, f1;
  a0_.locate(x0, i0, f0);
  a1_.locate(x1, i1, f1);
  const double v00 = at(i0, i1), v01 = at(i0, i1 + 1);
  const double v10 = at(i0 + 1, i1), v11 = at(i0 + 1, i1 + 1);
  return v00 * (1 - f0) * (1 - f1) + v01 * (1 - f0) * f1 + v10 * f0 * (1 - f1) +
         v11 * f0 * f1;
}

double BilinearTable2D::deriv0(double x0, double x1) const {
  std::size_t i0, i1;
  double f0, f1;
  a0_.locate(x0, i0, f0);
  a1_.locate(x1, i1, f1);
  const double lo = at(i0, i1) * (1 - f1) + at(i0, i1 + 1) * f1;
  const double hi = at(i0 + 1, i1) * (1 - f1) + at(i0 + 1, i1 + 1) * f1;
  return (hi - lo) / a0_.dx;
}

double BilinearTable2D::deriv1(double x0, double x1) const {
  std::size_t i0, i1;
  double f0, f1;
  a0_.locate(x0, i0, f0);
  a1_.locate(x1, i1, f1);
  const double lo = at(i0, i1) * (1 - f0) + at(i0 + 1, i1) * f0;
  const double hi = at(i0, i1 + 1) * (1 - f0) + at(i0 + 1, i1 + 1) * f0;
  return (hi - lo) / a1_.dx;
}

}  // namespace qwm::numeric
