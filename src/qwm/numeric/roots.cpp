#include "qwm/numeric/roots.h"

#include <algorithm>
#include <cmath>

namespace qwm::numeric {

std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, double x_tol, int max_iterations) {
  double flo = f(lo), fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) return std::nullopt;
  for (int i = 0; i < max_iterations && (hi - lo) > x_tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<double> quadratic_roots(double a, double b, double c) {
  const double scale = std::max({std::abs(a), std::abs(b), std::abs(c), 1e-300});
  if (std::abs(a) < 1e-14 * scale) {
    if (std::abs(b) < 1e-14 * scale) return {};
    return {-c / b};
  }
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return {};
  const double sq = std::sqrt(disc);
  // Numerically stable form: compute the larger-magnitude root first.
  const double q = -0.5 * (b + (b >= 0.0 ? sq : -sq));
  std::vector<double> roots;
  roots.push_back(q / a);
  if (q != 0.0) roots.push_back(c / q);
  else roots.push_back(0.0);
  std::sort(roots.begin(), roots.end());
  return roots;
}

std::vector<double> cubic_roots_monic(double a, double b, double c) {
  // Depress: x = t - a/3 -> t^3 + p t + q = 0.
  const double p = b - a * a / 3.0;
  const double q = 2.0 * a * a * a / 27.0 - a * b / 3.0 + c;
  const double shift = -a / 3.0;
  std::vector<double> roots;
  const double disc = q * q / 4.0 + p * p * p / 27.0;
  if (disc > 1e-300) {
    const double sq = std::sqrt(disc);
    const double u = std::cbrt(-q / 2.0 + sq);
    const double v = std::cbrt(-q / 2.0 - sq);
    roots.push_back(u + v + shift);
  } else if (std::abs(p) < 1e-300) {
    roots.push_back(shift);  // triple root
  } else {
    // Three real roots (trigonometric form).
    const double r = std::sqrt(-p * p * p / 27.0);
    double cos_phi = -q / (2.0 * r);
    cos_phi = std::clamp(cos_phi, -1.0, 1.0);
    const double phi = std::acos(cos_phi);
    const double m = 2.0 * std::sqrt(-p / 3.0);
    for (int k = 0; k < 3; ++k)
      roots.push_back(m * std::cos((phi + 2.0 * M_PI * k) / 3.0) + shift);
  }
  std::sort(roots.begin(), roots.end());
  return roots;
}

}  // namespace qwm::numeric
