#include "qwm/numeric/pwl.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qwm::numeric {

PwlWaveform::PwlWaveform(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  assert(times_.size() == values_.size());
  for (std::size_t i = 1; i < times_.size(); ++i)
    assert(times_[i] > times_[i - 1]);
}

PwlWaveform PwlWaveform::constant(double value) {
  return PwlWaveform({0.0}, {value});
}

PwlWaveform PwlWaveform::step(double t_step, double v0, double v1) {
  // An ideal step is represented with a 1 fs ramp so the waveform stays a
  // function of time.
  const double eps = 1e-15;
  if (t_step <= 0.0) return PwlWaveform({0.0}, {v1});
  return PwlWaveform({0.0, t_step, t_step + eps}, {v0, v0, v1});
}

PwlWaveform PwlWaveform::ramp(double t0, double t_rise, double v0, double v1) {
  assert(t_rise > 0.0);
  if (t0 <= 0.0) return PwlWaveform({0.0, t_rise}, {v0, v1});
  return PwlWaveform({0.0, t0, t0 + t_rise}, {v0, v0, v1});
}

void PwlWaveform::append(double t, double v) {
  assert(times_.empty() || t > times_.back());
  times_.push_back(t);
  values_.push_back(v);
}

double PwlWaveform::eval(double t) const {
  assert(!times_.empty());
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double f = (t - times_[lo]) / (times_[hi] - times_[lo]);
  return values_[lo] + f * (values_[hi] - values_[lo]);
}

double PwlWaveform::slope(double t) const {
  assert(!times_.empty());
  if (t < times_.front() || t >= times_.back()) return 0.0;
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  return (values_[hi] - values_[lo]) / (times_[hi] - times_[lo]);
}

std::optional<double> PwlWaveform::crossing(double level, double t_from,
                                            std::optional<bool> rising) const {
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] < t_from) continue;
    const double v0 = values_[i - 1], v1 = values_[i];
    const bool seg_rising = v1 > v0;
    if (rising && *rising != seg_rising) continue;
    const double lo = std::min(v0, v1), hi = std::max(v0, v1);
    if (level < lo || level > hi || v0 == v1) continue;
    const double f = (level - v0) / (v1 - v0);
    const double t = times_[i - 1] + f * (times_[i] - times_[i - 1]);
    if (t >= t_from) return t;
  }
  return std::nullopt;
}

PwlWaveform PwlWaveform::resample(double t0, double t1, std::size_t n) const {
  assert(n >= 2 && t1 > t0);
  std::vector<double> ts(n), vs(n);
  for (std::size_t i = 0; i < n; ++i) {
    ts[i] = t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(n - 1);
    vs[i] = eval(ts[i]);
  }
  return PwlWaveform(std::move(ts), std::move(vs));
}

double PwlWaveform::max_difference(const PwlWaveform& a, const PwlWaveform& b,
                                   double t0, double t1) {
  std::vector<double> ts;
  ts.reserve(a.size() + b.size() + 2);
  ts.push_back(t0);
  ts.push_back(t1);
  for (double t : a.times())
    if (t >= t0 && t <= t1) ts.push_back(t);
  for (double t : b.times())
    if (t >= t0 && t <= t1) ts.push_back(t);
  double m = 0.0;
  for (double t : ts) m = std::max(m, std::abs(a.eval(t) - b.eval(t)));
  return m;
}

std::optional<double> propagation_delay(const PwlWaveform& in,
                                        const PwlWaveform& out, double v_mid,
                                        bool in_rising, bool out_rising) {
  const auto t_in = in.crossing(v_mid, 0.0, in_rising);
  if (!t_in) return std::nullopt;
  const auto t_out = out.crossing(v_mid, *t_in, out_rising);
  if (!t_out) return std::nullopt;
  return *t_out - *t_in;
}

std::optional<double> transition_time(const PwlWaveform& w, double v_low,
                                      double v_high, bool rising) {
  if (rising) {
    const auto t0 = w.crossing(v_low, 0.0, true);
    if (!t0) return std::nullopt;
    const auto t1 = w.crossing(v_high, *t0, true);
    if (!t1) return std::nullopt;
    return *t1 - *t0;
  }
  const auto t0 = w.crossing(v_high, 0.0, false);
  if (!t0) return std::nullopt;
  const auto t1 = w.crossing(v_low, *t0, false);
  if (!t1) return std::nullopt;
  return *t1 - *t0;
}

}  // namespace qwm::numeric
