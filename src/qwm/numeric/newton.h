// Damped Newton–Raphson driver for small nonlinear algebraic systems.
//
// Shared by the SPICE engine (per-timestep device linearization) and the
// QWM engine (per-region waveform matching). The linear step is pluggable
// so QWM can route through the tridiagonal + Sherman–Morrison fast path
// while everything else uses dense LU.
#pragma once

#include <functional>
#include <vector>

#include "qwm/numeric/matrix.h"

namespace qwm::numeric {

struct NewtonOptions {
  int max_iterations = 60;
  /// Converged when ||F(x)||_inf < f_tolerance ...
  double f_tolerance = 1e-9;
  /// ... or when ||dx||_inf < x_tolerance (either suffices, matching the
  /// paper's "error F or update dx reaches a threshold").
  double x_tolerance = 1e-12;
  /// Step limiting: each component of dx is clamped to this magnitude
  /// (0 disables). Voltage-like unknowns rarely move more than a supply
  /// per iteration in a well-posed system.
  double max_step = 0.0;
  /// Backtracking line search: halve the step up to this many times while
  /// ||F|| does not decrease. 0 disables damping.
  int max_backtracks = 8;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;  ///< final ||F||_inf
  int linear_solves = 0;
};

/// Evaluates the residual F(x) into `f`. Must return false only on
/// unrecoverable evaluation failure (aborts the solve).
using ResidualFn = std::function<bool(const Vector& x, Vector& f)>;

/// Evaluates the Jacobian dF/dx at x into `j` (resized by the callee).
using JacobianFn = std::function<bool(const Vector& x, Matrix& j)>;

/// Solves the Newton step J dx = -f. Returns false to signal a singular
/// or otherwise failed linear solve (aborts the solve).
using LinearStepFn =
    std::function<bool(const Vector& x, const Vector& f, Vector& dx)>;

/// Newton iteration with a caller-provided linear step (fast-path solvers).
NewtonResult newton_solve(const ResidualFn& residual, const LinearStepFn& step,
                          Vector& x, const NewtonOptions& options = {});

/// Caller-owned iteration scratch (residuals, step, line-search trials).
/// Buffers grow to the system size on first use and are reused afterwards,
/// so a caller holding one NewtonScratch per lane runs allocation-free.
struct NewtonScratch {
  Vector f;
  Vector dx;
  Vector x_trial;
  Vector f_trial;
};

/// Scratch-reusing variant; bit-identical iterates to the allocating one.
NewtonResult newton_solve(const ResidualFn& residual, const LinearStepFn& step,
                          Vector& x, const NewtonOptions& options,
                          NewtonScratch& scratch);

/// Newton iteration with a dense-LU linear step built from `jacobian`.
NewtonResult newton_solve_dense(const ResidualFn& residual,
                                const JacobianFn& jacobian, Vector& x,
                                const NewtonOptions& options = {});

/// Builds a dense Jacobian of `residual` at `x` by forward differences.
/// `scale[i]` sets the perturbation for unknown i (h = eps * max(|x_i|,
/// scale_i)); pass empty to use 1.0 for every unknown. Intended for tests
/// (validating hand-coded Jacobians) and as a debugging fallback.
Matrix finite_difference_jacobian(const ResidualFn& residual, const Vector& x,
                                  const Vector& scale = {},
                                  double eps = 1e-7);

}  // namespace qwm::numeric
