#include "qwm/numeric/newton.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "qwm/support/fault_injection.h"

namespace qwm::numeric {

NewtonResult newton_solve(const ResidualFn& residual, const LinearStepFn& step,
                          Vector& x, const NewtonOptions& options) {
  NewtonScratch scratch;
  return newton_solve(residual, step, x, options, scratch);
}

NewtonResult newton_solve(const ResidualFn& residual, const LinearStepFn& step,
                          Vector& x, const NewtonOptions& options,
                          NewtonScratch& scratch) {
  NewtonResult result;
  const std::size_t n = x.size();
  scratch.f.assign(n, 0.0);
  scratch.dx.assign(n, 0.0);
  scratch.x_trial.assign(n, 0.0);
  scratch.f_trial.assign(n, 0.0);
  Vector& f = scratch.f;
  Vector& dx = scratch.dx;
  Vector& x_trial = scratch.x_trial;
  Vector& f_trial = scratch.f_trial;

  if (!residual(x, f)) return result;
  result.residual_norm = inf_norm(f);

  // Fault injection: a kNewtonStall rule forces non-convergence at
  // iteration k (= the rule's magnitude, so k=0 rejects immediately). The
  // stall reports an infinite residual — a hard divergence — so callers
  // with a small-residual acceptance escape hatch still see a failure.
  double stall_mag = 0.0;
  const int stall_iter =
      support::fire_fault(support::FaultSite::kNewtonStall, &stall_mag)
          ? static_cast<int>(stall_mag)
          : -1;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter;
    if (stall_iter >= 0 && iter >= stall_iter) {
      result.residual_norm = std::numeric_limits<double>::infinity();
      return result;
    }
    if (result.residual_norm < options.f_tolerance) {
      result.converged = true;
      return result;
    }
    if (!step(x, f, dx)) return result;  // singular linear system
    ++result.linear_solves;

    if (options.max_step > 0.0) {
      for (double& d : dx)
        d = std::clamp(d, -options.max_step, options.max_step);
    }

    // Backtracking: accept the first step that reduces ||F||, or the last
    // halved step if none does (plain Newton would take the full step).
    double lambda = 1.0;
    double trial_norm = 0.0;
    bool accepted = false;
    for (int bt = 0; bt <= options.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < n; ++i) x_trial[i] = x[i] + lambda * dx[i];
      if (residual(x_trial, f_trial)) {
        trial_norm = inf_norm(f_trial);
        if (std::isfinite(trial_norm) &&
            (options.max_backtracks == 0 || trial_norm < result.residual_norm ||
             bt == options.max_backtracks)) {
          accepted = true;
          break;
        }
      }
      lambda *= 0.5;
    }
    if (!accepted) return result;

    const double dx_norm = lambda * inf_norm(dx);
    x = x_trial;
    f = f_trial;
    result.residual_norm = trial_norm;
    if (dx_norm < options.x_tolerance) {
      result.converged = result.residual_norm < 1e3 * options.f_tolerance ||
                         result.residual_norm < options.f_tolerance;
      result.iterations = iter + 1;
      return result;
    }
  }
  result.iterations = options.max_iterations;
  result.converged = result.residual_norm < options.f_tolerance;
  return result;
}

NewtonResult newton_solve_dense(const ResidualFn& residual,
                                const JacobianFn& jacobian, Vector& x,
                                const NewtonOptions& options) {
  Matrix j;
  auto step = [&](const Vector& xc, const Vector& f, Vector& dx) -> bool {
    if (!jacobian(xc, j)) return false;
    LuFactorization lu(j);
    if (!lu.ok()) return false;
    Vector rhs(f.size());
    for (std::size_t i = 0; i < f.size(); ++i) rhs[i] = -f[i];
    dx = lu.solve(rhs);
    return true;
  };
  return newton_solve(residual, step, x, options);
}

Matrix finite_difference_jacobian(const ResidualFn& residual, const Vector& x,
                                  const Vector& scale, double eps) {
  const std::size_t n = x.size();
  Vector f0(n), f1(n);
  Vector xp = x;
  Matrix j(n, n);
  bool ok = residual(x, f0);
  assert(ok);
  (void)ok;
  for (std::size_t c = 0; c < n; ++c) {
    const double s = scale.empty() ? 1.0 : scale[c];
    const double h = eps * std::max(std::abs(x[c]), s);
    xp[c] = x[c] + h;
    ok = residual(xp, f1);
    assert(ok);
    for (std::size_t r = 0; r < n; ++r) j(r, c) = (f1[r] - f0[r]) / h;
    xp[c] = x[c];
  }
  return j;
}

}  // namespace qwm::numeric
