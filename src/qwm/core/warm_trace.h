// Converged per-region Newton solutions of one QWM evaluation, recorded
// so a later evaluation of a structurally identical problem at a nearby
// operating point (the STA memo cache's "near miss": same stage hash,
// adjacent slew/load bucket) can seed its region solves from them instead
// of running the end-current probes.
//
// A warm seed only changes the Newton iteration's starting point; the
// converged solution is still pinned by the same residual and tolerance,
// so delays move at the solver-tolerance level (~1e-8 relative), orders
// of magnitude inside the model's ~1% accuracy. See DESIGN.md "Hot path
// & memory discipline".
#pragma once

#include <cstddef>
#include <vector>

namespace qwm::core {

struct WarmTrace {
  struct Region {
    double delta = 0.0;          ///< converged region length [s]
    /// Converged waveform parameters (alpha per active node, r = 1 model).
    std::vector<double> alphas;
  };
  /// One entry per committed region solve, in commit order (turn-on wait
  /// regions commit without a solve and contribute no entry).
  std::vector<Region> regions;

  /// Total stored doubles — used to cap what the memo cache retains.
  std::size_t value_count() const {
    std::size_t n = 0;
    for (const Region& r : regions) n += 1 + r.alphas.size();
    return n;
  }
};

}  // namespace qwm::core
