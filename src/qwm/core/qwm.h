// Piecewise Quadratic Waveform Matching (QWM) — the paper's contribution.
//
// Instead of integrating the stage ODEs at thousands of time steps, QWM
// divides the charge/discharge transient into K regions separated by
// *critical points* — the instants successive path transistors turn on —
// and approximates every node current as linear in time inside a region,
// making every node voltage quadratic (paper Eq. 6), characterized by one
// parameter alpha^k per node. Matching the capacitor currents
// I^k = C^k dV^k/dt against the device-model channel currents at the next
// critical point yields one small algebraic system per region (paper
// Eq. 7), solved by Newton-Raphson over a Jacobian that is tridiagonal
// except for its last column — handled with the Thomas algorithm plus the
// Sherman-Morrison formula (paper §IV-B).
//
// The whole transient therefore costs on the order of K DC-operating-
// point-sized solves instead of a time-stepped integration.
#pragma once

#include <string>
#include <vector>

#include "qwm/circuit/path.h"
#include "qwm/core/warm_trace.h"
#include "qwm/core/waveform.h"
#include "qwm/numeric/pwl.h"

namespace qwm::core {

class EvalWorkspace;

enum class RegionModel {
  quadratic,  ///< linear current -> quadratic voltage (the paper's QWM)
  linear,     ///< constant current -> linear voltage (ablation baseline)
  /// Quadratic current -> cubic voltage with two parameters per node,
  /// matched at the region midpoint AND endpoint — the paper's "r time
  /// points" generalization (its stated future work). Regions can be
  /// several times longer at equal accuracy; the per-region system is
  /// solved densely (2K+1 unknowns).
  cubic,
};

enum class RegionSolver {
  tridiagonal,  ///< Thomas + Sherman-Morrison (paper §IV-B)
  dense_lu,     ///< full LU (ablation baseline)
};

struct QwmOptions {
  RegionModel model = RegionModel::quadratic;
  RegionSolver solver = RegionSolver::tridiagonal;
  /// After the last transistor turns on, the tail is matched at successive
  /// output-voltage targets (fractions of the total swing). The default is
  /// a uniform ladder fine enough to hold the delay metric near the
  /// paper's ~1% average error; coarser ladders trade accuracy for fewer
  /// region solves.
  std::vector<double> tail_fractions = default_tail_fractions();

  static std::vector<double> default_tail_fractions() {
    // 14 targets centered on each uniform sub-interval of [0.03, 0.95]:
    // measured ~1-1.8% delay error across stack lengths 2..10, with the
    // marginal accuracy of denser ladders under 0.5%.
    std::vector<double> f;
    const int n = 14;
    for (int i = 0; i < n; ++i) f.push_back(0.95 - 0.92 * (i + 0.5) / n);
    return f;
  }
  double t_max = 20e-9;       ///< give up beyond this time
  /// Per-region Newton budget. Converging regions need ~2-6 iterations;
  /// a region still unconverged here is handed to the adaptive splitter,
  /// so a tight budget fails fast instead of polishing a lost cause.
  int nr_max_iterations = 25;
  double f_tolerance = 1e-9;  ///< current-matching residual [A]
  /// Override initial node voltages (size = path node count); empty =
  /// worst-case precharge (all nodes at the far rail).
  std::vector<double> initial_voltages;
  /// Evaluate the path's devices through the concrete tabular model's
  /// batched SoA kernel when every transistor shares one (cached at
  /// path-build time). Bit-identical to the scalar per-device path — the
  /// toggle exists for the equivalence tests and ablation.
  bool batch_device_eval = true;
  /// Newton warm starts from a replay trace: when `warm` is supplied,
  /// each region's solve is seeded with the previously converged
  /// parameters instead of the end-current probe. A same-input replay
  /// converges in zero iterations and reproduces the cold result
  /// bit-for-bit; a near-miss replay (adjacent slew/load bucket) roughly
  /// halves the Newton iteration and device-evaluation counts. A region
  /// that fails from a warm seed is retried cold before being declared
  /// failed.
  bool warm_start = true;
  /// Additionally seed each tail region from the *previous region's*
  /// converged slopes within the same evaluation (no trace needed).
  /// Ablation only, default off: on heterogeneous stacks the previous
  /// region is a poor seed — most attempts fall back to the cold retry —
  /// and converged results are not bit-stable against the cold path.
  bool warm_intra = false;
  /// Record the converged per-region solutions into QwmResult::trace
  /// (for memo-cache near-miss replay).
  bool record_trace = false;
  /// Optional replay seed from a previous evaluation of a structurally
  /// identical problem at a nearby operating point. Not owned; must
  /// outlive the call. Ignored unless warm_start is set.
  const WarmTrace* warm = nullptr;
  /// Scale applied to the replayed region lengths of `warm`. A trace
  /// recorded at a different operating condition (another process corner)
  /// has the right waveform *shape* but systematically wrong region
  /// *durations*; seeding with the drive-strength ratio applied brings the
  /// Newton start point onto the new corner's time scale. 1.0 = replay
  /// the recorded lengths verbatim (same-condition near-miss).
  double warm_scale = 1.0;
  /// Prints the per-iteration Newton trajectory to stderr (debugging).
  bool trace = false;
};

/// Rung indices of the fallback ladder (QwmStats::fallback_counts).
enum FallbackRung : int {
  kRungNominal = 0,   ///< plain NR (the paper's solve) resolved the region
  kRungDamped = 1,    ///< damped NR re-solve (wider iteration/backtrack budget)
  kRungBisect = 2,    ///< bracketed bisection on the region-boundary residual
  kRungSpice = 3,     ///< last resort: per-stage SPICE transient
  kFallbackRungs = 4,
};

struct QwmStats {
  std::size_t regions = 0;
  std::size_t newton_iterations = 0;
  std::size_t linear_solves = 0;
  std::size_t device_evals = 0;
  std::size_t lu_fallbacks = 0;   ///< tridiagonal path bailed to dense LU
  std::size_t warm_starts = 0;    ///< region solves seeded warm
  std::size_t warm_retries = 0;   ///< warm seeds that fell back to cold
  /// Batched device-eval groups issued to the frame kernel, counted in
  /// kernel::kSimdWidth-lane groups (ceil(n / width) per batch call), and
  /// the useful lanes inside them. Both are computed from batch sizes with
  /// the fixed logical width, so the values are identical on every backend
  /// and host — lanes_filled / (width * batches) is the occupancy.
  std::size_t simd_batches = 0;
  std::size_t simd_lanes_filled = 0;
  /// Ladder outcome per top-level region objective: [0] resolved by the
  /// nominal machinery, [1] by the damped NR rung, [2] by the bisection
  /// rung. [3] counts whole-path SPICE evaluations (the rung that replaces
  /// the evaluation rather than one region). A clean run has
  /// fallback_counts[1..3] == 0.
  std::size_t fallback_counts[kFallbackRungs] = {0, 0, 0, 0};

  std::size_t fallback_total() const {
    return fallback_counts[kRungDamped] + fallback_counts[kRungBisect] +
           fallback_counts[kRungSpice];
  }

  QwmStats& operator+=(const QwmStats& o) {
    regions += o.regions;
    newton_iterations += o.newton_iterations;
    linear_solves += o.linear_solves;
    device_evals += o.device_evals;
    lu_fallbacks += o.lu_fallbacks;
    warm_starts += o.warm_starts;
    warm_retries += o.warm_retries;
    simd_batches += o.simd_batches;
    simd_lanes_filled += o.simd_lanes_filled;
    for (int r = 0; r < kFallbackRungs; ++r)
      fallback_counts[r] += o.fallback_counts[r];
    return *this;
  }
};

struct QwmResult {
  bool ok = false;
  std::string error;
  /// True when the result came from a fallback rung (damped NR, bisection,
  /// or the SPICE golden path) rather than the nominal solve. Degraded
  /// results are within documented tolerance of golden but not
  /// bit-reproducible by the nominal path; callers (the STA memo cache,
  /// the service) must not treat them as nominal.
  bool degraded = false;
  /// Failure taxonomy: true when `!ok` because the region solver (all
  /// in-process rungs) failed, as opposed to a semantic problem with the
  /// input (empty path, gate never turns on, t_max exceeded, ...). Only
  /// solver failures are eligible for the SPICE last-resort rung.
  bool solver_failure = false;
  /// True when one of the last tail targets failed to converge and the
  /// waveform was truncated there (the quasi-static deep tail is
  /// ill-conditioned for current matching; the transition itself is
  /// complete at that point).
  bool tail_truncated = false;
  /// Waveform of every path node (index = path position - 1).
  std::vector<PiecewiseQuadWaveform> node_waveforms;
  /// Region boundaries: the critical points (turn-on instants), then the
  /// tail matching points.
  std::vector<double> critical_times;
  QwmStats stats;
  /// Converged per-region solutions (populated when options.record_trace).
  WarmTrace trace;

  const PiecewiseQuadWaveform& output_waveform() const {
    return node_waveforms.back();
  }
};

/// Evaluates a lumped path problem. `inputs[i]` is the waveform of stage
/// input i (only inputs referenced by path elements are consulted).
QwmResult evaluate_path(const circuit::PathProblem& problem,
                        const std::vector<numeric::PwlWaveform>& inputs,
                        const QwmOptions& options = {});

/// Scratch-reusing variant: all region-solve storage comes from `ws`
/// (grow-only; see workspace.h). After a warm-up evaluation at a given
/// path size, the region-solve hot path performs no heap allocation.
/// Results are bit-identical to the allocating overload.
QwmResult evaluate_path(const circuit::PathProblem& problem,
                        const std::vector<numeric::PwlWaveform>& inputs,
                        const QwmOptions& options, EvalWorkspace& ws);

}  // namespace qwm::core
