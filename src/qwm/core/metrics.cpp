#include "qwm/core/metrics.h"

#include <cmath>
#include <sstream>

namespace qwm::core {

ThresholdTable threshold_crossings(const PiecewiseQuadWaveform& w, double vdd,
                                   bool falling,
                                   const std::vector<double>& fractions) {
  ThresholdTable t;
  t.fractions = fractions;
  for (double f : fractions) {
    (void)falling;  // the analytic crossing search is direction-free; the
                    // fractions themselves encode which edge is probed
    t.times.push_back(w.crossing(f * vdd));
  }
  return t;
}

WaveformComparison compare_waveforms(const PiecewiseQuadWaveform& evaluated,
                                     const numeric::PwlWaveform& ref,
                                     double vdd, bool falling, double t0,
                                     double t1,
                                     const std::vector<double>& fractions,
                                     int samples) {
  WaveformComparison out;
  out.fractions = fractions;

  double sum_sq = 0.0;
  for (int i = 0; i <= samples; ++i) {
    const double t = t0 + (t1 - t0) * i / samples;
    const double e = evaluated.eval(t) - ref.eval(t);
    out.max_abs_error = std::max(out.max_abs_error, std::abs(e));
    sum_sq += e * e;
  }
  out.rms_error = std::sqrt(sum_sq / (samples + 1));

  for (double f : fractions) {
    const double level = f * vdd;
    const auto te = evaluated.crossing(level, t0);
    const auto tr = ref.crossing(level, t0, falling ? std::optional<bool>(false)
                                                    : std::optional<bool>(true));
    if (te && tr) {
      const double skew = *te - *tr;
      out.crossing_skew.push_back(skew);
      out.worst_skew = std::max(out.worst_skew, std::abs(skew));
    } else {
      out.crossing_skew.push_back(std::nullopt);
    }
  }
  return out;
}

std::string format_comparison(const WaveformComparison& c) {
  std::ostringstream os;
  os << "max |error| " << c.max_abs_error * 1e3 << " mV, rms "
     << c.rms_error * 1e3 << " mV\n";
  for (std::size_t i = 0; i < c.fractions.size(); ++i) {
    os << "  " << c.fractions[i] * 100 << "% crossing skew: ";
    if (c.crossing_skew[i])
      os << *c.crossing_skew[i] * 1e12 << " ps\n";
    else
      os << "n/a\n";
  }
  os << "worst skew " << c.worst_skew * 1e12 << " ps\n";
  return os.str();
}

}  // namespace qwm::core
