#include "qwm/core/qwm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <cstdio>

#include "qwm/core/spice_fallback.h"
#include "qwm/core/workspace.h"
#include "qwm/numeric/matrix.h"
#include "qwm/numeric/newton.h"
#include "qwm/numeric/roots.h"
#include "qwm/numeric/sherman_morrison.h"
#include "qwm/numeric/tridiagonal.h"
#include "qwm/support/fault_injection.h"

namespace qwm::core {

namespace {

using circuit::PathProblem;
using Element = PathProblem::Element;

/// Scale applied to the boundary (turn-on / target-crossing) residual so
/// it lives in ampere-like units alongside the current-matching rows.
constexpr double kBoundaryScale = 1e-3;  // [S]
constexpr double kMinRegionDt = 1e-16;   // [s]

/// Maps a device-model evaluation onto the element's event-direction
/// current (sign and near/far terminal bookkeeping). One function shared
/// by the scalar and batched device paths so both produce identical bits.
/// iv flows src -> snk. Event direction matches src -> snk exactly when
/// src_is_far == discharge (see path.h orientation notes).
inline ElementCurrent map_iv(const Element& el, bool discharge,
                             const device::IvEval& iv) {
  const double sign = (el.src_is_far == discharge) ? 1.0 : -1.0;
  ElementCurrent out;
  out.j = sign * iv.i;
  out.d_gate = sign * iv.d_input;
  if (el.src_is_far) {
    out.d_far = sign * iv.d_src;
    out.d_near = sign * iv.d_snk;
  } else {
    out.d_near = sign * iv.d_src;
    out.d_far = sign * iv.d_snk;
  }
  return out;
}

class Engine {
 public:
  Engine(const PathProblem& prob, const std::vector<numeric::PwlWaveform>& in,
         const QwmOptions& opt, EvalWorkspace& ws)
      : prob_(prob),
        inputs_(in),
        opt_(opt),
        ws_(ws),
        v_(ws.v_node),
        i_(ws.i_node),
        on_(ws.on_flags) {}

  QwmResult run();

 private:
  const PathProblem& prob_;
  const std::vector<numeric::PwlWaveform>& inputs_;
  const QwmOptions& opt_;
  EvalWorkspace& ws_;
  QwmResult res_;

  int m_ = 0;          ///< number of path positions
  double v_rail_ = 0;  ///< event rail voltage
  double v_far_ = 0;   ///< opposite rail (worst-case precharge level)
  double tau_ = 0.0;
  std::vector<double>& v_;  ///< node voltages; v_[0] = rail, v_[1..m]
  std::vector<double>& i_;  ///< node currents C dV/dt, index 1..m
  std::vector<char>& on_;   ///< per element: conducting?

  /// The single concrete tabular model shared by every transistor element
  /// (resolved once per run), or nullptr -> scalar per-device path.
  const device::TabularDeviceModel* batch_model_ = nullptr;
  /// Frame-mirror constants hoisted out of the batched gather/scatter:
  /// the model is uniform, so the PMOS mirror applies to every lane or
  /// none. batch_pm_ is the back-map current sign (-1 for PMOS, else +1).
  bool batch_pmos_ = false;
  double batch_pm_ = 1.0;
  double batch_vdd_ = 0.0;

  // Warm-start state: replay cursor into opt_.warm and the previous tail
  // region's converged solution (stored in ws_.prev_tail).
  int trace_next_ = 0;
  bool have_prev_tail_ = false;
  int prev_tail_active_ = -1;
  /// Running region-length and alpha scales for cross-condition replay
  /// (negative = not yet primed). Both start from options.warm_scale — a
  /// first-order drive-ratio estimate (lengths scale by s, the ramp-rate
  /// alphas by 1/s^2) — then track the measured converged/recorded ratio
  /// region to region, so the seed self-corrects along the waveform
  /// instead of trusting the static estimate everywhere. Only active when
  /// options.warm_scale != 1: verbatim same-condition replay stays
  /// bit-identical to the unscaled path.
  double warm_scale_run_ = -1.0;
  double warm_alpha_run_ = -1.0;
  /// Active count at the last plain (depth-0 tail) solve_region commit,
  /// -1 when the incremental region-start currents in i_ are stale (after
  /// a turn-on boundary, a sub-step, or a fallback/cubic commit). While
  /// >= the next region's active count, i_ equals the device currents at
  /// the committed state to within the Newton tolerance, so a
  /// cross-corner replay region can skip the update_currents re-eval.
  int i_fresh_active_ = -1;

  /// Fallback-ladder rung 1: solve_region widens the Newton budget
  /// (double the iterations, triple the backtracks) while this is set.
  bool damped_ = false;

  /// Context of the r = 1 region solve in flight. Lives on the engine so
  /// the Newton callbacks capture only `this` (small enough for
  /// std::function's inline storage: no per-region heap traffic).
  struct RegionCtx {
    int n = 0;
    int active = 0;
    int boundary_elem = -1;
    int target_node = 0;
    double v_target = 0.0;
    bool quad = true;
    bool off_band = false;
    double boundary_offband = 0.0;
  };
  RegionCtx rc_;

  double gate_voltage(const Element& el, double t) const;
  double gate_slope(const Element& el, double t) const;
  /// Event-direction current through element e given full voltages vv.
  ElementCurrent current(std::size_t e, const std::vector<double>& vv,
                         double t);
  /// Fills jc[0..active+1] with every element's event-direction current:
  /// jc[e + 1] holds element e (zero past the element list); jc[0] stays
  /// zero. Takes the batched SoA kernel when batch_model_ is set.
  void eval_element_currents(int active, const std::vector<double>& vv,
                             double t, std::vector<ElementCurrent>& jc);
  /// Turn-on residual of a transistor element: positive = conducting.
  double turn_on_residual(std::size_t e, const std::vector<double>& vv,
                          double t) const;
  /// d(vth)/d(source voltage) by central difference (body effect term in
  /// the boundary-row Jacobian). Perturbs vv[e] in place and restores it.
  double vth_slope(std::size_t e, std::vector<double>& vv, double t) const;

  void refresh_on_flags(double slack);
  int first_off_transistor() const;
  /// Recomputes node currents i_[1..active] from KCL at (v_, tau_).
  void update_currents(int active);
  /// KCL node currents using start voltages but gates advanced by dt.
  void probe_end_currents(int active, double dt, std::vector<double>& i_end);
  void record_region(double t0, double dt, int active,
                     const std::vector<double>& accel,
                     const std::vector<double>& slope);
  /// warm_dt > 0 overrides the warm seed's region length (used by the
  /// intra-path seed, whose alphas come from the previous region but
  /// whose length estimate from the current state is better).
  /// warm_alpha_scale multiplies the seed's recorded alphas — the
  /// cross-condition mapping onto the new condition's current scale
  /// (1.0 = same-condition replay, seeded verbatim).
  bool solve_region(int active, int boundary_elem, double v_target,
                    int target_node, double delta_guess,
                    const WarmTrace::Region* warm, double warm_dt = 0.0,
                    double warm_alpha_scale = 1.0);
  /// The r = 2 generalization (paper's "r time points"): quadratic node
  /// currents / cubic voltages, matched at the region midpoint and
  /// endpoint. Dense per-region solve over 2*active+1 unknowns.
  bool solve_region_cubic(int active, int boundary_elem, double v_target,
                          int target_node, double delta_guess);
  /// solve_region with automatic bisection on failure: a region whose
  /// single end-point match will not converge (deep stiff-cluster tails,
  /// very long regions) is split at an intermediate voltage of the
  /// governing node and retried. `depth` bounds the recursion.
  bool solve_region_adaptive(int active, int boundary_elem, double v_target,
                             int target_node, int depth);
  /// Fallback-ladder rung 2: Newton-free region solve. For a trial region
  /// length Delta the current-matching alphas are driven to their fixed
  /// point by damped Picard iteration, then the boundary residual is
  /// bracketed and bisected over Delta. Slower and less accurate than the
  /// Newton solve, but immune to Jacobian pathologies.
  bool solve_region_bisect(int active, int boundary_elem, double v_target,
                           int target_node);
  bool advance_to_first_turn_on(std::size_t e);
  double estimate_delta(int active, int boundary_elem, double v_target,
                        int target_node) const;

  // r = 1 Newton callbacks (operate on rc_ and the workspace buffers).
  void node_voltages(const numeric::Vector& xx, std::vector<double>& out);
  double ensure_state(const numeric::Vector& xx);
  bool region_residual(const numeric::Vector& xx, numeric::Vector& f);
  void region_assemble(const numeric::Vector& xx);
  bool region_step(const numeric::Vector& xx, const numeric::Vector& f,
                   numeric::Vector& dx);
  /// Bookkeeping shared by the r = 1 and r = 2 commits: advances the
  /// replay cursor and records the trace entry.
  void note_commit(double dt, const numeric::Vector& xv, int active,
                   bool placeholder);

  void fail(const std::string& msg) {
    res_.ok = false;
    res_.error = msg;
  }
};

double Engine::gate_voltage(const Element& el, double t) const {
  if (el.input >= 0 && el.input < static_cast<int>(inputs_.size()))
    return inputs_[el.input].eval(t);
  return el.static_gate;
}

double Engine::gate_slope(const Element& el, double t) const {
  if (el.input >= 0 && el.input < static_cast<int>(inputs_.size()))
    return inputs_[el.input].slope(t);
  return 0.0;
}

ElementCurrent Engine::current(std::size_t e, const std::vector<double>& vv,
                               double t) {
  const Element& el = prob_.elements[e];
  const double v_near = vv[e];      // position e
  const double v_far = vv[e + 1];   // position e + 1
  if (el.kind == Element::Kind::resistor) {
    // Event direction: discharge pulls far -> near, charge pushes
    // near -> far.
    const double g = 1.0 / el.resistance;
    const double dir = prob_.discharge ? 1.0 : -1.0;
    ElementCurrent out;
    out.j = dir * g * (v_far - v_near);
    out.d_far = dir * g;
    out.d_near = -dir * g;
    return out;
  }
  ++res_.stats.device_evals;
  device::TerminalVoltages tv;
  tv.input = gate_voltage(el, t);
  if (el.src_is_far) {
    tv.src = v_far;
    tv.snk = v_near;
  } else {
    tv.src = v_near;
    tv.snk = v_far;
  }
  // Devirtualized fast path when the concrete tabular model was cached at
  // path-build time; identical arithmetic either way.
  const device::IvEval iv = el.tabular != nullptr
                                ? el.tabular->iv_eval_fast(el.w, el.l, tv)
                                : el.model->iv_eval(el.w, el.l, tv);
  return map_iv(el, prob_.discharge, iv);
}

void Engine::eval_element_currents(int active, const std::vector<double>& vv,
                                   double t,
                                   std::vector<ElementCurrent>& jc) {
  jc.assign(active + 2, ElementCurrent{});
  const int e_max =
      std::min(active, static_cast<int>(prob_.elements.size()) - 1);
  if (batch_model_ == nullptr) {
    for (int e = 0; e <= e_max; ++e) jc[e + 1] = current(e, vv, t);
    return;
  }
  // Batched SoA path: gather every transistor's frame coordinates (the
  // to_frame() arithmetic inlined, with the PMOS mirror hoisted out of the
  // per-lane branch since the model is uniform), run one eval_frames over
  // the shared table, then scatter each result straight into jc with the
  // fused from_frame()+map_iv() back-map. The per-element sign and
  // geometry-scale coefficients come from the precomputed element plan;
  // every lane's arithmetic is bit-identical to the scalar path (sign
  // factors are exact ±1 multiplies, the scale product uses the same
  // operand association).
  double* fg = ws_.frame_g.data();
  double* flo = ws_.frame_lo.data();
  double* fhi = ws_.frame_hi.data();
  device::TabularDeviceModel::FrameEval* fe = ws_.frame_eval.data();
  int* fidx = ws_.frame_elem.data();
  char* fswap = ws_.frame_swap.data();
  const ElementPlan* plan = ws_.elem_plan.data();
  std::size_t nb = 0;
  for (int e = 0; e <= e_max; ++e) {
    const ElementPlan& p = plan[e];
    if (p.is_resistor) {
      ElementCurrent out;
      out.j = p.g_dir * (vv[e + 1] - vv[e]);
      out.d_far = p.g_dir;
      out.d_near = -p.g_dir;
      jc[e + 1] = out;
      continue;
    }
    double g = gate_voltage(prob_.elements[e], t);
    double fa, fb;
    if (p.src_is_far) {
      fa = vv[e + 1];
      fb = vv[e];
    } else {
      fa = vv[e];
      fb = vv[e + 1];
    }
    if (batch_pmos_) {
      g = batch_vdd_ - g;
      fa = batch_vdd_ - fa;
      fb = batch_vdd_ - fb;
    }
    fg[nb] = g;
    if (fa >= fb) {
      flo[nb] = fb;
      fhi[nb] = fa;
      fswap[nb] = 0;
    } else {
      flo[nb] = fa;
      fhi[nb] = fb;
      fswap[nb] = 1;
    }
    fidx[nb] = e;
    ++nb;
  }
  res_.stats.device_evals += nb;
  res_.stats.simd_batches += (nb + device::kernel::kSimdWidth - 1) /
                             device::kernel::kSimdWidth;
  res_.stats.simd_lanes_filled += nb;
  batch_model_->eval_frames(nb, fg, flo, fhi, fe);
  for (std::size_t b = 0; b < nb; ++b) {
    const int e = fidx[b];
    const ElementPlan& p = plan[e];
    // Swapped terminals flip every component's sign and exchange which
    // frame derivative feeds the far node; both fold into one ±sgn
    // coefficient and one routing flag (see map_iv for the case table).
    const bool sw = fswap[b] != 0;
    const double csw = sw ? -p.sgn : p.sgn;
    const double i = fe[b].i * p.scale;
    const double dg = fe[b].d_vg * p.scale;
    const double ds = fe[b].d_vs * p.scale;
    const double dd = fe[b].d_vd * p.scale;
    const bool far_from_vd = (p.src_is_far != 0) != sw;
    ElementCurrent out;
    out.j = batch_pm_ * (csw * i);
    out.d_gate = csw * dg;
    out.d_far = csw * (far_from_vd ? dd : ds);
    out.d_near = csw * (far_from_vd ? ds : dd);
    jc[e + 1] = out;
  }
}

double Engine::turn_on_residual(std::size_t e, const std::vector<double>& vv,
                                double t) const {
  const Element& el = prob_.elements[e];
  assert(el.kind == Element::Kind::transistor);
  device::TerminalVoltages tv;
  tv.input = gate_voltage(el, t);
  tv.src = el.src_is_far ? vv[e + 1] : vv[e];
  tv.snk = el.src_is_far ? vv[e] : vv[e + 1];
  const double vth = el.model->threshold(tv);
  // NMOS (discharge path): conducts when G >= V_source + Vth, with the
  // source at the rail-near side during the event. PMOS (charge path):
  // conducts when G <= V_source - Vth, source at the rail-near side
  // (being charged toward VDD).
  const double v_source = vv[e];
  if (prob_.discharge) return tv.input - v_source - vth;
  return v_source - tv.input - vth;
}

double Engine::vth_slope(std::size_t e, std::vector<double>& vv,
                         double t) const {
  // Perturb the single source-side entry and restore it — the full-vector
  // copy this used to make per call was the hot path's largest single
  // allocation source.
  const double h = 1e-3;
  const double saved = vv[e];
  vv[e] = saved + h;
  const double r1 = turn_on_residual(e, vv, t);
  vv[e] = saved;
  const double r0 = turn_on_residual(e, vv, t);
  // turn_on_residual already contains the -dV_source term (+-1); isolate
  // d(residual)/dV_source as a whole instead — callers use it directly.
  return (r1 - r0) / h;
}

void Engine::refresh_on_flags(double slack) {
  for (std::size_t e = 0; e < prob_.elements.size(); ++e) {
    if (prob_.elements[e].kind == Element::Kind::resistor) {
      on_[e] = 1;
      continue;
    }
    if (!on_[e] && turn_on_residual(e, v_, tau_) >= -slack) on_[e] = 1;
  }
}

int Engine::first_off_transistor() const {
  for (std::size_t e = 0; e < prob_.elements.size(); ++e)
    if (!on_[e]) return static_cast<int>(e);
  return -1;
}

void Engine::record_region(double t0, double dt, int active,
                           const std::vector<double>& accel,
                           const std::vector<double>& slope) {
  (void)dt;
  for (int k = 1; k <= m_; ++k) {
    if (k <= active)
      res_.node_waveforms[k - 1].add_piece(t0, v_[k], slope[k], accel[k]);
    else
      res_.node_waveforms[k - 1].add_piece(t0, v_[k], 0.0, 0.0);
  }
}

bool Engine::advance_to_first_turn_on(std::size_t e) {
  // No dynamics yet: the boundary is a pure crossing of the gate waveform
  // against the (constant) turn-on level.
  const Element& el = prob_.elements[e];
  device::TerminalVoltages tv;
  tv.input = gate_voltage(el, tau_);
  tv.src = el.src_is_far ? v_[e + 1] : v_[e];
  tv.snk = el.src_is_far ? v_[e] : v_[e + 1];
  const double vth = el.model->threshold(tv);
  const double level =
      prob_.discharge ? v_[e] + vth : v_[e] - vth;

  if (el.input < 0 || el.input >= static_cast<int>(inputs_.size())) {
    fail("path transistor with static gate never turns on");
    return false;
  }
  const auto t_on = inputs_[el.input].crossing(
      level, tau_, prob_.discharge /* rising gate turns NMOS on */);
  if (!t_on) {
    fail("switching input never reaches the turn-on level");
    return false;
  }
  // Hold every node flat until the turn-on instant.
  ws_.accel.assign(m_ + 1, 0.0);
  record_region(tau_, *t_on - tau_, /*active=*/0, ws_.accel, ws_.accel);
  tau_ = *t_on;
  on_[e] = 1;
  res_.critical_times.push_back(tau_);
  return true;
}

double Engine::estimate_delta(int active, int boundary_elem, double v_target,
                              int target_node) const {
  // Time for the governing node to drift to its boundary level at its
  // present current, bounded to something sane.
  const int k = (boundary_elem >= 0) ? boundary_elem : target_node;
  double dv;
  if (boundary_elem >= 0) {
    const Element& el = prob_.elements[boundary_elem];
    device::TerminalVoltages tv;
    tv.input = gate_voltage(el, tau_);
    tv.src = tv.snk = v_[k];
    const double vth = el.model->threshold(tv);
    const double level = prob_.discharge ? tv.input - vth : tv.input + vth;
    dv = level - v_[k];
  } else {
    dv = v_target - v_[k];
  }
  double slope = i_[k] / prob_.node_caps[k - 1];
  (void)active;
  if (std::abs(slope) < 1e-3) slope = std::copysign(1e9, dv);  // 1 V/ns floor
  double dt = dv / slope;
  if (!(dt > 0.0) || !std::isfinite(dt)) dt = 1e-12;
  return std::clamp(dt, 1e-14, 2e-9);
}

void Engine::probe_end_currents(int active, double dt,
                                std::vector<double>& i_end) {
  // Expected node currents near the region end. Two effects drive the
  // growth from the ~zero start currents at a critical point: the gate
  // waveforms advance by dt (the first region's step input rising past
  // threshold), and the active nodes drift along their present current
  // trajectory (an interior region, where the just-turned-on transistor's
  // drive grows as the node below it keeps falling). The drift is applied
  // per resistor-connected *cluster* (summed current over summed cap):
  // wire resistances are fast relative to region lengths, so clustered
  // nodes move quasi-statically together — extrapolating them
  // independently would fabricate enormous resistor currents. Drift is
  // clamped to the rail range so an over-long dt cannot probe unphysical
  // voltages.
  const double v_lo = std::min(v_rail_, v_far_);
  const double v_hi = std::max(v_rail_, v_far_);
  std::vector<double>& vp = ws_.vp;
  vp = v_;
  for (int k = 1; k <= active;) {
    // Cluster [k, k_end]: positions joined by resistor elements.
    int k_end = k;
    double i_sum = i_[k];
    double c_sum = prob_.node_caps[k - 1];
    while (k_end < active &&
           prob_.elements[k_end].kind == Element::Kind::resistor) {
      ++k_end;
      i_sum += i_[k_end];
      c_sum += prob_.node_caps[k_end - 1];
    }
    const double dv = i_sum * dt / c_sum;
    for (int j = k; j <= k_end; ++j)
      vp[j] = std::clamp(v_[j] + dv, v_lo, v_hi);
    k = k_end + 1;
  }
  eval_element_currents(active, vp, tau_ + dt, ws_.jc);
  i_end.assign(active + 1, 0.0);
  for (int k = 1; k <= active; ++k) {
    const double j_lower = ws_.jc[k].j;
    const double j_upper = ws_.jc[k + 1].j;
    i_end[k] = prob_.discharge ? (j_upper - j_lower) : (j_lower - j_upper);
  }
}

void Engine::update_currents(int active) {
  // Element e's current feeds position e+1 from below; position k's lower
  // element is k-1 and upper element is k (0-based element ids).
  // KCL: discharge: C dV/dt = J_upper - J_lower; charge: the reverse.
  // Currents are taken at tau+ (a couple of femtoseconds past the region
  // boundary) so that a step input that just crossed threshold reads its
  // post-step drive, not the pre-step value frozen at the crossing.
  const double t_plus = tau_ + 2e-15;
  eval_element_currents(active, v_, t_plus, ws_.jc);
  for (int k = 1; k <= active; ++k) {
    const double j_lower = ws_.jc[k].j;
    const double j_upper = ws_.jc[k + 1].j;
    i_[k] = prob_.discharge ? (j_upper - j_lower) : (j_lower - j_upper);
  }
}

void Engine::node_voltages(const numeric::Vector& xx,
                           std::vector<double>& out) {
  const double dt = std::max(xx[rc_.active], kMinRegionDt);
  out = v_;
  const double* ic = ws_.inv_caps.data();
  for (int k = 1; k <= rc_.active; ++k) {
    if (rc_.quad)
      out[k] += (i_[k] * dt + 0.5 * xx[k - 1] * dt * dt) * ic[k - 1];
    else
      out[k] += xx[k - 1] * dt * ic[k - 1];
  }
}

double Engine::ensure_state(const numeric::Vector& xx) {
  // The Newton driver evaluates the residual and then the Jacobian at the
  // same point; cache the (voltages, currents) state so the assembly does
  // not re-query the device models.
  const double dt = std::max(xx[rc_.active], kMinRegionDt);
  if (ws_.cache_x.size() != xx.size() ||
      !std::equal(ws_.cache_x.begin(), ws_.cache_x.end(), xx.begin())) {
    node_voltages(xx, ws_.vv);
    eval_element_currents(rc_.active, ws_.vv, tau_ + dt, ws_.jc);
    ws_.cache_x.assign(xx.begin(), xx.end());
  }
  return dt;
}

bool Engine::region_residual(const numeric::Vector& xx, numeric::Vector& f) {
  const double dt = ensure_state(xx);
  const double t1 = tau_ + dt;
  const int n = rc_.n;
  const std::vector<ElementCurrent>& jc = ws_.jc;
  f.resize(n);  // rows 0..active-1 and the boundary row are all written
  for (int k = 1; k <= rc_.active; ++k) {
    const double i_end = rc_.quad ? i_[k] + xx[k - 1] * dt : xx[k - 1];
    const double kcl = prob_.discharge ? (jc[k + 1].j - jc[k].j)
                                       : (jc[k].j - jc[k + 1].j);
    f[k - 1] = i_end - kcl;
  }
  if (rc_.boundary_elem >= 0)
    f[rc_.active] =
        kBoundaryScale * turn_on_residual(rc_.boundary_elem, ws_.vv, t1);
  else
    f[rc_.active] = kBoundaryScale * (ws_.vv[rc_.target_node] - rc_.v_target);
  if (opt_.trace) {
    std::fprintf(stderr, "[qwm] tau=%.3e x=[", tau_);
    for (int i2 = 0; i2 < n; ++i2) std::fprintf(stderr, " %.4e", xx[i2]);
    std::fprintf(stderr, " ] F=[");
    for (int i2 = 0; i2 < n; ++i2) std::fprintf(stderr, " %.4e", f[i2]);
    std::fprintf(stderr, " ] V=[");
    for (int k = 1; k <= m_; ++k) std::fprintf(stderr, " %.4f", ws_.vv[k]);
    std::fprintf(stderr, " ]\n");
  }
  return true;
}

void Engine::region_assemble(const numeric::Vector& xx) {
  // Jacobian pieces: tridiagonal block over the waveform parameters plus
  // the dense last (Delta) column, captured as A + u e_n^T. Split
  // sub-regions targeting an interior node add one off-band entry in the
  // boundary row (dense path only).
  const double dt = ensure_state(xx);
  const double t1 = tau_ + dt;
  const int n = rc_.n;
  const int active = rc_.active;
  numeric::Tridiagonal& a = ws_.tri;
  std::vector<double>& u = ws_.u_col;
  std::vector<double>& v_col = ws_.v_col;
  const std::vector<ElementCurrent>& jc = ws_.jc;
  // Every band/column entry is written below (zeros explicitly), so the
  // scratch only needs sizing — no clearing pass per Newton iteration.
  a.lower.resize(n);
  a.diag.resize(n);
  a.upper.resize(n);
  u.resize(n);
  if (v_col.size() != static_cast<std::size_t>(n)) {
    v_col.assign(n, 0.0);  // rank-one selector e_n, constant per size
    v_col[n - 1] = 1.0;
  }

  // dV_k(t1)/d x_{k-1} and /d Delta. Index 0 is never read (guards below).
  std::vector<double>& dv_dx = ws_.dv_dx;
  std::vector<double>& dv_ddt = ws_.dv_ddt;
  dv_dx.resize(active + 1);
  dv_ddt.resize(active + 1);
  const double* ic = ws_.inv_caps.data();
  for (int k = 1; k <= active; ++k) {
    const double c_inv = ic[k - 1];
    dv_dx[k] = rc_.quad ? 0.5 * dt * dt * c_inv : dt * c_inv;
    dv_ddt[k] =
        rc_.quad ? (i_[k] + xx[k - 1] * dt) * c_inv : xx[k - 1] * c_inv;
  }

  for (int k = 1; k <= active; ++k) {
    const int r = k - 1;
    // d i_end / d x and / d Delta.
    const double diag_own = rc_.quad ? dt : 1.0;
    double du = rc_.quad ? xx[k - 1] : 0.0;

    // d kcl / ... : kcl = dsgn * (J_{k+1} - J_k) * -1 ... expand:
    // discharge: kcl = J_upper - J_lower = jc[k+1].j - jc[k].j
    // charge:    kcl = jc[k].j - jc[k+1].j
    // F = i_end - kcl  =>  dF = d i_end - d kcl.
    // J_lower = element k-1: near = position k-1, far = position k.
    // J_upper = element k:   near = position k,   far = position k+1.
    double dkcl_dvm1, dkcl_dv, dkcl_dvp1;
    if (prob_.discharge) {
      dkcl_dvm1 = -jc[k].d_near;
      dkcl_dv = jc[k + 1].d_near - jc[k].d_far;
      dkcl_dvp1 = jc[k + 1].d_far;
    } else {
      dkcl_dvm1 = jc[k].d_near;
      dkcl_dv = jc[k].d_far - jc[k + 1].d_near;
      dkcl_dvp1 = -jc[k + 1].d_far;
    }
    // Gate terms (input waveforms move with t1 = tau + Delta).
    double dkcl_ddt_gate = 0.0;
    if (k - 1 <= active) {
      const double gs_low =
          (prob_.elements[k - 1].kind == Element::Kind::transistor)
              ? gate_slope(prob_.elements[k - 1], t1)
              : 0.0;
      const double gs_up =
          (k < static_cast<int>(prob_.elements.size()) &&
           prob_.elements[k].kind == Element::Kind::transistor)
              ? gate_slope(prob_.elements[k], t1)
              : 0.0;
      if (prob_.discharge)
        dkcl_ddt_gate = jc[k + 1].d_gate * gs_up - jc[k].d_gate * gs_low;
      else
        dkcl_ddt_gate = jc[k].d_gate * gs_low - jc[k + 1].d_gate * gs_up;
    }

    // Chain through dV/dx (only active positions move).
    // Full-overwrite form of the zero-initialized `+=`/`-=` assembly; the
    // `0.0 - x` spelling keeps the exact bits of the accumulated version.
    a.lower[r] = (k - 1 >= 1) ? 0.0 - dkcl_dvm1 * dv_dx[k - 1] : 0.0;
    a.diag[r] = diag_own - dkcl_dv * dv_dx[k];
    a.upper[r] = (k + 1 <= active) ? 0.0 - dkcl_dvp1 * dv_dx[k + 1] : 0.0;
    // Delta column.
    du -= dkcl_dvm1 * (k - 1 >= 1 ? dv_ddt[k - 1] : 0.0);
    du -= dkcl_dv * dv_ddt[k];
    du -= dkcl_dvp1 * (k + 1 <= active ? dv_ddt[k + 1] : 0.0);
    du -= dkcl_ddt_gate;
    u[r] = du;
  }

  // Boundary row (index n-1): depends on the governing node's waveform
  // parameter and on Delta.
  {
    const int r = n - 1;
    const int kb = (rc_.boundary_elem >= 0) ? active : rc_.target_node;
    double db_dv;  // d boundary / d V_{kb}
    double db_ddt_extra = 0.0;
    if (rc_.boundary_elem >= 0) {
      db_dv = vth_slope(rc_.boundary_elem, ws_.vv, t1);
      const Element& el = prob_.elements[rc_.boundary_elem];
      const double gs = gate_slope(el, t1);
      db_ddt_extra = prob_.discharge ? gs : -gs;
    } else {
      db_dv = 1.0;  // target-node crossing
    }
    rc_.boundary_offband = 0.0;
    if (kb == active) {
      a.lower[r] =
          (active >= 1) ? kBoundaryScale * db_dv * dv_dx[active] : 0.0;
    } else {
      // Off-band coupling (split sub-regions); consumed by the dense
      // assembly below.
      a.lower[r] = 0.0;
      rc_.boundary_offband = kBoundaryScale * db_dv * dv_dx[kb];
    }
    a.upper[r] = 0.0;  // unused band slot; keep it defined
    a.diag[r] = kBoundaryScale * (db_dv * dv_ddt[kb] + db_ddt_extra);
    // The Delta-column entry for this row lives in A's diagonal; u[r]
    // stays 0 so that A + u e_n^T reproduces the full matrix.
    u[r] = 0.0;
  }
}

bool Engine::region_step(const numeric::Vector& xx, const numeric::Vector& f,
                         numeric::Vector& dx) {
  region_assemble(xx);
  ++res_.stats.linear_solves;
  const int n = rc_.n;
  numeric::Vector& rhs = ws_.rhs;
  rhs.resize(n);
  for (int i2 = 0; i2 < n; ++i2) rhs[i2] = -f[i2];
  bool solved = false;
  if (opt_.solver == RegionSolver::tridiagonal && !rc_.off_band) {
    solved = numeric::sherman_morrison_solve(ws_.tri, ws_.u_col, ws_.v_col,
                                             rhs, dx, ws_.sm);
    if (!solved) ++res_.stats.lu_fallbacks;
  }
  if (!solved) {
    // Dense assembly from the same pieces.
    numeric::Matrix& jmat = ws_.jmat;
    jmat.resize(n, n);
    for (int r2 = 0; r2 < n; ++r2) {
      jmat(r2, r2) = ws_.tri.diag[r2];
      if (r2 > 0) jmat(r2, r2 - 1) = ws_.tri.lower[r2];
      if (r2 + 1 < n) jmat(r2, r2 + 1) = ws_.tri.upper[r2];
      jmat(r2, n - 1) += ws_.u_col[r2];
    }
    if (rc_.off_band && rc_.target_node >= 1)
      jmat(n - 1, rc_.target_node - 1) += rc_.boundary_offband;
    numeric::LuFactorization lu(jmat);
    if (!lu.ok()) return false;
    dx = lu.solve(rhs);
  }
  // Trust region on the region length: Delta may neither collapse below
  // a fifth of its current value nor quintuple in one Newton step. The
  // whole direction is scaled so the step stays a Newton direction.
  const double d_cur = std::max(xx[n - 1], kMinRegionDt);
  const double d_new = xx[n - 1] + dx[n - 1];
  double scale = 1.0;
  if (d_new < 0.2 * d_cur)
    scale = (0.2 * d_cur - xx[n - 1]) / dx[n - 1];
  else if (d_new > 5.0 * d_cur)
    scale = (5.0 * d_cur - xx[n - 1]) / dx[n - 1];
  if (scale < 1.0 && scale > 0.0)
    for (double& d : dx) d *= scale;
  return true;
}

void Engine::note_commit(double dt, const numeric::Vector& xv, int active,
                         bool placeholder) {
  // Cross-condition replay feedback: fold the observed length ratio of
  // the region just committed into the scale that seeds the next one.
  // (The alpha seed keeps its static 1/s^2 prior: measured region-to-
  // region alpha ratios are too noisy — turn-on and tail regions map
  // differently — and feeding them back costs iterations.)
  if (opt_.warm_scale != 1.0 && !placeholder && opt_.warm != nullptr &&
      trace_next_ < static_cast<int>(opt_.warm->regions.size())) {
    const WarmTrace::Region& r = opt_.warm->regions[trace_next_];
    if (r.delta > 0.0 && dt > 0.0)
      warm_scale_run_ = std::clamp(dt / r.delta, 0.1, 10.0);
  }
  ++trace_next_;
  if (!opt_.record_trace) return;
  WarmTrace::Region r;
  if (!placeholder) {
    r.delta = dt;
    r.alphas.assign(xv.begin(), xv.begin() + active);
  }
  res_.trace.regions.push_back(std::move(r));
}

bool Engine::solve_region(int active, int boundary_elem, double v_target,
                          int target_node, double delta_guess,
                          const WarmTrace::Region* warm, double warm_dt,
                          double warm_alpha_scale) {
  // In cubic mode this r = 1 solver still handles turn-on regions and
  // recovery sub-steps; those use the quadratic waveform.
  const bool quad = opt_.model != RegionModel::linear;
  const int n = active + 1;  // alphas (or end currents) + Delta
  rc_ = RegionCtx{};
  rc_.n = n;
  rc_.active = active;
  rc_.boundary_elem = boundary_elem;
  rc_.target_node = target_node;
  rc_.v_target = v_target;
  rc_.quad = quad;
  // The tridiagonal fast path requires the boundary row's waveform
  // coupling to sit on the sub-diagonal, i.e. the governing node must be
  // the top active position. Split sub-regions can target interior nodes;
  // they take the dense path.
  rc_.off_band = boundary_elem < 0 && target_node != active;
  ws_.cache_x.clear();  // never reuse a previous region's Newton state

  numeric::Vector& xv = ws_.xv;
  xv.assign(n, 0.0);
  if (warm != nullptr) {
    // Warm start: the previous region's (or a replay trace's) converged
    // parameters are already inside the physical root's basin, so the
    // end-current probes — pure device-eval overhead — are skipped. The
    // converged solution is still pinned by the same residual/tolerance.
    ++res_.stats.warm_starts;
    for (int k = 1; k <= active; ++k)
      xv[k - 1] = warm->alphas[k - 1] * warm_alpha_scale;
    xv[active] = warm_dt > 0.0 ? warm_dt
                               : std::clamp(warm->delta, 1e-14, 2e-9);
    if (opt_.trace)
      std::fprintf(stderr,
                   "[qwm] region start tau=%.3e active=%d belem=%d warm "
                   "delta=%.3e\n",
                   tau_, active, boundary_elem, xv[active]);
  } else {
    // i_[1..active] holds the region-start node currents (update_currents
    // ran in the caller). For a *turn-on* region the start currents are ~0
    // (the transistor is exactly at threshold) and a zero-alpha guess would
    // sit on the Jacobian's degenerate point — seed from a probe of the
    // end-of-region currents instead. Tail regions start with substantial
    // currents, so the cheap zero-alpha seed is already well-conditioned
    // and the probe is skipped (it is the hot path: most regions are tail
    // matching points).
    // Probe the end-of-region currents and refine the Delta guess with the
    // governing node's average current; the probe and the region length are
    // mutually dependent, so turn-on regions (whose start currents are ~0 —
    // the critical transistor sits exactly at threshold) iterate twice,
    // tails once. Consistent seeds keep the Newton iteration inside the
    // physical root's basin — the quadratic waveform model admits spurious
    // roots.
    std::vector<double>& i_probe = ws_.i_probe;
    probe_end_currents(active, delta_guess, i_probe);
    {
      const int kb = (boundary_elem >= 0) ? boundary_elem : target_node;
      const int passes = (boundary_elem >= 0) ? 2 : 1;
      if (kb >= 1 && kb <= active) {
        for (int pass = 0; pass < passes; ++pass) {
          double dv;
          if (boundary_elem >= 0) {
            const Element& el = prob_.elements[boundary_elem];
            device::TerminalVoltages tv;
            tv.input = gate_voltage(el, tau_ + delta_guess);
            tv.src = tv.snk = v_[kb];
            const double vth = el.model->threshold(tv);
            dv = (prob_.discharge ? tv.input - vth : tv.input + vth) - v_[kb];
          } else {
            dv = v_target - v_[kb];
          }
          const double slope =
              0.5 * (i_[kb] + i_probe[kb]) / prob_.node_caps[kb - 1];
          if (!(std::abs(slope) > 1e-3)) break;
          const double dt = dv / slope;
          if (!(dt > 0.0) || !std::isfinite(dt)) break;
          delta_guess = std::clamp(dt, 1e-14, 2e-9);
          probe_end_currents(active, delta_guess, i_probe);
        }
      }
    }
    for (int k = 1; k <= active; ++k)
      xv[k - 1] = quad ? (i_probe[k] - i_[k]) / std::max(delta_guess, 1e-14)
                       : i_probe[k];
    xv[active] = delta_guess;
    if (opt_.trace) {
      std::fprintf(stderr, "[qwm] region start tau=%.3e active=%d belem=%d "
                   "dguess=%.3e\n  i_=[", tau_, active, boundary_elem,
                   delta_guess);
      for (int k = 1; k <= active; ++k) std::fprintf(stderr, " %.3e", i_[k]);
      std::fprintf(stderr, " ] i_probe=[");
      for (int k = 1; k <= active; ++k)
        std::fprintf(stderr, " %.3e", i_probe[k]);
      std::fprintf(stderr, " ]\n");
    }
  }

  numeric::NewtonOptions nopt;
  nopt.max_iterations =
      damped_ ? 2 * opt_.nr_max_iterations : opt_.nr_max_iterations;
  nopt.f_tolerance = opt_.f_tolerance;
  nopt.x_tolerance = 0.0;  // judge convergence on the residual only
  nopt.max_backtracks = damped_ ? 30 : 10;
  // [this]-only captures fit std::function's inline storage: building
  // these callbacks allocates nothing.
  const numeric::ResidualFn residual =
      [this](const numeric::Vector& xx, numeric::Vector& f) {
        return region_residual(xx, f);
      };
  const numeric::LinearStepFn step =
      [this](const numeric::Vector& xx, const numeric::Vector& f,
             numeric::Vector& dx) { return region_step(xx, f, dx); };
  const numeric::NewtonResult nr =
      numeric::newton_solve(residual, step, xv, nopt, ws_.newton);
  res_.stats.newton_iterations += nr.iterations;
  if (!nr.converged && nr.residual_norm > 1e-6) return false;

  // Commit the region.
  const double dt = std::max(xv[active], kMinRegionDt);
  std::vector<double>& accel = ws_.accel;
  std::vector<double>& slope = ws_.slope;
  accel.assign(m_ + 1, 0.0);
  slope.assign(m_ + 1, 0.0);
  for (int k = 1; k <= active; ++k) {
    const double c = prob_.node_caps[k - 1];
    if (quad) {
      slope[k] = i_[k] / c;
      accel[k] = 0.5 * xv[k - 1] / c;
    } else {
      slope[k] = xv[k - 1] / c;
      accel[k] = 0.0;
    }
  }
  record_region(tau_, dt, active, accel, slope);

  node_voltages(xv, ws_.vv);
  ws_.prev_i_start.assign(i_.begin() + 1, i_.begin() + 1 + active);
  for (int k = 1; k <= active; ++k) {
    v_[k] = ws_.vv[k];
    i_[k] = quad ? i_[k] + xv[k - 1] * dt : xv[k - 1];
  }
  tau_ += dt;
  res_.critical_times.push_back(tau_);
  ++res_.stats.regions;

  // A committed tail region leaves i_ current to within the Newton
  // tolerance; a turn-on boundary activates a new element next, so the
  // incremental state is stale.
  i_fresh_active_ = boundary_elem < 0 ? active : -1;

  // Warm-start bookkeeping: a committed tail region seeds the next one;
  // a turn-on region changes the current pattern too much to reuse.
  if (opt_.warm_intra && boundary_elem < 0) {
    ws_.prev_tail.delta = dt;
    ws_.prev_tail.alphas.assign(xv.begin(), xv.begin() + active);
    have_prev_tail_ = true;
    prev_tail_active_ = active;
  } else {
    have_prev_tail_ = false;
  }
  note_commit(dt, xv, active, /*placeholder=*/false);
  return true;
}

bool Engine::solve_region_cubic(int active, int boundary_elem,
                                double v_target, int target_node,
                                double delta_guess) {
  const int A = active;
  const int n = 2 * A + 1;  // alpha_1..A, beta_1..A, Delta

  // Seeds: alpha from the end-current probe (as in the r = 1 model),
  // beta = 0, Delta refined from the governing node's average current.
  std::vector<double>& i_probe = ws_.i_probe;
  probe_end_currents(A, delta_guess, i_probe);
  {
    const int kb = (boundary_elem >= 0) ? boundary_elem : target_node;
    const int passes = (boundary_elem >= 0) ? 2 : 1;
    if (kb >= 1 && kb <= A) {
      for (int pass = 0; pass < passes; ++pass) {
        double dv;
        if (boundary_elem >= 0) {
          const Element& el = prob_.elements[boundary_elem];
          device::TerminalVoltages tv;
          tv.input = gate_voltage(el, tau_ + delta_guess);
          tv.src = tv.snk = v_[kb];
          const double vth = el.model->threshold(tv);
          dv = (prob_.discharge ? tv.input - vth : tv.input + vth) - v_[kb];
        } else {
          dv = v_target - v_[kb];
        }
        const double slope =
            0.5 * (i_[kb] + i_probe[kb]) / prob_.node_caps[kb - 1];
        if (!(std::abs(slope) > 1e-3)) break;
        const double dt = dv / slope;
        if (!(dt > 0.0) || !std::isfinite(dt)) break;
        delta_guess = std::clamp(dt, 1e-14, 2e-9);
        probe_end_currents(A, delta_guess, i_probe);
      }
    }
  }
  numeric::Vector& xv = ws_.xv;
  xv.assign(n, 0.0);
  for (int k = 1; k <= A; ++k)
    xv[k - 1] = (i_probe[k] - i_[k]) / std::max(delta_guess, 1e-14);
  xv[n - 1] = delta_guess;

  // Node voltages at offset s into the region.
  std::vector<double>& vm = ws_.vm;
  std::vector<double>& ve = ws_.ve;
  const auto volt_at = [&](const numeric::Vector& xx, double s,
                           std::vector<double>& out) {
    out = v_;
    for (int k = 1; k <= A; ++k) {
      const double c = prob_.node_caps[k - 1];
      out[k] += (i_[k] * s + 0.5 * xx[k - 1] * s * s +
                 xx[A + k - 1] * s * s * s / 3.0) /
                c;
    }
  };
  std::vector<ElementCurrent>& jm = ws_.jm;
  std::vector<ElementCurrent>& je = ws_.je;
  ws_.cache_x.clear();
  std::vector<double>& cache_x = ws_.cache_x;
  const auto ensure_state = [&](const numeric::Vector& xx) -> double {
    const double dt = std::max(xx[n - 1], kMinRegionDt);
    if (cache_x.size() != xx.size() ||
        !std::equal(cache_x.begin(), cache_x.end(), xx.begin())) {
      volt_at(xx, 0.5 * dt, vm);
      volt_at(xx, dt, ve);
      eval_element_currents(A, vm, tau_ + 0.5 * dt, jm);
      eval_element_currents(A, ve, tau_ + dt, je);
      cache_x.assign(xx.begin(), xx.end());
    }
    return dt;
  };
  const auto kcl_of = [&](const std::vector<ElementCurrent>& jc, int k) {
    return prob_.discharge ? (jc[k + 1].j - jc[k].j)
                           : (jc[k].j - jc[k + 1].j);
  };

  const auto residual = [&](const numeric::Vector& xx,
                            numeric::Vector& f) -> bool {
    const double dt = ensure_state(xx);
    const double sm = 0.5 * dt;
    f.assign(n, 0.0);
    for (int k = 1; k <= A; ++k) {
      const double a = xx[k - 1], b = xx[A + k - 1];
      f[k - 1] = (i_[k] + a * sm + b * sm * sm) - kcl_of(jm, k);
      f[A + k - 1] = (i_[k] + a * dt + b * dt * dt) - kcl_of(je, k);
    }
    if (boundary_elem >= 0)
      f[n - 1] =
          kBoundaryScale * turn_on_residual(boundary_elem, ve, tau_ + dt);
    else
      f[n - 1] = kBoundaryScale * (ve[target_node] - v_target);
    return true;
  };

  numeric::Matrix& jac = ws_.jmat;
  const auto assemble = [&](const numeric::Vector& xx) {
    const double dt = ensure_state(xx);
    jac.resize(n, n);
    // One pass per matching point: (s, time-fraction f_t, currents, volts,
    // row offset).
    const struct Point {
      double s, ft;
      const std::vector<ElementCurrent>* jc;
      const std::vector<double>* vv;
      int row0;
    } points[2] = {{0.5 * dt, 0.5, &jm, &vm, 0}, {dt, 1.0, &je, &ve, A}};

    for (const auto& pt : points) {
      const double s = pt.s;
      for (int k = 1; k <= A; ++k) {
        const int r = pt.row0 + k - 1;
        // d(i_end)/d params of node k.
        jac(r, k - 1) += s;
        jac(r, A + k - 1) += s * s;
        const double a = xx[k - 1], b = xx[A + k - 1];
        double du = pt.ft * (a + 2.0 * b * s);  // d i / d Delta

        const auto& jc = *pt.jc;
        double dkcl_dvm1, dkcl_dv, dkcl_dvp1;
        if (prob_.discharge) {
          dkcl_dvm1 = -jc[k].d_near;
          dkcl_dv = jc[k + 1].d_near - jc[k].d_far;
          dkcl_dvp1 = jc[k + 1].d_far;
        } else {
          dkcl_dvm1 = jc[k].d_near;
          dkcl_dv = jc[k].d_far - jc[k + 1].d_near;
          dkcl_dvp1 = -jc[k + 1].d_far;
        }
        // Gate waveforms move with the matching time t = tau + ft * Delta.
        const double t_pt = tau_ + pt.ft * dt;
        const double gs_low =
            (prob_.elements[k - 1].kind == Element::Kind::transistor)
                ? gate_slope(prob_.elements[k - 1], t_pt)
                : 0.0;
        const double gs_up =
            (k < static_cast<int>(prob_.elements.size()) &&
             prob_.elements[k].kind == Element::Kind::transistor)
                ? gate_slope(prob_.elements[k], t_pt)
                : 0.0;
        double dkcl_ddt_gate;
        if (prob_.discharge)
          dkcl_ddt_gate =
              pt.ft * (jc[k + 1].d_gate * gs_up - jc[k].d_gate * gs_low);
        else
          dkcl_ddt_gate =
              pt.ft * (jc[k].d_gate * gs_low - jc[k + 1].d_gate * gs_up);

        // Chain through each neighbour's voltage sensitivities.
        for (const int j : {k - 1, k, k + 1}) {
          if (j < 1 || j > A) continue;
          const double dk =
              (j == k - 1) ? dkcl_dvm1 : (j == k ? dkcl_dv : dkcl_dvp1);
          const double c = prob_.node_caps[j - 1];
          const double dv_da = 0.5 * s * s / c;
          const double dv_db = s * s * s / 3.0 / c;
          const double ij_s = i_[j] + xx[j - 1] * s + xx[A + j - 1] * s * s;
          const double dv_ddt = pt.ft * ij_s / c;
          jac(r, j - 1) -= dk * dv_da;
          jac(r, A + j - 1) -= dk * dv_db;
          du -= dk * dv_ddt;
        }
        du -= dkcl_ddt_gate;
        jac(r, n - 1) += du;
      }
    }

    // Boundary row at the endpoint.
    {
      const int r = n - 1;
      const int kb = (boundary_elem >= 0) ? active : target_node;
      double db_dv;
      double db_ddt_extra = 0.0;
      if (boundary_elem >= 0) {
        db_dv = vth_slope(boundary_elem, ve, tau_ + dt);
        const double gs = gate_slope(prob_.elements[boundary_elem], tau_ + dt);
        db_ddt_extra = prob_.discharge ? gs : -gs;
      } else {
        db_dv = 1.0;
      }
      const double c = prob_.node_caps[kb - 1];
      const double ikb =
          i_[kb] + xx[kb - 1] * dt + xx[A + kb - 1] * dt * dt;
      jac(r, kb - 1) = kBoundaryScale * db_dv * 0.5 * dt * dt / c;
      jac(r, A + kb - 1) = kBoundaryScale * db_dv * dt * dt * dt / 3.0 / c;
      jac(r, n - 1) =
          kBoundaryScale * (db_dv * ikb / c + db_ddt_extra);
    }
  };

  const auto step = [&](const numeric::Vector& xx, const numeric::Vector& f,
                        numeric::Vector& dx) -> bool {
    assemble(xx);
    ++res_.stats.linear_solves;
    numeric::LuFactorization lu(jac);
    if (!lu.ok()) return false;
    numeric::Vector& rhs = ws_.rhs;
    rhs.assign(n, 0.0);
    for (int i2 = 0; i2 < n; ++i2) rhs[i2] = -f[i2];
    dx = lu.solve(rhs);
    // Trust region on Delta, as in the r = 1 solver.
    const double d_cur = std::max(xx[n - 1], kMinRegionDt);
    const double d_new = xx[n - 1] + dx[n - 1];
    double scale = 1.0;
    if (d_new < 0.2 * d_cur)
      scale = (0.2 * d_cur - xx[n - 1]) / dx[n - 1];
    else if (d_new > 5.0 * d_cur)
      scale = (5.0 * d_cur - xx[n - 1]) / dx[n - 1];
    if (scale < 1.0 && scale > 0.0)
      for (double& d : dx) d *= scale;
    return true;
  };

  numeric::NewtonOptions nopt;
  nopt.max_iterations = opt_.nr_max_iterations;
  nopt.f_tolerance = opt_.f_tolerance;
  nopt.x_tolerance = 0.0;
  nopt.max_backtracks = 10;
  const numeric::NewtonResult nr =
      numeric::newton_solve(residual, step, xv, nopt, ws_.newton);
  res_.stats.newton_iterations += nr.iterations;
  if (!nr.converged && nr.residual_norm > 1e-6) return false;

  // Commit: the cubic is stored as two quadratic pieces hitting the
  // matched mid/end values exactly (PiecewiseQuadWaveform stays the
  // single output representation).
  const double dt = std::max(xv[n - 1], kMinRegionDt);
  const double sm = 0.5 * dt;
  volt_at(xv, sm, vm);
  volt_at(xv, dt, ve);
  for (int k = 1; k <= m_; ++k) {
    if (k <= A) {
      const double c = prob_.node_caps[k - 1];
      const double a = xv[k - 1], b = xv[A + k - 1];
      const double slope0 = i_[k] / c;
      const double acc1 = (vm[k] - v_[k] - slope0 * sm) / (sm * sm);
      res_.node_waveforms[k - 1].add_piece(tau_, v_[k], slope0, acc1);
      const double slope_m = (i_[k] + a * sm + b * sm * sm) / c;
      const double acc2 = (ve[k] - vm[k] - slope_m * sm) / (sm * sm);
      res_.node_waveforms[k - 1].add_piece(tau_ + sm, vm[k], slope_m, acc2);
    } else {
      res_.node_waveforms[k - 1].add_piece(tau_, v_[k], 0.0, 0.0);
    }
  }
  for (int k = 1; k <= A; ++k) {
    v_[k] = ve[k];
    i_[k] = i_[k] + xv[k - 1] * dt + xv[A + k - 1] * dt * dt;
  }
  tau_ += dt;
  res_.critical_times.push_back(tau_);
  ++res_.stats.regions;
  have_prev_tail_ = false;  // cubic parameters do not seed the r = 1 solver
  i_fresh_active_ = -1;
  note_commit(dt, xv, A, /*placeholder=*/true);
  return true;
}

bool Engine::solve_region_adaptive(int active, int boundary_elem,
                                   double v_target, int target_node,
                                   int depth) {
  // A committed sub-step may already have carried the state past this
  // region's objective (the transistor turned on mid-substep, or the
  // target level was crossed): the boundary time is *now*.
  //
  // Cross-corner replay exception: when this is a depth-0 tail region
  // with a shape-matching replay entry and the incremental region-start
  // currents are fresh (previous commit was a plain tail solve covering
  // at least this active set), i_ already equals the device currents at
  // the committed state to within the Newton tolerance — the re-eval is
  // pure device-eval overhead and is skipped. Same-condition replay
  // (warm_scale == 1) keeps the re-eval so its results stay bit-identical
  // to the cold path.
  bool fresh_currents = false;
  if (opt_.warm_scale != 1.0 && opt_.warm_start && opt_.warm != nullptr &&
      depth == 0 && boundary_elem < 0 && i_fresh_active_ >= active &&
      trace_next_ < static_cast<int>(opt_.warm->regions.size())) {
    const WarmTrace::Region& r = opt_.warm->regions[trace_next_];
    fresh_currents =
        static_cast<int>(r.alphas.size()) == active && r.delta > 0.0;
  }
  if (!fresh_currents) update_currents(active);
  if (boundary_elem >= 0) {
    if (turn_on_residual(boundary_elem, v_, tau_) >= 0.0) return true;
  } else {
    // "Passed" = the target lies behind the node's direction of motion.
    const double gap = v_target - v_[target_node];
    const double vel = i_[target_node] / prob_.node_caps[target_node - 1];
    if (std::abs(gap) < 1e-6) return true;
    if (std::abs(vel) > 1e-3 && gap * vel < 0.0) return true;
  }
  const double guess =
      estimate_delta(active, boundary_elem, v_target, target_node);
  if (opt_.trace) {
    std::fprintf(stderr,
                 "[qwm] region tau=%.3e active=%d belem=%d tgt=%d "
                 "vt=%.3f guess=%.3e depth=%d V=[",
                 tau_, active, boundary_elem, target_node, v_target, guess,
                 depth);
    for (int k = 1; k <= m_; ++k) std::fprintf(stderr, " %.3f", v_[k]);
    std::fprintf(stderr, " ]\n");
  }
  // The cubic (r = 2) model is applied to the top-level tail regions,
  // where its two matching points let the ladder be much coarser. Turn-on
  // regions and failure-recovery sub-steps stay on the r = 1 model: they
  // are short, and the cubic's extra freedom can admit non-physical
  // (wiggling) roots over the long, strongly-nonlinear turn-on spans.
  const bool use_cubic = opt_.model == RegionModel::cubic &&
                         boundary_elem < 0 && depth == 0;

  // Warm-seed selection, in priority order: a replay trace entry for this
  // commit index (memo-cache near miss), else the previous tail region's
  // converged parameters. Either is used only when its shape matches.
  const WarmTrace::Region* warm = nullptr;
  double warm_dt = 0.0;
  double warm_alpha_scale = 1.0;
  if (opt_.warm_start && !use_cubic) {
    if (opt_.warm != nullptr &&
        trace_next_ < static_cast<int>(opt_.warm->regions.size())) {
      const WarmTrace::Region& r = opt_.warm->regions[trace_next_];
      if (static_cast<int>(r.alphas.size()) == active && r.delta > 0.0) {
        warm = &r;  // replay: the recorded length is the best estimate...
        if (opt_.warm_scale != 1.0) {  // ...rescaled onto this time scale
          if (warm_scale_run_ < 0.0) warm_scale_run_ = opt_.warm_scale;
          if (warm_alpha_run_ < 0.0) {
            // First-order prior: durations scale by s, currents by 1/s —
            // so the quad model's ramp-rate alphas scale by 1/s^2.
            const double s = opt_.warm_scale;
            warm_alpha_run_ =
                opt_.model != RegionModel::linear ? 1.0 / (s * s) : 1.0 / s;
          }
          warm_dt = std::clamp(r.delta * warm_scale_run_, 1e-14, 2e-9);
          warm_alpha_scale = warm_alpha_run_;
        }
      }
    }
    if (warm == nullptr && opt_.warm_intra && boundary_elem < 0 &&
        have_prev_tail_ && prev_tail_active_ == active) {
      // Intra-path seed: the previous region's alphas with the *current*
      // length estimate (the node has slowed since the previous region,
      // so its old length underestimates this one).
      warm = &ws_.prev_tail;
      warm_dt = guess;
    }
  }

  bool solved =
      use_cubic
          ? solve_region_cubic(active, boundary_elem, v_target, target_node,
                               guess)
          : solve_region(active, boundary_elem, v_target, target_node, guess,
                         warm, warm_dt, warm_alpha_scale);
  if (!solved && warm != nullptr) {
    // A warm seed must never cost a result the cold seed would find:
    // retry once from the probe-based seed before declaring failure.
    ++res_.stats.warm_retries;
    solved = solve_region(active, boundary_elem, v_target, target_node, guess,
                          nullptr);
  }
  if (solved) return true;
  if (depth >= 10) return false;

  // Sub-step: a failed single-piece region usually spans two timescales
  // (fast internal relaxation under a slowly-starting output). Commit an
  // intermediate region that carries the *fastest-moving* node halfway
  // through its remaining swing, then retry the original boundary.
  int j_star = -1;
  double best_rate = 0.0;
  for (int k = 1; k <= active; ++k) {
    const double rate = std::abs(i_[k]) / prob_.node_caps[k - 1];
    if (rate > best_rate) {
      best_rate = rate;
      j_star = k;
    }
  }
  if (j_star >= 1) {
    // Half a time step along the node's own trajectory (it may move
    // either way: resistor-cluster nodes can transiently rise during a
    // discharge while they equalize).
    const double v_lo = std::min(v_rail_, v_far_);
    const double v_hi = std::max(v_rail_, v_far_);
    const double v_half =
        std::clamp(v_[j_star] + 0.5 * guess * i_[j_star] /
                                    prob_.node_caps[j_star - 1],
                   v_lo, v_hi);
    if (std::abs(v_half - v_[j_star]) > 1e-3 &&
        solve_region_adaptive(active, -1, v_half, j_star, depth + 1)) {
      return solve_region_adaptive(active, boundary_elem, v_target,
                                   target_node, depth + 1);
    }
  }
  // Fallback: bisect the governing node toward its boundary level.
  int kb;
  double level;
  if (boundary_elem >= 0) {
    kb = boundary_elem;
    const Element& el = prob_.elements[boundary_elem];
    device::TerminalVoltages tv;
    tv.input = gate_voltage(el, tau_ + guess);
    tv.src = tv.snk = v_[kb];
    const double vth = el.model->threshold(tv);
    level = prob_.discharge ? tv.input - vth : tv.input + vth;
  } else {
    kb = target_node;
    level = v_target;
  }
  const double v_half = 0.5 * (v_[kb] + level);
  if (std::abs(v_half - v_[kb]) < 1e-3) return false;
  if (!solve_region_adaptive(active, -1, v_half, kb, depth + 1)) return false;
  return solve_region_adaptive(active, boundary_elem, v_target, target_node,
                               depth + 1);
}

bool Engine::solve_region_bisect(int active, int boundary_elem,
                                 double v_target, int target_node) {
  // Fault injection: this rung can be failed on purpose to force the
  // ladder onto the SPICE last resort.
  if (support::fire_fault(support::FaultSite::kBisectionFail)) return false;

  update_currents(active);
  // The objective may already be satisfied (a prior rung committed
  // sub-steps past it) — mirror solve_region_adaptive's passed checks.
  if (boundary_elem >= 0) {
    if (turn_on_residual(boundary_elem, v_, tau_) >= 0.0) return true;
  } else {
    const double gap = v_target - v_[target_node];
    const double vel = i_[target_node] / prob_.node_caps[target_node - 1];
    if (std::abs(gap) < 1e-6) return true;
    if (std::abs(vel) > 1e-3 && gap * vel < 0.0) return true;
  }

  std::vector<double>& alphas = ws_.i_probe;  // reused as alpha storage
  std::vector<double>& vv = ws_.vp;
  alphas.assign(active + 1, 0.0);

  const auto volt_at = [&](double delta) {
    vv = v_;
    for (int k = 1; k <= active; ++k)
      vv[k] += (i_[k] * delta + 0.5 * alphas[k] * delta * delta) /
               prob_.node_caps[k - 1];
  };
  // Boundary residual at region length `delta`: the alphas are driven to
  // the current-matching fixed point alpha_k = (kcl_k - i_k) / delta by
  // damped Picard iteration (alphas persist across calls, so nearby
  // deltas re-converge in a couple of sweeps), then the boundary
  // condition is read off the end voltages. Sign convention: negative
  // before the boundary, positive past it.
  const auto boundary_at = [&](double delta) -> double {
    for (int it = 0; it < 20; ++it) {
      volt_at(delta);
      eval_element_currents(active, vv, tau_ + delta, ws_.jc);
      double worst = 0.0;  // end-current change [A]
      for (int k = 1; k <= active; ++k) {
        const double kcl = prob_.discharge ? (ws_.jc[k + 1].j - ws_.jc[k].j)
                                           : (ws_.jc[k].j - ws_.jc[k + 1].j);
        const double a_new = (kcl - i_[k]) / delta;
        worst = std::max(worst, std::abs(a_new - alphas[k]) * delta);
        alphas[k] += 0.7 * (a_new - alphas[k]);
      }
      if (worst < 1e-7) break;
    }
    volt_at(delta);
    if (boundary_elem >= 0)
      return turn_on_residual(boundary_elem, vv, tau_ + delta);
    return (vv[target_node] - v_target) * (prob_.discharge ? -1.0 : 1.0);
  };

  // Bracket the boundary on a geometric grid of region lengths, then
  // bisect. No bracket within the physical length range = failure.
  const double d_lo_lim = 1e-14, d_hi_lim = 2e-9;
  double d_lo = d_lo_lim;
  double d_hi = d_lo_lim;
  if (boundary_at(d_lo_lim) <= 0.0) {
    bool bracketed = false;
    const int grid = 28;
    double prev_d = d_lo_lim;
    for (int i2 = 1; i2 <= grid; ++i2) {
      const double d = d_lo_lim * std::pow(d_hi_lim / d_lo_lim,
                                           static_cast<double>(i2) / grid);
      if (boundary_at(d) > 0.0) {
        d_lo = prev_d;
        d_hi = d;
        bracketed = true;
        break;
      }
      prev_d = d;
    }
    if (!bracketed) return false;
    for (int it = 0; it < 60 && (d_hi - d_lo) > 1e-16; ++it) {
      const double mid = 0.5 * (d_lo + d_hi);
      if (boundary_at(mid) > 0.0)
        d_hi = mid;
      else
        d_lo = mid;
    }
  }
  const double dt = std::max(d_hi, kMinRegionDt);
  (void)boundary_at(dt);  // leave alphas/vv converged at the commit length

  // Commit, mirroring solve_region.
  std::vector<double>& accel = ws_.accel;
  std::vector<double>& slope = ws_.slope;
  accel.assign(m_ + 1, 0.0);
  slope.assign(m_ + 1, 0.0);
  for (int k = 1; k <= active; ++k) {
    const double c = prob_.node_caps[k - 1];
    slope[k] = i_[k] / c;
    accel[k] = 0.5 * alphas[k] / c;
  }
  record_region(tau_, dt, active, accel, slope);
  numeric::Vector& xv = ws_.xv;
  xv.assign(active + 1, 0.0);
  for (int k = 1; k <= active; ++k) xv[k - 1] = alphas[k];
  xv[active] = dt;
  ws_.prev_i_start.assign(i_.begin() + 1, i_.begin() + 1 + active);
  for (int k = 1; k <= active; ++k) {
    v_[k] = vv[k];
    i_[k] += alphas[k] * dt;
  }
  tau_ += dt;
  res_.critical_times.push_back(tau_);
  ++res_.stats.regions;
  have_prev_tail_ = false;  // degraded parameters never seed a warm start
  i_fresh_active_ = -1;
  note_commit(dt, xv, active, /*placeholder=*/true);
  return true;
}

QwmResult Engine::run() {
  m_ = static_cast<int>(prob_.length());
  if (m_ == 0) {
    fail("empty path");
    return std::move(res_);
  }
  v_rail_ = prob_.discharge ? 0.0 : prob_.vdd;
  v_far_ = prob_.discharge ? prob_.vdd : 0.0;

  res_.node_waveforms.assign(m_, PiecewiseQuadWaveform());
  v_.assign(m_ + 1, v_far_);
  v_[0] = v_rail_;
  i_.assign(m_ + 1, 0.0);
  on_.assign(prob_.elements.size(), 0);

  // Node-capacitance reciprocals: the region solve divides by C once per
  // node per Newton evaluation; multiplying by the hoisted reciprocal
  // shifts results by at most one ulp (well inside the Newton tolerance)
  // and removes the divide chain from the hot loop.
  ws_.inv_caps.resize(prob_.node_caps.size());
  for (std::size_t k = 0; k < prob_.node_caps.size(); ++k)
    ws_.inv_caps[k] = 1.0 / prob_.node_caps[k];

  // Batched device path: every transistor must share one concrete tabular
  // model (a path conducts one event polarity, so this is the common
  // case); mixed or analytic models fall back to the scalar path.
  batch_model_ = nullptr;
  if (opt_.batch_device_eval) {
    const device::TabularDeviceModel* common = nullptr;
    bool uniform = true;
    for (const Element& el : prob_.elements) {
      if (el.kind != Element::Kind::transistor) continue;
      if (el.tabular == nullptr ||
          (common != nullptr && el.tabular != common)) {
        uniform = false;
        break;
      }
      common = el.tabular;
    }
    if (uniform) batch_model_ = common;
  }
  if (batch_model_ != nullptr) {
    batch_pmos_ = batch_model_->mos_type() == device::MosType::pmos;
    batch_pm_ = batch_pmos_ ? -1.0 : 1.0;
    batch_vdd_ = batch_model_->vdd();
    const device::CharacterizationGrid& grid = batch_model_->grid();
    ws_.elem_plan.assign(prob_.elements.size(), ElementPlan{});
    for (std::size_t e = 0; e < prob_.elements.size(); ++e) {
      const Element& el = prob_.elements[e];
      ElementPlan& p = ws_.elem_plan[e];
      if (el.kind == Element::Kind::resistor) {
        p.is_resistor = 1;
        // dir * g with the same association as the scalar path:
        // (dir * (1/R)) is the exact product the inline path computes.
        p.g_dir = (prob_.discharge ? 1.0 : -1.0) * (1.0 / el.resistance);
      } else {
        p.sgn = (el.src_is_far == prob_.discharge) ? 1.0 : -1.0;
        p.scale = (el.w / grid.w_ref) * (grid.l_ref / el.l);
        p.src_is_far = el.src_is_far ? 1 : 0;
      }
    }
    // Pre-size the SoA staging arrays so the per-iteration gather writes
    // through raw pointers with no push_back bookkeeping.
    const std::size_t ne = prob_.elements.size();
    ws_.frame_g.resize(ne);
    ws_.frame_lo.resize(ne);
    ws_.frame_hi.resize(ne);
    ws_.frame_eval.resize(ne);
    ws_.frame_elem.resize(ne);
    ws_.frame_swap.resize(ne);
  }

  // Worst-case precharge: nodes below the switching element sit at the
  // rail, everything at or above it at the far rail (see DESIGN.md).
  int e_switch = -1;
  for (std::size_t e = 0; e < prob_.elements.size(); ++e) {
    if (prob_.elements[e].kind == Element::Kind::transistor &&
        prob_.elements[e].input >= 0) {
      e_switch = static_cast<int>(e);
      break;
    }
  }
  if (e_switch > 0)
    for (int k = 1; k <= e_switch; ++k) v_[k] = v_rail_;
  if (!opt_.initial_voltages.empty()) {
    if (opt_.initial_voltages.size() != static_cast<std::size_t>(m_)) {
      fail("initial_voltages size mismatch");
      return std::move(res_);
    }
    for (int k = 1; k <= m_; ++k) v_[k] = opt_.initial_voltages[k - 1];
  }

  res_.ok = true;
  refresh_on_flags(1e-9);

  // Tail targets, measured as fractions of the full swing.
  std::vector<double>& targets = ws_.targets;
  targets.clear();
  for (double f : opt_.tail_fractions)
    targets.push_back(v_rail_ + f * (v_far_ - v_rail_));
  std::size_t next_target = 0;

  const std::size_t max_regions =
      prob_.elements.size() + targets.size() + 8;
  for (std::size_t guard = 0; guard < max_regions; ++guard) {
    if (tau_ > opt_.t_max) {
      fail("analysis exceeded t_max");
      break;
    }
    const int q = first_off_transistor();
    const int active = (q >= 0) ? q : m_;
    if (q >= 0 && active == 0) {
      // The off transistor sits at the rail: no dynamics until its gate
      // waveform turns it on.
      if (!advance_to_first_turn_on(q)) break;
      refresh_on_flags(1e-9);
      continue;
    }

    double v_target = 0.0;
    if (q < 0) {
      // Tail: pick the next target strictly inside the remaining swing.
      while (next_target < targets.size() &&
             ((prob_.discharge && targets[next_target] >= v_[m_]) ||
              (!prob_.discharge && targets[next_target] <= v_[m_])))
        ++next_target;
      if (next_target >= targets.size()) break;  // done
      v_target = targets[next_target++];
    }

    if (!solve_region_adaptive(active, q, v_target, /*target_node=*/m_,
                               /*depth=*/0)) {
      // A failed *tail* region after the output already crossed midway is
      // truncation, not failure: the remaining swing is quasi-static and
      // the timing content of the waveform is complete.
      const double v_mid = 0.5 * (v_far_ + v_rail_);
      const bool past_mid = prob_.discharge ? v_[m_] < v_mid : v_[m_] > v_mid;
      if (q < 0 && past_mid) {
        res_.tail_truncated = true;
        break;
      }
      // Fallback ladder. Rung 0 (everything above: plain NR with warm
      // retry and adaptive splitting) has failed; the recovery rungs run
      // under a ScopedRung so injected faults can be scoped away from
      // them, and any result they produce is flagged degraded.
      bool recovered = false;
      {
        support::ScopedRung rung_guard(kRungDamped);
        damped_ = true;
        recovered = solve_region_adaptive(active, q, v_target, m_, 0);
        damped_ = false;
        if (recovered) ++res_.stats.fallback_counts[kRungDamped];
      }
      if (!recovered) {
        support::ScopedRung rung_guard(kRungBisect);
        recovered = solve_region_bisect(active, q, v_target, m_);
        if (recovered) ++res_.stats.fallback_counts[kRungBisect];
      }
      if (!recovered) {
        res_.solver_failure = true;
        fail("region Newton solve failed at t=" + std::to_string(tau_));
        break;
      }
      res_.degraded = true;
    } else {
      ++res_.stats.fallback_counts[kRungNominal];
    }
    if (q >= 0) {
      on_[q] = 1;
      refresh_on_flags(1e-9);
    }
  }

  for (int k = 1; k <= m_; ++k) res_.node_waveforms[k - 1].finish(tau_, v_[k]);
  return std::move(res_);
}

}  // namespace

QwmResult evaluate_path(const circuit::PathProblem& problem,
                        const std::vector<numeric::PwlWaveform>& inputs,
                        const QwmOptions& options) {
  EvalWorkspace ws;
  return evaluate_path(problem, inputs, options, ws);
}

QwmResult evaluate_path(const circuit::PathProblem& problem,
                        const std::vector<numeric::PwlWaveform>& inputs,
                        const QwmOptions& options, EvalWorkspace& ws) {
  Engine engine(problem, inputs, options, ws);
  QwmResult res = engine.run();
  if (!res.ok && res.solver_failure) {
    // Ladder rung 3: every in-process rung failed on a well-posed problem
    // — fall back to a per-stage SPICE transient of the same lumped path.
    // Semantic failures (empty path, gate never turns on, t_max exceeded)
    // are not solver failures and are reported as-is.
    support::ScopedRung rung_guard(kRungSpice);
    spice_fallback_evaluate(problem, inputs, options, res);
  }
  ws.checkpoint();
  return res;
}

}  // namespace qwm::core
