// Switch-level (Elmore) stage evaluation: the Crystal/IRSIM-class
// baseline of the paper's related work (§II). Each conducting transistor
// becomes an effective resistance, the charge/discharge path becomes an
// RC chain, and the delay is ln(2) times the output's Elmore time
// constant. Fast and simple — and systematically cruder than QWM, which
// is precisely the paper's motivation for waveform matching.
#pragma once

#include <optional>
#include <string>

#include "qwm/circuit/path.h"
#include "qwm/circuit/stage.h"
#include "qwm/device/model_set.h"

namespace qwm::core {

struct ElmoreTiming {
  bool ok = false;
  std::string error;
  /// Elmore time constant at the output [s].
  double elmore = 0.0;
  /// 50% delay estimate, ln(2) * elmore [s].
  double delay = 0.0;
  /// Per-element effective resistances, rail -> output [ohm].
  std::vector<double> resistances;
};

/// Effective switching resistance of a transistor at full gate drive:
/// R_eff = (VDD/2) / I(Vgs = VDD, Vds = VDD/2) — the classic mid-swing
/// chord resistance used by switch-level timing analyzers.
double effective_resistance(const device::DeviceModel& model, double w,
                            double l, double vdd);

/// Evaluates the worst-case event at `output` with the switch-level
/// model. Uses the same path extraction and capacitance lumping as QWM,
/// so differences against QWM isolate the evaluation model itself.
ElmoreTiming evaluate_stage_elmore(const circuit::LogicStage& stage,
                                   circuit::NodeId output, bool output_falls,
                                   const device::ModelSet& models);

}  // namespace qwm::core
