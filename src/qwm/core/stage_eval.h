// One-call stage evaluation: extract the worst-case path, lump the stage
// onto it, run QWM, and expose timing metrics. This is the function a
// static timing analyzer calls per stage (paper Definition 3's waveform
// evaluation).
#pragma once

#include <optional>

#include "qwm/circuit/builders.h"
#include "qwm/circuit/path.h"
#include "qwm/circuit/stage.h"
#include "qwm/core/qwm.h"
#include "qwm/device/model_set.h"

namespace qwm::core {

struct StageTiming {
  bool ok = false;
  std::string error;
  QwmResult qwm;
  circuit::ExtractedPath path;
  circuit::PathProblem problem;
  /// 50%-in to 50%-out propagation delay [s] (nullopt if unmeasurable).
  std::optional<double> delay;
  /// Output transition time between 90% and 10% of the swing [s].
  std::optional<double> output_slew;
};

/// Evaluates the worst-case event (direction per `output_falls`) at
/// `output`: extracts the path, builds the lumped problem, runs QWM, and
/// measures delay against the switching input's 50% crossing.
StageTiming evaluate_stage(const circuit::LogicStage& stage,
                           circuit::NodeId output, bool output_falls,
                           const std::vector<numeric::PwlWaveform>& inputs,
                           circuit::InputId switching_input,
                           const device::ModelSet& models,
                           const QwmOptions& options = {});

/// Scratch-reusing variant (see workspace.h): repeated evaluations through
/// one workspace run the QWM region solves without heap allocation.
StageTiming evaluate_stage(const circuit::LogicStage& stage,
                           circuit::NodeId output, bool output_falls,
                           const std::vector<numeric::PwlWaveform>& inputs,
                           circuit::InputId switching_input,
                           const device::ModelSet& models,
                           const QwmOptions& options, EvalWorkspace& ws);

/// Convenience for builder results.
StageTiming evaluate_stage(const circuit::BuiltStage& built,
                           const std::vector<numeric::PwlWaveform>& inputs,
                           const device::ModelSet& models,
                           const QwmOptions& options = {});

StageTiming evaluate_stage(const circuit::BuiltStage& built,
                           const std::vector<numeric::PwlWaveform>& inputs,
                           const device::ModelSet& models,
                           const QwmOptions& options, EvalWorkspace& ws);

/// Multi-corner stage evaluation: one StageTiming per active corner of
/// `models`, in models.corners order. The primary (first) corner runs
/// first with trace recording forced on; every other corner seeds its
/// Newton solves from the primary's converged trace (cross-corner warm
/// start — corner derivation only rescales currents, so the typical
/// solution is an excellent starting point). Each corner's result is
/// still pinned by its own residual and tolerance, so values match a
/// cold per-corner evaluation at solver-tolerance level, but N corners
/// cost far fewer iterations than N cold solves.
std::vector<StageTiming> evaluate_stage_corners(
    const circuit::LogicStage& stage, circuit::NodeId output,
    bool output_falls, const std::vector<numeric::PwlWaveform>& inputs,
    circuit::InputId switching_input, const device::CornerModelSet& models,
    const QwmOptions& options = {});

std::vector<StageTiming> evaluate_stage_corners(
    const circuit::LogicStage& stage, circuit::NodeId output,
    bool output_falls, const std::vector<numeric::PwlWaveform>& inputs,
    circuit::InputId switching_input, const device::CornerModelSet& models,
    const QwmOptions& options, EvalWorkspace& ws);

/// Convenience for builder results.
std::vector<StageTiming> evaluate_stage_corners(
    const circuit::BuiltStage& built,
    const std::vector<numeric::PwlWaveform>& inputs,
    const device::CornerModelSet& models, const QwmOptions& options = {});

/// Timing of one declared stage output within a multi-output evaluation.
struct OutputTiming {
  circuit::NodeId node = -1;
  bool ok = false;
  std::optional<double> delay;
  std::optional<double> slew;
  /// The evaluated waveform at this output.
  PiecewiseQuadWaveform waveform;
  /// True when this output's timing was read off another output's longer
  /// path (no extra QWM run was needed).
  bool shared_path = false;
};

/// Evaluates every declared output of the stage (paper Definition 3's
/// output set O) for the same event direction. Outputs are processed
/// longest-path-first; an output lying on an already-evaluated path reads
/// its waveform from that result instead of re-running QWM — on a
/// Manchester carry chain all carry taps come from one evaluation.
std::vector<OutputTiming> evaluate_all_outputs(
    const circuit::LogicStage& stage, bool outputs_fall,
    const std::vector<numeric::PwlWaveform>& inputs,
    circuit::InputId switching_input, const device::ModelSet& models,
    const QwmOptions& options = {});

std::vector<OutputTiming> evaluate_all_outputs(
    const circuit::LogicStage& stage, bool outputs_fall,
    const std::vector<numeric::PwlWaveform>& inputs,
    circuit::InputId switching_input, const device::ModelSet& models,
    const QwmOptions& options, EvalWorkspace& ws);

}  // namespace qwm::core
