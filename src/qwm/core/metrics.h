// Waveform metrics and comparison utilities.
//
// The paper argues (citing the WTA work) that full waveform evaluation
// carries more information than a single delay/slope pair — traditional
// metrics can be off by up to 30% in deep submicron. This module extracts
// the richer metrics from evaluated waveforms and quantifies agreement
// between two engines' results.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "qwm/core/waveform.h"
#include "qwm/numeric/pwl.h"

namespace qwm::core {

/// Crossing times of a waveform at a ladder of thresholds (fractions of
/// the reference swing). A falling waveform reports its downward
/// crossings, rising its upward ones.
struct ThresholdTable {
  std::vector<double> fractions;              ///< e.g. 0.9, 0.5, 0.1
  std::vector<std::optional<double>> times;   ///< matching crossing times
};

ThresholdTable threshold_crossings(const PiecewiseQuadWaveform& w, double vdd,
                                   bool falling,
                                   const std::vector<double>& fractions = {
                                       0.9, 0.7, 0.5, 0.3, 0.1});

/// Agreement metrics between an evaluated waveform and a reference.
struct WaveformComparison {
  double max_abs_error = 0.0;   ///< max |a-b| over the window [V]
  double rms_error = 0.0;       ///< RMS of the pointwise error [V]
  /// Per-threshold crossing-time skew (evaluated minus reference) [s];
  /// entries absent when either waveform misses the threshold.
  std::vector<std::optional<double>> crossing_skew;
  std::vector<double> fractions;
  /// Worst |crossing skew| [s]; 0 when no threshold was comparable.
  double worst_skew = 0.0;
};

WaveformComparison compare_waveforms(
    const PiecewiseQuadWaveform& evaluated, const numeric::PwlWaveform& ref,
    double vdd, bool falling, double t0, double t1,
    const std::vector<double>& fractions = {0.9, 0.7, 0.5, 0.3, 0.1},
    int samples = 256);

/// Multi-line human-readable rendering of a comparison (used by tools).
std::string format_comparison(const WaveformComparison& c);

}  // namespace qwm::core
