// Piecewise-quadratic waveforms: QWM's output representation.
//
// Each region contributes one quadratic piece per node,
//   v(t) = v0 + s0 (t - t0) + a (t - t0)^2,   t0 <= t < t_next,
// exactly the paper's Equation (6) with s0 = I(tau)/C and a = alpha/(2C).
// Crossings are solved analytically per piece, so delay extraction does
// not depend on any sampling grid.
#pragma once

#include <optional>
#include <vector>

#include "qwm/numeric/pwl.h"

namespace qwm::core {

class PiecewiseQuadWaveform {
 public:
  struct Piece {
    double t0 = 0.0;
    double v0 = 0.0;
    double slope0 = 0.0;  ///< dv/dt at t0
    double accel = 0.0;   ///< quadratic coefficient (0.5 * alpha / C)
  };

  /// Appends a piece starting at t0 (must be >= the previous start).
  void add_piece(double t0, double v0, double slope0, double accel);
  /// Marks the end of the last piece; the waveform holds `v_end` after.
  void finish(double t_end, double v_end);

  bool empty() const { return pieces_.empty(); }
  std::size_t piece_count() const { return pieces_.size(); }
  const Piece& piece(std::size_t i) const { return pieces_[i]; }
  double end_time() const { return t_end_; }
  double end_value() const { return v_end_; }

  double eval(double t) const;
  /// dv/dt at t (0 outside the defined range).
  double slope(double t) const;

  /// Earliest analytic crossing of `level` at or after t_from.
  std::optional<double> crossing(double level, double t_from = 0.0) const;

  /// Dense piecewise-linear sampling (n points per piece).
  numeric::PwlWaveform to_pwl(int samples_per_piece = 8) const;
  /// The paper's Fig. 9 rendering: straight lines connecting the region
  /// boundary (critical point) values only.
  numeric::PwlWaveform critical_point_polyline() const;

 private:
  std::vector<Piece> pieces_;
  double t_end_ = 0.0;
  double v_end_ = 0.0;
  bool finished_ = false;
};

}  // namespace qwm::core
