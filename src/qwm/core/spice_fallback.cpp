#include "qwm/core/spice_fallback.h"

#include <algorithm>
#include <cstddef>

#include "qwm/spice/from_stage.h"
#include "qwm/spice/transient.h"

namespace qwm::core {

bool spice_fallback_evaluate(const circuit::PathProblem& problem,
                             const std::vector<numeric::PwlWaveform>& inputs,
                             const QwmOptions& options, QwmResult& res) {
  const std::size_t m = problem.length();
  if (m == 0) return false;

  spice::PathSim sim =
      spice::circuit_from_path(problem, inputs, options.initial_voltages);

  // Horizon: the transition completes some time after the last input
  // breakpoint; two nanoseconds of settling covers every stage in the
  // paper's size range. Bounded by the same t_max QWM honors.
  double t_in = 0.0;
  for (const auto& el : problem.elements) {
    if (el.kind != circuit::PathProblem::Element::Kind::transistor) continue;
    if (el.input < 0 || el.input >= static_cast<int>(inputs.size())) continue;
    if (!inputs[el.input].empty())
      t_in = std::max(t_in, inputs[el.input].last_time());
  }
  spice::TransientOptions topt;
  topt.dt = 1e-12;
  topt.t_stop = std::min(t_in + 2e-9, options.t_max);

  const spice::TransientResult tr = spice::simulate_transient(sim.circuit, topt);
  if (!tr.stats.converged) return false;

  res.node_waveforms.assign(m, PiecewiseQuadWaveform());
  for (std::size_t k = 1; k <= m; ++k) {
    const numeric::PwlWaveform& raw = tr.waveforms[sim.nodes[k]];
    if (raw.size() < 2) return false;
    // Cap the piece count: delay/slew metrics only need ~ps resolution.
    const numeric::PwlWaveform w =
        raw.size() > 4096 ? raw.resample(0.0, topt.t_stop, 4096) : raw;
    PiecewiseQuadWaveform& out = res.node_waveforms[k - 1];
    for (std::size_t i = 0; i + 1 < w.size(); ++i) {
      const double dt = w.time(i + 1) - w.time(i);
      const double slope = dt > 0.0 ? (w.value(i + 1) - w.value(i)) / dt : 0.0;
      out.add_piece(w.time(i), w.value(i), slope, 0.0);
    }
    out.finish(w.last_time(), w.last_value());
  }
  res.critical_times.assign(1, topt.t_stop);
  res.trace = WarmTrace{};  // simulated waveforms cannot seed warm replays
  res.tail_truncated = false;
  res.stats.newton_iterations += tr.stats.nr_iterations;
  res.stats.linear_solves += tr.stats.linear_solves;
  res.stats.device_evals += tr.stats.device_evals;
  ++res.stats.fallback_counts[kRungSpice];
  res.ok = true;
  res.degraded = true;
  res.solver_failure = false;
  res.error.clear();
  return true;
}

}  // namespace qwm::core
