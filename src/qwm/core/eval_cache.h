// Stage-evaluation memo cache for the STA engine.
//
// A QWM stage evaluation is a pure function of (stage structure, which
// input switches, event direction, input ramp shape); its delay and
// output slew are invariant under time translation of the trigger. The
// cache therefore keys on the structural stage hash (plus the quantized
// load signature), the switching input, the direction, and the quantized
// input slew, and stores the *relative* delay/slew pair — electrically
// identical stages (decoder rows, buffer chains) at any depth share one
// entry.
//
// Concurrency contract (the STA level scheduler's): lookups may run
// concurrently from worker lanes against a frozen map; insert/evict are
// called only from the single-threaded merge phase between levels. The
// hit/miss counters are relaxed atomics so concurrent probing stays
// TSan-clean.
//
// One non-translation-invariant corner is keyed explicitly: a trigger
// whose ramp would start before t = 0 is clamped by the engine, changing
// the waveform shape. Such evaluations carry `clamped = true` plus the
// quantized trigger time in the key instead of polluting the shared
// entries.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "qwm/core/warm_trace.h"
#include "qwm/support/counters.h"

namespace qwm::core {

struct EvalCacheOptions {
  std::size_t max_entries = 1u << 16;
  /// Input-slew quantization bucket [s]. Slews within one bucket share a
  /// cache entry; 0.1 ps keeps the induced delay deviation far below the
  /// model's ~1% accuracy.
  double slew_quantum = 1e-13;
  /// Load-capacitance quantization for the stage load signature [F].
  double load_quantum = 1e-17;
  /// Trigger-time quantization for clamped-ramp keys [s].
  double time_quantum = 1e-13;
  /// Retain each owner's converged region trace alongside its entry so a
  /// near-miss lookup (same stage, adjacent slew bucket) can warm-start
  /// its Newton solves from it. Traces storing more than this many
  /// doubles are dropped; 0 disables trace retention entirely.
  std::size_t max_trace_values = 512;
};

struct StageEvalKey {
  std::uint64_t stage = 0;        ///< structural hash + load signature
  std::int64_t slew_bucket = 0;   ///< quantized trigger 10-90 slew
  std::int64_t time_bucket = 0;   ///< quantized trigger time (clamped only)
  std::int32_t output_index = 0;
  std::int32_t switching_input = 0;
  /// Process corner the evaluation ran at (device::Corner value). A
  /// fast/slow query must never be served a memoized typical result —
  /// the per-corner device models produce genuinely different delays —
  /// so the corner is part of the identity, not a bucket.
  std::int8_t corner = 0;
  bool rising = false;            ///< output event direction
  bool clamped = false;           ///< trigger ramp clamped at t = 0

  bool operator==(const StageEvalKey&) const = default;
};

struct StageEvalKeyHash {
  std::size_t operator()(const StageEvalKey& k) const;
};

/// The memoized outcome: delay relative to the trigger's 50% crossing and
/// the resolved output slew. `ok = false` memoizes failed evaluations.
struct CachedStageResult {
  bool ok = false;
  /// Result came from the fallback ladder, not the nominal solve. Degraded
  /// values are never inserted into the cache (the scheduler clears the
  /// record's cacheable flag), but the flag still rides along so follower
  /// records and arrivals inherit it.
  bool degraded = false;
  double delay = 0.0;
  double slew = 0.0;
  /// Converged region solutions (shared, immutable; null when trace
  /// retention is off or the trace exceeded the size cap). Read-only
  /// warm-start seed for near-miss evaluations.
  std::shared_ptr<const WarmTrace> trace;
};

class StageEvalCache {
 public:
  explicit StageEvalCache(EvalCacheOptions options = {})
      : opt_(options) {}

  /// Pure probe: thread-safe against other probes (not against
  /// insert/clear) and does not touch the statistics. The scheduler
  /// classifies the outcome itself (a miss that duplicates an in-flight
  /// evaluation of the same key still counts as a hit) and records it
  /// through note_hit()/note_miss().
  std::optional<CachedStageResult> peek(const StageEvalKey& key) const;

  void note_hit() const { counters_.hit(); }
  void note_miss() const { counters_.miss(); }

  /// Commit-phase only. Inserting an already-present key is a no-op (the
  /// deterministic merge order decides who wins). Evicts a resident entry
  /// first when at capacity.
  void insert(const StageEvalKey& key, const CachedStageResult& value);

  std::size_t size() const { return map_.size(); }
  support::CacheStats stats() const { return counters_.snapshot(); }
  void reset_stats() { counters_.reset(); }
  /// Drops every entry; statistics are retained.
  void clear() { map_.clear(); }

  const EvalCacheOptions& options() const { return opt_; }

  std::int64_t slew_bucket(double slew) const;
  std::int64_t time_bucket(double time) const;

 private:
  EvalCacheOptions opt_;
  std::unordered_map<StageEvalKey, CachedStageResult, StageEvalKeyHash> map_;
  mutable support::CacheCounters counters_;
};

}  // namespace qwm::core
