#include "qwm/core/waveform.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "qwm/numeric/roots.h"

namespace qwm::core {

void PiecewiseQuadWaveform::add_piece(double t0, double v0, double slope0,
                                      double accel) {
  assert(!finished_);
  assert(pieces_.empty() || t0 >= pieces_.back().t0);
  pieces_.push_back(Piece{t0, v0, slope0, accel});
}

void PiecewiseQuadWaveform::finish(double t_end, double v_end) {
  assert(!finished_);
  t_end_ = t_end;
  v_end_ = v_end;
  finished_ = true;
}

namespace {
double piece_eval(const PiecewiseQuadWaveform::Piece& p, double t) {
  const double dt = t - p.t0;
  return p.v0 + (p.slope0 + p.accel * dt) * dt;
}
}  // namespace

double PiecewiseQuadWaveform::eval(double t) const {
  if (pieces_.empty()) return v_end_;
  if (t <= pieces_.front().t0) return pieces_.front().v0;
  if (finished_ && t >= t_end_) return v_end_;
  // Find the piece containing t.
  std::size_t i = 0;
  while (i + 1 < pieces_.size() && pieces_[i + 1].t0 <= t) ++i;
  return piece_eval(pieces_[i], t);
}

double PiecewiseQuadWaveform::slope(double t) const {
  if (pieces_.empty() || t < pieces_.front().t0 || (finished_ && t > t_end_))
    return 0.0;
  std::size_t i = 0;
  while (i + 1 < pieces_.size() && pieces_[i + 1].t0 <= t) ++i;
  const double dt = t - pieces_[i].t0;
  return pieces_[i].slope0 + 2.0 * pieces_[i].accel * dt;
}

std::optional<double> PiecewiseQuadWaveform::crossing(double level,
                                                      double t_from) const {
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    const Piece& p = pieces_[i];
    const double t1 =
        (i + 1 < pieces_.size()) ? pieces_[i + 1].t0 : t_end_;
    if (t1 < t_from || t1 <= p.t0) continue;
    // Solve accel*dt^2 + slope0*dt + (v0 - level) = 0 within [0, t1-t0].
    const auto roots =
        numeric::quadratic_roots(p.accel, p.slope0, p.v0 - level);
    for (double r : roots) {
      const double t = p.t0 + r;
      const double hi = t1 + 1e-18;
      if (r >= -1e-18 && t <= hi && t >= t_from) return std::min(t, t1);
    }
  }
  return std::nullopt;
}

numeric::PwlWaveform PiecewiseQuadWaveform::to_pwl(
    int samples_per_piece) const {
  numeric::PwlWaveform out;
  if (pieces_.empty()) return out;
  double last_t = -std::numeric_limits<double>::infinity();
  const auto push = [&](double t, double v) {
    if (t > last_t) {
      out.append(t, v);
      last_t = t;
    }
  };
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    const Piece& p = pieces_[i];
    const double t1 = (i + 1 < pieces_.size()) ? pieces_[i + 1].t0 : t_end_;
    if (t1 <= p.t0) {
      push(p.t0, p.v0);
      continue;
    }
    for (int k = 0; k < samples_per_piece; ++k) {
      const double t =
          p.t0 + (t1 - p.t0) * static_cast<double>(k) / samples_per_piece;
      push(t, piece_eval(p, t));
    }
  }
  push(t_end_, v_end_);
  return out;
}

numeric::PwlWaveform PiecewiseQuadWaveform::critical_point_polyline() const {
  numeric::PwlWaveform out;
  double last_t = -std::numeric_limits<double>::infinity();
  for (const Piece& p : pieces_) {
    if (p.t0 > last_t) {
      out.append(p.t0, p.v0);
      last_t = p.t0;
    }
  }
  if (t_end_ > last_t) out.append(t_end_, v_end_);
  return out;
}

}  // namespace qwm::core
