#include "qwm/core/elmore_eval.h"

#include <cmath>

namespace qwm::core {

double effective_resistance(const device::DeviceModel& model, double w,
                            double l, double vdd) {
  // Mid-swing chord in the event frame. For NMOS: gate at VDD, source at
  // 0, drain at VDD/2. PMOS mirrors through the model's own polarity
  // handling (source at VDD, gate 0, drain at VDD/2).
  device::TerminalVoltages tv;
  double i;
  if (model.mos_type() == device::MosType::nmos) {
    tv.input = vdd;
    tv.src = 0.5 * vdd;  // drain (edge src = supply side)
    tv.snk = 0.0;
    i = model.iv(w, l, tv);
  } else {
    tv.input = 0.0;
    tv.src = vdd;         // source at the supply
    tv.snk = 0.5 * vdd;   // drain half-swing
    i = model.iv(w, l, tv);
  }
  const double i_abs = std::abs(i);
  if (i_abs < 1e-15) return 1e15;  // effectively non-conducting
  return 0.5 * vdd / i_abs;
}

ElmoreTiming evaluate_stage_elmore(const circuit::LogicStage& stage,
                                   circuit::NodeId output, bool output_falls,
                                   const device::ModelSet& models) {
  ElmoreTiming out;
  const auto path = circuit::extract_worst_path(stage, output, output_falls);
  if (path.elements.empty()) {
    out.error = "no conducting path from output to the event rail";
    return out;
  }
  const auto prob = circuit::build_path_problem(stage, path, models);

  // Per-element resistance, rail -> output.
  for (const auto& el : prob.elements) {
    if (el.kind == circuit::PathProblem::Element::Kind::resistor)
      out.resistances.push_back(el.resistance);
    else
      out.resistances.push_back(
          effective_resistance(*el.model, el.w, el.l, prob.vdd));
  }

  // Elmore at the output of a chain: sum over nodes of (cumulative
  // resistance from the rail) * node cap.
  double r_cum = 0.0;
  double tau = 0.0;
  for (std::size_t k = 0; k < prob.node_caps.size(); ++k) {
    r_cum += out.resistances[k];
    tau += r_cum * prob.node_caps[k];
  }
  out.elmore = tau;
  out.delay = std::log(2.0) * tau;
  out.ok = true;
  return out;
}

}  // namespace qwm::core
