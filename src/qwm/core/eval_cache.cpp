#include "qwm/core/eval_cache.h"

#include <cmath>

#include "qwm/circuit/stage_hash.h"

namespace qwm::core {

std::size_t StageEvalKeyHash::operator()(const StageEvalKey& k) const {
  std::uint64_t h = k.stage;
  h = circuit::hash_combine(h, static_cast<std::uint64_t>(k.slew_bucket));
  h = circuit::hash_combine(h, static_cast<std::uint64_t>(k.time_bucket));
  h = circuit::hash_combine(h, static_cast<std::uint64_t>(k.output_index));
  h = circuit::hash_combine(h,
                            static_cast<std::uint64_t>(k.switching_input));
  h = circuit::hash_combine(
      h, (static_cast<std::uint64_t>(k.corner) << 2) |
             (k.rising ? 2ULL : 0ULL) | (k.clamped ? 1ULL : 0ULL));
  return static_cast<std::size_t>(h);
}

std::int64_t StageEvalCache::slew_bucket(double slew) const {
  if (opt_.slew_quantum <= 0.0) return std::llround(slew * 1e15);
  return std::llround(slew / opt_.slew_quantum);
}

std::int64_t StageEvalCache::time_bucket(double time) const {
  if (opt_.time_quantum <= 0.0) return std::llround(time * 1e15);
  return std::llround(time / opt_.time_quantum);
}

std::optional<CachedStageResult> StageEvalCache::peek(
    const StageEvalKey& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void StageEvalCache::insert(const StageEvalKey& key,
                            const CachedStageResult& value) {
  if (map_.count(key)) return;
  if (opt_.max_entries > 0 && map_.size() >= opt_.max_entries) {
    // Capacity eviction: drop the first resident entry. unordered_map
    // iteration order is an arbitrary-but-deterministic function of the
    // insertion history, which keeps serial and parallel runs identical.
    map_.erase(map_.begin());
    counters_.eviction();
  }
  map_.emplace(key, value);
  counters_.insertion();
}

}  // namespace qwm::core
