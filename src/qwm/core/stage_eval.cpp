#include "qwm/core/stage_eval.h"

#include <algorithm>
#include <map>

#include "qwm/core/workspace.h"

namespace qwm::core {

StageTiming evaluate_stage(const circuit::LogicStage& stage,
                           circuit::NodeId output, bool output_falls,
                           const std::vector<numeric::PwlWaveform>& inputs,
                           circuit::InputId switching_input,
                           const device::ModelSet& models,
                           const QwmOptions& options) {
  EvalWorkspace ws;
  return evaluate_stage(stage, output, output_falls, inputs, switching_input,
                        models, options, ws);
}

StageTiming evaluate_stage(const circuit::LogicStage& stage,
                           circuit::NodeId output, bool output_falls,
                           const std::vector<numeric::PwlWaveform>& inputs,
                           circuit::InputId switching_input,
                           const device::ModelSet& models,
                           const QwmOptions& options, EvalWorkspace& ws) {
  StageTiming out;
  out.path = circuit::extract_worst_path(stage, output, output_falls);
  if (out.path.elements.empty()) {
    out.error = "no conducting path from output to the event rail";
    return out;
  }
  out.problem = circuit::build_path_problem(stage, out.path, models);
  out.qwm = evaluate_path(out.problem, inputs, options, ws);
  if (!out.qwm.ok) {
    out.error = out.qwm.error;
    return out;
  }
  out.ok = true;

  const double vdd = models.vdd();
  const double v_mid = 0.5 * vdd;
  // Input 50% crossing (in the direction that triggers the event: rising
  // for a discharge through NMOS, falling for a charge through PMOS).
  std::optional<double> t_in;
  if (switching_input >= 0 &&
      switching_input < static_cast<int>(inputs.size()))
    t_in = inputs[switching_input].crossing(v_mid, 0.0, output_falls);
  const auto t_out = out.qwm.output_waveform().crossing(v_mid);
  if (t_in && t_out && *t_out >= *t_in) out.delay = *t_out - *t_in;

  const double v_hi = 0.9 * vdd, v_lo = 0.1 * vdd;
  const auto& w = out.qwm.output_waveform();
  if (output_falls) {
    const auto t1 = w.crossing(v_hi);
    const auto t2 = t1 ? w.crossing(v_lo, *t1) : std::nullopt;
    if (t1 && t2) out.output_slew = *t2 - *t1;
  } else {
    const auto t1 = w.crossing(v_lo);
    const auto t2 = t1 ? w.crossing(v_hi, *t1) : std::nullopt;
    if (t1 && t2) out.output_slew = *t2 - *t1;
  }
  return out;
}

StageTiming evaluate_stage(const circuit::BuiltStage& built,
                           const std::vector<numeric::PwlWaveform>& inputs,
                           const device::ModelSet& models,
                           const QwmOptions& options) {
  return evaluate_stage(built.stage, built.output, built.output_falls, inputs,
                        built.switching_input, models, options);
}

StageTiming evaluate_stage(const circuit::BuiltStage& built,
                           const std::vector<numeric::PwlWaveform>& inputs,
                           const device::ModelSet& models,
                           const QwmOptions& options, EvalWorkspace& ws) {
  return evaluate_stage(built.stage, built.output, built.output_falls, inputs,
                        built.switching_input, models, options, ws);
}

std::vector<StageTiming> evaluate_stage_corners(
    const circuit::LogicStage& stage, circuit::NodeId output,
    bool output_falls, const std::vector<numeric::PwlWaveform>& inputs,
    circuit::InputId switching_input, const device::CornerModelSet& models,
    const QwmOptions& options) {
  EvalWorkspace ws;
  return evaluate_stage_corners(stage, output, output_falls, inputs,
                                switching_input, models, options, ws);
}

std::vector<StageTiming> evaluate_stage_corners(
    const circuit::LogicStage& stage, circuit::NodeId output,
    bool output_falls, const std::vector<numeric::PwlWaveform>& inputs,
    circuit::InputId switching_input, const device::CornerModelSet& models,
    const QwmOptions& options, EvalWorkspace& ws) {
  std::vector<StageTiming> out;
  out.reserve(models.count());

  QwmOptions primary_opt = options;
  if (models.multi()) primary_opt.record_trace = true;
  out.push_back(evaluate_stage(stage, output, output_falls, inputs,
                               switching_input, models.primary(), primary_opt,
                               ws));

  // A degraded primary came off the fallback ladder; its trajectory is not
  // a trustworthy seed, so sibling corners solve cold in that case. (A warm
  // solve that diverges retries cold anyway — this just skips the detour.)
  const StageTiming& primary = out.front();
  const bool seed = primary.ok && !primary.qwm.degraded &&
                    !primary.qwm.trace.regions.empty();
  for (std::size_t s = 1; s < models.corners.size(); ++s) {
    QwmOptions lane_opt = options;
    if (seed) {
      lane_opt.warm = &primary.qwm.trace;
      lane_opt.warm_scale = device::warm_time_scale(
          models.primary(), models.at(models.corners[s]));
    }
    out.push_back(evaluate_stage(stage, output, output_falls, inputs,
                                 switching_input, models.at(models.corners[s]),
                                 lane_opt, ws));
  }
  return out;
}

std::vector<StageTiming> evaluate_stage_corners(
    const circuit::BuiltStage& built,
    const std::vector<numeric::PwlWaveform>& inputs,
    const device::CornerModelSet& models, const QwmOptions& options) {
  return evaluate_stage_corners(built.stage, built.output, built.output_falls,
                                inputs, built.switching_input, models,
                                options);
}

namespace {

/// Fills delay/slew of an OutputTiming from its waveform.
void measure_output(OutputTiming* out, double vdd, bool falls,
                    const std::vector<numeric::PwlWaveform>& inputs,
                    circuit::InputId switching_input) {
  const double v_mid = 0.5 * vdd;
  std::optional<double> t_in;
  if (switching_input >= 0 &&
      switching_input < static_cast<int>(inputs.size()))
    t_in = inputs[switching_input].crossing(v_mid, 0.0, falls);
  const auto t_out = out->waveform.crossing(v_mid);
  if (t_in && t_out && *t_out >= *t_in) out->delay = *t_out - *t_in;

  const double v_hi = 0.9 * vdd, v_lo = 0.1 * vdd;
  const auto t1 = out->waveform.crossing(falls ? v_hi : v_lo);
  const auto t2 =
      t1 ? out->waveform.crossing(falls ? v_lo : v_hi, *t1) : std::nullopt;
  if (t1 && t2) out->slew = *t2 - *t1;
}

}  // namespace

std::vector<OutputTiming> evaluate_all_outputs(
    const circuit::LogicStage& stage, bool outputs_fall,
    const std::vector<numeric::PwlWaveform>& inputs,
    circuit::InputId switching_input, const device::ModelSet& models,
    const QwmOptions& options) {
  EvalWorkspace ws;
  return evaluate_all_outputs(stage, outputs_fall, inputs, switching_input,
                              models, options, ws);
}

std::vector<OutputTiming> evaluate_all_outputs(
    const circuit::LogicStage& stage, bool outputs_fall,
    const std::vector<numeric::PwlWaveform>& inputs,
    circuit::InputId switching_input, const device::ModelSet& models,
    const QwmOptions& options, EvalWorkspace& ws) {
  // Extract every output's path up front and order longest-first so the
  // sharing pass covers as many outputs as possible per QWM run.
  struct Pending {
    circuit::NodeId node;
    circuit::ExtractedPath path;
  };
  std::vector<Pending> pending;
  for (circuit::NodeId out : stage.outputs())
    pending.push_back(
        {out, circuit::extract_worst_path(stage, out, outputs_fall)});
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              return a.path.elements.size() > b.path.elements.size();
            });

  std::vector<OutputTiming> results;
  // node -> index into `results` for already-covered outputs.
  std::map<circuit::NodeId, std::size_t> done;

  for (const Pending& p : pending) {
    if (done.count(p.node)) continue;
    OutputTiming primary;
    primary.node = p.node;
    if (p.path.elements.empty()) {
      results.push_back(std::move(primary));
      done[p.node] = results.size() - 1;
      continue;
    }
    const auto prob = circuit::build_path_problem(stage, p.path, models);
    const QwmResult qwm = evaluate_path(prob, inputs, options, ws);
    if (qwm.ok) {
      // This run covers every declared output sitting on the path.
      for (std::size_t k = 0; k < prob.nodes.size(); ++k) {
        const circuit::NodeId n = prob.nodes[k];
        if (done.count(n)) continue;
        const bool declared =
            std::find(stage.outputs().begin(), stage.outputs().end(), n) !=
            stage.outputs().end();
        if (!declared) continue;
        OutputTiming t;
        t.node = n;
        t.ok = true;
        t.waveform = qwm.node_waveforms[k];
        t.shared_path = (n != p.node);
        measure_output(&t, models.vdd(), outputs_fall, inputs,
                       switching_input);
        results.push_back(std::move(t));
        done[n] = results.size() - 1;
      }
    } else {
      results.push_back(std::move(primary));
      done[p.node] = results.size() - 1;
    }
  }
  // Stable order: by stage output declaration.
  std::vector<OutputTiming> ordered;
  for (circuit::NodeId out : stage.outputs()) {
    const auto it = done.find(out);
    if (it != done.end()) ordered.push_back(std::move(results[it->second]));
  }
  return ordered;
}

}  // namespace qwm::core
