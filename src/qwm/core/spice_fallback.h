// Last-resort rung of the QWM fallback ladder: when every in-process
// region solver (plain NR, damped NR, bisection) fails on a well-posed
// path problem, the same lumped path is handed to the in-repo SPICE
// transient engine — the golden reference the differential tests compare
// against — and its waveforms replace the QWM result. Slow (a full
// time-stepped integration) but essentially never wrong, which is the
// right trade for a rung that should fire almost never.
#pragma once

#include <vector>

#include "qwm/circuit/path.h"
#include "qwm/core/qwm.h"
#include "qwm/numeric/pwl.h"

namespace qwm::core {

/// Re-evaluates `problem` with the SPICE transient engine and, on
/// success, overwrites `res` in place: node_waveforms are replaced by the
/// simulated (piecewise-linear) waveforms, ok/degraded are set, and
/// fallback_counts[kRungSpice] is bumped. Transient work is added to the
/// existing stats. Returns false (leaving `res` failed) when the
/// transient itself does not converge.
bool spice_fallback_evaluate(const circuit::PathProblem& problem,
                             const std::vector<numeric::PwlWaveform>& inputs,
                             const QwmOptions& options, QwmResult& res);

}  // namespace qwm::core
