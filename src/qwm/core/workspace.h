// Reusable scratch arena for QWM path evaluations.
//
// One stage evaluation runs K region solves, each a small Newton
// iteration; naively every region (and every Newton iteration inside it)
// re-allocates a dozen short vectors. An EvalWorkspace owns all of that
// storage with grow-only semantics: buffers are resized with assign()
// (which reuses capacity), so after the first evaluation at a given path
// size the entire region-solve hot path performs zero heap allocations.
//
// Ownership rules:
//  * One workspace per engine lane. Workspaces are NOT thread-safe;
//    concurrent evaluations need one workspace each (the STA engine keeps
//    one per worker lane).
//  * Buffers are engine-internal scratch: their contents are unspecified
//    between evaluate_path() calls, and several are clobbered by every
//    region solve. Callers only construct the workspace and read stats().
//  * Aliasing: `jc` is shared by the probe, the KCL current refresh, and
//    the Newton residual state (they never overlap in time); `jmat`/`rhs`
//    are shared by the dense LU fallback and the cubic solver. Everything
//    else is a distinct buffer.
//
// checkpoint() (called once per evaluation) folds the current footprint
// into the high-water statistics; a flat high-water mark with zero new
// grow events across repeated evaluations is the observable proof of
// allocation-freeness that the tier-1 workspace test pins.
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "qwm/core/warm_trace.h"
#include "qwm/device/tabular_model.h"
#include "qwm/support/fault_injection.h"
#include "qwm/numeric/matrix.h"
#include "qwm/numeric/newton.h"
#include "qwm/numeric/sherman_morrison.h"
#include "qwm/numeric/tridiagonal.h"

namespace qwm::core {

/// Event-direction current through one path element plus its partial
/// derivatives w.r.t. the adjacent node voltages and the gate.
struct ElementCurrent {
  double j = 0.0;       ///< event-direction current through the element
  double d_near = 0.0;  ///< dJ/dV(near position)
  double d_far = 0.0;   ///< dJ/dV(far position)
  double d_gate = 0.0;  ///< dJ/dG
};

/// Static per-element coefficients for the batched device path, built once
/// per evaluation from the path topology and the shared tabular model: the
/// map_iv() sign, the geometry scale (two divides hoisted out of every
/// Newton iteration), and the resistor conductance folded with the event
/// direction. All values reproduce the scalar path's arithmetic exactly —
/// ±1 sign factors and precomputed products of the same operands preserve
/// bit-identity.
struct ElementPlan {
  double sgn = 0.0;    ///< transistor: map_iv event-direction sign (±1)
  double scale = 0.0;  ///< transistor: (w / w_ref) * (l_ref / l)
  double g_dir = 0.0;  ///< resistor: event-direction conductance dir / R
  char is_resistor = 0;
  char src_is_far = 0;
};

struct WorkspaceStats {
  std::size_t bytes = 0;             ///< current footprint (capacities)
  std::size_t high_water_bytes = 0;  ///< max footprint at any checkpoint
  std::size_t grow_events = 0;       ///< checkpoints where footprint grew
  std::size_t evals = 0;             ///< checkpoints (one per evaluation)
};

class EvalWorkspace {
 public:
  // --- Engine state, sized to the path length m (+1 rail slot). ---
  std::vector<double> v_node;  ///< node voltages; [0] = rail
  std::vector<double> i_node;  ///< node currents C dV/dt, index 1..m
  std::vector<char> on_flags;  ///< per element: conducting?
  std::vector<double> targets; ///< resolved tail target voltages

  // --- Element-current evaluation (probe / refresh / Newton state). ---
  std::vector<ElementCurrent> jc;  ///< per element, index e+1
  std::vector<double> vp;          ///< probe voltages
  std::vector<double> i_probe;     ///< probed end-of-region currents

  // --- Batched SoA device-eval staging (frame coordinates per device). ---
  std::vector<double> frame_g;   ///< gate voltage, NMOS frame
  std::vector<double> frame_lo;  ///< frame source (vd >= vs ordering)
  std::vector<double> frame_hi;  ///< frame drain
  std::vector<device::TabularDeviceModel::FrameEval> frame_eval;
  std::vector<int> frame_elem;   ///< element index per batched device
  std::vector<char> frame_swap;  ///< source/drain exchanged in-frame
  std::vector<ElementPlan> elem_plan;  ///< static per-element coefficients
  std::vector<double> inv_caps;        ///< 1 / node_caps, hoisted per run

  // --- r = 1 region solve. ---
  std::vector<double> vv;       ///< node voltages at the region end
  std::vector<double> cache_x;  ///< residual/Jacobian shared-state key
  numeric::Tridiagonal tri;     ///< Jacobian band part
  std::vector<double> u_col;    ///< rank-one Delta column
  std::vector<double> v_col;    ///< rank-one selector e_n
  std::vector<double> dv_dx;    ///< dV(t1)/d alpha
  std::vector<double> dv_ddt;   ///< dV(t1)/d Delta
  std::vector<double> rhs;      ///< Newton linear-step right-hand side
  numeric::Vector xv;           ///< Newton unknowns
  std::vector<double> accel;    ///< committed piece coefficients
  std::vector<double> slope;
  numeric::Matrix jmat;         ///< dense LU fallback / cubic Jacobian
  numeric::NewtonScratch newton;
  numeric::ShermanMorrisonScratch sm;

  // --- r = 2 (cubic) region solve. ---
  std::vector<double> vm;  ///< midpoint voltages
  std::vector<double> ve;  ///< endpoint voltages
  std::vector<ElementCurrent> jm;
  std::vector<ElementCurrent> je;

  // --- Warm-start state (previous tail region's converged solution). ---
  WarmTrace::Region prev_tail;
  std::vector<double> prev_i_start;  ///< node currents at that region's start

  /// Current footprint: the sum of every buffer's reserved capacity.
  std::size_t bytes() const {
    auto cap = [](const auto& v) {
      return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
    };
    std::size_t b = cap(v_node) + cap(i_node) + cap(on_flags) + cap(targets) +
                    cap(jc) + cap(vp) + cap(i_probe) + cap(frame_g) +
                    cap(frame_lo) + cap(frame_hi) + cap(frame_eval) +
                    cap(frame_elem) + cap(frame_swap) + cap(elem_plan) +
                    cap(inv_caps) + cap(vv) +
                    cap(cache_x) + cap(u_col) + cap(v_col) + cap(dv_dx) +
                    cap(dv_ddt) + cap(rhs) + cap(xv) + cap(accel) +
                    cap(slope) + cap(vm) + cap(ve) + cap(jm) + cap(je) +
                    cap(prev_tail.alphas) + cap(prev_i_start);
    b += cap(tri.lower) + cap(tri.diag) + cap(tri.upper);
    b += jmat.rows() * jmat.cols() * sizeof(double);
    b += cap(newton.f) + cap(newton.dx) + cap(newton.x_trial) +
         cap(newton.f_trial);
    b += cap(sm.y) + cap(sm.z) + cap(sm.cp);
    return b;
  }

  /// Folds the present footprint into the high-water statistics. Called
  /// once per evaluate_path(); a steady-state workspace reports the same
  /// high_water_bytes and grow_events forever after.
  void checkpoint() {
    ++evals_;
    const std::size_t b = bytes();
    if (b > high_water_ ||
        support::fire_fault(support::FaultSite::kWorkspaceGrow)) {
      high_water_ = std::max(high_water_, b);
      ++grow_events_;
    }
  }

  WorkspaceStats stats() const {
    WorkspaceStats s;
    s.bytes = bytes();
    s.high_water_bytes = high_water_;
    s.grow_events = grow_events_;
    s.evals = evals_;
    return s;
  }

 private:
  std::size_t high_water_ = 0;
  std::size_t grow_events_ = 0;
  std::size_t evals_ = 0;
};

}  // namespace qwm::core
