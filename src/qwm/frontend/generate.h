// Deterministic synthetic mega-circuit generators.
//
// Three topology families, each parameterised by a stage count and a
// seed, each emitting a GateNetlist (so a generated design can be
// analysed in-memory or written out as .blif and re-read bit-identically):
//
//   grid  — 2D mesh of cells, each fed by its up and left neighbours
//           (boundary cells by primary inputs). Wide and shallow:
//           ~sqrt(n) levels with ~sqrt(n) stages per level. The
//           level-scheduler-friendly shape.
//   tree  — log-depth pairing reduction over stages+1 primary inputs.
//           Narrow near the root; stresses level imbalance.
//   dag   — random DAG with a sliding dependency window: each gate draws
//           1-4 distinct predecessors from the last `width` nets.
//           Irregular fan-in/fan-out; the dependency-scheduler shape.
//
// Gate type and drive strength per cell come from a splitmix64 hash of
// (seed, index), so generation is order-independent and reproducible:
// the same GenSpec always produces the same netlist_hash on every
// platform, which the determinism tests pin.
//
// Specs are spelled "gen:<topo>:<stages>[:seed=<s>][:width=<w>]", e.g.
// "gen:grid:100000:seed=7". The stage count accepts scientific notation
// ("gen:dag:1e5"). The spec string is the LOAD / qwm_sim interface for
// generated designs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "qwm/frontend/gate_netlist.h"

namespace qwm::frontend {

enum class GenTopology { grid, tree, dag };

struct GenSpec {
  GenTopology topology = GenTopology::grid;
  std::size_t stages = 0;
  std::uint64_t seed = 1;
  /// dag only: dependency window (how far back predecessors may reach).
  std::size_t width = 64;
};

/// True if `source` has the "gen:" spec prefix (vs a file path).
bool is_gen_spec(const std::string& source);

/// Parses "gen:<topo>:<stages>[:seed=<s>][:width=<w>]"; on failure
/// returns nullopt and, if `error` is non-null, a one-line reason.
std::optional<GenSpec> parse_gen_spec(const std::string& source,
                                      std::string* error = nullptr);

/// Generates the netlist for a spec. The result has exactly spec.stages
/// gate instances for every topology.
GateNetlist generate_netlist(const GenSpec& spec);

}  // namespace qwm::frontend
