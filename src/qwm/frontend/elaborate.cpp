#include "qwm/frontend/elaborate.h"

#include <unordered_map>
#include <unordered_set>

#include "qwm/circuit/builders.h"

namespace qwm::frontend {

namespace {

/// Device widths of one gate instance: the builders' defaults scaled by
/// the instance drive strength.
struct DriveWidths {
  double wn = 0.0;
  double wp = 0.0;
};

DriveWidths drive_widths(const device::Process& proc, double strength) {
  return {strength * proc.w_min, strength * 2.0 * proc.w_min};
}

/// Input capacitance one pin of `gate` presents to its driver: each pin
/// gates one NMOS and one PMOS (series or parallel alike).
double pin_cap(const device::ModelSet& models, const GateInst& gate) {
  const device::Process& proc = *models.process;
  const DriveWidths w = drive_widths(proc, gate.strength);
  return models.nmos->input_cap(w.wn, proc.l_min) +
         models.pmos->input_cap(w.wp, proc.l_min);
}

circuit::BuiltStage build_gate(const device::Process& proc,
                               const GateInst& gate, double load_cap) {
  const DriveWidths w = drive_widths(proc, gate.strength);
  const int fanin = gate_fanin(gate.type);
  switch (gate.type) {
    case GateType::inv:
      return circuit::make_inverter(proc, load_cap, w.wn, w.wp);
    case GateType::nand2:
    case GateType::nand3:
    case GateType::nand4:
      return circuit::make_nand(proc, fanin, load_cap, w.wn, w.wp);
    case GateType::nor2:
    case GateType::nor3:
    case GateType::nor4:
      break;
  }
  return circuit::make_nor(proc, fanin, load_cap, w.wn, w.wp);
}

}  // namespace

ElaboratedDesign elaborate(const GateNetlist& netlist,
                           const device::ModelSet& models) {
  ElaboratedDesign out;
  const device::Process& proc = *models.process;
  out.design.vdd = proc.vdd;
  out.design.vdd_net = -1;

  // Summed consumer input capacitance per net (partition_netlist's
  // gate_load), and the set of consumed nets for sink detection.
  std::unordered_map<std::string, double> fanin_cap;
  for (const GateInst& g : netlist.gates) {
    const double cap = pin_cap(models, g);
    for (const std::string& in : g.inputs) fanin_cap[in] += cap;
  }
  std::unordered_set<std::string> declared_out(netlist.outputs.begin(),
                                               netlist.outputs.end());
  const double external_load = circuit::fanout_load_cap(proc);

  out.design.stages.reserve(netlist.gates.size());
  for (std::size_t i = 0; i < netlist.gates.size(); ++i) {
    const GateInst& g = netlist.gates[i];
    const auto fc = fanin_cap.find(g.output);
    double load = fc != fanin_cap.end() ? fc->second : 0.0;
    if (declared_out.count(g.output) || fc == fanin_cap.end())
      load += external_load;
    circuit::BuiltStage built = build_gate(proc, g, load);

    circuit::StageInfo info(proc.vdd);
    info.stage = std::move(built.stage);
    info.input_nets.reserve(g.inputs.size());
    for (const std::string& in : g.inputs)
      info.input_nets.push_back(out.nl.net(in));
    const netlist::NetId out_net = out.nl.net(g.output);
    info.output_nets.push_back(out_net);
    out.design.driver_of[out_net] = {static_cast<int>(i), 0};
    out.design.stages.push_back(std::move(info));
  }

  // Primary inputs in declaration order; any undeclared, undriven net a
  // gate reads joins them (parse-time semantics already flagged it).
  std::unordered_set<netlist::NetId> pi_seen;
  for (const std::string& n : netlist.inputs) {
    const netlist::NetId id = out.nl.net(n);
    if (pi_seen.insert(id).second) out.design.primary_inputs.push_back(id);
  }
  for (const circuit::StageInfo& info : out.design.stages)
    for (const netlist::NetId in : info.input_nets)
      if (!out.design.driver_of.count(in) && pi_seen.insert(in).second)
        out.design.primary_inputs.push_back(in);
  return out;
}

}  // namespace qwm::frontend
