#include "qwm/frontend/generate.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

namespace qwm::frontend {

namespace {

/// splitmix64 finalizer — stable across platforms, no global state.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-cell hash: a function of (seed, index) only, so any generation
/// order (or partial generation) produces identical decisions.
std::uint64_t cell_hash(std::uint64_t seed, std::uint64_t index) {
  return splitmix64(seed ^ splitmix64(index + 1));
}

double pick_strength(std::uint64_t h) {
  static constexpr double kStrengths[3] = {1.0, 2.0, 4.0};
  return kStrengths[(h >> 8) % 3];
}

/// Declares every gate-output net nobody consumes (plus nothing else) as
/// a primary output, in gate order, so no stage dangles unloaded.
void declare_sink_outputs(GateNetlist* gn) {
  std::unordered_set<std::string> consumed;
  for (const GateInst& g : gn->gates)
    for (const std::string& in : g.inputs) consumed.insert(in);
  for (const GateInst& g : gn->gates)
    if (!consumed.count(g.output)) gn->outputs.push_back(g.output);
}

GateNetlist generate_grid(const GenSpec& spec) {
  GateNetlist gn;
  gn.model = "grid";
  const std::size_t n = spec.stages;
  const std::size_t cols =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  std::unordered_set<std::string> declared_pis;
  const auto use_pi = [&](const std::string& name) {
    if (declared_pis.insert(name).second) gn.inputs.push_back(name);
    return name;
  };
  gn.gates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = i / cols, c = i % cols;
    const std::uint64_t h = cell_hash(spec.seed, i);
    // Up and left neighbours; boundary cells fall back to edge PIs.
    const std::string up = r > 0 ? "n" + std::to_string(i - cols)
                                 : use_pi("pi_c" + std::to_string(c));
    const std::string left = c > 0 ? "n" + std::to_string(i - 1)
                                   : use_pi("pi_r" + std::to_string(r));
    GateInst g;
    g.strength = pick_strength(h);
    g.output = "n" + std::to_string(i);
    switch (h % 3) {
      case 0:
        g.type = GateType::inv;
        g.inputs = {(h >> 16) & 1 ? left : up};
        break;
      case 1:
        g.type = GateType::nand2;
        g.inputs = {up, left};
        break;
      default:
        g.type = GateType::nor2;
        g.inputs = {up, left};
        break;
    }
    gn.gates.push_back(std::move(g));
  }
  declare_sink_outputs(&gn);
  return gn;
}

GateNetlist generate_tree(const GenSpec& spec) {
  GateNetlist gn;
  gn.model = "tree";
  // stages+1 leaves pair-reduce to one root in exactly `stages` gates
  // (every fanin-2 gate lowers the frontier count by one).
  std::vector<std::string> frontier;
  frontier.reserve(spec.stages + 1);
  for (std::size_t j = 0; j <= spec.stages; ++j) {
    frontier.push_back("pi" + std::to_string(j));
    gn.inputs.push_back(frontier.back());
  }
  gn.gates.reserve(spec.stages);
  std::size_t gate_index = 0;
  while (frontier.size() > 1) {
    std::vector<std::string> next;
    next.reserve((frontier.size() + 1) / 2);
    for (std::size_t k = 0; k + 1 < frontier.size(); k += 2) {
      const std::uint64_t h = cell_hash(spec.seed, gate_index);
      GateInst g;
      g.type = h & 1 ? GateType::nand2 : GateType::nor2;
      g.strength = pick_strength(h);
      g.inputs = {frontier[k], frontier[k + 1]};
      g.output = "t" + std::to_string(gate_index++);
      next.push_back(g.output);
      gn.gates.push_back(std::move(g));
    }
    if (frontier.size() & 1) next.push_back(frontier.back());  // odd carry
    frontier = std::move(next);
  }
  declare_sink_outputs(&gn);
  return gn;
}

GateNetlist generate_dag(const GenSpec& spec) {
  GateNetlist gn;
  gn.model = "dag";
  const std::size_t window = spec.width > 0 ? spec.width : 1;
  const std::size_t npis =
      std::max<std::size_t>(2, std::min<std::size_t>(window, 16));
  std::vector<std::string> nets;  // PIs then gate outputs, in order
  nets.reserve(npis + spec.stages);
  for (std::size_t j = 0; j < npis; ++j) {
    nets.push_back("pi" + std::to_string(j));
    gn.inputs.push_back(nets.back());
  }
  static constexpr GateType kByFanin[2][4] = {
      {GateType::inv, GateType::nand2, GateType::nand3, GateType::nand4},
      {GateType::inv, GateType::nor2, GateType::nor3, GateType::nor4},
  };
  gn.gates.reserve(spec.stages);
  for (std::size_t i = 0; i < spec.stages; ++i) {
    const std::uint64_t h = cell_hash(spec.seed, i);
    const std::size_t reach = std::min(window, nets.size());
    std::size_t fanin = 1 + h % 4;
    if (fanin > reach) fanin = reach;
    GateInst g;
    g.type = kByFanin[(h >> 2) & 1][fanin - 1];
    g.strength = pick_strength(h);
    const std::size_t base = nets.size() - reach;
    // Distinct predecessors from the last `reach` nets; linear probing
    // keeps the draw deterministic without per-gate allocation.
    std::vector<std::size_t> picks;
    for (std::size_t j = 0; j < fanin; ++j) {
      std::size_t idx = (h >> (16 + 8 * j)) % reach;
      while (true) {
        bool taken = false;
        for (std::size_t p : picks) taken = taken || p == idx;
        if (!taken) break;
        idx = (idx + 1) % reach;
      }
      picks.push_back(idx);
      g.inputs.push_back(nets[base + idx]);
    }
    g.output = "n" + std::to_string(i);
    nets.push_back(g.output);
    gn.gates.push_back(std::move(g));
  }
  declare_sink_outputs(&gn);
  return gn;
}

}  // namespace

bool is_gen_spec(const std::string& source) {
  return source.rfind("gen:", 0) == 0;
}

std::optional<GenSpec> parse_gen_spec(const std::string& source,
                                      std::string* error) {
  const auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return std::nullopt;
  };
  if (!is_gen_spec(source))
    return fail("generator spec must start with 'gen:'");
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= source.size()) {
    const auto colon = source.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(source.substr(begin));
      break;
    }
    parts.push_back(source.substr(begin, colon - begin));
    begin = colon + 1;
  }
  if (parts.size() < 3)
    return fail("expected gen:<topo>:<stages>[:seed=<s>][:width=<w>]");
  GenSpec spec;
  if (parts[1] == "grid") {
    spec.topology = GenTopology::grid;
  } else if (parts[1] == "tree") {
    spec.topology = GenTopology::tree;
  } else if (parts[1] == "dag") {
    spec.topology = GenTopology::dag;
  } else {
    return fail("unknown topology '" + parts[1] +
                "' (expected grid, tree, or dag)");
  }
  {
    char* end = nullptr;
    const double v = std::strtod(parts[2].c_str(), &end);
    if (end == parts[2].c_str() || *end != '\0' || !(v >= 1.0) ||
        v != std::floor(v))
      return fail("bad stage count '" + parts[2] + "'");
    if (v > 1e7) return fail("stage count above the 1e7 sanity cap");
    spec.stages = static_cast<std::size_t>(v);
  }
  for (std::size_t p = 3; p < parts.size(); ++p) {
    const auto eq = parts[p].find('=');
    const std::string key =
        eq == std::string::npos ? parts[p] : parts[p].substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : parts[p].substr(eq + 1);
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    const bool numeric =
        !value.empty() && end != value.c_str() && *end == '\0';
    if (key == "seed" && numeric && v >= 0 && v == std::floor(v)) {
      spec.seed = static_cast<std::uint64_t>(v);
    } else if (key == "width" && numeric && v >= 1 && v == std::floor(v) &&
               v <= 1e6) {
      spec.width = static_cast<std::size_t>(v);
    } else {
      return fail("bad generator option '" + parts[p] + "'");
    }
  }
  return spec;
}

GateNetlist generate_netlist(const GenSpec& spec) {
  switch (spec.topology) {
    case GenTopology::tree:
      return generate_tree(spec);
    case GenTopology::dag:
      return generate_dag(spec);
    case GenTopology::grid:
      break;
  }
  return generate_grid(spec);
}

}  // namespace qwm::frontend
