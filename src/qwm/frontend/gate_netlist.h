// Gate-level intermediate representation of the scale frontend.
//
// A GateNetlist is a structural netlist over a small static-CMOS gate
// library (inverter, NAND2-4, NOR2-4): named nets, primary inputs and
// outputs, and gate instances with an optional drive-strength multiplier.
// Both frontend sources produce it — the BLIF-style reader (blif.h) and
// the synthetic mega-circuit generators (generate.h) — and elaborate.h
// lowers it onto transistor-level LogicStages through the builders.h
// gate library, yielding the same PartitionedDesign the SPICE path
// produces via partition_netlist.
//
// The IR is deliberately tiny: timing analysis treats every stage as an
// inverting worst-case structure, so logic polarity beyond the library
// types carries no timing information worth modelling here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace qwm::frontend {

enum class GateType : int {
  inv = 0,
  nand2,
  nand3,
  nand4,
  nor2,
  nor3,
  nor4,
};
inline constexpr int kGateTypeCount = 7;

/// Number of logical inputs of a gate type (1 for inv, 2-4 otherwise).
int gate_fanin(GateType type);
/// Stable lower-case library name ("inv", "nand3", ...).
const char* gate_type_name(GateType type);
/// Reverse lookup; nullopt for names outside the library.
std::optional<GateType> gate_type_from_name(const std::string& name);
/// Input pin name of position `index` ("a", "b", "c", "d").
const char* gate_input_pin(int index);

/// One gate instance. Inputs are stored in pin order (a, b, c, d); the
/// output pin is always "y".
struct GateInst {
  GateType type = GateType::inv;
  /// Drive-strength multiplier applied to the library's default device
  /// widths (the BLIF reader's optional `x=` parameter). Must be > 0.
  double strength = 1.0;
  std::vector<std::string> inputs;  ///< size == gate_fanin(type)
  std::string output;
  /// Source line of the defining card (diagnostics); 0 for generated.
  int line = 0;
};

struct GateNetlist {
  std::string model = "design";
  std::vector<std::string> inputs;   ///< declared primary inputs
  std::vector<std::string> outputs;  ///< declared observed outputs
  std::vector<GateInst> gates;
};

/// Deterministic structural hash of the whole gate graph: model name
/// excluded, everything electrically meaningful (net names, port lists,
/// gate types, strengths, connectivity order) included. Two netlists
/// with equal hashes elaborate to identical designs; the BLIF
/// round-trip test (write -> re-read -> equal hash) and the generator
/// determinism test (same seed -> equal hash) both pivot on this.
std::uint64_t netlist_hash(const GateNetlist& netlist);

}  // namespace qwm::frontend
