#include "qwm/frontend/frontend.h"

#include "qwm/netlist/flat.h"  // to_lower

namespace qwm::frontend {

bool is_frontend_source(const std::string& source) {
  if (is_gen_spec(source)) return true;
  const std::string lower = netlist::to_lower(source);
  static constexpr char kExt[] = ".blif";
  return lower.size() > 5 && lower.compare(lower.size() - 5, 5, kExt) == 0;
}

BlifResult load_gate_netlist(const std::string& source) {
  if (is_gen_spec(source)) {
    BlifResult result;
    std::string error;
    const auto spec = parse_gen_spec(source, &error);
    if (!spec) {
      result.errors.push_back(source + ":0: " + error);
      return result;
    }
    result.netlist = generate_netlist(*spec);
    return result;
  }
  return parse_blif_file(source);
}

}  // namespace qwm::frontend
