#include "qwm/frontend/blif.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "qwm/netlist/flat.h"  // to_lower

namespace qwm::frontend {

namespace {

/// Diagnostic sink with the SPICE parser's "file:line: message" prefix.
struct Diag {
  const std::string& name;
  std::vector<std::string>* errors;
  std::vector<std::string>* warnings;

  void error(int line, const std::string& msg) const {
    errors->push_back(name + ":" + std::to_string(line) + ": " + msg);
  }
  void warn(int line, const std::string& msg) const {
    warnings->push_back(name + ":" + std::to_string(line) + ": " + msg);
  }
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tokens.push_back(netlist::to_lower(t));
  return tokens;
}

/// One logical line: physical lines joined over trailing '\', comments
/// stripped, numbered by the first physical line.
struct LogicalLine {
  int line = 0;
  std::string text;
};

std::vector<LogicalLine> logical_lines(const std::string& text) {
  std::vector<LogicalLine> out;
  std::istringstream is(text);
  std::string phys;
  int lineno = 0;
  LogicalLine current;
  bool continuing = false;
  while (std::getline(is, phys)) {
    ++lineno;
    if (!phys.empty() && phys.back() == '\r') phys.pop_back();
    const auto hash = phys.find('#');
    if (hash != std::string::npos) phys.erase(hash);
    bool continues = false;
    // A trailing backslash joins the next physical line.
    const auto last = phys.find_last_not_of(" \t");
    if (last != std::string::npos && phys[last] == '\\') {
      phys.erase(last);
      continues = true;
    }
    if (!continuing) {
      current.line = lineno;
      current.text = phys;
    } else {
      current.text += " " + phys;
    }
    continuing = continues;
    if (!continuing) {
      out.push_back(current);
      current = LogicalLine{};
    }
  }
  if (continuing) out.push_back(current);  // '\' on the last line
  return out;
}

/// Parses one ".gate" card. Returns false (diagnostics emitted) on any
/// malformed pin list; the gate is dropped but parsing continues.
bool parse_gate_card(const std::vector<std::string>& tokens, int line,
                     const Diag& diag, GateInst* gate) {
  if (tokens.size() < 2) {
    diag.error(line, ".gate needs a gate type and pin assignments");
    return false;
  }
  const auto type = gate_type_from_name(tokens[1]);
  if (!type) {
    diag.error(line, "unknown gate type: " + tokens[1] +
                         " (library: inv, nand2-4, nor2-4)");
    return false;
  }
  gate->type = *type;
  gate->line = line;
  const int fanin = gate_fanin(*type);
  gate->inputs.assign(static_cast<std::size_t>(fanin), "");
  bool ok = true;
  for (std::size_t t = 2; t < tokens.size(); ++t) {
    const std::string& tok = tokens[t];
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size()) {
      diag.error(line, "malformed pin assignment: " + tok);
      ok = false;
      continue;
    }
    const std::string pin = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (pin == "x") {
      char* end = nullptr;
      const double mult = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || mult <= 0.0) {
        diag.error(line, "bad drive strength: x=" + value);
        ok = false;
      } else {
        gate->strength = mult;
      }
      continue;
    }
    if (pin == "y") {
      if (!gate->output.empty()) {
        diag.error(line, "duplicate output pin y");
        ok = false;
      }
      gate->output = value;
      continue;
    }
    int index = -1;
    for (int i = 0; i < fanin; ++i)
      if (pin == gate_input_pin(i)) index = i;
    if (index < 0) {
      diag.error(line, "unknown pin '" + pin + "' on " + tokens[1]);
      ok = false;
      continue;
    }
    if (!gate->inputs[static_cast<std::size_t>(index)].empty()) {
      diag.error(line, "duplicate pin '" + pin + "'");
      ok = false;
      continue;
    }
    gate->inputs[static_cast<std::size_t>(index)] = value;
  }
  if (gate->output.empty()) {
    diag.error(line, std::string(gate_type_name(*type)) +
                         " is missing its output pin y");
    ok = false;
  }
  for (int i = 0; i < fanin; ++i) {
    if (gate->inputs[static_cast<std::size_t>(i)].empty()) {
      diag.error(line, std::string(gate_type_name(*type)) +
                           " is missing input pin " +
                           gate_input_pin(i));
      ok = false;
    }
  }
  return ok;
}

/// Whole-netlist semantic checks, each anchored to its defining card.
void check_semantics(const GateNetlist& gn,
                     const std::vector<std::pair<std::string, int>>& pi_lines,
                     const std::vector<std::pair<std::string, int>>& po_lines,
                     const Diag& diag) {
  std::unordered_map<std::string, int> input_line;
  for (const auto& [net, line] : pi_lines) {
    if (!input_line.emplace(net, line).second)
      diag.error(line, "duplicate primary input: " + net);
  }
  std::unordered_map<std::string, int> driver_line;
  for (const GateInst& g : gn.gates) {
    if (input_line.count(g.output)) {
      diag.error(g.line,
                 "net '" + g.output + "' is driven but declared .inputs");
      continue;
    }
    const auto [it, inserted] = driver_line.emplace(g.output, g.line);
    if (!inserted)
      diag.error(g.line, "duplicate driver for net '" + g.output +
                             "' (first driven at line " +
                             std::to_string(it->second) + ")");
  }
  for (const GateInst& g : gn.gates) {
    for (const std::string& in : g.inputs) {
      if (!input_line.count(in) && !driver_line.count(in))
        diag.error(g.line, "dangling net '" + in +
                               "' (not a primary input or gate output)");
    }
  }
  std::unordered_set<std::string> seen_outputs;
  for (const auto& [net, line] : po_lines) {
    if (!input_line.count(net) && !driver_line.count(net))
      diag.error(line, "output net '" + net + "' is never driven");
    if (!seen_outputs.insert(net).second)
      diag.warn(line, "duplicate output declaration: " + net);
  }
}

}  // namespace

BlifResult parse_blif(const std::string& text, const std::string& name) {
  BlifResult result;
  const Diag diag{name, &result.errors, &result.warnings};
  GateNetlist& gn = result.netlist;
  std::vector<std::pair<std::string, int>> pi_lines, po_lines;
  bool seen_model = false;
  int model_line = 0;

  for (const LogicalLine& ll : logical_lines(text)) {
    const std::vector<std::string> tokens = tokenize(ll.text);
    if (tokens.empty()) continue;
    const std::string& card = tokens[0];
    if (card[0] != '.') {
      diag.error(ll.line, "expected a dot-card, got: " + card);
      continue;
    }
    if (card == ".model") {
      if (seen_model) {
        diag.error(ll.line, "duplicate .model card (first at line " +
                                std::to_string(model_line) +
                                "; one model per file)");
        continue;
      }
      seen_model = true;
      model_line = ll.line;
      if (tokens.size() > 1) gn.model = tokens[1];
    } else if (card == ".inputs") {
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        gn.inputs.push_back(tokens[t]);
        pi_lines.emplace_back(tokens[t], ll.line);
      }
    } else if (card == ".outputs") {
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        gn.outputs.push_back(tokens[t]);
        po_lines.emplace_back(tokens[t], ll.line);
      }
    } else if (card == ".gate") {
      GateInst gate;
      if (parse_gate_card(tokens, ll.line, diag, &gate))
        gn.gates.push_back(std::move(gate));
    } else if (card == ".end") {
      break;  // anything after .end is ignored, as in standard BLIF
    } else if (card == ".latch" || card == ".names" || card == ".subckt" ||
               card == ".exdc") {
      diag.error(ll.line, "unsupported card " + card +
                              " (this reader accepts the structural "
                              ".gate subset only)");
    } else {
      diag.error(ll.line, "unknown card: " + card);
    }
  }
  check_semantics(gn, pi_lines, po_lines, diag);
  // Deduplicate declared outputs (warned above) so downstream loads are
  // not double-counted.
  std::unordered_set<std::string> seen;
  std::vector<std::string> outputs;
  for (auto& n : gn.outputs)
    if (seen.insert(n).second) outputs.push_back(std::move(n));
  gn.outputs = std::move(outputs);
  return result;
}

BlifResult parse_blif_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    BlifResult result;
    result.errors.push_back(path + ":0: cannot open file");
    return result;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_blif(ss.str(), path);
}

std::string write_blif(const GateNetlist& netlist) {
  std::ostringstream os;
  os << ".model " << netlist.model << "\n";
  // Port lists wrap with continuations to keep lines reviewable.
  const auto emit_list = [&os](const char* card,
                               const std::vector<std::string>& nets) {
    if (nets.empty()) return;
    os << card;
    std::size_t width = 8;
    for (const std::string& n : nets) {
      if (width + n.size() + 1 > 76) {
        os << " \\\n   ";
        width = 4;
      }
      os << " " << n;
      width += n.size() + 1;
    }
    os << "\n";
  };
  emit_list(".inputs", netlist.inputs);
  emit_list(".outputs", netlist.outputs);
  for (const GateInst& g : netlist.gates) {
    os << ".gate " << gate_type_name(g.type);
    if (g.strength != 1.0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", g.strength);
      os << " x=" << buf;
    }
    for (std::size_t i = 0; i < g.inputs.size(); ++i)
      os << " " << gate_input_pin(static_cast<int>(i)) << "=" << g.inputs[i];
    os << " y=" << g.output << "\n";
  }
  os << ".end\n";
  return os.str();
}

bool write_blif_file(const GateNetlist& netlist, const std::string& path,
                     std::string* error) {
  std::ofstream os(path);
  if (!os) {
    if (error) *error = "cannot write " + path;
    return false;
  }
  os << write_blif(netlist);
  if (!os) {
    if (error) *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace qwm::frontend
