// Dependency-free BLIF-style structural netlist reader and writer.
//
// The accepted grammar is the structural subset of BLIF this frontend
// needs — one combinational model mapped onto the repo's gate library:
//
//   # comment                       (anywhere; '\' continues a line)
//   .model <name>                   (optional; at most one per file)
//   .inputs  <net> ...              (repeatable, accumulative)
//   .outputs <net> ...              (repeatable, accumulative)
//   .gate <type> [x=<mult>] <pin>=<net> ...
//   .end                            (optional; text after it is ignored)
//
// <type> is one of inv, nand2..nand4, nor2..nor4; input pins are a..d in
// fanin order and the output pin is y; the optional x= parameter scales
// the gate's drive strength (device widths). Sequential and two-level
// cards (.latch, .names, .subckt) are rejected with a diagnostic rather
// than silently dropped.
//
// Diagnostics follow the SPICE parser's convention exactly: every error
// and warning is prefixed "file:line: " ("<blif>" for in-memory text),
// and parsing continues past errors so one pass reports every problem.
// Semantic checks (duplicate drivers, dangling nets, unknown output
// nets) are anchored to the line of the offending card.
#pragma once

#include <string>
#include <vector>

#include "qwm/frontend/gate_netlist.h"

namespace qwm::frontend {

struct BlifResult {
  GateNetlist netlist;
  std::vector<std::string> errors;    ///< "file:line: message"
  std::vector<std::string> warnings;  ///< same format
  bool ok() const { return errors.empty(); }
};

/// Parses BLIF text. `name` labels diagnostics (the SPICE parser's
/// "<deck>" idiom; defaults to "<blif>").
BlifResult parse_blif(const std::string& text,
                      const std::string& name = "<blif>");
/// Parses a file; an unreadable path is a single error on line 0.
BlifResult parse_blif_file(const std::string& path);

/// Canonical BLIF form of a gate netlist. Re-parsing the result yields a
/// netlist with the same netlist_hash (the round-trip invariant).
std::string write_blif(const GateNetlist& netlist);
/// write_blif straight to a file; false (with perror-style message in
/// `error` if non-null) when the file cannot be written.
bool write_blif_file(const GateNetlist& netlist, const std::string& path,
                     std::string* error = nullptr);

}  // namespace qwm::frontend
