#include "qwm/frontend/gate_netlist.h"

#include "qwm/circuit/stage_hash.h"

namespace qwm::frontend {

namespace {

struct GateTypeInfo {
  const char* name;
  int fanin;
};

constexpr GateTypeInfo kGateTypes[kGateTypeCount] = {
    {"inv", 1},  {"nand2", 2}, {"nand3", 3}, {"nand4", 4},
    {"nor2", 2}, {"nor3", 3},  {"nor4", 4},
};

constexpr const char* kInputPins[4] = {"a", "b", "c", "d"};

std::uint64_t hash_string(std::uint64_t seed, const std::string& s) {
  std::uint64_t h = circuit::hash_combine(seed, s.size());
  for (char c : s)
    h = circuit::hash_combine(h, static_cast<unsigned char>(c));
  return h;
}

std::uint64_t hash_double(std::uint64_t seed, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  __builtin_memcpy(&bits, &v, sizeof bits);
  return circuit::hash_combine(seed, bits);
}

}  // namespace

int gate_fanin(GateType type) {
  return kGateTypes[static_cast<int>(type)].fanin;
}

const char* gate_type_name(GateType type) {
  return kGateTypes[static_cast<int>(type)].name;
}

std::optional<GateType> gate_type_from_name(const std::string& name) {
  for (int i = 0; i < kGateTypeCount; ++i)
    if (name == kGateTypes[i].name) return static_cast<GateType>(i);
  return std::nullopt;
}

const char* gate_input_pin(int index) {
  return (index >= 0 && index < 4) ? kInputPins[index] : "?";
}

std::uint64_t netlist_hash(const GateNetlist& netlist) {
  std::uint64_t h = 0x716d5f67617465ULL;  // arbitrary fixed seed
  h = circuit::hash_combine(h, netlist.inputs.size());
  for (const auto& n : netlist.inputs) h = hash_string(h, n);
  h = circuit::hash_combine(h, netlist.outputs.size());
  for (const auto& n : netlist.outputs) h = hash_string(h, n);
  h = circuit::hash_combine(h, netlist.gates.size());
  for (const GateInst& g : netlist.gates) {
    h = circuit::hash_combine(h, static_cast<std::uint64_t>(g.type));
    h = hash_double(h, g.strength);
    for (const auto& in : g.inputs) h = hash_string(h, in);
    h = hash_string(h, g.output);
  }
  return h;
}

}  // namespace qwm::frontend
