// Single entry point of the scale frontend: source string in, gate
// netlist out. A source is either a BLIF file path (recognised by its
// ".blif" suffix) or a generator spec ("gen:<topo>:<stages>[:...]");
// everything else stays with the SPICE deck path.
#pragma once

#include <string>
#include <vector>

#include "qwm/frontend/blif.h"
#include "qwm/frontend/generate.h"

namespace qwm::frontend {

/// True for sources this frontend handles: generator specs and paths
/// ending in ".blif" (case-insensitive).
bool is_frontend_source(const std::string& source);

/// Loads a frontend source into a gate netlist. Generator specs cannot
/// fail once parsed; BLIF files report every diagnostic they hit.
BlifResult load_gate_netlist(const std::string& source);

}  // namespace qwm::frontend
