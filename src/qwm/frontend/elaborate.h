// Lowers a GateNetlist onto the transistor-level timing graph.
//
// Each gate instance becomes one LogicStage built by the builders.h gate
// library at the instance's drive strength (wn = x * w_min, wp = x *
// 2*w_min — the builders' default P/N ratio). Output loads mirror
// partition_netlist semantics exactly: every stage output carries the
// summed gate input capacitance of its consumers, and declared primary
// outputs (plus any net nobody consumes) additionally carry the
// standard fanout-of-4 inverter load so no stage drives thin air.
//
// The FlatNetlist in the result holds interned net names only — no
// devices — so DesignDb net-name lookups work unchanged while a
// 10^6-gate design never materialises per-transistor records outside
// its stages.
#pragma once

#include "qwm/circuit/partition.h"
#include "qwm/device/model_set.h"
#include "qwm/frontend/gate_netlist.h"
#include "qwm/netlist/flat.h"

namespace qwm::frontend {

struct ElaboratedDesign {
  netlist::FlatNetlist nl;  ///< name interner for the design's nets
  circuit::PartitionedDesign design;
};

/// Elaborates a well-formed netlist (parse/semantic errors already
/// cleared by the frontend that produced it). Stages appear in gate
/// order; stage i is gate i.
ElaboratedDesign elaborate(const GateNetlist& netlist,
                           const device::ModelSet& models);

}  // namespace qwm::frontend
