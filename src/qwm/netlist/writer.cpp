#include "qwm/netlist/writer.h"

#include <iomanip>
#include <sstream>

namespace qwm::netlist {

namespace {
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == '.') c = '_';
  return out;
}
}  // namespace

std::string write_spice(const FlatNetlist& nl, const std::string& title) {
  std::ostringstream os;
  os << std::setprecision(12);
  os << title << "\n";
  for (const auto& card : nl.model_cards) {
    os << ".model " << card.name << " "
       << (card.type == device::MosType::nmos ? "nmos" : "pmos");
    for (const auto& [key, value] : card.params)
      os << " " << key << "=" << value;
    os << "\n";
  }
  for (const auto& m : nl.mosfets) {
    os << sanitize(m.name) << " " << nl.net_name(m.drain) << " "
       << nl.net_name(m.gate) << " " << nl.net_name(m.source) << " "
       << nl.net_name(m.bulk) << " "
       << (m.type == device::MosType::nmos ? "nmos" : "pmos") << " w=" << m.w
       << " l=" << m.l << "\n";
  }
  for (const auto& r : nl.resistors)
    os << sanitize(r.name) << " " << nl.net_name(r.a) << " " << nl.net_name(r.b)
       << " " << r.value << "\n";
  for (const auto& c : nl.capacitors)
    os << sanitize(c.name) << " " << nl.net_name(c.a) << " " << nl.net_name(c.b)
       << " " << c.value << "\n";
  const auto write_source = [&os, &nl](const std::string& name,
                                       netlist::NetId pos, netlist::NetId neg,
                                       const numeric::PwlWaveform& w) {
    os << sanitize(name) << " " << nl.net_name(pos) << " " << nl.net_name(neg);
    if (w.size() == 1) {
      os << " dc " << w.value(0);
    } else {
      os << " pwl(";
      for (std::size_t i = 0; i < w.size(); ++i) {
        if (i) os << " ";
        os << w.time(i) << " " << w.value(i);
      }
      os << ")";
    }
    os << "\n";
  };
  for (const auto& v : nl.vsources)
    write_source(v.name, v.pos, v.neg, v.waveform);
  for (const auto& i : nl.isources)
    write_source(i.name, i.pos, i.neg, i.waveform);
  if (nl.tran.present)
    os << ".tran " << nl.tran.tstep << " " << nl.tran.tstop << "\n";
  for (const auto& ic : nl.initial_conditions)
    os << ".ic v(" << nl.net_name(ic.net) << ")=" << ic.voltage << "\n";
  os << ".end\n";
  return os.str();
}

}  // namespace qwm::netlist
