#include "qwm/netlist/apply_models.h"

#include <cmath>

namespace qwm::netlist {

std::vector<std::string> apply_model_cards(const FlatNetlist& nl,
                                           device::Process* proc) {
  std::vector<std::string> warnings;
  for (const ModelCard& card : nl.model_cards) {
    device::MosfetParams& p =
        card.type == device::MosType::nmos ? proc->nmos : proc->pmos;
    for (const auto& [key, value] : card.params) {
      if (key == "vto" || key == "vth0") {
        p.vth0 = std::abs(value);  // PMOS cards conventionally negative
      } else if (key == "kp" || key == "u0cox") {
        p.kp = value;
      } else if (key == "gamma") {
        p.gamma = value;
      } else if (key == "phi") {
        p.phi = value;
      } else if (key == "lambda") {
        p.lambda = value;
      } else if (key == "cj") {
        p.cj = value;
      } else if (key == "cjsw") {
        p.cjsw = value;
      } else if (key == "pb" || key == "pbsw") {
        p.pb = value;
      } else if (key == "mj") {
        p.mj = value;
      } else if (key == "cgso") {
        p.cgso = value;
      } else if (key == "cgdo") {
        p.cgdo = value;
      } else if (key == "nsub" || key == "nfactor") {
        p.n_sub = value;
      } else if (key == "esat") {
        p.esat = value;
      } else if (key == "ld") {
        p.l_diff = value;
      } else if (key == "cox") {
        p.cox = value;
      } else if (key == "tox") {
        p.cox = 3.45e-11 / value;  // eps_SiO2 / tox
      } else {
        warnings.push_back(".model " + card.name + ": parameter '" + key +
                           "' not supported; ignored");
      }
    }
  }
  return warnings;
}

}  // namespace qwm::netlist
