// Applies .model cards from a parsed deck onto a Process description, so
// decks can carry their own device parameters instead of relying on the
// built-in CMOSP35 defaults.
#pragma once

#include <string>
#include <vector>

#include "qwm/device/process.h"
#include "qwm/netlist/flat.h"

namespace qwm::netlist {

/// Folds every recognized .model parameter into `proc` (NMOS cards update
/// proc.nmos, PMOS cards proc.pmos). Unknown parameter names are returned
/// as warnings. Supported names (SPICE level-1 style + extensions):
///   vto/vth0, kp, gamma, phi, lambda, cj, cjsw, pb/pbsw, mj,
///   cgso, cgdo, nsub->n (subthreshold slope), esat, ld (l_diff).
std::vector<std::string> apply_model_cards(const FlatNetlist& nl,
                                           device::Process* proc);

}  // namespace qwm::netlist
