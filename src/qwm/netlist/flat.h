// Flat transistor-level netlist: the parser's output and the partitioner's
// input. Nets are interned to dense integer ids; net 0 is always ground
// (aliases "0", "gnd", "vss").
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "qwm/device/mosfet_physics.h"
#include "qwm/numeric/pwl.h"

namespace qwm::netlist {

using NetId = int;
constexpr NetId kGroundNet = 0;

struct Mosfet {
  std::string name;
  device::MosType type = device::MosType::nmos;
  NetId drain = -1, gate = -1, source = -1, bulk = -1;
  double w = 0.0, l = 0.0;
};

struct Resistor {
  std::string name;
  NetId a = -1, b = -1;
  double value = 0.0;
};

struct Capacitor {
  std::string name;
  NetId a = -1, b = -1;
  double value = 0.0;
};

/// Voltage source with its stimulus waveform (DC/PULSE/PWL are all
/// normalized to a PwlWaveform at parse time).
struct VSource {
  std::string name;
  NetId pos = -1, neg = -1;
  numeric::PwlWaveform waveform;
};

/// Current source: injects waveform(t) amps flowing pos -> neg through
/// the source (i.e. pulled out of `pos`, pushed into `neg`).
struct ISource {
  std::string name;
  NetId pos = -1, neg = -1;
  numeric::PwlWaveform waveform;
};

/// Analysis directives recorded from the deck (consumed by tools).
struct TranDirective {
  bool present = false;
  double tstep = 1e-12;
  double tstop = 1e-9;
};

struct InitialCondition {
  NetId net = -1;
  double voltage = 0.0;
};

/// A .model card: named device-parameter overrides from the deck.
struct ModelCard {
  std::string name;
  device::MosType type = device::MosType::nmos;
  std::unordered_map<std::string, double> params;
};

class FlatNetlist {
 public:
  FlatNetlist();

  /// Interns a net name (case-insensitive); ground aliases map to net 0.
  NetId net(const std::string& name);
  /// Lookup without interning.
  std::optional<NetId> find_net(const std::string& name) const;
  const std::string& net_name(NetId id) const { return net_names_[id]; }
  std::size_t net_count() const { return net_names_.size(); }

  std::vector<Mosfet> mosfets;
  std::vector<Resistor> resistors;
  std::vector<Capacitor> capacitors;
  std::vector<VSource> vsources;
  std::vector<ISource> isources;
  std::vector<ModelCard> model_cards;
  TranDirective tran;
  std::vector<InitialCondition> initial_conditions;
  /// Nets named in .print/.plot cards, in order.
  std::vector<NetId> print_nets;

  /// The supply net: the positive terminal of a DC source tied to ground
  /// whose value is the largest in the deck. -1 when no such source exists.
  NetId find_vdd_net(double* vdd_value = nullptr) const;

 private:
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_ids_;
};

/// Lower-cases a name (SPICE is case-insensitive).
std::string to_lower(std::string s);

}  // namespace qwm::netlist
