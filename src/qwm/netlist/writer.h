// Emits a FlatNetlist back to SPICE deck text (round-trip support and a
// convenient way to hand circuits to an external simulator for
// cross-checking).
#pragma once

#include <string>

#include "qwm/netlist/flat.h"

namespace qwm::netlist {

/// Serializes the netlist as a SPICE deck. `title` becomes the first line.
std::string write_spice(const FlatNetlist& netlist,
                        const std::string& title = "qwm deck");

}  // namespace qwm::netlist
