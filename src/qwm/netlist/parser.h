// SPICE-subset netlist parser.
//
// Supports the card set transistor-level timing analysis needs:
//   M<name> d g s b <model> W=<v> L=<v>     (model name contains nmos/pmos)
//   R<name> a b <value>
//   C<name> a b <value>
//   V<name> p n <dc> | DC <v> | PULSE(v1 v2 td tr tf pw per) | PWL(t v ...)
//   X<name> pins... <subckt>                (flattened recursively)
//   .subckt <name> pins... / .ends
//   .param <name>=<value>                   (simple value substitution)
//   .end, * comments, + continuations, $ and ; trailing comments
// Engineering suffixes (f p n u m k meg g t) and case-insensitivity follow
// SPICE conventions. Everything else (.tran, .ic, .options, ...) is
// ignored with a note, not an error, so real decks parse.
#pragma once

#include <string>
#include <vector>

#include "qwm/netlist/flat.h"

namespace qwm::netlist {

struct ParseResult {
  FlatNetlist netlist;
  /// Every entry is prefixed "file:line: " (file = the deck path,
  /// "<deck>" for in-memory text, or the .include path; line = 1-based
  /// physical line the offending logical line started on), so failures
  /// surfaced remotely — e.g. over the qwm_serve LOAD verb — point at
  /// the deck source.
  std::vector<std::string> errors;
  std::vector<std::string> warnings;
  bool ok() const { return errors.empty(); }
};

ParseResult parse_spice(const std::string& text);
ParseResult parse_spice_file(const std::string& path);

/// Parses one SPICE numeric token ("4.7k", "0.35u", "10meg", "1e-12").
/// Returns false on malformed input.
bool parse_spice_number(const std::string& token, double* value);

}  // namespace qwm::netlist
