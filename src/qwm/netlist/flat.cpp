#include "qwm/netlist/flat.h"

#include <algorithm>
#include <cctype>

namespace qwm::netlist {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

namespace {
bool is_ground_alias(const std::string& lower) {
  return lower == "0" || lower == "gnd" || lower == "vss";
}
}  // namespace

FlatNetlist::FlatNetlist() {
  net_names_.push_back("0");
  net_ids_["0"] = kGroundNet;
}

NetId FlatNetlist::net(const std::string& name) {
  std::string key = to_lower(name);
  if (is_ground_alias(key)) return kGroundNet;
  const auto it = net_ids_.find(key);
  if (it != net_ids_.end()) return it->second;
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(key);
  net_ids_[key] = id;
  return id;
}

std::optional<NetId> FlatNetlist::find_net(const std::string& name) const {
  std::string key = to_lower(name);
  if (is_ground_alias(key)) return kGroundNet;
  const auto it = net_ids_.find(key);
  if (it == net_ids_.end()) return std::nullopt;
  return it->second;
}

NetId FlatNetlist::find_vdd_net(double* vdd_value) const {
  NetId best = -1;
  double best_v = 0.0;
  for (const auto& v : vsources) {
    if (v.neg != kGroundNet) continue;
    // A supply is a constant source; take its t=0 value.
    const double val = v.waveform.eval(0.0);
    if (v.waveform.size() == 1 && val > best_v) {
      best_v = val;
      best = v.pos;
    }
  }
  if (vdd_value) *vdd_value = best_v;
  return best;
}

}  // namespace qwm::netlist
