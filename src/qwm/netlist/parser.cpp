#include "qwm/netlist/parser.h"

#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace qwm::netlist {

namespace {

/// One logical deck line plus the 1-based physical line number of its
/// first physical line — the anchor every diagnostic points at.
struct SrcLine {
  std::string text;
  int line = 0;
};

/// Splits text into logical lines: strips comments, joins continuations,
/// lower-cases everything. Each logical line remembers the physical line
/// it started on (continuation lines report the line they extend).
std::vector<SrcLine> logical_lines(const std::string& text) {
  std::vector<SrcLine> raw;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trailing comment markers.
    for (const char* marker : {"$", ";"}) {
      const auto pos = line.find(marker);
      if (pos != std::string::npos) line.erase(pos);
    }
    raw.push_back({line, lineno});
  }
  std::vector<SrcLine> out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::string& l = raw[i].text;
    // Trim leading whitespace.
    std::size_t b = l.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    if (l[b] == '*') continue;  // comment line
    if (l[b] == '+') {
      if (!out.empty()) out.back().text += " " + l.substr(b + 1);
      continue;
    }
    out.push_back({l.substr(b), raw[i].line});
  }
  for (auto& l : out) l.text = to_lower(l.text);
  return out;
}

/// Tokenizes a logical line. Parentheses and '=' are separators that also
/// emit nothing (PULSE(...) and W=val both split cleanly).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == '=' || c == ',') {
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

struct SubcktDef {
  std::string name;
  std::vector<std::string> pins;
  std::vector<SrcLine> body;  ///< logical lines inside the definition
  std::string file;           ///< file the definition appeared in
};

struct Parser {
  ParseResult result;
  std::unordered_map<std::string, SubcktDef> subckts;
  std::unordered_map<std::string, double> params;
  /// Directory of the top-level deck; .include paths resolve against it.
  std::string base_dir;
  int include_depth = 0;
  int unique_counter = 0;
  /// Source position of the card being parsed; every diagnostic is
  /// prefixed "file:line:" so a LOAD failure returned over the qwm_serve
  /// wire points at the offending deck line.
  std::string cur_file = "<deck>";
  int cur_line = 0;

  void error(const std::string& msg) {
    result.errors.push_back(cur_file + ":" + std::to_string(cur_line) + ": " +
                            msg);
  }
  void warn(const std::string& msg) { result.warnings.push_back(msg); }

  bool number(const std::string& tok, double* v) {
    const auto it = params.find(tok);
    if (it != params.end()) {
      *v = it->second;
      return true;
    }
    return parse_spice_number(tok, v);
  }

  /// Resolves a net token through an instantiation pin map (empty map at
  /// top level).
  NetId net(const std::string& tok,
            const std::unordered_map<std::string, std::string>& pin_map,
            const std::string& prefix) {
    const auto it = pin_map.find(tok);
    if (it != pin_map.end()) return result.netlist.net(it->second);
    if (tok == "0" || tok == "gnd" || tok == "vss")
      return result.netlist.net(tok);
    // Global supply nets stay global inside subcircuits.
    if (tok == "vdd" || tok == "vcc") return result.netlist.net(tok);
    return result.netlist.net(prefix.empty() ? tok : prefix + "." + tok);
  }

  /// Parses the DC/PULSE/PWL spec beginning at token i into a waveform.
  bool source_waveform(const std::vector<std::string>& t, std::size_t i,
                       const std::string& head, numeric::PwlWaveform* out);

  void parse_card(const std::vector<std::string>& t,
                  const std::unordered_map<std::string, std::string>& pin_map,
                  const std::string& prefix, int depth);

  void parse_lines(const std::vector<SrcLine>& lines, const std::string& file,
                   const std::unordered_map<std::string, std::string>& pin_map,
                   const std::string& prefix, int depth);
};

bool Parser::source_waveform(const std::vector<std::string>& t, std::size_t i,
                             const std::string& head,
                             numeric::PwlWaveform* out) {
  if (t[i] == "dc") ++i;
  if (i >= t.size()) {
    error("missing source value on " + head);
    return false;
  }
  if (t[i] == "pulse") {
    // PULSE(v1 v2 td tr tf pw per)
    double p[7] = {0, 0, 0, 1e-12, 1e-12, 1e-9, 2e-9};
    for (int k = 0; k < 7; ++k) {
      if (i + 1 + k >= t.size()) break;
      if (!number(t[i + 1 + k], &p[k])) {
        error("bad PULSE parameter on " + head);
        return false;
      }
    }
    const double v1 = p[0], v2 = p[1], td = p[2], tr = std::max(p[3], 1e-15),
                 tf = std::max(p[4], 1e-15), pw = p[5];
    std::vector<double> ts{0.0}, vs{v1};
    auto push = [&](double tt, double vv) {
      if (tt > ts.back()) {
        ts.push_back(tt);
        vs.push_back(vv);
      }
    };
    push(td, v1);
    push(td + tr, v2);
    push(td + tr + pw, v2);
    push(td + tr + pw + tf, v1);
    *out = numeric::PwlWaveform(ts, vs);
    return true;
  }
  if (t[i] == "pwl") {
    std::vector<double> ts, vs;
    for (std::size_t k = i + 1; k + 1 < t.size(); k += 2) {
      double tt, vv;
      if (!number(t[k], &tt) || !number(t[k + 1], &vv)) {
        error("bad PWL point on " + head);
        return false;
      }
      ts.push_back(tt);
      vs.push_back(vv);
    }
    if (ts.empty() || ts.front() > 0.0) {
      ts.insert(ts.begin(), 0.0);
      vs.insert(vs.begin(), vs.empty() ? 0.0 : vs.front());
    }
    *out = numeric::PwlWaveform(ts, vs);
    return true;
  }
  double dc = 0.0;
  if (!number(t[i], &dc)) {
    error("bad DC value on " + head);
    return false;
  }
  *out = numeric::PwlWaveform::constant(dc);
  return true;
}

void Parser::parse_card(
    const std::vector<std::string>& t,
    const std::unordered_map<std::string, std::string>& pin_map,
    const std::string& prefix, int depth) {
  const std::string& head = t[0];
  const char kind = head[0];
  const std::string inst_name = prefix.empty() ? head : prefix + "." + head;

  switch (kind) {
    case 'm': {
      if (t.size() < 6) {
        error("malformed mosfet card: " + head);
        return;
      }
      Mosfet m;
      m.name = inst_name;
      m.drain = net(t[1], pin_map, prefix);
      m.gate = net(t[2], pin_map, prefix);
      m.source = net(t[3], pin_map, prefix);
      m.bulk = net(t[4], pin_map, prefix);
      const std::string& model = t[5];
      if (model.find("pmos") != std::string::npos ||
          model.find("pch") != std::string::npos || model[0] == 'p')
        m.type = device::MosType::pmos;
      else
        m.type = device::MosType::nmos;
      // W=/L= pairs were split by the tokenizer into "w" <val> "l" <val>.
      for (std::size_t i = 6; i + 1 < t.size(); i += 2) {
        double v = 0.0;
        if (!number(t[i + 1], &v)) {
          error("bad parameter value on " + head + ": " + t[i + 1]);
          return;
        }
        if (t[i] == "w") m.w = v;
        else if (t[i] == "l") m.l = v;
        // ad/as/pd/ps accepted and ignored (geometry-derived in our models)
      }
      if (m.w <= 0.0 || m.l <= 0.0) {
        error("mosfet " + head + " missing W/L");
        return;
      }
      result.netlist.mosfets.push_back(m);
      return;
    }
    case 'r': {
      if (t.size() < 4) {
        error("malformed resistor card: " + head);
        return;
      }
      Resistor r;
      r.name = inst_name;
      r.a = net(t[1], pin_map, prefix);
      r.b = net(t[2], pin_map, prefix);
      if (!number(t[3], &r.value)) {
        error("bad resistance on " + head);
        return;
      }
      result.netlist.resistors.push_back(r);
      return;
    }
    case 'c': {
      if (t.size() < 4) {
        error("malformed capacitor card: " + head);
        return;
      }
      Capacitor c;
      c.name = inst_name;
      c.a = net(t[1], pin_map, prefix);
      c.b = net(t[2], pin_map, prefix);
      if (!number(t[3], &c.value)) {
        error("bad capacitance on " + head);
        return;
      }
      result.netlist.capacitors.push_back(c);
      return;
    }
    case 'v': {
      if (t.size() < 4) {
        error("malformed voltage source card: " + head);
        return;
      }
      VSource v;
      v.name = inst_name;
      v.pos = net(t[1], pin_map, prefix);
      v.neg = net(t[2], pin_map, prefix);
      if (!source_waveform(t, 3, head, &v.waveform)) return;
      result.netlist.vsources.push_back(v);
      return;
    }
    case 'i': {
      if (t.size() < 4) {
        error("malformed current source card: " + head);
        return;
      }
      ISource src;
      src.name = inst_name;
      src.pos = net(t[1], pin_map, prefix);
      src.neg = net(t[2], pin_map, prefix);
      if (!source_waveform(t, 3, head, &src.waveform)) return;
      result.netlist.isources.push_back(src);
      return;
    }
    case 'x': {
      if (t.size() < 3) {
        error("malformed subcircuit instance: " + head);
        return;
      }
      const std::string& sub_name = t.back();
      const auto it = subckts.find(sub_name);
      if (it == subckts.end()) {
        error("unknown subcircuit: " + sub_name);
        return;
      }
      const SubcktDef& def = it->second;
      if (t.size() - 2 != def.pins.size()) {
        error("pin count mismatch on " + head + " (" + sub_name + ")");
        return;
      }
      if (depth > 20) {
        error("subcircuit nesting too deep at " + head);
        return;
      }
      // Map formal pins to the caller's actual nets (resolved in the
      // caller's scope first).
      std::unordered_map<std::string, std::string> child_map;
      for (std::size_t k = 0; k < def.pins.size(); ++k) {
        const NetId actual = net(t[1 + k], pin_map, prefix);
        child_map[def.pins[k]] = result.netlist.net_name(actual);
      }
      // Body diagnostics point at the definition site, not the X card.
      parse_lines(def.body, def.file, child_map, inst_name, depth + 1);
      return;
    }
    default:
      warn("unsupported element '" + head + "' ignored");
      return;
  }
}

void Parser::parse_lines(
    const std::vector<SrcLine>& lines, const std::string& file,
    const std::unordered_map<std::string, std::string>& pin_map,
    const std::string& prefix, int depth) {
  for (std::size_t li = 0; li < lines.size(); ++li) {
    // Anchor diagnostics before touching the card; recursion below
    // (includes, subckt bodies) moves these and the re-assignment on the
    // next iteration restores them.
    cur_file = file;
    cur_line = lines[li].line;
    const std::vector<std::string> t = tokenize(lines[li].text);
    if (t.empty()) continue;
    const std::string& head = t[0];

    if (head[0] == '.') {
      if (head == ".subckt") {
        if (depth > 0) {
          error("nested .subckt definitions are not supported");
          continue;
        }
        if (t.size() < 2) {
          error("malformed .subckt");
          continue;
        }
        SubcktDef def;
        def.name = t[1];
        def.pins.assign(t.begin() + 2, t.end());
        def.file = file;
        // Collect body until .ends.
        std::size_t j = li + 1;
        for (; j < lines.size(); ++j) {
          const std::vector<std::string> bt = tokenize(lines[j].text);
          if (!bt.empty() && bt[0] == ".ends") break;
          def.body.push_back(lines[j]);
        }
        if (j == lines.size()) {
          error("unterminated .subckt " + def.name);
          return;
        }
        subckts[def.name] = def;
        li = j;  // skip past .ends
      } else if (head == ".model") {
        // .model <name> nmos|pmos [param=value ...]
        if (t.size() < 3) {
          error("malformed .model card");
          continue;
        }
        ModelCard card;
        card.name = t[1];
        if (t[2] == "pmos" || t[2] == "pch")
          card.type = device::MosType::pmos;
        else if (t[2] == "nmos" || t[2] == "nch")
          card.type = device::MosType::nmos;
        else {
          warn(".model " + t[1] + ": unsupported type " + t[2] + "; ignored");
          continue;
        }
        for (std::size_t k = 3; k + 1 < t.size(); k += 2) {
          double v = 0.0;
          if (number(t[k + 1], &v)) card.params[t[k]] = v;
          else error("bad .model parameter " + t[k] + " on " + t[1]);
        }
        result.netlist.model_cards.push_back(std::move(card));
      } else if (head == ".param") {
        for (std::size_t k = 1; k + 1 < t.size(); k += 2) {
          double v = 0.0;
          if (number(t[k + 1], &v)) params[t[k]] = v;
          else error("bad .param value for " + t[k]);
        }
      } else if (head == ".include" || head == ".inc" || head == ".lib") {
        if (t.size() < 2) {
          error("malformed " + head + " directive");
          continue;
        }
        if (include_depth > 8) {
          error("includes nested too deep at " + t[1]);
          continue;
        }
        std::filesystem::path p(t[1]);
        if (p.is_relative() && !base_dir.empty())
          p = std::filesystem::path(base_dir) / p;
        std::ifstream inc(p);
        if (!inc) {
          error("cannot open include file: " + p.string());
          continue;
        }
        std::stringstream ss;
        ss << inc.rdbuf();
        // Included files are card collections, not full decks: no title
        // line is stripped. Their diagnostics carry the included path.
        ++include_depth;
        parse_lines(logical_lines(ss.str()), p.string(), pin_map, prefix,
                    depth);
        --include_depth;
      } else if (head == ".tran") {
        // .tran <tstep> <tstop>
        if (t.size() < 3 || !number(t[1], &result.netlist.tran.tstep) ||
            !number(t[2], &result.netlist.tran.tstop)) {
          error("malformed .tran directive");
          continue;
        }
        result.netlist.tran.present = true;
      } else if (head == ".ic") {
        // .ic v(node)=value ... -> tokens: v <node> <value> repeating.
        bool any = false;
        for (std::size_t k = 1; k < t.size(); k += 3) {
          if (t[k] != "v" || k + 2 >= t.size()) break;
          InitialCondition ic;
          ic.net = net(t[k + 1], pin_map, prefix);
          if (!number(t[k + 2], &ic.voltage)) break;
          result.netlist.initial_conditions.push_back(ic);
          any = true;
        }
        if (!any) error("malformed .ic directive");
      } else if (head == ".print" || head == ".plot") {
        // .print tran v(a) v(b) ... -> tokens: [tran] v <net> v <net> ...
        for (std::size_t k = 1; k < t.size(); ++k) {
          if (t[k] == "tran" || t[k] == "dc") continue;
          if (t[k] == "v" && k + 1 < t.size()) {
            result.netlist.print_nets.push_back(
                net(t[k + 1], pin_map, prefix));
            ++k;
          }
        }
      } else if (head == ".end" || head == ".ends") {
        // done / stray terminator
      } else {
        warn("directive " + head + " ignored");
      }
      continue;
    }
    parse_card(t, pin_map, prefix, depth);
  }
}

}  // namespace

bool parse_spice_number(const std::string& token, double* value) {
  if (token.empty()) return false;
  // Find the longest numeric prefix std::strtod accepts.
  const char* begin = token.c_str();
  char* end = nullptr;
  const double base = std::strtod(begin, &end);
  if (end == begin) return false;
  std::string suffix = to_lower(std::string(end));
  // Strip trailing unit letters after the scale suffix (e.g. "10pf").
  double scale = 1.0;
  if (suffix.rfind("meg", 0) == 0) {
    scale = 1e6;
  } else if (!suffix.empty()) {
    switch (suffix[0]) {
      case 'f': scale = 1e-15; break;
      case 'p': scale = 1e-12; break;
      case 'n': scale = 1e-9; break;
      case 'u': scale = 1e-6; break;
      case 'm': scale = 1e-3; break;
      case 'k': scale = 1e3; break;
      case 'g': scale = 1e9; break;
      case 't': scale = 1e12; break;
      default:
        return false;
    }
  }
  *value = base * scale;
  return true;
}

ParseResult parse_spice(const std::string& text) {
  Parser p;
  std::vector<SrcLine> lines = logical_lines(text);
  // SPICE semantics: the first line is always the title, never a card.
  if (!lines.empty()) lines.erase(lines.begin());
  // First pass registers .subckt defs encountered anywhere; parse_lines
  // already collects them in order, which suffices when definitions
  // precede use (the common layout). A second pass retries X cards is not
  // needed because parse_lines handles the full list sequentially.
  p.parse_lines(lines, "<deck>", {}, "", 0);
  return std::move(p.result);
}

ParseResult parse_spice_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult r;
    r.errors.push_back(path + ":0: cannot open file: " + path);
    return r;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  Parser p;
  p.base_dir = std::filesystem::path(path).parent_path().string();
  std::vector<SrcLine> lines = logical_lines(ss.str());
  if (!lines.empty()) lines.erase(lines.begin());  // title line
  p.parse_lines(lines, path, {}, "", 0);
  return std::move(p.result);
}

}  // namespace qwm::netlist
