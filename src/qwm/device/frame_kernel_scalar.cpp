// Portable scalar backend: the reference loop over the shared inline
// kernel. Compiled with -ffp-contract=off (see CMakeLists) so the
// operation sequence in frame_kernel_impl.h is the rounding sequence.
#include "qwm/device/frame_kernel_impl.h"

namespace qwm::device::kernel {

void eval_frames_scalar(const CharacterizationGrid& g, std::size_t n,
                        const double* vg, const double* vs, const double* vd,
                        FrameEval* out) {
  for (std::size_t k = 0; k < n; ++k)
    out[k] = detail::frame_lookup(g, vg[k], vs[k], vd[k]);
}

void eval_frames_multi_scalar(const CharacterizationGrid* const* grids,
                              std::size_t grid_count, std::size_t n,
                              const double* vg, const double* vs,
                              const double* vd, FrameEval* const* out) {
  const CharacterizationGrid& g0 = *grids[0];
  const double inv_vs_dx = 1.0 / g0.vs_axis.dx;
  const double inv_vg_dx = 1.0 / g0.vg_axis.dx;
  for (std::size_t k = 0; k < n; ++k) {
    // Located once on the shared axes, blended per grid.
    const double u = vd[k] - vs[k];
    std::size_t i0, i1;
    double f0, f1;
    detail::kernel_locate(g0.vs_axis, inv_vs_dx, vs[k], i0, f0);
    detail::kernel_locate(g0.vg_axis, inv_vg_dx, vg[k], i1, f1);
    for (std::size_t m = 0; m < grid_count; ++m)
      out[m][k] = detail::frame_blend(*grids[m], i0, f0, i1, f1, u);
  }
}

}  // namespace qwm::device::kernel
