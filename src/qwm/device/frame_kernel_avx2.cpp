// AVX2 backend: four frame lookups per iteration.
//
// Bit-identity contract: this TU mirrors the scalar kernel's operation
// DAG one vector op per scalar op — same order, same associativity, no
// fused multiply-add (the TU is compiled with -mavx2 only, never -mfma,
// and -ffp-contract=off keeps the compiler from contracting on its own).
// IEEE-754 basic operations (+ - * /) are correctly rounded in both
// scalar and packed form, so lane k of every vector below holds exactly
// the bits the scalar loop would produce for frame k. The
// triode/saturation branch of CharacterizedPoint::eval becomes a lane
// blend on the same ordered u <= vdsat comparison; both sides are
// evaluated, which is safe (polynomials, no traps) and rounding-neutral.
// Remainder lanes (n % 4) run the shared scalar inline kernel.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "qwm/device/frame_kernel_impl.h"

namespace qwm::device::kernel {

namespace {

// The gathers index CharacterizedPoint fields as double-strided offsets
// straight out of the grid's AoS storage.
static_assert(sizeof(CharacterizedPoint) % sizeof(double) == 0,
              "CharacterizedPoint must gather as whole doubles");
constexpr int kPtStride =
    static_cast<int>(sizeof(CharacterizedPoint) / sizeof(double));
constexpr int kOffS1 = static_cast<int>(offsetof(CharacterizedPoint, s1) / 8);
constexpr int kOffS0 = static_cast<int>(offsetof(CharacterizedPoint, s0) / 8);
constexpr int kOffT2 = static_cast<int>(offsetof(CharacterizedPoint, t2) / 8);
constexpr int kOffT1 = static_cast<int>(offsetof(CharacterizedPoint, t1) / 8);
constexpr int kOffT0 = static_cast<int>(offsetof(CharacterizedPoint, t0) / 8);
constexpr int kOffVdsat =
    static_cast<int>(offsetof(CharacterizedPoint, vdsat) / 8);
// The corner loads fetch qwords [0..3] (s1 s0 t2 t1) and [4..7] (t0 vth
// vdsat + first fit-quality word) of each point as two contiguous 256-bit
// vectors and transpose — cheaper than six hardware gathers per corner.
// Both loads stay inside the point record, so even the grid's last point
// is safe to read this way.
static_assert(kOffS1 == 0 && kOffS0 == 1 && kOffT2 == 2 && kOffT1 == 3 &&
                  kOffT0 == 4 && kOffVdsat == 6 && kPtStride >= 8,
              "corner loads assume the fit-coefficient field layout");

static_assert(sizeof(FrameEval) == 4 * sizeof(double),
              "FrameEval transposes as a 4x4 double block");

/// locate() over four lanes: cell index (i32) + fractional position,
/// clamped exactly like numeric::UniformAxis::locate.
struct Located4 {
  __m128i idx;
  __m256d frac;
};

inline Located4 locate4(const numeric::UniformAxis& a, __m256d inv_dx,
                        __m256d x) {
  // (x - x0) * (1/dx), the reciprocal hoisted by the caller — mirrors
  // detail::kernel_locate bit for bit.
  const __m256d t =
      _mm256_mul_pd(_mm256_sub_pd(x, _mm256_set1_pd(a.x0)), inv_dx);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d n_minus_1 =
      _mm256_set1_pd(static_cast<double>(a.n - 1));
  const __m256d lo = _mm256_cmp_pd(t, zero, _CMP_LE_OQ);
  const __m256d hi = _mm256_cmp_pd(t, n_minus_1, _CMP_GE_OQ);
  // Interior lanes: idx = floor(t) (== trunc for t > 0), frac = t - idx —
  // the same two values the scalar locate produces.
  __m256d tf = _mm256_floor_pd(t);
  __m256d frac = _mm256_sub_pd(t, tf);
  frac = _mm256_blendv_pd(frac, zero, lo);
  frac = _mm256_blendv_pd(frac, one, hi);
  tf = _mm256_blendv_pd(tf, zero, lo);
  tf = _mm256_blendv_pd(tf, _mm256_set1_pd(static_cast<double>(a.n - 2)), hi);
  __m128i idx = _mm256_cvttpd_epi32(tf);
  idx = _mm_min_epi32(idx, _mm_set1_epi32(static_cast<int>(a.n - 2)));
  return {idx, frac};
}

/// The four gathered fit coefficients of one bilinear corner, four lanes
/// wide, plus the current fit evaluated at u (same branch-as-blend in
/// eval and deriv).
struct Corner4 {
  __m256d e;  ///< fitted current at u
  __m256d d;  ///< dI/dVds at u
};

/// 4x4 double transpose: column vectors a..d to row vectors r0..r3.
struct Rows4 {
  __m256d r0, r1, r2, r3;
};

inline Rows4 transpose4(__m256d a, __m256d b, __m256d c, __m256d d) {
  const __m256d t0 = _mm256_unpacklo_pd(a, b);
  const __m256d t1 = _mm256_unpackhi_pd(a, b);
  const __m256d t2 = _mm256_unpacklo_pd(c, d);
  const __m256d t3 = _mm256_unpackhi_pd(c, d);
  Rows4 r;
  r.r0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  r.r1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  r.r2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  r.r3 = _mm256_permute2f128_pd(t1, t3, 0x31);
  return r;
}

inline Corner4 corner_eval(const double* p0, const double* p1,
                           const double* p2, const double* p3, __m256d u) {
  // Two vector loads per lane + two transposes in place of six gathers.
  const Rows4 lo = transpose4(_mm256_loadu_pd(p0), _mm256_loadu_pd(p1),
                              _mm256_loadu_pd(p2), _mm256_loadu_pd(p3));
  const Rows4 hi =
      transpose4(_mm256_loadu_pd(p0 + 4), _mm256_loadu_pd(p1 + 4),
                 _mm256_loadu_pd(p2 + 4), _mm256_loadu_pd(p3 + 4));
  const __m256d s1 = lo.r0;
  const __m256d s0 = lo.r1;
  const __m256d t2 = lo.r2;
  const __m256d t1 = lo.r3;
  const __m256d t0 = hi.r0;  // hi.r1 is vth (unused), hi.r3 fit quality
  const __m256d vdsat = hi.r2;
  const __m256d in_triode = _mm256_cmp_pd(u, vdsat, _CMP_LE_OQ);
  // eval: (t2*u + t1)*u + t0 vs s1*u + s0.
  const __m256d tri = _mm256_add_pd(
      _mm256_mul_pd(_mm256_add_pd(_mm256_mul_pd(t2, u), t1), u), t0);
  const __m256d sat = _mm256_add_pd(_mm256_mul_pd(s1, u), s0);
  // deriv: 2.0*t2*u + t1 (2*t2 exact) vs s1.
  const __m256d dtri = _mm256_add_pd(
      _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), t2), u), t1);
  Corner4 c;
  c.e = _mm256_blendv_pd(sat, tri, in_triode);
  c.d = _mm256_blendv_pd(s1, dtri, in_triode);
  return c;
}

/// e00*(1-f0)*(1-f1) + e01*(1-f0)*f1 + e10*f0*(1-f1) + e11*f0*f1 with the
/// scalar kernel's exact association: terms built left-to-right, summed
/// left-to-right. g0 = 1-f0 and g1 = 1-f1 are passed in pre-subtracted —
/// the scalar code recomputes the same subtraction per term, which is
/// value-identical.
inline __m256d bilinear4(__m256d e00, __m256d e01, __m256d e10, __m256d e11,
                         __m256d f0, __m256d g0, __m256d f1, __m256d g1) {
  __m256d acc = _mm256_mul_pd(_mm256_mul_pd(e00, g0), g1);
  acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_mul_pd(e01, g0), f1));
  acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_mul_pd(e10, f0), g1));
  acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_mul_pd(e11, f0), f1));
  return acc;
}

struct Blend4 {
  __m256d i, d_vg, d_vs, d_vd;
};

/// Four-lane frame_blend over one grid at already-located cells. `off00`
/// is the double-strided offset of the (i0, i1) corner point.
/// Per-call hoisted axis reciprocals (locate scale and derivative scale
/// share the same 1/dx values).
struct AxisInv {
  __m256d vs, vg;
};

inline AxisInv axis_inv(const CharacterizationGrid& g) {
  AxisInv inv;
  inv.vs = _mm256_set1_pd(1.0 / g.vs_axis.dx);
  inv.vg = _mm256_set1_pd(1.0 / g.vg_axis.dx);
  return inv;
}

inline Blend4 blend4(const CharacterizationGrid& g, const AxisInv& inv,
                     __m128i off00, __m256d f0, __m256d f1, __m256d u) {
  const double* pts = reinterpret_cast<const double*>(g.points.data());
  const int vg_stride = static_cast<int>(g.vg_axis.n) * kPtStride;
  // Lane base pointers, extracted once; the four corner offsets are
  // compile-time-constant displacements folded into the addressing.
  alignas(16) std::int32_t off[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(off), off00);
  const double* q0 = pts + off[0];
  const double* q1 = pts + off[1];
  const double* q2 = pts + off[2];
  const double* q3 = pts + off[3];
  const Corner4 c00 = corner_eval(q0, q1, q2, q3, u);
  const Corner4 c01 = corner_eval(q0 + kPtStride, q1 + kPtStride,
                                  q2 + kPtStride, q3 + kPtStride, u);
  const Corner4 c10 = corner_eval(q0 + vg_stride, q1 + vg_stride,
                                  q2 + vg_stride, q3 + vg_stride, u);
  const Corner4 c11 =
      corner_eval(q0 + vg_stride + kPtStride, q1 + vg_stride + kPtStride,
                  q2 + vg_stride + kPtStride, q3 + vg_stride + kPtStride, u);

  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d g0 = _mm256_sub_pd(one, f0);
  const __m256d g1 = _mm256_sub_pd(one, f1);
  const __m256d i = bilinear4(c00.e, c01.e, c10.e, c11.e, f0, g0, f1, g1);
  const __m256d di_du =
      bilinear4(c00.d, c01.d, c10.d, c11.d, f0, g0, f1, g1);

  // Interpolant derivative along the vs table axis (u held fixed).
  const __m256d lo_vs =
      _mm256_add_pd(_mm256_mul_pd(c00.e, g1), _mm256_mul_pd(c01.e, f1));
  const __m256d hi_vs =
      _mm256_add_pd(_mm256_mul_pd(c10.e, g1), _mm256_mul_pd(c11.e, f1));
  const __m256d di_dvs_axis =
      _mm256_mul_pd(_mm256_sub_pd(hi_vs, lo_vs), inv.vs);

  // Interpolant derivative along the vg table axis.
  const __m256d lo_vg =
      _mm256_add_pd(_mm256_mul_pd(c00.e, g0), _mm256_mul_pd(c10.e, f0));
  const __m256d hi_vg =
      _mm256_add_pd(_mm256_mul_pd(c01.e, g0), _mm256_mul_pd(c11.e, f0));
  const __m256d di_dvg_axis =
      _mm256_mul_pd(_mm256_sub_pd(hi_vg, lo_vg), inv.vg);

  Blend4 b;
  b.i = i;
  b.d_vd = di_du;
  b.d_vs = _mm256_sub_pd(di_dvs_axis, di_du);
  b.d_vg = di_dvg_axis;
  return b;
}

/// Transposes the four SoA result vectors into four AoS FrameEval records.
inline void store4(const Blend4& b, FrameEval* out) {
  const __m256d t0 = _mm256_unpacklo_pd(b.i, b.d_vg);
  const __m256d t1 = _mm256_unpackhi_pd(b.i, b.d_vg);
  const __m256d t2 = _mm256_unpacklo_pd(b.d_vs, b.d_vd);
  const __m256d t3 = _mm256_unpackhi_pd(b.d_vs, b.d_vd);
  _mm256_storeu_pd(&out[0].i, _mm256_permute2f128_pd(t0, t2, 0x20));
  _mm256_storeu_pd(&out[1].i, _mm256_permute2f128_pd(t1, t3, 0x20));
  _mm256_storeu_pd(&out[2].i, _mm256_permute2f128_pd(t0, t2, 0x31));
  _mm256_storeu_pd(&out[3].i, _mm256_permute2f128_pd(t1, t3, 0x31));
}

/// Shared locate for one 4-lane group: cell offsets + weights + u.
struct Group4 {
  __m128i off00;
  __m256d f0, f1, u;
};

inline Group4 locate_group(const CharacterizationGrid& g, const AxisInv& inv,
                           const double* vg, const double* vs,
                           const double* vd) {
  const __m256d vvs = _mm256_loadu_pd(vs);
  const __m256d vvg = _mm256_loadu_pd(vg);
  const __m256d vvd = _mm256_loadu_pd(vd);
  const Located4 l0 = locate4(g.vs_axis, inv.vs, vvs);
  const Located4 l1 = locate4(g.vg_axis, inv.vg, vvg);
  Group4 grp;
  const __m128i cell = _mm_add_epi32(
      _mm_mullo_epi32(l0.idx, _mm_set1_epi32(static_cast<int>(g.vg_axis.n))),
      l1.idx);
  grp.off00 = _mm_mullo_epi32(cell, _mm_set1_epi32(kPtStride));
  grp.f0 = l0.frac;
  grp.f1 = l1.frac;
  grp.u = _mm256_sub_pd(vvd, vvs);
  return grp;
}

}  // namespace

void eval_frames_avx2(const CharacterizationGrid& g, std::size_t n,
                      const double* vg, const double* vs, const double* vd,
                      FrameEval* out) {
  const AxisInv inv = axis_inv(g);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const Group4 grp = locate_group(g, inv, vg + k, vs + k, vd + k);
    store4(blend4(g, inv, grp.off00, grp.f0, grp.f1, grp.u), out + k);
  }
  if (k < n) {
    if (n >= 4) {
      // Overlapped tail: rerun the last four lanes as one full group. Up
      // to three lanes are recomputed with identical bits — one vector
      // pass is still cheaper than three scalar lookups.
      k = n - 4;
      const Group4 grp = locate_group(g, inv, vg + k, vs + k, vd + k);
      store4(blend4(g, inv, grp.off00, grp.f0, grp.f1, grp.u), out + k);
    } else {
      for (; k < n; ++k)
        out[k] = detail::frame_lookup(g, vg[k], vs[k], vd[k]);
    }
  }
}

void eval_frames_multi_avx2(const CharacterizationGrid* const* grids,
                            std::size_t grid_count, std::size_t n,
                            const double* vg, const double* vs,
                            const double* vd, FrameEval* const* out) {
  const CharacterizationGrid& g0 = *grids[0];
  const AxisInv inv = axis_inv(g0);  // axes match by precondition
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // Located once on the shared axes, blended per grid — the cell
    // offsets are valid for every grid because the axes (and therefore
    // vg_axis.n) match by precondition.
    const Group4 grp = locate_group(g0, inv, vg + k, vs + k, vd + k);
    for (std::size_t m = 0; m < grid_count; ++m)
      store4(blend4(*grids[m], inv, grp.off00, grp.f0, grp.f1, grp.u),
             out[m] + k);
  }
  if (k < n && n >= 4) {
    // Overlapped tail (see eval_frames_avx2): identical bits, fewer ops.
    k = n - 4;
    const Group4 grp = locate_group(g0, inv, vg + k, vs + k, vd + k);
    for (std::size_t m = 0; m < grid_count; ++m)
      store4(blend4(*grids[m], inv, grp.off00, grp.f0, grp.f1, grp.u),
             out[m] + k);
    return;
  }
  const double inv_vs_dx = 1.0 / g0.vs_axis.dx;
  const double inv_vg_dx = 1.0 / g0.vg_axis.dx;
  for (; k < n; ++k) {
    const double u = vd[k] - vs[k];
    std::size_t i0, i1;
    double f0, f1;
    detail::kernel_locate(g0.vs_axis, inv_vs_dx, vs[k], i0, f0);
    detail::kernel_locate(g0.vg_axis, inv_vg_dx, vg[k], i1, f1);
    for (std::size_t m = 0; m < grid_count; ++m)
      out[m][k] = detail::frame_blend(*grids[m], i0, f0, i1, f1, u);
  }
}

}  // namespace qwm::device::kernel
