// The paper's DeviceModel abstraction (Definition 2).
//
// A device model maps an edge's geometry and terminal-voltage
// configuration to the current flowing from the edge's source node to its
// sink node, plus the threshold/saturation data and the parasitic
// capacitance contributions QWM needs. Two implementations exist:
//
//  * AnalyticDeviceModel — calls the golden physics directly (the
//    "no model-compression" reference),
//  * TabularDeviceModel  — the paper's characterized table of per-(Vs,Vg)
//    curve fits with interpolation (fast, and what QWM/TETA-class engines
//    actually run on).
//
// Edge orientation convention: edges point from the supply side toward
// ground (the polar graph runs VDD -> GND), so a positive iv() is a
// pulldown/discharge current for NMOS edges and a pullup/charge current
// for PMOS edges.
#pragma once

#include "qwm/device/mosfet_physics.h"
#include "qwm/device/process.h"

namespace qwm::device {

class TabularDeviceModel;

/// Terminal voltage configuration of a circuit edge (paper Def. 2):
/// `input` is the gate voltage (transistors only), `src`/`snk` the edge
/// endpoint node voltages.
struct TerminalVoltages {
  double input = 0.0;
  double src = 0.0;
  double snk = 0.0;
};

/// Current and partial derivatives w.r.t. the terminal voltages.
struct IvEval {
  double i = 0.0;
  double d_input = 0.0;
  double d_src = 0.0;
  double d_snk = 0.0;
};

class DeviceModel {
 public:
  virtual ~DeviceModel() = default;

  virtual MosType mos_type() const = 0;

  /// Current flowing src -> snk for a device of drawn size w x l [A].
  virtual double iv(double w, double l, const TerminalVoltages& v) const = 0;

  /// iv() plus analytic partial derivatives (used to assemble Jacobians in
  /// both the SPICE and QWM engines).
  virtual IvEval iv_eval(double w, double l,
                         const TerminalVoltages& v) const = 0;

  /// Effective threshold voltage magnitude for the present bias, including
  /// body effect at the conducting source terminal. The QWM critical-point
  /// condition "gate drive equals threshold" is written with this value:
  /// NMOS turns on when  input >= source + threshold,
  /// PMOS turns on when  input <= source - threshold.
  virtual double threshold(const TerminalVoltages& v) const = 0;

  /// Saturation voltage for the present bias (used by characterization and
  /// region classification).
  virtual double vdsat(double l, const TerminalVoltages& v) const = 0;

  /// Parasitic capacitance contributed by the device to its src-side node,
  /// snk-side node, and gate input [F]. Junction plus overlap terms; the
  /// overlap is Miller-doubled on the channel nodes (worst-case coupling,
  /// the standard STA treatment).
  virtual double src_cap(double w, double l) const = 0;
  virtual double snk_cap(double w, double l) const = 0;
  virtual double input_cap(double w, double l) const = 0;

  /// Concrete-type hook for the engines' devirtualized hot path: non-null
  /// iff this model is a TabularDeviceModel. Stage/path builders cache the
  /// returned pointer so inner NR loops can call the non-virtual batched
  /// kernel instead of going through iv_eval's vtable dispatch.
  virtual const TabularDeviceModel* tabular() const { return nullptr; }
};

/// Junction + Miller-doubled overlap capacitance of one channel terminal
/// for a device of the given geometry [F]. Shared by both model
/// implementations so their capacitive loading is identical.
double channel_terminal_cap(const MosfetParams& p, double w, double l);

/// Gate input capacitance (channel + both overlaps) [F].
double gate_input_cap(const MosfetParams& p, double w, double l);

}  // namespace qwm::device
