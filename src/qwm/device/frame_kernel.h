// Runtime-dispatched frame-evaluation kernel (portable scalar + AVX2).
//
// The tabular device model's hot path is the interpolated frame lookup:
// locate the (Vs, Vg) grid cell, evaluate the four corner fits at
// u = Vd - Vs, and bilinearly blend the value and its partials. This file
// is the single home of that arithmetic. Two backends implement it:
//
//   * scalar — the portable reference loop. Compiled with
//     -ffp-contract=off so the operation-by-operation IEEE semantics are
//     pinned (no fused multiply-adds sneaking in on FMA-capable hosts).
//   * avx2   — four frames per iteration with gathered corner
//     coefficients, the triode/saturation branch as a lane blend, and the
//     exact same operation DAG as the scalar loop (same order, no FMA), so
//     both backends produce bit-identical results. Remainder lanes
//     (n % 4) run the shared scalar inline kernel.
//
// Backend selection happens once at startup (best available, overridable
// with QWM_SIMD_BACKEND=scalar|avx2) and can be forced per-process with
// set_backend() — the bit-exactness tests run every compiled backend over
// the same inputs and compare bitwise.
#pragma once

#include <cstddef>

#include "qwm/device/characterize.h"

namespace qwm::device::kernel {

/// Table lookup result in the NMOS-normalized frame at the reference
/// geometry (drain -> source channel current and its partials).
struct FrameEval {
  double i = 0.0;      ///< channel current drain -> source, ref geometry
  double d_vg = 0.0;   ///< partials w.r.t. gate, source, drain voltage
  double d_vs = 0.0;
  double d_vd = 0.0;
};

enum class Backend : int {
  scalar = 0,  ///< portable reference loop (always compiled)
  avx2 = 1,    ///< 4-wide AVX2 (x86-64 hosts with AVX2)
};

/// SIMD group width the engines' simd_batches counters are normalized to.
/// Fixed at the AVX2 lane count on every backend so the counters stay
/// deterministic across hosts.
inline constexpr std::size_t kSimdWidth = 4;

/// True when the backend's translation unit was compiled into the binary.
bool backend_compiled(Backend b);
/// True when the backend is compiled in and the host CPU supports it.
bool backend_supported(Backend b);
/// The backend dispatch currently routes to.
Backend active_backend();
/// Forces the dispatch backend. Returns false (and leaves the dispatch
/// unchanged) when the backend is not supported on this host.
bool set_backend(Backend b);
const char* backend_name(Backend b);

/// n independent frame lookups: out[k] is the bilinear blend of grid `g`
/// at (vs[k], vg[k]) evaluated at u = vd[k] - vs[k]. Requires vd >= vs.
void eval_frames(const CharacterizationGrid& g, std::size_t n,
                 const double* vg, const double* vs, const double* vd,
                 FrameEval* out);

/// Corner-lane variant: one locate on grids[0]'s axes shared by every
/// grid, then a per-grid blend. Precondition (checked by the caller):
/// every grid shares grids[0]'s axes. out[m][k] is bit-identical to
/// eval_frames(*grids[m], ...) on every backend.
void eval_frames_multi(const CharacterizationGrid* const* grids,
                       std::size_t grid_count, std::size_t n,
                       const double* vg, const double* vs, const double* vd,
                       FrameEval* const* out);

}  // namespace qwm::device::kernel
