// A matched pair of device models plus the process they were built for.
//
// Every engine (SPICE baseline, QWM, STA) consumes devices through a
// ModelSet so that accuracy comparisons always run both engines on
// identical device data.
#pragma once

#include "qwm/device/device_model.h"
#include "qwm/device/process.h"

namespace qwm::device {

struct ModelSet {
  const DeviceModel* nmos = nullptr;
  const DeviceModel* pmos = nullptr;
  const Process* process = nullptr;

  const DeviceModel& model_for(MosType t) const {
    return t == MosType::nmos ? *nmos : *pmos;
  }
  double vdd() const { return process->vdd; }
};

}  // namespace qwm::device
