// A matched pair of device models plus the process they were built for.
//
// Every engine (SPICE baseline, QWM, STA) consumes devices through a
// ModelSet so that accuracy comparisons always run both engines on
// identical device data.
//
// Multi-corner analysis extends this to a CornerModelSet: one ModelSet
// per active process corner, the primary (typical) corner first. The
// owning counterpart is CornerLibrary, which derives the corner
// processes from a base Process and characterizes one tabular model
// pair per corner at construction ("per-corner characterization at load
// time").
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "qwm/device/device_model.h"
#include "qwm/device/process.h"

namespace qwm::device {

class TabularDeviceModel;
struct CharacterizationOptions;

struct ModelSet {
  const DeviceModel* nmos = nullptr;
  const DeviceModel* pmos = nullptr;
  const Process* process = nullptr;

  const DeviceModel& model_for(MosType t) const {
    return t == MosType::nmos ? *nmos : *pmos;
  }
  double vdd() const { return process->vdd; }
};

/// One ModelSet per active corner (non-owning, like ModelSet itself).
/// `corners` lists the active corners with the primary lane — the corner
/// legacy single-corner queries read — first. `sets` is indexed by the
/// Corner enum so inactive slots simply stay empty.
struct CornerModelSet {
  std::vector<Corner> corners{Corner::typical};
  std::array<ModelSet, kCornerCount> sets{};

  const ModelSet& at(Corner c) const {
    return sets[static_cast<std::size_t>(c)];
  }
  const ModelSet& primary() const { return at(corners.front()); }
  std::size_t count() const { return corners.size(); }
  bool multi() const { return corners.size() > 1; }
  /// Slot of `c` in the active-corner list; -1 when inactive.
  int slot_of(Corner c) const {
    for (std::size_t i = 0; i < corners.size(); ++i)
      if (corners[i] == c) return static_cast<int>(i);
    return -1;
  }

  /// Wraps a single ModelSet as a one-corner set — the adapter that keeps
  /// every legacy single-corner caller bit-identical.
  static CornerModelSet single(const ModelSet& ms,
                               Corner corner = Corner::typical) {
    CornerModelSet c;
    c.corners = {corner};
    c.sets[static_cast<std::size_t>(corner)] = ms;
    return c;
  }
};

/// First-order ratio of switching time scales between two characterized
/// conditions: a QWM trace recorded against `from` and replayed against
/// `to` should have its region lengths multiplied by this factor
/// (QwmOptions::warm_scale). Durations scale inversely with saturation
/// drive, I ~ kp * (vdd - vth0)^2, averaged over both polarities; the
/// waveform *shape* (the alphas) is treated as corner-invariant. Returns
/// 1.0 when either process is missing.
double warm_time_scale(const ModelSet& from, const ModelSet& to);

/// Owns one derived Process and one characterized tabular model pair per
/// corner. Corner derivation scales transconductance and threshold only
/// (process.h), so every corner grid shares the typical grid's axes — the
/// property the corner-lane batched table lookup relies on.
class CornerLibrary {
 public:
  explicit CornerLibrary(const Process& base);
  CornerLibrary(const Process& base, const CharacterizationOptions& options);
  ~CornerLibrary();

  // ModelSet entries point into this object; moving would dangle them.
  CornerLibrary(const CornerLibrary&) = delete;
  CornerLibrary& operator=(const CornerLibrary&) = delete;

  const ModelSet& set(Corner corner) const {
    return sets_[static_cast<std::size_t>(corner)];
  }
  const Process& process(Corner corner) const {
    return procs_[static_cast<std::size_t>(corner)];
  }
  const TabularDeviceModel& model(Corner corner, MosType type) const;

  /// All three corners, typical primary.
  CornerModelSet sets() const;

 private:
  std::array<Process, kCornerCount> procs_;
  std::array<std::unique_ptr<TabularDeviceModel>, kCornerCount> nmos_;
  std::array<std::unique_ptr<TabularDeviceModel>, kCornerCount> pmos_;
  std::array<ModelSet, kCornerCount> sets_;
};

}  // namespace qwm::device
