// DeviceModel backed directly by the golden analytical physics.
//
// This is the "no compression" reference implementation: every iv() query
// evaluates the full MOSFET equations. The SPICE baseline uses it as its
// ground-truth device model; the tabular model is validated against it.
#pragma once

#include "qwm/device/device_model.h"

namespace qwm::device {

class AnalyticDeviceModel : public DeviceModel {
 public:
  /// `vdd` sets the PMOS well bias (bulk voltage); NMOS bulk is ground.
  AnalyticDeviceModel(MosType type, const MosfetParams& params, double vdd,
                      double temp_vt);

  /// Convenience constructor from a full process description.
  static AnalyticDeviceModel nmos(const Process& p);
  static AnalyticDeviceModel pmos(const Process& p);

  MosType mos_type() const override { return physics_.type(); }
  double iv(double w, double l, const TerminalVoltages& v) const override;
  IvEval iv_eval(double w, double l, const TerminalVoltages& v) const override;
  double threshold(const TerminalVoltages& v) const override;
  double vdsat(double l, const TerminalVoltages& v) const override;
  double src_cap(double w, double l) const override;
  double snk_cap(double w, double l) const override;
  double input_cap(double w, double l) const override;

  const MosfetPhysics& physics() const { return physics_; }
  double bulk_voltage() const { return bulk_; }

 private:
  MosfetPhysics physics_;
  double bulk_;
};

}  // namespace qwm::device
