// Shared scalar frame-lookup kernel, included by every backend TU.
//
// This header is the reference arithmetic: the scalar backend runs it for
// every lane, and the SIMD backends run it for remainder lanes and mirror
// its operation DAG (same order, no contraction) in vector form. Backend
// TUs are compiled with -ffp-contract=off so the operation sequence below
// is also the rounding sequence — keep any edits in lockstep with the
// vector implementations.
#pragma once

#include <cassert>
#include <cstddef>

#include "qwm/device/frame_kernel.h"

namespace qwm::device::kernel::detail {

/// Kernel-local axis locate: UniformAxis::locate's index and clamp
/// semantics, but scaling by a precomputed reciprocal of dx instead of
/// dividing. The SIMD backends hoist the reciprocal out of their lane
/// loops; this scalar form computes the identical product, so lanes match
/// bit for bit. (The reciprocal shifts interior results by at most one
/// ulp of t relative to UniformAxis::locate — the blend is continuous
/// across cell boundaries, so downstream values move by ulps only.)
inline void kernel_locate(const numeric::UniformAxis& a, double inv_dx,
                          double x, std::size_t& idx, double& frac) {
  const double t = (x - a.x0) * inv_dx;
  if (t <= 0.0) {
    idx = 0;
    frac = 0.0;
    return;
  }
  if (t >= static_cast<double>(a.n - 1)) {
    idx = a.n - 2;
    frac = 1.0;
    return;
  }
  idx = static_cast<std::size_t>(t);
  if (idx > a.n - 2) idx = a.n - 2;  // defensive, mirrors UniformAxis
  frac = t - static_cast<double>(idx);
}

/// The located half of the lookup: blend arithmetic at an already
/// resolved grid cell. Split out so the corner-lane path can locate once
/// and blend per grid.
inline FrameEval frame_blend(const CharacterizationGrid& g, std::size_t i0,
                             double f0, std::size_t i1, double f1, double u) {
  const CharacterizedPoint& p00 = g.at(i0, i1);
  const CharacterizedPoint& p01 = g.at(i0, i1 + 1);
  const CharacterizedPoint& p10 = g.at(i0 + 1, i1);
  const CharacterizedPoint& p11 = g.at(i0 + 1, i1 + 1);
  // Corner evaluations, computed once and reused for the value and both
  // table-axis derivatives.
  const double e00 = p00.eval(u);
  const double e01 = p01.eval(u);
  const double e10 = p10.eval(u);
  const double e11 = p11.eval(u);
  const double i = e00 * (1 - f0) * (1 - f1) + e01 * (1 - f0) * f1 +
                   e10 * f0 * (1 - f1) + e11 * f0 * f1;
  const double d00 = p00.deriv(u);
  const double d01 = p01.deriv(u);
  const double d10 = p10.deriv(u);
  const double d11 = p11.deriv(u);
  const double di_du = d00 * (1 - f0) * (1 - f1) + d01 * (1 - f0) * f1 +
                       d10 * f0 * (1 - f1) + d11 * f0 * f1;

  // Interpolant derivatives along the table axes (u held fixed). The
  // reciprocal form matches the SIMD backends, which hoist 1/dx out of
  // their lane loops.
  const double lo_vs = e00 * (1 - f1) + e01 * f1;
  const double hi_vs = e10 * (1 - f1) + e11 * f1;
  const double di_dvs_axis = (hi_vs - lo_vs) * (1.0 / g.vs_axis.dx);

  const double lo_vg = e00 * (1 - f0) + e10 * f0;
  const double hi_vg = e01 * (1 - f0) + e11 * f0;
  const double di_dvg_axis = (hi_vg - lo_vg) * (1.0 / g.vg_axis.dx);

  FrameEval out;
  out.i = i;
  out.d_vd = di_du;
  // vs enters both the table axis and u = vd - vs.
  out.d_vs = di_dvs_axis - di_du;
  out.d_vg = di_dvg_axis;
  return out;
}

/// One interpolated lookup in the NMOS frame with vd >= vs.
inline FrameEval frame_lookup(const CharacterizationGrid& g, double vg,
                              double vs, double vd) {
  assert(vd >= vs);
  const double u = vd - vs;
  std::size_t i0, i1;
  double f0, f1;
  kernel_locate(g.vs_axis, 1.0 / g.vs_axis.dx, vs, i0, f0);
  kernel_locate(g.vg_axis, 1.0 / g.vg_axis.dx, vg, i1, f1);
  return frame_blend(g, i0, f0, i1, f1, u);
}

}  // namespace qwm::device::kernel::detail
