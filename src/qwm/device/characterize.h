// Device characterization: builds the compressed tabular I/V model.
//
// Paper §V-A: sweep Vs and Vg over [0, VDD] with a 0.1 V step; at each
// (Vs, Vg) pair, fit the channel current's dependence on Vds with a
// quadratic polynomial in the triode region and a linear polynomial in
// the saturation region, and store the fits together with the threshold
// and saturation voltages — 7 parameters per grid point. Queries off the
// grid bilinearly interpolate the four neighbouring points.
//
// The paper samples Hspice/BSIM3; we sample the in-repo golden physics
// (see DESIGN.md substitution table) through exactly the same flow.
#pragma once

#include <cstddef>
#include <vector>

#include "qwm/device/mosfet_physics.h"
#include "qwm/numeric/interp.h"
#include "qwm/numeric/polyfit.h"

namespace qwm::device {

struct CharacterizationOptions {
  double grid_step = 0.1;    ///< Vs/Vg grid pitch [V] (paper: 0.1 V)
  double w_ref = 1.0e-6;     ///< reference width the table is built at [m]
  double l_ref = 0.35e-6;    ///< channel length the table is built at [m]
  int triode_samples = 16;   ///< golden-model samples per triode fit
  int sat_samples = 16;      ///< golden-model samples per saturation fit
  double sat_margin = 0.3;   ///< extend the saturation sweep this far past
                             ///< VDD so extrapolated queries stay sane [V]
};

/// The 7 stored parameters of one (Vs, Vg) grid point, plus fit quality.
/// Current is parameterized by u = Vds:
///   triode    (0 <= u <= vdsat): I = t2*u^2 + t1*u + t0
///   saturation     (u >= vdsat): I = s1*u + s0
struct CharacterizedPoint {
  double s1 = 0.0, s0 = 0.0;
  double t2 = 0.0, t1 = 0.0, t0 = 0.0;
  double vth = 0.0;
  double vdsat = 0.0;
  numeric::FitQuality triode_fit;
  numeric::FitQuality sat_fit;

  /// Fitted current at Vds = u (>= 0) for the reference geometry.
  double eval(double u) const {
    if (u <= vdsat) return (t2 * u + t1) * u + t0;
    return s1 * u + s0;
  }
  /// dI/dVds of the fit at u.
  double deriv(double u) const {
    if (u <= vdsat) return 2.0 * t2 * u + t1;
    return s1;
  }
};

/// The full characterized grid (always in the NMOS-normalized frame; PMOS
/// devices are mirrored into this frame before lookup).
struct CharacterizationGrid {
  numeric::UniformAxis vs_axis;
  numeric::UniformAxis vg_axis;
  std::vector<CharacterizedPoint> points;  ///< vs-major, vg-minor
  double w_ref = 0.0;
  double l_ref = 0.0;

  const CharacterizedPoint& at(std::size_t ivs, std::size_t ivg) const {
    return points[ivs * vg_axis.n + ivg];
  }
  std::size_t size() const { return points.size(); }

  /// Aggregate fit statistics. R-squared means are taken over *active*
  /// grid points only (device meaningfully conducting): an off device has
  /// near-zero current with no variance to explain, which makes R-squared
  /// meaningless even though the absolute fit error is negligible.
  struct Stats {
    double mean_r2_triode = 0.0;   ///< over active points
    double mean_r2_sat = 0.0;      ///< over active points
    double worst_rms_triode = 0.0;  ///< over all points [A]
    double worst_rms_sat = 0.0;     ///< over all points [A]
    std::size_t grid_points = 0;
    std::size_t active_points = 0;  ///< |I| above the activity threshold
  };
  Stats stats(double active_current = 1e-6) const;
};

/// Runs the characterization sweep against the golden physics. `physics`
/// must be in the NMOS frame (for PMOS pass the PMOS physics — voltages
/// are frame-local, so the sweep itself is polarity-agnostic).
CharacterizationGrid characterize(const MosfetPhysics& physics, double vdd,
                                  const CharacterizationOptions& options = {});

/// One (Vs, Vg) point expanded for plotting (Fig. 8): raw golden samples
/// against the two fitted polynomials.
struct IvFitCurve {
  double vs = 0.0, vg = 0.0, vth = 0.0, vdsat = 0.0;
  std::vector<double> vds;       ///< sample abscissae
  std::vector<double> ids_data;  ///< golden currents
  std::vector<double> ids_fit;   ///< fitted currents
};

IvFitCurve sample_iv_fit(const MosfetPhysics& physics, double vdd, double vs,
                         double vg, const CharacterizationOptions& options = {},
                         int plot_samples = 64);

}  // namespace qwm::device
