#include "qwm/device/characterize.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qwm::device {

namespace {

/// Golden channel current in the NMOS-normalized frame. For PMOS physics
/// the query is mirrored (v -> VDD - v, bulk at VDD) and the current
/// negated, so the sampled surface matches what TabularDeviceModel's
/// mirrored lookups expect.
double frame_ids(const MosfetPhysics& physics, double vdd, double w, double l,
                 double vg, double vd, double vs) {
  if (physics.type() == MosType::nmos)
    return physics.ids(w, l, vg, vd, vs, 0.0);
  return -physics.ids(w, l, vdd - vg, vdd - vd, vdd - vs, vdd);
}

/// Fits one grid point: samples the golden current over the triode and
/// saturation Vds ranges and runs the two least-squares fits.
CharacterizedPoint fit_point(const MosfetPhysics& physics, double vdd,
                             double vs, double vg,
                             const CharacterizationOptions& opt) {
  CharacterizedPoint pt;
  // vsb in the NMOS frame is vs (frame bulk sits at frame ground); the
  // same value is the PMOS source-to-well bias after mirroring.
  pt.vth = physics.threshold(vs);
  const double vgt = std::max(vg - vs - pt.vth, 0.0);
  pt.vdsat = physics.vdsat(vgt, opt.l_ref);

  auto golden = [&](double u) {
    // Channel current with drain at vs + u, source at vs, gate at vg.
    return frame_ids(physics, vdd, opt.w_ref, opt.l_ref, vg, vs + u, vs);
  };

  const double u_top = std::max(vdd - vs, pt.vdsat) + opt.sat_margin;

  // Triode fit: quadratic over [0, vdsat]. A device that is off (or whose
  // triode region is negligible) keeps zero triode coefficients.
  if (pt.vdsat > 1e-3) {
    std::vector<double> us(opt.triode_samples), is(opt.triode_samples);
    for (int k = 0; k < opt.triode_samples; ++k) {
      us[k] = pt.vdsat * static_cast<double>(k) /
              static_cast<double>(opt.triode_samples - 1);
      is[k] = golden(us[k]);
    }
    const numeric::Polynomial p = numeric::polyfit(us, is, 2);
    if (!p.coeffs.empty()) {
      pt.t0 = p.coeffs[0];
      pt.t1 = p.coeffs[1];
      pt.t2 = p.coeffs[2];
      pt.triode_fit = numeric::fit_quality(p, us, is);
    }
  }

  // Saturation fit: linear over [vdsat, u_top].
  {
    std::vector<double> us(opt.sat_samples), is(opt.sat_samples);
    const double u_lo = pt.vdsat;
    const double u_hi = std::max(u_top, u_lo + 0.05);
    for (int k = 0; k < opt.sat_samples; ++k) {
      us[k] = u_lo + (u_hi - u_lo) * static_cast<double>(k) /
                         static_cast<double>(opt.sat_samples - 1);
      is[k] = golden(us[k]);
    }
    const numeric::Polynomial p = numeric::polyfit(us, is, 1);
    if (!p.coeffs.empty()) {
      pt.s0 = p.coeffs[0];
      pt.s1 = p.coeffs[1];
      pt.sat_fit = numeric::fit_quality(p, us, is);
    }
  }
  return pt;
}

}  // namespace

CharacterizationGrid::Stats CharacterizationGrid::stats(
    double active_current) const {
  Stats s;
  s.grid_points = points.size();
  if (points.empty()) return s;
  const double u_probe = vs_axis.dx * static_cast<double>(vs_axis.n);
  for (const auto& p : points) {
    s.worst_rms_triode = std::max(s.worst_rms_triode, p.triode_fit.rms_error);
    s.worst_rms_sat = std::max(s.worst_rms_sat, p.sat_fit.rms_error);
    if (std::abs(p.eval(u_probe)) < active_current) continue;
    ++s.active_points;
    s.mean_r2_triode += p.triode_fit.r_squared;
    s.mean_r2_sat += p.sat_fit.r_squared;
  }
  if (s.active_points > 0) {
    s.mean_r2_triode /= static_cast<double>(s.active_points);
    s.mean_r2_sat /= static_cast<double>(s.active_points);
  }
  return s;
}

CharacterizationGrid characterize(const MosfetPhysics& physics, double vdd,
                                  const CharacterizationOptions& options) {
  assert(options.grid_step > 0.0 && vdd > 0.0);
  CharacterizationGrid grid;
  const std::size_t n =
      static_cast<std::size_t>(std::round(vdd / options.grid_step)) + 1;
  grid.vs_axis = numeric::UniformAxis{0.0, options.grid_step, n};
  grid.vg_axis = numeric::UniformAxis{0.0, options.grid_step, n};
  grid.w_ref = options.w_ref;
  grid.l_ref = options.l_ref;
  grid.points.reserve(n * n);
  for (std::size_t ivs = 0; ivs < n; ++ivs) {
    const double vs = grid.vs_axis.coord(ivs);
    for (std::size_t ivg = 0; ivg < n; ++ivg) {
      const double vg = grid.vg_axis.coord(ivg);
      grid.points.push_back(fit_point(physics, vdd, vs, vg, options));
    }
  }
  return grid;
}

IvFitCurve sample_iv_fit(const MosfetPhysics& physics, double vdd, double vs,
                         double vg, const CharacterizationOptions& options,
                         int plot_samples) {
  IvFitCurve curve;
  curve.vs = vs;
  curve.vg = vg;
  const CharacterizedPoint pt = fit_point(physics, vdd, vs, vg, options);
  curve.vth = pt.vth;
  curve.vdsat = pt.vdsat;
  const double u_top = std::max(vdd - vs, pt.vdsat) + options.sat_margin;
  for (int k = 0; k < plot_samples; ++k) {
    const double u = u_top * static_cast<double>(k) /
                     static_cast<double>(plot_samples - 1);
    curve.vds.push_back(u);
    curve.ids_data.push_back(
        frame_ids(physics, vdd, options.w_ref, options.l_ref, vg, vs + u, vs));
    curve.ids_fit.push_back(pt.eval(u));
  }
  return curve;
}

}  // namespace qwm::device
