#include "qwm/device/analytic_model.h"

#include <algorithm>
#include <cmath>

namespace qwm::device {

AnalyticDeviceModel::AnalyticDeviceModel(MosType type,
                                         const MosfetParams& params,
                                         double vdd, double temp_vt)
    : physics_(type, params, temp_vt),
      bulk_(type == MosType::nmos ? 0.0 : vdd) {}

AnalyticDeviceModel AnalyticDeviceModel::nmos(const Process& p) {
  return AnalyticDeviceModel(MosType::nmos, p.nmos, p.vdd, p.temp_vt);
}

AnalyticDeviceModel AnalyticDeviceModel::pmos(const Process& p) {
  return AnalyticDeviceModel(MosType::pmos, p.pmos, p.vdd, p.temp_vt);
}

double AnalyticDeviceModel::iv(double w, double l,
                               const TerminalVoltages& v) const {
  return physics_.ids(w, l, v.input, v.src, v.snk, bulk_);
}

IvEval AnalyticDeviceModel::iv_eval(double w, double l,
                                    const TerminalVoltages& v) const {
  const MosfetEval e = physics_.eval(w, l, v.input, v.src, v.snk, bulk_);
  return IvEval{e.ids, e.d_vg, e.d_va, e.d_vb};
}

double AnalyticDeviceModel::threshold(const TerminalVoltages& v) const {
  // The conducting source is the lower channel terminal for NMOS, the
  // higher for PMOS; vsb is measured source-to-bulk in the device frame.
  double vsource, vsb;
  if (physics_.type() == MosType::nmos) {
    vsource = std::min(v.src, v.snk);
    vsb = vsource - bulk_;
  } else {
    vsource = std::max(v.src, v.snk);
    vsb = bulk_ - vsource;
  }
  return physics_.threshold(vsb);
}

double AnalyticDeviceModel::vdsat(double l, const TerminalVoltages& v) const {
  double vgt;
  if (physics_.type() == MosType::nmos) {
    const double vs = std::min(v.src, v.snk);
    vgt = v.input - vs - physics_.threshold(vs - bulk_);
  } else {
    const double vs = std::max(v.src, v.snk);
    vgt = vs - v.input - physics_.threshold(bulk_ - vs);
  }
  return physics_.vdsat(std::max(vgt, 0.0), l);
}

double AnalyticDeviceModel::src_cap(double w, double l) const {
  return channel_terminal_cap(physics_.params(), w, l);
}

double AnalyticDeviceModel::snk_cap(double w, double l) const {
  return channel_terminal_cap(physics_.params(), w, l);
}

double AnalyticDeviceModel::input_cap(double w, double l) const {
  return gate_input_cap(physics_.params(), w, l);
}

}  // namespace qwm::device
