#include "qwm/device/device_model.h"

#include <algorithm>

namespace qwm::device {

double channel_terminal_cap(const MosfetParams& p, double w, double l) {
  const double leff = std::max(l - 2.0 * p.l_overlap, 0.1 * l);
  const double area = w * p.l_diff;
  const double perim = 2.0 * (w + p.l_diff);
  const double junction = p.cj * area + p.cjsw * perim;
  // Overlap Miller-doubled; half the channel capacitance is attributed to
  // each channel terminal (triode charge partition).
  const double overlap = 2.0 * p.cgdo * w;
  const double channel = 0.5 * p.cox * w * leff;
  return junction + overlap + 0.5 * channel;
}

double gate_input_cap(const MosfetParams& p, double w, double l) {
  const double leff = std::max(l - 2.0 * p.l_overlap, 0.1 * l);
  return p.cox * w * leff + (p.cgso + p.cgdo) * w;
}

}  // namespace qwm::device
