// Characterization-grid persistence.
//
// The paper's tabular model compresses the device data to 7 parameters
// per (Vs, Vg) point precisely so it can be stored and reused across runs
// instead of re-sweeping the golden model (or, in the paper's flow,
// re-running Hspice). This module saves/loads the grid in a small
// versioned text format.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "qwm/device/characterize.h"

namespace qwm::device {

/// Serializes the grid; stable across platforms (decimal text, full
/// double precision).
void save_grid(const CharacterizationGrid& grid, std::ostream& os);
bool save_grid_file(const CharacterizationGrid& grid,
                    const std::string& path);

/// Parses a grid written by save_grid. nullopt on malformed input or
/// version mismatch.
std::optional<CharacterizationGrid> load_grid(std::istream& is);
std::optional<CharacterizationGrid> load_grid_file(const std::string& path);

}  // namespace qwm::device
