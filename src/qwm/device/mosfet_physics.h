// Golden analytical MOSFET model.
//
// Stands in for the BSIM3 V3.1 model the paper characterizes against: a
// velocity-saturated "unified" long/short-channel DC model (square-law
// triode, velocity-saturated Vdsat, channel-length modulation, body
// effect) with a softplus-smoothed gate overdrive so the current and its
// derivatives stay continuous through the subthreshold boundary — a
// property both Newton-based engines (SPICE and QWM) rely on.
//
// The model is channel-symmetric: terminals a/b are interchangeable and
// the source is inferred from the voltage ordering, so pass-transistor
// and stack topologies where the "drain" changes sides work unmodified.
#pragma once

#include "qwm/device/process.h"

namespace qwm::device {

/// Drain current and its partial derivatives w.r.t. the terminal voltages.
struct MosfetEval {
  double ids = 0.0;   ///< current flowing terminal a -> terminal b [A]
  double d_vg = 0.0;  ///< d ids / d vg
  double d_va = 0.0;  ///< d ids / d va
  double d_vb = 0.0;  ///< d ids / d vb
};

enum class MosType { nmos, pmos };

/// DC I/V physics of one MOSFET polarity.
class MosfetPhysics {
 public:
  MosfetPhysics(MosType type, const MosfetParams& params, double temp_vt);

  MosType type() const { return type_; }
  const MosfetParams& params() const { return params_; }

  /// Channel current a -> b with analytic derivatives. `w`/`l` are drawn
  /// width and length [m]; `vbulk` is the body voltage (0 for NMOS on
  /// grounded substrate, VDD for PMOS in an n-well).
  MosfetEval eval(double w, double l, double vg, double va, double vb,
                  double vbulk) const;

  /// Channel current a -> b (value only).
  double ids(double w, double l, double vg, double va, double vb,
             double vbulk) const;

  /// Effective threshold magnitude at source-to-bulk bias `vsb` (>= 0 in
  /// normal operation; clamped below -phi/2 to keep the sqrt real).
  double threshold(double vsb) const;

  /// Velocity-saturated Vdsat for gate overdrive `vgt` (>=0) at length l.
  double vdsat(double vgt, double l) const;

  /// Effective electrical channel length.
  double l_eff(double l) const;

 private:
  struct CoreEval {
    double i, d_vgs, d_vds, d_vsb;
  };
  /// Current for the NMOS-normalized frame, vds >= 0 assumed.
  CoreEval core(double w, double l, double vgs, double vds, double vsb) const;

  MosType type_;
  MosfetParams params_;
  double temp_vt_;
};

}  // namespace qwm::device
