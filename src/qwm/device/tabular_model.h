// Tabular DeviceModel: characterized grid + interpolation.
//
// The paper's fast device model (§V-A): currents come from the 7-parameter
// per-(Vs, Vg) curve fits, bilinearly interpolated between grid points.
// Because the fits are polynomials, dIds/dVd and dIds/dVs are available in
// closed form — the property the paper highlights for fast Jacobian
// assembly in the QWM Newton iterations.
//
// The grid always lives in the NMOS-normalized frame; PMOS queries are
// mirrored (v -> VDD - v) before lookup, and channel-terminal swaps handle
// reverse conduction, so a single table serves every bias configuration.
#pragma once

#include <atomic>
#include <memory>

#include "qwm/device/characterize.h"
#include "qwm/device/device_model.h"

namespace qwm::device {

class TabularDeviceModel : public DeviceModel {
 public:
  /// Characterizes `type` devices of process `proc` on construction.
  TabularDeviceModel(MosType type, const Process& proc,
                     const CharacterizationOptions& options = {});

  /// Wraps a pre-built grid (e.g. deserialized or shared across engines).
  TabularDeviceModel(MosType type, const Process& proc,
                     CharacterizationGrid grid);

  MosType mos_type() const override { return physics_.type(); }
  double iv(double w, double l, const TerminalVoltages& v) const override;
  IvEval iv_eval(double w, double l, const TerminalVoltages& v) const override;
  double threshold(const TerminalVoltages& v) const override;
  double vdsat(double l, const TerminalVoltages& v) const override;
  double src_cap(double w, double l) const override;
  double snk_cap(double w, double l) const override;
  double input_cap(double w, double l) const override;

  const CharacterizationGrid& grid() const { return grid_; }
  /// Number of iv()/iv_eval() queries served (table usage accounting).
  std::size_t query_count() const {
    return query_count_.load(std::memory_order_relaxed);
  }

 private:
  struct FrameEval {
    double i = 0.0;      ///< channel current drain -> source, ref geometry
    double d_vg = 0.0;   ///< partials w.r.t. gate, source, drain voltage
    double d_vs = 0.0;
    double d_vd = 0.0;
  };
  /// Interpolated table lookup in the NMOS frame with vd >= vs.
  FrameEval eval_frame(double vg, double vs, double vd) const;

  MosfetPhysics physics_;  ///< retained for threshold/vdsat queries and caps
  double vdd_;
  double bulk_;
  CharacterizationGrid grid_;
  /// Statistic, not synchronization: relaxed so concurrent QWM worker
  /// lanes can share one characterized model without racing.
  mutable std::atomic<std::size_t> query_count_{0};
};

}  // namespace qwm::device
