// Tabular DeviceModel: characterized grid + interpolation.
//
// The paper's fast device model (§V-A): currents come from the 7-parameter
// per-(Vs, Vg) curve fits, bilinearly interpolated between grid points.
// Because the fits are polynomials, dIds/dVd and dIds/dVs are available in
// closed form — the property the paper highlights for fast Jacobian
// assembly in the QWM Newton iterations.
//
// The grid always lives in the NMOS-normalized frame; PMOS queries are
// mirrored (v -> VDD - v) before lookup, and channel-terminal swaps handle
// reverse conduction, so a single table serves every bias configuration.
#pragma once

#include <atomic>
#include <memory>

#include "qwm/device/characterize.h"
#include "qwm/device/device_model.h"
#include "qwm/device/frame_kernel.h"

namespace qwm::device {

class TabularDeviceModel : public DeviceModel {
 public:
  /// Characterizes `type` devices of process `proc` on construction.
  TabularDeviceModel(MosType type, const Process& proc,
                     const CharacterizationOptions& options = {});

  /// Wraps a pre-built grid (e.g. deserialized or shared across engines).
  TabularDeviceModel(MosType type, const Process& proc,
                     CharacterizationGrid grid);

  MosType mos_type() const override { return physics_.type(); }
  double iv(double w, double l, const TerminalVoltages& v) const override;
  IvEval iv_eval(double w, double l, const TerminalVoltages& v) const override;
  double threshold(const TerminalVoltages& v) const override;
  double vdsat(double l, const TerminalVoltages& v) const override;
  double src_cap(double w, double l) const override;
  double snk_cap(double w, double l) const override;
  double input_cap(double w, double l) const override;
  const TabularDeviceModel* tabular() const override { return this; }

  /// Table lookup result in the NMOS-normalized frame at the reference
  /// geometry (drain -> source channel current and its partials). Lives in
  /// kernel:: so the runtime-dispatched scalar/AVX2 backends (see
  /// frame_kernel.h) can produce it without a layering cycle.
  using FrameEval = kernel::FrameEval;
  /// Interpolated table lookup in the NMOS frame with vd >= vs.
  FrameEval eval_frame(double vg, double vs, double vd) const;

  /// Batched SoA form of eval_frame: n independent frame lookups with the
  /// grid/axis state hoisted out of the loop. Bit-identical to calling
  /// eval_frame(vg[k], vs[k], vd[k]) for each k — the scalar path is
  /// implemented on the same kernel, and every SIMD backend reproduces the
  /// scalar kernel's bits — and counts n table queries.
  void eval_frames(std::size_t n, const double* vg, const double* vs,
                   const double* vd, FrameEval* out) const;

  /// Corner-lane form of eval_frames: the same frame batch evaluated
  /// against `model_count` models whose grids share this model family's
  /// axes (per-corner characterizations of one process do — corner
  /// derivation rescales currents, never the sweep; see model_set.h). The
  /// axis location and bilinear weights are computed once per frame and
  /// reused by every lane, so an extra corner costs only the blend
  /// arithmetic. out[m][k] is bit-identical to
  /// models[m]->eval_frame(vg[k], vs[k], vd[k]); each model counts n
  /// queries. Falls back to per-model eval_frames if any grid's axes
  /// differ.
  static void eval_frames_corners(const TabularDeviceModel* const* models,
                                  std::size_t model_count, std::size_t n,
                                  const double* vg, const double* vs,
                                  const double* vd, FrameEval* const* out);

  /// Edge voltages mapped into the table's NMOS-normalized frame.
  /// `swapped` records a source/drain exchange (fa < fb): the frame lookup
  /// then runs with the terminals exchanged and from_frame() restores the
  /// edge orientation by negating current and swapping the partials.
  struct FrameMap {
    double fg = 0.0;
    double flo = 0.0;  ///< frame source  (min of the mapped endpoints)
    double fhi = 0.0;  ///< frame drain   (max of the mapped endpoints)
    bool swapped = false;
  };
  FrameMap to_frame(const TerminalVoltages& v) const {
    double fg = v.input, fa = v.src, fb = v.snk;
    if (physics_.type() == MosType::pmos) {
      fg = vdd_ - v.input;
      fa = vdd_ - v.src;
      fb = vdd_ - v.snk;
    }
    FrameMap m;
    m.fg = fg;
    if (fa >= fb) {
      m.flo = fb;
      m.fhi = fa;
      m.swapped = false;
    } else {
      m.flo = fa;
      m.fhi = fb;
      m.swapped = true;
    }
    return m;
  }
  /// Maps a frame lookup back to edge orientation and scales to geometry.
  /// Shared by the scalar and batched paths so both produce identical bits.
  IvEval from_frame(const FrameEval& e, bool swapped, double w,
                    double l) const {
    IvEval out;
    if (!swapped) {
      out.i = e.i;
      out.d_input = e.d_vg;
      out.d_src = e.d_vd;
      out.d_snk = e.d_vs;
    } else {
      out.i = -e.i;
      out.d_input = -e.d_vg;
      out.d_src = -e.d_vs;
      out.d_snk = -e.d_vd;
    }
    const double scale = (w / grid_.w_ref) * (grid_.l_ref / l);
    out.i *= scale;
    out.d_input *= scale;
    out.d_src *= scale;
    out.d_snk *= scale;
    if (physics_.type() == MosType::pmos) {
      // Value flips sign mapping back from the mirrored frame; derivatives
      // pick up two sign flips and carry over.
      out.i = -out.i;
    }
    return out;
  }

  /// Non-virtual iv_eval for callers holding a concrete pointer (cached at
  /// stage-build time). Same arithmetic, same query accounting; skips the
  /// vtable dispatch in the engines' inner NR loops.
  IvEval iv_eval_fast(double w, double l, const TerminalVoltages& v) const {
    query_count_.fetch_add(1, std::memory_order_relaxed);
    const FrameMap m = to_frame(v);
    return from_frame(eval_frame(m.fg, m.flo, m.fhi), m.swapped, w, l);
  }

  const CharacterizationGrid& grid() const { return grid_; }
  /// Supply rail used by the PMOS frame mirror (callers that inline
  /// to_frame()'s arithmetic, e.g. the engine's batched gather).
  double vdd() const { return vdd_; }
  /// Number of iv()/iv_eval() queries served (table usage accounting).
  std::size_t query_count() const {
    return query_count_.load(std::memory_order_relaxed);
  }

 private:
  MosfetPhysics physics_;  ///< retained for threshold/vdsat queries and caps
  double vdd_;
  double bulk_;
  CharacterizationGrid grid_;
  /// Statistic, not synchronization: relaxed so concurrent QWM worker
  /// lanes can share one characterized model without racing.
  mutable std::atomic<std::size_t> query_count_{0};
};

}  // namespace qwm::device
