#include "qwm/device/model_set.h"

#include <algorithm>

#include "qwm/device/tabular_model.h"

namespace qwm::device {

namespace {

// Mean saturation drive of the two polarities, I ~ kp * (vdd - vth0)^2.
// Overdrive is floored well above zero so a pathological model card cannot
// produce a wild (or infinite) seed scale.
double saturation_drive(const Process& p) {
  const double on = std::max(p.vdd - p.nmos.vth0, 0.1);
  const double op = std::max(p.vdd - p.pmos.vth0, 0.1);
  return 0.5 * (p.nmos.kp * on * on + p.pmos.kp * op * op);
}

}  // namespace

double warm_time_scale(const ModelSet& from, const ModelSet& to) {
  if (from.process == nullptr || to.process == nullptr) return 1.0;
  const double drive_to = saturation_drive(*to.process);
  if (drive_to <= 0.0) return 1.0;
  return saturation_drive(*from.process) / drive_to;
}

CornerLibrary::CornerLibrary(const Process& base)
    : CornerLibrary(base, CharacterizationOptions{}) {}

CornerLibrary::CornerLibrary(const Process& base,
                             const CharacterizationOptions& options) {
  for (const Corner c : kAllCorners) {
    const auto i = static_cast<std::size_t>(c);
    procs_[i] = base.at_corner(c);
    nmos_[i] = std::make_unique<TabularDeviceModel>(MosType::nmos, procs_[i],
                                                    options);
    pmos_[i] = std::make_unique<TabularDeviceModel>(MosType::pmos, procs_[i],
                                                    options);
    sets_[i] = ModelSet{nmos_[i].get(), pmos_[i].get(), &procs_[i]};
  }
}

CornerLibrary::~CornerLibrary() = default;

const TabularDeviceModel& CornerLibrary::model(Corner corner,
                                               MosType type) const {
  const auto i = static_cast<std::size_t>(corner);
  return type == MosType::nmos ? *nmos_[i] : *pmos_[i];
}

CornerModelSet CornerLibrary::sets() const {
  CornerModelSet c;
  c.corners.assign(kAllCorners, kAllCorners + kCornerCount);
  c.sets = sets_;
  return c;
}

}  // namespace qwm::device
