// Backend registry and dispatch for the frame-evaluation kernel.
//
// The default backend is the best one the host supports, resolved once at
// first use; QWM_SIMD_BACKEND=scalar|avx2 overrides the default, and
// set_backend() forces it at runtime (tests sweep every compiled backend
// this way). Dispatch state is a relaxed atomic: callers only ever flip
// it from single-threaded setup code, and every backend returns identical
// bits anyway.
#include "qwm/device/frame_kernel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qwm::device::kernel {

// Backend entry points (defined in the per-backend TUs).
void eval_frames_scalar(const CharacterizationGrid& g, std::size_t n,
                        const double* vg, const double* vs, const double* vd,
                        FrameEval* out);
void eval_frames_multi_scalar(const CharacterizationGrid* const* grids,
                              std::size_t grid_count, std::size_t n,
                              const double* vg, const double* vs,
                              const double* vd, FrameEval* const* out);
#if QWM_KERNEL_HAS_AVX2
void eval_frames_avx2(const CharacterizationGrid& g, std::size_t n,
                      const double* vg, const double* vs, const double* vd,
                      FrameEval* out);
void eval_frames_multi_avx2(const CharacterizationGrid* const* grids,
                            std::size_t grid_count, std::size_t n,
                            const double* vg, const double* vs,
                            const double* vd, FrameEval* const* out);
#endif

namespace {

bool host_has_avx2() {
#if QWM_KERNEL_HAS_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Backend default_backend() {
  if (const char* env = std::getenv("QWM_SIMD_BACKEND")) {
    if (std::strcmp(env, "scalar") == 0) return Backend::scalar;
    if (std::strcmp(env, "avx2") == 0 && host_has_avx2()) return Backend::avx2;
  }
  return host_has_avx2() ? Backend::avx2 : Backend::scalar;
}

std::atomic<int>& backend_state() {
  static std::atomic<int> state{static_cast<int>(default_backend())};
  return state;
}

}  // namespace

bool backend_compiled(Backend b) {
  switch (b) {
    case Backend::scalar:
      return true;
    case Backend::avx2:
#if QWM_KERNEL_HAS_AVX2
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool backend_supported(Backend b) {
  if (b == Backend::avx2) return host_has_avx2();
  return backend_compiled(b);
}

Backend active_backend() {
  return static_cast<Backend>(backend_state().load(std::memory_order_relaxed));
}

bool set_backend(Backend b) {
  if (!backend_supported(b)) return false;
  backend_state().store(static_cast<int>(b), std::memory_order_relaxed);
  return true;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::scalar:
      return "scalar";
    case Backend::avx2:
      return "avx2";
  }
  return "?";
}

void eval_frames(const CharacterizationGrid& g, std::size_t n,
                 const double* vg, const double* vs, const double* vd,
                 FrameEval* out) {
#if QWM_KERNEL_HAS_AVX2
  if (active_backend() == Backend::avx2) {
    eval_frames_avx2(g, n, vg, vs, vd, out);
    return;
  }
#endif
  eval_frames_scalar(g, n, vg, vs, vd, out);
}

void eval_frames_multi(const CharacterizationGrid* const* grids,
                       std::size_t grid_count, std::size_t n,
                       const double* vg, const double* vs, const double* vd,
                       FrameEval* const* out) {
  if (grid_count == 0) return;
#if QWM_KERNEL_HAS_AVX2
  if (active_backend() == Backend::avx2) {
    eval_frames_multi_avx2(grids, grid_count, n, vg, vs, vd, out);
    return;
  }
#endif
  eval_frames_multi_scalar(grids, grid_count, n, vg, vs, vd, out);
}

}  // namespace qwm::device::kernel
