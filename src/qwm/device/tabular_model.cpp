#include "qwm/device/tabular_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qwm::device {

namespace {

/// Bilinear blend of a per-point quantity extracted by `field`.
template <typename F>
double blend(const CharacterizationGrid& g, std::size_t i0, std::size_t i1,
             double f0, double f1, F field) {
  const double v00 = field(g.at(i0, i1));
  const double v01 = field(g.at(i0, i1 + 1));
  const double v10 = field(g.at(i0 + 1, i1));
  const double v11 = field(g.at(i0 + 1, i1 + 1));
  return v00 * (1 - f0) * (1 - f1) + v01 * (1 - f0) * f1 +
         v10 * f0 * (1 - f1) + v11 * f0 * f1;
}

}  // namespace

TabularDeviceModel::TabularDeviceModel(MosType type, const Process& proc,
                                       const CharacterizationOptions& options)
    : physics_(type, type == MosType::nmos ? proc.nmos : proc.pmos,
               proc.temp_vt),
      vdd_(proc.vdd),
      bulk_(type == MosType::nmos ? 0.0 : proc.vdd),
      grid_(characterize(physics_, proc.vdd, options)) {}

TabularDeviceModel::TabularDeviceModel(MosType type, const Process& proc,
                                       CharacterizationGrid grid)
    : physics_(type, type == MosType::nmos ? proc.nmos : proc.pmos,
               proc.temp_vt),
      vdd_(proc.vdd),
      bulk_(type == MosType::nmos ? 0.0 : proc.vdd),
      grid_(std::move(grid)) {}

namespace {

/// The located half of frame_lookup: blend arithmetic at an already
/// resolved grid cell. Split out so the corner-lane batched path can
/// locate once and blend per lane.
inline TabularDeviceModel::FrameEval frame_blend(const CharacterizationGrid& g,
                                                 std::size_t i0, double f0,
                                                 std::size_t i1, double f1,
                                                 double u);

/// One interpolated lookup in the NMOS frame with vd >= vs. The single
/// kernel behind both the scalar eval_frame and the batched eval_frames,
/// so the two are bit-identical by construction.
inline TabularDeviceModel::FrameEval frame_lookup(
    const CharacterizationGrid& g, double vg, double vs, double vd) {
  assert(vd >= vs);
  const double u = vd - vs;
  std::size_t i0, i1;
  double f0, f1;
  g.vs_axis.locate(vs, i0, f0);
  g.vg_axis.locate(vg, i1, f1);
  return frame_blend(g, i0, f0, i1, f1, u);
}

inline TabularDeviceModel::FrameEval frame_blend(const CharacterizationGrid& g,
                                                 std::size_t i0, double f0,
                                                 std::size_t i1, double f1,
                                                 double u) {
  // Corner evaluations, computed once and reused for the value and both
  // table-axis derivatives (hot path: called per device per Newton
  // iteration in both engines).
  const double e00 = g.at(i0, i1).eval(u);
  const double e01 = g.at(i0, i1 + 1).eval(u);
  const double e10 = g.at(i0 + 1, i1).eval(u);
  const double e11 = g.at(i0 + 1, i1 + 1).eval(u);
  const double i = e00 * (1 - f0) * (1 - f1) + e01 * (1 - f0) * f1 +
                   e10 * f0 * (1 - f1) + e11 * f0 * f1;
  const double di_du =
      blend(g, i0, i1, f0, f1,
            [u](const CharacterizedPoint& p) { return p.deriv(u); });

  // Interpolant derivative along the vs table axis (u held fixed).
  const double lo_vs = e00 * (1 - f1) + e01 * f1;
  const double hi_vs = e10 * (1 - f1) + e11 * f1;
  const double di_dvs_axis = (hi_vs - lo_vs) / g.vs_axis.dx;

  // Interpolant derivative along the vg table axis.
  const double lo_vg = e00 * (1 - f0) + e10 * f0;
  const double hi_vg = e01 * (1 - f0) + e11 * f0;
  const double di_dvg_axis = (hi_vg - lo_vg) / g.vg_axis.dx;

  TabularDeviceModel::FrameEval out;
  out.i = i;
  out.d_vd = di_du;
  // vs enters both the table axis and u = vd - vs.
  out.d_vs = di_dvs_axis - di_du;
  out.d_vg = di_dvg_axis;
  return out;
}

}  // namespace

TabularDeviceModel::FrameEval TabularDeviceModel::eval_frame(double vg,
                                                             double vs,
                                                             double vd) const {
  return frame_lookup(grid_, vg, vs, vd);
}

void TabularDeviceModel::eval_frames(std::size_t n, const double* vg,
                                     const double* vs, const double* vd,
                                     FrameEval* out) const {
  query_count_.fetch_add(n, std::memory_order_relaxed);
  // One atomic bump and one grid indirection for the whole batch; the
  // per-element loop touches only the hoisted grid reference.
  const CharacterizationGrid& g = grid_;
  for (std::size_t k = 0; k < n; ++k)
    out[k] = frame_lookup(g, vg[k], vs[k], vd[k]);
}

namespace {

bool same_axis(const numeric::UniformAxis& a, const numeric::UniformAxis& b) {
  return a.x0 == b.x0 && a.dx == b.dx && a.n == b.n;
}

}  // namespace

void TabularDeviceModel::eval_frames_corners(
    const TabularDeviceModel* const* models, std::size_t model_count,
    std::size_t n, const double* vg, const double* vs, const double* vd,
    FrameEval* const* out) {
  if (model_count == 0) return;
  const CharacterizationGrid& g0 = models[0]->grid_;
  for (std::size_t m = 1; m < model_count; ++m) {
    const CharacterizationGrid& gm = models[m]->grid_;
    if (!same_axis(gm.vs_axis, g0.vs_axis) ||
        !same_axis(gm.vg_axis, g0.vg_axis)) {
      // Heterogeneous axes (not corner variants of one family): the shared
      // locate would be wrong, so run each lane through the plain batch.
      for (std::size_t j = 0; j < model_count; ++j)
        models[j]->eval_frames(n, vg, vs, vd, out[j]);
      return;
    }
  }
  for (std::size_t m = 0; m < model_count; ++m)
    models[m]->query_count_.fetch_add(n, std::memory_order_relaxed);
  for (std::size_t k = 0; k < n; ++k) {
    // Located once on the shared axes, blended per corner lane.
    const double u = vd[k] - vs[k];
    std::size_t i0, i1;
    double f0, f1;
    g0.vs_axis.locate(vs[k], i0, f0);
    g0.vg_axis.locate(vg[k], i1, f1);
    for (std::size_t m = 0; m < model_count; ++m)
      out[m][k] = frame_blend(models[m]->grid_, i0, f0, i1, f1, u);
  }
}

IvEval TabularDeviceModel::iv_eval(double w, double l,
                                   const TerminalVoltages& v) const {
  // Map to the NMOS-normalized frame (PMOS: v' = VDD - v; the well bias
  // maps to frame ground, matching how the grid was characterized), look
  // up, and map back. Shared with the devirtualized fast path.
  return iv_eval_fast(w, l, v);
}

double TabularDeviceModel::iv(double w, double l,
                              const TerminalVoltages& v) const {
  return iv_eval(w, l, v).i;
}

double TabularDeviceModel::threshold(const TerminalVoltages& v) const {
  // Frame-local source voltage.
  double vs, vg;
  if (physics_.type() == MosType::nmos) {
    vs = std::min(v.src, v.snk);
    vg = v.input;
  } else {
    vs = vdd_ - std::max(v.src, v.snk);
    vg = vdd_ - v.input;
  }
  std::size_t i0, i1;
  double f0, f1;
  grid_.vs_axis.locate(vs, i0, f0);
  grid_.vg_axis.locate(vg, i1, f1);
  return blend(grid_, i0, i1, f0, f1,
               [](const CharacterizedPoint& p) { return p.vth; });
}

double TabularDeviceModel::vdsat(double l, const TerminalVoltages& v) const {
  (void)l;  // the grid is characterized at l_ref
  double vs, vg;
  if (physics_.type() == MosType::nmos) {
    vs = std::min(v.src, v.snk);
    vg = v.input;
  } else {
    vs = vdd_ - std::max(v.src, v.snk);
    vg = vdd_ - v.input;
  }
  std::size_t i0, i1;
  double f0, f1;
  grid_.vs_axis.locate(vs, i0, f0);
  grid_.vg_axis.locate(vg, i1, f1);
  return blend(grid_, i0, i1, f0, f1,
               [](const CharacterizedPoint& p) { return p.vdsat; });
}

double TabularDeviceModel::src_cap(double w, double l) const {
  return channel_terminal_cap(physics_.params(), w, l);
}

double TabularDeviceModel::snk_cap(double w, double l) const {
  return channel_terminal_cap(physics_.params(), w, l);
}

double TabularDeviceModel::input_cap(double w, double l) const {
  return gate_input_cap(physics_.params(), w, l);
}

}  // namespace qwm::device
