#include "qwm/device/tabular_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qwm::device {

namespace {

/// Bilinear blend of a per-point quantity extracted by `field`.
template <typename F>
double blend(const CharacterizationGrid& g, std::size_t i0, std::size_t i1,
             double f0, double f1, F field) {
  const double v00 = field(g.at(i0, i1));
  const double v01 = field(g.at(i0, i1 + 1));
  const double v10 = field(g.at(i0 + 1, i1));
  const double v11 = field(g.at(i0 + 1, i1 + 1));
  return v00 * (1 - f0) * (1 - f1) + v01 * (1 - f0) * f1 +
         v10 * f0 * (1 - f1) + v11 * f0 * f1;
}

}  // namespace

TabularDeviceModel::TabularDeviceModel(MosType type, const Process& proc,
                                       const CharacterizationOptions& options)
    : physics_(type, type == MosType::nmos ? proc.nmos : proc.pmos,
               proc.temp_vt),
      vdd_(proc.vdd),
      bulk_(type == MosType::nmos ? 0.0 : proc.vdd),
      grid_(characterize(physics_, proc.vdd, options)) {}

TabularDeviceModel::TabularDeviceModel(MosType type, const Process& proc,
                                       CharacterizationGrid grid)
    : physics_(type, type == MosType::nmos ? proc.nmos : proc.pmos,
               proc.temp_vt),
      vdd_(proc.vdd),
      bulk_(type == MosType::nmos ? 0.0 : proc.vdd),
      grid_(std::move(grid)) {}

TabularDeviceModel::FrameEval TabularDeviceModel::eval_frame(double vg,
                                                             double vs,
                                                             double vd) const {
  assert(vd >= vs);
  const double u = vd - vs;
  std::size_t i0, i1;
  double f0, f1;
  grid_.vs_axis.locate(vs, i0, f0);
  grid_.vg_axis.locate(vg, i1, f1);

  // Corner evaluations, computed once and reused for the value and both
  // table-axis derivatives (hot path: called per device per Newton
  // iteration in both engines).
  const double e00 = grid_.at(i0, i1).eval(u);
  const double e01 = grid_.at(i0, i1 + 1).eval(u);
  const double e10 = grid_.at(i0 + 1, i1).eval(u);
  const double e11 = grid_.at(i0 + 1, i1 + 1).eval(u);
  const double i = e00 * (1 - f0) * (1 - f1) + e01 * (1 - f0) * f1 +
                   e10 * f0 * (1 - f1) + e11 * f0 * f1;
  const double di_du =
      blend(grid_, i0, i1, f0, f1,
            [u](const CharacterizedPoint& p) { return p.deriv(u); });

  // Interpolant derivative along the vs table axis (u held fixed).
  const double lo_vs = e00 * (1 - f1) + e01 * f1;
  const double hi_vs = e10 * (1 - f1) + e11 * f1;
  const double di_dvs_axis = (hi_vs - lo_vs) / grid_.vs_axis.dx;

  // Interpolant derivative along the vg table axis.
  const double lo_vg = e00 * (1 - f0) + e10 * f0;
  const double hi_vg = e01 * (1 - f0) + e11 * f0;
  const double di_dvg_axis = (hi_vg - lo_vg) / grid_.vg_axis.dx;

  FrameEval out;
  out.i = i;
  out.d_vd = di_du;
  // vs enters both the table axis and u = vd - vs.
  out.d_vs = di_dvs_axis - di_du;
  out.d_vg = di_dvg_axis;
  return out;
}

IvEval TabularDeviceModel::iv_eval(double w, double l,
                                   const TerminalVoltages& v) const {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  // Map to the NMOS-normalized frame (PMOS: v' = VDD - v; the well bias
  // maps to frame ground, matching how the grid was characterized).
  double fg = v.input, fa = v.src, fb = v.snk;
  const bool pmos = physics_.type() == MosType::pmos;
  if (pmos) {
    fg = vdd_ - v.input;
    fa = vdd_ - v.src;
    fb = vdd_ - v.snk;
  }

  IvEval out;
  if (fa >= fb) {
    const FrameEval e = eval_frame(fg, fb, fa);
    out.i = e.i;
    out.d_input = e.d_vg;
    out.d_src = e.d_vd;
    out.d_snk = e.d_vs;
  } else {
    const FrameEval e = eval_frame(fg, fa, fb);
    out.i = -e.i;
    out.d_input = -e.d_vg;
    out.d_src = -e.d_vs;
    out.d_snk = -e.d_vd;
  }

  // Geometry scaling relative to the characterized reference device.
  const double scale = (w / grid_.w_ref) * (grid_.l_ref / l);
  out.i *= scale;
  out.d_input *= scale;
  out.d_src *= scale;
  out.d_snk *= scale;

  if (pmos) {
    // Value flips sign mapping back from the mirrored frame; derivatives
    // pick up two sign flips and carry over.
    out.i = -out.i;
  }
  return out;
}

double TabularDeviceModel::iv(double w, double l,
                              const TerminalVoltages& v) const {
  return iv_eval(w, l, v).i;
}

double TabularDeviceModel::threshold(const TerminalVoltages& v) const {
  // Frame-local source voltage.
  double vs, vg;
  if (physics_.type() == MosType::nmos) {
    vs = std::min(v.src, v.snk);
    vg = v.input;
  } else {
    vs = vdd_ - std::max(v.src, v.snk);
    vg = vdd_ - v.input;
  }
  std::size_t i0, i1;
  double f0, f1;
  grid_.vs_axis.locate(vs, i0, f0);
  grid_.vg_axis.locate(vg, i1, f1);
  return blend(grid_, i0, i1, f0, f1,
               [](const CharacterizedPoint& p) { return p.vth; });
}

double TabularDeviceModel::vdsat(double l, const TerminalVoltages& v) const {
  (void)l;  // the grid is characterized at l_ref
  double vs, vg;
  if (physics_.type() == MosType::nmos) {
    vs = std::min(v.src, v.snk);
    vg = v.input;
  } else {
    vs = vdd_ - std::max(v.src, v.snk);
    vg = vdd_ - v.input;
  }
  std::size_t i0, i1;
  double f0, f1;
  grid_.vs_axis.locate(vs, i0, f0);
  grid_.vg_axis.locate(vg, i1, f1);
  return blend(grid_, i0, i1, f0, f1,
               [](const CharacterizedPoint& p) { return p.vdsat; });
}

double TabularDeviceModel::src_cap(double w, double l) const {
  return channel_terminal_cap(physics_.params(), w, l);
}

double TabularDeviceModel::snk_cap(double w, double l) const {
  return channel_terminal_cap(physics_.params(), w, l);
}

double TabularDeviceModel::input_cap(double w, double l) const {
  return gate_input_cap(physics_.params(), w, l);
}

}  // namespace qwm::device
