#include "qwm/device/tabular_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace qwm::device {

namespace {

/// Bilinear blend of a per-point quantity extracted by `field`.
template <typename F>
double blend(const CharacterizationGrid& g, std::size_t i0, std::size_t i1,
             double f0, double f1, F field) {
  const double v00 = field(g.at(i0, i1));
  const double v01 = field(g.at(i0, i1 + 1));
  const double v10 = field(g.at(i0 + 1, i1));
  const double v11 = field(g.at(i0 + 1, i1 + 1));
  return v00 * (1 - f0) * (1 - f1) + v01 * (1 - f0) * f1 +
         v10 * f0 * (1 - f1) + v11 * f0 * f1;
}

}  // namespace

TabularDeviceModel::TabularDeviceModel(MosType type, const Process& proc,
                                       const CharacterizationOptions& options)
    : physics_(type, type == MosType::nmos ? proc.nmos : proc.pmos,
               proc.temp_vt),
      vdd_(proc.vdd),
      bulk_(type == MosType::nmos ? 0.0 : proc.vdd),
      grid_(characterize(physics_, proc.vdd, options)) {}

TabularDeviceModel::TabularDeviceModel(MosType type, const Process& proc,
                                       CharacterizationGrid grid)
    : physics_(type, type == MosType::nmos ? proc.nmos : proc.pmos,
               proc.temp_vt),
      vdd_(proc.vdd),
      bulk_(type == MosType::nmos ? 0.0 : proc.vdd),
      grid_(std::move(grid)) {}

TabularDeviceModel::FrameEval TabularDeviceModel::eval_frame(double vg,
                                                             double vs,
                                                             double vd) const {
  // Single-frame lookups route through the batched kernel dispatch so the
  // scalar engine path, the batched SoA path, and every SIMD backend all
  // share one arithmetic implementation (see frame_kernel.h).
  FrameEval out;
  kernel::eval_frames(grid_, 1, &vg, &vs, &vd, &out);
  return out;
}

void TabularDeviceModel::eval_frames(std::size_t n, const double* vg,
                                     const double* vs, const double* vd,
                                     FrameEval* out) const {
  query_count_.fetch_add(n, std::memory_order_relaxed);
  kernel::eval_frames(grid_, n, vg, vs, vd, out);
}

namespace {

bool same_axis(const numeric::UniformAxis& a, const numeric::UniformAxis& b) {
  return a.x0 == b.x0 && a.dx == b.dx && a.n == b.n;
}

}  // namespace

void TabularDeviceModel::eval_frames_corners(
    const TabularDeviceModel* const* models, std::size_t model_count,
    std::size_t n, const double* vg, const double* vs, const double* vd,
    FrameEval* const* out) {
  if (model_count == 0) return;
  const CharacterizationGrid& g0 = models[0]->grid_;
  for (std::size_t m = 1; m < model_count; ++m) {
    const CharacterizationGrid& gm = models[m]->grid_;
    if (!same_axis(gm.vs_axis, g0.vs_axis) ||
        !same_axis(gm.vg_axis, g0.vg_axis)) {
      // Heterogeneous axes (not corner variants of one family): the shared
      // locate would be wrong, so run each lane through the plain batch.
      for (std::size_t j = 0; j < model_count; ++j)
        models[j]->eval_frames(n, vg, vs, vd, out[j]);
      return;
    }
  }
  const CharacterizationGrid* grids[8];
  std::vector<const CharacterizationGrid*> grids_heap;
  const CharacterizationGrid** gp = grids;
  if (model_count > 8) {
    grids_heap.resize(model_count);
    gp = grids_heap.data();
  }
  for (std::size_t m = 0; m < model_count; ++m) {
    models[m]->query_count_.fetch_add(n, std::memory_order_relaxed);
    gp[m] = &models[m]->grid_;
  }
  kernel::eval_frames_multi(gp, model_count, n, vg, vs, vd, out);
}

IvEval TabularDeviceModel::iv_eval(double w, double l,
                                   const TerminalVoltages& v) const {
  // Map to the NMOS-normalized frame (PMOS: v' = VDD - v; the well bias
  // maps to frame ground, matching how the grid was characterized), look
  // up, and map back. Shared with the devirtualized fast path.
  return iv_eval_fast(w, l, v);
}

double TabularDeviceModel::iv(double w, double l,
                              const TerminalVoltages& v) const {
  return iv_eval(w, l, v).i;
}

double TabularDeviceModel::threshold(const TerminalVoltages& v) const {
  // Frame-local source voltage.
  double vs, vg;
  if (physics_.type() == MosType::nmos) {
    vs = std::min(v.src, v.snk);
    vg = v.input;
  } else {
    vs = vdd_ - std::max(v.src, v.snk);
    vg = vdd_ - v.input;
  }
  std::size_t i0, i1;
  double f0, f1;
  grid_.vs_axis.locate(vs, i0, f0);
  grid_.vg_axis.locate(vg, i1, f1);
  return blend(grid_, i0, i1, f0, f1,
               [](const CharacterizedPoint& p) { return p.vth; });
}

double TabularDeviceModel::vdsat(double l, const TerminalVoltages& v) const {
  (void)l;  // the grid is characterized at l_ref
  double vs, vg;
  if (physics_.type() == MosType::nmos) {
    vs = std::min(v.src, v.snk);
    vg = v.input;
  } else {
    vs = vdd_ - std::max(v.src, v.snk);
    vg = vdd_ - v.input;
  }
  std::size_t i0, i1;
  double f0, f1;
  grid_.vs_axis.locate(vs, i0, f0);
  grid_.vg_axis.locate(vg, i1, f1);
  return blend(grid_, i0, i1, f0, f1,
               [](const CharacterizedPoint& p) { return p.vdsat; });
}

double TabularDeviceModel::src_cap(double w, double l) const {
  return channel_terminal_cap(physics_.params(), w, l);
}

double TabularDeviceModel::snk_cap(double w, double l) const {
  return channel_terminal_cap(physics_.params(), w, l);
}

double TabularDeviceModel::input_cap(double w, double l) const {
  return gate_input_cap(physics_.params(), w, l);
}

}  // namespace qwm::device
